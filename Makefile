GO ?= go

.PHONY: build test vet race check bench-baseline bench-diff clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full tier-1 verification: build + vet + test + race.
check:
	./scripts/check.sh

# Regenerate the committed benchmark baseline (BENCH_baseline.json).
bench-baseline:
	./scripts/bench_baseline.sh

# Advisory: run the candidate-scan benchmarks and diff vs BENCH_baseline.json.
bench-diff:
	./scripts/bench_diff.sh

clean:
	$(GO) clean ./...
