GO ?= go

.PHONY: build test vet race check smoke smoke-cluster load apicheck apicheck-update bench-baseline bench-diff bench-shard bench-nls bench-cluster clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full tier-1 verification: gofmt + build + vet + test + race + smoke.
check:
	./scripts/check.sh

# End-to-end cancellation smoke: build each cmd binary, run it under a short
# -timeout, and assert a clean exit with valid partial output.
smoke:
	./scripts/smoke.sh

# Cluster smoke: boot a 3-node local cdserved cluster, fan a sharded solve
# across it, kill one peer mid-run, and assert the coordinator still lands
# the bit-identical answer via local fallback.
smoke-cluster:
	./scripts/smoke_cluster.sh

# SLO harness: boot cdserved and drive it with cdload's open-loop Poisson
# generator; RATE/DURATION/CHURN/DUP/SLO_P99/MAX_5XX/URL tune the run (see
# scripts/load.sh). DUP>0 replays duplicate solves to exercise the cache.
load:
	./scripts/load.sh

# Wire-schema gate: diff the exported v1 serving API against the committed
# golden (api/v1.golden.txt); apicheck-update regenerates it deliberately.
apicheck:
	./scripts/apicheck.sh

apicheck-update:
	./scripts/apicheck.sh -update

# Regenerate the committed benchmark baseline (BENCH_baseline.json).
bench-baseline:
	./scripts/bench_baseline.sh

# Advisory: run the candidate-scan benchmarks and diff vs BENCH_baseline.json.
bench-diff:
	./scripts/bench_diff.sh

# Million-user sharded-solve benchmark: record SingleShot/Sharded N1M runs
# into BENCH_baseline.json (benchjson -merge) and print the speedup table.
bench-shard:
	./scripts/bench_shard.sh

# Million-user near-linear-solver benchmark: record SingleShot/NearLinear N1M
# runs into BENCH_baseline.json (benchjson -merge) and print the
# speedup/quality table (gate: quality >= 0.90x at >= 5x speedup).
bench-nls:
	./scripts/bench_nls.sh

# Million-user cluster-solve benchmark: record the nodes=1 / nodes=3
# ClusterSolve_N1M pair into BENCH_baseline.json (benchjson -merge) and print
# the single-node vs cluster speedup/parity table (parity must be 1.000x).
bench-cluster:
	./scripts/bench_cluster.sh

clean:
	$(GO) clean ./...
