// Package repro is a from-scratch Go reproduction of "Making Many People
// Happy: Greedy Solutions for Content Distribution" (Wang, Guo, Wu;
// ICPP 2011).
//
// The library lives under internal/:
//
//   - internal/core        — the paper's four heuristics (Algorithms 1–4)
//   - internal/reward      — the capped distance-decay reward model (Eqs. 1–7)
//   - internal/exhaustive  — the exhaustive baseline the paper's ratios divide by
//   - internal/optimize    — continuous inner solvers for the round-based heuristic
//   - internal/theory      — Theorems 1–2 approximation-ratio closed forms
//   - internal/geom        — smallest enclosing balls (Welzl and friends)
//   - internal/norm, vec   — p-norm interest distances and m-D vectors
//   - internal/pointset    — weighted populations and workload generators
//   - internal/trace       — synthetic interest traces with JSON/CSV I/O
//   - internal/broadcast   — the motivating time-slotted base-station simulator
//   - internal/experiments — one driver per paper table/figure (see DESIGN.md)
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation section; cmd/cdbench exposes the same drivers as a CLI.
package repro
