// Command cdserved serves the solver stack over HTTP: a versioned JSON API
// with explicit admission control (bounded workers + queue, 429 with
// Retry-After past saturation), per-request deadlines that return anytime
// partial results, and graceful drain on SIGTERM.
//
//	POST /v1/solve    one instance, one solver, per-request deadline
//	POST /v1/churn    churn-loop simulation streamed as JSON lines
//	GET  /v1/solvers  the algorithm catalog (same names cdgreedy -alg takes)
//	GET  /healthz     liveness + drain state
//	GET  /metrics     telemetry snapshot
//	GET  /debug/pprof profiling
//
// Usage:
//
//	cdserved -addr :8080 -workers 4 -queue 16
//	curl -s localhost:8080/v1/solvers
//	curl -s -X POST --data-binary @request.json localhost:8080/v1/solve
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
)

func main() {
	// SIGINT/SIGTERM cancel the context, which triggers the graceful drain;
	// a clean drain exits 0. A second signal kills outright (stop restores
	// default handling once the context is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.Served(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
