package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU
BenchmarkGreedy2_N40-8   	    1234	    987654 ns/op	   45678 B/op	     321 allocs/op
BenchmarkGreedy3_N40-8   	    5000	    200000 ns/op
some test chatter
PASS
ok  	repro	1.234s
pkg: repro/internal/spatial
BenchmarkNear_N10000_R1-8	   10000	     11111 ns/op	     128 B/op	       2 allocs/op
PASS
ok  	repro/internal/spatial	0.5s
`

func TestParse(t *testing.T) {
	b, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if b.Env["goos"] != "linux" || b.Env["goarch"] != "amd64" || b.Env["cpu"] == "" {
		t.Errorf("env not captured: %v", b.Env)
	}
	if len(b.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(b.Benchmarks))
	}
	// Sorted by pkg then name: repro before repro/internal/spatial.
	g2 := b.Benchmarks[0]
	if g2.Name != "BenchmarkGreedy2_N40" || g2.Pkg != "repro" || g2.Procs != 8 {
		t.Errorf("first entry wrong: %+v", g2)
	}
	if g2.Iterations != 1234 {
		t.Errorf("iterations = %d", g2.Iterations)
	}
	if g2.Metrics["ns/op"] != 987654 || g2.Metrics["B/op"] != 45678 || g2.Metrics["allocs/op"] != 321 {
		t.Errorf("metrics wrong: %v", g2.Metrics)
	}
	sp := b.Benchmarks[2]
	if sp.Pkg != "repro/internal/spatial" || sp.Name != "BenchmarkNear_N10000_R1" {
		t.Errorf("spatial entry wrong: %+v", sp)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("PASS\nok \trepro\t0.1s\n"), &out); err == nil {
		t.Error("empty bench output accepted")
	}
}

func TestRunEmitsJSON(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"BenchmarkGreedy2_N40"`) {
		t.Errorf("JSON output missing benchmark name:\n%s", out.String())
	}
}
