// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, suitable for committing as a benchmark
// baseline and diffing across revisions:
//
//	go test -run '^$' -bench . -benchmem . ./internal/spatial | go run ./cmd/benchjson
//
// Each benchmark line ("BenchmarkFoo-8  100  12345 ns/op  67 B/op  8 allocs/op")
// becomes one entry keyed by name, with every value/unit pair preserved.
// goos/goarch/pkg/cpu header lines are captured as environment metadata.
//
// With -diff BASELINE.json, stdin is instead compared against the committed
// baseline: per-benchmark ns/op deltas (entries >+5% are flagged) plus
// Scalar↔Batch, Delta↔Full, and SingleShot↔Sharded pair speedup tables. The
// diff report is advisory and always exits 0 on valid input.
//
// With -merge BASELINE.json, stdin results are spliced into the committed
// baseline and the merged document is written to stdout: benchmarks re-run
// now replace their old entries by (pkg, name), new benchmarks are added,
// everything else is preserved. This keeps a long-lived baseline current
// without re-running the full suite for every addition.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Baseline is the full document.
type Baseline struct {
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
}

// splitName separates the -P procs suffix go test appends to benchmark names.
func splitName(s string) (string, int) {
	i := strings.LastIndex(s, "-")
	if i < 0 {
		return s, 0
	}
	p, err := strconv.Atoi(s[i+1:])
	if err != nil || p <= 0 {
		return s, 0
	}
	return s[:i], p
}

// Parse reads `go test -bench` output and collects results plus header
// metadata. Unrecognized lines (test output, PASS/ok) are skipped.
func Parse(r io.Reader) (*Baseline, error) {
	b := &Baseline{Env: map[string]string{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			b.Env[k] = strings.TrimSpace(v)
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		f := strings.Fields(line)
		// Name, iterations, then value/unit pairs: at least one pair.
		if len(f) < 4 || (len(f)-2)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		name, procs := splitName(f[0])
		res := Result{Name: name, Pkg: pkg, Procs: procs, Iterations: iters,
			Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				ok = false
				break
			}
			res.Metrics[f[i+1]] = v
		}
		if !ok || len(res.Metrics) == 0 {
			continue
		}
		b.Benchmarks = append(b.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(b.Benchmarks, func(i, j int) bool {
		if b.Benchmarks[i].Pkg != b.Benchmarks[j].Pkg {
			return b.Benchmarks[i].Pkg < b.Benchmarks[j].Pkg
		}
		return b.Benchmarks[i].Name < b.Benchmarks[j].Name
	})
	return b, nil
}

func run(in io.Reader, out io.Writer) error {
	b, err := Parse(in)
	if err != nil {
		return err
	}
	if len(b.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Merge splices the current run into the baseline: current entries replace
// baseline entries with the same (pkg, name) key, new entries are added, and
// untouched baseline entries survive. Env keys from the current run win
// (they describe the machine that produced the freshest numbers). The
// result is re-sorted into the canonical pkg-then-name order, so merged and
// from-scratch documents diff cleanly.
func Merge(baseline, current *Baseline) *Baseline {
	out := &Baseline{Env: map[string]string{}, Benchmarks: nil}
	for k, v := range baseline.Env {
		out.Env[k] = v
	}
	for k, v := range current.Env {
		out.Env[k] = v
	}
	replaced := make(map[string]bool, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		replaced[key(r)] = true
	}
	for _, r := range baseline.Benchmarks {
		if !replaced[key(r)] {
			out.Benchmarks = append(out.Benchmarks, r)
		}
	}
	out.Benchmarks = append(out.Benchmarks, current.Benchmarks...)
	sort.Slice(out.Benchmarks, func(i, j int) bool {
		if out.Benchmarks[i].Pkg != out.Benchmarks[j].Pkg {
			return out.Benchmarks[i].Pkg < out.Benchmarks[j].Pkg
		}
		return out.Benchmarks[i].Name < out.Benchmarks[j].Name
	})
	return out
}

// runMerge is the -merge entry point: current results on stdin, baseline
// from the given path, merged document on stdout.
func runMerge(baselinePath string, in io.Reader, out io.Writer) error {
	baseline, err := loadBaseline(baselinePath)
	if err != nil {
		return err
	}
	current, err := Parse(in)
	if err != nil {
		return err
	}
	if len(current.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(Merge(baseline, current))
}

func main() {
	diffPath := flag.String("diff", "", "compare stdin bench results against this baseline JSON instead of emitting JSON")
	mergePath := flag.String("merge", "", "splice stdin bench results into this baseline JSON and print the merged document")
	flag.Parse()
	var err error
	switch {
	case *diffPath != "" && *mergePath != "":
		err = fmt.Errorf("benchjson: -diff and -merge are mutually exclusive")
	case *diffPath != "":
		err = runDiff(*diffPath, os.Stdin, os.Stdout)
	case *mergePath != "":
		err = runMerge(*mergePath, os.Stdin, os.Stdout)
	default:
		err = run(os.Stdin, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
