// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, suitable for committing as a benchmark
// baseline and diffing across revisions:
//
//	go test -run '^$' -bench . -benchmem . ./internal/spatial | go run ./cmd/benchjson
//
// Each benchmark line ("BenchmarkFoo-8  100  12345 ns/op  67 B/op  8 allocs/op")
// becomes one entry keyed by name, with every value/unit pair preserved.
// goos/goarch/pkg/cpu header lines are captured as environment metadata.
//
// With -diff BASELINE.json, stdin is instead compared against the committed
// baseline: per-benchmark ns/op deltas (entries >+5% are flagged) plus a
// Scalar↔Batch pair speedup table. The diff report is advisory and always
// exits 0 on valid input.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Baseline is the full document.
type Baseline struct {
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
}

// splitName separates the -P procs suffix go test appends to benchmark names.
func splitName(s string) (string, int) {
	i := strings.LastIndex(s, "-")
	if i < 0 {
		return s, 0
	}
	p, err := strconv.Atoi(s[i+1:])
	if err != nil || p <= 0 {
		return s, 0
	}
	return s[:i], p
}

// Parse reads `go test -bench` output and collects results plus header
// metadata. Unrecognized lines (test output, PASS/ok) are skipped.
func Parse(r io.Reader) (*Baseline, error) {
	b := &Baseline{Env: map[string]string{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			b.Env[k] = strings.TrimSpace(v)
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		f := strings.Fields(line)
		// Name, iterations, then value/unit pairs: at least one pair.
		if len(f) < 4 || (len(f)-2)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		name, procs := splitName(f[0])
		res := Result{Name: name, Pkg: pkg, Procs: procs, Iterations: iters,
			Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				ok = false
				break
			}
			res.Metrics[f[i+1]] = v
		}
		if !ok || len(res.Metrics) == 0 {
			continue
		}
		b.Benchmarks = append(b.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(b.Benchmarks, func(i, j int) bool {
		if b.Benchmarks[i].Pkg != b.Benchmarks[j].Pkg {
			return b.Benchmarks[i].Pkg < b.Benchmarks[j].Pkg
		}
		return b.Benchmarks[i].Name < b.Benchmarks[j].Name
	})
	return b, nil
}

func run(in io.Reader, out io.Writer) error {
	b, err := Parse(in)
	if err != nil {
		return err
	}
	if len(b.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

func main() {
	diffPath := flag.String("diff", "", "compare stdin bench results against this baseline JSON instead of emitting JSON")
	flag.Parse()
	var err error
	if *diffPath != "" {
		err = runDiff(*diffPath, os.Stdin, os.Stdout)
	} else {
		err = run(os.Stdin, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
