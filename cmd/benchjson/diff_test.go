package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const diffSample = `pkg: repro/internal/reward
BenchmarkRoundGainScalar_N10000-8	     264	    240000 ns/op	       0 B/op	       0 allocs/op
BenchmarkRoundGainBatch_N10000-8 	     560	    120000 ns/op	       0 B/op	       0 allocs/op
BenchmarkFresh_New-8             	    1000	      5000 ns/op
BenchmarkEvaluatorUserDelta_N10000-8	  200000	       150 ns/op	      22 B/op	       1 allocs/op
BenchmarkEvaluatorUserFull_N10000-8 	      20	   1500000 ns/op	 1000000 B/op	      45 allocs/op
PASS
ok  	repro/internal/reward	1.0s
`

func TestRunDiff(t *testing.T) {
	baseline := `{
  "benchmarks": [
    {"name": "BenchmarkRoundGainScalar_N10000", "pkg": "repro/internal/reward",
     "iterations": 250, "metrics": {"ns/op": 250000}},
    {"name": "BenchmarkRoundGainBatch_N10000", "pkg": "repro/internal/reward",
     "iterations": 250, "metrics": {"ns/op": 100000}},
    {"name": "BenchmarkGone_Old", "pkg": "repro/internal/reward",
     "iterations": 10, "metrics": {"ns/op": 1}}
  ]
}`
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runDiff(path, strings.NewReader(diffSample), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// Scalar bench is 240000 vs 250000 baseline: -4.0%, no slowdown flag.
	if !strings.Contains(got, "BenchmarkRoundGainScalar_N10000") || !strings.Contains(got, "-4.0%") {
		t.Errorf("scalar delta missing:\n%s", got)
	}
	// Batch bench regressed 100000 -> 120000: +20%, must carry the flag.
	if !strings.Contains(got, "+20.0% !") {
		t.Errorf("regression not flagged:\n%s", got)
	}
	// New benchmark and removed baseline entry are both reported.
	if !strings.Contains(got, "BenchmarkFresh_New") || !strings.Contains(got, "new") {
		t.Errorf("new benchmark not listed:\n%s", got)
	}
	if !strings.Contains(got, "BenchmarkGone_Old") || !strings.Contains(got, "removed") {
		t.Errorf("removed benchmark not listed:\n%s", got)
	}
	// Pair table: 240000/120000 = 2.00x.
	if !strings.Contains(got, "scalar vs batch") || !strings.Contains(got, "2.00x") {
		t.Errorf("pair speedup missing:\n%s", got)
	}
	// Delta pair table: 1500000/150 = 10000x.
	if !strings.Contains(got, "incremental delta vs full rebuild") || !strings.Contains(got, "10000x") {
		t.Errorf("delta speedup missing:\n%s", got)
	}
}

func TestRunDiffMissingBaseline(t *testing.T) {
	var out strings.Builder
	if err := runDiff(filepath.Join(t.TempDir(), "nope.json"), strings.NewReader(diffSample), &out); err == nil {
		t.Error("missing baseline accepted")
	}
}

func TestRunDiffEmptyStdin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(`{"benchmarks": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runDiff(path, strings.NewReader("PASS\n"), &out); err == nil {
		t.Error("empty bench output accepted")
	}
}
