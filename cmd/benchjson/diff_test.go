package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const diffSample = `pkg: repro/internal/reward
BenchmarkRoundGainScalar_N10000-8	     264	    240000 ns/op	       0 B/op	       0 allocs/op
BenchmarkRoundGainBatch_N10000-8 	     560	    120000 ns/op	       0 B/op	       0 allocs/op
BenchmarkFresh_New-8             	    1000	      5000 ns/op
BenchmarkEvaluatorUserDelta_N10000-8	  200000	       150 ns/op	      22 B/op	       1 allocs/op
BenchmarkEvaluatorUserFull_N10000-8 	      20	   1500000 ns/op	 1000000 B/op	      45 allocs/op
PASS
ok  	repro/internal/reward	1.0s
`

func TestRunDiff(t *testing.T) {
	baseline := `{
  "benchmarks": [
    {"name": "BenchmarkRoundGainScalar_N10000", "pkg": "repro/internal/reward",
     "iterations": 250, "metrics": {"ns/op": 250000}},
    {"name": "BenchmarkRoundGainBatch_N10000", "pkg": "repro/internal/reward",
     "iterations": 250, "metrics": {"ns/op": 100000}},
    {"name": "BenchmarkGone_Old", "pkg": "repro/internal/reward",
     "iterations": 10, "metrics": {"ns/op": 1}}
  ]
}`
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runDiff(path, strings.NewReader(diffSample), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// Scalar bench is 240000 vs 250000 baseline: -4.0%, no slowdown flag.
	if !strings.Contains(got, "BenchmarkRoundGainScalar_N10000") || !strings.Contains(got, "-4.0%") {
		t.Errorf("scalar delta missing:\n%s", got)
	}
	// Batch bench regressed 100000 -> 120000: +20%, must carry the flag.
	if !strings.Contains(got, "+20.0% !") {
		t.Errorf("regression not flagged:\n%s", got)
	}
	// New benchmark and removed baseline entry are both reported.
	if !strings.Contains(got, "BenchmarkFresh_New") || !strings.Contains(got, "new") {
		t.Errorf("new benchmark not listed:\n%s", got)
	}
	if !strings.Contains(got, "BenchmarkGone_Old") || !strings.Contains(got, "removed") {
		t.Errorf("removed benchmark not listed:\n%s", got)
	}
	// Pair table: 240000/120000 = 2.00x.
	if !strings.Contains(got, "scalar vs batch") || !strings.Contains(got, "2.00x") {
		t.Errorf("pair speedup missing:\n%s", got)
	}
	// Delta pair table: 1500000/150 = 10000x.
	if !strings.Contains(got, "incremental delta vs full rebuild") || !strings.Contains(got, "10000x") {
		t.Errorf("delta speedup missing:\n%s", got)
	}
}

func TestRunDiffMissingBaseline(t *testing.T) {
	var out strings.Builder
	if err := runDiff(filepath.Join(t.TempDir(), "nope.json"), strings.NewReader(diffSample), &out); err == nil {
		t.Error("missing baseline accepted")
	}
}

func TestRunDiffEmptyStdin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(`{"benchmarks": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runDiff(path, strings.NewReader("PASS\n"), &out); err == nil {
		t.Error("empty bench output accepted")
	}
}

const shardSample = `cpu: new-machine
pkg: repro
BenchmarkSingleShotSolve_N1M_K32 	       1	27000000000 ns/op	      4173 reward
BenchmarkShardedSolve_N1M_K32    	       1	13500000000 ns/op	      4173 reward
PASS
ok  	repro	41.0s
`

func TestRunDiffShardPair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(`{"benchmarks": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runDiff(path, strings.NewReader(shardSample), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "single-shot vs sharded solve") {
		t.Fatalf("shard pair table missing:\n%s", got)
	}
	if !strings.Contains(got, "BenchmarkShardedSolve_N1M_K32") || !strings.Contains(got, "2.00x") {
		t.Errorf("shard speedup not computed:\n%s", got)
	}
}

const nearLinearSample = `pkg: repro
BenchmarkSingleShotSolve_N1M_K32 	       1	30000000000 ns/op	      4173 reward
BenchmarkNearLinearSolve_N1M_K32 	       1	  600000000 ns/op	      4003 reward
PASS
ok  	repro	31.0s
`

func TestRunDiffNearLinearPair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(`{"benchmarks": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runDiff(path, strings.NewReader(nearLinearSample), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "exact greedy vs near-linear solve") {
		t.Fatalf("near-linear pair table missing:\n%s", got)
	}
	// Speedup 30000000000/600000000 = 50.00x; quality 4003/4173 = 0.959x.
	if !strings.Contains(got, "BenchmarkNearLinearSolve_N1M_K32") || !strings.Contains(got, "50.00x") {
		t.Errorf("near-linear speedup not computed:\n%s", got)
	}
	if !strings.Contains(got, "0.959x") {
		t.Errorf("quality ratio not computed:\n%s", got)
	}
}

func TestRunMerge(t *testing.T) {
	baseline := `{
  "env": {"cpu": "old-machine", "goos": "linux"},
  "benchmarks": [
    {"name": "BenchmarkKept", "pkg": "repro", "iterations": 10, "metrics": {"ns/op": 111}},
    {"name": "BenchmarkSingleShotSolve_N1M_K32", "pkg": "repro",
     "iterations": 1, "metrics": {"ns/op": 99e9}}
  ]
}`
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runMerge(path, strings.NewReader(shardSample), &out); err != nil {
		t.Fatal(err)
	}
	var merged Baseline
	if err := json.Unmarshal([]byte(out.String()), &merged); err != nil {
		t.Fatalf("merged output not valid JSON: %v\n%s", err, out.String())
	}
	byName := map[string]Result{}
	for _, r := range merged.Benchmarks {
		byName[r.Name] = r
	}
	if len(merged.Benchmarks) != 3 {
		t.Fatalf("merged %d benchmarks, want 3 (kept + replaced + new)", len(merged.Benchmarks))
	}
	if byName["BenchmarkKept"].Metrics["ns/op"] != 111 {
		t.Error("untouched baseline entry lost")
	}
	if got := byName["BenchmarkSingleShotSolve_N1M_K32"].Metrics["ns/op"]; got != 27000000000 {
		t.Errorf("re-run entry not replaced: ns/op = %v", got)
	}
	if _, ok := byName["BenchmarkShardedSolve_N1M_K32"]; !ok {
		t.Error("new entry not added")
	}
	if merged.Env["cpu"] != "new-machine" || merged.Env["goos"] != "linux" {
		t.Errorf("env merge wrong: %v", merged.Env)
	}
	// Canonical order: sorted by pkg then name.
	for i := 1; i < len(merged.Benchmarks); i++ {
		a, b := merged.Benchmarks[i-1], merged.Benchmarks[i]
		if a.Pkg > b.Pkg || (a.Pkg == b.Pkg && a.Name > b.Name) {
			t.Fatalf("merged output not sorted: %s after %s", b.Name, a.Name)
		}
	}
}

func TestRunMergeEmptyStdin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(`{"benchmarks": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runMerge(path, strings.NewReader("no benchmarks here\n"), &strings.Builder{}); err == nil {
		t.Fatal("empty stdin accepted")
	}
}
