package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Diff mode: `benchjson -diff BENCH_baseline.json` parses fresh bench output
// on stdin and prints a per-benchmark comparison against the committed
// baseline, plus a Scalar↔Batch kernel-speedup table for paired benchmarks.
// The report is advisory — it never fails the build — because benchmark noise
// on shared CI hardware would make a hard gate flaky.

// key identifies a benchmark across runs.
func key(r Result) string {
	if r.Pkg == "" {
		return r.Name
	}
	return r.Pkg + "." + r.Name
}

// loadBaseline reads a committed benchjson document.
func loadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchjson: parsing %s: %w", path, err)
	}
	return &b, nil
}

// Diff writes the baseline-vs-current comparison. A positive delta means the
// current run is slower. Benchmarks present on only one side are listed so
// renames and additions are visible rather than silently dropped.
func Diff(baseline, current *Baseline, w io.Writer) {
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		base[key(r)] = r
	}
	seen := make(map[string]bool, len(current.Benchmarks))

	fmt.Fprintf(w, "%-52s %14s %14s %9s\n", "benchmark", "base ns/op", "new ns/op", "delta")
	for _, r := range current.Benchmarks {
		k := key(r)
		seen[k] = true
		newNS, ok := r.Metrics["ns/op"]
		if !ok {
			continue
		}
		b, inBase := base[k]
		if !inBase {
			fmt.Fprintf(w, "%-52s %14s %14.0f %9s\n", r.Name, "-", newNS, "new")
			continue
		}
		baseNS := b.Metrics["ns/op"]
		if baseNS <= 0 {
			continue
		}
		pct := (newNS - baseNS) / baseNS * 100
		mark := ""
		if pct > 5 {
			mark = " !"
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %+8.1f%%%s\n", r.Name, baseNS, newNS, pct, mark)
	}
	var gone []string
	for k := range base {
		if !seen[k] {
			gone = append(gone, k)
		}
	}
	sort.Strings(gone)
	for _, k := range gone {
		fmt.Fprintf(w, "%-52s %14s %14s %9s\n", k, "", "", "removed")
	}

	pairSpeedups(current, w)
	deltaSpeedups(current, w)
	shardSpeedups(current, w)
	nearLinearSpeedups(current, w)
	clusterSpeedups(current, w)
}

// pairSpeedups reports the scalar-vs-batched kernel speedup for every
// BenchmarkFooScalar*/BenchmarkFooBatch* pair in the current run. This is the
// headline number for the batched evaluation path: same work, same inputs,
// per-point interface dispatch vs flat kernels.
func pairSpeedups(current *Baseline, w io.Writer) {
	byKey := make(map[string]Result, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		byKey[key(r)] = r
	}
	var names []string
	for k := range byKey {
		if strings.Contains(k, "Scalar") {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	header := false
	for _, k := range names {
		bk := strings.Replace(k, "Scalar", "Batch", 1)
		batch, ok := byKey[bk]
		if !ok {
			continue
		}
		sNS, bNS := byKey[k].Metrics["ns/op"], batch.Metrics["ns/op"]
		if sNS <= 0 || bNS <= 0 {
			continue
		}
		if !header {
			fmt.Fprintf(w, "\n%-52s %9s\n", "scalar vs batch", "speedup")
			header = true
		}
		fmt.Fprintf(w, "%-52s %8.2fx\n", byKey[k].Name, sNS/bNS)
	}
}

// deltaSpeedups reports the incremental-vs-rebuild speedup for every
// BenchmarkFooDelta*/BenchmarkFooFull* pair in the current run: the same
// population churn applied through Evaluator deltas versus a from-scratch
// evaluator rebuild. The churn acceptance gate is a >= 5x speedup for the
// single-user delta at n = 10000.
func deltaSpeedups(current *Baseline, w io.Writer) {
	byKey := make(map[string]Result, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		byKey[key(r)] = r
	}
	var names []string
	for k := range byKey {
		if strings.Contains(k, "Delta") {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	header := false
	for _, k := range names {
		fk := strings.Replace(k, "Delta", "Full", 1)
		full, ok := byKey[fk]
		if !ok {
			continue
		}
		dNS, fNS := byKey[k].Metrics["ns/op"], full.Metrics["ns/op"]
		if dNS <= 0 || fNS <= 0 {
			continue
		}
		if !header {
			fmt.Fprintf(w, "\n%-52s %9s\n", "incremental delta vs full rebuild", "speedup")
			header = true
		}
		fmt.Fprintf(w, "%-52s %8.0fx\n", byKey[k].Name, fNS/dNS)
	}
}

// shardSpeedups reports the single-shot-vs-sharded solve speedup for every
// BenchmarkSingleShot*/BenchmarkSharded* pair in the current run: the same
// instance solved monolithically versus through the
// partition → shard-solve → merge pipeline. On a single core the ratio
// reflects locality alone; the parallel shard-solve stage is what the
// pipeline buys on real hardware.
func shardSpeedups(current *Baseline, w io.Writer) {
	byKey := make(map[string]Result, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		byKey[key(r)] = r
	}
	var names []string
	for k := range byKey {
		if strings.Contains(k, "SingleShot") {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	header := false
	for _, k := range names {
		sk := strings.Replace(k, "SingleShot", "Sharded", 1)
		sharded, ok := byKey[sk]
		if !ok {
			continue
		}
		oneNS, shNS := byKey[k].Metrics["ns/op"], sharded.Metrics["ns/op"]
		if oneNS <= 0 || shNS <= 0 {
			continue
		}
		if !header {
			fmt.Fprintf(w, "\n%-52s %9s\n", "single-shot vs sharded solve", "speedup")
			header = true
		}
		fmt.Fprintf(w, "%-52s %8.2fx\n", sharded.Name, oneNS/shNS)
	}
}

// nearLinearSpeedups reports the exact-greedy-vs-near-linear solve tradeoff
// for every BenchmarkSingleShot*/BenchmarkNearLinear* pair in the current
// run: wall-clock speedup next to the quality ratio (near-linear reward over
// exact-greedy reward). The acceptance gate for the approximate solver is
// quality >= 0.90x at >= 5x speedup on the n = 1M instance.
func nearLinearSpeedups(current *Baseline, w io.Writer) {
	byKey := make(map[string]Result, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		byKey[key(r)] = r
	}
	var names []string
	for k := range byKey {
		if strings.Contains(k, "SingleShot") {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	header := false
	for _, k := range names {
		nk := strings.Replace(k, "SingleShot", "NearLinear", 1)
		nl, ok := byKey[nk]
		if !ok {
			continue
		}
		oneNS, nlNS := byKey[k].Metrics["ns/op"], nl.Metrics["ns/op"]
		if oneNS <= 0 || nlNS <= 0 {
			continue
		}
		quality := "-"
		if oneRW, nlRW := byKey[k].Metrics["reward"], nl.Metrics["reward"]; oneRW > 0 && nlRW > 0 {
			quality = fmt.Sprintf("%.3fx", nlRW/oneRW)
		}
		if !header {
			fmt.Fprintf(w, "\n%-52s %9s %9s\n", "exact greedy vs near-linear solve", "speedup", "quality")
			header = true
		}
		fmt.Fprintf(w, "%-52s %8.2fx %9s\n", nl.Name, oneNS/nlNS, quality)
	}
}

// clusterSpeedups reports the single-node-vs-cluster solve ratio for every
// .../nodes=1 ↔ .../nodes=3 sub-benchmark pair in the current run: the same
// sharded solve merged locally versus fanned out to peers over the wire. The
// parity column is the cluster reward over the single-node reward and must
// print 1.000x — forwarding is required to be bit-identical. On a one-box
// loopback run the speedup prices pure wire overhead (expect < 1x); across
// real machines the fan-out is what cluster mode buys.
func clusterSpeedups(current *Baseline, w io.Writer) {
	byKey := make(map[string]Result, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		byKey[key(r)] = r
	}
	var names []string
	for k := range byKey {
		if strings.Contains(k, "nodes=1") {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	header := false
	for _, k := range names {
		ck := strings.Replace(k, "nodes=1", "nodes=3", 1)
		cluster, ok := byKey[ck]
		if !ok {
			continue
		}
		oneNS, clNS := byKey[k].Metrics["ns/op"], cluster.Metrics["ns/op"]
		if oneNS <= 0 || clNS <= 0 {
			continue
		}
		parity := "-"
		if oneRW, clRW := byKey[k].Metrics["reward"], cluster.Metrics["reward"]; oneRW > 0 && clRW > 0 {
			parity = fmt.Sprintf("%.3fx", clRW/oneRW)
		}
		if !header {
			fmt.Fprintf(w, "\n%-52s %9s %9s\n", "single-node vs 3-node cluster solve", "speedup", "parity")
			header = true
		}
		fmt.Fprintf(w, "%-52s %8.2fx %9s\n", cluster.Name, oneNS/clNS, parity)
	}
}

// runDiff is the -diff entry point: current results on stdin, baseline from
// the given path. Always exits 0 on valid input (advisory report).
func runDiff(baselinePath string, in io.Reader, out io.Writer) error {
	baseline, err := loadBaseline(baselinePath)
	if err != nil {
		return err
	}
	current, err := Parse(in)
	if err != nil {
		return err
	}
	if len(current.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	Diff(baseline, current, out)
	return nil
}
