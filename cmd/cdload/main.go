// Command cdload is an open-loop SLO harness for cdserved: it offers
// Poisson arrivals at a fixed rate (a slow server does not slow the
// generator, so saturation shows up as latency, 429s, and drops rather
// than being hidden by coordinated omission), mixes /v1/solve and
// /v1/churn requests, and reports client-side latency quantiles plus
// error/reject/partial rates.
//
// The exit status encodes the SLO verdict: -slo-p99 bounds the merged p99
// latency and -max-5xx caps server errors, so CI can gate directly on the
// command. -bench-out writes benchjson-format records (usable as a
// `benchjson -diff` baseline); -bench-text prints go-bench lines pipeable
// into benchjson.
//
// Usage:
//
//	cdload -url http://127.0.0.1:8080 -rate 100 -duration 30s -churn 0.2
//	cdload -rate 50 -duration 10s -slo-p99 500ms -max-5xx 0
//	cdload -rate 50 -duration 10s -bench-out load.json
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
)

func main() {
	// SIGINT/SIGTERM stop scheduling new arrivals; in-flight requests are
	// drained and the report covers what ran.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.Load(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
