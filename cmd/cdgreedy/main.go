// Command cdgreedy runs one of the paper's algorithms on a trace and prints
// the selected broadcast contents, per-round gains, and (optionally) the
// exhaustive baseline with the achieved approximation ratio.
//
// Usage:
//
//	cdtrace -n 40 | cdgreedy -alg greedy2 -k 4 -r 1
//	cdgreedy -trace trace.json -alg greedy4 -k 2 -r 1.5 -norm l1 -exhaustive
//	cdtrace -n 1000 | cdgreedy -all -k 4 -metrics out.json -events ev.jsonl
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	if err := cli.Greedy(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
