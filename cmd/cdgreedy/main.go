// Command cdgreedy runs one of the paper's algorithms on a trace and prints
// the selected broadcast contents, per-round gains, and (optionally) the
// exhaustive baseline with the achieved approximation ratio.
//
// Usage:
//
//	cdtrace -n 40 | cdgreedy -alg greedy2 -k 4 -r 1
//	cdgreedy -trace trace.json -alg greedy4 -k 2 -r 1.5 -norm l1 -exhaustive
//	cdtrace -n 1000 | cdgreedy -all -k 4 -metrics out.json -events ev.jsonl
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
)

func main() {
	// SIGINT/SIGTERM cancel the run's context; the tools treat that as a
	// clean early exit with partial output. A second signal kills outright
	// (stop() restores default handling once the context is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.Greedy(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
