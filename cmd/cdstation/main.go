// Command cdstation runs the time-slotted base-station simulator (the
// system the paper motivates) over a trace: each period the station selects
// k broadcast contents with the chosen algorithm while user interests drift
// and the population churns.
//
// Usage:
//
//	cdtrace -n 60 -kind zipf | cdstation -alg greedy2 -k 3 -periods 10
//	cdstation -trace t.json -alg greedy4 -k 2 -r 1.5 -drift 0.2 -churn 0.1
//	cdtrace -n 500 | cdstation -periods 200 -pprof localhost:6060 -metrics -
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	if err := cli.Station(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
