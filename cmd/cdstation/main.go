// Command cdstation runs the time-slotted base-station simulator (the
// system the paper motivates) over a trace: each period the station selects
// k broadcast contents with the chosen algorithm while user interests drift
// and the population churns. With -churn it switches to the dynamic-instance
// loop: Poisson arrivals and departures are applied as incremental evaluator
// deltas (bit-identical to rebuilding the instance) with one optionally
// warm-started re-solve per period.
//
// Usage:
//
//	cdtrace -n 60 -kind zipf | cdstation -alg greedy2 -k 3 -periods 10
//	cdstation -trace t.json -alg greedy4 -k 2 -r 1.5 -drift 0.2 -replace 0.1
//	cdtrace -n 200 | cdstation -churn -arrivals 5 -departs 3 -warm -index grid
//	cdtrace -n 500 | cdstation -periods 200 -pprof localhost:6060 -metrics -
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
)

func main() {
	// SIGINT/SIGTERM cancel the run's context; the tools treat that as a
	// clean early exit with partial output. A second signal kills outright
	// (stop() restores default handling once the context is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.Station(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
