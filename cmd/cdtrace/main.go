// Command cdtrace generates synthetic interest traces (the paper's
// evaluation workload plus clustered and Zipf-topic populations) and writes
// them as JSON or CSV for consumption by cdgreedy and cdstation.
//
// Usage:
//
//	cdtrace -n 40 -dim 2 -kind uniform -weights random -seed 7 > trace.json
//	cdtrace -n 160 -dim 3 -kind zipf -format csv > trace.csv
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
)

func main() {
	// SIGINT/SIGTERM cancel the run's context; the tools treat that as a
	// clean early exit with partial output. A second signal kills outright
	// (stop() restores default handling once the context is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.TraceGen(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
