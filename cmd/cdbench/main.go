// Command cdbench regenerates the paper's tables and figures. Each
// experiment id corresponds to one artifact of the evaluation section (see
// DESIGN.md §4); "all" runs the complete suite in order.
//
// Usage:
//
//	cdbench -run fig4 -trials 5 -seed 42
//	cdbench -run all -quick
//	cdbench -list
//	cdbench -run fig2 -plot           # render ASCII charts too
//	cdbench -run fig2 -csv out/       # also write each figure as CSV
//	cdbench -run all -metrics m.json  # telemetry snapshot incl. wall times
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
)

func main() {
	// SIGINT/SIGTERM cancel the run's context; the tools treat that as a
	// clean early exit with partial output. A second signal kills outright
	// (stop() restores default handling once the context is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.Bench(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
