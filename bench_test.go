package repro

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/clusterd"
	"repro/internal/core"
	"repro/internal/exhaustive"
	"repro/internal/experiments"
	"repro/internal/norm"
	"repro/internal/optimize"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/serve"
	"repro/internal/solver"
	"repro/internal/spatial"
	"repro/internal/xrand"
)

// Experiment benches: each regenerates one paper artifact end to end
// (workload generation → algorithms → baseline → aggregation). They run the
// drivers in quick mode so `go test -bench=.` stays tractable; use
// cmd/cdbench for full-fidelity runs.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.RunConfig{Seed: 42, Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Tables)+len(out.Figures)+len(out.Notes) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

func BenchmarkFig2(b *testing.B)               { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)               { benchExperiment(b, "fig3") }
func BenchmarkTable1(b *testing.B)             { benchExperiment(b, "table1") }
func BenchmarkFig4(b *testing.B)               { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)               { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)               { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)               { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)               { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)               { benchExperiment(b, "fig9") }
func BenchmarkSummary(b *testing.B)            { benchExperiment(b, "summary") }
func BenchmarkTradeoff(b *testing.B)           { benchExperiment(b, "tradeoff") }
func BenchmarkAblationExhaustive(b *testing.B) { benchExperiment(b, "ablation-exhaustive") }
func BenchmarkAblationBallMode(b *testing.B)   { benchExperiment(b, "ablation-ballmode") }
func BenchmarkAblationInner(b *testing.B)      { benchExperiment(b, "ablation-inner") }
func BenchmarkAblationScale(b *testing.B)      { benchExperiment(b, "ablation-scale") }
func BenchmarkValidate(b *testing.B)           { benchExperiment(b, "validate") }
func BenchmarkMultistation(b *testing.B)       { benchExperiment(b, "multistation") }
func BenchmarkKCurve(b *testing.B)             { benchExperiment(b, "kcurve") }
func BenchmarkComplexity(b *testing.B)         { benchExperiment(b, "complexity") }
func BenchmarkBaselines(b *testing.B)          { benchExperiment(b, "baselines") }
func BenchmarkRadiusCurve(b *testing.B)        { benchExperiment(b, "radiuscurve") }
func BenchmarkWeightSkew(b *testing.B)         { benchExperiment(b, "weightskew") }

// Algorithm micro-benches at the paper's headline scale: 40 nodes, 4×4 box,
// random weights, k = 4, r = 1 (the Fig. 3 / Table I instance shape). These
// expose the O(kn), O(kn²), O(kn³) complexity separation of Theorems 3–4.

func paperInstance(b *testing.B, n, dim int, nm norm.Norm, r float64) *reward.Instance {
	b.Helper()
	box := pointset.PaperBox2D()
	if dim == 3 {
		box = pointset.PaperBox3D()
	}
	set, err := pointset.GenUniform(n, box, pointset.RandomIntWeight, xrand.New(42))
	if err != nil {
		b.Fatal(err)
	}
	in, err := reward.NewInstance(set, nm, r)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func benchAlgorithm(b *testing.B, alg core.Algorithm, n, dim, k int, nm norm.Norm, r float64) {
	b.Helper()
	in := paperInstance(b, n, dim, nm, r)
	b.ReportAllocs()
	b.ResetTimer()
	var total float64
	for i := 0; i < b.N; i++ {
		res, err := alg.Run(context.Background(), in, k)
		if err != nil {
			b.Fatal(err)
		}
		total = res.Total
	}
	b.ReportMetric(total, "reward")
}

func BenchmarkGreedy1_N40(b *testing.B) {
	benchAlgorithm(b, core.RoundBased{Solver: optimize.Multistart{Workers: 1}}, 40, 2, 4, norm.L2{}, 1)
}
func BenchmarkGreedy2_N40(b *testing.B) {
	benchAlgorithm(b, core.LocalGreedy{Workers: 1}, 40, 2, 4, norm.L2{}, 1)
}
func BenchmarkGreedy3_N40(b *testing.B) {
	benchAlgorithm(b, core.SimpleGreedy{}, 40, 2, 4, norm.L2{}, 1)
}
func BenchmarkGreedy4_N40(b *testing.B) {
	benchAlgorithm(b, core.ComplexGreedy{Workers: 1}, 40, 2, 4, norm.L2{}, 1)
}
func BenchmarkGreedy2_N160_3D(b *testing.B) {
	benchAlgorithm(b, core.LocalGreedy{Workers: 1}, 160, 3, 4, norm.L1{}, 1.5)
}
func BenchmarkGreedy3_N160_3D(b *testing.B) {
	benchAlgorithm(b, core.SimpleGreedy{}, 160, 3, 4, norm.L1{}, 1.5)
}
func BenchmarkGreedy4_N160_3D(b *testing.B) {
	benchAlgorithm(b, core.ComplexGreedy{Workers: 1}, 160, 3, 4, norm.L1{}, 1.5)
}

// Exhaustive baseline benches: the cost of the ratio denominators, serial vs
// parallel enumeration (the ablation DESIGN.md calls out).

func benchExhaustive(b *testing.B, workers, gridPer int) {
	in := paperInstance(b, 40, 2, norm.L2{}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := exhaustive.Solve(context.Background(), in, 4, exhaustive.Options{
			GridPer: gridPer, Box: pointset.PaperBox2D(), Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustiveN40K4Serial(b *testing.B)   { benchExhaustive(b, 1, 0) }
func BenchmarkExhaustiveN40K4Parallel(b *testing.B) { benchExhaustive(b, 0, 0) }
func BenchmarkExhaustiveN40K4Grid5(b *testing.B)    { benchExhaustive(b, 0, 5) }

// Sharded pipeline benches at service scale: one million users in the 4×4
// box with r = 0.02 (a dense urban-cell workload), k = 32 broadcasts. The
// single-shot baseline is lazy greedy (bit-identical to greedy2); the
// sharded run splits the box into 8 spatial shards, solves them in
// parallel, and lazy-greedy merges the candidate union. The names pair as
// SingleShot↔Sharded for benchjson's speedup table. Run with -benchtime=1x:
// each iteration is a full solve measured in seconds.

func millionInstance(b *testing.B) *reward.Instance {
	b.Helper()
	in := paperInstance(b, 1_000_000, 2, norm.L2{}, 0.02)
	g, err := spatial.NewGrid(in.Set.Points(), in.Radius)
	if err != nil {
		b.Fatal(err)
	}
	in.SetFinder(g)
	return in
}

func benchSolverScale(b *testing.B, name string, opts solver.Options) {
	b.Helper()
	in := millionInstance(b)
	alg, err := solver.New(name, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var total float64
	for i := 0; i < b.N; i++ {
		res, err := alg.Run(context.Background(), in, 32)
		if err != nil {
			b.Fatal(err)
		}
		total = res.Total
	}
	b.ReportMetric(total, "reward")
}

func BenchmarkSingleShotSolve_N1M_K32(b *testing.B) {
	benchSolverScale(b, "greedy2-lazy", solver.Options{})
}
func BenchmarkShardedSolve_N1M_K32(b *testing.B) {
	benchSolverScale(b, "greedy2-lazy", solver.Options{Shards: 8})
}

// BenchmarkNearLinearSolve_N1M_K32 pairs with SingleShotSolve for
// benchjson's Greedy↔NearLinear table: same instance, same k, but the
// grid-snapped approximate solver — the reward metric carries the quality
// ratio's numerator.
func BenchmarkNearLinearSolve_N1M_K32(b *testing.B) {
	benchSolverScale(b, "nearlinear", solver.Options{})
}

// Cluster benches: the same million-user sharded solve, solved alone versus
// coordinated across a 3-node loopback cluster. nodes=1 runs the local
// partition → solve → merge pipeline; nodes=3 installs clusterd's forwarding
// PartSolver against two in-process peers, so every shard crosses the wire
// (JSON codec both ways over loopback HTTP) and comes back bit-identical —
// the reward metric must match across the pair. On one box the pair prices
// pure wire overhead; on real hardware the peer fan-out is what cluster mode
// buys. The sub-benchmark names pair as nodes=1↔nodes=3 for benchjson's
// cluster table. Run with -benchtime=1x: each iteration is a full solve.
func BenchmarkClusterSolve_N1M_K32(b *testing.B) {
	b.Run("nodes=1", func(b *testing.B) {
		benchSolverScale(b, "greedy2-lazy", solver.Options{Shards: 8})
	})
	b.Run("nodes=3", func(b *testing.B) {
		var peers []string
		for i := 0; i < 2; i++ {
			// Forwarded sub-instances run ~5 MB of JSON, so the peers need a
			// body cap above the serving default; caching is off so every
			// iteration re-solves instead of replaying the first answer.
			s := serve.New(serve.Config{MaxBody: 64 << 20, CacheBytes: -1})
			ts := httptest.NewServer(s.Handler())
			b.Cleanup(ts.Close)
			peers = append(peers, ts.URL)
		}
		cl := clusterd.New(clusterd.Config{Peers: peers})
		cl.GossipOnce(context.Background())
		remote := cl.PartSolver(clusterd.ForwardSpec{Solver: "greedy2-lazy", Norm: "l2"})
		benchSolverScale(b, "greedy2-lazy", solver.Options{Shards: 8, Remote: remote})
	})
}
