// Quickstart: build a small user population, pick k broadcast contents with
// each of the paper's algorithms, and compare against the exhaustive
// optimum. This is the five-minute tour of the library's public surface:
// pointset → reward.Instance → core algorithms → exhaustive baseline.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exhaustive"
	"repro/internal/norm"
	"repro/internal/optimize"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/reward"
	"repro/internal/xrand"
)

func main() {
	ctx := context.Background()
	// 1. A population: 20 users uniformly spread over the paper's 4×4
	//    interest plane, with random integer happiness caps in 1..5.
	rng := xrand.New(2011) // the paper's year; any seed reproduces exactly
	users, err := pointset.GenUniform(20, pointset.PaperBox2D(), pointset.RandomIntWeight, rng)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The problem instance: Euclidean interest distance, contents cover
	//    a disk of radius 1.5, and the station may broadcast k = 3 times.
	in, err := reward.NewInstance(users, norm.L2{}, 1.5)
	if err != nil {
		log.Fatal(err)
	}
	const k = 3

	// 3. Run all four algorithms from the paper.
	algs := []core.Algorithm{
		core.RoundBased{Solver: optimize.Multistart{}}, // Algorithm 1
		core.LocalGreedy{},   // Algorithm 2
		core.SimpleGreedy{},  // Algorithm 3
		core.ComplexGreedy{}, // Algorithm 4
	}
	tb := report.NewTable(fmt.Sprintf("k=%d broadcasts for %d users (Σw = %.0f)", k, users.Len(), users.TotalWeight()),
		"algorithm", "round gains", "total", "ratio vs exhaustive")

	// 4. The exhaustive baseline the paper divides by.
	ex, err := exhaustive.Solve(ctx, in, k, exhaustive.Options{GridPer: 5, Box: pointset.PaperBox2D(), Polish: true})
	if err != nil {
		log.Fatal(err)
	}

	for _, a := range algs {
		res, err := a.Run(ctx, in, k)
		if err != nil {
			log.Fatal(err)
		}
		gains := ""
		for j, g := range res.Gains {
			if j > 0 {
				gains += " "
			}
			gains += fmt.Sprintf("%.2f", g)
		}
		tb.AddRow(res.Algorithm, gains, res.Total, res.Total/ex.Total)
	}
	tb.AddRow("exhaustive", "", ex.Total, 1.0)
	fmt.Print(tb.Render())

	fmt.Println("\nselected contents (greedy4):")
	res, err := (core.ComplexGreedy{}).Run(ctx, in, k)
	if err != nil {
		log.Fatal(err)
	}
	for j, c := range res.Centers {
		fmt.Printf("  broadcast %d at interest point %v\n", j+1, c)
	}
}
