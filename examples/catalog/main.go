// Catalog example: a deployable station cannot synthesize arbitrary content
// — it broadcasts items from a finite library. This example measures what a
// catalog costs relative to the paper's idealized continuous placement, as
// the library grows from 4 items to a dense lattice, and compares single-
// versus multi-station deployments under one broadcast budget.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func main() {
	ctx := context.Background()
	tr, err := trace.Generate(trace.Config{
		N:      70,
		Box:    pointset.PaperBox2D(),
		Kind:   trace.ZipfTopics,
		Scheme: pointset.RandomIntWeight,
		Topics: 5,
		Sigma:  0.3,
	}, xrand.New(21))
	if err != nil {
		log.Fatal(err)
	}
	cfg := broadcast.Config{K: 3, Radius: 1.2, Periods: 8, DriftSigma: 0.1, Seed: 5}
	inner := broadcast.AlgorithmScheduler{Algo: core.ComplexGreedy{}}

	// Catalog sweep: corners only → coarse lattice → dense lattice → free.
	corners := []vec.V{vec.Of(0.5, 0.5), vec.Of(3.5, 0.5), vec.Of(0.5, 3.5), vec.Of(3.5, 3.5)}
	coarse, err := pointset.GridPoints(pointset.PaperBox2D(), 4)
	if err != nil {
		log.Fatal(err)
	}
	dense, err := pointset.GridPoints(pointset.PaperBox2D(), 12)
	if err != nil {
		log.Fatal(err)
	}
	tb := report.NewTable("catalog size vs satisfaction (greedy4 proposals, k=3, 8 periods)",
		"catalog", "items", "mean satisfaction")
	for _, c := range []struct {
		name  string
		items []vec.V
	}{
		{"corners", corners},
		{"4x4 lattice", coarse},
		{"12x12 lattice", dense},
	} {
		m, err := broadcast.Run(ctx, tr, broadcast.CatalogScheduler{Inner: inner, Catalog: c.items}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(c.name, len(c.items), m.MeanSatisfaction)
	}
	free, err := broadcast.Run(ctx, tr, inner, cfg)
	if err != nil {
		log.Fatal(err)
	}
	tb.AddRow("unconstrained (paper's model)", "∞", free.MeanSatisfaction)
	fmt.Print(tb.Render())

	// Multi-station view: split the same budget across stations.
	fmt.Println()
	tb2 := report.NewTable("same 3-broadcast budget, partitioned across stations",
		"deployment", "mean satisfaction")
	single, err := broadcast.RunMulti(ctx, tr, inner, cfg, 1, broadcast.RandomAssign)
	if err != nil {
		log.Fatal(err)
	}
	tb2.AddRow("1 station × k=3", single.MeanSatisfaction)
	cfg3 := cfg
	cfg3.K = 1
	triple, err := broadcast.RunMulti(ctx, tr, inner, cfg3, 3, broadcast.NearestAnchor)
	if err != nil {
		log.Fatal(err)
	}
	tb2.AddRow("3 stations × k=1 (interest cells)", triple.MeanSatisfaction)
	fmt.Print(tb2.Render())
}
