// Landscape example: visualize the round-gain surface g(c) the algorithms
// climb. The first panel shows the fresh landscape — peaks where user mass
// concentrates; the second shows the residual landscape after greedy 2's
// first pick, with that peak consumed. This is the geometry behind the
// round-based heuristic's "re-optimize against residuals" loop.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/reward"
	"repro/internal/trace"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func main() {
	ctx := context.Background()
	tr, err := trace.Generate(trace.Config{
		N:      60,
		Box:    pointset.PaperBox2D(),
		Kind:   trace.Clustered,
		Scheme: pointset.RandomIntWeight,
		Topics: 3,
		Sigma:  0.35,
	}, xrand.New(17))
	if err != nil {
		log.Fatal(err)
	}
	set, err := tr.ToSet()
	if err != nil {
		log.Fatal(err)
	}
	in, err := reward.NewInstance(set, norm.L2{}, 1.0)
	if err != nil {
		log.Fatal(err)
	}

	h := report.Heatmap{
		Title: "round-1 gain landscape g(c), 60 clustered users, r=1",
		LoX:   0, HiX: 4, LoY: 0, HiY: 4, Cols: 64, Rows: 24,
	}
	y := in.NewResiduals()
	fmt.Print(h.Render(func(x, yy float64) float64 {
		return in.RoundGain(vec.Of(x, yy), y)
	}))

	res, err := (core.LocalGreedy{}).Run(ctx, in, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngreedy2 takes %v (gain %.3f); the residual landscape:\n\n", res.Centers[0], res.Gains[0])

	in.ApplyRound(res.Centers[0], y)
	h.Title = "round-2 gain landscape after consuming the first peak"
	fmt.Print(h.Render(func(x, yy float64) float64 {
		return in.RoundGain(vec.Of(x, yy), y)
	}))
}
