// Telemetry: instrument a solver run programmatically with internal/obs.
// The tour: build an instance, attach an obs.Metrics collector (aggregates)
// and an obs.Sink (streaming JSONL events) through obs.Multi, wrap the
// algorithm with core.Instrument, then read the numbers back — per-round
// gains and wall times from the event stream, reward-evaluation and lazy
// heap counters from the snapshot.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/xrand"
)

func main() {
	ctx := context.Background()
	// 1. A 400-user instance on the paper's 4×4 plane.
	rng := xrand.New(7)
	users, err := pointset.GenUniform(400, pointset.PaperBox2D(), pointset.RandomIntWeight, rng)
	if err != nil {
		log.Fatal(err)
	}
	in, err := reward.NewInstance(users, norm.L2{}, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Two collectors: metrics aggregate in memory, the sink streams
	//    every event as a JSON line. Multi fans out to both.
	metrics := obs.NewMetrics()
	f, err := os.CreateTemp("", "events-*.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	sink := obs.NewSink(f)
	col := obs.Multi(metrics, sink)

	// 3. Attach the collector to the reward oracle and the algorithm.
	//    Uninstrumented code pays nothing: with a nil collector both
	//    SetCollector and Instrument are no-ops.
	in.SetCollector(col)
	alg := core.Instrument(core.LazyGreedy{}, col)

	const k = 4
	res, err := alg.Run(ctx, in, k)
	if err != nil {
		log.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		log.Fatal(err)
	}

	// 4. Read the aggregates back.
	snap := metrics.Snapshot()
	fmt.Printf("%s: total reward %.2f of %.0f\n", res.Algorithm, res.Total, users.TotalWeight())
	fmt.Printf("  reward evaluations: %d (a full scan per round would be %d)\n",
		snap.Counters[obs.CtrGainEvals], users.Len()*k)
	fmt.Printf("  lazy heap re-pops:  %d\n", snap.Counters[obs.CtrLazyRepops])
	fmt.Printf("  rounds:             %d\n", snap.Counters[obs.CtrRounds])
	if h, ok := snap.TimersNS[obs.TimRound]; ok {
		fmt.Printf("  round wall time:    mean %.0f ns, p99 %.0f ns\n", h.Mean, h.P99)
	}

	// 5. The same run, per round, from the buffered events.
	fmt.Println("  per-round telemetry:")
	for _, e := range snap.Events {
		if e.Type != obs.EvRoundEnd {
			continue
		}
		fmt.Printf("    round %d: gain %.2f, %.0f re-pops, %.2f ms\n",
			e.Round, e.Fields["gain"], e.Fields["repops"], e.Fields["wall_ns"]/1e6)
	}

	// 6. The sink wrote the identical stream as JSONL for offline tools.
	st, _ := f.Stat()
	fmt.Printf("  event stream:       %s (%d bytes of JSONL)\n", f.Name(), st.Size())

	// 7. Anytime results under a deadline: a context that cancels after the
	//    first round_end makes the solver stop at the next round boundary
	//    and return its committed prefix together with ctx.Err(). Telemetry
	//    records the early stop as a "cancelled" event carrying the number
	//    of completed rounds.
	dm := obs.NewMetrics()
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	bounded := core.Instrument(core.LazyGreedy{}, obs.Multi(dm, cancelAfterRound{1, cancel}))
	partial, err := bounded.Run(dctx, in, k)
	if err != context.Canceled {
		log.Fatalf("expected context.Canceled, got %v", err)
	}
	fmt.Printf("deadline-bounded run: %d of %d rounds committed, partial reward %.2f\n",
		len(partial.Centers), k, partial.Total)
	for _, e := range dm.Snapshot().Events {
		if e.Type == obs.EvCancelled {
			fmt.Printf("  cancelled event:    alg=%s rounds=%.0f\n", e.Alg, e.Fields["rounds"])
		}
	}
}

// cancelAfterRound is an obs.Collector that fires a context cancel once the
// given round finishes — a deterministic stand-in for a wall-clock deadline.
type cancelAfterRound struct {
	round  int
	cancel context.CancelFunc
}

func (cancelAfterRound) Count(string, int64)     {}
func (cancelAfterRound) TimeNS(string, int64)    {}
func (cancelAfterRound) Gauge(string, float64)   {}
func (cancelAfterRound) Observe(string, float64) {}
func (c cancelAfterRound) Emit(e obs.Event) {
	if e.Type == obs.EvRoundEnd && e.Round >= c.round {
		c.cancel()
	}
}
