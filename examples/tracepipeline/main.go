// Tracepipeline example: the serialization workflow behind the CLIs.
// Generate a trace, persist it to JSON and CSV, read both back, verify they
// agree, then run an algorithm on the reloaded population — the pattern for
// feeding externally collected interest data into the library.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/trace"
	"repro/internal/xrand"
)

func main() {
	ctx := context.Background()
	tr, err := trace.Generate(trace.Config{
		N:      30,
		Box:    pointset.PaperBox2D(),
		Kind:   trace.Clustered,
		Scheme: pointset.RandomIntWeight,
		Topics: 3,
		Sigma:  0.25,
	}, xrand.New(11))
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "cdtrace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Persist as JSON (full fidelity: carries the region bounds).
	jsonPath := filepath.Join(dir, "users.json")
	var jbuf bytes.Buffer
	if err := tr.WriteJSON(&jbuf); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(jsonPath, jbuf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}

	// Persist as CSV (spreadsheet-friendly; bounds are recomputed on read).
	csvPath := filepath.Join(dir, "users.csv")
	var cbuf bytes.Buffer
	if err := tr.WriteCSV(&cbuf); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(csvPath, cbuf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes) and %s (%d bytes)\n", jsonPath, jbuf.Len(), csvPath, cbuf.Len())

	// Read both back and verify they describe the same users.
	jf, err := os.Open(jsonPath)
	if err != nil {
		log.Fatal(err)
	}
	fromJSON, err := trace.ReadJSON(jf)
	jf.Close()
	if err != nil {
		log.Fatal(err)
	}
	cf, err := os.Open(csvPath)
	if err != nil {
		log.Fatal(err)
	}
	fromCSV, err := trace.ReadCSV(cf)
	cf.Close()
	if err != nil {
		log.Fatal(err)
	}
	if len(fromJSON.Users) != len(fromCSV.Users) {
		log.Fatalf("round-trip mismatch: %d vs %d users", len(fromJSON.Users), len(fromCSV.Users))
	}
	for i := range fromJSON.Users {
		a, b := fromJSON.Users[i], fromCSV.Users[i]
		if a.Weight != b.Weight || a.Interest[0] != b.Interest[0] || a.Interest[1] != b.Interest[1] {
			log.Fatalf("round-trip mismatch at user %d: %+v vs %+v", i, a, b)
		}
	}
	fmt.Println("JSON and CSV round-trips agree for all users")

	// Run the local greedy on the reloaded trace.
	set, err := fromJSON.ToSet()
	if err != nil {
		log.Fatal(err)
	}
	in, err := reward.NewInstance(set, norm.L2{}, 1.5)
	if err != nil {
		log.Fatal(err)
	}
	res, err := (core.LocalGreedy{}).Run(ctx, in, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy2 on reloaded trace: total reward %.3f of Σw = %.0f\n", res.Total, set.TotalWeight())
	for j, c := range res.Centers {
		fmt.Printf("  broadcast %d at %v (round gain %.3f)\n", j+1, c, res.Gains[j])
	}
}
