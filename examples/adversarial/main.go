// Adversarial example: hand-built instances that expose each algorithm's
// failure mode — the structures behind the paper's approximation-ratio gaps.
//
//  1. A "heavy decoy": one isolated heavy user lures greedy 3 (it chases
//     max w·y), while a crowd of light users elsewhere holds far more total
//     reward. greedy 2 reads the crowd correctly.
//  2. A "0.4-coverage bait": a mid point partially covering two clusters
//     baits coverage-aware greedy into broadcasting the same content twice
//     (the capped-sum reward pays in installments); the resulting solution
//     is even 1-swap stable, bounding what local refinement can fix.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/reward"
	"repro/internal/vec"
)

func run(ctx context.Context, title string, pts []vec.V, ws []float64, k int, r float64, algs []core.Algorithm) {
	set, err := pointset.New(pts, ws)
	if err != nil {
		log.Fatal(err)
	}
	in, err := reward.NewInstance(set, norm.L2{}, r)
	if err != nil {
		log.Fatal(err)
	}
	tb := report.NewTable(fmt.Sprintf("%s (n=%d, k=%d, r=%g, Σw=%.0f)", title, set.Len(), k, r, set.TotalWeight()),
		"algorithm", "total reward", "% of Σw")
	for _, a := range algs {
		res, err := a.Run(ctx, in, k)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(res.Algorithm, res.Total, 100*res.Total/set.TotalWeight())
	}
	fmt.Print(tb.Render())
	fmt.Println()
}

func main() {
	ctx := context.Background()
	// Scenario 1: heavy decoy vs light crowd. One user with weight 5 sits
	// alone at a corner; ten weight-1 users crowd the opposite corner
	// within one disk. k = 1: the crowd (total 10) beats the decoy (5),
	// but greedy 3 takes the decoy because 5 > any single crowd weight.
	crowd := []vec.V{}
	weights := []float64{}
	for i := 0; i < 10; i++ {
		crowd = append(crowd, vec.Of(3.4+0.05*float64(i%5), 3.4+0.05*float64(i/5)))
		weights = append(weights, 1)
	}
	pts := append(crowd, vec.Of(0.2, 0.2))
	weights = append(weights, 5)
	run(ctx, "heavy decoy vs light crowd", pts, weights, 1, 1.0, []core.Algorithm{
		core.LocalGreedy{},
		core.SimpleGreedy{},
		core.ComplexGreedy{},
	})

	// Scenario 2: the 0.4-coverage bait. Two tight 4-user clusters sit 2.4
	// apart (mutually uncovered at r = 2); a weight-2 user midway covers
	// both clusters at fraction 0.4. Round 1: the bait scores
	// 2 + 0.4·8 = 5.2, beating either cluster (4 + 0.4·2 = 4.8). Round 2's
	// best move is the bait AGAIN (0.4·8 = 3.2 of residual) — under Eq. 2
	// repeated broadcasts pay each user's cap in installments — totalling
	// 8.4. The optimum ignores the bait: both clusters fully (8) plus the
	// bait covered 0.4+0.4 → 1.6, i.e. 9.6. Notably the greedy solution is
	// 1-swap stable (any single replacement drops to 7.6), so swap search
	// keeps it: escaping needs a coordinated 2-swap. 8.4/9.6 = 0.875 sits
	// comfortably above the 1/2 swap-stability guarantee and illustrates
	// why measured ratios in the figures stay far above Theorem 2's bound.
	pts2 := []vec.V{
		vec.Of(0, 0), vec.Of(0, 0.001), vec.Of(0.001, 0), vec.Of(0.001, 0.001),
		vec.Of(2.4, 0), vec.Of(2.4, 0.001), vec.Of(2.401, 0), vec.Of(2.401, 0.001),
		vec.Of(1.2, 0), // the bait
	}
	ws2 := []float64{1, 1, 1, 1, 1, 1, 1, 1, 2}
	run(ctx, "0.4-coverage bait between two clusters", pts2, ws2, 2, 2.0, []core.Algorithm{
		core.LocalGreedy{},
		core.SimpleGreedy{},
		core.SwapLocalSearch{},
		core.ComplexGreedy{},
	})

	fmt.Println("Scenario 1 shows greedy 3's failure mode: chasing the single heaviest user")
	fmt.Println("forfeits the crowd. Scenario 2 shows the subtler trap for coverage-aware")
	fmt.Println("greedy: the capped-sum reward (Eq. 2) makes re-broadcasting a bait content")
	fmt.Println("locally optimal and even 1-swap stable at 87.5% of the true optimum —")
	fmt.Println("the structural reason measured ratios sit far above Theorem 2's bound.")
}
