// Interest3d example: the paper's m-dimensional extension. Contents and
// interests live in a 3-D keyword space measured with the 1-norm (taxicab
// interest distance), reproducing the setting of the paper's Figs. 8–9, and
// additionally exercising the general p-norm claim with p = 3 and the
// ∞-norm.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/optimize"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/reward"
	"repro/internal/xrand"
)

func main() {
	ctx := context.Background()
	rng := xrand.New(3)
	users, err := pointset.GenUniform(60, pointset.PaperBox3D(), pointset.RandomIntWeight, rng)
	if err != nil {
		log.Fatal(err)
	}
	const (
		k = 4
		r = 1.5
	)

	lp3, err := norm.NewLP(3)
	if err != nil {
		log.Fatal(err)
	}
	norms := []norm.Norm{norm.L1{}, norm.L2{}, lp3, norm.LInf{}}
	algs := []core.Algorithm{
		core.RoundBased{Solver: optimize.Multistart{}},
		core.LocalGreedy{},
		core.SimpleGreedy{},
		core.ComplexGreedy{},
	}

	tb := report.NewTable(
		fmt.Sprintf("60 users in the 4x4x4 cube, k=%d, r=%g (Σw = %.0f)", k, r, users.TotalWeight()),
		"norm", "greedy1", "greedy2", "greedy3", "greedy4")
	for _, nm := range norms {
		in, err := reward.NewInstance(users, nm, r)
		if err != nil {
			log.Fatal(err)
		}
		row := []interface{}{nm.Name()}
		for _, a := range algs {
			res, err := a.Run(ctx, in, k)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, res.Total)
		}
		tb.AddRow(row...)
	}
	fmt.Print(tb.Render())

	fmt.Println("\nper-round gains under the 1-norm (the paper's 3-D setting):")
	in, err := reward.NewInstance(users, norm.L1{}, r)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range algs {
		res, err := a.Run(ctx, in, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s", res.Algorithm)
		for _, g := range res.Gains {
			fmt.Printf("  %7.3f", g)
		}
		fmt.Printf("  | total %8.3f\n", res.Total)
	}
}
