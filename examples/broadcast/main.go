// Broadcast example: the motivating system of the paper end to end. A base
// station serves a Zipf-topic user population across many periods while
// interests drift and users churn; we compare an adaptive greedy scheduler
// against a static one and sweep k to expose the satisfaction-versus-
// service-frequency tradeoff (paper §III.A).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func main() {
	ctx := context.Background()
	// A community-structured population: most users care about a few
	// mainstream topics (music, sports, ...), modeled as Zipf-popular
	// clusters in the 4×4 interest plane.
	tr, err := trace.Generate(trace.Config{
		N:      80,
		Box:    pointset.PaperBox2D(),
		Kind:   trace.ZipfTopics,
		Scheme: pointset.RandomIntWeight,
		Topics: 6,
		Sigma:  0.35,
	}, xrand.New(7))
	if err != nil {
		log.Fatal(err)
	}

	cfg := broadcast.Config{
		K:          3,
		Radius:     1.2,
		Periods:    12,
		DriftSigma: 0.15,
		ChurnRate:  0.08,
		Seed:       99,
	}

	// Adaptive scheduling with the paper's local greedy vs a static
	// station that always replays the same three contents.
	schedulers := []broadcast.Scheduler{
		broadcast.AlgorithmScheduler{Algo: core.LocalGreedy{}},
		broadcast.AlgorithmScheduler{Algo: core.ComplexGreedy{}},
		broadcast.StaticScheduler{
			Label:    "static-corners",
			Contents: []vec.V{vec.Of(1, 1), vec.Of(3, 3), vec.Of(1, 3)},
		},
	}
	tb := report.NewTable("12 periods, 80 Zipf users, k=3, r=1.2, drift+churn",
		"scheduler", "mean satisfaction", "fairness", "satisfaction/slot")
	for _, s := range schedulers {
		m, err := broadcast.Run(ctx, tr, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(m.Scheduler, m.MeanSatisfaction, m.Fairness, m.SatisfactionPerSlot)
	}
	fmt.Print(tb.Render())

	// The k tradeoff: more broadcasts per period satisfy more interests
	// but each user is served less often under a fixed slot budget.
	cfg.SlotsPerPeriod = 12
	sweep, err := broadcast.KSweep(ctx, tr, broadcast.AlgorithmScheduler{Algo: core.LocalGreedy{}}, cfg, 6)
	if err != nil {
		log.Fatal(err)
	}
	tb2 := report.NewTable("k sweep under a 12-slot period budget (greedy2)",
		"k", "mean satisfaction", "service frequency", "satisfaction/slot")
	for i, m := range sweep {
		tb2.AddRow(i+1, m.MeanSatisfaction, m.ServiceFrequency, m.SatisfactionPerSlot)
	}
	fmt.Println()
	fmt.Print(tb2.Render())
}
