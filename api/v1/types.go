package v1

import (
	"repro/internal/pointset"
	"repro/internal/solver"
)

// SolveOptions is the one versioned solver-options surface: the wire form of
// solver.Options, shared by POST /v1/solve and the cdgreedy flags so the two
// entry points can never drift. The exhaustive-baseline knobs (grid_per,
// box_lo/hi, polish, disable_prune) are ignored by the greedy solvers,
// exactly as in solver.Options.
type SolveOptions struct {
	// Workers bounds the solver's parallelism; 0 uses all CPUs. Never part
	// of the result: every solver is bit-identical across worker counts.
	Workers int `json:"workers,omitempty"`
	// Seed drives any solver randomness; deterministic per seed.
	Seed uint64 `json:"seed,omitempty"`
	// WarmStart carries a previous solve's centers; the better of the cold
	// solve and the carried-over set is returned. Dimensions must match
	// the instance.
	WarmStart [][]float64 `json:"warm_start,omitempty"`
	// GridPer enriches the exhaustive candidate set with a lattice of
	// GridPer points per dimension.
	GridPer int `json:"grid_per,omitempty"`
	// BoxLo/BoxHi bound the enrichment lattice (default: data bounds).
	BoxLo []float64 `json:"box_lo,omitempty"`
	BoxHi []float64 `json:"box_hi,omitempty"`
	// Polish refines the exhaustive winner by coordinate ascent.
	Polish bool `json:"polish,omitempty"`
	// DisablePrune turns off exhaustive branch-and-bound pruning.
	DisablePrune bool `json:"disable_prune,omitempty"`
	// Shards > 1 routes the solve through the spatial partition →
	// shard-solve → merge pipeline: the instance is split into this many
	// balanced grid-cell shards, each solved independently (in parallel,
	// with deterministic per-shard seeds), and the candidate centers are
	// lazy-greedy merged against the full instance. On a cluster node with
	// live peers the shard solves are fanned out over the wire. 0 or 1
	// solves single-shot. Sharding changes the result, so it is part of the
	// cache fingerprint. Must be non-negative.
	Shards int `json:"shards,omitempty"`
	// Halo is the sharded pipeline's boundary-halo width in grid-cell rings
	// (cells have side = radius): 0 uses the default of one ring, -1
	// disables the halo (other negatives are a bad_request error). Ignored
	// when Shards <= 1.
	Halo int `json:"halo,omitempty"`
	// Refine is the near-linear solver's per-center local-refinement round
	// budget: 0 uses the default, negative disables refinement. Refinement
	// moves the returned centers, so it is part of the cache fingerprint.
	// The other solvers ignore it.
	Refine int `json:"refine,omitempty"`
}

// Validate checks the options' range invariants — the single validation
// every surface that accepts SolveOptions runs (the serving layer answers a
// violation with a bad_request error, cdgreedy with the identical text), so
// CLI and server cannot drift. Dimension-dependent checks (warm_start and
// box_lo/box_hi against the instance) stay with the instance decoding.
func (o SolveOptions) Validate() error {
	return solver.ValidateSharding(o.Shards, o.Halo)
}

// SolverOptions maps the wire options onto the internal solver.Options. The
// dimension-checked fields (WarmStart, BoxLo/BoxHi) are left zero — callers
// validate them against the instance and fill the converted values.
func (o SolveOptions) SolverOptions() solver.Options {
	return solver.Options{
		Workers:      o.Workers,
		Seed:         o.Seed,
		GridPer:      o.GridPer,
		Polish:       o.Polish,
		DisablePrune: o.DisablePrune,
		Shards:       o.Shards,
		Halo:         o.Halo,
		Refine:       o.Refine,
	}
}

// CacheControlBypass is the one non-default SolveRequest.CacheControl
// value: force a fresh solve that neither reads nor fills the cache.
const CacheControlBypass = "bypass"

// SolveRequest is the body of POST /v1/solve: one instance, one solver
// name from the registry catalog (GET /v1/solvers), and a per-request
// deadline. A request whose deadline expires mid-solve is answered 200 with
// the anytime prefix and "partial": true, not an error.
type SolveRequest struct {
	// Instance is the weighted user population, in the pointset JSON
	// schema: {"dim": 2, "points": [[...], ...], "weights": [...]}
	// (weights optional, defaulting to 1).
	Instance *pointset.Set `json:"instance"`
	// Radius is the coverage radius r (must be positive and finite).
	Radius float64 `json:"radius"`
	// Norm names the interest-distance norm: l1 | l2 | linf (default l2).
	Norm string `json:"norm,omitempty"`
	// Solver names a registry algorithm (default greedy2).
	Solver string `json:"solver,omitempty"`
	// K is the number of broadcast contents to select (must be positive).
	K int `json:"k"`
	// DeadlineMS bounds the solve in milliseconds; on expiry the
	// best-so-far prefix is returned with "partial": true. 0 means no
	// deadline (the server may still cap it; see cdserved -max-deadline).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// CacheControl steers the solve-result cache: "" (default) serves an
	// identical earlier solve from memory and collapses concurrent
	// duplicates onto one run; "bypass" forces a fresh solve that neither
	// reads nor fills the cache. Any other value is a bad_request error.
	CacheControl string `json:"cache_control,omitempty"`
	// Options carries the unified solver options.
	Options SolveOptions `json:"options"`
}

// Round is one round of per-round telemetry in a solve response.
type Round struct {
	// Round is 1-based selection order.
	Round int `json:"round"`
	// Gain is the round's objective gain g(round).
	Gain float64 `json:"gain"`
	// WallNS is the round's wall time, when the solver reported it.
	WallNS int64 `json:"wall_ns,omitempty"`
}

// SolveResponse is the body of a successful POST /v1/solve.
type SolveResponse struct {
	// RequestID echoes X-Request-ID or a server-generated id; the same id
	// tags the request's events in the server-wide /metrics trace.
	RequestID string `json:"request_id"`
	// Solver is the algorithm that produced the result.
	Solver string `json:"solver"`
	// Norm is the resolved norm name.
	Norm string `json:"norm"`
	// K echoes the requested broadcast count.
	K int `json:"k"`
	// Radius echoes the coverage radius.
	Radius float64 `json:"radius"`
	// N is the instance size.
	N int `json:"n"`
	// Centers are the selected broadcast contents in selection order;
	// under a deadline this may be a prefix (len < k) with Partial set.
	Centers [][]float64 `json:"centers"`
	// Gains are the per-round objective gains, parallel to Centers.
	Gains []float64 `json:"gains"`
	// Total is the achieved objective f(C), the sum of Gains.
	Total float64 `json:"total"`
	// MaxReward is Σ w_i, the objective's upper bound.
	MaxReward float64 `json:"max_reward"`
	// Partial marks a deadline- or drain-bounded solve: Centers is the
	// valid anytime prefix the solver committed before cancellation.
	Partial bool `json:"partial"`
	// Rounds is per-round telemetry (gain and wall time per round).
	Rounds []Round `json:"rounds,omitempty"`
	// WallNS is the server-side wall time of the solve. On a cached
	// response it is the original solve's wall time, not the (microsecond)
	// lookup.
	WallNS int64 `json:"wall_ns"`
	// Cached marks a response answered from the solve-result cache: every
	// field except RequestID (and this flag) is bit-identical to the
	// original solve's response, including Rounds and WallNS. Partial
	// results are never cached, so Cached implies Partial == false.
	Cached bool `json:"cached,omitempty"`
}

// ChurnRequest is the body of POST /v1/churn: a churn-loop simulation
// whose per-period results stream back as chunked JSON lines (ChurnLine)
// while the loop runs, with warm starts carried across periods when
// requested.
type ChurnRequest struct {
	// Instance is the initial population (pointset JSON schema).
	Instance *pointset.Set `json:"instance"`
	// BoxLo/BoxHi bound the region arrivals sample from (default: the
	// instance's bounding box).
	BoxLo []float64 `json:"box_lo,omitempty"`
	BoxHi []float64 `json:"box_hi,omitempty"`
	// Radius is the coverage radius r.
	Radius float64 `json:"radius"`
	// Norm names the interest-distance norm (default l2).
	Norm string `json:"norm,omitempty"`
	// Solver names the registry algorithm re-solved each period (default
	// greedy2).
	Solver string `json:"solver,omitempty"`
	// K is the number of broadcasts per period.
	K int `json:"k"`
	// Periods is the number of broadcast periods to simulate.
	Periods int `json:"periods"`
	// ArrivalRate / DepartRate are the mean Poisson arrivals and
	// departures per period.
	ArrivalRate float64 `json:"arrival_rate"`
	DepartRate  float64 `json:"depart_rate"`
	// Seed drives churn and solver randomness; deterministic per seed.
	Seed uint64 `json:"seed,omitempty"`
	// WarmStart carries each period's centers into the next re-solve.
	WarmStart bool `json:"warm_start,omitempty"`
	// Index selects the dynamic spatial accelerator: none | grid | kdtree.
	Index string `json:"index,omitempty"`
	// Workers bounds the per-period solver parallelism; 0 uses all CPUs.
	Workers int `json:"workers,omitempty"`
	// DeadlineMS bounds the whole loop; periods completed before expiry
	// stream normally and the summary line carries "partial": true.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ChurnPeriod is one streamed period of a churn run.
type ChurnPeriod struct {
	// Period is the 0-based period index.
	Period int `json:"period"`
	// N is the population size the period was solved for.
	N int `json:"n"`
	// Objective is f(C) of the adopted centers.
	Objective float64 `json:"objective"`
	// MaxReward is the period's Σ w_i.
	MaxReward float64 `json:"max_reward"`
	// CarryObjective is the previous centers' score on this period's
	// population (the warm-start candidate); 0 for the first period.
	CarryObjective float64 `json:"carry_objective,omitempty"`
	// Arrivals / Departures are the churn applied after this period.
	Arrivals   int `json:"arrivals"`
	Departures int `json:"departures"`
}

// ChurnSummary is the final line of a churn stream.
type ChurnSummary struct {
	// RequestID tags the run in the server-wide /metrics trace.
	RequestID string `json:"request_id"`
	// Solver is the algorithm re-solved each period.
	Solver string `json:"solver"`
	// Periods is the number of periods that completed.
	Periods int `json:"periods"`
	// MeanSatisfaction is the mean over periods of f(C)/Σw.
	MeanSatisfaction float64 `json:"mean_satisfaction"`
	// MeanPopulation is the mean population size over periods.
	MeanPopulation float64 `json:"mean_population"`
	// TotalArrivals / TotalDepartures count users over the whole run.
	TotalArrivals   int `json:"total_arrivals"`
	TotalDepartures int `json:"total_departures"`
	// IncrementalDeltas counts AddUser/RemoveUser deltas applied in place
	// of rebuilds; FullRebuilds counts from-scratch rebuilds.
	IncrementalDeltas int `json:"incremental_deltas"`
	FullRebuilds      int `json:"full_rebuilds"`
	// Partial marks a run cut short by its deadline or a server drain;
	// the streamed periods are complete, later ones never ran.
	Partial bool `json:"partial"`
}

// ChurnLine is one chunked JSON line of a /v1/churn response stream:
// exactly one of Period, Summary, or Error is set. The stream is zero or
// more period lines followed by one summary line (or an error line when the
// loop fails after streaming began).
type ChurnLine struct {
	Period  *ChurnPeriod  `json:"period,omitempty"`
	Summary *ChurnSummary `json:"summary,omitempty"`
	Error   *Error        `json:"error,omitempty"`
}

// SolverInfo describes one catalog entry in GET /v1/solvers.
type SolverInfo struct {
	// Name is the canonical registry name — the same string `cdgreedy
	// -alg` accepts and SolveRequest.Solver takes.
	Name string `json:"name"`
	// Summary is the registry's one-line description.
	Summary string `json:"summary"`
}

// SolversResponse is the body of GET /v1/solvers, sorted by name.
type SolversResponse struct {
	Solvers []SolverInfo `json:"solvers"`
}

// Health is the body of GET /healthz. The endpoint always answers 200 —
// saturation and drain are reported in Status, not by failing the probe.
type Health struct {
	// Status is "ok" or "draining".
	Status string `json:"status"`
	// Draining mirrors Status == "draining" as a boolean, so probes need no
	// string comparison.
	Draining bool `json:"draining"`
	// InFlight is the number of requests currently holding worker slots or
	// waiting for one.
	InFlight int `json:"in_flight"`
	// Queued is the number of admitted requests waiting for a worker.
	Queued int `json:"queued"`
	// UptimeNS is nanoseconds since the server was constructed.
	UptimeNS int64 `json:"uptime_ns"`
	// UptimeSeconds is UptimeNS in seconds, for human probes and dashboards.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// ClusterHealth is the body of GET /v1/cluster/health — the gossip message
// of cluster mode. It reports the answering node's own capacity (the fields
// a coordinator uses to rank peers by load) plus its current view of every
// configured peer. A standalone node answers with an empty peer list.
type ClusterHealth struct {
	// Advertise is the node's own advertised base URL ("" when the node is
	// not in cluster mode).
	Advertise string `json:"advertise,omitempty"`
	// Draining reports whether the node has begun its graceful drain; a
	// draining node no longer accepts forwarded work.
	Draining bool `json:"draining"`
	// Workers is the node's worker-slot count (max concurrently running
	// solves).
	Workers int `json:"workers"`
	// InFlight is the number of requests currently holding or waiting for
	// worker slots.
	InFlight int `json:"in_flight"`
	// Queued is the number of admitted requests waiting for a worker.
	Queued int `json:"queued"`
	// QueueDepth is the admission queue's capacity beyond the running
	// slots; Queued approaching QueueDepth means the node is saturated.
	QueueDepth int `json:"queue_depth"`
	// Peers is the node's current view of its configured peers, sorted by
	// URL.
	Peers []ClusterPeer `json:"peers,omitempty"`
}

// ClusterPeer is one row of a node's peer table in ClusterHealth.
type ClusterPeer struct {
	// URL is the peer's base URL as configured via -peers.
	URL string `json:"url"`
	// Live reports whether the last gossip round reached the peer and it
	// was not draining.
	Live bool `json:"live"`
	// Draining mirrors the peer's own drain state from its last health
	// response.
	Draining bool `json:"draining,omitempty"`
	// Workers / InFlight / Queued are the peer's capacity numbers from its
	// last successful gossip response (zero until one succeeds).
	Workers  int `json:"workers"`
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
	// AgeMS is how old the peer's last successful health response is, in
	// milliseconds; -1 when no gossip round has ever succeeded.
	AgeMS int64 `json:"age_ms"`
	// Fails counts consecutive failed gossip probes since the last success.
	Fails int `json:"fails"`
}

// Error is the machine-readable error every non-2xx v1 response carries.
type Error struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is human-readable detail (e.g. the sorted solver catalog for
	// CodeUnknownSolver).
	Message string `json:"message"`
}

// ErrorResponse wraps Error as a response body: {"error": {...}}.
type ErrorResponse struct {
	Error Error `json:"error"`
}

// Machine-readable error codes carried in Error.Code.
const (
	// CodeBadJSON: the body is not valid JSON for the request schema
	// (malformed syntax or unknown fields).
	CodeBadJSON = "bad_json"
	// CodeBodyTooLarge: the body exceeded the server's -max-body cap;
	// answered 413.
	CodeBodyTooLarge = "body_too_large"
	// CodeBadInstance: the instance failed pointset validation (empty,
	// non-finite coordinates, invalid weights).
	CodeBadInstance = "bad_instance"
	// CodeDimMismatch: inconsistent dimensions — mixed-length points, a
	// contradicting "dim", or warm-start centers of the wrong dimension.
	CodeDimMismatch = "dim_mismatch"
	// CodeBadK: k was zero or negative.
	CodeBadK = "bad_k"
	// CodeBadRadius: the radius was not positive and finite.
	CodeBadRadius = "bad_radius"
	// CodeBadNorm: the norm name is not l1 | l2 | linf.
	CodeBadNorm = "bad_norm"
	// CodeUnknownSolver: the solver name is not in the registry; the
	// message carries the sorted catalog.
	CodeUnknownSolver = "unknown_solver"
	// CodeBadRequest: a request field failed validation not covered by a
	// more specific code (periods, rates, index name, cache_control,
	// sharding options).
	CodeBadRequest = "bad_request"
	// CodeQueueFull: the admission queue is saturated; answered 429 with a
	// Retry-After header. Back off and retry.
	CodeQueueFull = "queue_full"
	// CodeDeadlineQueued: the request's deadline expired (or the client
	// disconnected) while it was still queued, before any solving started;
	// answered 503 with Retry-After.
	CodeDeadlineQueued = "deadline_while_queued"
	// CodeDraining: the server is shutting down and no longer admits work;
	// answered 503.
	CodeDraining = "draining"
	// CodeMethodNotAllowed: wrong HTTP method for the endpoint.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeSolveFailed: the solver reported an error that was not a
	// cancellation; answered 500.
	CodeSolveFailed = "solve_failed"
)
