// Package v1 is the versioned wire API of the cdserved solver service — the
// single importable source of truth for every JSON body that crosses the
// HTTP boundary. The server (internal/serve), the load harness
// (internal/load + cdload), the trace generator's client mode (cdtrace
// -solve), and the cluster forwarding path (internal/clusterd) all marshal
// exactly these types, so the schema cannot drift between the producer and
// any consumer.
//
// The exported surface of this package is pinned by api/v1.golden.txt via
// scripts/apicheck.sh: changing a field name, type, or JSON tag fails
// scripts/check.sh until the golden file is regenerated deliberately.
// Additive evolution (new optional fields) is fine; renames and removals
// belong in a /v2.
//
// Endpoints:
//
//	POST /v1/solve           one instance, one solver, per-request deadline
//	POST /v1/churn           churn-loop simulation streamed as JSON lines
//	GET  /v1/solvers         the registry catalog
//	GET  /v1/cluster/health  node capacity + peer liveness (cluster gossip)
//	GET  /healthz            liveness + drain state (always 200)
//
// Client is the typed HTTP client over these messages.
package v1
