package v1

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is the typed HTTP client over the v1 wire API. Every consumer that
// talks to a cdserved instance — the cluster forwarding path, the cdload
// harness, cdtrace's -solve mode — goes through it, so request construction
// and error decoding live in exactly one place.
//
// The zero value is not usable; construct with NewClient. Client is safe for
// concurrent use (it holds only immutable configuration and an *http.Client).
type Client struct {
	// Base is the server's root URL, e.g. "http://127.0.0.1:8080", with no
	// trailing slash.
	Base string
	// HTTP performs the requests; NewClient defaults it to a plain
	// &http.Client{}. Set a Timeout on it to bound each call client-side in
	// addition to any ctx deadline.
	HTTP *http.Client
}

// NewClient builds a Client for the given base URL (trailing slashes are
// trimmed). A nil httpClient uses a fresh zero-value http.Client.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: httpClient}
}

// APIError is a non-2xx v1 response decoded into its error envelope. The
// zero Code means the body did not carry a v1 error (e.g. a proxy answered).
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable v1 error code (one of the Code*
	// constants), "" when the body had no v1 envelope.
	Code string
	// Message is the human-readable detail.
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("api: HTTP %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("api: HTTP %d %s: %s", e.Status, e.Code, e.Message)
}

// Solve posts req to POST /v1/solve and decodes the response. requestID, when
// non-empty, is sent as X-Request-ID so the call is traceable end to end in
// the server's /metrics event stream. Non-2xx responses return an *APIError.
func (c *Client) Solve(ctx context.Context, req *SolveRequest, requestID string) (*SolveResponse, error) {
	var resp SolveResponse
	if err := c.post(ctx, "/v1/solve", requestID, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Solvers fetches the registry catalog from GET /v1/solvers.
func (c *Client) Solvers(ctx context.Context) (*SolversResponse, error) {
	var resp SolversResponse
	if err := c.get(ctx, "/v1/solvers", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health fetches GET /healthz.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var resp Health
	if err := c.get(ctx, "/healthz", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ClusterHealth fetches GET /v1/cluster/health — the gossip probe cluster
// nodes poll each other with.
func (c *Client) ClusterHealth(ctx context.Context) (*ClusterHealth, error) {
	var resp ClusterHealth
	if err := c.get(ctx, "/v1/cluster/health", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *Client) post(ctx context.Context, path, requestID string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("api: marshal %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(buf))
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if requestID != "" {
		req.Header.Set("X-Request-ID", requestID)
	}
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	return c.do(req, out)
}

// do executes the request and decodes a 2xx body into out, or a non-2xx body
// into an *APIError carrying the v1 error envelope when present.
func (c *Client) do(req *http.Request, out any) error {
	httpc := c.HTTP
	if httpc == nil {
		httpc = &http.Client{}
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return fmt.Errorf("api: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeAPIError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("api: decode %s response: %w", req.URL.Path, err)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// decodeAPIError turns a non-2xx response into an *APIError, preserving the
// v1 error envelope when the body carries one and falling back to the raw
// body text (truncated) when it does not.
func decodeAPIError(resp *http.Response) error {
	const maxErrBody = 4096
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrBody))
	var env ErrorResponse
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Code != "" {
		return &APIError{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message}
	}
	return &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
}
