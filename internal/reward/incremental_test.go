package reward

import (
	"math"
	"testing"

	"repro/internal/norm"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestEvaluatorMatchesObjective(t *testing.T) {
	rng := xrand.New(139)
	for trial := 0; trial < 80; trial++ {
		in, centers := randomSetup(t, rng, norm.L2{})
		e, err := NewEvaluator(in, centers)
		if err != nil {
			t.Fatal(err)
		}
		if e.K() != len(centers) {
			t.Fatalf("K = %d, want %d", e.K(), len(centers))
		}
		want := in.Objective(centers)
		if got := e.Objective(); math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: evaluator %v != objective %v", trial, got, want)
		}
		// Random sequence of replacements, re-verified against the direct
		// evaluation after each.
		for step := 0; step < 5; step++ {
			j := rng.Intn(len(centers))
			c := vec.New(in.Set.Dim())
			for d := range c {
				c[d] = rng.Uniform(0, 4)
			}
			// Hypothetical must match committed.
			hyp, err := e.ObjectiveIfReplaced(j, c)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Replace(j, c); err != nil {
				t.Fatal(err)
			}
			centers[j] = c
			want := in.Objective(centers)
			if math.Abs(hyp-want) > 1e-9*(1+want) {
				t.Fatalf("trial %d: hypothetical %v != %v", trial, hyp, want)
			}
			if got := e.Objective(); math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("trial %d: after replace %v != %v", trial, got, want)
			}
		}
	}
}

func TestEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(nil, nil); err == nil {
		t.Error("nil instance accepted")
	}
	in := mustInstance(t, []vec.V{vec.Of(0, 0)}, []float64{1}, norm.L2{}, 1)
	e, err := NewEvaluator(in, []vec.V{vec.Of(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Add(vec.Of(1, 2, 3)); err == nil {
		t.Error("dim mismatch Add accepted")
	}
	if err := e.Replace(5, vec.Of(0, 0)); err == nil {
		t.Error("out-of-range Replace accepted")
	}
	if err := e.Replace(0, vec.Of(1)); err == nil {
		t.Error("dim mismatch Replace accepted")
	}
	if _, err := e.ObjectiveIfReplaced(9, vec.Of(0, 0)); err == nil {
		t.Error("out-of-range hypothetical accepted")
	}
	if _, err := e.ObjectiveIfReplaced(0, vec.Of(1)); err == nil {
		t.Error("dim mismatch hypothetical accepted")
	}
}

func TestEvaluatorCentersAreCopies(t *testing.T) {
	in := mustInstance(t, []vec.V{vec.Of(0, 0)}, []float64{1}, norm.L2{}, 1)
	orig := vec.Of(1, 1)
	e, err := NewEvaluator(in, []vec.V{orig})
	if err != nil {
		t.Fatal(err)
	}
	orig[0] = 99 // mutating the caller's vector must not affect the evaluator
	got := e.Centers()
	if got[0][0] != 1 {
		t.Fatal("evaluator aliased the caller's center")
	}
	got[0][0] = 77 // and mutating the returned copy must not affect internals
	if e.Centers()[0][0] != 1 {
		t.Fatal("Centers returned aliased storage")
	}
}
