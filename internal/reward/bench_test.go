package reward

import (
	"testing"

	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/spatial"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// Candidate-scan benchmarks at large n: the gain hot path every greedy
// spends its time in. Scalar/Batch pairs measure the same work through the
// per-point interface-dispatch path and the flat batched kernels; the
// benchjson -diff report pairs them up and prints the kernel speedup.

func benchInstance(b *testing.B, n, dim int, nm norm.Norm, r, spread float64, grid bool) (*Instance, []float64) {
	b.Helper()
	rng := xrand.New(42)
	pts := make([]vec.V, n)
	ws := make([]float64, n)
	for i := range pts {
		p := vec.New(dim)
		for d := range p {
			p[d] = rng.Uniform(0, spread)
		}
		pts[i] = p
		ws[i] = float64(rng.IntRange(1, 5))
	}
	set, err := pointset.New(pts, ws)
	if err != nil {
		b.Fatal(err)
	}
	in, err := NewInstance(set, nm, r)
	if err != nil {
		b.Fatal(err)
	}
	if grid {
		g, err := spatial.NewGrid(pts, r)
		if err != nil {
			b.Fatal(err)
		}
		in.SetFinder(g)
	}
	y := in.NewResiduals()
	for i := range y {
		y[i] = rng.Uniform(0, 1)
	}
	return in, y
}

func benchRoundGain(b *testing.B, n, dim int, nm norm.Norm, r float64, grid, batch bool) {
	// The paper's density (4-unit box) for full scans; a 12-unit box for the
	// grid variants so the index actually prunes and the gather path is
	// exercised at a realistic candidate fraction.
	spread := 4.0
	if grid {
		spread = 12.0
	}
	in, y := benchInstance(b, n, dim, nm, r, spread, grid)
	in.SetBatch(batch)
	c := in.Set.Point(n / 2)
	b.ReportAllocs()
	b.ResetTimer()
	var g float64
	for i := 0; i < b.N; i++ {
		g = in.RoundGain(c, y)
	}
	_ = g
}

func BenchmarkRoundGainScalar_N1000(b *testing.B) {
	benchRoundGain(b, 1000, 2, norm.L2{}, 1, false, false)
}
func BenchmarkRoundGainBatch_N1000(b *testing.B) {
	benchRoundGain(b, 1000, 2, norm.L2{}, 1, false, true)
}
func BenchmarkRoundGainScalar_N10000(b *testing.B) {
	benchRoundGain(b, 10000, 2, norm.L2{}, 1, false, false)
}
func BenchmarkRoundGainBatch_N10000(b *testing.B) {
	benchRoundGain(b, 10000, 2, norm.L2{}, 1, false, true)
}
func BenchmarkRoundGainScalar_N10000_L1(b *testing.B) {
	benchRoundGain(b, 10000, 2, norm.L1{}, 1, false, false)
}
func BenchmarkRoundGainBatch_N10000_L1(b *testing.B) {
	benchRoundGain(b, 10000, 2, norm.L1{}, 1, false, true)
}
func BenchmarkRoundGainScalar_N10000_3D(b *testing.B) {
	benchRoundGain(b, 10000, 3, norm.L2{}, 1.5, false, false)
}
func BenchmarkRoundGainBatch_N10000_3D(b *testing.B) {
	benchRoundGain(b, 10000, 3, norm.L2{}, 1.5, false, true)
}
func BenchmarkRoundGainScalar_Grid_N10000(b *testing.B) {
	benchRoundGain(b, 10000, 2, norm.L2{}, 1, true, false)
}
func BenchmarkRoundGainBatch_Grid_N10000(b *testing.B) {
	benchRoundGain(b, 10000, 2, norm.L2{}, 1, true, true)
}

func benchObjective(b *testing.B, n, k int, batch bool) {
	in, _ := benchInstance(b, n, 2, norm.L2{}, 1, 4, false)
	in.SetBatch(batch)
	rng := xrand.New(7)
	centers := make([]vec.V, k)
	for j := range centers {
		centers[j] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var f float64
	for i := 0; i < b.N; i++ {
		f = in.Objective(centers)
	}
	_ = f
}

func BenchmarkObjectiveScalar_N10000_K8(b *testing.B) { benchObjective(b, 10000, 8, false) }
func BenchmarkObjectiveBatch_N10000_K8(b *testing.B)  { benchObjective(b, 10000, 8, true) }

func benchEvaluatorReplace(b *testing.B, n int, batch bool) {
	in, _ := benchInstance(b, n, 2, norm.L2{}, 1, 4, false)
	in.SetBatch(batch)
	rng := xrand.New(9)
	centers := make([]vec.V, 6)
	for j := range centers {
		centers[j] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
	}
	e, err := NewEvaluator(in, centers)
	if err != nil {
		b.Fatal(err)
	}
	cands := make([]vec.V, 64)
	for j := range cands {
		cands[j] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Replace(i%len(centers), cands[i%len(cands)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatorReplaceScalar_N10000(b *testing.B) { benchEvaluatorReplace(b, 10000, false) }
func BenchmarkEvaluatorReplaceBatch_N10000(b *testing.B)  { benchEvaluatorReplace(b, 10000, true) }

// Churn benchmarks: keeping a built evaluator aligned with one arriving and
// one departing user, incrementally (AddUser/RemoveUser) versus by rebuilding
// the evaluator state from scratch after each Set delta — the cost the
// incremental path replaces. The benchjson -diff report pairs Delta↔Full
// benchmarks and prints the speedup; the gate is >= 5x at n = 10000.

func benchChurnCenters() []vec.V {
	rng := xrand.New(11)
	centers := make([]vec.V, 6)
	for j := range centers {
		centers[j] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
	}
	return centers
}

func benchUserDelta(b *testing.B, n int) {
	in, _ := benchInstance(b, n, 2, norm.L2{}, 1, 4, false)
	e, err := NewEvaluator(in, benchChurnCenters())
	if err != nil {
		b.Fatal(err)
	}
	p := vec.Of(2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := e.AddUser(p, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.RemoveUser(idx); err != nil {
			b.Fatal(err)
		}
	}
}

func benchUserFull(b *testing.B, n int) {
	in, _ := benchInstance(b, n, 2, norm.L2{}, 1, 4, false)
	centers := benchChurnCenters()
	p := vec.Of(2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := in.Set.Append(p, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := NewEvaluator(in, centers); err != nil {
			b.Fatal(err)
		}
		if _, err := in.Set.RemoveSwap(idx); err != nil {
			b.Fatal(err)
		}
		if _, err := NewEvaluator(in, centers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatorUserDelta_N1000(b *testing.B)  { benchUserDelta(b, 1000) }
func BenchmarkEvaluatorUserFull_N1000(b *testing.B)   { benchUserFull(b, 1000) }
func BenchmarkEvaluatorUserDelta_N10000(b *testing.B) { benchUserDelta(b, 10000) }
func BenchmarkEvaluatorUserFull_N10000(b *testing.B)  { benchUserFull(b, 10000) }
