package reward_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// Regression for the swap-search drift bug: Replace updates the fraction
// sums incrementally (frac[i] += new − old) forever, so thousands of
// replaces accumulate IEEE rounding error and Objective() can wander away
// from a from-scratch evaluation. Resync must snap it back to bit-parity
// with a freshly built evaluator, and in any case within core.SumTolerance
// of the direct objective.
func TestEvaluatorResyncAfterManyReplaces(t *testing.T) {
	rng := xrand.New(211)
	n, k := 60, 5
	pts := make([]vec.V, n)
	ws := make([]float64, n)
	for i := range pts {
		pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		ws[i] = float64(rng.IntRange(1, 5))
	}
	set, err := pointset.New(pts, ws)
	if err != nil {
		t.Fatal(err)
	}
	in, err := reward.NewInstance(set, norm.L2{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	centers := make([]vec.V, k)
	for j := range centers {
		centers[j] = pts[j].Clone()
	}
	e, err := reward.NewEvaluator(in, centers)
	if err != nil {
		t.Fatal(err)
	}
	// Thousands of replaces, biased toward dense coverage so the
	// incremental updates keep adding and cancelling non-trivial terms.
	for step := 0; step < 20000; step++ {
		c := vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		if err := e.Replace(rng.Intn(k), c); err != nil {
			t.Fatal(err)
		}
	}
	e.Resync()
	fresh, err := reward.NewEvaluator(in, e.Centers())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.Objective(), fresh.Objective(); got != want {
		t.Errorf("resynced objective %v != fresh evaluator %v (diff %g)", got, want, got-want)
	}
	direct := in.Objective(e.Centers())
	if diff := math.Abs(e.Objective() - direct); diff > core.SumTolerance {
		t.Errorf("resynced objective %v vs direct %v: |diff| %g > SumTolerance", e.Objective(), direct, diff)
	}
}

// The swap search itself must stay healthy over long runs with periodic
// resyncs: its final objective has to match a direct recomputation of its
// returned centers within core.SumTolerance.
func TestSwapSearchObjectiveConsistency(t *testing.T) {
	rng := xrand.New(223)
	set, err := pointset.GenUniform(80, pointset.PaperBox2D(), pointset.RandomIntWeight, rng)
	if err != nil {
		t.Fatal(err)
	}
	in, err := reward.NewInstance(set, norm.L2{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SwapLocalSearch{MaxPasses: 20}.Run(context.Background(), in, 6)
	if err != nil {
		t.Fatal(err)
	}
	direct := in.Objective(res.Centers)
	if diff := math.Abs(res.Total - direct); diff > core.SumTolerance {
		t.Errorf("swap total %v vs direct objective %v: |diff| %g > SumTolerance", res.Total, direct, diff)
	}
}
