package reward

import (
	"math"
	"testing"

	"repro/internal/norm"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// stubFinder returns a fixed conservative candidate list.
type stubFinder struct{ idx []int }

func (s stubFinder) Near(vec.V) []int { return append([]int{}, s.idx...) }

func TestFinderPathsMatchFullScan(t *testing.T) {
	rng := xrand.New(167)
	for trial := 0; trial < 60; trial++ {
		in, centers := randomSetup(t, rng, norm.L2{})
		c := centers[0]
		// Conservative finder: all indices (unsorted, duplicated order
		// not allowed — Near must return each index at most once).
		all := make([]int, in.N())
		for i := range all {
			all[in.N()-1-i] = i // reversed order: nearSorted must fix it
		}
		y1 := in.NewResiduals()
		gainPlain := in.RoundGain(c, y1)
		coveredPlain := in.CoveredIndices(c)
		applyPlain, zPlain := in.ApplyRound(c, y1)

		in.SetFinder(stubFinder{idx: all})
		y2 := in.NewResiduals()
		if g := in.RoundGain(c, y2); g != gainPlain {
			t.Fatalf("trial %d: finder RoundGain %v != %v", trial, g, gainPlain)
		}
		coveredF := in.CoveredIndices(c)
		if len(coveredF) != len(coveredPlain) {
			t.Fatalf("trial %d: covered sets differ", trial)
		}
		for i := range coveredF {
			if coveredF[i] != coveredPlain[i] {
				t.Fatalf("trial %d: covered order differs", trial)
			}
		}
		applyF, zF := in.ApplyRound(c, y2)
		if applyF != applyPlain {
			t.Fatalf("trial %d: finder ApplyRound %v != %v", trial, applyF, applyPlain)
		}
		for i := range zF {
			if zF[i] != zPlain[i] {
				t.Fatalf("trial %d: z vectors differ at %d", trial, i)
			}
		}
		for i := range y1 {
			if y1[i] != y2[i] {
				t.Fatalf("trial %d: residuals differ at %d", trial, i)
			}
		}
		in.SetFinder(nil)
	}
}

func TestFinderSubsetIsExactWhenConservative(t *testing.T) {
	// A finder returning only the truly-covered indices gives identical
	// gains (zero terms are the only ones skipped).
	in := mustInstance(t,
		[]vec.V{vec.Of(0, 0), vec.Of(0.5, 0), vec.Of(3, 3)},
		[]float64{1, 2, 1}, norm.L2{}, 1)
	c := vec.Of(0, 0)
	y := in.NewResiduals()
	want := in.RoundGain(c, y)
	in.SetFinder(stubFinder{idx: []int{1, 0}}) // covered points only, unsorted
	if got := in.RoundGain(c, y); math.Abs(got-want) > 0 {
		t.Fatalf("subset finder gain %v != %v", got, want)
	}
}
