package reward

import (
	"errors"
	"fmt"

	"repro/internal/vec"
)

// Evaluator maintains the per-point coverage-fraction sums for a working
// center set so that the objective can be re-read in O(n) after any single
// center is replaced, instead of recomputing all k distances per point.
// SwapLocalSearch uses it to test k·n candidate swaps per pass in
// O(k·n·n) total rather than O(k·n·n·k).
type Evaluator struct {
	in      *Instance
	centers []vec.V
	cov     [][]float64 // cov[j][i]: coverage of point i by center j
	frac    []float64   // Σ_j cov[j][i]
}

// NewEvaluator builds an evaluator over an initial center set (centers are
// copied).
func NewEvaluator(in *Instance, centers []vec.V) (*Evaluator, error) {
	if in == nil {
		return nil, errors.New("reward: nil instance")
	}
	e := &Evaluator{in: in, frac: make([]float64, in.N())}
	for _, c := range centers {
		if err := e.Add(c); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// K reports the current number of centers.
func (e *Evaluator) K() int { return len(e.centers) }

// Centers returns copies of the current centers.
func (e *Evaluator) Centers() []vec.V {
	out := make([]vec.V, len(e.centers))
	for i, c := range e.centers {
		out[i] = c.Clone()
	}
	return out
}

// Add appends a center, updating the fraction sums in O(n).
func (e *Evaluator) Add(c vec.V) error {
	if c.Dim() != e.in.Set.Dim() {
		return fmt.Errorf("reward: center dim %d != instance dim %d", c.Dim(), e.in.Set.Dim())
	}
	row := make([]float64, e.in.N())
	if !e.in.batchCoverages(c, row) {
		for i := range row {
			row[i] = e.in.Coverage(c, i)
		}
	}
	for i := range row {
		e.frac[i] += row[i]
	}
	e.centers = append(e.centers, c.Clone())
	e.cov = append(e.cov, row)
	return nil
}

// Replace swaps the center at slot j for c in O(n). It returns an error for
// an out-of-range slot or dimension mismatch.
func (e *Evaluator) Replace(j int, c vec.V) error {
	if j < 0 || j >= len(e.centers) {
		return fmt.Errorf("reward: slot %d out of range [0, %d)", j, len(e.centers))
	}
	if c.Dim() != e.in.Set.Dim() {
		return fmt.Errorf("reward: center dim %d != instance dim %d", c.Dim(), e.in.Set.Dim())
	}
	old := e.cov[j]
	sc := scratchPool.Get().(*scratch)
	sc.a = take(sc.a, len(old))
	if e.in.batchCoverages(c, sc.a) {
		for i, nc := range sc.a {
			e.frac[i] += nc - old[i]
			old[i] = nc
		}
	} else {
		for i := range old {
			nc := e.in.Coverage(c, i)
			e.frac[i] += nc - old[i]
			old[i] = nc
		}
	}
	scratchPool.Put(sc)
	e.centers[j] = c.Clone()
	return nil
}

// Resync recomputes every fraction sum from the stored coverage rows,
// discarding the IEEE rounding error that Replace's incremental
// `frac += new − old` updates accumulate. After thousands of replaces that
// drift can grow large enough for Objective to disagree with a from-scratch
// evaluation, making swap search accept or reject on noise; a Resync every
// O(n) replaces keeps the drift below any decision threshold at amortized
// O(k) per replace. The recomputation adds rows in slot order, matching a
// freshly built evaluator bit for bit.
func (e *Evaluator) Resync() {
	for i := range e.frac {
		e.frac[i] = 0
	}
	for _, row := range e.cov {
		for i, v := range row {
			e.frac[i] += v
		}
	}
}

// Objective reads f(C) for the current centers in O(n).
func (e *Evaluator) Objective() float64 {
	var total float64
	for i, f := range e.frac {
		if f > 1 {
			f = 1
		}
		total += e.in.Set.Weight(i) * f
	}
	return total
}

// ObjectiveIfReplaced evaluates the objective with slot j hypothetically
// replaced by c, without committing, in O(n).
func (e *Evaluator) ObjectiveIfReplaced(j int, c vec.V) (float64, error) {
	if j < 0 || j >= len(e.centers) {
		return 0, fmt.Errorf("reward: slot %d out of range [0, %d)", j, len(e.centers))
	}
	if c.Dim() != e.in.Set.Dim() {
		return 0, fmt.Errorf("reward: center dim %d != instance dim %d", c.Dim(), e.in.Set.Dim())
	}
	old := e.cov[j]
	w := e.in.Set.Weights()
	var total float64
	sc := scratchPool.Get().(*scratch)
	sc.a = take(sc.a, len(old))
	if e.in.batchCoverages(c, sc.a) {
		for i, nc := range sc.a {
			f := e.frac[i] - old[i] + nc
			if f > 1 {
				f = 1
			}
			total += w[i] * f
		}
	} else {
		for i := range old {
			f := e.frac[i] - old[i] + e.in.Coverage(c, i)
			if f > 1 {
				f = 1
			}
			total += w[i] * f
		}
	}
	scratchPool.Put(sc)
	return total, nil
}
