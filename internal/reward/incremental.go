package reward

import (
	"errors"
	"fmt"

	"repro/internal/vec"
)

// DynamicFinder is a NeighborFinder that can track population deltas: the
// evaluator's AddUser/RemoveUser forward every Set mutation so the index
// stays aligned with point indices without a from-scratch rebuild.
// package spatial's Dynamic (grid- or KD-tree-backed) implements it.
type DynamicFinder interface {
	NeighborFinder
	// Insert indexes one new point appended at index N (the finder's
	// current count).
	Insert(p vec.V) error
	// RemoveSwap deletes index i with the same swap-with-last relabeling
	// as pointset.Set.RemoveSwap.
	RemoveSwap(i int) error
}

// Evaluator maintains the per-point coverage-fraction sums for a working
// center set so that the objective can be re-read in O(n) after any single
// center is replaced, instead of recomputing all k distances per point.
// SwapLocalSearch uses it to test k·n candidate swaps per pass in
// O(k·n·n) total rather than O(k·n·n·k).
//
// It is also the dynamic-instance layer's delta engine: AddUser, RemoveUser,
// and UpdateWeight evolve the underlying population in O(k·dim) per user —
// updating the Set's row storage, the coverage rows, the fraction sums, and
// (when installed) a DynamicFinder — with results guaranteed bit-identical
// to a from-scratch rebuild over the mutated Set. The guarantee holds
// because every fraction sum is always the slot-ordered IEEE sum of its
// coverage row entries: AddUser sums the new point's row entries in slot
// order, RemoveUser moves sums without re-deriving them, and center
// Add/SetCenters accumulate in slot order exactly as NewEvaluator does.
// (Replace breaks that invariant by design — its `frac += new − old` drifts —
// which is why SwapLocalSearch Resyncs; churn sequences that avoid Replace
// stay exact. TestEvaluatorChurnEquivalence gates this.)
type Evaluator struct {
	in      *Instance
	centers []vec.V
	cov     [][]float64 // cov[j][i]: coverage of point i by center j
	frac    []float64   // Σ_j cov[j][i]
}

// NewEvaluator builds an evaluator over an initial center set (centers are
// copied).
func NewEvaluator(in *Instance, centers []vec.V) (*Evaluator, error) {
	if in == nil {
		return nil, errors.New("reward: nil instance")
	}
	e := &Evaluator{in: in, frac: make([]float64, in.N())}
	for _, c := range centers {
		if err := e.Add(c); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// K reports the current number of centers.
func (e *Evaluator) K() int { return len(e.centers) }

// Centers returns copies of the current centers.
func (e *Evaluator) Centers() []vec.V {
	out := make([]vec.V, len(e.centers))
	for i, c := range e.centers {
		out[i] = c.Clone()
	}
	return out
}

// Add appends a center, updating the fraction sums in O(n).
func (e *Evaluator) Add(c vec.V) error {
	if c.Dim() != e.in.Set.Dim() {
		return fmt.Errorf("reward: center dim %d != instance dim %d", c.Dim(), e.in.Set.Dim())
	}
	row := make([]float64, e.in.N())
	if !e.in.batchCoverages(c, row) {
		for i := range row {
			row[i] = e.in.Coverage(c, i)
		}
	}
	for i := range row {
		e.frac[i] += row[i]
	}
	e.centers = append(e.centers, c.Clone())
	e.cov = append(e.cov, row)
	return nil
}

// Replace swaps the center at slot j for c in O(n). It returns an error for
// an out-of-range slot or dimension mismatch.
func (e *Evaluator) Replace(j int, c vec.V) error {
	if j < 0 || j >= len(e.centers) {
		return fmt.Errorf("reward: slot %d out of range [0, %d)", j, len(e.centers))
	}
	if c.Dim() != e.in.Set.Dim() {
		return fmt.Errorf("reward: center dim %d != instance dim %d", c.Dim(), e.in.Set.Dim())
	}
	old := e.cov[j]
	sc := scratchPool.Get().(*scratch)
	sc.a = take(sc.a, len(old))
	if e.in.batchCoverages(c, sc.a) {
		for i, nc := range sc.a {
			e.frac[i] += nc - old[i]
			old[i] = nc
		}
	} else {
		for i := range old {
			nc := e.in.Coverage(c, i)
			e.frac[i] += nc - old[i]
			old[i] = nc
		}
	}
	scratchPool.Put(sc)
	e.centers[j] = c.Clone()
	return nil
}

// SetCenters replaces the whole working center set, rebuilding every
// coverage row and fraction sum from scratch — bit-identical to
// NewEvaluator(in, centers) over the current population, without
// reallocating the evaluator. The churn loop calls it once per period to
// adopt the freshly solved centers; population deltas between solves then
// stay incremental.
func (e *Evaluator) SetCenters(centers []vec.V) error {
	for _, c := range centers {
		if c.Dim() != e.in.Set.Dim() {
			return fmt.Errorf("reward: center dim %d != instance dim %d", c.Dim(), e.in.Set.Dim())
		}
	}
	e.centers = e.centers[:0]
	e.cov = e.cov[:0]
	e.frac = take(e.frac, e.in.N())
	for i := range e.frac {
		e.frac[i] = 0
	}
	for _, c := range centers {
		if err := e.Add(c); err != nil {
			return err
		}
	}
	return nil
}

// AddUser appends one user to the population: the Set gains the point and
// weight, any installed DynamicFinder indexes it, every coverage row gains
// the new point's coverage, and its fraction sum is accumulated in slot
// order — all in O(k·dim + finder insert), versus O(k·n) for a rebuild. The
// new index (the new N−1) is returned. An installed finder that is not a
// DynamicFinder is an error: it would silently go stale.
func (e *Evaluator) AddUser(p vec.V, w float64) (int, error) {
	df, err := e.dynamicFinder()
	if err != nil {
		return 0, err
	}
	i, err := e.in.Set.Append(p, w)
	if err != nil {
		return 0, err
	}
	if df != nil {
		if err := df.Insert(e.in.Set.Point(i)); err != nil {
			return 0, err
		}
	}
	var f float64
	for j, c := range e.centers {
		z := e.in.Coverage(c, i)
		e.cov[j] = append(e.cov[j], z)
		f += z
	}
	e.frac = append(e.frac, f)
	return i, nil
}

// RemoveUser deletes user i with pointset.Set.RemoveSwap semantics: the last
// user moves into slot i (the returned moved index, −1 when i was last), and
// every per-point structure — coverage rows, fraction sums, the Set's
// storage, a DynamicFinder — mirrors the same swap. No sums are re-derived,
// so the surviving state is bit-identical to a rebuild. Removing the only
// user is an error.
func (e *Evaluator) RemoveUser(i int) (moved int, err error) {
	df, err := e.dynamicFinder()
	if err != nil {
		return 0, err
	}
	moved, err = e.in.Set.RemoveSwap(i)
	if err != nil {
		return 0, err
	}
	if df != nil {
		if err := df.RemoveSwap(i); err != nil {
			return moved, err
		}
	}
	last := len(e.frac) - 1
	for j := range e.cov {
		if moved >= 0 {
			e.cov[j][i] = e.cov[j][last]
		}
		e.cov[j] = e.cov[j][:last]
	}
	if moved >= 0 {
		e.frac[i] = e.frac[last]
	}
	e.frac = e.frac[:last]
	return moved, nil
}

// UpdateWeight changes w_i. Weights only scale the objective at read time,
// so no coverage state needs touching.
func (e *Evaluator) UpdateWeight(i int, w float64) error {
	return e.in.Set.SetWeight(i, w)
}

// dynamicFinder resolves the instance's finder for delta maintenance: nil
// when no finder is installed, the DynamicFinder when it supports deltas,
// and an error for a static finder (which a population delta would silently
// invalidate).
func (e *Evaluator) dynamicFinder() (DynamicFinder, error) {
	if e.in.finder == nil {
		return nil, nil
	}
	df, ok := e.in.finder.(DynamicFinder)
	if !ok {
		return nil, errors.New("reward: instance finder is static; install a DynamicFinder (or clear it) before population deltas")
	}
	return df, nil
}

// Resync recomputes every fraction sum from the stored coverage rows,
// discarding the IEEE rounding error that Replace's incremental
// `frac += new − old` updates accumulate. After thousands of replaces that
// drift can grow large enough for Objective to disagree with a from-scratch
// evaluation, making swap search accept or reject on noise; a Resync every
// O(n) replaces keeps the drift below any decision threshold at amortized
// O(k) per replace. The recomputation adds rows in slot order, matching a
// freshly built evaluator bit for bit.
func (e *Evaluator) Resync() {
	for i := range e.frac {
		e.frac[i] = 0
	}
	for _, row := range e.cov {
		for i, v := range row {
			e.frac[i] += v
		}
	}
}

// Objective reads f(C) for the current centers in O(n).
func (e *Evaluator) Objective() float64 {
	var total float64
	for i, f := range e.frac {
		if f > 1 {
			f = 1
		}
		total += e.in.Set.Weight(i) * f
	}
	return total
}

// ObjectiveIfReplaced evaluates the objective with slot j hypothetically
// replaced by c, without committing, in O(n).
func (e *Evaluator) ObjectiveIfReplaced(j int, c vec.V) (float64, error) {
	if j < 0 || j >= len(e.centers) {
		return 0, fmt.Errorf("reward: slot %d out of range [0, %d)", j, len(e.centers))
	}
	if c.Dim() != e.in.Set.Dim() {
		return 0, fmt.Errorf("reward: center dim %d != instance dim %d", c.Dim(), e.in.Set.Dim())
	}
	old := e.cov[j]
	w := e.in.Set.Weights()
	var total float64
	sc := scratchPool.Get().(*scratch)
	sc.a = take(sc.a, len(old))
	if e.in.batchCoverages(c, sc.a) {
		for i, nc := range sc.a {
			f := e.frac[i] - old[i] + nc
			if f > 1 {
				f = 1
			}
			total += w[i] * f
		}
	} else {
		for i := range old {
			f := e.frac[i] - old[i] + e.in.Coverage(c, i)
			if f > 1 {
				f = 1
			}
			total += w[i] * f
		}
	}
	scratchPool.Put(sc)
	return total, nil
}
