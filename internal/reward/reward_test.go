package reward

import (
	"math"
	"testing"

	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func mustInstance(t *testing.T, pts []vec.V, ws []float64, n norm.Norm, r float64) *Instance {
	t.Helper()
	set, err := pointset.New(pts, ws)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(set, n, r)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewInstanceValidation(t *testing.T) {
	set, _ := pointset.UnitWeights([]vec.V{vec.Of(0, 0)})
	if _, err := NewInstance(nil, norm.L2{}, 1); err == nil {
		t.Error("nil set accepted")
	}
	if _, err := NewInstance(set, nil, 1); err == nil {
		t.Error("nil norm accepted")
	}
	for _, r := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewInstance(set, norm.L2{}, r); err == nil {
			t.Errorf("radius %v accepted", r)
		}
	}
}

func TestCoverageAndPointReward(t *testing.T) {
	in := mustInstance(t,
		[]vec.V{vec.Of(0, 0), vec.Of(1, 0), vec.Of(3, 0)},
		[]float64{2, 4, 1}, norm.L2{}, 2)
	c := vec.Of(0, 0)
	// Point 0 at distance 0: coverage 1.
	if got := in.Coverage(c, 0); got != 1 {
		t.Errorf("Coverage self = %v", got)
	}
	// Point 1 at distance 1, r=2: coverage 0.5, reward 2.
	if got := in.Coverage(c, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Coverage = %v, want 0.5", got)
	}
	if got := in.PointReward(c, 1); math.Abs(got-2) > 1e-12 {
		t.Errorf("PointReward = %v, want 2", got)
	}
	// Point 2 at distance 3 > r: zero.
	if got := in.Coverage(c, 2); got != 0 {
		t.Errorf("outside coverage = %v", got)
	}
	// Exactly on the boundary: paper Eq. 1 gives w·(1 − r/r) = 0.
	inB := mustInstance(t, []vec.V{vec.Of(2, 0)}, []float64{5}, norm.L2{}, 2)
	if got := inB.Coverage(vec.Of(0, 0), 0); got != 0 {
		t.Errorf("boundary coverage = %v, want 0", got)
	}
}

func TestObjectiveCap(t *testing.T) {
	// One point, two coincident centers: reward capped at w.
	in := mustInstance(t, []vec.V{vec.Of(1, 1)}, []float64{3}, norm.L2{}, 1)
	c := vec.Of(1, 1)
	if got := in.Objective([]vec.V{c, c}); math.Abs(got-3) > 1e-12 {
		t.Errorf("capped objective = %v, want 3", got)
	}
	if got := in.Objective([]vec.V{c}); math.Abs(got-3) > 1e-12 {
		t.Errorf("single objective = %v, want 3", got)
	}
	if got := in.Objective(nil); got != 0 {
		t.Errorf("empty objective = %v, want 0", got)
	}
}

func TestObjectivePartialSum(t *testing.T) {
	// Point halfway between two centers, each at distance 0.5 with r=1:
	// fractions 0.5 + 0.5 = 1.0 exactly → reward w.
	in := mustInstance(t, []vec.V{vec.Of(0.5, 0)}, []float64{2}, norm.L2{}, 1)
	got := in.Objective([]vec.V{vec.Of(0, 0), vec.Of(1, 0)})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("objective = %v, want 2", got)
	}
	// Single center: 0.5 fraction → reward 1.
	if got := in.Objective([]vec.V{vec.Of(0, 0)}); math.Abs(got-1) > 1e-12 {
		t.Errorf("objective = %v, want 1", got)
	}
}

func TestRoundGainAndApplyRound(t *testing.T) {
	in := mustInstance(t,
		[]vec.V{vec.Of(0, 0), vec.Of(0.5, 0)},
		[]float64{1, 2}, norm.L2{}, 1)
	y := in.NewResiduals()
	if !ValidResiduals(y) || len(y) != 2 {
		t.Fatal("bad initial residuals")
	}
	c := vec.Of(0, 0)
	want := 1*1.0 + 2*0.5
	if g := in.RoundGain(c, y); math.Abs(g-want) > 1e-12 {
		t.Errorf("RoundGain = %v, want %v", g, want)
	}
	gain, z := in.ApplyRound(c, y)
	if math.Abs(gain-want) > 1e-12 {
		t.Errorf("ApplyRound gain = %v, want %v", gain, want)
	}
	if math.Abs(z[0]-1) > 1e-12 || math.Abs(z[1]-0.5) > 1e-12 {
		t.Errorf("z = %v", z)
	}
	if math.Abs(y[0]) > 1e-12 || math.Abs(y[1]-0.5) > 1e-12 {
		t.Errorf("residuals after round = %v", y)
	}
	// Second identical round: point 0 exhausted, point 1 capped at y=0.5.
	gain2, _ := in.ApplyRound(c, y)
	if math.Abs(gain2-1) > 1e-12 {
		t.Errorf("second round gain = %v, want 1", gain2)
	}
	if !ValidResiduals(y) {
		t.Errorf("residuals invalid: %v", y)
	}
}

func TestApplyRoundsMatchObjective(t *testing.T) {
	// Invariant: Σ_j g(j) == Objective(centers) for any center sequence.
	rng := xrand.New(11)
	for trial := 0; trial < 100; trial++ {
		n := rng.IntRange(1, 20)
		pts := make([]vec.V, n)
		ws := make([]float64, n)
		for i := range pts {
			pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
			ws[i] = float64(rng.IntRange(1, 5))
		}
		in := mustInstance(t, pts, ws, norm.L2{}, rng.Uniform(0.5, 2.5))
		k := rng.IntRange(1, 4)
		centers := make([]vec.V, k)
		for j := range centers {
			centers[j] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		}
		y := in.NewResiduals()
		var sum float64
		for _, c := range centers {
			g, _ := in.ApplyRound(c, y)
			sum += g
			if !ValidResiduals(y) {
				t.Fatalf("trial %d: residuals left [0,1]: %v", trial, y)
			}
		}
		obj := in.Objective(centers)
		if math.Abs(sum-obj) > 1e-9*(1+obj) {
			t.Fatalf("trial %d: round sum %v != objective %v", trial, sum, obj)
		}
	}
}

// Submodularity (paper Lemma 0b): for A ⊂ B and s ∉ B,
// f(A∪{s}) − f(A) ≥ f(B∪{s}) − f(B).
func TestObjectiveSubmodular(t *testing.T) {
	rng := xrand.New(29)
	for trial := 0; trial < 300; trial++ {
		n := rng.IntRange(1, 12)
		pts := make([]vec.V, n)
		ws := make([]float64, n)
		for i := range pts {
			pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
			ws[i] = float64(rng.IntRange(1, 5))
		}
		in := mustInstance(t, pts, ws, norm.L2{}, rng.Uniform(0.5, 3))
		randCenter := func() vec.V { return vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4)) }
		a := make([]vec.V, rng.IntRange(0, 3))
		for j := range a {
			a[j] = randCenter()
		}
		extra := make([]vec.V, rng.IntRange(1, 3))
		for j := range extra {
			extra[j] = randCenter()
		}
		b := append(append([]vec.V{}, a...), extra...)
		s := randCenter()
		gainA := in.Objective(append(append([]vec.V{}, a...), s)) - in.Objective(a)
		gainB := in.Objective(append(append([]vec.V{}, b...), s)) - in.Objective(b)
		if gainA < gainB-1e-9 {
			t.Fatalf("trial %d: submodularity violated: %v < %v", trial, gainA, gainB)
		}
	}
}

// Monotonicity: adding a center never decreases f.
func TestObjectiveMonotone(t *testing.T) {
	rng := xrand.New(31)
	for trial := 0; trial < 200; trial++ {
		n := rng.IntRange(1, 12)
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		}
		set, _ := pointset.UnitWeights(pts)
		in, _ := NewInstance(set, norm.L1{}, 1.5)
		cs := []vec.V{}
		prev := 0.0
		for j := 0; j < 4; j++ {
			cs = append(cs, vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4)))
			cur := in.Objective(cs)
			if cur < prev-1e-9 {
				t.Fatalf("objective decreased: %v -> %v", prev, cur)
			}
			prev = cur
		}
		// Bounded by total weight.
		if prev > set.TotalWeight()+1e-9 {
			t.Fatalf("objective %v exceeds total weight %v", prev, set.TotalWeight())
		}
	}
}

func TestCoveredIndices(t *testing.T) {
	in := mustInstance(t,
		[]vec.V{vec.Of(0, 0), vec.Of(0.9, 0), vec.Of(5, 5)},
		[]float64{1, 1, 1}, norm.L2{}, 1)
	got := in.CoveredIndices(vec.Of(0, 0))
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("CoveredIndices = %v", got)
	}
	if got := in.CoveredIndices(vec.Of(-9, -9)); got != nil {
		t.Errorf("far center covered %v", got)
	}
}

func TestValidResiduals(t *testing.T) {
	if !ValidResiduals([]float64{0, 0.5, 1}) {
		t.Error("valid residuals rejected")
	}
	if ValidResiduals([]float64{-0.1}) || ValidResiduals([]float64{1.1}) || ValidResiduals([]float64{math.NaN()}) {
		t.Error("invalid residuals accepted")
	}
}

func TestSumRounds(t *testing.T) {
	if got := SumRounds([]float64{1, 2, 3.5}); got != 6.5 {
		t.Errorf("SumRounds = %v", got)
	}
	if got := SumRounds(nil); got != 0 {
		t.Errorf("SumRounds(nil) = %v", got)
	}
}

func TestDifferentNormsChangeCoverage(t *testing.T) {
	// Point at (1,1): L2 distance sqrt(2) ≈ 1.414, L1 distance 2.
	pts := []vec.V{vec.Of(1, 1)}
	l2in := mustInstance(t, pts, []float64{1}, norm.L2{}, 2)
	l1in := mustInstance(t, pts, []float64{1}, norm.L1{}, 2)
	c := vec.Of(0, 0)
	g2, g1 := l2in.Coverage(c, 0), l1in.Coverage(c, 0)
	if math.Abs(g2-(1-math.Sqrt2/2)) > 1e-12 {
		t.Errorf("L2 coverage = %v", g2)
	}
	if g1 != 0 {
		t.Errorf("L1 coverage = %v, want 0 (on boundary)", g1)
	}
}
