// Package reward implements the paper's reward model (Eqs. 1–7): a point
// x_i with maximum reward w_i covered by a center c at distance d gains
// w_i·(1 − d/r) when d ≤ r, and the total reward a point collects over all
// k centers is capped at w_i. It also implements the residual bookkeeping
// (y_i, z_i) shared by all four algorithms (Eqs. 10, 13, 14, 15).
package reward

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/pointset"
	"repro/internal/vec"
)

// NeighborFinder narrows coverage evaluation to the points that could lie
// within the coverage radius of a query center. It must be conservative:
// every point within radius r of c (under the instance norm) must be
// returned; extras are harmless because their coverage is zero. Package
// spatial provides a uniform-grid implementation valid for every p ≥ 1.
type NeighborFinder interface {
	Near(c vec.V) []int
}

// Instance binds a weighted point set to an interest-distance norm and a
// coverage radius r. It is the immutable problem description every algorithm
// consumes. An optional NeighborFinder accelerates gain evaluation at large
// n without changing any result bit (the evaluator sorts the candidate
// indices and IEEE addition of skipped zero terms is exact).
//
// When the norm implements norm.Batch (the built-in L1/L2/L∞ do), gain and
// objective evaluation automatically route through batched distance kernels
// over the set's flat coordinate array — same results bit for bit, far fewer
// interface calls. SetBatch(false) forces the scalar reference path.
type Instance struct {
	Set    *pointset.Set
	Norm   norm.Norm
	Radius float64

	finder NeighborFinder
	obs    obs.Collector

	batch        norm.Batch       // non-nil: batched kernels active
	rbatch       norm.RadiusBatch // non-nil: radius-capped variant available
	batchWorkers int              // >1: chunk large kernels over goroutines
}

// SetFinder installs (or clears, with nil) a neighbor accelerator. It must
// index exactly this instance's points at exactly this instance's radius.
func (in *Instance) SetFinder(f NeighborFinder) { in.finder = f }

// SetCollector installs (or clears, with nil) a telemetry collector. A live
// collector counts every reward evaluation — obs.CtrGainEvals per RoundGain,
// obs.CtrApplyRounds per ApplyRound, obs.CtrObjectiveEvals per Objective —
// which is how instrumented runs verify claims like "LazyGreedy saves
// re-evaluations". The collector must be safe for concurrent use: candidate
// scans call RoundGain from many goroutines.
func (in *Instance) SetCollector(c obs.Collector) {
	if !obs.Active(c) {
		c = nil
	}
	in.obs = c
}

// NewInstance validates and builds an Instance. The radius must be positive
// and finite. Batched evaluation is enabled automatically when the norm
// supports it.
func NewInstance(set *pointset.Set, n norm.Norm, radius float64) (*Instance, error) {
	if set == nil {
		return nil, errors.New("reward: nil point set")
	}
	if n == nil {
		return nil, errors.New("reward: nil norm")
	}
	if radius <= 0 || math.IsNaN(radius) || math.IsInf(radius, 0) {
		return nil, fmt.Errorf("reward: invalid radius %v", radius)
	}
	in := &Instance{Set: set, Norm: n, Radius: radius}
	in.SetBatch(true)
	return in, nil
}

// SetBatch enables (the default, when the norm implements norm.Batch) or
// disables the batched evaluation path. Both settings produce bit-identical
// results; disabling exists for tests, benchmarks, and A/B diagnosis.
func (in *Instance) SetBatch(on bool) {
	if !on {
		in.batch, in.rbatch = nil, nil
		return
	}
	in.batch = norm.AsBatch(in.Norm)
	in.rbatch = norm.AsRadiusBatch(in.Norm)
}

// SetBatchWorkers sets the goroutine budget for chunking one batched kernel
// call over spans of the flat coordinate array (w <= 1 keeps kernels
// serial, the default). Candidate scans are already parallel across
// candidates, so this only pays off for serial large-n callers such as the
// continuous inner solvers; chunk writes are disjoint and the reduction
// stays in index order, so results are unchanged bit for bit.
func (in *Instance) SetBatchWorkers(w int) { in.batchWorkers = w }

// N reports the number of points.
func (in *Instance) N() int { return in.Set.Len() }

// Coverage returns [1 − d(c, x_i)/r]_+, the unweighted reward fraction point
// i receives from a center at c (paper Eq. 1 divided by w_i).
func (in *Instance) Coverage(c vec.V, i int) float64 {
	d := in.Norm.Dist(c, in.Set.Point(i))
	if d >= in.Radius {
		return 0
	}
	return 1 - d/in.Radius
}

// PointReward returns ψ(c, x_i) = w_i·[1 − d/r]_+ (paper Eq. 1).
func (in *Instance) PointReward(c vec.V, i int) float64 {
	return in.Set.Weight(i) * in.Coverage(c, i)
}

// Objective evaluates f(C) = Σ_i w_i·min(Σ_j [1 − d(c_j, x_i)/r]_+, 1)
// (paper Eq. 7) for an arbitrary center set.
func (in *Instance) Objective(centers []vec.V) float64 {
	if in.obs != nil {
		in.obs.Count(obs.CtrObjectiveEvals, 1)
	}
	if in.batchOn() {
		return in.objectiveBatch(centers)
	}
	var total float64
	for i := 0; i < in.N(); i++ {
		var frac float64
		for _, c := range centers {
			frac += in.Coverage(c, i)
			if frac >= 1 {
				frac = 1
				break
			}
		}
		total += in.Set.Weight(i) * frac
	}
	return total
}

// NewResiduals returns the initial residual vector y with y_i = 1 for all i
// (line 1 of Algorithms 1–4).
func (in *Instance) NewResiduals() []float64 {
	y := make([]float64, in.N())
	for i := range y {
		y[i] = 1
	}
	return y
}

// RoundGain evaluates the round objective g for center c against residuals
// y: Σ_i w_i·min([1 − d(c, x_i)/r]_+, y_i) (the inner objective of
// Eqs. 10/13/14/15). y is not modified.
func (in *Instance) RoundGain(c vec.V, y []float64) float64 {
	if in.obs != nil {
		in.obs.Count(obs.CtrGainEvals, 1)
	}
	if in.finder != nil {
		idx := in.nearSorted(c)
		if in.batchOn() {
			return in.roundGainGather(c, idx, y)
		}
		var g float64
		for _, i := range idx {
			z := in.Coverage(c, i)
			if yi := y[i]; z > yi {
				z = yi
			}
			g += in.Set.Weight(i) * z
		}
		return g
	}
	if in.batchOn() {
		return in.roundGainFlat(c, y)
	}
	var g float64
	for i := 0; i < in.N(); i++ {
		z := in.Coverage(c, i)
		if yi := y[i]; z > yi {
			z = yi
		}
		g += in.Set.Weight(i) * z
	}
	return g
}

// nearSorted queries the finder and returns the candidate indices in
// ascending order so that accelerated sums match full scans bit for bit.
func (in *Instance) nearSorted(c vec.V) []int {
	idx := in.finder.Near(c)
	sort.Ints(idx)
	return idx
}

// ApplyRound commits center c: it computes z_i = min([1 − d/r]_+, y_i),
// subtracts it from y in place (line "update y_i^{j+1} = y_i^j − z_i^j"),
// and returns the round gain together with the per-point z vector.
func (in *Instance) ApplyRound(c vec.V, y []float64) (gain float64, z []float64) {
	if in.obs != nil {
		in.obs.Count(obs.CtrApplyRounds, 1)
	}
	z = make([]float64, in.N())
	apply := func(i int) {
		zi := in.Coverage(c, i)
		if yi := y[i]; zi > yi {
			zi = yi
		}
		z[i] = zi
		y[i] -= zi
		if y[i] < 0 { // guard against float drift; y_i is ≥ 0 by construction
			y[i] = 0
		}
		gain += in.Set.Weight(i) * zi
	}
	if in.finder != nil {
		for _, i := range in.nearSorted(c) {
			apply(i)
		}
		return gain, z
	}
	for i := 0; i < in.N(); i++ {
		apply(i)
	}
	return gain, z
}

// CoveredIndices returns the indices of points strictly inside the radius-r
// ball at c (coverage fraction > 0), in ascending order. Algorithm 4 grows
// its disk from these.
func (in *Instance) CoveredIndices(c vec.V) []int {
	var idx []int
	if in.finder != nil {
		for _, i := range in.nearSorted(c) {
			if in.Coverage(c, i) > 0 {
				idx = append(idx, i)
			}
		}
		return idx
	}
	for i := 0; i < in.N(); i++ {
		if in.Coverage(c, i) > 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

// ValidResiduals reports whether every y_i lies in [0, 1] (an invariant the
// algorithms maintain; exported for tests and debugging assertions).
func ValidResiduals(y []float64) bool {
	for _, v := range y {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return false
		}
	}
	return true
}

// SumRounds re-derives the total reward from a sequence of per-round gains;
// by construction Σ_j g(j) == f-value achieved by the committed centers.
func SumRounds(gains []float64) float64 {
	var s float64
	for _, g := range gains {
		s += g
	}
	return s
}
