package reward

import (
	"sync"

	"repro/internal/parallel"
	"repro/internal/vec"
)

// The batched evaluation path: when the instance norm implements norm.Batch,
// the per-point interface dispatch of the scalar path collapses into one
// kernel call over the point set's contiguous row-major coordinates
// (pointset.Set.Coords). Every batched routine reproduces the scalar
// routine's arithmetic exactly — same coverage values, same summation order,
// with skipped terms only where IEEE addition of the skipped +0 term is a
// bit-exact no-op — so the two paths are interchangeable on any instance
// (TestBatchedScalarEquivalence enforces this).

// batchParallelMinRows is the row count below which distsInto stays serial
// even when SetBatchWorkers requested parallelism: under it, goroutine
// dispatch costs more than the kernel.
const batchParallelMinRows = 4096

// scratch holds the reusable per-call buffers of the batched path. RoundGain
// is called concurrently from candidate scans, so buffers are pooled rather
// than hung off the Instance.
type scratch struct {
	a, b []float64
}

var scratchPool = sync.Pool{New: func() interface{} { return new(scratch) }}

// take resizes buf to n float64s, reallocating only on capacity growth.
func take(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// batchOn reports whether the batched path is active for this instance.
func (in *Instance) batchOn() bool { return in.batch != nil }

// distsInto runs the instance's batch kernel: out[i] receives the distance
// from c to row i of flat (exact for rows within the radius; free to be any
// value ≥ r beyond it when the norm supports capped evaluation). When
// SetBatchWorkers enabled parallelism and the scan is large, the kernel is
// chunked over contiguous spans of the flat array; writes land in disjoint
// out spans, so the result is identical to the serial call.
func (in *Instance) distsInto(c vec.V, flat []float64, dim int, out []float64) {
	rows := len(out)
	if in.batchWorkers > 1 && rows >= batchParallelMinRows {
		parallel.ForRanges(rows, in.batchWorkers, func(lo, hi int) {
			in.runKernel(c, flat, dim, lo, hi, out)
		})
		return
	}
	in.runKernel(c, flat, dim, 0, rows, out)
}

// runKernel invokes the batch kernel on rows [lo, hi).
func (in *Instance) runKernel(c vec.V, flat []float64, dim, lo, hi int, out []float64) {
	sub, dst := flat[lo*dim:hi*dim], out[lo:hi]
	if in.rbatch != nil {
		in.rbatch.DistsCapped(c, sub, dim, in.Radius, dst)
	} else {
		in.batch.Dists(c, sub, dim, dst)
	}
}

// roundGainFlat is RoundGain's batched full-scan path.
func (in *Instance) roundGainFlat(c vec.V, y []float64) float64 {
	n := in.N()
	sc := scratchPool.Get().(*scratch)
	sc.a = take(sc.a, n)
	dists := sc.a
	in.distsInto(c, in.Set.Coords(), in.Set.Dim(), dists)
	w := in.Set.Weights()
	r := in.Radius
	var g float64
	for i, d := range dists {
		if d >= r {
			continue // coverage 0; adding w_i·0 is a bit-exact no-op
		}
		z := 1 - d/r
		if yi := y[i]; z > yi {
			z = yi
		}
		g += w[i] * z
	}
	scratchPool.Put(sc)
	return g
}

// roundGainGather is RoundGain's batched path over a grid-filtered candidate
// index list (already sorted ascending): candidate rows are gathered into a
// contiguous scratch block so the kernel still streams linearly.
func (in *Instance) roundGainGather(c vec.V, idx []int, y []float64) float64 {
	dim := in.Set.Dim()
	coords := in.Set.Coords()
	m := len(idx)
	sc := scratchPool.Get().(*scratch)
	sc.a = take(sc.a, m)
	sc.b = take(sc.b, m*dim)
	dists, flat := sc.a, sc.b
	for j, i := range idx {
		copy(flat[j*dim:(j+1)*dim], coords[i*dim:(i+1)*dim])
	}
	in.distsInto(c, flat, dim, dists)
	r := in.Radius
	var g float64
	for j, d := range dists {
		if d >= r {
			continue
		}
		z := 1 - d/r
		i := idx[j]
		if yi := y[i]; z > yi {
			z = yi
		}
		g += in.Set.Weight(i) * z
	}
	scratchPool.Put(sc)
	return g
}

// objectiveBatch is Objective's batched path. The scalar loop is point-major
// with an early break once a point's fraction saturates; this center-major
// version skips saturated points before adding, which commits exactly the
// same additions in exactly the same per-point order.
func (in *Instance) objectiveBatch(centers []vec.V) float64 {
	n := in.N()
	sc := scratchPool.Get().(*scratch)
	sc.a = take(sc.a, n)
	sc.b = take(sc.b, n)
	dists, frac := sc.a, sc.b
	for i := range frac {
		frac[i] = 0
	}
	r := in.Radius
	unsaturated := n
	for _, c := range centers {
		in.distsInto(c, in.Set.Coords(), in.Set.Dim(), dists)
		for i, d := range dists {
			if frac[i] >= 1 || d >= r {
				continue
			}
			if frac[i] += 1 - d/r; frac[i] >= 1 {
				unsaturated--
			}
		}
		if unsaturated == 0 {
			// Every point has broken out of the scalar loop; later
			// centers cannot change anything.
			break
		}
	}
	w := in.Set.Weights()
	var total float64
	for i, f := range frac {
		if f > 1 {
			f = 1
		}
		total += w[i] * f
	}
	scratchPool.Put(sc)
	return total
}

// batchCoverages fills out[i] = Coverage(c, i) for every point via the batch
// kernel, reporting false (out untouched) when batching is off. out doubles
// as the kernel's distance buffer.
func (in *Instance) batchCoverages(c vec.V, out []float64) bool {
	if !in.batchOn() {
		return false
	}
	in.distsInto(c, in.Set.Coords(), in.Set.Dim(), out)
	r := in.Radius
	for i, d := range out {
		if d >= r {
			out[i] = 0
		} else {
			out[i] = 1 - d/r
		}
	}
	return true
}
