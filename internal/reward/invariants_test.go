package reward

import (
	"math"
	"testing"

	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// randomSetup builds a random instance plus a random center set.
func randomSetup(t *testing.T, rng *xrand.Rand, nm norm.Norm) (*Instance, []vec.V) {
	t.Helper()
	n := rng.IntRange(1, 20)
	dim := rng.IntRange(1, 4)
	pts := make([]vec.V, n)
	ws := make([]float64, n)
	for i := range pts {
		p := vec.New(dim)
		for d := range p {
			p[d] = rng.Uniform(0, 4)
		}
		pts[i] = p
		ws[i] = float64(rng.IntRange(1, 5))
	}
	in := mustInstance(t, pts, ws, nm, rng.Uniform(0.5, 2.5))
	k := rng.IntRange(1, 5)
	centers := make([]vec.V, k)
	for j := range centers {
		c := vec.New(dim)
		for d := range c {
			c[d] = rng.Uniform(0, 4)
		}
		centers[j] = c
	}
	return in, centers
}

// f(C) is invariant under permutation of the centers (the cap is a min over
// a sum — order free).
func TestObjectivePermutationInvariant(t *testing.T) {
	rng := xrand.New(83)
	for trial := 0; trial < 100; trial++ {
		in, centers := randomSetup(t, rng, norm.L2{})
		base := in.Objective(centers)
		perm := rng.Perm(len(centers))
		shuffled := make([]vec.V, len(centers))
		for i, p := range perm {
			shuffled[i] = centers[p]
		}
		if got := in.Objective(shuffled); math.Abs(got-base) > 1e-9*(1+base) {
			t.Fatalf("trial %d: permutation changed objective %v -> %v", trial, base, got)
		}
	}
}

// Translating every point and every center by the same vector leaves all
// rewards unchanged (distances are translation invariant).
func TestObjectiveTranslationInvariant(t *testing.T) {
	rng := xrand.New(89)
	for trial := 0; trial < 100; trial++ {
		nm := []norm.Norm{norm.L1{}, norm.L2{}, norm.LInf{}}[trial%3]
		in, centers := randomSetup(t, rng, nm)
		base := in.Objective(centers)
		shift := vec.New(in.Set.Dim())
		for d := range shift {
			shift[d] = rng.Uniform(-10, 10)
		}
		pts := make([]vec.V, in.N())
		for i := 0; i < in.N(); i++ {
			pts[i] = in.Set.Point(i).Add(shift)
		}
		set, err := pointset.New(pts, in.Set.Weights())
		if err != nil {
			t.Fatal(err)
		}
		in2, err := NewInstance(set, nm, in.Radius)
		if err != nil {
			t.Fatal(err)
		}
		moved := make([]vec.V, len(centers))
		for j := range centers {
			moved[j] = centers[j].Add(shift)
		}
		if got := in2.Objective(moved); math.Abs(got-base) > 1e-9*(1+base) {
			t.Fatalf("trial %d (%s): translation changed objective %v -> %v", trial, nm.Name(), base, got)
		}
	}
}

// Scaling the geometry and the radius together leaves coverage fractions —
// and therefore all rewards — unchanged (d/r is scale free).
func TestObjectiveScaleInvariant(t *testing.T) {
	rng := xrand.New(97)
	for trial := 0; trial < 100; trial++ {
		in, centers := randomSetup(t, rng, norm.L2{})
		base := in.Objective(centers)
		s := rng.Uniform(0.1, 10)
		pts := make([]vec.V, in.N())
		for i := 0; i < in.N(); i++ {
			pts[i] = in.Set.Point(i).Scale(s)
		}
		set, err := pointset.New(pts, in.Set.Weights())
		if err != nil {
			t.Fatal(err)
		}
		in2, err := NewInstance(set, norm.L2{}, in.Radius*s)
		if err != nil {
			t.Fatal(err)
		}
		scaled := make([]vec.V, len(centers))
		for j := range centers {
			scaled[j] = centers[j].Scale(s)
		}
		if got := in2.Objective(scaled); math.Abs(got-base) > 1e-7*(1+base) {
			t.Fatalf("trial %d: scaling by %v changed objective %v -> %v", trial, s, base, got)
		}
	}
}

// Doubling every weight exactly doubles the objective (linearity in w).
func TestObjectiveWeightLinearity(t *testing.T) {
	rng := xrand.New(101)
	for trial := 0; trial < 100; trial++ {
		in, centers := randomSetup(t, rng, norm.L1{})
		base := in.Objective(centers)
		ws := make([]float64, in.N())
		for i := range ws {
			ws[i] = 2 * in.Set.Weight(i)
		}
		set, err := in.Set.WithWeights(ws)
		if err != nil {
			t.Fatal(err)
		}
		in2, err := NewInstance(set, in.Norm, in.Radius)
		if err != nil {
			t.Fatal(err)
		}
		if got := in2.Objective(centers); math.Abs(got-2*base) > 1e-9*(1+base) {
			t.Fatalf("trial %d: doubled weights gave %v, want %v", trial, got, 2*base)
		}
	}
}

// Widening the radius never decreases any reward: coverage [1 − d/r]_+ is
// non-decreasing in r.
func TestObjectiveMonotoneInRadius(t *testing.T) {
	rng := xrand.New(103)
	for trial := 0; trial < 100; trial++ {
		in, centers := randomSetup(t, rng, norm.L2{})
		base := in.Objective(centers)
		in2, err := NewInstance(in.Set, in.Norm, in.Radius*rng.Uniform(1, 3))
		if err != nil {
			t.Fatal(err)
		}
		if got := in2.Objective(centers); got < base-1e-9 {
			t.Fatalf("trial %d: larger radius decreased objective %v -> %v", trial, base, got)
		}
	}
}

// ApplyRound in any center order reaches the same final residuals-derived
// total (Σ gains == f(C) regardless of commit order).
func TestApplyRoundOrderInvariantTotal(t *testing.T) {
	rng := xrand.New(107)
	for trial := 0; trial < 100; trial++ {
		in, centers := randomSetup(t, rng, norm.L2{})
		total := func(order []int) float64 {
			y := in.NewResiduals()
			var sum float64
			for _, j := range order {
				g, _ := in.ApplyRound(centers[j], y)
				sum += g
			}
			return sum
		}
		fwd := make([]int, len(centers))
		rev := make([]int, len(centers))
		for i := range fwd {
			fwd[i] = i
			rev[i] = len(centers) - 1 - i
		}
		a, b := total(fwd), total(rev)
		if math.Abs(a-b) > 1e-9*(1+a) {
			t.Fatalf("trial %d: commit order changed total %v vs %v", trial, a, b)
		}
	}
}
