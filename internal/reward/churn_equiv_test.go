package reward

import (
	"testing"

	"repro/internal/norm"
	"repro/internal/spatial"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// randPoint draws a point from the same box the churn sequences use.
func randPoint(rng *xrand.Rand, dim int) vec.V {
	p := vec.New(dim)
	for d := range p {
		p[d] = rng.Uniform(0, 4)
	}
	return p
}

// TestEvaluatorChurnEquivalence is the golden gate for the dynamic-instance
// layer, in the same spirit as TestBatchedScalarEquivalence: across norms ×
// dims × batch on/off × finder modes, a random sequence of AddUser /
// RemoveUser / UpdateWeight / SetCenters deltas must leave the evaluator
// bit-identical (==, not within-epsilon) to one rebuilt from scratch over a
// clone of the mutated population. The delta path is only allowed to exist
// because it can never change a published experiment number.
func TestEvaluatorChurnEquivalence(t *testing.T) {
	rng := xrand.New(4242)
	for _, dim := range []int{1, 2, 3} {
		for _, nm := range equivNorms(t, dim) {
			for _, batch := range []bool{false, true} {
				for _, finder := range []string{"none", "grid", "kdtree"} {
					runChurnTrial(t, rng, dim, nm, batch, finder)
				}
			}
		}
	}
}

func runChurnTrial(t *testing.T, rng *xrand.Rand, dim int, nm norm.Norm, batch bool, finder string) {
	t.Helper()
	n := rng.IntRange(6, 40)
	r := rng.Uniform(0.5, 2.0)
	pts := make([]vec.V, n)
	ws := make([]float64, n)
	for i := range pts {
		pts[i] = randPoint(rng, dim)
		ws[i] = float64(rng.IntRange(1, 5))
	}
	in := mustInstance(t, pts, ws, nm, r)
	in.SetBatch(batch)
	switch finder {
	case "grid":
		df, err := spatial.NewDynamicGrid(pts, r)
		if err != nil {
			t.Fatal(err)
		}
		in.SetFinder(df)
	case "kdtree":
		df, err := spatial.NewDynamicKDTree(pts, r)
		if err != nil {
			t.Fatal(err)
		}
		in.SetFinder(df)
	}

	k := rng.IntRange(1, 4)
	centers := make([]vec.V, k)
	for j := range centers {
		centers[j] = randPoint(rng, dim)
	}
	e, err := NewEvaluator(in, centers)
	if err != nil {
		t.Fatal(err)
	}

	for op := 0; op < 30; op++ {
		switch pick := rng.Intn(10); {
		case pick < 4: // AddUser
			p := randPoint(rng, dim)
			w := float64(rng.IntRange(1, 5))
			i, err := e.AddUser(p, w)
			if err != nil {
				t.Fatalf("AddUser: %v", err)
			}
			if i != in.N()-1 {
				t.Fatalf("AddUser index %d, want %d", i, in.N()-1)
			}
		case pick < 7: // RemoveUser
			if in.N() < 2 {
				continue
			}
			i := rng.Intn(in.N())
			last := in.N() - 1
			wantMoved := vec.V(nil)
			if i != last {
				wantMoved = in.Set.Point(last).Clone()
			}
			moved, err := e.RemoveUser(i)
			if err != nil {
				t.Fatalf("RemoveUser(%d): %v", i, err)
			}
			if i == last {
				if moved != -1 {
					t.Fatalf("RemoveUser(last) moved = %d, want -1", moved)
				}
			} else {
				if moved != last {
					t.Fatalf("RemoveUser(%d) moved = %d, want %d", i, moved, last)
				}
				for d := range wantMoved {
					if in.Set.Point(i)[d] != wantMoved[d] {
						t.Fatalf("slot %d holds %v after swap, want %v", i, in.Set.Point(i), wantMoved)
					}
				}
			}
		case pick < 9: // UpdateWeight
			i := rng.Intn(in.N())
			if err := e.UpdateWeight(i, float64(rng.IntRange(1, 9))); err != nil {
				t.Fatalf("UpdateWeight: %v", err)
			}
		default: // SetCenters (adopt a freshly "solved" center set)
			k := rng.IntRange(1, 4)
			cs := make([]vec.V, k)
			for j := range cs {
				cs[j] = randPoint(rng, dim)
			}
			if err := e.SetCenters(cs); err != nil {
				t.Fatalf("SetCenters: %v", err)
			}
		}
		checkChurnState(t, rng, e, nm, r, batch, finder)
	}
}

// checkChurnState rebuilds everything from scratch over a clone of the
// mutated population and demands bit-identical agreement — the evaluator's
// objective, and (when a finder is installed) accelerated RoundGain against
// a freshly built static index.
func checkChurnState(t *testing.T, rng *xrand.Rand, e *Evaluator, nm norm.Norm, r float64, batch bool, finder string) {
	t.Helper()
	set := e.in.Set.Clone()
	in2, err := NewInstance(set, nm, r)
	if err != nil {
		t.Fatal(err)
	}
	in2.SetBatch(batch)
	e2, err := NewEvaluator(in2, e.Centers())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.Objective(), e2.Objective(); got != want {
		t.Fatalf("%s batch=%v finder=%s n=%d k=%d: delta objective %v != rebuild %v (diff %g)",
			nm.Name(), batch, finder, e.in.N(), e.K(), got, want, got-want)
	}
	if finder == "none" {
		return
	}
	if _, isScaled := nm.(norm.Scaled); isScaled {
		// A radius-r Chebyshev index is only conservative for norms whose
		// coverage vanishes outside the window (every p-norm with p ≥ 1). A
		// scaled norm with sub-unit scales reaches beyond it, so different
		// conservative supersets legitimately disagree — the production
		// wiring never pairs such a norm with a finder, and neither does
		// this cross-check.
		return
	}
	var static NeighborFinder
	switch finder {
	case "grid":
		g, err := spatial.NewGrid(set.Points(), r)
		if err != nil {
			t.Fatal(err)
		}
		static = g
	case "kdtree":
		kd, err := spatial.NewKDTree(set.Points(), r)
		if err != nil {
			t.Fatal(err)
		}
		static = kd
	}
	in2.SetFinder(static)
	y := e.in.NewResiduals()
	y2 := in2.NewResiduals()
	for i := range y {
		y[i] = rng.Uniform(0, 1)
		y2[i] = y[i]
	}
	c := randPoint(rng, e.in.Set.Dim())
	if got, want := e.in.RoundGain(c, y), in2.RoundGain(c, y2); got != want {
		t.Fatalf("%s batch=%v finder=%s: dynamic-finder RoundGain %v != static rebuild %v (diff %g)",
			nm.Name(), batch, finder, got, want, got-want)
	}
}

// TestEvaluatorDeltaStaticFinder: population deltas against a static finder
// must fail loudly — a Grid or KDTree silently going stale would break the
// conservativeness contract every accelerated sum depends on.
func TestEvaluatorDeltaStaticFinder(t *testing.T) {
	rng := xrand.New(7)
	pts := make([]vec.V, 10)
	for i := range pts {
		pts[i] = randPoint(rng, 2)
	}
	ws := make([]float64, len(pts))
	for i := range ws {
		ws[i] = 1
	}
	in := mustInstance(t, pts, ws, norm.L2{}, 1)
	g, err := spatial.NewGrid(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	in.SetFinder(g)
	e, err := NewEvaluator(in, []vec.V{pts[0].Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddUser(vec.V{1, 1}, 1); err == nil {
		t.Error("AddUser with static finder accepted")
	}
	if _, err := e.RemoveUser(0); err == nil {
		t.Error("RemoveUser with static finder accepted")
	}
	if in.N() != 10 {
		t.Errorf("failed deltas mutated the set: n=%d", in.N())
	}
	// UpdateWeight never touches the finder, so it must still work.
	if err := e.UpdateWeight(0, 3); err != nil {
		t.Errorf("UpdateWeight with static finder: %v", err)
	}
	// Clearing the finder unblocks deltas.
	in.SetFinder(nil)
	if _, err := e.AddUser(vec.V{1, 1}, 1); err != nil {
		t.Errorf("AddUser with nil finder: %v", err)
	}
}

// TestEvaluatorDeltaValidation: invalid deltas must leave the evaluator's
// parallel state (Set, coverage rows, fraction sums) untouched.
func TestEvaluatorDeltaValidation(t *testing.T) {
	rng := xrand.New(11)
	pts := make([]vec.V, 6)
	for i := range pts {
		pts[i] = randPoint(rng, 2)
	}
	ws := make([]float64, len(pts))
	for i := range ws {
		ws[i] = 1
	}
	in := mustInstance(t, pts, ws, norm.L2{}, 1)
	e, err := NewEvaluator(in, []vec.V{pts[0].Clone(), pts[1].Clone()})
	if err != nil {
		t.Fatal(err)
	}
	before := e.Objective()
	if _, err := e.AddUser(vec.V{1}, 1); err == nil {
		t.Error("dim-mismatched AddUser accepted")
	}
	if _, err := e.RemoveUser(99); err == nil {
		t.Error("out-of-range RemoveUser accepted")
	}
	if err := e.UpdateWeight(0, -1); err == nil {
		t.Error("negative UpdateWeight accepted")
	}
	if err := e.SetCenters([]vec.V{{0}}); err == nil {
		t.Error("dim-mismatched SetCenters accepted")
	}
	if got := e.Objective(); got != before {
		t.Errorf("failed deltas changed the objective: %v != %v", got, before)
	}
	if in.N() != 6 || e.K() != 2 {
		t.Errorf("failed deltas changed shapes: n=%d k=%d", in.N(), e.K())
	}
}
