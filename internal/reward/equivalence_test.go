package reward

import (
	"testing"

	"repro/internal/norm"
	"repro/internal/spatial"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// equivNorms builds the norm matrix for a dimension: the three kernel norms
// plus two fallback-path norms (general p = 3 and a scaled L2), so the test
// also proves SetBatch(true) is a no-op for norms without kernels.
func equivNorms(t *testing.T, dim int) []norm.Norm {
	t.Helper()
	scales := vec.New(dim)
	for d := range scales {
		scales[d] = 0.5 + 0.25*float64(d)
	}
	sc, err := norm.NewScaled(norm.L2{}, scales)
	if err != nil {
		t.Fatal(err)
	}
	return []norm.Norm{norm.L1{}, norm.L2{}, norm.LInf{}, norm.LP{Exp: 3}, sc}
}

// TestBatchedScalarEquivalence is the golden gate for the batched fast path:
// across norms × dims × with/without a grid finder × random seeds, batched
// and scalar RoundGain and Objective (and the evaluator built on them) must
// agree with ==, not within-epsilon. The fast path is only allowed to exist
// because it can never change a published experiment number.
func TestBatchedScalarEquivalence(t *testing.T) {
	rng := xrand.New(97)
	for _, dim := range []int{1, 2, 3, 8} {
		for _, nm := range equivNorms(t, dim) {
			for _, useGrid := range []bool{false, true} {
				for trial := 0; trial < 4; trial++ {
					n := rng.IntRange(5, 120)
					r := rng.Uniform(0.3, 2.5)
					pts := make([]vec.V, n)
					ws := make([]float64, n)
					for i := range pts {
						p := vec.New(dim)
						for d := range p {
							p[d] = rng.Uniform(0, 4)
						}
						pts[i] = p
						ws[i] = float64(rng.IntRange(1, 5))
					}
					scalar := mustInstance(t, pts, ws, nm, r)
					scalar.SetBatch(false)
					batched := mustInstance(t, pts, ws, nm, r)
					if useGrid {
						g, err := spatial.NewGrid(pts, r)
						if err != nil {
							t.Fatal(err)
						}
						scalar.SetFinder(g)
						batched.SetFinder(g)
					}

					y := scalar.NewResiduals()
					for i := range y {
						y[i] = rng.Uniform(0, 1)
					}
					queries := []vec.V{pts[0].Clone()}
					for q := 0; q < 6; q++ {
						c := vec.New(dim)
						for d := range c {
							c[d] = rng.Uniform(-1, 5) // interior and exterior
						}
						queries = append(queries, c)
					}
					for _, c := range queries {
						sg := scalar.RoundGain(c, y)
						bg := batched.RoundGain(c, y)
						if sg != bg {
							t.Fatalf("%s dim %d grid=%v: RoundGain scalar %v != batched %v (diff %g)",
								nm.Name(), dim, useGrid, sg, bg, sg-bg)
						}
					}
					so := scalar.Objective(queries)
					bo := batched.Objective(queries)
					if so != bo {
						t.Fatalf("%s dim %d grid=%v: Objective scalar %v != batched %v (diff %g)",
							nm.Name(), dim, useGrid, so, bo, so-bo)
					}

					// Evaluator Add/Replace/ObjectiveIfReplaced route
					// through the same kernels; drive both in lockstep.
					se, err := NewEvaluator(scalar, queries[:3])
					if err != nil {
						t.Fatal(err)
					}
					be, err := NewEvaluator(batched, queries[:3])
					if err != nil {
						t.Fatal(err)
					}
					if so, bo := se.Objective(), be.Objective(); so != bo {
						t.Fatalf("%s dim %d: evaluator objective scalar %v != batched %v", nm.Name(), dim, so, bo)
					}
					for _, c := range queries[3:] {
						j := rng.Intn(se.K())
						sh, err := se.ObjectiveIfReplaced(j, c)
						if err != nil {
							t.Fatal(err)
						}
						bh, err := be.ObjectiveIfReplaced(j, c)
						if err != nil {
							t.Fatal(err)
						}
						if sh != bh {
							t.Fatalf("%s dim %d: hypothetical scalar %v != batched %v", nm.Name(), dim, sh, bh)
						}
						if err := se.Replace(j, c); err != nil {
							t.Fatal(err)
						}
						if err := be.Replace(j, c); err != nil {
							t.Fatal(err)
						}
						if so, bo := se.Objective(), be.Objective(); so != bo {
							t.Fatalf("%s dim %d: post-replace scalar %v != batched %v", nm.Name(), dim, so, bo)
						}
					}
				}
			}
		}
	}
}

// Chunked kernels (SetBatchWorkers > 1) must also be bit-identical: writes
// land in disjoint spans and the reduction stays serial.
func TestBatchedWorkersEquivalence(t *testing.T) {
	rng := xrand.New(101)
	n := 5000 // above batchParallelMinRows so chunking actually engages
	pts := make([]vec.V, n)
	ws := make([]float64, n)
	for i := range pts {
		pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		ws[i] = float64(rng.IntRange(1, 5))
	}
	serial := mustInstance(t, pts, ws, norm.L2{}, 1)
	chunked := mustInstance(t, pts, ws, norm.L2{}, 1)
	chunked.SetBatchWorkers(4)
	y := serial.NewResiduals()
	for q := 0; q < 10; q++ {
		c := vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		if sg, cg := serial.RoundGain(c, y), chunked.RoundGain(c, y); sg != cg {
			t.Fatalf("query %d: serial %v != chunked %v", q, sg, cg)
		}
	}
}
