package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/norm"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestMinBall2Trivial(t *testing.T) {
	rng := xrand.New(1)
	b, err := MinBall2([]vec.V{vec.Of(1, 2)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if b.Radius != 0 || !b.Center.Equal(vec.Of(1, 2)) {
		t.Fatalf("single point ball = %+v", b)
	}

	b, err = MinBall2([]vec.V{vec.Of(0, 0), vec.Of(2, 0)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Center.ApproxEqual(vec.Of(1, 0), 1e-9) || math.Abs(b.Radius-1) > 1e-9 {
		t.Fatalf("two point ball = %+v", b)
	}
}

func TestMinBall2EquilateralTriangle(t *testing.T) {
	// Equilateral triangle with side 1: circumradius 1/sqrt(3).
	pts := []vec.V{
		vec.Of(0, 0),
		vec.Of(1, 0),
		vec.Of(0.5, math.Sqrt(3)/2),
	}
	b, err := MinBall2(pts, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Sqrt(3)
	if math.Abs(b.Radius-want) > 1e-9 {
		t.Fatalf("radius = %v, want %v", b.Radius, want)
	}
	if !b.Center.ApproxEqual(vec.Of(0.5, math.Sqrt(3)/6), 1e-9) {
		t.Fatalf("center = %v", b.Center)
	}
}

func TestMinBall2ObtuseTriangle(t *testing.T) {
	// For an obtuse triangle the SEB is the diameter of the longest side,
	// not the circumcircle.
	pts := []vec.V{vec.Of(0, 0), vec.Of(10, 0), vec.Of(5, 0.1)}
	b, err := MinBall2(pts, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Radius-5) > 1e-6 {
		t.Fatalf("radius = %v, want 5", b.Radius)
	}
}

func TestMinBall2Degenerate(t *testing.T) {
	// Duplicates and collinear points must not break the support solver.
	pts := []vec.V{
		vec.Of(1, 1), vec.Of(1, 1), vec.Of(1, 1),
		vec.Of(3, 1), vec.Of(2, 1),
	}
	b, err := MinBall2(pts, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Radius-1) > 1e-9 {
		t.Fatalf("radius = %v, want 1", b.Radius)
	}
	l2 := norm.L2{}
	for _, p := range pts {
		if !b.Contains(l2, p) {
			t.Fatalf("point %v outside ball %+v", p, b)
		}
	}
}

func TestMinBall2ThreeD(t *testing.T) {
	// Regular tetrahedron vertices: circumradius sqrt(3/8)·side.
	pts := []vec.V{
		vec.Of(1, 1, 1),
		vec.Of(1, -1, -1),
		vec.Of(-1, 1, -1),
		vec.Of(-1, -1, 1),
	}
	b, err := MinBall2(pts, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !b.Center.ApproxEqual(vec.Of(0, 0, 0), 1e-9) {
		t.Fatalf("center = %v", b.Center)
	}
	if math.Abs(b.Radius-math.Sqrt(3)) > 1e-9 {
		t.Fatalf("radius = %v, want sqrt(3)", b.Radius)
	}
}

func TestMinBall2Empty(t *testing.T) {
	if _, err := MinBall2(nil, xrand.New(1)); err != ErrNoPoints {
		t.Fatalf("err = %v, want ErrNoPoints", err)
	}
}

func TestMinBall2DimMismatch(t *testing.T) {
	if _, err := MinBall2([]vec.V{vec.Of(1), vec.Of(1, 2)}, xrand.New(1)); err == nil {
		t.Fatal("dimension mismatch not detected")
	}
}

// Property: the Welzl ball contains all points and no strictly smaller ball
// centered at the centroid or any input point does.
func TestMinBall2Property(t *testing.T) {
	rng := xrand.New(99)
	l2 := norm.L2{}
	for trial := 0; trial < 200; trial++ {
		n := rng.IntRange(1, 25)
		dim := rng.IntRange(1, 4)
		pts := make([]vec.V, n)
		for i := range pts {
			p := vec.New(dim)
			for d := range p {
				p[d] = rng.Uniform(-10, 10)
			}
			pts[i] = p
		}
		b, err := MinBall2(pts, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if d := l2.Dist(b.Center, p); d > b.Radius*(1+1e-8)+1e-9 {
				t.Fatalf("trial %d: point %v at %v outside radius %v", trial, p, d, b.Radius)
			}
		}
		// Minimality check: every candidate center has covering radius >= b.Radius.
		check := func(c vec.V) {
			var r float64
			for _, p := range pts {
				if d := l2.Dist(c, p); d > r {
					r = d
				}
			}
			if r < b.Radius*(1-1e-8)-1e-9 {
				t.Fatalf("trial %d: center %v beats Welzl ball: %v < %v", trial, c, r, b.Radius)
			}
		}
		cen, _ := vec.Centroid(pts)
		check(cen)
		for _, p := range pts {
			check(p)
		}
	}
}

func TestChebyshevBall(t *testing.T) {
	pts := []vec.V{vec.Of(0, 0), vec.Of(4, 2)}
	b, err := ChebyshevBall(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Center.ApproxEqual(vec.Of(2, 1), 1e-12) || math.Abs(b.Radius-2) > 1e-12 {
		t.Fatalf("ChebyshevBall = %+v", b)
	}
	linf := norm.LInf{}
	for _, p := range pts {
		if !b.Contains(linf, p) {
			t.Fatalf("point %v outside", p)
		}
	}
	if _, err := ChebyshevBall(nil); err != ErrNoPoints {
		t.Fatalf("empty err = %v", err)
	}
}

func TestProjectionBallCoversUnderNorm(t *testing.T) {
	rng := xrand.New(7)
	l1 := norm.L1{}
	for trial := 0; trial < 100; trial++ {
		n := rng.IntRange(1, 15)
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4), rng.Uniform(0, 4))
		}
		b, err := ProjectionBall(l1, pts)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if !b.Contains(l1, p) {
				t.Fatalf("projection ball does not cover %v", p)
			}
		}
	}
}

func TestMinBallL1in2DKnown(t *testing.T) {
	// Two points on a diagonal: L1 ball centered at midpoint.
	pts := []vec.V{vec.Of(0, 0), vec.Of(2, 2)}
	b, err := MinBallL1in2D(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Radius-2) > 1e-9 {
		t.Fatalf("radius = %v, want 2", b.Radius)
	}
	l1 := norm.L1{}
	for _, p := range pts {
		if !b.Contains(l1, p) {
			t.Fatalf("point %v outside", p)
		}
	}
}

// Property: the rotated-L∞ construction yields a valid L1 enclosing ball that
// is never worse than the projection heuristic.
func TestMinBallL1in2DOptimality(t *testing.T) {
	rng := xrand.New(17)
	l1 := norm.L1{}
	for trial := 0; trial < 200; trial++ {
		n := rng.IntRange(1, 20)
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = vec.Of(rng.Uniform(-5, 5), rng.Uniform(-5, 5))
		}
		exact, err := MinBallL1in2D(pts)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if !exact.Contains(l1, p) {
				t.Fatalf("exact L1 ball misses %v", p)
			}
		}
		proj, err := ProjectionBall(l1, pts)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Radius > proj.Radius*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: exact radius %v > projection radius %v", trial, exact.Radius, proj.Radius)
		}
	}
}

func TestMinBallL1in2DRejectsWrongDim(t *testing.T) {
	if _, err := MinBallL1in2D([]vec.V{vec.Of(1, 2, 3)}); err == nil {
		t.Fatal("accepted 3-D point")
	}
	if _, err := MinBallL1in2D(nil); err != ErrNoPoints {
		t.Fatalf("empty err = %v", err)
	}
}

func TestApproxMinBall2CloseToExact(t *testing.T) {
	rng := xrand.New(23)
	for trial := 0; trial < 50; trial++ {
		n := rng.IntRange(2, 30)
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		}
		exact, err := MinBall2(pts, rng)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := ApproxMinBall2(pts, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if approx.Radius < exact.Radius*(1-1e-9) {
			t.Fatalf("approx radius %v below exact %v", approx.Radius, exact.Radius)
		}
		if approx.Radius > exact.Radius*1.2+1e-9 {
			t.Fatalf("approx radius %v too loose vs exact %v", approx.Radius, exact.Radius)
		}
	}
	if _, err := ApproxMinBall2(nil, 0.1); err != ErrNoPoints {
		t.Fatal("empty not rejected")
	}
}

func TestEnclosingBallDispatch(t *testing.T) {
	pts := []vec.V{vec.Of(0, 0), vec.Of(1, 1), vec.Of(2, 0)}
	rng := xrand.New(31)
	for _, n := range []norm.Norm{norm.L1{}, norm.L2{}, norm.LInf{}, norm.LP{Exp: 3}} {
		b, err := EnclosingBall(n, pts, rng)
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		for _, p := range pts {
			if !b.Contains(n, p) {
				t.Errorf("%s: ball misses %v", n.Name(), p)
			}
		}
	}
	// 3-D under L1 goes through the projection path.
	pts3 := []vec.V{vec.Of(0, 0, 0), vec.Of(1, 2, 3)}
	b, err := EnclosingBall(norm.L1{}, pts3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Contains(norm.L1{}, pts3[1]) {
		t.Error("3-D L1 ball misses point")
	}
	if _, err := EnclosingBall(norm.L2{}, nil, rng); err != ErrNoPoints {
		t.Fatalf("empty err = %v", err)
	}
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, ok := solveLinear(a, b)
	if !ok {
		t.Fatal("solver reported singular")
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
	sing := [][]float64{{1, 2}, {2, 4}}
	if _, ok := solveLinear(sing, []float64{1, 2}); ok {
		t.Fatal("singular system not detected")
	}
}

// Property (quick): for random small 2-D sets, MinBall2's radius equals the
// brute-force optimum over all 1-, 2-, and 3-point support candidates.
func TestMinBall2MatchesBruteForce(t *testing.T) {
	l2 := norm.L2{}
	coverRadius := func(c vec.V, pts []vec.V) float64 {
		var r float64
		for _, p := range pts {
			if d := l2.Dist(c, p); d > r {
				r = d
			}
		}
		return r
	}
	f := func(raw [5][2]float64) bool {
		pts := make([]vec.V, 0, 5)
		for _, xy := range raw {
			x := math.Mod(xy[0], 100)
			y := math.Mod(xy[1], 100)
			if math.IsNaN(x) || math.IsNaN(y) {
				x, y = 0, 0
			}
			pts = append(pts, vec.Of(x, y))
		}
		b, err := MinBall2(pts, xrand.New(1))
		if err != nil {
			return false
		}
		// Brute force: balls from all pairs and triples.
		best := math.Inf(1)
		for i := range pts {
			for j := i; j < len(pts); j++ {
				c := pts[i].Mid(pts[j])
				if r := coverRadius(c, pts); r < best {
					best = r
				}
				for k := j + 1; k < len(pts); k++ {
					cb := circumball([]vec.V{pts[i], pts[j], pts[k]})
					if cb.Radius < 0 {
						continue
					}
					if r := coverRadius(cb.Center, pts); r < best {
						best = r
					}
				}
			}
		}
		return b.Radius <= best*(1+1e-7)+1e-9 && b.Radius >= best*(1-1e-7)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
