package geom

import (
	"math"
	"testing"

	"repro/internal/norm"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestMinBallL1LPTrivial(t *testing.T) {
	b, err := MinBallL1LP([]vec.V{vec.Of(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if b.Radius > 1e-9 || !b.Center.ApproxEqual(vec.Of(1, 2), 1e-9) {
		t.Fatalf("single point ball = %+v", b)
	}
	if _, err := MinBallL1LP(nil); err != ErrNoPoints {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := MinBallL1LP([]vec.V{vec.Of(1), vec.Of(1, 2)}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

// In 2-D, the LP solution must match the exact rotation method's radius.
func TestMinBallL1LPMatchesRotation2D(t *testing.T) {
	rng := xrand.New(31)
	for trial := 0; trial < 100; trial++ {
		n := rng.IntRange(1, 15)
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = vec.Of(rng.Uniform(-5, 5), rng.Uniform(-5, 5))
		}
		viaLP, err := MinBallL1LP(pts)
		if err != nil {
			t.Fatal(err)
		}
		viaRot, err := MinBallL1in2D(pts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(viaLP.Radius-viaRot.Radius) > 1e-6*(1+viaRot.Radius) {
			t.Fatalf("trial %d: LP radius %v != rotation radius %v", trial, viaLP.Radius, viaRot.Radius)
		}
		l1 := norm.L1{}
		for _, p := range pts {
			if !viaLP.Contains(l1, p) {
				t.Fatalf("trial %d: LP ball misses %v", trial, p)
			}
		}
	}
}

// In 3-D, the LP ball covers everything and is never worse than the paper's
// projection heuristic — and strictly better on some instances.
func TestMinBallL1LP3D(t *testing.T) {
	rng := xrand.New(37)
	l1 := norm.L1{}
	strictlyBetter := 0
	for trial := 0; trial < 100; trial++ {
		n := rng.IntRange(2, 12)
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4), rng.Uniform(0, 4))
		}
		viaLP, err := MinBallL1LP(pts)
		if err != nil {
			t.Fatal(err)
		}
		proj, err := ProjectionBall(l1, pts)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if !viaLP.Contains(l1, p) {
				t.Fatalf("trial %d: LP ball misses %v", trial, p)
			}
		}
		if viaLP.Radius > proj.Radius*(1+1e-7)+1e-9 {
			t.Fatalf("trial %d: LP radius %v worse than projection %v", trial, viaLP.Radius, proj.Radius)
		}
		if viaLP.Radius < proj.Radius*(1-1e-6) {
			strictlyBetter++
		}
	}
	if strictlyBetter == 0 {
		t.Error("LP never beat the projection heuristic in 3-D; expected strict wins")
	}
}

// Optimality spot check: brute-force over a fine grid of centers cannot beat
// the LP radius.
func TestMinBallL1LPOptimalVsGrid(t *testing.T) {
	rng := xrand.New(41)
	l1 := norm.L1{}
	for trial := 0; trial < 20; trial++ {
		n := rng.IntRange(2, 8)
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = vec.Of(rng.Uniform(0, 2), rng.Uniform(0, 2), rng.Uniform(0, 2))
		}
		viaLP, err := MinBallL1LP(pts)
		if err != nil {
			t.Fatal(err)
		}
		const steps = 12
		for a := 0; a <= steps; a++ {
			for bb := 0; bb <= steps; bb++ {
				for c := 0; c <= steps; c++ {
					ctr := vec.Of(2*float64(a)/steps, 2*float64(bb)/steps, 2*float64(c)/steps)
					var rad float64
					for _, p := range pts {
						if d := l1.Dist(ctr, p); d > rad {
							rad = d
						}
					}
					if rad < viaLP.Radius*(1-1e-6)-1e-9 {
						t.Fatalf("trial %d: grid center %v radius %v beats LP %v",
							trial, ctr, rad, viaLP.Radius)
					}
				}
			}
		}
	}
}
