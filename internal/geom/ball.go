// Package geom provides the enclosing-ball machinery behind the paper's
// complex local greedy algorithm (Algorithm 4): exact Euclidean smallest
// enclosing balls (Welzl 1991, expected linear time, any dimension), the
// Chebyshev / bounding-box center used by the paper's 1-norm projection rule,
// an exact 2-D 1-norm enclosing ball via 45° rotation, and a Badoiu–Clarkson
// core-set approximation for very high dimensions.
package geom

import (
	"errors"
	"math"

	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// Ball is a center and radius under some norm (the norm is contextual: the
// function that produced the ball documents it).
type Ball struct {
	Center vec.V
	Radius float64
}

// Contains reports whether p lies in the ball under norm n, with a small
// relative tolerance to absorb floating-point error.
func (b Ball) Contains(n norm.Norm, p vec.V) bool {
	return n.Dist(b.Center, p) <= b.Radius*(1+1e-9)+1e-12
}

// ErrNoPoints is returned when an enclosing ball of zero points is requested.
var ErrNoPoints = errors.New("geom: enclosing ball of empty point set")

// MinBall2 returns the exact smallest enclosing Euclidean ball of the given
// points in any dimension, using Welzl's randomized algorithm. The rng is
// used only for the initial shuffle; passing the same generator state yields
// the same (unique) ball.
func MinBall2(points []vec.V, rng *xrand.Rand) (Ball, error) {
	return MinBall2Obs(points, rng, nil)
}

// MinBall2Obs is MinBall2 with telemetry: a live collector records the call
// (obs.CtrSEBCalls), the input size (obs.ObsSEBPoints), the maximum Welzl
// recursion depth reached (obs.ObsSEBDepth), and one obs.EvSEB event.
func MinBall2Obs(points []vec.V, rng *xrand.Rand, c obs.Collector) (Ball, error) {
	if len(points) == 0 {
		return Ball{}, ErrNoPoints
	}
	dim := points[0].Dim()
	for _, p := range points[1:] {
		if p.Dim() != dim {
			return Ball{}, vec.ErrDimMismatch
		}
	}
	// Shuffled copy: Welzl's expected-linear bound needs random order.
	pts := make([]vec.V, len(points))
	copy(pts, points)
	if rng == nil {
		rng = xrand.New(0x5eb)
	}
	for i := len(pts) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		pts[i], pts[j] = pts[j], pts[i]
	}
	w := welzl{dim: dim}
	b := w.run(pts, nil)
	if obs.Active(c) {
		c.Count(obs.CtrSEBCalls, 1)
		c.Observe(obs.ObsSEBPoints, float64(len(points)))
		c.Observe(obs.ObsSEBDepth, float64(w.maxDepth))
		c.Emit(obs.Event{Type: obs.EvSEB, Fields: map[string]float64{
			"points": float64(len(points)),
			"depth":  float64(w.maxDepth),
			"radius": b.Radius,
		}})
	}
	return b, nil
}

type welzl struct {
	dim      int
	depth    int
	maxDepth int
}

// run computes the minimal ball of pts with the points in boundary forced
// onto the sphere. boundary never exceeds dim+1 points.
func (w *welzl) run(pts []vec.V, boundary []vec.V) Ball {
	w.depth++
	if w.depth > w.maxDepth {
		w.maxDepth = w.depth
	}
	defer func() { w.depth-- }()
	if len(pts) == 0 || len(boundary) == w.dim+1 {
		return circumball(boundary)
	}
	p := pts[len(pts)-1]
	b := w.run(pts[:len(pts)-1], boundary)
	if b.Radius >= 0 && (norm.L2{}).Dist(b.Center, p) <= b.Radius*(1+1e-10)+1e-12 {
		return b
	}
	return w.run(pts[:len(pts)-1], append(boundary, p))
}

// circumball returns the smallest ball with all of boundary on its sphere:
// the circumcenter within the affine hull of the boundary points. An empty
// boundary yields an invalid ball with Radius −1 that contains nothing.
func circumball(boundary []vec.V) Ball {
	switch len(boundary) {
	case 0:
		return Ball{Radius: -1}
	case 1:
		return Ball{Center: boundary[0].Clone(), Radius: 0}
	case 2:
		c := boundary[0].Mid(boundary[1])
		return Ball{Center: c, Radius: c.Dist2(boundary[0])}
	}
	// Solve 2·Q·λ = b over the affine hull of boundary[0]: with
	// q_i = boundary[i] − boundary[0], Q[i][j] = q_i·q_j and b[i] = |q_i|².
	// The center is boundary[0] + Σ λ_i q_i.
	k := len(boundary) - 1
	qs := make([]vec.V, k)
	for i := 0; i < k; i++ {
		qs[i] = boundary[i+1].Sub(boundary[0])
	}
	a := make([][]float64, k)
	rhs := make([]float64, k)
	for i := 0; i < k; i++ {
		a[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			a[i][j] = 2 * qs[i].Dot(qs[j])
		}
		rhs[i] = qs[i].Dot(qs[i])
	}
	lambda, ok := solveLinear(a, rhs)
	if !ok {
		// Degenerate (affinely dependent) boundary: drop the last point;
		// the remaining support already determines the ball.
		return circumball(boundary[:len(boundary)-1])
	}
	c := boundary[0].Clone()
	for i := 0; i < k; i++ {
		c.AddInPlace(qs[i].Scale(lambda[i]))
	}
	return Ball{Center: c, Radius: c.Dist2(boundary[0])}
}

// solveLinear solves a·x = b by Gaussian elimination with partial pivoting.
// It reports ok=false when the system is (numerically) singular. a and b are
// clobbered.
func solveLinear(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, true
}

// ChebyshevBall returns the smallest enclosing ball under the ∞-norm: the
// midpoint of the bounding box, with radius half the largest side. This is
// also the paper's per-dimension projection rule for 1-norm re-centering
// ("the center position along this dimension is (min+max)/2", §V.B).
func ChebyshevBall(points []vec.V) (Ball, error) {
	lo, hi, err := vec.Bounds(points)
	if err != nil {
		if len(points) == 0 {
			return Ball{}, ErrNoPoints
		}
		return Ball{}, err
	}
	c := lo.Mid(hi)
	var r float64
	for i := range lo {
		if half := (hi[i] - lo[i]) / 2; half > r {
			r = half
		}
	}
	return Ball{Center: c, Radius: r}, nil
}

// ProjectionBall applies the paper's projection rule (Chebyshev center) and
// reports the radius measured under the supplied norm, so that the result is
// a valid enclosing ball under that norm even though the center is only
// optimal for the ∞-norm.
func ProjectionBall(n norm.Norm, points []vec.V) (Ball, error) {
	b, err := ChebyshevBall(points)
	if err != nil {
		return Ball{}, err
	}
	var r float64
	for _, p := range points {
		if d := n.Dist(b.Center, p); d > r {
			r = d
		}
	}
	b.Radius = r
	return b, nil
}

// MinBallL1in2D returns the exact smallest enclosing ball under the 1-norm
// in two dimensions. The L1 unit ball is a diamond; rotating coordinates by
// 45° ((x,y) → (x+y, y−x)) turns L1 distance into L∞ distance, where the
// bounding-box midpoint is exact, and the result is rotated back.
func MinBallL1in2D(points []vec.V) (Ball, error) {
	if len(points) == 0 {
		return Ball{}, ErrNoPoints
	}
	rot := make([]vec.V, len(points))
	for i, p := range points {
		if p.Dim() != 2 {
			return Ball{}, vec.ErrDimMismatch
		}
		rot[i] = vec.Of(p[0]+p[1], p[1]-p[0])
	}
	cb, err := ChebyshevBall(rot)
	if err != nil {
		return Ball{}, err
	}
	u, w := cb.Center[0], cb.Center[1]
	center := vec.Of((u-w)/2, (u+w)/2)
	var r float64
	l1 := norm.L1{}
	for _, p := range points {
		if d := l1.Dist(center, p); d > r {
			r = d
		}
	}
	return Ball{Center: center, Radius: r}, nil
}

// ApproxMinBall2 returns a (1+ε)-approximate Euclidean enclosing ball using
// the Badoiu–Clarkson core-set iteration with ⌈1/ε²⌉ rounds. It is useful
// when the dimension is large enough that exact Welzl support solving becomes
// the bottleneck.
func ApproxMinBall2(points []vec.V, eps float64) (Ball, error) {
	return ApproxMinBall2Obs(points, eps, nil)
}

// ApproxMinBall2Obs is ApproxMinBall2 with telemetry: a live collector
// records the call (obs.CtrSEBCalls) and the number of core-set iterations
// performed (obs.ObsCoresetIters).
func ApproxMinBall2Obs(points []vec.V, eps float64, col obs.Collector) (Ball, error) {
	if len(points) == 0 {
		return Ball{}, ErrNoPoints
	}
	if eps <= 0 {
		eps = 0.01
	}
	c := points[0].Clone()
	iters := int(math.Ceil(1/(eps*eps))) + 1
	for i := 1; i <= iters; i++ {
		// Walk toward the farthest point by 1/(i+1).
		far, fd := 0, -1.0
		for j, p := range points {
			if d := c.Dist2(p); d > fd {
				far, fd = j, d
			}
		}
		step := 1 / float64(i+1)
		for d := range c {
			c[d] += step * (points[far][d] - c[d])
		}
	}
	var r float64
	for _, p := range points {
		if d := c.Dist2(p); d > r {
			r = d
		}
	}
	if obs.Active(col) {
		col.Count(obs.CtrSEBCalls, 1)
		col.Observe(obs.ObsCoresetIters, float64(iters))
	}
	return Ball{Center: c, Radius: r}, nil
}

// EnclosingBall dispatches to the best available enclosing-ball construction
// for the norm: exact Welzl for the 2-norm, exact rotation for the 1-norm in
// 2-D, the exact bounding box for the ∞-norm, and the paper's projection
// heuristic otherwise (valid but possibly non-minimal).
func EnclosingBall(n norm.Norm, points []vec.V, rng *xrand.Rand) (Ball, error) {
	return EnclosingBallObs(n, points, rng, nil)
}

// EnclosingBallObs is EnclosingBall with telemetry. The Welzl path records
// its recursion depth via MinBall2Obs; the closed-form constructions record
// the call and input size (depth is meaningless for them and omitted).
func EnclosingBallObs(n norm.Norm, points []vec.V, rng *xrand.Rand, c obs.Collector) (Ball, error) {
	if len(points) == 0 {
		return Ball{}, ErrNoPoints
	}
	count := func(b Ball, err error) (Ball, error) {
		if err == nil && obs.Active(c) {
			c.Count(obs.CtrSEBCalls, 1)
			c.Observe(obs.ObsSEBPoints, float64(len(points)))
			c.Emit(obs.Event{Type: obs.EvSEB, Fields: map[string]float64{
				"points": float64(len(points)),
				"radius": b.Radius,
			}})
		}
		return b, err
	}
	switch nn := n.(type) {
	case norm.L2:
		return MinBall2Obs(points, rng, c)
	case norm.L1:
		if points[0].Dim() == 2 {
			return count(MinBallL1in2D(points))
		}
		return count(ProjectionBall(nn, points))
	case norm.LInf:
		return count(ChebyshevBall(points))
	default:
		return count(ProjectionBall(n, points))
	}
}
