package geom

import (
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func benchPoints(n, dim int) []vec.V {
	rng := xrand.New(99)
	pts := make([]vec.V, n)
	for i := range pts {
		p := vec.New(dim)
		for d := range p {
			p[d] = rng.Uniform(0, 4)
		}
		pts[i] = p
	}
	return pts
}

func benchMinBall2(b *testing.B, n, dim int) {
	pts := benchPoints(n, dim)
	rng := xrand.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinBall2(pts, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinBall2_N40_2D(b *testing.B)   { benchMinBall2(b, 40, 2) }
func BenchmarkMinBall2_N160_3D(b *testing.B)  { benchMinBall2(b, 160, 3) }
func BenchmarkMinBall2_N1000_2D(b *testing.B) { benchMinBall2(b, 1000, 2) }

func BenchmarkApproxMinBall2_N1000(b *testing.B) {
	pts := benchPoints(1000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ApproxMinBall2(pts, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinBallL1Rotation_N40(b *testing.B) {
	pts := benchPoints(40, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinBallL1in2D(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinBallL1LP_N40_2D(b *testing.B) {
	pts := benchPoints(40, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinBallL1LP(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinBallL1LP_N40_3D(b *testing.B) {
	pts := benchPoints(40, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinBallL1LP(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChebyshevBall_N1000(b *testing.B) {
	pts := benchPoints(1000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ChebyshevBall(pts); err != nil {
			b.Fatal(err)
		}
	}
}
