package geom

import (
	"repro/internal/norm"
	"repro/internal/vec"
)

// MinBall2MTF computes the exact smallest enclosing Euclidean ball with
// Welzl's move-to-front heuristic: points found outside the current ball are
// promoted to the front of the working order, so subsequent passes test the
// "hard" points first. It needs no RNG, is deterministic for a fixed input
// order, and in practice beats the shuffled recursion on large inputs. The
// returned ball is identical (up to float tolerance) to MinBall2's — the
// smallest enclosing ball is unique.
func MinBall2MTF(points []vec.V) (Ball, error) {
	if len(points) == 0 {
		return Ball{}, ErrNoPoints
	}
	dim := points[0].Dim()
	for _, p := range points[1:] {
		if p.Dim() != dim {
			return Ball{}, vec.ErrDimMismatch
		}
	}
	pts := make([]vec.V, len(points))
	copy(pts, points)
	m := mtf{dim: dim}
	return m.run(pts, len(pts), nil), nil
}

type mtf struct {
	dim int
}

// run computes the minimal ball of pts[:n] with the boundary points forced
// onto the sphere, promoting violating points to the front.
func (m *mtf) run(pts []vec.V, n int, boundary []vec.V) Ball {
	b := circumball(boundary)
	if len(boundary) == m.dim+1 {
		return b
	}
	l2 := norm.L2{}
	for i := 0; i < n; i++ {
		p := pts[i]
		if b.Radius >= 0 && l2.Dist(b.Center, p) <= b.Radius*(1+1e-10)+1e-12 {
			continue
		}
		b = m.run(pts, i, append(boundary, p))
		// Move-to-front: shift pts[0:i) right by one, place p first.
		copy(pts[1:i+1], pts[0:i])
		pts[0] = p
	}
	return b
}
