package geom_test

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// The smallest enclosing Euclidean ball of an obtuse triangle is the
// diameter of its longest side, not the circumcircle.
func ExampleMinBall2() {
	pts := []vec.V{vec.Of(0, 0), vec.Of(10, 0), vec.Of(5, 1)}
	b, _ := geom.MinBall2(pts, xrand.New(1))
	fmt.Printf("center %v radius %.1f\n", b.Center, b.Radius)
	// Output:
	// center (5.000, 0.000) radius 5.0
}

// Under the 1-norm in 2-D the minimal covering "disk" is a diamond; a 45°
// rotation reduces it to a bounding-box computation.
func ExampleMinBallL1in2D() {
	pts := []vec.V{vec.Of(0, 0), vec.Of(2, 2)}
	b, _ := geom.MinBallL1in2D(pts)
	fmt.Printf("center %v radius %.1f\n", b.Center, b.Radius)
	// Output:
	// center (1.000, 1.000) radius 2.0
}

// The Chebyshev ball (∞-norm) is the midpoint of the bounding box — the
// paper's per-dimension (min+max)/2 projection rule.
func ExampleChebyshevBall() {
	pts := []vec.V{vec.Of(0, 0), vec.Of(4, 2)}
	b, _ := geom.ChebyshevBall(pts)
	fmt.Printf("center %v radius %.1f\n", b.Center, b.Radius)
	// Output:
	// center (2.000, 1.000) radius 2.0
}
