package geom

import (
	"fmt"

	"repro/internal/lp"
	"repro/internal/norm"
	"repro/internal/vec"
)

// MinBallL1LP returns the exact smallest enclosing ball under the 1-norm in
// any dimension by solving the linear program
//
//	min r  s.t.  Σ_d t_{id} ≤ r,  −t_{id} ≤ x_{id} − c_d ≤ t_{id}
//
// with the center components split into nonnegative parts. The paper only
// offers the per-dimension (min+max)/2 projection for this step (§V.B, exact
// for the ∞-norm but not the 1-norm); this solver quantifies what that
// heuristic gives up (see the ball-mode ablation).
func MinBallL1LP(points []vec.V) (Ball, error) {
	if len(points) == 0 {
		return Ball{}, ErrNoPoints
	}
	m := points[0].Dim()
	n := len(points)
	for _, p := range points {
		if p.Dim() != m {
			return Ball{}, vec.ErrDimMismatch
		}
	}
	// Variable layout: cp[0..m), cn[0..m), t[i*m+d], r — all ≥ 0.
	nv := 2*m + n*m + 1
	tOff := 2 * m
	rIdx := nv - 1

	obj := make([]float64, nv)
	obj[rIdx] = 1 // minimized via SolveMin

	var a [][]float64
	var b []float64
	row := func() []float64 { return make([]float64, nv) }
	for i, p := range points {
		for d := 0; d < m; d++ {
			ti := tOff + i*m + d
			// −cp_d + cn_d − t_{id} ≤ −x_{id}
			r1 := row()
			r1[d] = -1
			r1[m+d] = 1
			r1[ti] = -1
			a = append(a, r1)
			b = append(b, -p[d])
			// cp_d − cn_d − t_{id} ≤ x_{id}
			r2 := row()
			r2[d] = 1
			r2[m+d] = -1
			r2[ti] = -1
			a = append(a, r2)
			b = append(b, p[d])
		}
		// Σ_d t_{id} − r ≤ 0
		r3 := row()
		for d := 0; d < m; d++ {
			r3[tOff+i*m+d] = 1
		}
		r3[rIdx] = -1
		a = append(a, r3)
		b = append(b, 0)
	}

	x, _, err := lp.SolveMin(obj, a, b)
	if err != nil {
		return Ball{}, fmt.Errorf("geom: L1 ball LP: %w", err)
	}
	center := vec.New(m)
	for d := 0; d < m; d++ {
		center[d] = x[d] - x[m+d]
	}
	// Recompute the radius from the data for numerical cleanliness.
	var radius float64
	l1 := norm.L1{}
	for _, p := range points {
		if d := l1.Dist(center, p); d > radius {
			radius = d
		}
	}
	return Ball{Center: center, Radius: radius}, nil
}
