package geom

import (
	"math"
	"testing"

	"repro/internal/norm"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestMinBall2MTFMatchesWelzl(t *testing.T) {
	rng := xrand.New(61)
	l2 := norm.L2{}
	for trial := 0; trial < 200; trial++ {
		n := rng.IntRange(1, 40)
		dim := rng.IntRange(1, 4)
		pts := make([]vec.V, n)
		for i := range pts {
			p := vec.New(dim)
			for d := range p {
				p[d] = rng.Uniform(-8, 8)
			}
			pts[i] = p
		}
		a, err := MinBall2(pts, rng)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MinBall2MTF(pts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Radius-b.Radius) > 1e-7*(1+a.Radius) {
			t.Fatalf("trial %d: radii differ: %v vs %v", trial, a.Radius, b.Radius)
		}
		for _, p := range pts {
			if !b.Contains(l2, p) {
				t.Fatalf("trial %d: MTF ball misses %v", trial, p)
			}
		}
	}
}

func TestMinBall2MTFValidation(t *testing.T) {
	if _, err := MinBall2MTF(nil); err != ErrNoPoints {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := MinBall2MTF([]vec.V{vec.Of(1), vec.Of(1, 2)}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	b, err := MinBall2MTF([]vec.V{vec.Of(2, 3)})
	if err != nil || b.Radius != 0 {
		t.Fatalf("single point: %+v %v", b, err)
	}
}

func TestMinBall2MTFDoesNotMutateInput(t *testing.T) {
	pts := []vec.V{vec.Of(0, 0), vec.Of(5, 0), vec.Of(2, 3), vec.Of(1, 1)}
	snap := make([]vec.V, len(pts))
	for i, p := range pts {
		snap[i] = p.Clone()
	}
	if _, err := MinBall2MTF(pts); err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if !pts[i].Equal(snap[i]) {
			t.Fatalf("input order/content mutated at %d", i)
		}
	}
}

func BenchmarkMinBall2MTF_N1000_2D(b *testing.B) {
	pts := benchPoints(1000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinBall2MTF(pts); err != nil {
			b.Fatal(err)
		}
	}
}
