package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"

	"repro/internal/pointset"
)

// Key is a canonical instance fingerprint — the cache key.
type Key [sha256.Size]byte

// fpVersion tags the fingerprint layout. Bump it whenever the hashed field
// set or encoding changes, so stale processes can never alias keys across
// incompatible layouts.
const fpVersion = "cdfp/3"

// SolveParams is every request parameter that can affect a solve result —
// the fingerprint's input alongside the instance itself.
//
// Deliberately excluded, because they provably cannot change the returned
// centers or gains:
//
//   - Workers: the parallel scans reduce with NaN-guarded argmax over fixed
//     chunk boundaries; results are bit-identical across worker counts
//     (pinned by TestBatchedScalarEquivalence and the parallel guard tests).
//   - The request deadline: a deadline changes whether a result is partial,
//     and partial results are never cached.
//   - Request identity (X-Request-ID) and telemetry sinks: presentation,
//     not inputs.
type SolveParams struct {
	Norm   string
	Radius float64
	K      int
	Solver string

	// Result-affecting solver.Options fields.
	Seed         uint64
	GridPer      int
	BoxLo, BoxHi []float64
	Polish       bool
	DisablePrune bool
	WarmStart    [][]float64
	// Shards/Halo select the partition → shard-solve → merge pipeline and
	// its boundary-halo width. Both change the partition and therefore the
	// returned centers, so a sharded and an unsharded solve of the same
	// instance must never share a key.
	Shards int
	Halo   int
	// Refine is the near-linear solver's local-refinement round budget. It
	// moves the returned centers (more refinement, different local optima),
	// so a refined and an unrefined solve must never share a key.
	Refine int
}

// hasher streams length-delimited sections into a sha256 so that adjacent
// variable-length fields can never alias (e.g. coords [1,2],[3] vs [1],[2,3]).
type hasher struct {
	st  hash.Hash
	buf [8]byte
}

func (h *hasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(h.buf[:], v)
	h.st.Write(h.buf[:])
}

func (h *hasher) f64(v float64) { h.u64(math.Float64bits(v)) }

func (h *hasher) f64s(vs []float64) {
	h.u64(uint64(len(vs)))
	for _, v := range vs {
		h.f64(v)
	}
}

func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	h.st.Write([]byte(s))
}

func (h *hasher) bool(b bool) {
	if b {
		h.u64(1)
	} else {
		h.u64(0)
	}
}

// Fingerprint computes the canonical cache key for one solve: a streaming
// hash over the instance's flat row-major coordinates and weights plus
// every result-affecting parameter. Two requests share a key if and only if
// a deterministic solver must return the same result for both.
//
// The instance is hashed from its contiguous Coords() view (bit-exact
// float64 representations, so 0.0 and -0.0 fingerprint differently — they
// are different inputs even if most norms treat them alike), in O(n·dim)
// with no per-point allocation.
func Fingerprint(set *pointset.Set, p SolveParams) Key {
	st := sha256.New()
	h := &hasher{st: st}
	h.str(fpVersion)
	h.u64(uint64(set.Dim()))
	h.f64s(set.Coords())
	h.f64s(set.Weights())
	h.str(p.Norm)
	h.f64(p.Radius)
	h.u64(uint64(p.K))
	h.str(p.Solver)
	h.u64(p.Seed)
	h.u64(uint64(p.GridPer))
	h.f64s(p.BoxLo)
	h.f64s(p.BoxHi)
	h.bool(p.Polish)
	h.bool(p.DisablePrune)
	h.u64(uint64(len(p.WarmStart)))
	for _, row := range p.WarmStart {
		h.f64s(row)
	}
	h.u64(uint64(int64(p.Shards)))
	h.u64(uint64(int64(p.Halo)))
	h.u64(uint64(int64(p.Refine)))
	var key Key
	st.Sum(key[:0])
	return key
}
