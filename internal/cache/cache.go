// Package cache is the serving stack's solve-result cache: a byte-budgeted
// LRU keyed by a canonical instance fingerprint, with singleflight request
// collapsing so N concurrent identical requests cost one solve.
//
// The paper's solvers are deterministic: the same instance, radius, norm,
// k, solver, and result-affecting options always produce the same center
// set, bit for bit. Under repeated or near-duplicate traffic re-running the
// solver is pure waste, so the serving layer memoizes complete results by
// Fingerprint and answers duplicates from memory — without consuming a
// worker slot. Three properties keep the cache sound:
//
//   - The key covers every input that can change the result (and nothing
//     that cannot — worker count is excluded because results are
//     bit-identical across parallelism; see Fingerprint).
//   - Only complete results enter the cache. Partial/anytime prefixes are
//     artifacts of a particular deadline, not of the instance, and are
//     never stored.
//   - Eviction is by byte budget, LRU order, so a burst of large one-off
//     instances cannot pin memory.
//
// Collapsing rides the same keys: the first request for an uncached key
// becomes the leader (runs the solve), later identical requests join its
// flight and wait for the leader's value instead of taking worker slots.
// A leader that ends without a cacheable value (partial result, error)
// wakes its followers empty-handed and they fall back to solving.
package cache

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// DefaultMaxBytes is the byte budget a zero cache.New budget resolves to:
// enough for thousands of medium solve responses without threatening a
// serving box's memory.
const DefaultMaxBytes = 64 << 20

// entryOverhead approximates the per-entry bookkeeping cost (key, list
// element, map slot) charged against the budget on top of the caller's
// payload size, so a flood of tiny entries still respects the budget.
const entryOverhead = 128

// Cache is a byte-budgeted LRU over fingerprint keys plus a singleflight
// table. All methods are safe for concurrent use. The zero value is not
// usable; construct with New.
type Cache struct {
	col obs.Collector

	mu      sync.Mutex
	max     int64
	bytes   int64
	ll      *list.List // front = most recently used
	items   map[Key]*list.Element
	flights map[Key]*Flight
}

type entry struct {
	key  Key
	val  any
	size int64 // payload + entryOverhead
}

// New builds a cache with the given byte budget. budget 0 means
// DefaultMaxBytes; the collector (may be nil) receives the eviction counter
// and the bytes/entries gauges.
func New(budget int64, col obs.Collector) *Cache {
	if budget == 0 {
		budget = DefaultMaxBytes
	}
	return &Cache{
		col:     obs.OrNop(col),
		max:     budget,
		ll:      list.New(),
		items:   make(map[Key]*list.Element),
		flights: make(map[Key]*Flight),
	}
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache) Get(key Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Lookup is the atomic entry point for the serving layer: it resolves key to
// exactly one of three outcomes under one lock acquisition.
//
//   - Cached: val non-nil, f nil — answer from memory.
//   - In flight: f non-nil, leader false — wait on f.Done() and read
//     f.Value() (nil means the leader produced nothing cacheable).
//   - Absent: f non-nil, leader true — the caller owns the solve and MUST
//     eventually call f.Deliver (nil when no cacheable value was produced),
//     or followers block until their own contexts expire.
//
// The atomicity matters: with a separate get-then-join, a request racing a
// leader's delivery could miss the cache and miss the flight, electing a
// second leader for work already done.
func (c *Cache) Lookup(key Key) (val any, f *Flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry).val, nil, false
	}
	if f, ok := c.flights[key]; ok {
		return nil, f, false
	}
	f = &Flight{c: c, key: key, done: make(chan struct{})}
	c.flights[key] = f
	return nil, f, true
}

// Put stores val under key, charging size (plus fixed overhead) against the
// budget and evicting least-recently-used entries until it fits. A value
// larger than the whole budget is not stored at all. Re-putting an existing
// key replaces its value and size.
func (c *Cache) Put(key Key, val any, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, val, size)
}

// putLocked is Put's body; callers hold c.mu.
func (c *Cache) putLocked(key Key, val any, size int64) {
	size += entryOverhead
	if size > c.max {
		// The value is too large to store — but refusing the Put must not
		// leave a previous value resident under the same key: the caller
		// has a newer answer, so serving the stale one would be wrong.
		if el, ok := c.items[key]; ok {
			e := el.Value.(*entry)
			c.ll.Remove(el)
			delete(c.items, key)
			c.bytes -= e.size
			c.gaugeLocked()
		}
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.val, e.size = val, size
		c.ll.MoveToFront(el)
	} else {
		e := &entry{key: key, val: val, size: size}
		c.items[key] = c.ll.PushFront(e)
		c.bytes += size
	}
	for c.bytes > c.max {
		c.evictOldestLocked()
	}
	c.gaugeLocked()
}

// evictOldestLocked drops the LRU entry. Callers hold c.mu.
func (c *Cache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size
	c.col.Count(obs.CtrCacheEvictions, 1)
}

func (c *Cache) gaugeLocked() {
	c.col.Gauge(obs.GaugeCacheBytes, float64(c.bytes))
	c.col.Gauge(obs.GaugeCacheEntries, float64(c.ll.Len()))
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the budget-charged size of all cached entries.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// MaxBytes reports the configured budget.
func (c *Cache) MaxBytes() int64 { return c.max }

// Flight is one in-progress computation of a key's value. The leader (the
// caller Lookup reported leader=true to) computes the value and publishes it
// with Deliver; followers wait on Done and read Value.
type Flight struct {
	c    *Cache
	key  Key
	done chan struct{}
	val  any
	once sync.Once
}

// Deliver publishes the leader's value (nil when the solve produced nothing
// cacheable — a partial result or an error), stores a non-nil value in the
// LRU under the flight's key, unregisters the flight, and wakes every
// follower. Unregistering and storing happen atomically, so a concurrent
// Lookup sees either the flight or the cached value, never neither.
// Idempotent: only the first call publishes.
func (f *Flight) Deliver(val any, size int64) {
	f.once.Do(func() {
		c := f.c
		c.mu.Lock()
		delete(c.flights, f.key)
		f.val = val
		if val != nil {
			c.putLocked(f.key, val, size)
		}
		c.mu.Unlock()
		close(f.done)
	})
}

// Done is closed once the leader has delivered.
func (f *Flight) Done() <-chan struct{} { return f.done }

// Value returns the delivered value (nil when the leader had nothing
// cacheable). Only valid after Done is closed.
func (f *Flight) Value() any { return f.val }
