package cache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/pointset"
	"repro/internal/vec"
)

func mustSet(t testing.TB, rows [][]float64, weights []float64) *pointset.Set {
	t.Helper()
	pts := make([]vec.V, len(rows))
	for i, r := range rows {
		pts[i] = vec.V(r)
	}
	if weights == nil {
		weights = make([]float64, len(rows))
		for i := range weights {
			weights[i] = 1
		}
	}
	s, err := pointset.New(pts, weights)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func baseParams() SolveParams {
	return SolveParams{Norm: "l2", Radius: 1.5, K: 3, Solver: "greedy2", Seed: 7}
}

// TestFingerprintSensitivity: every result-affecting input changes the key,
// and the excluded inputs (none are fields of SolveParams, so the test
// mutates the instance and each field in turn) do so independently.
func TestFingerprintSensitivity(t *testing.T) {
	set := mustSet(t, [][]float64{{0, 0}, {1, 2}, {3, 1}}, []float64{1, 2, 3})
	base := Fingerprint(set, baseParams())

	if got := Fingerprint(set, baseParams()); got != base {
		t.Fatal("fingerprint is not deterministic")
	}

	mutations := map[string]func() Key{
		"coords": func() Key {
			s := mustSet(t, [][]float64{{0, 0}, {1, 2}, {3, 1.000001}}, []float64{1, 2, 3})
			return Fingerprint(s, baseParams())
		},
		"weights": func() Key {
			s := mustSet(t, [][]float64{{0, 0}, {1, 2}, {3, 1}}, []float64{1, 2, 4})
			return Fingerprint(s, baseParams())
		},
		"dim-vs-flat": func() Key {
			// Same flat coords [0,0,1,2,3,1], different dim: 3 points in
			// 2-D vs 2 points in 3-D. Weight count differs too, so pick
			// unit weights for both; the dim section must still split them.
			s := mustSet(t, [][]float64{{0, 0, 1}, {2, 3, 1}}, nil)
			u := mustSet(t, [][]float64{{0, 0}, {1, 2}, {3, 1}}, nil)
			a, b := Fingerprint(s, baseParams()), Fingerprint(u, baseParams())
			if a == b {
				t.Error("dim not separated from flat coords")
			}
			return base // not compared against base
		},
		"norm":    func() Key { p := baseParams(); p.Norm = "l1"; return Fingerprint(set, p) },
		"radius":  func() Key { p := baseParams(); p.Radius = 1.25; return Fingerprint(set, p) },
		"k":       func() Key { p := baseParams(); p.K = 4; return Fingerprint(set, p) },
		"solver":  func() Key { p := baseParams(); p.Solver = "greedy3"; return Fingerprint(set, p) },
		"seed":    func() Key { p := baseParams(); p.Seed = 8; return Fingerprint(set, p) },
		"gridper": func() Key { p := baseParams(); p.GridPer = 5; return Fingerprint(set, p) },
		"box": func() Key {
			p := baseParams()
			p.BoxLo, p.BoxHi = []float64{0, 0}, []float64{4, 4}
			return Fingerprint(set, p)
		},
		"polish": func() Key { p := baseParams(); p.Polish = true; return Fingerprint(set, p) },
		"prune":  func() Key { p := baseParams(); p.DisablePrune = true; return Fingerprint(set, p) },
		"shards": func() Key { p := baseParams(); p.Shards = 8; return Fingerprint(set, p) },
		"halo":   func() Key { p := baseParams(); p.Halo = 2; return Fingerprint(set, p) },
		"refine": func() Key { p := baseParams(); p.Refine = 4; return Fingerprint(set, p) },
		"warm": func() Key {
			p := baseParams()
			p.WarmStart = [][]float64{{1, 1}}
			return Fingerprint(set, p)
		},
	}
	for name, mutate := range mutations {
		if got := mutate(); got == base && name != "dim-vs-flat" {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}

	// Box sides must not alias: ({lo},{}) vs ({},{lo}).
	pl, ph := baseParams(), baseParams()
	pl.BoxLo = []float64{1, 1}
	ph.BoxHi = []float64{1, 1}
	if Fingerprint(set, pl) == Fingerprint(set, ph) {
		t.Error("box_lo and box_hi alias")
	}

	// Sharded and unsharded solves of the same instance produce different
	// results, so they must never share a cache entry — pin both directions
	// (sharded never hits an unsharded entry, and vice versa), plus the
	// shards/halo axes independently.
	sharded := baseParams()
	sharded.Shards, sharded.Halo = 8, 1
	if Fingerprint(set, sharded) == base {
		t.Error("sharded solve collides with the unsharded entry")
	}
	unsharded := sharded
	unsharded.Shards, unsharded.Halo = 0, 0
	if Fingerprint(set, unsharded) != base {
		t.Error("zero shards/halo is not the unsharded fingerprint")
	}
	moreShards, moreHalo := sharded, sharded
	moreShards.Shards = 16
	moreHalo.Halo = 2
	if Fingerprint(set, moreShards) == Fingerprint(set, sharded) {
		t.Error("shard count does not reach the fingerprint")
	}
	if Fingerprint(set, moreHalo) == Fingerprint(set, sharded) {
		t.Error("halo width does not reach the fingerprint")
	}
	if Fingerprint(set, moreShards) == Fingerprint(set, moreHalo) {
		t.Error("shards and halo alias in the fingerprint")
	}

	// The near-linear refinement budget changes the returned centers, so pin
	// it both ways: a refined solve never hits the default entry, and the
	// zero budget is exactly the default fingerprint. Disabled (-1) and
	// default (0) refinement differ too — they run different code.
	refined := baseParams()
	refined.Solver, refined.Refine = "nearlinear", 4
	plain := refined
	plain.Refine = 0
	if Fingerprint(set, refined) == Fingerprint(set, plain) {
		t.Error("refine budget does not reach the fingerprint")
	}
	zero := baseParams()
	zero.Refine = 0
	if Fingerprint(set, zero) != base {
		t.Error("zero refine is not the default fingerprint")
	}
	disabled := plain
	disabled.Refine = -1
	if Fingerprint(set, disabled) == Fingerprint(set, plain) {
		t.Error("disabled refinement collides with the default entry")
	}
}

// TestLRUEvictionBudget pins the byte-budget policy: inserts past the
// budget evict in LRU order, Get refreshes recency, and the accounting
// (Bytes, Len, eviction counter) balances.
func TestLRUEvictionBudget(t *testing.T) {
	m := obs.NewMetrics()
	const payload = 1000
	budget := int64(3 * (payload + entryOverhead))
	c := New(budget, m)

	key := func(i int) Key { return Fingerprint(mustSet(t, [][]float64{{float64(i)}}, nil), baseParams()) }
	for i := 0; i < 3; i++ {
		c.Put(key(i), i, payload)
	}
	if c.Len() != 3 || c.Bytes() != budget {
		t.Fatalf("after 3 inserts: len=%d bytes=%d, want 3/%d", c.Len(), c.Bytes(), budget)
	}

	// Touch key(0) so key(1) is now the LRU; the 4th insert must evict it.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("key(0) missing before eviction")
	}
	c.Put(key(3), 3, payload)
	if _, ok := c.Get(key(1)); ok {
		t.Error("LRU entry survived past the budget")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(key(i)); !ok {
			t.Errorf("key(%d) evicted out of LRU order", i)
		}
	}
	snap := m.Snapshot()
	if snap.Counters[obs.CtrCacheEvictions] != 1 {
		t.Errorf("evictions = %d, want 1", snap.Counters[obs.CtrCacheEvictions])
	}
	if got := snap.Gauges[obs.GaugeCacheEntries]; got != 3 {
		t.Errorf("entries gauge = %v, want 3", got)
	}
	if got := snap.Gauges[obs.GaugeCacheBytes]; got != float64(budget) {
		t.Errorf("bytes gauge = %v, want %d", got, budget)
	}

	// An entry above the whole budget is refused outright.
	c.Put(key(9), 9, budget+1)
	if _, ok := c.Get(key(9)); ok {
		t.Error("oversize entry was stored")
	}
	// Regression: a refused oversize *replacement* must also delete the
	// previous entry under the key — the caller has a newer answer, so the
	// stale value must never be served again — and the byte accounting must
	// release the stale entry's charge.
	before := c.Bytes()
	c.Put(key(0), 0, payload)
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("key(0) missing before oversize replacement")
	}
	c.Put(key(0), "too big", budget+1)
	if _, ok := c.Get(key(0)); ok {
		t.Error("stale entry served after its replacement was refused")
	}
	if c.Bytes() != before-(payload+entryOverhead) {
		t.Errorf("bytes = %d after refused replacement, want %d", c.Bytes(), before-(payload+entryOverhead))
	}
	// Replacing a key adjusts accounting instead of double-charging.
	c.Put(key(3), 33, payload/2)
	if v, ok := c.Get(key(3)); !ok || v.(int) != 33 {
		t.Errorf("replaced value = %v, %v", v, ok)
	}
	if c.Bytes() >= budget {
		t.Errorf("bytes %d not reduced by smaller replacement", c.Bytes())
	}
}

// TestSingleflightCollapse: many goroutines racing one key produce exactly
// one leader; followers all observe the leader's delivered value.
func TestSingleflightCollapse(t *testing.T) {
	c := New(0, nil)
	key := Fingerprint(mustSet(t, [][]float64{{1, 2}}, nil), baseParams())

	// The leader holds the flight open (a real leader runs a whole solve)
	// while racers pile in: every one of them must join, not lead.
	_, lead, isLeader := c.Lookup(key)
	if !isLeader {
		t.Fatal("first Lookup must lead")
	}
	const racers = 32
	var mu sync.Mutex
	results := make([]any, 0, racers)
	var joined, wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		joined.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, f, leader := c.Lookup(key)
			joined.Done()
			if leader {
				t.Error("racer elected leader while the flight was open")
				f.Deliver(nil, 0)
				return
			}
			if val != nil {
				t.Errorf("racer got value %v before delivery", val)
				return
			}
			<-f.Done()
			mu.Lock()
			results = append(results, f.Value())
			mu.Unlock()
		}()
	}
	joined.Wait()
	lead.Deliver("value", 5)
	wg.Wait()
	if len(results) != racers {
		t.Fatalf("%d followers finished, want %d", len(results), racers)
	}
	for i, v := range results {
		if v != "value" {
			t.Errorf("racer %d saw %v", i, v)
		}
	}
	if v, ok := c.Get(key); !ok || v != "value" {
		t.Errorf("delivered value not cached: %v, %v", v, ok)
	}

	// After delivery the key resolves to the cached value atomically — a
	// Lookup can never elect a second leader for work already done.
	if v, f, leader := c.Lookup(key); v != "value" || f != nil || leader {
		t.Errorf("post-delivery Lookup = (%v, %v, %v), want cached hit", v, f, leader)
	}
}

// TestDeliverNil: a leader with nothing cacheable (partial result, solve
// error) wakes followers empty-handed and caches nothing.
func TestDeliverNil(t *testing.T) {
	c := New(0, nil)
	key := Fingerprint(mustSet(t, [][]float64{{3}}, nil), baseParams())
	_, f, leader := c.Lookup(key)
	if !leader {
		t.Fatal("first Lookup must lead")
	}
	_, follower, lead2 := c.Lookup(key)
	if lead2 || follower != f {
		t.Fatal("second Lookup must follow the first flight")
	}
	f.Deliver(nil, 0)
	f.Deliver("late", 4) // idempotent: must not overwrite
	<-follower.Done()
	if follower.Value() != nil {
		t.Errorf("follower saw %v, want nil", follower.Value())
	}
	if _, ok := c.Get(key); ok {
		t.Error("nil delivery populated the cache")
	}
	if c.Len() != 0 {
		t.Errorf("cache len %d after nil delivery", c.Len())
	}

	// Nothing was cached, so the next Lookup elects a fresh leader: the
	// fall-back solve path stays available after a failed/partial leader.
	if v, f2, lead3 := c.Lookup(key); v != nil || !lead3 {
		t.Errorf("post-nil-delivery Lookup = (%v, leader=%v), want fresh leader", v, lead3)
	} else {
		f2.Deliver(nil, 0)
	}
}

func BenchmarkFingerprint(b *testing.B) {
	rows := make([][]float64, 1000)
	for i := range rows {
		rows[i] = []float64{float64(i % 40), float64(i / 40)}
	}
	set := mustSet(b, rows, nil)
	p := baseParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Fingerprint(set, p)
	}
}

func ExampleFingerprint() {
	pts := []vec.V{{0, 0}, {1, 2}}
	set, _ := pointset.UnitWeights(pts)
	a := Fingerprint(set, SolveParams{Norm: "l2", Radius: 1, K: 2, Solver: "greedy2"})
	b := Fingerprint(set, SolveParams{Norm: "l2", Radius: 1, K: 3, Solver: "greedy2"})
	fmt.Println(a == b)
	// Output: false
}
