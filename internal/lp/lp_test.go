package lp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/xrand"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

func TestSolveTextbook(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  →  x=2, y=6, z=36.
	x, val, err := Solve(
		[]float64{3, 5},
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]float64{4, 12, 18},
	)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, val, 36, 1e-7, "objective")
	approx(t, x[0], 2, 1e-7, "x")
	approx(t, x[1], 6, 1e-7, "y")
}

func TestSolveSingleVariable(t *testing.T) {
	x, val, err := Solve([]float64{2}, [][]float64{{1}}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, val, 10, 1e-9, "objective")
	approx(t, x[0], 5, 1e-9, "x")
}

func TestSolveUnbounded(t *testing.T) {
	// max x with only x >= 0: no upper bound.
	_, _, err := Solve([]float64{1}, [][]float64{{-1}}, []float64{0})
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x <= 1 and −x <= −3 (x >= 3): empty.
	_, _, err := Solve([]float64{1}, [][]float64{{1}, {-1}}, []float64{1, -3})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// x >= 2 (as −x <= −2), x <= 5, max −x → x = 2.
	x, val, err := Solve([]float64{-1}, [][]float64{{-1}, {1}}, []float64{-2, 5})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, x[0], 2, 1e-7, "x")
	approx(t, val, -2, 1e-7, "objective")
}

func TestSolveEqualityViaPair(t *testing.T) {
	// x + y = 4 encoded as <= and >=; max x s.t. x <= 3 → x=3, y=1.
	x, _, err := Solve(
		[]float64{1, 0},
		[][]float64{{1, 1}, {-1, -1}, {1, 0}},
		[]float64{4, -4, 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, x[0], 3, 1e-7, "x")
	approx(t, x[1], 1, 1e-7, "y")
}

func TestSolveDegenerate(t *testing.T) {
	// Classic degenerate tableau (multiple constraints active at a vertex);
	// Bland's rule must terminate.
	x, val, err := Solve(
		[]float64{10, -57, -9, -24},
		[][]float64{
			{0.5, -5.5, -2.5, 9},
			{0.5, -1.5, -0.5, 1},
			{1, 0, 0, 0},
		},
		[]float64{0, 0, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, val, 1, 1e-6, "Beale degenerate objective")
	approx(t, x[0], 1, 1e-6, "x0")
}

func TestSolveZeroVariables(t *testing.T) {
	x, val, err := Solve(nil, [][]float64{}, []float64{})
	if err != nil || len(x) != 0 || val != 0 {
		t.Fatalf("empty LP: %v %v %v", x, val, err)
	}
	if _, _, err := Solve(nil, [][]float64{{}}, []float64{-1}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("empty infeasible LP: %v", err)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, _, err := Solve([]float64{1}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("row/b mismatch accepted")
	}
	if _, _, err := Solve([]float64{1}, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("column mismatch accepted")
	}
	if _, _, err := Solve([]float64{math.NaN()}, [][]float64{{1}}, []float64{1}); err == nil {
		t.Error("NaN objective accepted")
	}
}

func TestSolveMin(t *testing.T) {
	// min x + y s.t. x + y >= 2 (−x−y <= −2), x,y <= 5 → value 2.
	_, val, err := SolveMin(
		[]float64{1, 1},
		[][]float64{{-1, -1}, {1, 0}, {0, 1}},
		[]float64{-2, 5, 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, val, 2, 1e-7, "min objective")
}

// Randomized cross-check against brute-force vertex enumeration: for small
// random feasible-bounded LPs, simplex must match the best vertex value.
func TestSolveMatchesVertexEnumeration(t *testing.T) {
	rng := xrand.New(77)
	for trial := 0; trial < 200; trial++ {
		n := rng.IntRange(1, 3)
		m := rng.IntRange(n, 5)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Uniform(-3, 3)
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Uniform(-2, 2)
			}
			b[i] = rng.Uniform(0.5, 4) // b > 0 keeps origin feasible
		}
		// Add box constraints x_j <= 10 so the LP is bounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			a = append(a, row)
			b = append(b, 10)
		}
		m = len(b)
		x, val, err := Solve(c, a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Verify feasibility of the returned point.
		for i := 0; i < m; i++ {
			var lhs float64
			for j := 0; j < n; j++ {
				lhs += a[i][j] * x[j]
			}
			if lhs > b[i]+1e-6 {
				t.Fatalf("trial %d: solution violates constraint %d: %v > %v", trial, i, lhs, b[i])
			}
		}
		for j := 0; j < n; j++ {
			if x[j] < -1e-9 {
				t.Fatalf("trial %d: negative variable %v", trial, x[j])
			}
		}
		// Brute force over vertices: all subsets of n active constraints
		// (including x_j = 0 planes).
		best := bruteForceLP(c, a, b)
		if val < best-1e-5 {
			t.Fatalf("trial %d: simplex %v below vertex optimum %v", trial, val, best)
		}
		if val > best+1e-5 {
			t.Fatalf("trial %d: simplex %v above vertex optimum %v (infeasible?)", trial, val, best)
		}
	}
}

// bruteForceLP enumerates candidate vertices as intersections of n active
// hyperplanes drawn from {constraint rows} ∪ {coordinate planes} and returns
// the best feasible objective.
func bruteForceLP(c []float64, a [][]float64, b []float64) float64 {
	n := len(c)
	m := len(b)
	// Build the full plane list: constraints (a_i·x = b_i) and x_j = 0.
	planes := make([][]float64, 0, m+n)
	rhs := make([]float64, 0, m+n)
	for i := 0; i < m; i++ {
		planes = append(planes, a[i])
		rhs = append(rhs, b[i])
	}
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		row[j] = 1
		planes = append(planes, row)
		rhs = append(rhs, 0)
	}
	best := math.Inf(-1)
	idx := make([]int, n)
	var rec func(depth, start int)
	rec = func(depth, start int) {
		if depth == n {
			// Solve the n×n system.
			mat := make([][]float64, n)
			vec := make([]float64, n)
			for r, pi := range idx {
				mat[r] = append([]float64{}, planes[pi]...)
				vec[r] = rhs[pi]
			}
			x, ok := gaussSolve(mat, vec)
			if !ok {
				return
			}
			// Feasible?
			for j := 0; j < n; j++ {
				if x[j] < -1e-7 {
					return
				}
			}
			for i := 0; i < m; i++ {
				var lhs float64
				for j := 0; j < n; j++ {
					lhs += a[i][j] * x[j]
				}
				if lhs > b[i]+1e-7 {
					return
				}
			}
			var v float64
			for j := 0; j < n; j++ {
				v += c[j] * x[j]
			}
			if v > best {
				best = v
			}
			return
		}
		for i := start; i < len(planes); i++ {
			idx[depth] = i
			rec(depth+1, i+1)
		}
	}
	rec(0, 0)
	return best
}

func gaussSolve(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-10 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for cc := col; cc < n; cc++ {
				a[r][cc] -= f * a[col][cc]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for cc := r + 1; cc < n; cc++ {
			s -= a[r][cc] * x[cc]
		}
		x[r] = s / a[r][r]
	}
	return x, true
}
