// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the inequality form
//
//	maximize c·x   subject to   A·x ≤ b,  x ≥ 0.
//
// It exists to compute exact smallest enclosing balls under the 1-norm in
// any dimension (package geom), where the minimal covering cross-polytope is
// the LP  min r  s.t.  Σ_d t_{id} ≤ r,  |x_{id} − c_d| ≤ t_{id}; the paper
// only gives a per-dimension projection heuristic for this step (§V.B).
// Bland's rule guarantees termination on degenerate tableaus; the solver is
// deterministic.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible is returned when no x ≥ 0 satisfies A·x ≤ b.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective can grow without bound.
var ErrUnbounded = errors.New("lp: unbounded")

const eps = 1e-9

// Solve maximizes c·x subject to A·x ≤ b and x ≥ 0, returning an optimal x
// and the objective value. A must be len(b) rows of len(c) columns.
func Solve(c []float64, a [][]float64, b []float64) ([]float64, float64, error) {
	n := len(c)
	m := len(b)
	if len(a) != m {
		return nil, 0, fmt.Errorf("lp: %d rows in A but %d entries in b", len(a), m)
	}
	for i, row := range a {
		if len(row) != n {
			return nil, 0, fmt.Errorf("lp: row %d has %d columns, want %d", i, len(row), n)
		}
	}
	for _, v := range c {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, 0, errors.New("lp: non-finite objective coefficient")
		}
	}
	if n == 0 {
		// Trivial: x is empty; feasible iff b ≥ 0.
		for _, bi := range b {
			if bi < -eps {
				return nil, 0, ErrInfeasible
			}
		}
		return []float64{}, 0, nil
	}

	// Tableau layout: columns = n structural + m slack/surplus + (#art)
	// artificial + 1 rhs. Rows with b_i < 0 are negated (turning the slack
	// into a surplus) and given an artificial basis variable.
	type tableauT struct {
		rows  [][]float64
		basis []int
		cols  int
	}
	nArt := 0
	for _, bi := range b {
		if bi < 0 {
			nArt++
		}
	}
	cols := n + m + nArt + 1
	t := tableauT{rows: make([][]float64, m), basis: make([]int, m), cols: cols}
	art := 0
	for i := 0; i < m; i++ {
		row := make([]float64, cols)
		sign := 1.0
		if b[i] < 0 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			row[j] = sign * a[i][j]
		}
		row[n+i] = sign // slack (+1) or surplus (−1)
		row[cols-1] = sign * b[i]
		if sign < 0 {
			row[n+m+art] = 1
			t.basis[i] = n + m + art
			art++
		} else {
			t.basis[i] = n + i
		}
		t.rows[i] = row
	}

	pivot := func(r, col int) {
		pr := t.rows[r]
		pv := pr[col]
		for j := range pr {
			pr[j] /= pv
		}
		for i := range t.rows {
			if i == r {
				continue
			}
			f := t.rows[i][col]
			if f == 0 {
				continue
			}
			for j := range t.rows[i] {
				t.rows[i][j] -= f * pr[j]
			}
		}
		t.basis[r] = col
	}

	// simplex runs the primal simplex for "maximize obj·x" over the
	// allowed columns with Bland's rule, maintaining an explicit
	// reduced-cost row (priced out against the current basis once, then
	// updated on every pivot) so each iteration costs O(m·cols) instead
	// of O(m·cols²). It returns ErrUnbounded when a column can enter with
	// no leaving row.
	simplex := func(obj []float64, allowed int) error {
		// objRow[j] = z_j − c_j for the current basis.
		objRow := make([]float64, t.cols)
		for j := 0; j < t.cols-1; j++ {
			if j < len(obj) {
				objRow[j] = -obj[j]
			}
		}
		for i := 0; i < m; i++ {
			bi := t.basis[i]
			var cb float64
			if bi < len(obj) {
				cb = obj[bi]
			}
			if cb == 0 {
				continue
			}
			for j := range objRow {
				objRow[j] += cb * t.rows[i][j]
			}
		}
		for iter := 0; iter < 10000*(m+n+1); iter++ {
			// Bland: the first improving column enters.
			enter := -1
			for j := 0; j < allowed; j++ {
				if objRow[j] < -eps {
					enter = j
					break
				}
			}
			if enter == -1 {
				return nil // optimal
			}
			// Ratio test with Bland's tie-break (lowest basis index).
			leave := -1
			best := math.Inf(1)
			for i := 0; i < m; i++ {
				if t.rows[i][enter] > eps {
					ratio := t.rows[i][t.cols-1] / t.rows[i][enter]
					if ratio < best-eps || (ratio < best+eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
						best = ratio
						leave = i
					}
				}
			}
			if leave == -1 {
				return ErrUnbounded
			}
			pivot(leave, enter)
			// Price the objective row through the same pivot.
			f := objRow[enter]
			if f != 0 {
				pr := t.rows[leave]
				for j := range objRow {
					objRow[j] -= f * pr[j]
				}
			}
		}
		return errors.New("lp: simplex iteration limit exceeded")
	}

	// Phase 1: minimize Σ artificials = maximize −Σ artificials.
	if nArt > 0 {
		phase1 := make([]float64, n+m+nArt)
		for j := n + m; j < n+m+nArt; j++ {
			phase1[j] = -1
		}
		if err := simplex(phase1, t.cols-1); err != nil {
			if errors.Is(err, ErrUnbounded) {
				return nil, 0, errors.New("lp: phase-1 unbounded (internal error)")
			}
			return nil, 0, err
		}
		// Feasible iff all artificials are (numerically) zero.
		var artSum float64
		for i := 0; i < m; i++ {
			if t.basis[i] >= n+m {
				artSum += t.rows[i][t.cols-1]
			}
		}
		if artSum > 1e-7 {
			return nil, 0, ErrInfeasible
		}
		// Drive any zero-valued artificial out of the basis when possible.
		for i := 0; i < m; i++ {
			if t.basis[i] >= n+m {
				swapped := false
				for j := 0; j < n+m && !swapped; j++ {
					if math.Abs(t.rows[i][j]) > eps {
						pivot(i, j)
						swapped = true
					}
				}
				// A row with no eligible pivot is redundant; its artificial
				// stays basic at value zero, which is harmless in phase 2
				// because artificial columns are excluded from entering.
			}
		}
	}

	// Phase 2: the real objective over structural + slack columns only.
	phase2 := make([]float64, n+m)
	copy(phase2, c)
	if err := simplex(phase2, n+m); err != nil {
		return nil, 0, err
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if t.basis[i] < n {
			x[t.basis[i]] = t.rows[i][t.cols-1]
		}
	}
	var val float64
	for j := 0; j < n; j++ {
		val += c[j] * x[j]
	}
	return x, val, nil
}

// SolveMin minimizes c·x subject to A·x ≤ b, x ≥ 0 (a convenience wrapper
// that negates the objective).
func SolveMin(c []float64, a [][]float64, b []float64) ([]float64, float64, error) {
	neg := make([]float64, len(c))
	for i, v := range c {
		neg[i] = -v
	}
	x, val, err := Solve(neg, a, b)
	return x, -val, err
}
