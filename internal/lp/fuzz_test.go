package lp

import (
	"math"
	"testing"
)

// FuzzSolve feeds small random LPs to the simplex: it must never panic, and
// whenever it claims optimality the returned point must be primal feasible.
func FuzzSolve(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3))
	f.Add(int64(42), uint8(1), uint8(1))
	f.Add(int64(-7), uint8(3), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, nv, nc uint8) {
		n := int(nv%4) + 1
		m := int(nc%6) + 1
		// Deterministic pseudo-random coefficients from the seed.
		state := uint64(seed)
		next := func() float64 {
			state = state*6364136223846793005 + 1442695040888963407
			return float64(int64(state>>33)%2000)/100 - 10
		}
		c := make([]float64, n)
		for j := range c {
			c[j] = next()
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = next()
			}
			b[i] = next()
		}
		x, val, err := Solve(c, a, b)
		if err != nil {
			return // infeasible/unbounded are legitimate outcomes
		}
		if math.IsNaN(val) || math.IsInf(val, 0) {
			t.Fatalf("non-finite objective %v", val)
		}
		for j := 0; j < n; j++ {
			if x[j] < -1e-6 || math.IsNaN(x[j]) {
				t.Fatalf("infeasible variable x[%d] = %v", j, x[j])
			}
		}
		for i := 0; i < m; i++ {
			var lhs float64
			for j := 0; j < n; j++ {
				lhs += a[i][j] * x[j]
			}
			if lhs > b[i]+1e-5*(1+math.Abs(b[i])) {
				t.Fatalf("constraint %d violated: %v > %v", i, lhs, b[i])
			}
		}
	})
}
