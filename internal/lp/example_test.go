package lp_test

import (
	"fmt"

	"repro/internal/lp"
)

// A textbook LP: maximize 3x + 5y subject to x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18.
func ExampleSolve() {
	x, val, _ := lp.Solve(
		[]float64{3, 5},
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]float64{4, 12, 18},
	)
	fmt.Printf("x = %.0f, y = %.0f, objective = %.0f\n", x[0], x[1], val)
	// Output:
	// x = 2, y = 6, objective = 36
}

// Minimization via the wrapper: min x + y with x + y ≥ 2 and box bounds.
func ExampleSolveMin() {
	_, val, _ := lp.SolveMin(
		[]float64{1, 1},
		[][]float64{{-1, -1}, {1, 0}, {0, 1}},
		[]float64{-2, 5, 5},
	)
	fmt.Printf("minimum = %.0f\n", val)
	// Output:
	// minimum = 2
}
