package pointset_test

import (
	"fmt"

	"repro/internal/pointset"
	"repro/internal/xrand"
)

// The paper's 2-D workload: n users uniform in the 4×4 box with random
// integer weights in 1..5, reproducible from the seed alone.
func ExampleGenUniform() {
	set, _ := pointset.GenUniform(40, pointset.PaperBox2D(), pointset.RandomIntWeight, xrand.New(42))
	lo, hi := set.Bounds()
	fmt.Println("users:", set.Len(), "dim:", set.Dim())
	fmt.Println("inside box:", lo[0] >= 0 && hi[0] <= 4 && lo[1] >= 0 && hi[1] <= 4)
	fmt.Println("Σw integral:", set.TotalWeight() == float64(int(set.TotalWeight())))
	// Output:
	// users: 40 dim: 2
	// inside box: true
	// Σw integral: true
}
