package pointset_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/pointset"
	"repro/internal/vec"
)

func TestSetJSONRoundTrip(t *testing.T) {
	set, err := pointset.New(
		[]vec.V{vec.Of(0, 1), vec.Of(2.5, 3.5), vec.Of(4, 0)},
		[]float64{1, 5, 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	var back pointset.Set
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != set.Len() || back.Dim() != set.Dim() {
		t.Fatalf("round trip: %dx%d != %dx%d", back.Len(), back.Dim(), set.Len(), set.Dim())
	}
	for i := 0; i < set.Len(); i++ {
		if back.Weight(i) != set.Weight(i) {
			t.Errorf("weight %d: %v != %v", i, back.Weight(i), set.Weight(i))
		}
		for d := 0; d < set.Dim(); d++ {
			if back.Point(i)[d] != set.Point(i)[d] {
				t.Errorf("point %d dim %d: %v != %v", i, d, back.Point(i)[d], set.Point(i)[d])
			}
		}
	}
	// The flat row-major view must be rebuilt too, bit-identical.
	for i, x := range set.Coords() {
		if back.Coords()[i] != x {
			t.Fatalf("coords[%d]: %v != %v", i, back.Coords()[i], x)
		}
	}
}

func TestSetJSONDefaultsToUnitWeights(t *testing.T) {
	var s pointset.Set
	if err := json.Unmarshal([]byte(`{"points":[[0,0],[1,1]]}`), &s); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Weight(0) != 1 || s.Weight(1) != 1 {
		t.Fatalf("unit-weight default broken: %d points, weights %v %v", s.Len(), s.Weight(0), s.Weight(1))
	}
}

func TestSetJSONRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, in string
		wantDim  bool
	}{
		{"empty points", `{"points":[]}`, false},
		{"no points field", `{}`, false},
		{"mixed dims", `{"points":[[0,0],[1]]}`, true},
		{"dim contradicts rows", `{"dim":3,"points":[[0,0]]}`, true},
		{"weight count mismatch", `{"points":[[0,0]],"weights":[1,2]}`, false},
		{"negative weight", `{"points":[[0,0]],"weights":[-1]}`, false},
		{"overflowing coordinate", `{"points":[[1e999,0]]}`, false},
		{"overflowing negative coordinate", `{"points":[[-1e999,0]]}`, false},
		{"overflowing weight", `{"points":[[0,0]],"weights":[1e999]}`, false},
		{"empty point row", `{"points":[[]]}`, false},
		{"all empty rows with dim", `{"dim":0,"points":[[],[]]}`, false},
		{"negative dim", `{"dim":-2,"points":[[0,0]]}`, false},
		{"not an object", `[[0,0]]`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s pointset.Set
			err := json.Unmarshal([]byte(tc.in), &s)
			if err == nil {
				t.Fatalf("decoded invalid input %s", tc.in)
			}
			if got := errors.Is(err, pointset.ErrDim); got != tc.wantDim {
				t.Errorf("errors.Is(err, ErrDim) = %v, want %v (err: %v)", got, tc.wantDim, err)
			}
			if !strings.Contains(err.Error(), "pointset") {
				t.Errorf("error %q does not identify the package", err)
			}
		})
	}
}
