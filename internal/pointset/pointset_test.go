package pointset

import (
	"math"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestCoordsFlatLayout(t *testing.T) {
	pts := []vec.V{vec.Of(1, 2), vec.Of(3, 4), vec.Of(5, 6)}
	s, err := UnitWeights(pts)
	if err != nil {
		t.Fatal(err)
	}
	flat := s.Coords()
	if len(flat) != s.Len()*s.Dim() {
		t.Fatalf("Coords length %d, want %d", len(flat), s.Len()*s.Dim())
	}
	for i := 0; i < s.Len(); i++ {
		row := flat[i*s.Dim() : (i+1)*s.Dim()]
		for d, x := range s.Point(i) {
			if row[d] != x {
				t.Errorf("Coords row %d dim %d = %v, want %v", i, d, row[d], x)
			}
		}
	}
	// The flat copy must be independent of the caller's backing arrays.
	pts[0][0] = 99
	if s.Coords()[0] != 1 {
		t.Error("Coords aliases the caller's point storage")
	}
	// Derived sets rebuild their own flat layout.
	sub, err := s.Subset([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 6, 1, 2}
	for i, x := range sub.Coords() {
		if x != want[i] {
			t.Fatalf("Subset Coords = %v, want %v", sub.Coords(), want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := New([]vec.V{vec.Of(1, 2)}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := New([]vec.V{vec.Of(1), vec.Of(1, 2)}, []float64{1, 1}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := New([]vec.V{vec.Of(1, 2)}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := New([]vec.V{vec.Of(1, 2)}, []float64{math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
	if _, err := New([]vec.V{vec.Of(math.Inf(1), 2)}, []float64{1}); err == nil {
		t.Error("non-finite point accepted")
	}
	s, err := New([]vec.V{vec.Of(1, 2), vec.Of(3, 4)}, []float64{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Dim() != 2 {
		t.Errorf("Len/Dim = %d/%d", s.Len(), s.Dim())
	}
	if s.Weight(1) != 5 || !s.Point(0).Equal(vec.Of(1, 2)) {
		t.Error("accessors wrong")
	}
	if s.TotalWeight() != 7 {
		t.Errorf("TotalWeight = %v", s.TotalWeight())
	}
}

func TestNewCopiesInputs(t *testing.T) {
	pts := []vec.V{vec.Of(1, 2)}
	ws := []float64{3}
	s, err := New(pts, ws)
	if err != nil {
		t.Fatal(err)
	}
	pts[0][0] = 99
	ws[0] = 99
	if s.Point(0)[0] != 1 || s.Weight(0) != 3 {
		t.Error("Set aliases caller slices")
	}
}

func TestUnitWeights(t *testing.T) {
	s, err := UnitWeights([]vec.V{vec.Of(0, 0), vec.Of(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		if s.Weight(i) != 1 {
			t.Errorf("weight %d = %v", i, s.Weight(i))
		}
	}
}

func TestBounds(t *testing.T) {
	s, _ := UnitWeights([]vec.V{vec.Of(1, 5), vec.Of(3, 2)})
	lo, hi := s.Bounds()
	if !lo.Equal(vec.Of(1, 2)) || !hi.Equal(vec.Of(3, 5)) {
		t.Errorf("Bounds = %v %v", lo, hi)
	}
}

func TestSubset(t *testing.T) {
	s, _ := New([]vec.V{vec.Of(0, 0), vec.Of(1, 1), vec.Of(2, 2)}, []float64{1, 2, 3})
	sub, err := s.Subset([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || sub.Weight(0) != 3 || !sub.Point(1).Equal(vec.Of(0, 0)) {
		t.Errorf("Subset wrong: %v", sub)
	}
	if _, err := s.Subset([]int{5}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := s.Subset(nil); err == nil {
		t.Error("empty subset accepted")
	}
}

func TestWithWeights(t *testing.T) {
	s, _ := UnitWeights([]vec.V{vec.Of(0, 0), vec.Of(1, 1)})
	s2, err := s.WithWeights([]float64{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Weight(0) != 4 || s.Weight(0) != 1 {
		t.Error("WithWeights wrong or mutated original")
	}
}

func TestBoxSampleContains(t *testing.T) {
	box := PaperBox2D()
	if !box.Valid() || box.Dim() != 2 {
		t.Fatal("PaperBox2D invalid")
	}
	rng := xrand.New(1)
	for i := 0; i < 1000; i++ {
		p := box.Sample(rng)
		if !box.Contains(p) {
			t.Fatalf("sample %v outside box", p)
		}
	}
	if box.Contains(vec.Of(5, 1)) || box.Contains(vec.Of(1, 2, 3)) {
		t.Error("Contains accepted outside/mismatched point")
	}
	bad := Box{Lo: vec.Of(1, 1), Hi: vec.Of(0, 0)}
	if bad.Valid() {
		t.Error("inverted box reported valid")
	}
}

func TestGenUniformPaperSetup(t *testing.T) {
	rng := xrand.New(2)
	s, err := GenUniform(40, PaperBox2D(), RandomIntWeight, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 40 || s.Dim() != 2 {
		t.Fatalf("Len/Dim = %d/%d", s.Len(), s.Dim())
	}
	box := PaperBox2D()
	seen := make(map[float64]bool)
	for i := 0; i < s.Len(); i++ {
		if !box.Contains(s.Point(i)) {
			t.Errorf("point %v outside 4x4 box", s.Point(i))
		}
		w := s.Weight(i)
		if w != math.Trunc(w) || w < 1 || w > 5 {
			t.Errorf("weight %v not an integer in [1,5]", w)
		}
		seen[w] = true
	}
	if len(seen) < 3 {
		t.Errorf("weights not varied: %v", seen)
	}

	u, err := GenUniform(10, PaperBox3D(), UnitWeight, rng)
	if err != nil {
		t.Fatal(err)
	}
	if u.Dim() != 3 || u.TotalWeight() != 10 {
		t.Errorf("3-D unit set wrong: dim=%d total=%v", u.Dim(), u.TotalWeight())
	}
}

func TestGenUniformDeterministic(t *testing.T) {
	a, _ := GenUniform(10, PaperBox2D(), RandomIntWeight, xrand.New(7))
	b, _ := GenUniform(10, PaperBox2D(), RandomIntWeight, xrand.New(7))
	for i := 0; i < 10; i++ {
		if !a.Point(i).Equal(b.Point(i)) || a.Weight(i) != b.Weight(i) {
			t.Fatal("same seed gave different sets")
		}
	}
}

func TestGenUniformRejectsBadArgs(t *testing.T) {
	rng := xrand.New(1)
	if _, err := GenUniform(0, PaperBox2D(), UnitWeight, rng); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := GenUniform(5, Box{Lo: vec.Of(1), Hi: vec.Of(0)}, UnitWeight, rng); err == nil {
		t.Error("invalid box accepted")
	}
	if _, err := GenUniform(5, PaperBox2D(), WeightScheme(99), rng); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestGenClustered(t *testing.T) {
	rng := xrand.New(3)
	s, err := GenClustered(100, 3, 0.2, PaperBox2D(), UnitWeight, rng)
	if err != nil {
		t.Fatal(err)
	}
	box := PaperBox2D()
	for i := 0; i < s.Len(); i++ {
		if !box.Contains(s.Point(i)) {
			t.Fatalf("clustered point %v escaped box", s.Point(i))
		}
	}
	if _, err := GenClustered(10, 0, 0.1, PaperBox2D(), UnitWeight, rng); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := GenClustered(10, 2, -1, PaperBox2D(), UnitWeight, rng); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestGridPoints(t *testing.T) {
	pts, err := GridPoints(PaperBox2D(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("len = %d, want 9", len(pts))
	}
	// Corners and center must be present.
	want := []vec.V{vec.Of(0, 0), vec.Of(4, 4), vec.Of(2, 2)}
	for _, w := range want {
		found := false
		for _, p := range pts {
			if p.ApproxEqual(w, 1e-12) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("grid missing %v", w)
		}
	}
	one, err := GridPoints(PaperBox2D(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || !one[0].ApproxEqual(vec.Of(2, 2), 1e-12) {
		t.Errorf("per=1 grid = %v", one)
	}
	cube, err := GridPoints(PaperBox3D(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube) != 64 {
		t.Errorf("3-D grid len = %d, want 64", len(cube))
	}
	if _, err := GridPoints(PaperBox2D(), 0); err == nil {
		t.Error("per=0 accepted")
	}
}

func TestWeightSchemeString(t *testing.T) {
	if UnitWeight.String() != "same-weight" || RandomIntWeight.String() != "random-weight" {
		t.Error("scheme strings wrong")
	}
	if WeightScheme(9).String() == "" {
		t.Error("unknown scheme string empty")
	}
}
