// Package pointset models the weighted user populations the paper's
// algorithms run over: n points in an m-dimensional interest space, each
// with a maximum reward w_i (paper §III.A). It also provides the synthetic
// workload generators used by the evaluation (§VI.A): uniform placement in a
// 4×4 2-D box or 4×4×4 3-D box, with unit weights or random integer weights
// in [1, 5].
package pointset

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// Set is an immutable-by-convention collection of weighted points during a
// solver run: the algorithms never mutate a Set; they keep their own
// residual state. Between runs, the dynamic-instance layer may evolve the
// population through the delta operations Append, RemoveSwap, and SetWeight,
// which keep every view (per-point vectors, weights, flat coordinates)
// consistent. Mutating a Set while a solver or evaluator scans it is a data
// race; apply deltas only between solves.
//
// Alongside the per-point vec.V view, a Set carries the same coordinates in
// one contiguous row-major array (point i occupies coords[i*dim : (i+1)*dim]).
// The flat layout is what the batched distance kernels in internal/norm scan:
// one candidate center against n points touches n·dim adjacent float64s
// instead of n scattered slice headers.
type Set struct {
	pts     []vec.V
	weights []float64
	coords  []float64 // row-major copy of pts, built once at construction
	dim     int
}

// New builds a Set from parallel slices of points and weights. It returns an
// error when the slices disagree in length, the set is empty, dimensions are
// inconsistent, or any weight is negative or non-finite.
func New(pts []vec.V, weights []float64) (*Set, error) {
	if len(pts) == 0 {
		return nil, errors.New("pointset: empty set")
	}
	if len(pts) != len(weights) {
		return nil, fmt.Errorf("pointset: %d points but %d weights", len(pts), len(weights))
	}
	dim := pts[0].Dim()
	for i, p := range pts {
		if p.Dim() != dim {
			return nil, fmt.Errorf("pointset: point %d has dim %d, want %d", i, p.Dim(), dim)
		}
		if !p.IsFinite() {
			return nil, fmt.Errorf("pointset: point %d has non-finite coordinates", i)
		}
	}
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("pointset: weight %d = %v is invalid", i, w)
		}
	}
	cp := make([]vec.V, len(pts))
	flat := make([]float64, len(pts)*dim)
	for i, p := range pts {
		cp[i] = p.Clone()
		copy(flat[i*dim:(i+1)*dim], p)
	}
	cw := make([]float64, len(weights))
	copy(cw, weights)
	return &Set{pts: cp, weights: cw, coords: flat, dim: dim}, nil
}

// UnitWeights builds a Set where every point has weight 1 (the paper's
// "same weight" scheme).
func UnitWeights(pts []vec.V) (*Set, error) {
	ws := make([]float64, len(pts))
	for i := range ws {
		ws[i] = 1
	}
	return New(pts, ws)
}

// Len reports the number of points n.
func (s *Set) Len() int { return len(s.pts) }

// Dim reports the dimensionality m.
func (s *Set) Dim() int { return s.dim }

// Point returns the i-th point. The returned slice must not be modified.
func (s *Set) Point(i int) vec.V { return s.pts[i] }

// Weight returns w_i.
func (s *Set) Weight(i int) float64 { return s.weights[i] }

// Points returns the backing point slice. It must be treated as read-only.
func (s *Set) Points() []vec.V { return s.pts }

// Weights returns the backing weight slice. It must be treated as read-only.
func (s *Set) Weights() []float64 { return s.weights }

// Coords returns the points as one contiguous row-major array: point i is
// Coords()[i*Dim() : (i+1)*Dim()], bit-identical to Point(i). It must be
// treated as read-only. Batched distance kernels consume this layout.
func (s *Set) Coords() []float64 { return s.coords }

// Append adds one point with the given weight, returning its index (the new
// Len()−1). The point is cloned into both the per-point and the flat
// row-major storage, so the two views stay bit-identical. The same
// validation rules as New apply.
func (s *Set) Append(p vec.V, w float64) (int, error) {
	if p.Dim() != s.dim {
		return 0, fmt.Errorf("pointset: point has dim %d, want %d", p.Dim(), s.dim)
	}
	if !p.IsFinite() {
		return 0, errors.New("pointset: point has non-finite coordinates")
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return 0, fmt.Errorf("pointset: weight %v is invalid", w)
	}
	i := len(s.pts)
	s.pts = append(s.pts, p.Clone())
	s.weights = append(s.weights, w)
	s.coords = append(s.coords, p...)
	return i, nil
}

// RemoveSwap deletes point i by moving the last point into its slot and
// truncating — O(dim), no reindexing of the prefix. It returns the index of
// the point that moved into slot i (the old Len()−1), or −1 when i was the
// last slot and nothing moved. Callers maintaining parallel per-point state
// (spatial indexes, coverage rows) must mirror the same swap. Removing the
// only point is an error: a Set is never empty.
func (s *Set) RemoveSwap(i int) (moved int, err error) {
	n := len(s.pts)
	if i < 0 || i >= n {
		return 0, fmt.Errorf("pointset: index %d out of range [0,%d)", i, n)
	}
	if n == 1 {
		return 0, errors.New("pointset: cannot remove the only point")
	}
	last := n - 1
	moved = -1
	if i != last {
		s.pts[i] = s.pts[last]
		s.weights[i] = s.weights[last]
		copy(s.coords[i*s.dim:(i+1)*s.dim], s.coords[last*s.dim:(last+1)*s.dim])
		moved = last
	}
	s.pts[last] = nil
	s.pts = s.pts[:last]
	s.weights = s.weights[:last]
	s.coords = s.coords[:last*s.dim]
	return moved, nil
}

// SetWeight updates w_i in place. The same validation rules as New apply.
func (s *Set) SetWeight(i int, w float64) error {
	if i < 0 || i >= len(s.weights) {
		return fmt.Errorf("pointset: index %d out of range [0,%d)", i, len(s.weights))
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("pointset: weight %v is invalid", w)
	}
	s.weights[i] = w
	return nil
}

// Clone returns a deep copy of the Set: delta operations on the copy never
// touch the original. The equivalence tests rebuild from clones.
func (s *Set) Clone() *Set {
	cp, err := New(s.pts, s.weights) // New deep-copies points and weights
	if err != nil {
		panic(err) // cannot happen: s satisfies New's invariants
	}
	return cp
}

// TotalWeight returns Σ w_i, the upper bound on any reward (f_opt ≤ Σ w_i).
func (s *Set) TotalWeight() float64 {
	var t float64
	for _, w := range s.weights {
		t += w
	}
	return t
}

// Bounds returns the component-wise bounding box of the points.
func (s *Set) Bounds() (lo, hi vec.V) {
	lo, hi, _ = vec.Bounds(s.pts) // cannot fail: Set is non-empty, consistent
	return lo, hi
}

// Subset returns a new Set restricted to the given indices.
func (s *Set) Subset(idx []int) (*Set, error) {
	if len(idx) == 0 {
		return nil, errors.New("pointset: empty subset")
	}
	pts := make([]vec.V, len(idx))
	ws := make([]float64, len(idx))
	for j, i := range idx {
		if i < 0 || i >= len(s.pts) {
			return nil, fmt.Errorf("pointset: index %d out of range [0,%d)", i, len(s.pts))
		}
		pts[j] = s.pts[i]
		ws[j] = s.weights[i]
	}
	return New(pts, ws)
}

// WithWeights returns a copy of s carrying the given weights instead.
func (s *Set) WithWeights(weights []float64) (*Set, error) {
	return New(s.pts, weights)
}

// Box describes an axis-aligned region [Lo_d, Hi_d] per dimension.
type Box struct {
	Lo, Hi vec.V
}

// PaperBox2D is the 4×4 2-D region used throughout the paper's simulations.
func PaperBox2D() Box { return Box{Lo: vec.Of(0, 0), Hi: vec.Of(4, 4)} }

// PaperBox3D is the 4×4×4 3-D region used by the paper's Figs. 8–9.
func PaperBox3D() Box { return Box{Lo: vec.Of(0, 0, 0), Hi: vec.Of(4, 4, 4)} }

// Dim reports the box's dimensionality.
func (b Box) Dim() int { return b.Lo.Dim() }

// Valid reports whether Lo/Hi agree in dimension and Lo ≤ Hi component-wise.
func (b Box) Valid() bool {
	if b.Lo.Dim() != b.Hi.Dim() || b.Lo.Dim() == 0 {
		return false
	}
	for i := range b.Lo {
		if b.Lo[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Sample draws one uniform point inside the box.
func (b Box) Sample(rng *xrand.Rand) vec.V {
	p := vec.New(b.Dim())
	for i := range p {
		p[i] = rng.Uniform(b.Lo[i], b.Hi[i])
	}
	return p
}

// Contains reports whether p lies inside the (closed) box.
func (b Box) Contains(p vec.V) bool {
	if p.Dim() != b.Dim() {
		return false
	}
	for i := range p {
		if p[i] < b.Lo[i] || p[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// WeightScheme selects how maximum rewards are assigned, mirroring the two
// schemes in the paper's §VI.A.
type WeightScheme int

const (
	// UnitWeight gives every node w_i = 1 ("same weight").
	UnitWeight WeightScheme = iota
	// RandomIntWeight gives each node an independent uniform integer
	// weight in [1, 5] ("different weight").
	RandomIntWeight
)

// String implements fmt.Stringer.
func (w WeightScheme) String() string {
	switch w {
	case UnitWeight:
		return "same-weight"
	case RandomIntWeight:
		return "random-weight"
	default:
		return fmt.Sprintf("WeightScheme(%d)", int(w))
	}
}

// GenUniform places n points uniformly in the box with weights from the
// scheme — exactly the paper's simulation setup.
func GenUniform(n int, box Box, scheme WeightScheme, rng *xrand.Rand) (*Set, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pointset: n = %d must be positive", n)
	}
	if !box.Valid() {
		return nil, fmt.Errorf("pointset: invalid box %v..%v", box.Lo, box.Hi)
	}
	pts := make([]vec.V, n)
	ws := make([]float64, n)
	for i := 0; i < n; i++ {
		pts[i] = box.Sample(rng)
		switch scheme {
		case UnitWeight:
			ws[i] = 1
		case RandomIntWeight:
			ws[i] = float64(rng.IntRange(1, 5))
		default:
			return nil, fmt.Errorf("pointset: unknown weight scheme %v", scheme)
		}
	}
	return New(pts, ws)
}

// GenClustered places n points in c Gaussian clusters whose centers are
// uniform in the box; cluster membership is uniform and points are clipped
// to the box. This models communities of users with similar interests — a
// workload beyond the paper's uniform traces, used by the broadcast examples.
func GenClustered(n, c int, sigma float64, box Box, scheme WeightScheme, rng *xrand.Rand) (*Set, error) {
	if n <= 0 || c <= 0 {
		return nil, fmt.Errorf("pointset: n=%d, c=%d must be positive", n, c)
	}
	if sigma < 0 || !box.Valid() {
		return nil, fmt.Errorf("pointset: invalid sigma=%v or box", sigma)
	}
	centers := make([]vec.V, c)
	for i := range centers {
		centers[i] = box.Sample(rng)
	}
	pts := make([]vec.V, n)
	ws := make([]float64, n)
	for i := 0; i < n; i++ {
		ctr := centers[rng.Intn(c)]
		p := vec.New(box.Dim())
		for d := range p {
			x := ctr[d] + sigma*rng.NormFloat64()
			p[d] = math.Min(math.Max(x, box.Lo[d]), box.Hi[d])
		}
		pts[i] = p
		switch scheme {
		case UnitWeight:
			ws[i] = 1
		case RandomIntWeight:
			ws[i] = float64(rng.IntRange(1, 5))
		default:
			return nil, fmt.Errorf("pointset: unknown weight scheme %v", scheme)
		}
	}
	return New(pts, ws)
}

// GridPoints returns the vertices of a uniform lattice with `per` points per
// dimension spanning the box (per ≥ 2 includes both faces; per == 1 yields
// the box center per dimension). These enrich the exhaustive baseline's
// candidate set.
func GridPoints(box Box, per int) ([]vec.V, error) {
	if per <= 0 {
		return nil, fmt.Errorf("pointset: grid resolution %d must be positive", per)
	}
	if !box.Valid() {
		return nil, errors.New("pointset: invalid box")
	}
	dim := box.Dim()
	total := 1
	for i := 0; i < dim; i++ {
		total *= per
	}
	out := make([]vec.V, 0, total)
	idx := make([]int, dim)
	for {
		p := vec.New(dim)
		for d := 0; d < dim; d++ {
			if per == 1 {
				p[d] = (box.Lo[d] + box.Hi[d]) / 2
			} else {
				p[d] = box.Lo[d] + (box.Hi[d]-box.Lo[d])*float64(idx[d])/float64(per-1)
			}
		}
		out = append(out, p)
		// Odometer increment.
		d := 0
		for ; d < dim; d++ {
			idx[d]++
			if idx[d] < per {
				break
			}
			idx[d] = 0
		}
		if d == dim {
			return out, nil
		}
	}
}
