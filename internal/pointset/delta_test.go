package pointset

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func deltaSet(t *testing.T) *Set {
	t.Helper()
	s, err := New(
		[]vec.V{{0, 0}, {1, 1}, {2, 2}, {3, 3}},
		[]float64{1, 2, 3, 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// checkFlat asserts the flat row-major view still mirrors the per-point view
// after a delta — the batched kernels read Coords, so any divergence breaks
// the bit-identity invariant silently.
func checkFlat(t *testing.T, s *Set) {
	t.Helper()
	if len(s.Coords()) != s.Len()*s.Dim() {
		t.Fatalf("coords len %d, want %d", len(s.Coords()), s.Len()*s.Dim())
	}
	for i := 0; i < s.Len(); i++ {
		row := s.Coords()[i*s.Dim() : (i+1)*s.Dim()]
		for d, x := range s.Point(i) {
			if row[d] != x {
				t.Fatalf("coords[%d][%d] = %v, point = %v", i, d, row[d], x)
			}
		}
	}
}

func TestAppend(t *testing.T) {
	s := deltaSet(t)
	p := vec.V{9, 9}
	i, err := s.Append(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if i != 4 || s.Len() != 5 || s.Weight(4) != 5 {
		t.Fatalf("append: i=%d len=%d w=%v", i, s.Len(), s.Weight(4))
	}
	p[0] = -1 // Append must have cloned
	if s.Point(4)[0] != 9 {
		t.Error("Append aliased the caller's point")
	}
	checkFlat(t, s)
}

func TestAppendRejects(t *testing.T) {
	s := deltaSet(t)
	for _, tc := range []struct {
		name string
		p    vec.V
		w    float64
	}{
		{"dim", vec.V{1}, 1},
		{"nan-coord", vec.V{math.NaN(), 0}, 1},
		{"inf-coord", vec.V{0, math.Inf(1)}, 1},
		{"neg-weight", vec.V{0, 0}, -1},
		{"nan-weight", vec.V{0, 0}, math.NaN()},
	} {
		if _, err := s.Append(tc.p, tc.w); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	if s.Len() != 4 {
		t.Errorf("rejected appends mutated the set: len=%d", s.Len())
	}
	checkFlat(t, s)
}

func TestRemoveSwapMiddle(t *testing.T) {
	s := deltaSet(t)
	moved, err := s.RemoveSwap(1)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 3 {
		t.Fatalf("moved = %d, want 3", moved)
	}
	if s.Len() != 3 || s.Point(1)[0] != 3 || s.Weight(1) != 4 {
		t.Fatalf("slot 1 after swap: p=%v w=%v", s.Point(1), s.Weight(1))
	}
	checkFlat(t, s)
}

func TestRemoveSwapLast(t *testing.T) {
	s := deltaSet(t)
	moved, err := s.RemoveSwap(3)
	if err != nil {
		t.Fatal(err)
	}
	if moved != -1 {
		t.Fatalf("moved = %d, want -1", moved)
	}
	if s.Len() != 3 || s.Point(2)[0] != 2 {
		t.Fatalf("set after last-slot removal: len=%d", s.Len())
	}
	checkFlat(t, s)
}

func TestRemoveSwapRejects(t *testing.T) {
	s := deltaSet(t)
	for _, i := range []int{-1, 4} {
		if _, err := s.RemoveSwap(i); err == nil {
			t.Errorf("index %d accepted", i)
		}
	}
	one, err := New([]vec.V{{0}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := one.RemoveSwap(0); err == nil {
		t.Error("removing the only point accepted")
	}
}

func TestSetWeightDelta(t *testing.T) {
	s := deltaSet(t)
	if err := s.SetWeight(2, 7); err != nil || s.Weight(2) != 7 {
		t.Fatalf("SetWeight: %v, w=%v", err, s.Weight(2))
	}
	for _, tc := range []struct {
		i int
		w float64
	}{{-1, 1}, {4, 1}, {0, -1}, {0, math.NaN()}, {0, math.Inf(1)}} {
		if err := s.SetWeight(tc.i, tc.w); err == nil {
			t.Errorf("SetWeight(%d, %v) accepted", tc.i, tc.w)
		}
	}
}

func TestClone(t *testing.T) {
	s := deltaSet(t)
	cp := s.Clone()
	if _, err := cp.Append(vec.V{8, 8}, 1); err != nil {
		t.Fatal(err)
	}
	if err := cp.SetWeight(1, 99); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.RemoveSwap(0); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 || s.Point(0)[0] != 0 || s.Weight(1) != 2 {
		t.Error("mutating the clone touched the original")
	}
	checkFlat(t, cp)
	// Clone must deep-copy point storage, not alias it.
	cp.Point(1)[0] = -5
	if s.Point(1)[0] != 1 {
		t.Error("Clone aliased point storage")
	}
}
