package pointset

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/vec"
)

// ErrDim marks a JSON-encoded set whose dimensions disagree — points of
// mixed lengths, or a "dim" field contradicting the rows. Callers that map
// decode failures to wire errors (the serving layer) test for it with
// errors.Is to distinguish a dimension mismatch from other invalid input.
var ErrDim = errors.New("pointset: inconsistent dimensions")

// setJSON is the wire form of a Set: row-major points plus parallel weights.
//
//	{"dim": 2, "points": [[0,1],[2,3]], "weights": [1, 5]}
//
// "dim" is redundant with the rows and optional on input; "weights" may be
// omitted for a unit-weight population. This one schema is shared by
// everything that moves point sets between processes — `cdtrace -format set`
// writes it and the cdserved /v1 endpoints read it — so instance parsing is
// implemented (and validated) exactly once, here.
type setJSON struct {
	Dim     int         `json:"dim"`
	Points  [][]float64 `json:"points"`
	Weights []float64   `json:"weights,omitempty"`
}

// MarshalJSON implements json.Marshaler: the set serializes as its points
// and weights with an explicit dim.
func (s *Set) MarshalJSON() ([]byte, error) {
	out := setJSON{Dim: s.dim, Points: make([][]float64, len(s.pts)), Weights: s.weights}
	for i, p := range s.pts {
		out.Points[i] = p
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler and is the wire boundary's
// validator: everything New checks, enforced here with decode-flavored
// errors, plus the wire-only holes New cannot see. A non-empty point list, a
// positive dimension (an empty row like [[]] must not produce a dim-0 set),
// consistent dimensions (ErrDim otherwise), a weight per point, finite
// coordinates, and non-negative finite weights. Note that standard JSON
// cannot carry NaN or infinity literals, so non-finite rejection guards
// against values like 1e999 that overflow to +Inf as well as future non-JSON
// decoders reusing this path.
func (s *Set) UnmarshalJSON(data []byte) error {
	var raw setJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("pointset: decode: %w", err)
	}
	if len(raw.Points) == 0 {
		return errors.New("pointset: decode: no points")
	}
	dim := raw.Dim
	if dim == 0 {
		dim = len(raw.Points[0])
	}
	if dim < 1 {
		return fmt.Errorf("pointset: decode: dim = %d, want >= 1", dim)
	}
	for i, row := range raw.Points {
		if len(row) != dim {
			return fmt.Errorf("%w: point %d has dim %d, want %d", ErrDim, i, len(row), dim)
		}
		for j, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("pointset: decode: point %d coordinate %d = %v is not finite", i, j, x)
			}
		}
	}
	weights := raw.Weights
	if weights == nil {
		weights = make([]float64, len(raw.Points))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(raw.Points) {
		return fmt.Errorf("pointset: decode: %d points but %d weights", len(raw.Points), len(weights))
	}
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("pointset: decode: weight %d = %v, want finite and >= 0", i, w)
		}
	}
	pts := make([]vec.V, len(raw.Points))
	for i, row := range raw.Points {
		pts[i] = vec.V(row)
	}
	dec, err := New(pts, weights)
	if err != nil {
		return err
	}
	*s = *dec
	return nil
}
