// Package theory provides the closed-form approximation-ratio bounds the
// paper derives: Theorem 1's 1 − (1 − 1/k)^k for the round-based heuristic
// and Theorem 2's 1 − (1 − 1/n)^k for the local greedy, plus the series
// needed to regenerate Fig. 2.
package theory

import (
	"fmt"
	"math"
)

// Approx1 returns Theorem 1's ratio 1 − (1 − 1/k)^k for k selected centers.
// It is ≥ 1 − 1/e for all k ≥ 1 and returns NaN for k < 1.
func Approx1(k int) float64 {
	if k < 1 {
		return math.NaN()
	}
	return 1 - math.Pow(1-1/float64(k), float64(k))
}

// Approx2 returns Theorem 2's ratio 1 − (1 − 1/n)^k for the local greedy
// with n points and k centers. It returns NaN when n < 1 or k < 1.
func Approx2(n, k int) float64 {
	if n < 1 || k < 1 {
		return math.NaN()
	}
	return 1 - math.Pow(1-1/float64(n), float64(k))
}

// EBound is the limit of Approx1 as k → ∞: 1 − 1/e, the classic submodular
// greedy guarantee.
func EBound() float64 { return 1 - 1/math.E }

// Fig2Point is one x-position of the paper's Fig. 2: both bounds at a given
// number of centers k for a fixed population size n.
type Fig2Point struct {
	K       int
	Approx1 float64
	Approx2 float64
}

// Fig2Series tabulates both bounds for k = 1..kMax in an n-node environment
// (the paper plots n = 10 and n = 40).
func Fig2Series(n, kMax int) ([]Fig2Point, error) {
	if n < 1 || kMax < 1 {
		return nil, fmt.Errorf("theory: invalid n=%d kMax=%d", n, kMax)
	}
	out := make([]Fig2Point, 0, kMax)
	for k := 1; k <= kMax; k++ {
		out = append(out, Fig2Point{K: k, Approx1: Approx1(k), Approx2: Approx2(n, k)})
	}
	return out, nil
}
