package theory_test

import (
	"fmt"

	"repro/internal/theory"
)

// Theorem 1's round-based bound stays above 1 − 1/e for every k, while
// Theorem 2's local-greedy bound starts tiny when n ≫ k — the contrast the
// paper's Fig. 2 draws.
func Example() {
	fmt.Printf("approx1(4)     = %.4f\n", theory.Approx1(4))
	fmt.Printf("approx2(40, 4) = %.4f\n", theory.Approx2(40, 4))
	fmt.Printf("1 - 1/e        = %.4f\n", theory.EBound())
	// Output:
	// approx1(4)     = 0.6836
	// approx2(40, 4) = 0.0963
	// 1 - 1/e        = 0.6321
}
