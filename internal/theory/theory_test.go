package theory

import (
	"math"
	"testing"
)

func TestApprox1KnownValues(t *testing.T) {
	if got := Approx1(1); got != 1 {
		t.Errorf("Approx1(1) = %v, want 1", got)
	}
	if got := Approx1(2); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Approx1(2) = %v, want 0.75", got)
	}
	if got := Approx1(4); math.Abs(got-(1-math.Pow(0.75, 4))) > 1e-12 {
		t.Errorf("Approx1(4) = %v", got)
	}
	if !math.IsNaN(Approx1(0)) {
		t.Error("Approx1(0) not NaN")
	}
}

func TestApprox1AboveEBound(t *testing.T) {
	for k := 1; k <= 1000; k++ {
		if Approx1(k) < EBound()-1e-12 {
			t.Fatalf("Approx1(%d) = %v below 1-1/e", k, Approx1(k))
		}
	}
	// Converges to 1-1/e from above.
	if math.Abs(Approx1(100000)-EBound()) > 1e-4 {
		t.Errorf("Approx1 does not converge to 1-1/e: %v", Approx1(100000))
	}
}

func TestApprox2KnownValues(t *testing.T) {
	if got := Approx2(10, 1); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Approx2(10,1) = %v, want 0.1", got)
	}
	if got := Approx2(40, 4); math.Abs(got-(1-math.Pow(39.0/40, 4))) > 1e-12 {
		t.Errorf("Approx2(40,4) = %v", got)
	}
	if !math.IsNaN(Approx2(0, 1)) || !math.IsNaN(Approx2(1, 0)) {
		t.Error("invalid args not NaN")
	}
}

func TestApprox2MonotoneInK(t *testing.T) {
	for n := 2; n <= 50; n += 7 {
		prev := 0.0
		for k := 1; k <= 20; k++ {
			v := Approx2(n, k)
			if v <= prev {
				t.Fatalf("Approx2(%d,%d) = %v not increasing (prev %v)", n, k, v, prev)
			}
			prev = v
		}
	}
}

func TestApprox1DominatesApprox2(t *testing.T) {
	// Fig. 2's visual claim: approx1 is much larger than approx2 when n > k.
	for _, n := range []int{10, 40} {
		for k := 1; k <= n; k++ {
			if Approx1(k) < Approx2(n, k)-1e-12 {
				t.Fatalf("Approx1(%d) < Approx2(%d,%d)", k, n, k)
			}
		}
	}
}

func TestFig2Series(t *testing.T) {
	s, err := Fig2Series(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 8 || s[0].K != 1 || s[7].K != 8 {
		t.Fatalf("series shape wrong: %+v", s)
	}
	for _, p := range s {
		if p.Approx1 != Approx1(p.K) || p.Approx2 != Approx2(10, p.K) {
			t.Fatalf("series values wrong at k=%d", p.K)
		}
	}
	if _, err := Fig2Series(0, 5); err == nil {
		t.Error("invalid n accepted")
	}
	if _, err := Fig2Series(10, 0); err == nil {
		t.Error("invalid kMax accepted")
	}
}
