package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// getWithAccept issues a GET with an Accept header and returns the response
// plus the full body.
func getWithAccept(t *testing.T, url, accept string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestMetricsContentNegotiation: /metrics answers JSON by default and the
// Prometheus text format when the scraper asks for it.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	body := fmt.Sprintf(`{"instance":%s,"radius":1,"k":2}`, instanceJSON(10))
	if resp, data := postJSON(t, ts.URL+"/v1/solve", body, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, data)
	}

	cases := []struct {
		accept string
		prom   bool
	}{
		{"", false},
		{"application/json", false},
		{"*/*", false},
		{"text/plain", true},
		{"text/plain; version=0.0.4", true},
		{"application/openmetrics-text", true},
		{"application/json, text/plain;q=0.5", true}, // any text/plain entry wins
	}
	for _, c := range cases {
		resp, body := getWithAccept(t, ts.URL+"/metrics", c.accept)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("accept %q: status %d", c.accept, resp.StatusCode)
		}
		ct := resp.Header.Get("Content-Type")
		if c.prom {
			if ct != obs.PromContentType {
				t.Errorf("accept %q: Content-Type %q, want %q", c.accept, ct, obs.PromContentType)
			}
			if !strings.Contains(body, "cd_serve_requests_total") {
				t.Errorf("accept %q: prom body lacks cd_serve_requests_total", c.accept)
			}
		} else {
			if !strings.HasPrefix(ct, "application/json") {
				t.Errorf("accept %q: Content-Type %q, want JSON", c.accept, ct)
			}
			if !strings.Contains(body, `"counters"`) {
				t.Errorf("accept %q: JSON body lacks counters", c.accept)
			}
		}
	}
}

// TestMetricsPromExposition lints the negotiated text output after real
// traffic: per-route families present, no duplicate TYPE declarations, no
// leaked _ns names.
func TestMetricsPromExposition(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	body := fmt.Sprintf(`{"instance":%s,"radius":1,"k":2}`, instanceJSON(10))
	for i := 0; i < 3; i++ {
		if resp, data := postJSON(t, ts.URL+"/v1/solve", body, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("solve status %d: %s", resp.StatusCode, data)
		}
	}
	_, text := getWithAccept(t, ts.URL+"/metrics", "text/plain")

	seen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "# TYPE ") {
			if strings.Contains(line, "_ns ") || strings.Contains(line, "_ns{") {
				t.Errorf("nanosecond name leaked into exposition: %q", line)
			}
			continue
		}
		name := strings.Fields(line)[2]
		if seen[name] {
			t.Errorf("duplicate family %s", name)
		}
		seen[name] = true
	}
	for _, want := range []string{
		"cd_serve_requests_total",
		"cd_serve_route_requests_total",
		"cd_serve_route_request_seconds",
		"cd_serve_route_in_flight",
		"cd_uptime_seconds",
	} {
		if !seen[want] {
			t.Errorf("family %s missing from exposition", want)
		}
	}
	if !strings.Contains(text, `cd_serve_route_requests_total{route="solve"} 3`) {
		t.Errorf("per-route counter wrong:\n%s", text)
	}
}

// TestSpanTreeAcceptance is the tentpole acceptance check: one /v1/solve
// with an events-capturing collector yields a span tree linked from the
// HTTP request down to the solver rounds, all under the request ID.
func TestSpanTreeAcceptance(t *testing.T) {
	sink := obs.NewMetrics()
	_, ts := newTestServer(t, serve.Config{Obs: sink})
	body := fmt.Sprintf(`{"instance":%s,"radius":1.5,"k":3,"solver":"greedy2"}`, instanceJSON(25))
	resp, data := postJSON(t, ts.URL+"/v1/solve", body, map[string]string{"X-Request-ID": "trace-me"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, data)
	}

	spans := map[string]*testSpan{}
	for _, e := range sink.Snapshot().Events {
		switch e.Type {
		case obs.EvSpanStart:
			if e.Trace != "trace-me" {
				t.Errorf("span %s/%s under trace %q, want trace-me", e.Span, e.Name, e.Trace)
			}
			spans[e.Span] = &testSpan{id: e.Span, name: e.Name, parent: e.Parent}
		case obs.EvSpanEnd:
			if sp := spans[e.Span]; sp != nil {
				ev := e
				sp.end = &ev
			} else {
				t.Errorf("span_end %s/%s without a span_start", e.Span, e.Name)
			}
		}
	}

	byName := map[string][]*testSpan{}
	for _, sp := range spans {
		byName[sp.name] = append(byName[sp.name], sp)
	}
	for _, name := range []string{"request.solve", "queue", "solve"} {
		if len(byName[name]) != 1 {
			t.Fatalf("%d %q spans, want 1", len(byName[name]), name)
		}
	}
	root := byName["request.solve"][0]
	if root.parent != "" {
		t.Errorf("request span has parent %q", root.parent)
	}
	if byName["queue"][0].parent != root.id || byName["solve"][0].parent != root.id {
		t.Error("queue/solve spans not parented by the request span")
	}
	solve := byName["solve"][0]
	rounds := byName["round"]
	if len(rounds) != 3 {
		t.Fatalf("%d round spans, want 3", len(rounds))
	}
	for _, r := range rounds {
		if r.parent != solve.id {
			t.Errorf("round span parented by %q, want the solve span", r.parent)
		}
		if r.end == nil {
			t.Error("round span never ended")
		} else if r.end.Fields["gain"] < 0 {
			t.Errorf("round span gain = %v", r.end.Fields["gain"])
		}
	}
	if root.end == nil || root.end.Fields["status"] != 200 {
		t.Errorf("request span end = %+v, want status=200", root.end)
	}
	if solve.end == nil || solve.end.Fields["rounds"] != 3 {
		t.Errorf("solve span end = %+v, want rounds=3", solve.end)
	}
}

// testSpan is a reconstructed span-tree node.
type testSpan struct {
	id, name, parent string
	end              *obs.Event
}

// TestChurnRequestIDPropagates: the request ID reaches the churn loop's
// per-period events and is echoed in the ndjson summary.
func TestChurnRequestIDPropagates(t *testing.T) {
	sink := obs.NewMetrics()
	_, ts := newTestServer(t, serve.Config{Obs: sink})
	body := fmt.Sprintf(
		`{"instance":%s,"radius":1.5,"k":2,"periods":3,"arrival_rate":2,"depart_rate":1,"seed":7}`,
		instanceJSON(20))
	resp, data := postJSON(t, ts.URL+"/v1/churn", body, map[string]string{"X-Request-ID": "churn-trace"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("churn status %d: %s", resp.StatusCode, data)
	}
	var sawSummary bool
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var l serve.ChurnLineV1
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			t.Fatalf("bad ndjson line %q: %v", line, err)
		}
		if l.Summary != nil {
			sawSummary = true
			if l.Summary.RequestID != "churn-trace" {
				t.Errorf("summary request_id = %q, want churn-trace", l.Summary.RequestID)
			}
		}
	}
	if !sawSummary {
		t.Fatal("no summary line")
	}
	periods, stamped := 0, 0
	for _, e := range sink.Snapshot().Events {
		if e.Type == obs.EvChurnPeriod {
			periods++
			if e.Trace == "churn-trace" {
				stamped++
			}
		}
	}
	if periods != 3 || stamped != periods {
		t.Errorf("%d/%d churn_period events carry the request ID, want 3/3", stamped, periods)
	}
	// Period spans hang off the churn span under the same trace.
	periodSpans := 0
	for _, e := range sink.Snapshot().Events {
		if e.Type == obs.EvSpanEnd && e.Name == "period" && e.Trace == "churn-trace" {
			periodSpans++
		}
	}
	if periodSpans != 3 {
		t.Errorf("%d period spans, want 3", periodSpans)
	}
}

// TestMetricsAndPprofConcurrent hammers /metrics (both formats) and
// /debug/pprof while solves run — meaningful under -race: the exposition
// paths read what request handling writes.
func TestMetricsAndPprofConcurrent(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	body := fmt.Sprintf(`{"instance":%s,"radius":1,"k":2}`, instanceJSON(10))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	hit := func(f func() (int, string)) {
		defer wg.Done()
		for ctx.Err() == nil {
			if code, what := f(); code != http.StatusOK {
				select {
				case errs <- fmt.Sprintf("%s: status %d", what, code):
				default:
				}
				return
			}
		}
	}
	get := func(path, accept string) (int, string) {
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return http.StatusOK, "" // context cancellation at deadline is fine
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, path + " " + accept
	}
	for i := 0; i < 2; i++ {
		wg.Add(3)
		go hit(func() (int, string) { return get("/metrics", "") })
		go hit(func() (int, string) { return get("/metrics", "text/plain") })
		go hit(func() (int, string) { return get("/debug/pprof/cmdline", "") })
	}
	wg.Add(1)
	go hit(func() (int, string) {
		resp, data := postJSON(t, ts.URL+"/v1/solve", body, nil)
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, string(data)
		}
		return http.StatusOK, ""
	})
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestHealthzUptimeAndDraining: the two new healthz fields move as the
// server's state does.
func TestHealthzUptimeAndDraining(t *testing.T) {
	started, release := resetBlock()
	srv, ts := newTestServer(t, serve.Config{Workers: 1})
	var h serve.HealthV1
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Draining || h.Status != "ok" {
		t.Fatalf("fresh server healthz = %+v", h)
	}
	if h.UptimeSeconds <= 0 || h.UptimeNS <= 0 {
		t.Errorf("uptime not positive: %+v", h)
	}
	if got, want := h.UptimeSeconds, float64(h.UptimeNS)/1e9; got > 2*want+1 {
		t.Errorf("uptime fields disagree: %v s vs %v ns", h.UptimeSeconds, h.UptimeNS)
	}

	// Hold a solve in flight, then drain: healthz must flip to draining
	// while the blocked request finishes.
	body := fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"solver":"test-block"}`, instanceJSON(5))
	done := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/solve", body, nil)
		done <- resp.StatusCode
	}()
	<-started
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background(), 5*time.Second) }()
	waitHealthz(t, ts.URL, func(h serve.HealthV1) bool { return h.Draining })
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "draining" || !h.Draining {
		t.Errorf("draining healthz = %+v", h)
	}
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Errorf("in-flight solve finished with %d during drain", code)
	}
	if err := <-drained; err != nil {
		t.Errorf("drain: %v", err)
	}
}
