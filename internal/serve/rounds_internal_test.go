package serve

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/vec"
)

// TestRoundsFromEventsFiltersByTrace is the regression test for the
// wall-time join: round_end events must be matched to the request by trace
// ID, not by round number alone. Before the fix, any round_end in the
// snapshot with a colliding round number — from another solve cross-wired
// into the collector — overwrote this request's wall times.
func TestRoundsFromEventsFiltersByTrace(t *testing.T) {
	res := &core.Result{
		Algorithm: "greedy2",
		Centers:   []vec.V{vec.Of(0, 0), vec.Of(1, 1)},
		Gains:     []float64{5, 3},
		Total:     8,
	}
	snap := obs.Snapshot{Events: []obs.Event{
		{Type: obs.EvRoundStart, Round: 1, Trace: "req-a"},
		{Type: obs.EvRoundEnd, Round: 1, Trace: "req-a", Fields: map[string]float64{"wall_ns": 100, "gain": 5}},
		{Type: obs.EvRoundEnd, Round: 2, Trace: "req-a", Fields: map[string]float64{"wall_ns": 200, "gain": 3}},
		// A foreign solve with colliding round numbers: same round indices,
		// different trace. These must not overwrite req-a's wall times.
		{Type: obs.EvRoundEnd, Round: 1, Trace: "req-b", Fields: map[string]float64{"wall_ns": 9000}},
		{Type: obs.EvRoundEnd, Round: 2, Trace: "req-b", Fields: map[string]float64{"wall_ns": 9000}},
		// Trace-less events (a solver run outside the serving layer sharing
		// the collector) are foreign too.
		{Type: obs.EvRoundEnd, Round: 1, Trace: "", Fields: map[string]float64{"wall_ns": 8000}},
		// Out-of-range rounds for this trace are ignored, not a panic.
		{Type: obs.EvRoundEnd, Round: 3, Trace: "req-a", Fields: map[string]float64{"wall_ns": 7000}},
		{Type: obs.EvRoundEnd, Round: 0, Trace: "req-a", Fields: map[string]float64{"wall_ns": 7000}},
	}}

	rounds := roundsFromEvents(res, snap, "req-a")
	if len(rounds) != 2 {
		t.Fatalf("got %d rounds, want 2", len(rounds))
	}
	want := []RoundV1{
		{Round: 1, Gain: 5, WallNS: 100},
		{Round: 2, Gain: 3, WallNS: 200},
	}
	for i, w := range want {
		if rounds[i] != w {
			t.Errorf("round %d = %+v, want %+v", i+1, rounds[i], w)
		}
	}

	// A different trace with no matching events keeps gains but zero wall
	// times — never another request's.
	for i, r := range roundsFromEvents(res, snap, "req-zzz") {
		if r.WallNS != 0 {
			t.Errorf("foreign trace adopted wall time %d on round %d", r.WallNS, i+1)
		}
	}
}
