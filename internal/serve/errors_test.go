package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/solver"
)

// decodeError parses the machine-readable error envelope every non-2xx v1
// response must carry.
func decodeError(t *testing.T, data []byte) serve.ErrorV1 {
	t.Helper()
	var out serve.ErrorResponseV1
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("non-2xx body is not an error envelope: %v (%s)", err, data)
	}
	if out.Error.Code == "" || out.Error.Message == "" {
		t.Fatalf("error envelope missing code or message: %s", data)
	}
	return out.Error
}

// TestSolveErrorPaths pins the wire-schema error contract: every malformed
// request answers with the right status and a machine-readable code.
func TestSolveErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{MaxBody: 2048})
	good := instanceJSON(5)
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"malformed json", `{"instance": nope`, http.StatusBadRequest, serve.CodeBadJSON},
		{"unknown field", fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"bogus":true}`, good),
			http.StatusBadRequest, serve.CodeBadJSON},
		{"not an object", `[1,2,3]`, http.StatusBadRequest, serve.CodeBadJSON},
		{"unknown solver", fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"solver":"greedy9"}`, good),
			http.StatusBadRequest, serve.CodeUnknownSolver},
		{"zero k", fmt.Sprintf(`{"instance":%s,"radius":1,"k":0}`, good),
			http.StatusBadRequest, serve.CodeBadK},
		{"negative k", fmt.Sprintf(`{"instance":%s,"radius":1,"k":-3}`, good),
			http.StatusBadRequest, serve.CodeBadK},
		{"zero radius", fmt.Sprintf(`{"instance":%s,"radius":0,"k":1}`, good),
			http.StatusBadRequest, serve.CodeBadRadius},
		{"bad norm", fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"norm":"l7"}`, good),
			http.StatusBadRequest, serve.CodeBadNorm},
		{"missing instance", `{"radius":1,"k":1}`, http.StatusBadRequest, serve.CodeBadInstance},
		{"empty instance", `{"instance":{"points":[]},"radius":1,"k":1}`,
			http.StatusBadRequest, serve.CodeBadInstance},
		{"non-finite coordinate", `{"instance":{"points":[[1e999,0]]},"radius":1,"k":1}`,
			http.StatusBadRequest, serve.CodeBadInstance},
		{"non-finite weight", `{"instance":{"points":[[0,0]],"weights":[1e999]},"radius":1,"k":1}`,
			http.StatusBadRequest, serve.CodeBadInstance},
		{"negative weight", `{"instance":{"points":[[0,0]],"weights":[-1]},"radius":1,"k":1}`,
			http.StatusBadRequest, serve.CodeBadInstance},
		{"weight count mismatch", `{"instance":{"points":[[0,0]],"weights":[1,2]},"radius":1,"k":1}`,
			http.StatusBadRequest, serve.CodeBadInstance},
		{"empty point row", `{"instance":{"points":[[]]},"radius":1,"k":1}`,
			http.StatusBadRequest, serve.CodeBadInstance},
		{"bad cache_control", fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"cache_control":"refresh"}`, good),
			http.StatusBadRequest, serve.CodeBadRequest},
		{"negative shards", fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"options":{"shards":-2}}`, good),
			http.StatusBadRequest, serve.CodeBadRequest},
		{"below-range halo", fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"options":{"shards":2,"halo":-2}}`, good),
			http.StatusBadRequest, serve.CodeBadRequest},
		{"unknown sharded inner", fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"solver":"sharded(greedy9)"}`, good),
			http.StatusBadRequest, serve.CodeUnknownSolver},
		{"mixed instance dims", `{"instance":{"points":[[0,0],[1]]},"radius":1,"k":1}`,
			http.StatusBadRequest, serve.CodeDimMismatch},
		{"dim contradicts rows", `{"instance":{"dim":3,"points":[[0,0]]},"radius":1,"k":1}`,
			http.StatusBadRequest, serve.CodeDimMismatch},
		{"warm start dim mismatch",
			fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"options":{"warm_start":[[1,2,3]]}}`, good),
			http.StatusBadRequest, serve.CodeDimMismatch},
		{"box dim mismatch",
			fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"options":{"box_lo":[0],"box_hi":[1]}}`, good),
			http.StatusBadRequest, serve.CodeDimMismatch},
		{"oversized body",
			fmt.Sprintf(`{"instance":%s,"radius":1,"k":1}`, instanceJSON(2000)),
			http.StatusRequestEntityTooLarge, serve.CodeBodyTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/solve", tc.body, nil)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, data)
			}
			if e := decodeError(t, data); e.Code != tc.code {
				t.Errorf("code %q, want %q (message %q)", e.Code, tc.code, e.Message)
			}
		})
	}
}

// TestSolveUnknownSolverListsCatalog: the 400 message is the same sorted
// catalog text cdgreedy -alg prints — one registry, one answer.
func TestSolveUnknownSolverListsCatalog(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	body := fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"solver":"greedy9"}`, instanceJSON(3))
	_, data := postJSON(t, ts.URL+"/v1/solve", body, nil)
	e := decodeError(t, data)
	want := solver.CatalogError("solver", "algorithm", "greedy9", solver.Names()).Error()
	if e.Message != want {
		t.Errorf("message %q\nwant      %q", e.Message, want)
	}
	if !strings.Contains(e.Message, "greedy2 | ") {
		t.Errorf("catalog not sorted/pipe-joined: %q", e.Message)
	}
}

// TestChurnErrorPaths: the churn endpoint shares the same error contract.
func TestChurnErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	good := instanceJSON(5)
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"zero periods",
			fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"periods":0,"arrival_rate":1,"depart_rate":1}`, good),
			http.StatusBadRequest, serve.CodeBadRequest},
		{"bad index",
			fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"periods":2,"arrival_rate":1,"depart_rate":1,"index":"quadtree"}`, good),
			http.StatusBadRequest, serve.CodeBadRequest},
		{"negative arrival rate",
			fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"periods":2,"arrival_rate":-1,"depart_rate":1}`, good),
			http.StatusBadRequest, serve.CodeBadRequest},
		{"unknown solver",
			fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"periods":2,"arrival_rate":1,"depart_rate":1,"solver":"nope"}`, good),
			http.StatusBadRequest, serve.CodeUnknownSolver},
		{"zero k",
			fmt.Sprintf(`{"instance":%s,"radius":1,"k":0,"periods":2,"arrival_rate":1,"depart_rate":1}`, good),
			http.StatusBadRequest, serve.CodeBadK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/churn", tc.body, nil)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, data)
			}
			if e := decodeError(t, data); e.Code != tc.code {
				t.Errorf("code %q, want %q (message %q)", e.Code, tc.code, e.Message)
			}
		})
	}
}

// TestMethodNotAllowed: wrong verbs answer 405 with the JSON error envelope
// and an Allow header, on every v1 endpoint.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	cases := []struct{ method, path, allow string }{
		{http.MethodGet, "/v1/solve", http.MethodPost},
		{http.MethodGet, "/v1/churn", http.MethodPost},
		{http.MethodPost, "/v1/solvers", http.MethodGet},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var out serve.ErrorResponseV1
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed || out.Error.Code != serve.CodeMethodNotAllowed {
			t.Errorf("%s %s: status %d code %q", tc.method, tc.path, resp.StatusCode, out.Error.Code)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s: Allow %q, want %q", tc.method, tc.path, got, tc.allow)
		}
	}
}
