package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

// TestSolveNearLinear: /v1/solve runs the near-linear grid solver — plain
// and sharded — threading the refine option through, and the server metrics
// record the solver's stage counters.
func TestSolveNearLinear(t *testing.T) {
	m := obs.NewMetrics()
	_, ts := newTestServer(t, serve.Config{Obs: m})
	const k = 3
	for _, body := range []string{
		fmt.Sprintf(`{"instance":%s,"radius":1.2,"k":%d,"solver":"nearlinear"}`, instanceJSON(60), k),
		fmt.Sprintf(`{"instance":%s,"radius":1.2,"k":%d,"solver":"nearlinear","options":{"refine":3,"seed":9}}`, instanceJSON(60), k),
		fmt.Sprintf(`{"instance":%s,"radius":1.2,"k":%d,"solver":"sharded(nearlinear)","options":{"shards":2}}`, instanceJSON(60), k),
	} {
		resp, data := postJSON(t, ts.URL+"/v1/solve", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var out serve.SolveResponseV1
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Centers) != k || out.Total <= 0 || out.Partial {
			t.Fatalf("centers=%d total=%v partial=%v (%s)", len(out.Centers), out.Total, out.Partial, data)
		}
	}
	snap := m.Snapshot()
	if snap.Counters[obs.CtrNLCells] == 0 {
		t.Error("server metrics recorded no near-linear grid cells")
	}
	if snap.Counters[obs.CtrNLCandidates] == 0 {
		t.Error("server metrics recorded no near-linear exact scores")
	}
}

// TestSolveNearLinearCacheSeparation: the refine option is result-affecting,
// so solves differing only in refine never share a cache entry — in either
// direction — while exact repeats still hit.
func TestSolveNearLinearCacheSeparation(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	bodies := []string{
		fmt.Sprintf(`{"instance":%s,"radius":1.2,"k":2,"solver":"nearlinear"}`, instanceJSON(30)),
		fmt.Sprintf(`{"instance":%s,"radius":1.2,"k":2,"solver":"nearlinear","options":{"refine":3}}`, instanceJSON(30)),
		fmt.Sprintf(`{"instance":%s,"radius":1.2,"k":2,"solver":"nearlinear","options":{"refine":-1}}`, instanceJSON(30)),
	}
	for i, body := range bodies {
		if _, cached := postSolve(t, ts.URL, body); cached {
			t.Fatalf("request %d answered from cache — refine missing from the fingerprint", i)
		}
	}
	for i, body := range bodies {
		if _, cached := postSolve(t, ts.URL, body); !cached {
			t.Fatalf("repeat of request %d missed the cache", i)
		}
	}
}
