package serve

import "context"

// admission is the bounded worker pool's bookkeeping: two token buckets.
//
// queue caps the requests the server has accepted responsibility for —
// running plus waiting. Admission is non-blocking: when the bucket is full
// the caller answers 429 immediately, so saturation never grows goroutines
// or latency silently.
//
// run caps the solves actually executing. Admitted requests block on it (on
// their own handler goroutine — net/http already gave us one per request, so
// the pool hands out permission, not goroutines) until a slot frees or their
// deadline expires while queued.
type admission struct {
	queue chan struct{}
	run   chan struct{}
}

func newAdmission(workers, queueDepth int) *admission {
	return &admission{
		queue: make(chan struct{}, workers+queueDepth),
		run:   make(chan struct{}, workers),
	}
}

// tryAdmit claims an admission token without blocking; false means answer
// 429.
func (a *admission) tryAdmit() bool {
	select {
	case a.queue <- struct{}{}:
		return true
	default:
		return false
	}
}

// releaseAdmit returns an admission token (deferred by the request scope).
func (a *admission) releaseAdmit() { <-a.queue }

// acquire blocks for an execution slot; ctx expiring while queued returns
// its error and claims nothing.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.run <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an execution slot.
func (a *admission) release() { <-a.run }

// queued approximates how many admitted requests are waiting for a slot.
func (a *admission) queued() int {
	if n := len(a.queue) - len(a.run); n > 0 {
		return n
	}
	return 0
}
