package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

// TestSolveSharded: /v1/solve accepts both sharding surfaces — the
// composite solver name and the shards option — runs the
// partition → shard-solve → merge pipeline, and reports the merge's rounds
// as the response rounds.
func TestSolveSharded(t *testing.T) {
	m := obs.NewMetrics()
	_, ts := newTestServer(t, serve.Config{Obs: m})
	const k = 3
	for _, body := range []string{
		fmt.Sprintf(`{"instance":%s,"radius":1.2,"k":%d,"solver":"sharded(greedy2-lazy)"}`, instanceJSON(40), k),
		fmt.Sprintf(`{"instance":%s,"radius":1.2,"k":%d,"solver":"greedy2","options":{"shards":3}}`, instanceJSON(40), k),
	} {
		resp, data := postJSON(t, ts.URL+"/v1/solve", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var out serve.SolveResponseV1
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Centers) != k || len(out.Rounds) != k {
			t.Fatalf("got %d centers, %d rounds, want %d each (%s)", len(out.Centers), len(out.Rounds), k, data)
		}
		if out.Total <= 0 || out.Partial {
			t.Errorf("total = %v partial = %v", out.Total, out.Partial)
		}
		for _, r := range out.Rounds {
			if r.WallNS <= 0 {
				t.Errorf("round %d has no wall time — merge rounds not joined to the request trace", r.Round)
			}
		}
	}
	snap := m.Snapshot()
	if snap.Counters[obs.CtrShardParts] == 0 {
		t.Error("server metrics recorded no shard partitions")
	}
	if snap.Counters[obs.CtrShardSolves] == 0 {
		t.Error("server metrics recorded no shard solves")
	}
}

// TestSolveShardedCacheSeparation: the shards and halo options are part of
// the solve fingerprint, so sharded and unsharded requests (and different
// shard geometries) never share a cache entry in either direction.
func TestSolveShardedCacheSeparation(t *testing.T) {
	m := obs.NewMetrics()
	_, ts := newTestServer(t, serve.Config{Obs: m})
	bodies := []string{
		fmt.Sprintf(`{"instance":%s,"radius":1.2,"k":2,"solver":"greedy2"}`, instanceJSON(30)),
		fmt.Sprintf(`{"instance":%s,"radius":1.2,"k":2,"solver":"greedy2","options":{"shards":2}}`, instanceJSON(30)),
		fmt.Sprintf(`{"instance":%s,"radius":1.2,"k":2,"solver":"greedy2","options":{"shards":4}}`, instanceJSON(30)),
		fmt.Sprintf(`{"instance":%s,"radius":1.2,"k":2,"solver":"greedy2","options":{"shards":4,"halo":-1}}`, instanceJSON(30)),
	}
	for i, body := range bodies {
		if _, cached := postSolve(t, ts.URL, body); cached {
			t.Fatalf("request %d answered from cache — shards/halo missing from the fingerprint", i)
		}
	}
	// Exact repeats do hit: the separation above is by parameters, not luck.
	for i, body := range bodies {
		if _, cached := postSolve(t, ts.URL, body); !cached {
			t.Fatalf("repeat of request %d missed the cache", i)
		}
	}
	snap := m.Snapshot()
	if snap.Counters[obs.CtrCacheMisses] != int64(len(bodies)) || snap.Counters[obs.CtrCacheHits] != int64(len(bodies)) {
		t.Errorf("misses/hits = %d/%d, want %d/%d", snap.Counters[obs.CtrCacheMisses],
			snap.Counters[obs.CtrCacheHits], len(bodies), len(bodies))
	}
}
