package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// stripVarying decodes a solve response and removes the two fields that
// legitimately differ between a fresh solve and a cached replay of it.
func stripVarying(t *testing.T, data []byte) (map[string]any, bool) {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("response does not decode: %v (%s)", err, data)
	}
	cached, _ := m["cached"].(bool)
	delete(m, "request_id")
	delete(m, "cached")
	return m, cached
}

func postSolve(t *testing.T, url, body string) ([]byte, bool) {
	t.Helper()
	resp, data := postJSON(t, url+"/v1/solve", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	_, cached := stripVarying(t, data)
	return data, cached
}

// TestSolveCacheHit: an identical repeat request is served from the cache
// with a bit-identical body (modulo request_id and the cached flag),
// including the original solve's round telemetry and wall time.
func TestSolveCacheHit(t *testing.T) {
	m := obs.NewMetrics()
	_, ts := newTestServer(t, serve.Config{Obs: m})
	body := fmt.Sprintf(`{"instance":%s,"radius":1.5,"k":3,"solver":"greedy2"}`, instanceJSON(25))

	first, cached := postSolve(t, ts.URL, body)
	if cached {
		t.Fatal("first request claims cached")
	}
	second, cached := postSolve(t, ts.URL, body)
	if !cached {
		t.Fatal("identical repeat request not served from cache")
	}
	a, _ := stripVarying(t, first)
	b, _ := stripVarying(t, second)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("cached response differs from original:\n%v\n%v", a, b)
	}
	// The cached body carries the original solve's telemetry, not zeros.
	var out serve.SolveResponseV1
	if err := json.Unmarshal(second, &out); err != nil {
		t.Fatal(err)
	}
	if out.WallNS <= 0 || len(out.Rounds) != 3 {
		t.Errorf("cached response lost telemetry: wall_ns=%d rounds=%d", out.WallNS, len(out.Rounds))
	}
	if out.Partial {
		t.Error("cached response marked partial")
	}
	snap := m.Snapshot()
	if snap.Counters[obs.CtrCacheHits] != 1 || snap.Counters[obs.CtrCacheMisses] != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1",
			snap.Counters[obs.CtrCacheHits], snap.Counters[obs.CtrCacheMisses])
	}
}

// TestSolveCacheConcurrentIdentical: K concurrent identical requests cost
// exactly one solver run — asserted on the core round counter — and every
// client gets an identical response body.
func TestSolveCacheConcurrentIdentical(t *testing.T) {
	m := obs.NewMetrics()
	_, ts := newTestServer(t, serve.Config{Obs: m})
	const clients = 8
	const k = 3
	body := fmt.Sprintf(`{"instance":%s,"radius":1.5,"k":%d,"solver":"greedy2"}`, instanceJSON(30), k)

	bodies := make([][]byte, clients)
	cachedFlags := make([]bool, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/solve", body, nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			bodies[i], cachedFlags[i] = data, false
			if _, cached := stripVarying(t, data); cached {
				cachedFlags[i] = true
			}
		}(i)
	}
	wg.Wait()

	// One solver run total: k rounds, not clients×k.
	snap := m.Snapshot()
	if rounds := snap.Counters[obs.CtrRounds]; rounds != k {
		t.Errorf("core.rounds = %d, want %d (exactly one solver run)", rounds, k)
	}
	fresh := 0
	for _, c := range cachedFlags {
		if !c {
			fresh++
		}
	}
	if fresh != 1 {
		t.Errorf("%d responses claim a fresh solve, want exactly 1", fresh)
	}
	want, _ := stripVarying(t, bodies[0])
	for i := 1; i < clients; i++ {
		got, _ := stripVarying(t, bodies[i])
		if !reflect.DeepEqual(want, got) {
			t.Errorf("client %d response differs from client 0", i)
		}
	}
	hits := snap.Counters[obs.CtrCacheHits]
	if hits != clients-1 {
		t.Errorf("cache.hits = %d, want %d", hits, clients-1)
	}
}

// TestSolveCacheEviction pins the byte budget end to end: a budget sized for
// one response evicts the older entry when a second distinct solve lands,
// and the evicted request misses on replay.
func TestSolveCacheEviction(t *testing.T) {
	bodyA := fmt.Sprintf(`{"instance":%s,"radius":1.5,"k":1,"solver":"greedy3"}`, instanceJSON(5))
	bodyB := fmt.Sprintf(`{"instance":%s,"radius":2.5,"k":1,"solver":"greedy3"}`, instanceJSON(6))

	// Measure the stored entry size (the response minus its request id) on a
	// throwaway server, then budget for one entry but not two.
	_, ts0 := newTestServer(t, serve.Config{})
	first, _ := postSolve(t, ts0.URL, bodyA)
	var resp serve.SolveResponseV1
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatal(err)
	}
	resp.RequestID = ""
	stored, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(len(stored)) + 400 // one entry + overhead, well under two

	m := obs.NewMetrics()
	_, ts := newTestServer(t, serve.Config{CacheBytes: budget, Obs: m})
	if _, cached := postSolve(t, ts.URL, bodyA); cached {
		t.Fatal("first A claims cached")
	}
	if _, cached := postSolve(t, ts.URL, bodyA); !cached {
		t.Fatal("repeat A not cached: budget too small for even one entry")
	}
	if _, cached := postSolve(t, ts.URL, bodyB); cached {
		t.Fatal("first B claims cached")
	}
	// B displaced A under the budget.
	if _, cached := postSolve(t, ts.URL, bodyA); cached {
		t.Error("A still cached after B should have evicted it")
	}
	if ev := m.Snapshot().Counters[obs.CtrCacheEvictions]; ev < 1 {
		t.Errorf("cache.evictions = %d, want >= 1", ev)
	}
}

// TestSolveCacheBypass: cache_control "bypass" forces a fresh solve and
// neither reads nor fills, and does not invalidate what is cached.
func TestSolveCacheBypass(t *testing.T) {
	m := obs.NewMetrics()
	_, ts := newTestServer(t, serve.Config{Obs: m})
	inst := instanceJSON(20)
	body := fmt.Sprintf(`{"instance":%s,"radius":1.5,"k":2}`, inst)
	bypass := fmt.Sprintf(`{"instance":%s,"radius":1.5,"k":2,"cache_control":"bypass"}`, inst)

	postSolve(t, ts.URL, body)
	if _, cached := postSolve(t, ts.URL, body); !cached {
		t.Fatal("warmup repeat not cached")
	}
	if _, cached := postSolve(t, ts.URL, bypass); cached {
		t.Error("bypass request served from cache")
	}
	if _, cached := postSolve(t, ts.URL, body); !cached {
		t.Error("bypass invalidated the cached entry")
	}
	snap := m.Snapshot()
	if snap.Counters[obs.CtrCacheBypass] != 1 {
		t.Errorf("cache.bypass = %d, want 1", snap.Counters[obs.CtrCacheBypass])
	}
}

// TestSolveCacheDisabled: a negative CacheBytes turns the cache off; repeats
// solve fresh and never carry the cached flag.
func TestSolveCacheDisabled(t *testing.T) {
	m := obs.NewMetrics()
	_, ts := newTestServer(t, serve.Config{CacheBytes: -1, Obs: m})
	body := fmt.Sprintf(`{"instance":%s,"radius":1.5,"k":2}`, instanceJSON(10))
	postSolve(t, ts.URL, body)
	if _, cached := postSolve(t, ts.URL, body); cached {
		t.Error("disabled cache served a hit")
	}
	snap := m.Snapshot()
	if snap.Counters[obs.CtrCacheHits]+snap.Counters[obs.CtrCacheMisses] != 0 {
		t.Error("disabled cache still counted lookups")
	}
}

// TestSolvePartialNeverCached: a deadline-bounded partial result must not
// enter the cache — the identical follow-up request solves again.
func TestSolvePartialNeverCached(t *testing.T) {
	m := obs.NewMetrics()
	_, ts := newTestServer(t, serve.Config{Obs: m})
	// test-slow commits one round per 15ms; 10 rounds under a 40ms deadline
	// is always cut short.
	body := fmt.Sprintf(`{"instance":%s,"radius":1,"k":10,"solver":"test-slow","deadline_ms":40}`, instanceJSON(5))

	for i := 0; i < 2; i++ {
		_, data := postJSON(t, ts.URL+"/v1/solve", body, nil)
		var out serve.SolveResponseV1
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("request %d: %v (%s)", i, err, data)
		}
		if !out.Partial {
			t.Fatalf("request %d: expected a partial result, got %d rounds", i, len(out.Rounds))
		}
		if out.Cached {
			t.Fatalf("request %d: partial result served from cache", i)
		}
	}
	snap := m.Snapshot()
	if snap.Counters[obs.CtrCacheHits] != 0 {
		t.Errorf("cache.hits = %d, want 0: partials must never be cached", snap.Counters[obs.CtrCacheHits])
	}
	if snap.Counters[obs.CtrCacheMisses] != 2 {
		t.Errorf("cache.misses = %d, want 2", snap.Counters[obs.CtrCacheMisses])
	}
}

// TestSolveCacheHitWithoutWorkerSlot: with a single worker wedged in a
// blocking solve, a cached request still answers immediately — the hit path
// does not take a worker slot.
func TestSolveCacheHitWithoutWorkerSlot(t *testing.T) {
	started, release := resetBlock()
	_, ts := newTestServer(t, serve.Config{Workers: 1})
	warm := fmt.Sprintf(`{"instance":%s,"radius":1.5,"k":2}`, instanceJSON(15))
	blocker := fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"solver":"test-block"}`, instanceJSON(5))

	// Warm the cache while the worker is free.
	if _, cached := postSolve(t, ts.URL, warm); cached {
		t.Fatal("warmup claims cached")
	}

	// Wedge the only worker.
	blockDone := make(chan struct{})
	go func() {
		defer close(blockDone)
		postJSON(t, ts.URL+"/v1/solve", blocker, nil)
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("blocking solve never started")
	}

	// The cached request must answer without waiting for the slot.
	done := make(chan bool, 1)
	go func() {
		_, cached := postSolve(t, ts.URL, warm)
		done <- cached
	}()
	select {
	case cached := <-done:
		if !cached {
			t.Error("repeat request was not served from cache")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cache hit blocked behind the wedged worker")
	}

	close(release)
	<-blockDone
}
