package serve

// The v1 wire schema lives in the importable api/v1 package (repro/api/v1)
// since the cluster-mode redesign; this file keeps the serving layer's
// historical *V1 names as aliases so the server internals and its tests read
// naturally. The schema itself is pinned by api/v1.golden.txt via
// scripts/apicheck.sh against the api/v1 package, not this shim.

import (
	v1 "repro/api/v1"
)

// Aliases of the api/v1 wire types under the serving layer's *V1 names.
type (
	OptionsV1         = v1.SolveOptions
	SolveRequestV1    = v1.SolveRequest
	RoundV1           = v1.Round
	SolveResponseV1   = v1.SolveResponse
	ChurnRequestV1    = v1.ChurnRequest
	ChurnPeriodV1     = v1.ChurnPeriod
	ChurnSummaryV1    = v1.ChurnSummary
	ChurnLineV1       = v1.ChurnLine
	SolverInfoV1      = v1.SolverInfo
	SolversResponseV1 = v1.SolversResponse
	HealthV1          = v1.Health
	ClusterHealthV1   = v1.ClusterHealth
	ClusterPeerV1     = v1.ClusterPeer
	ErrorV1           = v1.Error
	ErrorResponseV1   = v1.ErrorResponse
)

// Machine-readable error codes, re-exported from api/v1.
const (
	CodeBadJSON          = v1.CodeBadJSON
	CodeBodyTooLarge     = v1.CodeBodyTooLarge
	CodeBadInstance      = v1.CodeBadInstance
	CodeDimMismatch      = v1.CodeDimMismatch
	CodeBadK             = v1.CodeBadK
	CodeBadRadius        = v1.CodeBadRadius
	CodeBadNorm          = v1.CodeBadNorm
	CodeUnknownSolver    = v1.CodeUnknownSolver
	CodeBadRequest       = v1.CodeBadRequest
	CodeQueueFull        = v1.CodeQueueFull
	CodeDeadlineQueued   = v1.CodeDeadlineQueued
	CodeDraining         = v1.CodeDraining
	CodeMethodNotAllowed = v1.CodeMethodNotAllowed
	CodeSolveFailed      = v1.CodeSolveFailed
)

// CacheControlBypass re-exports v1.CacheControlBypass.
const CacheControlBypass = v1.CacheControlBypass
