package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// waitHealthz polls /healthz until cond holds or the deadline passes.
func waitHealthz(t *testing.T, url string, cond func(serve.HealthV1) bool) serve.HealthV1 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var h serve.HealthV1
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if cond(h) {
			return h
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("healthz never reached the expected state; last %+v", h)
	return h
}

// TestAdmissionSaturation pins the robustness core: with 1 worker and a
// queue of 1, a third concurrent solve is answered 429 with Retry-After
// immediately — no unbounded queueing — while /healthz stays responsive.
// Run under -race this also exercises the pool's concurrency.
func TestAdmissionSaturation(t *testing.T) {
	started, release := resetBlock()
	srv, ts := newTestServer(t, serve.Config{Workers: 1, QueueDepth: 1})
	body := fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"solver":"test-block"}`, instanceJSON(5))

	type result struct {
		status int
		data   []byte
	}
	results := make(chan result, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/solve", body, nil)
			results <- result{resp.StatusCode, data}
		}()
	}
	// Wait until one solve is running and the other is queued: the running
	// one signals started, and healthz reports 2 in flight.
	<-started
	waitHealthz(t, ts.URL, func(h serve.HealthV1) bool { return h.InFlight == 2 })

	// The pool is saturated: the next request must bounce, not wait.
	resp, data := postJSON(t, ts.URL+"/v1/solve", body, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status %d, want 429 (%s)", resp.StatusCode, data)
	}
	// Retry-After must be the integer-seconds form (RFC 9110): clients and
	// proxies parse it as a delay, so "1.5" or an empty value is a bug.
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without a Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", ra)
	}
	if e := decodeError(t, data); e.Code != serve.CodeQueueFull {
		t.Errorf("code %q, want %q", e.Code, serve.CodeQueueFull)
	}
	// Liveness is independent of the worker pool.
	h := waitHealthz(t, ts.URL, func(h serve.HealthV1) bool { return h.Status == "ok" })
	if h.InFlight != 2 || h.Queued != 1 {
		t.Errorf("healthz under saturation = %+v, want 2 in flight / 1 queued", h)
	}

	// Release the pool: both admitted solves must complete cleanly.
	close(release)
	wg.Wait()
	close(results)
	for r := range results {
		if r.status != http.StatusOK {
			t.Errorf("admitted solve finished %d: %s", r.status, r.data)
		}
	}
	snap := srv.Metrics().Snapshot()
	if snap.Counters[obs.CtrSrvQueueFull] != 1 {
		t.Errorf("queue_full counter = %d, want 1", snap.Counters[obs.CtrSrvQueueFull])
	}
	if snap.Counters[obs.CtrSrvAccepted] != 2 {
		t.Errorf("accepted counter = %d, want 2", snap.Counters[obs.CtrSrvAccepted])
	}
}

// TestQueuedDeadline: a request whose deadline expires while it is still
// waiting for a worker slot answers 503 deadline_while_queued, and the
// stuck-free pool serves it fine once capacity returns.
func TestQueuedDeadline(t *testing.T) {
	started, release := resetBlock()
	_, ts := newTestServer(t, serve.Config{Workers: 1, QueueDepth: 4})
	blockBody := fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"solver":"test-block"}`, instanceJSON(5))

	done := make(chan struct{})
	go func() {
		defer close(done)
		postJSON(t, ts.URL+"/v1/solve", blockBody, nil)
	}()
	<-started

	// Queued behind the blocked worker with a 30ms deadline: must give up.
	body := fmt.Sprintf(`{"instance":%s,"radius":1,"k":1,"deadline_ms":30}`, instanceJSON(5))
	resp, data := postJSON(t, ts.URL+"/v1/solve", body, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Code != serve.CodeDeadlineQueued {
		t.Errorf("code %q, want %q", e.Code, serve.CodeDeadlineQueued)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 without a Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", ra)
	}

	close(release)
	<-done
	// Capacity restored: the same request now succeeds.
	resp, data = postJSON(t, ts.URL+"/v1/solve", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release status %d: %s", resp.StatusCode, data)
	}
}

// TestConcurrentLoad hammers a small pool with more clients than capacity:
// every response is either a clean 200 or a well-formed 429, the counters
// balance, and (under -race) the admission path is data-race-free.
func TestConcurrentLoad(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{Workers: 2, QueueDepth: 2})
	body := fmt.Sprintf(`{"instance":%s,"radius":1.5,"k":2}`, instanceJSON(30))

	const clients = 16
	var ok200, ok429, other int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				resp, data := postJSON(t, ts.URL+"/v1/solve", body, nil)
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200++
				case http.StatusTooManyRequests:
					ok429++
				default:
					other++
					t.Errorf("unexpected status %d: %s", resp.StatusCode, data)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("%d responses were neither 200 nor 429", other)
	}
	if ok200 == 0 {
		t.Fatal("no request ever succeeded under load")
	}
	t.Logf("load: %d ok, %d backpressured", ok200, ok429)
	snap := srv.Metrics().Snapshot()
	total := snap.Counters[obs.CtrSrvAccepted] + snap.Counters[obs.CtrSrvQueueFull]
	if total != clients*4 {
		t.Errorf("accepted %d + rejected %d != %d requests",
			snap.Counters[obs.CtrSrvAccepted], snap.Counters[obs.CtrSrvQueueFull], clients*4)
	}
	if g := snap.Gauges[obs.GaugeSrvInFlight]; g != 0 {
		t.Errorf("in-flight gauge %v after the storm, want 0", g)
	}
}
