package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestDrainFinishesInFlight: a drain with enough grace lets a running solve
// finish on its own and its client gets the complete (non-partial) result,
// while new requests are refused 503 the moment drain begins.
func TestDrainFinishesInFlight(t *testing.T) {
	started, release := resetBlock()
	srv, ts := newTestServer(t, serve.Config{})
	body := fmt.Sprintf(`{"instance":%s,"radius":1,"k":2,"solver":"test-block"}`, instanceJSON(5))

	type reply struct {
		status int
		out    serve.SolveResponseV1
	}
	inflight := make(chan reply, 1)
	go func() {
		resp, data := postJSON(t, ts.URL+"/v1/solve", body, nil)
		var out serve.SolveResponseV1
		_ = json.Unmarshal(data, &out)
		inflight <- reply{resp.StatusCode, out}
	}()
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx, 5*time.Second)
	}()
	waitHealthz(t, ts.URL, func(h serve.HealthV1) bool { return h.Status == "draining" })

	// New work is refused immediately...
	resp, data := postJSON(t, ts.URL+"/v1/solve", body, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status %d, want 503 (%s)", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Code != serve.CodeDraining {
		t.Errorf("code %q, want %q", e.Code, serve.CodeDraining)
	}

	// ...while the in-flight solve finishes inside the grace period.
	close(release)
	r := <-inflight
	if r.status != http.StatusOK || r.out.Partial || len(r.out.Centers) != 2 {
		t.Errorf("in-flight solve under drain: status %d, partial %v, %d centers",
			r.status, r.out.Partial, len(r.out.Centers))
	}
	if err := <-drained; err != nil {
		t.Errorf("drain returned %v", err)
	}
	if !srv.Draining() {
		t.Error("server not marked draining after Drain")
	}
}

// TestDrainGraceCancels: when the grace period expires first, the in-flight
// solve is cancelled and its client still gets a valid anytime partial
// result — drain never drops a response on the floor.
func TestDrainGraceCancels(t *testing.T) {
	started, _ := resetBlock()
	srv, ts := newTestServer(t, serve.Config{})
	body := fmt.Sprintf(`{"instance":%s,"radius":1,"k":2,"solver":"test-block"}`, instanceJSON(5))

	inflight := make(chan serve.SolveResponseV1, 1)
	statusCh := make(chan int, 1)
	go func() {
		resp, data := postJSON(t, ts.URL+"/v1/solve", body, nil)
		var out serve.SolveResponseV1
		_ = json.Unmarshal(data, &out)
		statusCh <- resp.StatusCode
		inflight <- out
	}()
	<-started

	// Never release the solver: only the 20ms grace cancellation ends it.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Drain(ctx, 20*time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("drain took %v despite a 20ms grace", waited)
	}
	if status := <-statusCh; status != http.StatusOK {
		t.Fatalf("cancelled in-flight solve answered %d, want 200 + partial", status)
	}
	out := <-inflight
	if !out.Partial {
		t.Error("grace-cancelled solve not marked partial")
	}
	if len(out.Centers) != len(out.Gains) {
		t.Errorf("partial result inconsistent: %d centers, %d gains",
			len(out.Centers), len(out.Gains))
	}
}

// TestDrainIdempotentOnIdle: draining an idle server returns promptly.
func TestDrainIdle(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx, time.Second); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
}
