package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/serve"
	"repro/internal/solver"
	"repro/internal/vec"
)

// Test-only solvers registered alongside the real catalog: one that blocks
// until released (admission/drain tests) and one that commits a round every
// few milliseconds (deadline/anytime tests). Both honor the anytime
// contract: on cancellation they return the committed prefix with ctx.Err().
var (
	blockMu      sync.Mutex
	blockStarted chan struct{}
	blockRelease chan struct{}
)

// resetBlock arms fresh channels for a test using the test-block solver.
func resetBlock() (started, release chan struct{}) {
	blockMu.Lock()
	defer blockMu.Unlock()
	blockStarted = make(chan struct{}, 64)
	blockRelease = make(chan struct{})
	return blockStarted, blockRelease
}

func blockChans() (started, release chan struct{}) {
	blockMu.Lock()
	defer blockMu.Unlock()
	return blockStarted, blockRelease
}

type blockAlg struct{}

func (blockAlg) Name() string { return "test-block" }

func (blockAlg) Run(ctx context.Context, in *reward.Instance, k int) (*core.Result, error) {
	started, release := blockChans()
	started <- struct{}{}
	res := &core.Result{Algorithm: "test-block"}
	select {
	case <-ctx.Done():
		return res, ctx.Err()
	case <-release:
	}
	for j := 0; j < k; j++ {
		res.Centers = append(res.Centers, append(vec.V{}, in.Set.Point(0)...))
		res.Gains = append(res.Gains, 0)
	}
	return res, nil
}

type slowAlg struct{}

func (slowAlg) Name() string { return "test-slow" }

func (slowAlg) Run(ctx context.Context, in *reward.Instance, k int) (*core.Result, error) {
	res := &core.Result{Algorithm: "test-slow"}
	for j := 0; j < k; j++ {
		select {
		case <-ctx.Done():
			return res, ctx.Err()
		case <-time.After(15 * time.Millisecond):
		}
		res.Centers = append(res.Centers, append(vec.V{}, in.Set.Point(0)...))
		res.Gains = append(res.Gains, 1)
		res.Total++
	}
	return res, nil
}

func init() {
	resetBlock()
	for _, e := range []solver.Entry{
		{Name: "test-block", Summary: "test: blocks until released or cancelled",
			New: func(solver.Options) core.Algorithm { return blockAlg{} }},
		{Name: "test-slow", Summary: "test: one round per 15ms",
			New: func(solver.Options) core.Algorithm { return slowAlg{} }},
	} {
		if err := solver.Register(e); err != nil {
			panic(err)
		}
	}
}

// newTestServer mounts a Server on httptest and tears it down with the test.
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// instanceJSON builds a small n-user 2-D instance literal.
func instanceJSON(n int) string {
	var b strings.Builder
	b.WriteString(`{"dim":2,"points":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "[%d,%d]", i%5, i/5)
	}
	b.WriteString(`]}`)
	return b.String()
}

func postJSON(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// decodeSet parses an instance literal through the shared pointset codec.
func decodeSet(s string) (*pointset.Set, error) {
	var set pointset.Set
	if err := json.Unmarshal([]byte(s), &set); err != nil {
		return nil, err
	}
	return &set, nil
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

// TestSolveBasic: a real solver end to end — result fields, per-round
// telemetry, request-id echo, and agreement with a direct registry run.
func TestSolveBasic(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	body := fmt.Sprintf(`{"instance":%s,"radius":1.5,"k":3,"solver":"greedy2"}`, instanceJSON(25))
	resp, data := postJSON(t, ts.URL+"/v1/solve", body, map[string]string{"X-Request-ID": "test-42"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out serve.SolveResponseV1
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.RequestID != "test-42" || resp.Header.Get("X-Request-ID") != "test-42" {
		t.Errorf("request id not echoed: body %q header %q", out.RequestID, resp.Header.Get("X-Request-ID"))
	}
	if out.Partial {
		t.Error("un-deadlined solve marked partial")
	}
	if out.Solver != "greedy2" || out.Norm != "l2" || out.K != 3 || out.N != 25 {
		t.Errorf("echo fields wrong: %+v", out)
	}
	if len(out.Centers) != 3 || len(out.Gains) != 3 || len(out.Rounds) != 3 {
		t.Fatalf("want 3 centers/gains/rounds, got %d/%d/%d",
			len(out.Centers), len(out.Gains), len(out.Rounds))
	}
	var sum float64
	for i, rd := range out.Rounds {
		if rd.Round != i+1 || rd.Gain != out.Gains[i] {
			t.Errorf("round %d: %+v vs gain %v", i, rd, out.Gains[i])
		}
		if rd.WallNS <= 0 {
			t.Errorf("round %d: wall_ns = %d", i, rd.WallNS)
		}
		sum += rd.Gain
	}
	if out.Total <= 0 || out.Total > out.MaxReward {
		t.Errorf("total %v outside (0, %v]", out.Total, out.MaxReward)
	}
	// The served result must match a direct registry run bit for bit.
	set, err := decodeSet(instanceJSON(25))
	if err != nil {
		t.Fatal(err)
	}
	in, err := reward.NewInstance(set, norm.L2{}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := solver.New("greedy2", solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := alg.Run(context.Background(), in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Total != want.Total {
		t.Errorf("served total %v != direct %v", out.Total, want.Total)
	}
	for i := range want.Centers {
		for d := range want.Centers[i] {
			if out.Centers[i][d] != want.Centers[i][d] {
				t.Errorf("center %d differs: %v vs %v", i, out.Centers[i], want.Centers[i])
			}
		}
	}
}

// TestSolveDeadlinePartial: a deadline-bounded request answers 200 with the
// valid anytime prefix and partial: true.
func TestSolveDeadlinePartial(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	body := fmt.Sprintf(`{"instance":%s,"radius":1,"k":50,"solver":"test-slow","deadline_ms":60}`,
		instanceJSON(10))
	resp, data := postJSON(t, ts.URL+"/v1/solve", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out serve.SolveResponseV1
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Partial {
		t.Fatal("deadline-bounded solve not marked partial")
	}
	if len(out.Centers) == 0 || len(out.Centers) >= 50 {
		t.Errorf("partial prefix has %d centers, want 1..49", len(out.Centers))
	}
	if len(out.Gains) != len(out.Centers) {
		t.Errorf("gains %d != centers %d", len(out.Gains), len(out.Centers))
	}
}

// TestSolversCatalog: /v1/solvers returns exactly the registry names, sorted
// — the same strings cdgreedy -alg resolves.
func TestSolversCatalog(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	var out serve.SolversResponseV1
	if resp := getJSON(t, ts.URL+"/v1/solvers", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := solver.Names()
	if len(out.Solvers) != len(want) {
		t.Fatalf("catalog has %d entries, registry %d", len(out.Solvers), len(want))
	}
	for i, info := range out.Solvers {
		if info.Name != want[i] {
			t.Errorf("catalog[%d] = %q, want %q", i, info.Name, want[i])
		}
		if info.Summary == "" {
			t.Errorf("catalog[%d] %q has no summary", i, info.Name)
		}
	}
	// The exhaustive baseline must be served alongside the built-ins.
	found := false
	for _, info := range out.Solvers {
		if info.Name == "exhaustive" {
			found = true
		}
	}
	if !found {
		t.Error("exhaustive baseline missing from the served catalog")
	}
}

// TestHealthAndMetrics: the liveness and metrics endpoints answer with
// consistent shapes, and served requests show up in the counters.
func TestHealthAndMetrics(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{})
	var h serve.HealthV1
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if h.Status != "ok" || h.InFlight != 0 || h.UptimeNS <= 0 {
		t.Errorf("healthz = %+v", h)
	}
	body := fmt.Sprintf(`{"instance":%s,"radius":1,"k":1}`, instanceJSON(5))
	if resp, data := postJSON(t, ts.URL+"/v1/solve", body, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, data)
	}
	var snap obs.Snapshot
	if resp := getJSON(t, ts.URL+"/metrics", &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if snap.Counters[obs.CtrSrvRequests] < 1 || snap.Counters[obs.CtrSrvAccepted] < 1 {
		t.Errorf("request counters missing: %v", snap.Counters)
	}
	if snap.Counters[obs.CtrRounds] < 1 {
		t.Errorf("solver telemetry not aggregated into server metrics: %v", snap.Counters)
	}
	// request_start/request_end bracket the request in the event trace.
	var starts, ends int
	for _, e := range srv.Metrics().Snapshot().Events {
		switch e.Type {
		case obs.EvRequestStart:
			starts++
		case obs.EvRequestEnd:
			ends++
		}
	}
	if starts < 1 || starts != ends {
		t.Errorf("request events unbalanced: %d starts, %d ends", starts, ends)
	}
}

// TestChurnStreams: /v1/churn streams one JSON line per period plus a final
// summary, with warm starts honored inside the loop.
func TestChurnStreams(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	body := fmt.Sprintf(`{"instance":%s,"radius":1.5,"k":2,"periods":4,"arrival_rate":2,"depart_rate":1,"warm_start":true,"index":"grid","seed":7}`,
		instanceJSON(20))
	resp, data := postJSON(t, ts.URL+"/v1/churn", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var periods []serve.ChurnPeriodV1
	var summary *serve.ChurnSummaryV1
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var line serve.ChurnLineV1
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Error != nil:
			t.Fatalf("stream error: %+v", line.Error)
		case line.Period != nil:
			if summary != nil {
				t.Fatal("period line after summary")
			}
			periods = append(periods, *line.Period)
		case line.Summary != nil:
			summary = line.Summary
		default:
			t.Fatalf("empty stream line %q", sc.Text())
		}
	}
	if summary == nil {
		t.Fatal("stream ended without a summary line")
	}
	if len(periods) != 4 || summary.Periods != 4 || summary.Partial {
		t.Fatalf("want 4 complete periods, got %d streamed, summary %+v", len(periods), summary)
	}
	for i, p := range periods {
		if p.Period != i {
			t.Errorf("period line %d has index %d", i, p.Period)
		}
		if p.Objective <= 0 || p.Objective > p.MaxReward {
			t.Errorf("period %d objective %v outside (0, %v]", i, p.Objective, p.MaxReward)
		}
	}
	if summary.MeanSatisfaction <= 0 || summary.MeanSatisfaction > 1 {
		t.Errorf("mean satisfaction %v", summary.MeanSatisfaction)
	}
}

// TestChurnDeadlinePartial: a churn deadline ends the stream early and the
// summary carries partial: true.
func TestChurnDeadlinePartial(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	body := fmt.Sprintf(`{"instance":%s,"radius":1,"k":20,"periods":500,"arrival_rate":2,"depart_rate":1,"solver":"test-slow","deadline_ms":80}`,
		instanceJSON(10))
	resp, data := postJSON(t, ts.URL+"/v1/churn", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var summary *serve.ChurnSummaryV1
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var line serve.ChurnLineV1
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Summary != nil {
			summary = line.Summary
		}
	}
	if summary == nil {
		t.Fatal("no summary line")
	}
	if !summary.Partial {
		t.Error("deadline-bounded churn not marked partial")
	}
	if summary.Periods >= 500 {
		t.Errorf("completed %d periods under an 80ms deadline", summary.Periods)
	}
}
