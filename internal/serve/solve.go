package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/solver"
	"repro/internal/spatial"
	"repro/internal/vec"
)

// handleSolve answers POST /v1/solve: validate, consult the solve-result
// cache (a hit answers immediately, without a worker slot; concurrent
// identical requests collapse onto one solve), else wait for a worker slot
// and run the solver under the merged deadline/drain/client context, and
// answer with the result — complete, or the anytime prefix with "partial":
// true when the deadline (or a drain) cut the solve short. Complete results
// fill the cache; partial ones never do.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.begin(w, r, http.MethodPost, routeSolve)
	if !ok {
		return
	}
	var req SolveRequestV1
	if e := s.decodeBody(w, r, &req); e != nil {
		sc.fail(w, e)
		return
	}
	normName, nm, e := resolveNorm(req.Norm)
	if e != nil {
		sc.fail(w, e)
		return
	}
	solverName, e := resolveSolver(req.Solver)
	if e != nil {
		sc.fail(w, e)
		return
	}
	if req.K <= 0 {
		sc.fail(w, errf(http.StatusBadRequest, CodeBadK, "k = %d, want k >= 1", req.K))
		return
	}
	if e := checkRadius(req.Radius); e != nil {
		sc.fail(w, e)
		return
	}
	if req.Instance == nil || req.Instance.Len() == 0 {
		sc.fail(w, errf(http.StatusBadRequest, CodeBadInstance, "request has no instance"))
		return
	}
	warm, e := warmCenters(req.Options.WarmStart, req.Instance.Dim())
	if e != nil {
		sc.fail(w, e)
		return
	}
	box, e := wireBox(req.Options.BoxLo, req.Options.BoxHi, req.Instance.Dim())
	if e != nil {
		sc.fail(w, e)
		return
	}
	if err := req.Options.Validate(); err != nil {
		sc.fail(w, errf(http.StatusBadRequest, CodeBadRequest, "%v", err))
		return
	}
	useCache := s.cache != nil
	switch req.CacheControl {
	case "":
	case CacheControlBypass:
		if useCache {
			s.col.Count(obs.CtrCacheBypass, 1)
		}
		useCache = false
	default:
		sc.fail(w, errf(http.StatusBadRequest, CodeBadRequest,
			"cache_control = %q, want \"\" or %q", req.CacheControl, CacheControlBypass))
		return
	}

	ctx, cancel := s.solveContext(r, req.DeadlineMS)
	defer cancel()

	// The cache path: a hit (or a collapsed duplicate of an in-flight
	// solve) is answered here, before admission — cached requests never
	// consume a worker slot. A leader registers the fill flight and falls
	// through to the real solve.
	var fill *cache.Flight
	if useCache {
		key := cache.Fingerprint(req.Instance, cache.SolveParams{
			Norm:         normName,
			Radius:       req.Radius,
			K:            req.K,
			Solver:       solverName,
			Seed:         req.Options.Seed,
			GridPer:      req.Options.GridPer,
			BoxLo:        req.Options.BoxLo,
			BoxHi:        req.Options.BoxHi,
			Polish:       req.Options.Polish,
			DisablePrune: req.Options.DisablePrune,
			WarmStart:    req.Options.WarmStart,
			Shards:       req.Options.Shards,
			Halo:         req.Options.Halo,
			Refine:       req.Options.Refine,
		})
		cacheSpan := sc.span.Child("cache")
		val, flight, leader := s.cache.Lookup(key)
		if val != nil {
			s.col.Count(obs.CtrCacheHits, 1)
			cacheSpan.SetAttr("hit", 1)
			cacheSpan.End()
			s.answerCached(w, sc, val.(*SolveResponseV1))
			return
		}
		if leader {
			s.col.Count(obs.CtrCacheMisses, 1)
			cacheSpan.SetAttr("hit", 0)
			cacheSpan.End()
			fill = flight
			// Safety net: every exit path below must resolve the flight or
			// followers would wait out their deadlines. Deliver is
			// idempotent, so the success path's real Deliver wins.
			defer fill.Deliver(nil, 0)
		} else {
			// Collapsed onto an identical in-flight solve: wait for its
			// leader instead of taking a worker slot.
			select {
			case <-flight.Done():
				if v := flight.Value(); v != nil {
					s.col.Count(obs.CtrCacheHits, 1)
					s.col.Count(obs.CtrCacheCollapsed, 1)
					cacheSpan.SetAttr("hit", 1)
					cacheSpan.SetAttr("collapsed", 1)
					cacheSpan.End()
					s.answerCached(w, sc, v.(*SolveResponseV1))
					return
				}
				// The leader finished without a cacheable result (partial
				// or failed); solve independently.
				s.col.Count(obs.CtrCacheMisses, 1)
				cacheSpan.SetAttr("hit", 0)
				cacheSpan.End()
			case <-ctx.Done():
				cacheSpan.SetAttr("expired", 1)
				cacheSpan.End()
				w.Header().Set("Retry-After", retryAfterValue(s.cfg.retryAfter()))
				sc.fail(w, errf(http.StatusServiceUnavailable, CodeDeadlineQueued,
					"deadline expired while collapsed onto an identical in-flight solve: %v", ctx.Err()))
				return
			}
		}
	}

	queueSpan := sc.span.Child("queue")
	if err := s.adm.acquire(ctx); err != nil {
		queueSpan.SetAttr("expired", 1)
		queueSpan.End()
		w.Header().Set("Retry-After", retryAfterValue(s.cfg.retryAfter()))
		sc.fail(w, errf(http.StatusServiceUnavailable, CodeDeadlineQueued,
			"deadline expired while queued for a worker slot: %v", err))
		return
	}
	queueSpan.End()
	defer s.adm.release()

	// Per-request metrics ride alongside the server-wide collector: the
	// request's rounds come from its own snapshot, the server's /metrics
	// aggregates everything.
	reqMetrics := obs.NewMetrics()
	col := obs.Multi(s.col, reqMetrics)
	in, err := reward.NewInstance(req.Instance, nm, req.Radius)
	if err != nil {
		sc.fail(w, errf(http.StatusBadRequest, CodeBadInstance, "%v", err))
		return
	}
	in.SetCollector(col)
	// A grid finder accelerates coverage evaluation without changing any
	// result bit — and keeps a forwarded shard solve on par with the
	// coordinator's local path, which indexes its sub-instances the same way.
	if g, gerr := spatial.NewGrid(req.Instance.Points(), req.Radius); gerr == nil {
		in.SetFinder(g)
	}
	solverOpts := req.Options.SolverOptions()
	solverOpts.Obs = col
	solverOpts.WarmStart = warm
	solverOpts.Box = box
	solverOpts.Remote = s.clusterRemote(sc.id, solverName, normName, req.Options)
	alg, err := solver.New(solverName, solverOpts)
	if err != nil {
		// Unreachable: resolveSolver already checked the catalog.
		sc.fail(w, errf(http.StatusBadRequest, CodeUnknownSolver, "%v", err))
		return
	}

	// The solve span is the parent every per-round span hangs off: the
	// solver's roundScope picks it up from the context, so one request
	// yields a request.solve → solve → round tree keyed by the request ID.
	solveSpan := sc.span.Child("solve")
	solveSpan.SetAttr("k", float64(req.K))
	solveSpan.SetAttr("n", float64(in.N()))
	start := time.Now()
	res, runErr := alg.Run(obs.ContextWithSpan(ctx, solveSpan), in, req.K)
	wall := time.Since(start).Nanoseconds()
	partial := false
	if runErr != nil {
		if res == nil || ctx.Err() == nil {
			solveSpan.SetAttr("failed", 1)
			solveSpan.End()
			sc.fail(w, errf(http.StatusInternalServerError, CodeSolveFailed, "%v", runErr))
			return
		}
		// The anytime contract: a cancelled solve returns the valid prefix
		// it committed. That is a successful (partial) response.
		partial = true
		s.col.Count(obs.CtrSrvPartial, 1)
		solveSpan.SetAttr("partial", 1)
	}
	solveSpan.SetAttr("rounds", float64(len(res.Gains)))
	solveSpan.SetAttr("total", res.Total)
	solveSpan.End()

	resp := SolveResponseV1{
		RequestID: sc.id,
		Solver:    solverName,
		Norm:      normName,
		K:         req.K,
		Radius:    req.Radius,
		N:         in.N(),
		Centers:   centersWire(res.Centers),
		Gains:     append([]float64{}, res.Gains...),
		Total:     res.Total,
		MaxReward: req.Instance.TotalWeight(),
		Partial:   partial,
		Rounds:    roundsFromEvents(res, reqMetrics.Snapshot(), sc.id),
		WallNS:    wall,
	}
	if fill != nil && !partial {
		// Cache the complete result (the anytime prefix of a cut-short solve
		// is valid but not the full answer, so partials are never cached).
		// The stored copy drops the request ID: it belongs to whichever
		// request is being answered, not to the solve that produced the body.
		stored := resp
		stored.RequestID = ""
		size := int64(len(mustMarshal(stored)))
		fill.Deliver(&stored, size)
	}
	writeJSON(w, sc.id, http.StatusOK, resp)
	sc.end(http.StatusOK)
}

// answerCached writes a cached solve result as this request's response: every
// field of the original (complete) solve bit-identical, with this request's
// ID and the cached flag stamped on. The shallow copy shares the cached
// slices, which are never mutated after Deliver.
func (s *Server) answerCached(w http.ResponseWriter, sc *reqScope, stored *SolveResponseV1) {
	resp := *stored
	resp.RequestID = sc.id
	resp.Cached = true
	writeJSON(w, sc.id, http.StatusOK, resp)
	sc.end(http.StatusOK)
}

// mustMarshal sizes a response for the cache's byte budget. SolveResponseV1
// contains only JSON-encodable fields, so Marshal cannot fail.
func mustMarshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// resolveNorm maps the wire norm name (default l2) to a norm.Norm.
func resolveNorm(name string) (string, norm.Norm, *apiErr) {
	if name == "" {
		name = "l2"
	}
	nm, err := norm.ByName(name)
	if err != nil {
		return "", nil, errf(http.StatusBadRequest, CodeBadNorm,
			"unknown norm %q (have: l1 | l2 | linf)", name)
	}
	return name, nm, nil
}

// resolveSolver maps the wire solver name (default greedy2) to a catalog
// name, answering unknown names with the same sorted-catalog text as
// cdgreedy -alg. The composite form "sharded(<inner>)" is accepted whenever
// the inner name is in the catalog.
func resolveSolver(name string) (string, *apiErr) {
	if name == "" {
		name = "greedy2"
	}
	if err := solver.Check(name); err != nil {
		return "", errf(http.StatusBadRequest, CodeUnknownSolver, "%v", err)
	}
	return name, nil
}

func checkRadius(r float64) *apiErr {
	if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return errf(http.StatusBadRequest, CodeBadRadius,
			"radius = %v, want positive and finite", r)
	}
	return nil
}

// warmCenters converts wire warm-start rows, enforcing the instance dim.
func warmCenters(rows [][]float64, dim int) ([]vec.V, *apiErr) {
	if len(rows) == 0 {
		return nil, nil
	}
	out := make([]vec.V, len(rows))
	for i, row := range rows {
		if len(row) != dim {
			return nil, errf(http.StatusBadRequest, CodeDimMismatch,
				"warm_start[%d] has dim %d, want %d", i, len(row), dim)
		}
		out[i] = vec.V(append([]float64{}, row...))
	}
	return out, nil
}

// wireBox converts optional box_lo/box_hi to a pointset.Box (zero Box when
// absent, meaning data bounds).
func wireBox(lo, hi []float64, dim int) (pointset.Box, *apiErr) {
	if len(lo) == 0 && len(hi) == 0 {
		return pointset.Box{}, nil
	}
	if len(lo) != dim || len(hi) != dim {
		return pointset.Box{}, errf(http.StatusBadRequest, CodeDimMismatch,
			"box_lo/box_hi have dims %d/%d, want %d", len(lo), len(hi), dim)
	}
	b := pointset.Box{Lo: vec.V(append([]float64{}, lo...)), Hi: vec.V(append([]float64{}, hi...))}
	if !b.Valid() {
		return pointset.Box{}, errf(http.StatusBadRequest, CodeBadRequest,
			"box_lo must be <= box_hi component-wise")
	}
	return b, nil
}

func centersWire(centers []vec.V) [][]float64 {
	out := make([][]float64, len(centers))
	for i, c := range centers {
		out[i] = append([]float64{}, c...)
	}
	return out
}

// roundsFromEvents builds per-round telemetry: gains from the result (the
// ground truth), wall times joined in from the request's round_end events
// when the solver emitted them. Warm-started results adopted from the
// carried-over centers keep zero wall times — no cold rounds produced them.
//
// Events are matched by trace (the request ID), not by round number alone:
// the per-request collector should only ever see this request's events, but
// a solver that delegates to an inner algorithm — or a collector wired more
// widely than intended — can surface round_end events from another solve
// whose round numbers happen to collide. Those must not overwrite this
// request's wall times.
func roundsFromEvents(res *core.Result, snap obs.Snapshot, trace string) []RoundV1 {
	rounds := make([]RoundV1, len(res.Gains))
	for j, g := range res.Gains {
		rounds[j] = RoundV1{Round: j + 1, Gain: g}
	}
	for _, e := range snap.Events {
		if e.Type != obs.EvRoundEnd || e.Trace != trace || e.Round < 1 || e.Round > len(rounds) {
			continue
		}
		rounds[e.Round-1].WallNS = int64(e.Fields["wall_ns"])
	}
	return rounds
}
