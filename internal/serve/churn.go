package serve

import (
	"encoding/json"
	"net/http"

	"repro/internal/broadcast"
	"repro/internal/obs"
	"repro/internal/trace"
)

// handleChurn answers POST /v1/churn with a stream of chunked JSON lines
// (Content-Type application/x-ndjson): one ChurnLineV1 per completed period,
// flushed as the loop commits it, then a final summary line. Warm starts are
// carried across periods inside the loop when requested. A deadline or drain
// mid-run ends the stream early with "partial": true on the summary — the
// periods already streamed are complete results.
//
// All validation happens before the 200 header is written, so schema errors
// still answer with proper HTTP statuses; only failures after streaming
// began are reported in-band as an error line.
func (s *Server) handleChurn(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.begin(w, r, http.MethodPost, routeChurn)
	if !ok {
		return
	}
	var req ChurnRequestV1
	if e := s.decodeBody(w, r, &req); e != nil {
		sc.fail(w, e)
		return
	}
	_, nm, e := resolveNorm(req.Norm)
	if e != nil {
		sc.fail(w, e)
		return
	}
	solverName, e := resolveSolver(req.Solver)
	if e != nil {
		sc.fail(w, e)
		return
	}
	if req.K <= 0 {
		sc.fail(w, errf(http.StatusBadRequest, CodeBadK, "k = %d, want k >= 1", req.K))
		return
	}
	if e := checkRadius(req.Radius); e != nil {
		sc.fail(w, e)
		return
	}
	if req.Instance == nil || req.Instance.Len() == 0 {
		sc.fail(w, errf(http.StatusBadRequest, CodeBadInstance, "request has no instance"))
		return
	}
	box, e := wireBox(req.BoxLo, req.BoxHi, req.Instance.Dim())
	if e != nil {
		sc.fail(w, e)
		return
	}
	if len(box.Lo) == 0 {
		lo, hi := req.Instance.Bounds()
		box.Lo, box.Hi = lo, hi
	}
	tr, err := trace.FromSet(req.Instance, box)
	if err != nil {
		sc.fail(w, errf(http.StatusBadRequest, CodeBadInstance, "%v", err))
		return
	}
	cfg := broadcast.ChurnConfig{
		K:           req.K,
		Radius:      req.Radius,
		Norm:        nm,
		Periods:     req.Periods,
		ArrivalRate: req.ArrivalRate,
		DepartRate:  req.DepartRate,
		Solver:      solverName,
		Workers:     req.Workers,
		Seed:        req.Seed,
		WarmStart:   req.WarmStart,
		Index:       req.Index,
		Obs:         s.col,
	}
	// Run the loop's own validation up front (periods, rates, index) so the
	// client gets a 400 rather than a mid-stream error line.
	if err := cfg.Validate(); err != nil {
		sc.fail(w, errf(http.StatusBadRequest, CodeBadRequest, "%v", err))
		return
	}

	ctx, cancel := s.solveContext(r, req.DeadlineMS)
	defer cancel()
	queueSpan := sc.span.Child("queue")
	if err := s.adm.acquire(ctx); err != nil {
		queueSpan.SetAttr("expired", 1)
		queueSpan.End()
		w.Header().Set("Retry-After", retryAfterValue(s.cfg.retryAfter()))
		sc.fail(w, errf(http.StatusServiceUnavailable, CodeDeadlineQueued,
			"deadline expired while queued for a worker slot: %v", err))
		return
	}
	queueSpan.End()
	defer s.adm.release()

	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	wroteHeader := false
	writeLine := func(line ChurnLineV1) {
		if !wroteHeader {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("X-Request-ID", sc.id)
			w.WriteHeader(http.StatusOK)
			wroteHeader = true
		}
		_ = enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	cfg.OnPeriod = func(ps broadcast.ChurnPeriodStat) {
		writeLine(ChurnLineV1{Period: &ChurnPeriodV1{
			Period:         ps.Period,
			N:              ps.N,
			Objective:      ps.Objective,
			MaxReward:      ps.MaxRwd,
			CarryObjective: ps.CarryObjective,
			Arrivals:       ps.Arrivals,
			Departures:     ps.Departures,
		}})
	}

	// The churn span parents the loop's per-period spans (RunChurn picks it
	// up from the context) and stamps its events with the request ID.
	churnSpan := sc.span.Child("churn")
	churnSpan.SetAttr("periods", float64(req.Periods))
	m, runErr := broadcast.RunChurn(obs.ContextWithSpan(ctx, churnSpan), tr, cfg)
	if m != nil {
		churnSpan.SetAttr("completed_periods", float64(len(m.Periods)))
	}
	churnSpan.End()
	if runErr != nil && (m == nil || ctx.Err() == nil) {
		// A real failure, not a cancellation.
		if !wroteHeader {
			sc.fail(w, errf(http.StatusInternalServerError, CodeSolveFailed, "%v", runErr))
			return
		}
		writeLine(ChurnLineV1{Error: &ErrorV1{Code: CodeSolveFailed, Message: runErr.Error()}})
		sc.end(http.StatusOK)
		return
	}
	partial := runErr != nil
	if partial {
		s.col.Count(obs.CtrSrvPartial, 1)
	}
	writeLine(ChurnLineV1{Summary: &ChurnSummaryV1{
		RequestID:         sc.id,
		Solver:            m.Solver,
		Periods:           len(m.Periods),
		MeanSatisfaction:  m.MeanSatisfaction,
		MeanPopulation:    m.MeanPopulation,
		TotalArrivals:     m.TotalArrivals,
		TotalDepartures:   m.TotalDepartures,
		IncrementalDeltas: m.IncrementalDeltas,
		FullRebuilds:      m.FullRebuilds,
		Partial:           partial,
	}})
	sc.end(http.StatusOK)
}
