package serve

import (
	"net/http"

	"repro/internal/clusterd"
	"repro/internal/core"
	"repro/internal/solver"
)

// handleClusterHealth answers GET /v1/cluster/health — the gossip probe of
// cluster mode. Like /healthz it never blocks and always answers 200; the
// capacity numbers (worker slots, in-flight, queued, queue depth) are what a
// coordinating peer ranks this node by, and Draining tells peers to stop
// forwarding here. A standalone node answers too (empty Advertise, no
// peers), so probes need no mode detection.
func (s *Server) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, "", errf(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"%s %s: use GET", r.Method, r.URL.Path))
		return
	}
	h := ClusterHealthV1{
		Draining:   s.draining.Load(),
		Workers:    s.cfg.workers(),
		InFlight:   int(s.inFlight.Load()),
		Queued:     s.adm.queued(),
		QueueDepth: s.cfg.queueDepth(),
	}
	if cl := s.cfg.Cluster; cl != nil {
		h.Advertise = cl.Advertise()
		h.Peers = cl.Snapshot()
	}
	writeJSON(w, "", http.StatusOK, h)
}

// clusterRemote builds the peer-forwarding PartSolver for one solve request,
// or nil when the solve stays local: no cluster configured, no peers, or not
// a sharded solve (shards <= 1 — nothing to fan out). The forwarded request
// template strips the coordinator-only options: the sharding knobs (a
// forwarded shard runs single-shot), the warm start (applied once around the
// whole pipeline, never per shard), and Workers (each peer sizes its own
// parallelism, which cannot change results — solvers are bit-identical
// across worker counts). The per-shard derived seed is stamped in by the
// PartSolver itself.
func (s *Server) clusterRemote(requestID, solverName, normName string, opts OptionsV1) core.PartSolver {
	cl := s.cfg.Cluster
	if cl == nil || cl.NumPeers() == 0 {
		return nil
	}
	if solver.EffectiveShards(solverName, opts.Shards) <= 1 {
		return nil
	}
	inner, composite := solver.ShardedInner(solverName)
	if !composite {
		inner = solverName
	}
	fwd := opts
	fwd.Shards, fwd.Halo, fwd.WarmStart, fwd.Workers = 0, 0, nil, 0
	return cl.PartSolver(clusterd.ForwardSpec{
		Solver:    inner,
		Norm:      normName,
		Options:   fwd,
		RequestID: requestID,
	})
}
