// Package serve is the network face of the solver stack: a stdlib-only HTTP
// service exposing the registry catalog behind a small versioned JSON API.
//
//	POST /v1/solve    one instance, one solver, per-request deadline
//	POST /v1/churn    churn-loop simulation streamed as chunked JSON lines
//	GET  /v1/solvers  the registry catalog (same names cdgreedy -alg takes)
//	GET  /healthz     liveness + drain state (always 200)
//	GET  /metrics     obs.Metrics snapshot of the whole server
//	GET  /debug/pprof CPU/heap profiling
//
// The robustness core is explicit admission control: at most Workers solves
// run concurrently, at most QueueDepth more may wait, and everything beyond
// that is answered 429 with a Retry-After header instead of an unbounded
// goroutine pile. Per-request deadlines ride the solver stack's anytime
// contract — a solve cut off mid-run answers 200 with the committed prefix
// and "partial": true. Drain (SIGTERM in cdserved) stops admission, lets
// in-flight solves finish within a grace period, then cancels them; their
// clients also get valid partial results.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/clusterd"
	"repro/internal/obs"
	"repro/internal/pointset"
	"repro/internal/solver"

	// The serving catalog must include the exhaustive baseline alongside the
	// registry's built-ins.
	_ "repro/internal/exhaustive"
)

// Defaults for Config's zero values.
const (
	DefaultQueueDepth  = 64
	DefaultMaxBody     = 8 << 20 // 8 MiB of JSON is a ~100k-user instance
	DefaultRetryAfter  = 1 * time.Second
	DefaultMaxDeadline = 0 // uncapped
	DefaultCacheBytes  = cache.DefaultMaxBytes
)

// Config parameterizes a Server. The zero value is usable: all-CPU worker
// slots, a 64-deep queue, 8 MiB bodies, uncapped deadlines, telemetry kept
// only in the server's own /metrics collector.
type Config struct {
	// Workers bounds the number of concurrently running solves; <= 0 uses
	// one slot per CPU.
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// slot beyond the running ones; past it requests are answered 429.
	// 0 means DefaultQueueDepth; negative means no waiting at all.
	QueueDepth int
	// MaxBody caps request-body bytes (413 past it); 0 means DefaultMaxBody.
	MaxBody int64
	// RetryAfter is the hint attached to 429/503 responses; 0 means
	// DefaultRetryAfter.
	RetryAfter time.Duration
	// MaxDeadline, when > 0, caps every request's deadline: requests asking
	// for more (or for none) run under this cap instead.
	MaxDeadline time.Duration
	// CacheBytes is the solve-result cache's byte budget: complete solve
	// responses are memoized by instance fingerprint and identical requests
	// are answered from memory (and collapsed onto one run while it is in
	// flight). 0 means DefaultCacheBytes; negative disables caching and
	// collapsing entirely.
	CacheBytes int64
	// Obs, when live, receives everything the server's own /metrics
	// collector sees — counters, request events, solver telemetry — so an
	// operator can stream the event trace to a JSONL sink.
	Obs obs.Collector
	// Cluster, when non-nil, puts the server in cluster mode: GET
	// /v1/cluster/health reports its advertise URL and peer table, and
	// sharded solves (shards > 1) fan their shard solves out to live peers
	// through it, falling back locally per shard when a peer fails. The
	// caller owns the cluster's lifecycle (Start/Stop).
	Cluster *clusterd.Cluster
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) queueDepth() int {
	switch {
	case c.QueueDepth == 0:
		return DefaultQueueDepth
	case c.QueueDepth < 0:
		return 0
	}
	return c.QueueDepth
}

func (c Config) maxBody() int64 {
	if c.MaxBody > 0 {
		return c.MaxBody
	}
	return DefaultMaxBody
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return DefaultRetryAfter
}

func (c Config) cacheBytes() int64 {
	switch {
	case c.CacheBytes == 0:
		return DefaultCacheBytes
	case c.CacheBytes < 0:
		return 0
	}
	return c.CacheBytes
}

// Server is the HTTP service. Construct with New, mount Handler (httptest)
// or call Serve (cdserved), and stop with Drain.
type Server struct {
	cfg     Config
	metrics *obs.Metrics
	col     obs.Collector // metrics fanned out with cfg.Obs
	cache   *cache.Cache  // nil when Config.CacheBytes < 0
	adm     *admission
	mux     *http.ServeMux
	httpSrv *http.Server
	start   time.Time
	routes  map[string]*routeStats

	reqSeq   atomic.Uint64
	inFlight atomic.Int64
	draining atomic.Bool

	wg           sync.WaitGroup // tracks v1 request handlers, not conns
	solveCtx     context.Context
	cancelSolves context.CancelFunc
}

// routeStats precomputes the per-route metric names (requests, latency,
// in-flight, admission rejects) so the hot path never formats strings, and
// carries the route's own in-flight count.
type routeStats struct {
	requests string // counter
	rejected string // counter: 429 queue_full + 503 draining
	latency  string // timer
	inFlight string // gauge
	n        atomic.Int64
}

func newRouteStats(route string) *routeStats {
	return &routeStats{
		requests: obs.SrvRouteRequests(route),
		rejected: obs.SrvRouteRejected(route),
		latency:  obs.SrvRouteRequestNS(route),
		inFlight: obs.SrvRouteInFlight(route),
	}
}

// New builds a Server from cfg. It never listens by itself — pass Handler to
// an httptest.Server or a net listener to Serve.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg,
		metrics: obs.NewMetrics(),
		adm:     newAdmission(cfg.workers(), cfg.queueDepth()),
		mux:     http.NewServeMux(),
		start:   time.Now(),
		routes: map[string]*routeStats{
			routeSolve: newRouteStats(routeSolve),
			routeChurn: newRouteStats(routeChurn),
		},
	}
	s.col = obs.Multi(s.metrics, cfg.Obs)
	if cfg.Cluster != nil {
		// Cluster counters must land in this server's /metrics snapshot even
		// when the caller wired no shared collector of its own.
		cfg.Cluster.AddObs(s.metrics)
	}
	if budget := cfg.cacheBytes(); budget > 0 {
		s.cache = cache.New(budget, s.col)
	}
	s.solveCtx, s.cancelSolves = context.WithCancel(context.Background())
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}

	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/churn", s.handleChurn)
	s.mux.HandleFunc("/v1/solvers", s.handleSolvers)
	s.mux.HandleFunc("/v1/cluster/health", s.handleClusterHealth)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the root handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's own collector (what /metrics snapshots).
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Serve accepts connections on ln until Drain. A clean shutdown returns nil.
func (s *Server) Serve(ln net.Listener) error {
	err := s.httpSrv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain shuts the server down gracefully: new v1 requests are refused with
// 503 immediately, in-flight solves get grace to finish on their own, then
// their contexts are cancelled so they return anytime partial results. Drain
// blocks until every v1 handler has written its response (or ctx expires)
// and the listener is closed.
func (s *Server) Drain(ctx context.Context, grace time.Duration) error {
	s.draining.Store(true)
	if grace > 0 {
		t := time.AfterFunc(grace, s.cancelSolves)
		defer t.Stop()
	} else {
		s.cancelSolves()
	}
	defer s.cancelSolves()

	handlersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(handlersDone)
	}()
	err := s.httpSrv.Shutdown(ctx)
	select {
	case <-handlersDone:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// apiErr is an HTTP status plus the machine-readable v1 error payload.
type apiErr struct {
	status int
	code   string
	msg    string
}

func errf(status int, code, format string, args ...any) *apiErr {
	return &apiErr{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// v1 route labels for the per-route serving series and span names.
const (
	routeSolve = "solve"
	routeChurn = "churn"
)

// reqScope tracks one admitted v1 request: id, telemetry, slot release, and
// the root span of the request's trace tree.
type reqScope struct {
	s       *Server
	id      string
	route   *routeStats
	span    *obs.Span
	start   time.Time
	release func()
	done    bool
}

// begin runs the shared admission path for a v1 solve/churn request:
// method check, drain check, queue admission (429 on saturation), request-id
// assignment, and request_start telemetry. route labels the per-route series
// and names the request's root span ("request.solve" / "request.churn").
// When ok is false the response has already been written.
func (s *Server) begin(w http.ResponseWriter, r *http.Request, method, route string) (*reqScope, bool) {
	rt := s.routes[route]
	s.col.Count(obs.CtrSrvRequests, 1)
	s.col.Count(rt.requests, 1)
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, "", errf(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"%s %s: use %s", r.Method, r.URL.Path, method))
		return nil, false
	}
	id := requestID(r, &s.reqSeq)
	if s.draining.Load() {
		s.col.Count(obs.CtrSrvDraining, 1)
		s.col.Count(rt.rejected, 1)
		w.Header().Set("Retry-After", retryAfterValue(s.cfg.retryAfter()))
		writeError(w, id, errf(http.StatusServiceUnavailable, CodeDraining,
			"server is draining; retry against another instance"))
		return nil, false
	}
	if !s.adm.tryAdmit() {
		s.col.Count(obs.CtrSrvQueueFull, 1)
		s.col.Count(rt.rejected, 1)
		w.Header().Set("Retry-After", retryAfterValue(s.cfg.retryAfter()))
		writeError(w, id, errf(http.StatusTooManyRequests, CodeQueueFull,
			"admission queue full (%d running + %d queued); retry after backoff",
			s.cfg.workers(), s.cfg.queueDepth()))
		return nil, false
	}
	s.col.Count(obs.CtrSrvAccepted, 1)
	s.wg.Add(1)
	n := s.inFlight.Add(1)
	s.col.Gauge(obs.GaugeSrvInFlight, float64(n))
	s.col.Gauge(rt.inFlight, float64(rt.n.Add(1)))
	s.col.Gauge(obs.GaugeSrvQueued, float64(s.adm.queued()))
	s.col.Emit(obs.Event{Type: obs.EvRequestStart, Alg: id, Trace: id,
		Fields: map[string]float64{"in_flight": float64(n)}})
	span := obs.StartSpan(s.col, id, "request."+route)
	return &reqScope{s: s, id: id, route: rt, span: span,
		start: time.Now(), release: s.adm.releaseAdmit}, true
}

// end closes the scope; status is the HTTP code the handler answered with.
// Idempotent so handlers can defer it and still end early on error paths.
func (sc *reqScope) end(status int) {
	if sc.done {
		return
	}
	sc.done = true
	sc.release()
	n := sc.s.inFlight.Add(-1)
	wall := time.Since(sc.start).Nanoseconds()
	sc.s.col.Gauge(obs.GaugeSrvInFlight, float64(n))
	sc.s.col.Gauge(sc.route.inFlight, float64(sc.route.n.Add(-1)))
	sc.s.col.Gauge(obs.GaugeSrvQueued, float64(sc.s.adm.queued()))
	sc.s.col.TimeNS(obs.TimSrvRequest, wall)
	sc.s.col.TimeNS(sc.route.latency, wall)
	sc.s.col.Emit(obs.Event{Type: obs.EvRequestEnd, Alg: sc.id, Trace: sc.id,
		Fields: map[string]float64{"status": float64(status), "wall_ns": float64(wall)}})
	sc.span.SetAttr("status", float64(status))
	sc.span.End()
	sc.s.wg.Done()
}

// fail answers the request with a v1 error and closes the scope.
func (sc *reqScope) fail(w http.ResponseWriter, e *apiErr) {
	if e.status == http.StatusBadRequest || e.status == http.StatusRequestEntityTooLarge {
		sc.s.col.Count(obs.CtrSrvBadRequest, 1)
	}
	writeError(w, sc.id, e)
	sc.end(e.status)
}

// requestID takes the client's X-Request-ID when it is short and printable,
// else mints req-<seq>.
func requestID(r *http.Request, seq *atomic.Uint64) string {
	id := r.Header.Get("X-Request-ID")
	if id != "" && len(id) <= 128 && !strings.ContainsFunc(id, func(c rune) bool {
		return c < 0x20 || c > 0x7e
	}) {
		return id
	}
	return fmt.Sprintf("req-%08x", seq.Add(1))
}

func retryAfterValue(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// decodeBody strictly decodes the request body into dst under the body cap,
// mapping failures to wire error codes.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) *apiErr {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBody())
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(dst)
	if err == nil {
		return nil
	}
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		return errf(http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
			"request body exceeds %d bytes", tooBig.Limit)
	case errors.Is(err, pointset.ErrDim):
		return errf(http.StatusBadRequest, CodeDimMismatch, "%v", err)
	case strings.Contains(err.Error(), "pointset:"):
		// The instance decoded as JSON but failed pointset validation.
		return errf(http.StatusBadRequest, CodeBadInstance, "%v", err)
	default:
		return errf(http.StatusBadRequest, CodeBadJSON, "%v", err)
	}
}

func writeJSON(w http.ResponseWriter, id string, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	if id != "" {
		w.Header().Set("X-Request-ID", id)
	}
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, id string, e *apiErr) {
	writeJSON(w, id, e.status, ErrorResponseV1{Error: ErrorV1{Code: e.code, Message: e.msg}})
}

// handleSolvers answers GET /v1/solvers with the sorted registry catalog —
// byte-for-byte the names cdgreedy -alg and cdbench resolve.
func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, "", errf(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"%s %s: use GET", r.Method, r.URL.Path))
		return
	}
	resp := SolversResponseV1{Solvers: []SolverInfoV1{}}
	for _, name := range solver.Names() {
		e, _ := solver.Lookup(name)
		resp.Solvers = append(resp.Solvers, SolverInfoV1{Name: name, Summary: e.Summary})
	}
	writeJSON(w, "", http.StatusOK, resp)
}

// handleHealth answers GET /healthz. It never blocks on the worker pool and
// always answers 200 so load balancers can distinguish "saturated but alive"
// (429 on /v1/solve, ok here) from dead.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	uptime := time.Since(s.start)
	writeJSON(w, "", http.StatusOK, HealthV1{
		Status:        status,
		Draining:      s.draining.Load(),
		InFlight:      int(s.inFlight.Load()),
		Queued:        s.adm.queued(),
		UptimeNS:      uptime.Nanoseconds(),
		UptimeSeconds: uptime.Seconds(),
	})
}

// handleMetrics answers GET /metrics with the server collector's state,
// content-negotiated: a Prometheus scraper asking for text/plain (or
// OpenMetrics) gets the text exposition format, everything else gets the
// JSON snapshot exactly as before.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if promAccepted(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", obs.PromContentType)
		_ = s.metrics.WriteProm(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.metrics.WriteJSON(w)
}

// promAccepted reports whether the Accept header asks for the Prometheus
// text format: any listed media type of text/plain or
// application/openmetrics-text. Wildcards and an absent header keep the
// JSON default, so existing clients are untouched.
func promAccepted(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		switch strings.TrimSpace(mt) {
		case "text/plain", "application/openmetrics-text":
			return true
		}
	}
	return false
}

// solveContext merges the three cancellation sources a solve runs under:
// the client connection (r.Context), the server's drain cancellation, and
// the request's own deadline (clamped by cfg.MaxDeadline).
func (s *Server) solveContext(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.solveCtx, cancel)
	d := time.Duration(deadlineMS) * time.Millisecond
	if s.cfg.MaxDeadline > 0 && (d <= 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	if d > 0 {
		tctx, tcancel := context.WithTimeout(ctx, d)
		return tctx, func() { tcancel(); stop(); cancel() }
	}
	return ctx, func() { stop(); cancel() }
}
