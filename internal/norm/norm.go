// Package norm implements the p-norm family used by the paper to measure
// interest distance between broadcast contents and user interests
// (paper §III.B). The 1-norm (Manhattan) and 2-norm (Euclidean) are the
// paper's focus; the ∞-norm and arbitrary p ≥ 1 are supported as the paper's
// "general p-norm" extension.
package norm

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Norm measures lengths and distances in interest space. Implementations
// must satisfy the norm axioms: non-negativity, definiteness, absolute
// homogeneity, and the triangle inequality.
type Norm interface {
	// Len returns ‖v‖.
	Len(v vec.V) float64
	// Dist returns ‖a − b‖ without allocating an intermediate vector.
	Dist(a, b vec.V) float64
	// P reports the norm's exponent; math.Inf(1) for the ∞-norm.
	P() float64
	// Name is a short human-readable identifier such as "1-norm".
	Name() string
}

// L1 is the Manhattan (taxicab) norm: Σ|x_i|.
type L1 struct{}

// Len implements Norm.
func (L1) Len(v vec.V) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Dist implements Norm.
func (L1) Dist(a, b vec.V) float64 {
	mustMatch(a, b)
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// P implements Norm.
func (L1) P() float64 { return 1 }

// Name implements Norm.
func (L1) Name() string { return "1-norm" }

// L2 is the Euclidean norm: sqrt(Σ x_i²), the paper's physical-distance model.
type L2 struct{}

// Len implements Norm.
func (L2) Len(v vec.V) float64 { return v.Norm2() }

// Dist implements Norm.
func (L2) Dist(a, b vec.V) float64 { return a.Dist2(b) }

// P implements Norm.
func (L2) P() float64 { return 2 }

// Name implements Norm.
func (L2) Name() string { return "2-norm" }

// LInf is the Chebyshev norm: max|x_i|.
type LInf struct{}

// Len implements Norm.
func (LInf) Len(v vec.V) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Dist implements Norm.
func (LInf) Dist(a, b vec.V) float64 {
	mustMatch(a, b)
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// P implements Norm.
func (LInf) P() float64 { return math.Inf(1) }

// Name implements Norm.
func (LInf) Name() string { return "inf-norm" }

// LP is the general p-norm (Σ|x_i|^p)^(1/p) for finite p ≥ 1.
type LP struct {
	Exp float64
}

// NewLP returns the p-norm for the given exponent. It returns an error when
// p < 1 (not a norm: the triangle inequality fails) or p is not finite.
func NewLP(p float64) (LP, error) {
	if math.IsNaN(p) || math.IsInf(p, 0) || p < 1 {
		return LP{}, fmt.Errorf("norm: invalid exponent p=%v (need finite p >= 1)", p)
	}
	return LP{Exp: p}, nil
}

// Len implements Norm.
func (n LP) Len(v vec.V) float64 {
	var s float64
	for _, x := range v {
		s += math.Pow(math.Abs(x), n.Exp)
	}
	return math.Pow(s, 1/n.Exp)
}

// Dist implements Norm.
func (n LP) Dist(a, b vec.V) float64 {
	mustMatch(a, b)
	var s float64
	for i := range a {
		s += math.Pow(math.Abs(a[i]-b[i]), n.Exp)
	}
	return math.Pow(s, 1/n.Exp)
}

// P implements Norm.
func (n LP) P() float64 { return n.Exp }

// Name implements Norm.
func (n LP) Name() string { return fmt.Sprintf("%g-norm", n.Exp) }

// ForP returns the most efficient Norm implementation for the exponent:
// the specialized L1/L2/LInf types when they apply, LP otherwise.
func ForP(p float64) (Norm, error) {
	switch {
	case p == 1:
		return L1{}, nil
	case p == 2:
		return L2{}, nil
	case math.IsInf(p, 1):
		return LInf{}, nil
	default:
		return NewLP(p)
	}
}

// ByName resolves "1-norm", "2-norm", "inf-norm", "l1", "l2", "linf" (case
// as written) to a Norm. It is used by the CLI flag parsers.
func ByName(name string) (Norm, error) {
	switch name {
	case "1-norm", "l1", "L1", "1":
		return L1{}, nil
	case "2-norm", "l2", "L2", "2":
		return L2{}, nil
	case "inf-norm", "linf", "Linf", "inf":
		return LInf{}, nil
	default:
		return nil, fmt.Errorf("norm: unknown norm %q", name)
	}
}

func mustMatch(a, b vec.V) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("norm: dimension mismatch %d vs %d", len(a), len(b)))
	}
}
