package norm

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Scaled wraps a base norm with per-dimension positive scale factors:
// ‖x‖ = base(s ⊙ x). The paper treats every interest attribute equally; in
// practice attributes have different units and importance (e.g. "genre"
// distance matters more than "tempo"), which a diagonal scaling captures
// while preserving all norm axioms.
type Scaled struct {
	Base   Norm
	Scales vec.V
}

// NewScaled validates and builds a scaled norm: the base must be non-nil and
// every scale strictly positive and finite.
func NewScaled(base Norm, scales vec.V) (Scaled, error) {
	if base == nil {
		return Scaled{}, fmt.Errorf("norm: nil base norm")
	}
	if len(scales) == 0 {
		return Scaled{}, fmt.Errorf("norm: empty scales")
	}
	for i, s := range scales {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return Scaled{}, fmt.Errorf("norm: scale %d = %v must be positive and finite", i, s)
		}
	}
	return Scaled{Base: base, Scales: scales.Clone()}, nil
}

// Len implements Norm.
func (n Scaled) Len(v vec.V) float64 {
	return n.Base.Len(n.apply(v))
}

// Dist implements Norm.
func (n Scaled) Dist(a, b vec.V) float64 {
	if len(a) != len(n.Scales) || len(b) != len(n.Scales) {
		panic(fmt.Sprintf("norm: scaled dim mismatch %d/%d vs %d", len(a), len(b), len(n.Scales)))
	}
	d := make(vec.V, len(a))
	for i := range a {
		d[i] = n.Scales[i] * (a[i] - b[i])
	}
	return n.Base.Len(d)
}

// P implements Norm (the base exponent; scaling does not change it).
func (n Scaled) P() float64 { return n.Base.P() }

// Name implements Norm.
func (n Scaled) Name() string { return "scaled-" + n.Base.Name() }

func (n Scaled) apply(v vec.V) vec.V {
	if len(v) != len(n.Scales) {
		panic(fmt.Sprintf("norm: scaled dim mismatch %d vs %d", len(v), len(n.Scales)))
	}
	out := make(vec.V, len(v))
	for i := range v {
		out[i] = n.Scales[i] * v[i]
	}
	return out
}

var _ Norm = Scaled{}
