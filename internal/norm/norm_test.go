package norm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func TestKnownValues(t *testing.T) {
	v := vec.Of(3, -4)
	cases := []struct {
		n    Norm
		want float64
	}{
		{L1{}, 7},
		{L2{}, 5},
		{LInf{}, 4},
		{LP{Exp: 3}, math.Pow(27+64, 1.0/3)},
	}
	for _, c := range cases {
		if got := c.n.Len(v); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s.Len(%v) = %v, want %v", c.n.Name(), v, got, c.want)
		}
	}
}

func TestDistMatchesLenOfDifference(t *testing.T) {
	a, b := vec.Of(1, 2, 3), vec.Of(4, 0, -1)
	for _, n := range []Norm{L1{}, L2{}, LInf{}, LP{Exp: 3}, LP{Exp: 1.5}} {
		want := n.Len(a.Sub(b))
		if got := n.Dist(a, b); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: Dist = %v, Len(a-b) = %v", n.Name(), got, want)
		}
	}
}

func TestPAndName(t *testing.T) {
	if (L1{}).P() != 1 || (L2{}).P() != 2 || !math.IsInf((LInf{}).P(), 1) {
		t.Error("P() values wrong")
	}
	if (L1{}).Name() != "1-norm" || (L2{}).Name() != "2-norm" {
		t.Error("Name() values wrong")
	}
	if (LP{Exp: 3}).Name() != "3-norm" {
		t.Errorf("LP name = %q", (LP{Exp: 3}).Name())
	}
}

func TestNewLPRejectsInvalid(t *testing.T) {
	for _, p := range []float64{0, 0.5, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewLP(p); err == nil {
			t.Errorf("NewLP(%v) accepted invalid exponent", p)
		}
	}
	if _, err := NewLP(1); err != nil {
		t.Errorf("NewLP(1): %v", err)
	}
}

func TestForP(t *testing.T) {
	n, err := ForP(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.(L1); !ok {
		t.Errorf("ForP(1) = %T, want L1", n)
	}
	n, err = ForP(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.(L2); !ok {
		t.Errorf("ForP(2) = %T, want L2", n)
	}
	n, err = ForP(math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.(LInf); !ok {
		t.Errorf("ForP(inf) = %T, want LInf", n)
	}
	n, err = ForP(3)
	if err != nil {
		t.Fatal(err)
	}
	if lp, ok := n.(LP); !ok || lp.Exp != 3 {
		t.Errorf("ForP(3) = %#v, want LP{3}", n)
	}
	if _, err := ForP(0.5); err == nil {
		t.Error("ForP(0.5) accepted invalid exponent")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"1-norm", "l1", "1"} {
		n, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if _, ok := n.(L1); !ok {
			t.Errorf("ByName(%q) = %T", name, n)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName accepted bogus name")
	}
}

func TestDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dist with mismatched dims did not panic")
		}
	}()
	L1{}.Dist(vec.Of(1), vec.Of(1, 2))
}

// sane clamps quick-generated components into a range where float error
// analysis is simple.
func sane(xs [3]float64) vec.V {
	v := vec.New(3)
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		v[i] = math.Mod(x, 1e6)
	}
	return v
}

// Property: every implementation satisfies the norm axioms.
func TestNormAxioms(t *testing.T) {
	norms := []Norm{L1{}, L2{}, LInf{}, LP{Exp: 1.5}, LP{Exp: 4}}
	for _, n := range norms {
		n := n
		t.Run(n.Name(), func(t *testing.T) {
			f := func(a, b [3]float64, s float64) bool {
				u, v := sane(a), sane(b)
				if math.IsNaN(s) || math.IsInf(s, 0) {
					s = 1
				}
				s = math.Mod(s, 100)
				// Non-negativity and definiteness.
				if n.Len(u) < 0 {
					return false
				}
				if n.Len(vec.New(3)) != 0 {
					return false
				}
				// Homogeneity.
				lhs, rhs := n.Len(u.Scale(s)), math.Abs(s)*n.Len(u)
				if math.Abs(lhs-rhs) > 1e-6*(1+rhs) {
					return false
				}
				// Triangle inequality.
				return n.Len(u.Add(v)) <= n.Len(u)+n.Len(v)+1e-6*(1+n.Len(u)+n.Len(v))
			}
			if err := quick.Check(f, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: p-norms are monotonically non-increasing in p for a fixed vector.
func TestPNormMonotoneInP(t *testing.T) {
	f := func(a [3]float64) bool {
		v := sane(a)
		prev := math.Inf(1)
		for _, p := range []float64{1, 1.5, 2, 3, 8} {
			n, err := ForP(p)
			if err != nil {
				return false
			}
			l := n.Len(v)
			if l > prev+1e-6*(1+prev) {
				return false
			}
			prev = l
		}
		// ∞-norm is the infimum.
		return LInf{}.Len(v) <= prev+1e-6*(1+prev)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
