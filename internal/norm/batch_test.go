package norm

import (
	"math"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// flatten lays points out row-major, the layout pointset.Set.Coords serves.
func flatten(pts []vec.V, dim int) []float64 {
	flat := make([]float64, 0, len(pts)*dim)
	for _, p := range pts {
		flat = append(flat, p...)
	}
	return flat
}

func randBatchPoints(rng *xrand.Rand, n, dim int) []vec.V {
	pts := make([]vec.V, n)
	for i := range pts {
		p := vec.New(dim)
		for d := range p {
			p[d] = rng.Uniform(-5, 5)
		}
		pts[i] = p
	}
	return pts
}

// Property: Dists is bit-identical (==, not within-epsilon) to per-point
// Dist for every kernel norm, across the specialized and generic dims.
func TestBatchDistsBitIdentical(t *testing.T) {
	rng := xrand.New(31)
	kernels := []Norm{L1{}, L2{}, LInf{}}
	for _, nm := range kernels {
		b := AsBatch(nm)
		if b == nil {
			t.Fatalf("%s: no Batch implementation", nm.Name())
		}
		for _, dim := range []int{1, 2, 3, 8} {
			for trial := 0; trial < 20; trial++ {
				n := rng.IntRange(1, 64)
				pts := randBatchPoints(rng, n, dim)
				c := randBatchPoints(rng, 1, dim)[0]
				out := make([]float64, n)
				b.Dists(c, flatten(pts, dim), dim, out)
				for i, p := range pts {
					if want := nm.Dist(c, p); out[i] != want {
						t.Fatalf("%s dim %d: out[%d] = %v, Dist = %v (diff %g)",
							nm.Name(), dim, i, out[i], want, out[i]-want)
					}
				}
			}
		}
	}
}

// Property: DistsCapped is bit-identical to Dist for in-radius points and
// reports some value >= r for all others.
func TestBatchDistsCappedContract(t *testing.T) {
	rng := xrand.New(37)
	kernels := []Norm{L1{}, L2{}, LInf{}}
	for _, nm := range kernels {
		rb := AsRadiusBatch(nm)
		if rb == nil {
			t.Fatalf("%s: no RadiusBatch implementation", nm.Name())
		}
		for _, dim := range []int{1, 2, 3, 8} {
			for trial := 0; trial < 20; trial++ {
				n := rng.IntRange(1, 64)
				r := rng.Uniform(0.5, 6)
				pts := randBatchPoints(rng, n, dim)
				c := randBatchPoints(rng, 1, dim)[0]
				out := make([]float64, n)
				rb.DistsCapped(c, flatten(pts, dim), dim, r, out)
				for i, p := range pts {
					want := nm.Dist(c, p)
					if want < r {
						if out[i] != want {
							t.Fatalf("%s dim %d r=%v: in-radius out[%d] = %v, Dist = %v",
								nm.Name(), dim, r, i, out[i], want)
						}
					} else if out[i] < r {
						t.Fatalf("%s dim %d r=%v: out-of-radius out[%d] = %v < r (Dist = %v)",
							nm.Name(), dim, r, i, out[i], want)
					}
				}
			}
		}
	}
}

// The coincident-point and overflow-guard edges of the L2 kernel.
func TestBatchL2Edges(t *testing.T) {
	c := vec.Of(1e155, -1e155)
	pts := []vec.V{vec.Of(1e155, -1e155), vec.Of(-1e155, 1e155), vec.Of(1e155, 0)}
	out := make([]float64, len(pts))
	L2{}.Dists(c, flatten(pts, 2), 2, out)
	for i, p := range pts {
		if want := (L2{}).Dist(c, p); out[i] != want {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want)
		}
	}
	if out[0] != 0 {
		t.Errorf("coincident distance = %v", out[0])
	}
	if math.IsInf(out[1], 0) {
		t.Error("kernel overflowed where the scaled scalar path does not")
	}
}

func TestBatchArgValidation(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"center dim mismatch", func() {
			L2{}.Dists(vec.Of(1), []float64{1, 2}, 2, make([]float64, 1))
		}},
		{"ragged flat", func() {
			L2{}.Dists(vec.Of(1, 2), []float64{1, 2, 3}, 2, make([]float64, 2))
		}},
		{"short out", func() {
			L2{}.Dists(vec.Of(1, 2), []float64{1, 2, 3, 4}, 2, make([]float64, 1))
		}},
		{"non-positive dim", func() {
			L2{}.Dists(vec.V{}, nil, 0, nil)
		}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

// LP and Scaled intentionally have no kernels; AsBatch must say so.
func TestAsBatchFallback(t *testing.T) {
	if AsBatch(LP{Exp: 3}) != nil {
		t.Error("LP unexpectedly implements Batch")
	}
	sc, err := NewScaled(L2{}, vec.Of(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if AsBatch(sc) != nil {
		t.Error("Scaled unexpectedly implements Batch")
	}
	if AsBatch(L1{}) == nil || AsRadiusBatch(LInf{}) == nil {
		t.Error("kernel norms missing Batch views")
	}
}
