package norm

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Batch is an optional interface a Norm may implement to evaluate many
// distances against contiguous flat coordinate storage in one call. flat is
// row-major with the given dimension (point i occupies flat[i*dim:(i+1)*dim],
// as produced by pointset.Set.Coords), and out receives one distance per
// point. Implementations must be bit-identical to calling Dist per point:
// out[i] == Dist(c, flat[i*dim:(i+1)*dim]) exactly, so callers may switch
// between the scalar and batched paths without changing any published number.
//
// Batch kernels exist to make the gain hot path memory-bandwidth-bound
// instead of call-overhead-bound: one interface dispatch amortizes over the
// whole scan, and the flat layout streams through cache lines in order.
type Batch interface {
	// Dists writes ‖c − x_i‖ for every row x_i of flat into out.
	// It panics when c's dimension disagrees with dim, dim is not
	// positive, flat is not a whole number of rows, or out is shorter
	// than the number of rows.
	Dists(c vec.V, flat []float64, dim int, out []float64)
}

// RadiusBatch extends Batch with a radius-capped kernel for norms that can
// prove a point is out of range more cheaply than computing its exact
// distance (the L2 kernel skips the sqrt for such points). The contract is
// relaxed only where it cannot matter: for points with Dist(c, x_i) < r,
// out[i] must be bit-identical to Dist; for all other points out[i] may be
// any value ≥ r. Coverage-style consumers ([1 − d/r]_+) treat every d ≥ r as
// zero, so results are still bit-identical to the scalar path.
type RadiusBatch interface {
	Batch
	// DistsCapped is Dists with the in-radius-exact / out-of-radius-free
	// contract above. r must be positive and finite.
	DistsCapped(c vec.V, flat []float64, dim int, r float64, out []float64)
}

// checkBatchArgs validates the shared kernel preconditions and reports the
// number of rows.
func checkBatchArgs(c vec.V, flat []float64, dim int, out []float64) int {
	if dim <= 0 {
		panic(fmt.Sprintf("norm: batch dim %d must be positive", dim))
	}
	if len(c) != dim {
		panic(fmt.Sprintf("norm: batch center dim %d != %d", len(c), dim))
	}
	if len(flat)%dim != 0 {
		panic(fmt.Sprintf("norm: flat length %d is not a multiple of dim %d", len(flat), dim))
	}
	n := len(flat) / dim
	if len(out) < n {
		panic(fmt.Sprintf("norm: out length %d < %d rows", len(out), n))
	}
	return n
}

// Dists implements Batch. The loop mirrors L1.Dist term for term, so IEEE
// summation order (and therefore every bit of the result) is preserved.
func (L1) Dists(c vec.V, flat []float64, dim int, out []float64) {
	n := checkBatchArgs(c, flat, dim, out)
	switch dim {
	case 1:
		c0 := c[0]
		for i := 0; i < n; i++ {
			out[i] = math.Abs(c0 - flat[i])
		}
	case 2:
		c0, c1 := c[0], c[1]
		for i := 0; i < n; i++ {
			row := flat[2*i : 2*i+2 : 2*i+2]
			out[i] = math.Abs(c0-row[0]) + math.Abs(c1-row[1])
		}
	case 3:
		c0, c1, c2 := c[0], c[1], c[2]
		for i := 0; i < n; i++ {
			row := flat[3*i : 3*i+3 : 3*i+3]
			out[i] = math.Abs(c0-row[0]) + math.Abs(c1-row[1]) + math.Abs(c2-row[2])
		}
	default:
		for i := 0; i < n; i++ {
			row := flat[i*dim : (i+1)*dim]
			var s float64
			for d := 0; d < dim; d++ {
				s += math.Abs(c[d] - row[d])
			}
			out[i] = s
		}
	}
}

// DistsCapped implements RadiusBatch. L1 has no expensive tail to skip, so
// the capped kernel is the exact kernel.
func (n L1) DistsCapped(c vec.V, flat []float64, dim int, _ float64, out []float64) {
	n.Dists(c, flat, dim, out)
}

// Dists implements Batch. Each row replays vec.V.Dist2's two-pass
// overflow-guarded algorithm (max-abs scaling, then the scaled square sum)
// with the same operation order, so results are bit-identical to the scalar
// path component for component.
func (L2) Dists(c vec.V, flat []float64, dim int, out []float64) {
	L2{}.distsL2(c, flat, dim, math.Inf(1), out)
}

// DistsCapped implements RadiusBatch: rows whose Chebyshev distance already
// reaches r skip the division pass and the sqrt entirely (see distsL2).
func (L2) DistsCapped(c vec.V, flat []float64, dim int, r float64, out []float64) {
	L2{}.distsL2(c, flat, dim, r, out)
}

// distsL2 is the shared L2 kernel. For every row it first computes the
// Chebyshev distance maxAbs = max_d |c_d − x_d| — the first pass of
// vec.V.Dist2. Because the scaled square sum s = Σ (diff_d/maxAbs)² contains
// the term (maxAbs/maxAbs)² = 1 exactly and IEEE addition of non-negative
// terms is monotonic, Dist2's result maxAbs·sqrt(s) is always ≥ maxAbs.
// Hence when maxAbs ≥ r the true distance is provably ≥ r and the kernel
// emits maxAbs without the n-division pass and the sqrt; coverage consumers
// map both values to zero, keeping results bit-identical. Rows with
// maxAbs < r run the exact Dist2 tail.
func (L2) distsL2(c vec.V, flat []float64, dim int, r float64, out []float64) {
	n := checkBatchArgs(c, flat, dim, out)
	switch dim {
	case 1:
		c0 := c[0]
		for i := 0; i < n; i++ {
			out[i] = math.Abs(c0 - flat[i])
		}
	case 2:
		c0, c1 := c[0], c[1]
		for i := 0; i < n; i++ {
			row := flat[2*i : 2*i+2 : 2*i+2]
			d0, d1 := c0-row[0], c1-row[1]
			a0, a1 := math.Abs(d0), math.Abs(d1)
			maxAbs := a0
			if a1 > maxAbs {
				maxAbs = a1
			}
			if maxAbs == 0 || maxAbs >= r {
				out[i] = maxAbs
				continue
			}
			r0, r1 := d0/maxAbs, d1/maxAbs
			out[i] = maxAbs * math.Sqrt(r0*r0+r1*r1)
		}
	case 3:
		c0, c1, c2 := c[0], c[1], c[2]
		for i := 0; i < n; i++ {
			row := flat[3*i : 3*i+3 : 3*i+3]
			d0, d1, d2 := c0-row[0], c1-row[1], c2-row[2]
			maxAbs := math.Abs(d0)
			if a := math.Abs(d1); a > maxAbs {
				maxAbs = a
			}
			if a := math.Abs(d2); a > maxAbs {
				maxAbs = a
			}
			if maxAbs == 0 || maxAbs >= r {
				out[i] = maxAbs
				continue
			}
			r0, r1, r2 := d0/maxAbs, d1/maxAbs, d2/maxAbs
			// Match the scalar left-to-right summation: (r0²+r1²)+r2².
			out[i] = maxAbs * math.Sqrt(r0*r0+r1*r1+r2*r2)
		}
	default:
		for i := 0; i < n; i++ {
			row := flat[i*dim : (i+1)*dim]
			var maxAbs float64
			for d := 0; d < dim; d++ {
				if a := math.Abs(c[d] - row[d]); a > maxAbs {
					maxAbs = a
				}
			}
			if maxAbs == 0 || maxAbs >= r {
				out[i] = maxAbs
				continue
			}
			var s float64
			for d := 0; d < dim; d++ {
				q := (c[d] - row[d]) / maxAbs
				s += q * q
			}
			out[i] = maxAbs * math.Sqrt(s)
		}
	}
}

// Dists implements Batch, mirroring LInf.Dist's running-max loop exactly.
func (LInf) Dists(c vec.V, flat []float64, dim int, out []float64) {
	n := checkBatchArgs(c, flat, dim, out)
	switch dim {
	case 1:
		c0 := c[0]
		for i := 0; i < n; i++ {
			out[i] = math.Abs(c0 - flat[i])
		}
	case 2:
		c0, c1 := c[0], c[1]
		for i := 0; i < n; i++ {
			row := flat[2*i : 2*i+2 : 2*i+2]
			m := math.Abs(c0 - row[0])
			if a := math.Abs(c1 - row[1]); a > m {
				m = a
			}
			out[i] = m
		}
	case 3:
		c0, c1, c2 := c[0], c[1], c[2]
		for i := 0; i < n; i++ {
			row := flat[3*i : 3*i+3 : 3*i+3]
			m := math.Abs(c0 - row[0])
			if a := math.Abs(c1 - row[1]); a > m {
				m = a
			}
			if a := math.Abs(c2 - row[2]); a > m {
				m = a
			}
			out[i] = m
		}
	default:
		for i := 0; i < n; i++ {
			row := flat[i*dim : (i+1)*dim]
			var m float64
			for d := 0; d < dim; d++ {
				if a := math.Abs(c[d] - row[d]); a > m {
					m = a
				}
			}
			out[i] = m
		}
	}
}

// DistsCapped implements RadiusBatch. The max loop is already minimal, so
// the capped kernel is the exact kernel.
func (n LInf) DistsCapped(c vec.V, flat []float64, dim int, _ float64, out []float64) {
	n.Dists(c, flat, dim, out)
}

var (
	_ RadiusBatch = L1{}
	_ RadiusBatch = L2{}
	_ RadiusBatch = LInf{}
)

// AsBatch reports the Batch view of n, or nil when n has no batched kernel
// (general LP and Scaled norms fall back to the scalar path).
func AsBatch(n Norm) Batch {
	if b, ok := n.(Batch); ok {
		return b
	}
	return nil
}

// AsRadiusBatch reports the RadiusBatch view of n, or nil.
func AsRadiusBatch(n Norm) RadiusBatch {
	if b, ok := n.(RadiusBatch); ok {
		return b
	}
	return nil
}
