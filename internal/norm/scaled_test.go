package norm

import (
	"math"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestNewScaledValidation(t *testing.T) {
	if _, err := NewScaled(nil, vec.Of(1)); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewScaled(L2{}, nil); err == nil {
		t.Error("empty scales accepted")
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewScaled(L2{}, vec.Of(1, bad)); err == nil {
			t.Errorf("scale %v accepted", bad)
		}
	}
	s, err := NewScaled(L2{}, vec.Of(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "scaled-2-norm" || s.P() != 2 {
		t.Errorf("name/P = %q/%v", s.Name(), s.P())
	}
}

func TestScaledKnownValues(t *testing.T) {
	s, err := NewScaled(L2{}, vec.Of(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	// ‖(1,1)‖ scaled = ‖(3,4)‖ = 5.
	if got := s.Len(vec.Of(1, 1)); math.Abs(got-5) > 1e-12 {
		t.Errorf("Len = %v, want 5", got)
	}
	if got := s.Dist(vec.Of(1, 1), vec.Of(0, 0)); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", got)
	}
	s1, err := NewScaled(L1{}, vec.Of(2, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got := s1.Dist(vec.Of(1, 2), vec.Of(0, 0)); math.Abs(got-3) > 1e-12 {
		t.Errorf("L1 scaled Dist = %v, want 3", got)
	}
}

func TestScaledUnitScalesMatchBase(t *testing.T) {
	s, err := NewScaled(L2{}, vec.Of(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(151)
	for i := 0; i < 100; i++ {
		a := vec.Of(rng.Uniform(-5, 5), rng.Uniform(-5, 5), rng.Uniform(-5, 5))
		b := vec.Of(rng.Uniform(-5, 5), rng.Uniform(-5, 5), rng.Uniform(-5, 5))
		if math.Abs(s.Dist(a, b)-(L2{}).Dist(a, b)) > 1e-12 {
			t.Fatal("unit scaling changed distances")
		}
	}
}

func TestScaledNormAxioms(t *testing.T) {
	s, err := NewScaled(L1{}, vec.Of(0.5, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(157)
	for i := 0; i < 200; i++ {
		u := vec.Of(rng.Uniform(-4, 4), rng.Uniform(-4, 4), rng.Uniform(-4, 4))
		v := vec.Of(rng.Uniform(-4, 4), rng.Uniform(-4, 4), rng.Uniform(-4, 4))
		if s.Len(u) < 0 {
			t.Fatal("negative length")
		}
		c := rng.Uniform(-3, 3)
		if math.Abs(s.Len(u.Scale(c))-math.Abs(c)*s.Len(u)) > 1e-9*(1+s.Len(u)) {
			t.Fatal("homogeneity violated")
		}
		if s.Len(u.Add(v)) > s.Len(u)+s.Len(v)+1e-9 {
			t.Fatal("triangle inequality violated")
		}
	}
	if s.Len(vec.New(3)) != 0 {
		t.Fatal("zero vector has nonzero length")
	}
}

func TestScaledAnisotropy(t *testing.T) {
	// Heavily weighting dimension 0 makes moves along it costlier.
	s, err := NewScaled(L2{}, vec.Of(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	along0 := s.Dist(vec.Of(0, 0), vec.Of(1, 0))
	along1 := s.Dist(vec.Of(0, 0), vec.Of(0, 1))
	if along0 <= along1 {
		t.Fatalf("anisotropy lost: %v <= %v", along0, along1)
	}
}

func TestScaledDimMismatchPanics(t *testing.T) {
	s, err := NewScaled(L2{}, vec.Of(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch did not panic")
		}
	}()
	s.Dist(vec.Of(1), vec.Of(1))
}
