package report

import (
	"strings"
	"testing"
)

func TestHeatmapRender(t *testing.T) {
	h := Heatmap{Title: "cone", LoX: -1, HiX: 1, LoY: -1, HiY: 1, Cols: 21, Rows: 11}
	out := h.Render(func(x, y float64) float64 { return -(x*x + y*y) })
	if !strings.Contains(out, "== cone ==") {
		t.Error("title missing")
	}
	lines := strings.Split(out, "\n")
	// Border + 11 rows + border + legend.
	if len(lines) < 15 {
		t.Fatalf("too few lines: %d", len(lines))
	}
	// The peak (center) must be the brightest glyph '@', corners dim.
	mid := lines[1+5] // border at 1 line offset (title), rows start at 2... recompute
	var gridLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			gridLines = append(gridLines, l)
		}
	}
	if len(gridLines) != 11 {
		t.Fatalf("grid rows = %d", len(gridLines))
	}
	mid = gridLines[5]
	if mid[11] != '@' {
		t.Errorf("center glyph = %q, want '@': %q", mid[11], mid)
	}
	corner := gridLines[0][1]
	if corner != ' ' && corner != '.' {
		t.Errorf("corner glyph = %q, want dim", corner)
	}
	if !strings.Contains(out, "low ") || !strings.Contains(out, "high ") {
		t.Error("legend missing")
	}
}

func TestHeatmapConstantField(t *testing.T) {
	h := Heatmap{LoX: 0, HiX: 1, LoY: 0, HiY: 1, Cols: 5, Rows: 3}
	out := h.Render(func(x, y float64) float64 { return 7 })
	if !strings.Contains(out, "|     |") {
		t.Errorf("constant field should render uniformly dim:\n%s", out)
	}
}

func TestHeatmapDefaults(t *testing.T) {
	h := Heatmap{LoX: 0, HiX: 1, LoY: 0, HiY: 1}
	out := h.Render(func(x, y float64) float64 { return x })
	rows := strings.Count(out, "|") / 2
	if rows != 24 {
		t.Errorf("default rows = %d, want 24", rows)
	}
}
