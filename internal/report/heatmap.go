package report

import (
	"fmt"
	"math"
	"strings"
)

// Heatmap renders a scalar field over a 2-D region as ASCII shades — used
// to visualize the round-gain landscape g(c) that the inner solvers climb.
type Heatmap struct {
	Title              string
	LoX, HiX, LoY, HiY float64
	Cols, Rows         int
}

// shades orders glyphs from low to high intensity.
var shades = []byte(" .:-=+*#%@")

// Render samples f at every cell center and draws the field, normalizing to
// the observed min/max. Screen rows run top-down; the field's y axis runs
// bottom-up, matching the Scatter convention.
func (h Heatmap) Render(f func(x, y float64) float64) string {
	cols, rows := h.Cols, h.Rows
	if cols <= 0 {
		cols = 64
	}
	if rows <= 0 {
		rows = 24
	}
	vals := make([][]float64, rows)
	minV, maxV := math.Inf(1), math.Inf(-1)
	for r := 0; r < rows; r++ {
		vals[r] = make([]float64, cols)
		for c := 0; c < cols; c++ {
			x := h.LoX + (h.HiX-h.LoX)*(float64(c)+0.5)/float64(cols)
			y := h.LoY + (h.HiY-h.LoY)*(float64(rows-1-r)+0.5)/float64(rows)
			v := f(x, y)
			vals[r][c] = v
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	if !(minV < maxV) {
		maxV = minV + 1
	}
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", h.Title)
	}
	b.WriteString("+" + strings.Repeat("-", cols) + "+\n")
	for r := 0; r < rows; r++ {
		b.WriteString("|")
		for c := 0; c < cols; c++ {
			t := (vals[r][c] - minV) / (maxV - minV)
			idx := int(t * float64(len(shades)-1))
			b.WriteByte(shades[idx])
		}
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", cols) + "+\n")
	fmt.Fprintf(&b, "low %.4f %q ... %q high %.4f\n", minV, shades[0], shades[len(shades)-1], maxV)
	return b.String()
}
