// Package report renders the experiment harness's outputs: fixed-width
// ASCII tables (the paper's Table I), named data series (the rows/series
// behind each figure), and an ASCII scatter plot used to reproduce Fig. 3's
// center-placement illustration in a terminal.
package report

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v. Short rows are padded.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			switch v := cells[i].(type) {
			case float64:
				row[i] = fmt.Sprintf("%.4f", v)
			default:
				row[i] = fmt.Sprintf("%v", v)
			}
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render draws the table with a title line, a header row, and a separator.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line of a figure: parallel X/Y slices.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a named collection of series — the machine-readable form of one
// paper figure. Render emits a plain-text block (one series per paragraph);
// RenderCSV emits a wide CSV with one column per series for plotting.
type Figure struct {
	ID     string // e.g. "fig4"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Add appends a series.
func (f *Figure) Add(name string, x, y []float64) {
	f.Series = append(f.Series, Series{Name: name, X: x, Y: y})
}

// Render emits a human-readable block.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(&b, "x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%s:\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "  %10.4f  %10.4f\n", s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// RenderCSV emits "x,series1,series2,..." rows, merging series on x values.
func (f *Figure) RenderCSV() string {
	// Collect the union of x values in sorted order.
	xsSet := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	var b strings.Builder
	b.WriteString("x")
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%s", strings.ReplaceAll(s.Name, ",", ";"))
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			val, found := "", false
			for i := range s.X {
				if s.X[i] == x {
					val = fmt.Sprintf("%.6f", s.Y[i])
					found = true
					break
				}
			}
			if found {
				fmt.Fprintf(&b, ",%s", val)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
