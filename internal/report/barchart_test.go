package report

import (
	"strings"
	"testing"
)

func TestBarChartRender(t *testing.T) {
	b := NewBarChart("rewards", "k=2,r=1", "k=4,r=2")
	b.AddSeries("greedy2", 10, 40)
	b.AddSeries("greedy3", 5, 20)
	out := b.Render(20)
	for _, want := range []string{"== rewards ==", "k=2,r=1", "greedy2", "greedy3", "#", "="} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The max value gets the full width; half gets about half.
	lines := strings.Split(out, "\n")
	var full, half int
	for _, l := range lines {
		if strings.Contains(l, "greedy2") && strings.Contains(l, "40") {
			full = strings.Count(l, "#")
		}
		if strings.Contains(l, "greedy3") && strings.Contains(l, "20") {
			half = strings.Count(l, "=")
		}
	}
	if full != 20 {
		t.Errorf("max bar = %d chars, want 20", full)
	}
	if half != 10 {
		t.Errorf("half bar = %d chars, want 10", half)
	}
}

func TestBarChartEdgeCases(t *testing.T) {
	b := NewBarChart("", "g")
	b.AddSeries("zero", 0)
	b.AddSeries("tiny", 1e-9)
	b.AddSeries("missing") // no value: zero-length bar
	out := b.Render(0)
	if strings.HasPrefix(out, "==") {
		t.Error("empty title rendered")
	}
	// A tiny positive value still shows a minimal bar.
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "tiny") && !strings.ContainsAny(l, "=") {
			t.Errorf("tiny bar invisible: %q", l)
		}
	}
}
