package report

import (
	"fmt"
	"strings"

	"repro/internal/vec"
)

// Scatter renders 2-D points in a character grid — the terminal rendition of
// the paper's Fig. 3 panels. Points are plotted with a glyph per weight
// class (the paper's *, □, ◇, +, ○ become 5..1) and centers with '@'.
type Scatter struct {
	LoX, HiX, LoY, HiY float64
	Cols, Rows         int
	grid               [][]byte
}

// NewScatter creates a plot over the given region. Cols/Rows <= 0 default to
// 64×32. It returns an error for an empty region.
func NewScatter(loX, hiX, loY, hiY float64, cols, rows int) (*Scatter, error) {
	if !(loX < hiX) || !(loY < hiY) {
		return nil, fmt.Errorf("report: empty scatter region [%v,%v]x[%v,%v]", loX, hiX, loY, hiY)
	}
	if cols <= 0 {
		cols = 64
	}
	if rows <= 0 {
		rows = 32
	}
	g := make([][]byte, rows)
	for r := range g {
		g[r] = []byte(strings.Repeat(".", cols))
	}
	return &Scatter{LoX: loX, HiX: hiX, LoY: loY, HiY: hiY, Cols: cols, Rows: rows, grid: g}, nil
}

// WeightGlyph maps an integer weight 1..5 to the plot glyph; out-of-range
// weights map to '?'.
func WeightGlyph(w float64) byte {
	switch int(w) {
	case 1:
		return 'o'
	case 2:
		return '+'
	case 3:
		return 'd'
	case 4:
		return 'q'
	case 5:
		return '*'
	default:
		return '?'
	}
}

// Plot places glyph at the 2-D point p, clipping silently when p falls
// outside the region or is not 2-D.
func (s *Scatter) Plot(p vec.V, glyph byte) {
	if p.Dim() != 2 {
		return
	}
	if p[0] < s.LoX || p[0] > s.HiX || p[1] < s.LoY || p[1] > s.HiY {
		return
	}
	c := int((p[0] - s.LoX) / (s.HiX - s.LoX) * float64(s.Cols-1))
	r := int((p[1] - s.LoY) / (s.HiY - s.LoY) * float64(s.Rows-1))
	// Screen rows grow downward; plot rows grow upward.
	s.grid[s.Rows-1-r][c] = glyph
}

// Render returns the plot with a border and a legend line.
func (s *Scatter) Render() string {
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", s.Cols) + "+\n")
	for _, row := range s.grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", s.Cols) + "+\n")
	b.WriteString("legend: weight 1=o 2=+ 3=d 4=q 5=*  center=@\n")
	return b.String()
}
