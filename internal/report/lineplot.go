package report

import (
	"fmt"
	"math"
	"strings"
)

// LinePlot renders a Figure's series as an ASCII chart so the regenerated
// paper figures can be eyeballed in a terminal without leaving the CLI.
// Each series gets a distinct glyph; collisions show the later series.
func LinePlot(f *Figure, cols, rows int) string {
	if cols <= 0 {
		cols = 72
	}
	if rows <= 0 {
		rows = 20
	}
	if len(f.Series) == 0 {
		return fmt.Sprintf("== %s: %s ==\n(no series)\n", f.ID, f.Title)
	}
	// Data bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			if s.X[i] < minX {
				minX = s.X[i]
			}
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] < minY {
				minY = s.Y[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	if !(minX < maxX) {
		maxX = minX + 1
	}
	if !(minY < maxY) {
		maxY = minY + 1
	}
	// A little headroom so extremes are not glued to the frame.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	glyphs := []byte{'*', 'o', '+', 'x', 'd', 'q', '#', '%'}
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			c := int((s.X[i] - minX) / (maxX - minX) * float64(cols-1))
			r := int((s.Y[i] - minY) / (maxY - minY) * float64(rows-1))
			grid[rows-1-r][c] = g
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	for r, row := range grid {
		// Left axis labels at top, middle, bottom.
		label := "         "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3f ", maxY)
		case rows / 2:
			label = fmt.Sprintf("%8.3f ", (minY+maxY)/2)
		case rows - 1:
			label = fmt.Sprintf("%8.3f ", minY)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("         +" + strings.Repeat("-", cols) + "\n")
	fmt.Fprintf(&b, "          %-8.3g%*s\n", minX, cols-8, fmt.Sprintf("%.3g", maxX))
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	fmt.Fprintf(&b, "  x: %s | y: %s\n", f.XLabel, f.YLabel)
	return b.String()
}
