package report

import (
	"fmt"
	"strings"
)

// BarChart renders grouped horizontal bars — the terminal rendition of the
// paper's grouped-bar figures (Figs. 4–9). Each row is one group (e.g. a
// (k, r) configuration); each series contributes one bar per group, scaled
// to the global maximum.
type BarChart struct {
	Title  string
	groups []string
	series []string
	values map[string][]float64 // series -> per-group values
}

// NewBarChart creates a chart over the given group labels.
func NewBarChart(title string, groups ...string) *BarChart {
	return &BarChart{Title: title, groups: groups, values: map[string][]float64{}}
}

// AddSeries registers a named series with one value per group. Extra values
// are dropped; missing ones render as zero-length bars.
func (b *BarChart) AddSeries(name string, vals ...float64) {
	b.series = append(b.series, name)
	cp := make([]float64, len(b.groups))
	copy(cp, vals)
	b.values[name] = cp
}

// Render draws the chart with bars of at most width characters.
func (b *BarChart) Render(width int) string {
	if width <= 0 {
		width = 48
	}
	var maxVal float64
	for _, vals := range b.values {
		for _, v := range vals {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	labelW := 0
	for _, g := range b.groups {
		if len(g) > labelW {
			labelW = len(g)
		}
	}
	for _, s := range b.series {
		if len(s) > labelW {
			labelW = len(s)
		}
	}
	var sb strings.Builder
	if b.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", b.Title)
	}
	glyphs := []byte{'#', '=', '*', '+', 'o', 'x'}
	for gi, g := range b.groups {
		fmt.Fprintf(&sb, "%-*s\n", labelW, g)
		for si, s := range b.series {
			v := b.values[s][gi]
			n := int(v / maxVal * float64(width))
			if v > 0 && n == 0 {
				n = 1
			}
			fmt.Fprintf(&sb, "  %-*s %s %.4g\n", labelW, s,
				strings.Repeat(string(glyphs[si%len(glyphs)]), n), v)
		}
	}
	return sb.String()
}
