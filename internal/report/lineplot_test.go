package report

import (
	"strings"
	"testing"
)

func TestLinePlotBasic(t *testing.T) {
	f := &Figure{ID: "demo", Title: "two lines", XLabel: "k", YLabel: "ratio"}
	f.Add("rising", []float64{1, 2, 3, 4}, []float64{0.1, 0.4, 0.7, 1.0})
	f.Add("flat", []float64{1, 2, 3, 4}, []float64{0.5, 0.5, 0.5, 0.5})
	out := LinePlot(f, 40, 10)
	for _, want := range []string{"demo", "rising", "flat", "*", "o", "x: k | y: ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Header + 10 rows + axis + x labels + 2 legend + xy label line.
	if len(lines) < 15 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestLinePlotEmptyAndDegenerate(t *testing.T) {
	f := &Figure{ID: "empty", Title: "none"}
	if out := LinePlot(f, 0, 0); !strings.Contains(out, "no series") {
		t.Errorf("empty plot = %q", out)
	}
	// Single point: degenerate ranges must not divide by zero.
	g := &Figure{ID: "one", Title: "dot"}
	g.Add("p", []float64{2}, []float64{3})
	out := LinePlot(g, 20, 5)
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}

func TestLinePlotRisingShape(t *testing.T) {
	// A strictly rising series must place its max glyph above its min glyph.
	f := &Figure{ID: "shape", Title: "monotone"}
	f.Add("s", []float64{0, 1}, []float64{0, 1})
	out := LinePlot(f, 21, 7)
	lines := strings.Split(out, "\n")
	var firstRow, lastRow int = -1, -1
	for i, line := range lines {
		if strings.Contains(line, "|") && strings.Contains(line, "*") {
			if firstRow == -1 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow == -1 || firstRow == lastRow {
		t.Fatalf("expected glyphs on distinct rows:\n%s", out)
	}
	// Top row holds the right/high point, bottom the left/low point.
	top, bottom := lines[firstRow], lines[lastRow]
	if strings.IndexByte(top, '*') < strings.IndexByte(bottom, '*') {
		t.Errorf("rising series rendered falling:\n%s", out)
	}
}
