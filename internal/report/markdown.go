package report

import (
	"fmt"
	"strings"
)

// RenderMarkdown emits the table as GitHub-flavored markdown, so experiment
// outputs can be pasted directly into EXPERIMENTS.md.
func (t *Table) RenderMarkdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return b.String()
}

// RenderMarkdown emits the figure as a markdown table with one column per
// series (x values merged and sorted as in RenderCSV).
func (f *Figure) RenderMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s: %s** (x: %s, y: %s)\n\n", f.ID, f.Title, f.XLabel, f.YLabel)
	csv := f.RenderCSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) == 0 {
		return b.String()
	}
	headers := strings.Split(lines[0], ",")
	b.WriteString("| " + strings.Join(headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(headers)) + "\n")
	for _, line := range lines[1:] {
		b.WriteString("| " + strings.Join(strings.Split(line, ","), " | ") + " |\n")
	}
	return b.String()
}

// RenderMarkdown flattens an experiment-style bundle of tables and figures
// under a heading. It lives here (not in experiments) so any caller holding
// report artifacts can export them.
func RenderMarkdown(heading string, tables []*Table, figures []*Figure, notes []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", heading)
	for _, t := range tables {
		b.WriteString(t.RenderMarkdown())
		b.WriteByte('\n')
	}
	for _, f := range figures {
		b.WriteString(f.RenderMarkdown())
		b.WriteByte('\n')
	}
	for _, n := range notes {
		fmt.Fprintf(&b, "> %s\n", strings.ReplaceAll(n, "\n", "\n> "))
	}
	if len(notes) > 0 {
		b.WriteByte('\n')
	}
	return b.String()
}
