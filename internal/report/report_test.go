package report

import (
	"strings"
	"testing"

	"repro/internal/vec"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "alg", "round1", "total")
	tb.AddRow("greedy2", 14.3145, 44.6301)
	tb.AddRow("greedy4", 20.3867, 63.5571)
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	out := tb.Render()
	for _, want := range []string{"== Demo ==", "alg", "greedy2", "14.3145", "63.5571", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns align: header line and data line have equal prefix widths.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines: %q", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")
	out := tb.Render()
	if !strings.Contains(out, "only") {
		t.Errorf("short row lost: %q", out)
	}
}

func TestFigureRenderAndCSV(t *testing.T) {
	f := &Figure{ID: "fig2", Title: "approx ratios", XLabel: "k", YLabel: "ratio"}
	f.Add("approx1", []float64{1, 2}, []float64{1, 0.75})
	f.Add("approx2", []float64{1, 2, 3}, []float64{0.1, 0.19, 0.27})
	out := f.Render()
	for _, want := range []string{"fig2", "approx1", "approx2", "0.7500"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	csv := f.RenderCSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "x,approx1,approx2" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) != 4 { // x = 1, 2, 3
		t.Fatalf("csv rows = %d, want 4: %q", len(lines), csv)
	}
	// x=3 exists only in approx2: approx1 cell empty.
	if !strings.HasPrefix(lines[3], "3,,") {
		t.Errorf("missing-cell row = %q", lines[3])
	}
}

func TestScatter(t *testing.T) {
	s, err := NewScatter(0, 4, 0, 4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	s.Plot(vec.Of(0, 0), WeightGlyph(5))
	s.Plot(vec.Of(4, 4), '@')
	s.Plot(vec.Of(99, 99), 'X')  // clipped
	s.Plot(vec.Of(1, 2, 3), 'X') // wrong dim ignored
	out := s.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "@") {
		t.Errorf("glyphs missing:\n%s", out)
	}
	if strings.Contains(out, "X") {
		t.Errorf("clipped point rendered:\n%s", out)
	}
	// (0,0) is bottom-left: last grid row, first column.
	lines := strings.Split(out, "\n")
	bottom := lines[8] // border + 8 rows; row index 8 = last grid row
	if bottom[1] != '*' {
		t.Errorf("bottom-left glyph = %q, line %q", bottom[1], bottom)
	}
	top := lines[1]
	if top[8] != '@' {
		t.Errorf("top-right glyph = %q, line %q", top[8], top)
	}
}

func TestScatterValidation(t *testing.T) {
	if _, err := NewScatter(1, 1, 0, 4, 8, 8); err == nil {
		t.Error("empty x-range accepted")
	}
	if _, err := NewScatter(0, 4, 5, 4, 8, 8); err == nil {
		t.Error("inverted y-range accepted")
	}
	s, err := NewScatter(0, 1, 0, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cols != 64 || s.Rows != 32 {
		t.Errorf("defaults = %dx%d", s.Cols, s.Rows)
	}
}

func TestWeightGlyphs(t *testing.T) {
	want := map[float64]byte{1: 'o', 2: '+', 3: 'd', 4: 'q', 5: '*', 7: '?', 0: '?'}
	for w, g := range want {
		if got := WeightGlyph(w); got != g {
			t.Errorf("WeightGlyph(%v) = %q, want %q", w, got, g)
		}
	}
}
