package report

import (
	"strings"
	"testing"
)

func TestTableRenderMarkdown(t *testing.T) {
	tb := NewTable("Totals", "alg", "total")
	tb.AddRow("greedy2", 44.6301)
	tb.AddRow("has|pipe", 1.0)
	md := tb.RenderMarkdown()
	for _, want := range []string{"**Totals**", "| alg | total |", "|---|---|", "| greedy2 | 44.6301 |", "has\\|pipe"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestFigureRenderMarkdown(t *testing.T) {
	f := &Figure{ID: "fig2", Title: "ratios", XLabel: "k", YLabel: "ratio"}
	f.Add("approx1", []float64{1, 2}, []float64{1, 0.75})
	md := f.RenderMarkdown()
	for _, want := range []string{"**fig2: ratios**", "| x | approx1 |", "| 2 | 0.750000 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("figure markdown missing %q:\n%s", want, md)
		}
	}
}

func TestRenderMarkdownBundle(t *testing.T) {
	tb := NewTable("T", "a")
	tb.AddRow(1)
	f := &Figure{ID: "f", Title: "t"}
	f.Add("s", []float64{0}, []float64{0})
	md := RenderMarkdown("Experiment X", []*Table{tb}, []*Figure{f}, []string{"note one"})
	for _, want := range []string{"## Experiment X", "**T**", "**f: t**", "> note one"} {
		if !strings.Contains(md, want) {
			t.Errorf("bundle missing %q:\n%s", want, md)
		}
	}
}
