// Package shard turns the monolithic solve into a spatial
// partition → shard-solve → merge pipeline. The paper's greedy solvers scan
// every user per round, which caps single-box throughput; this package
// splits an instance into balanced spatial shards by reusing the grid
// index's cell bucketing (cells of side r, the coverage radius), solves each
// shard independently with any registry solver, and hands the union of
// per-shard candidate centers to core.Pipeline's lazy-greedy merge, which
// re-scores them against the full instance. Submodularity of the coverage
// objective bounds the merge loss; the quality-regression test pins the
// sharded objective at ≥ 0.95× single-shot greedy.
//
// Two design points matter for reproducibility:
//
//   - Shard identity is content-derived: a shard's ID hashes its anchor
//     cell's integer coordinates, never its slice position, so per-shard
//     solver seeds (DeriveSeed) are independent of enumeration order and
//     worker scheduling. Changing the shard count changes the partition —
//     and therefore results — but re-running the same configuration is
//     bit-identical at any Workers setting.
//
//   - A boundary halo (Halo rings of grid cells, default one ring = one
//     coverage radius in Chebyshev distance) is absorbed into each shard, so
//     a candidate center near a cut plane still sees the users just across
//     it and is scored fairly. Halo points are duplicated, not moved; the
//     merge re-scores every candidate against the full instance, so the
//     duplication can only improve candidate quality, never double-count
//     reward.
package shard

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/reward"
	"repro/internal/spatial"
	"repro/internal/xrand"
)

// DefaultHaloRings is the boundary-halo width, in grid-cell rings, applied
// when Options.Halo is zero. One ring of cells of side r covers every point
// within Chebyshev distance r of a shard cell — exactly the points a
// boundary candidate's coverage ball can reach.
const DefaultHaloRings = 1

// Options configures the sharded solver.
type Options struct {
	// Shards is the target shard count (capped by the number of occupied
	// grid cells; <= 1 degenerates to the single-shot pipeline).
	Shards int
	// Halo is the boundary-halo width in cell rings: 0 means
	// DefaultHaloRings, negative disables the halo entirely.
	Halo int
	// Workers bounds the parallel shard solves; <= 0 uses all CPUs.
	Workers int
	// Seed is the root seed; per-shard seeds derive from it and the shard's
	// content-derived ID via DeriveSeed.
	Seed uint64
	// Obs receives pipeline telemetry (spans, shard.* counters, merge
	// rounds).
	Obs obs.Collector
	// Remote, when non-nil, is tried first for every shard solve (cluster
	// mode's peer-forwarding seam); a failure falls back to the local inner
	// solver with identical results per the core.PartSolver contract.
	Remote core.PartSolver
}

// HaloRings normalizes a raw Halo knob into a ring count: 0 means
// DefaultHaloRings, negative disables the halo entirely. It is the single
// normalization point — Options and Partitioner both resolve their Halo
// fields through it, so a future change to the knob's semantics cannot
// diverge the two paths.
func HaloRings(halo int) int {
	switch {
	case halo == 0:
		return DefaultHaloRings
	case halo < 0:
		return 0
	default:
		return halo
	}
}

// haloRings normalizes the Halo knob.
func (o Options) haloRings() int { return HaloRings(o.Halo) }

// NewSolver builds the sharded pipeline around an inner registry algorithm:
// innerName is the inner solver's catalog name (for display), newInner
// constructs it for a derived per-shard seed. The result is a
// core.Algorithm named "sharded(<innerName>)" honoring the anytime
// cancellation contract via core.Pipeline.
func NewSolver(innerName string, newInner func(seed uint64) core.Algorithm, o Options) core.Algorithm {
	root := o.Seed
	return core.Pipeline{
		Alg:       "sharded(" + innerName + ")",
		Partition: Partitioner{Shards: o.Shards, Halo: o.Halo},
		NewSolver: newInner,
		SeedFor:   func(partID uint64) uint64 { return DeriveSeed(root, partID) },
		Workers:   o.Workers,
		Obs:       o.Obs,
		SolvePart: o.Remote,
	}
}

// DeriveSeed mixes the root seed with a shard's content-derived ID into the
// shard's solver seed. It is a pure function of (root, partID): shard
// enumeration order, worker count, and scheduling cannot perturb it — only
// an actual change of the partition (different shard count or population)
// changes the IDs and hence the seeds.
func DeriveSeed(root, partID uint64) uint64 {
	// Golden-ratio scramble of the ID keeps adjacent anchor-cell hashes far
	// apart, then one SplitMix64 step finalizes the mix.
	return xrand.New(root ^ (partID * 0x9e3779b97f4a7c15)).Uint64()
}

// Partitioner splits an instance into balanced spatial shards via the grid
// index's cell bucketing. It implements core.Partitioner.
type Partitioner struct {
	// Shards is the target shard count.
	Shards int
	// Halo is the boundary-halo width in cell rings (0 = DefaultHaloRings,
	// negative = none).
	Halo int
}

// Partition implements core.Partitioner: bucket the points into grid cells
// of side r, sweep the occupied cells in lexicographic (row-major) order,
// cut the sweep into Shards contiguous runs of roughly n/Shards points, and
// build one sub-instance per run (own points plus the halo ring absorbed
// from neighboring cells). Deterministic by construction: cell order, cut
// points, per-shard index order, and IDs depend only on the instance and
// the configuration.
func (p Partitioner) Partition(ctx context.Context, in *reward.Instance, k int) ([]core.Part, error) {
	if in == nil {
		return nil, core.ErrNilInstance
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	n := in.N()
	s := p.Shards
	if s < 1 {
		s = 1
	}
	if s == 1 || n <= s {
		return []core.Part{{ID: 0, In: in, Own: n}}, nil
	}
	grid, err := spatial.NewGrid(in.Set.Points(), in.Radius)
	if err != nil {
		return nil, fmt.Errorf("shard: partition grid: %w", err)
	}
	cells := grid.Cells()
	if len(cells) < s {
		s = len(cells)
	}
	if s == 1 {
		return []core.Part{{ID: 0, In: in, Own: n}}, nil
	}

	runs := splitRuns(cells, n, s)
	rings := HaloRings(p.Halo)
	parts := make([]core.Part, 0, len(runs))
	for _, run := range runs {
		part, err := buildPart(in, grid, run, rings)
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
	}
	return parts, nil
}

// splitRuns linearly partitions the row-major cell sweep into s contiguous
// runs of about n/s points each. The sweep order keeps shards spatially
// coherent; the forced cut (leave one cell per remaining shard) guarantees
// exactly s non-empty runs. Deterministic: depends only on the cell order
// and point counts.
func splitRuns(cells []spatial.Cell, n, s int) [][]spatial.Cell {
	runs := make([][]spatial.Cell, 0, s)
	var cur []spatial.Cell
	cum := 0
	for i, c := range cells {
		cur = append(cur, c)
		cum += len(c.Points)
		remaining := len(cells) - i - 1
		if len(runs) < s-1 &&
			(cum*s >= (len(runs)+1)*n || remaining == s-len(runs)-1) {
			runs = append(runs, cur)
			cur = nil
		}
	}
	return append(runs, cur)
}

// buildPart assembles one shard: its own point indices, the halo indices
// from neighboring cells, a sub-instance with its own grid finder, and the
// content-derived ID (a hash of the anchor — lexicographically smallest —
// cell's coordinates).
func buildPart(in *reward.Instance, grid *spatial.Grid, run []spatial.Cell, rings int) (core.Part, error) {
	own := 0
	var idx []int
	member := make(map[string]struct{}, len(run))
	var key []byte
	for _, c := range run {
		idx = append(idx, c.Points...)
		own += len(c.Points)
		key = appendCoordKey(key[:0], c.Coord)
		member[string(key)] = struct{}{}
	}

	if rings > 0 {
		// Halo: every occupied cell within Chebyshev ring distance <= rings
		// of a run cell, excluding the run itself. Neighbor coords are
		// deduplicated before gathering so overlapping windows of adjacent
		// run cells cannot double-insert a point.
		seen := make(map[string]struct{})
		var haloCoords [][]int
		for _, c := range run {
			eachNeighbor(c.Coord, rings, func(nc []int) {
				key = appendCoordKey(key[:0], nc)
				if _, isMember := member[string(key)]; isMember {
					return
				}
				if _, dup := seen[string(key)]; dup {
					return
				}
				seen[string(key)] = struct{}{}
				cp := make([]int, len(nc))
				copy(cp, nc)
				haloCoords = append(haloCoords, cp)
			})
		}
		for _, nc := range haloCoords {
			idx = append(idx, grid.CellPoints(nc)...)
		}
	}
	sort.Ints(idx)

	sub, err := in.Set.Subset(idx)
	if err != nil {
		return core.Part{}, fmt.Errorf("shard: subset: %w", err)
	}
	subIn, err := reward.NewInstance(sub, in.Norm, in.Radius)
	if err != nil {
		return core.Part{}, fmt.Errorf("shard: sub-instance: %w", err)
	}
	if g, err := spatial.NewGrid(sub.Points(), in.Radius); err == nil {
		subIn.SetFinder(g)
	}
	return core.Part{ID: cellHash(run[0].Coord), In: subIn, Own: own}, nil
}

// eachNeighbor visits every cell coordinate within Chebyshev distance
// [1, rings] of c (the ring around c, excluding c itself). Coordinates may
// lie outside the grid; CellPoints answers those with nil.
func eachNeighbor(c []int, rings int, fn func(nc []int)) {
	dim := len(c)
	cur := make([]int, dim)
	for d := range cur {
		cur[d] = c[d] - rings
	}
	for {
		center := true
		for d := range cur {
			if cur[d] != c[d] {
				center = false
				break
			}
		}
		if !center {
			fn(cur)
		}
		d := dim - 1
		for ; d >= 0; d-- {
			cur[d]++
			if cur[d] <= c[d]+rings {
				break
			}
			cur[d] = c[d] - rings
		}
		if d < 0 {
			return
		}
	}
}

// cellHash is an FNV-1a hash over a cell's integer coordinates — the stable
// shard identity DeriveSeed consumes.
func cellHash(coord []int) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range coord {
		v := uint64(int64(c))
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}

// appendCoordKey renders integer cell coordinates as a compact map key.
func appendCoordKey(b []byte, c []int) []byte {
	for _, v := range c {
		u := uint64(int64(v))
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return b
}

// ctxErr tolerates a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

var _ core.Partitioner = Partitioner{}
