package shard

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/spatial"
	"repro/internal/xrand"
)

// genInstance builds a uniform random instance over the paper's box (2-D or
// 3-D) with a grid finder attached, matching how production callers
// (cdserved, the CLI) accelerate Near queries.
func genInstance(t testing.TB, n, dim int, nm norm.Norm, r float64, seed uint64) *reward.Instance {
	t.Helper()
	box := pointset.PaperBox2D()
	if dim == 3 {
		box = pointset.PaperBox3D()
	}
	set, err := pointset.GenUniform(n, box, pointset.RandomIntWeight, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	in, err := reward.NewInstance(set, nm, r)
	if err != nil {
		t.Fatal(err)
	}
	g, err := spatial.NewGrid(set.Points(), r)
	if err != nil {
		t.Fatal(err)
	}
	in.SetFinder(g)
	return in
}

// TestSplitRunsInvariants: the linear partition of the cell sweep must yield
// exactly s contiguous non-empty runs covering every cell once, with runs
// roughly balanced by point count.
func TestSplitRunsInvariants(t *testing.T) {
	in := genInstance(t, 900, 2, norm.L2{}, 0.5, 3)
	g, err := spatial.NewGrid(in.Set.Points(), in.Radius)
	if err != nil {
		t.Fatal(err)
	}
	cells := g.Cells()
	n := in.N()
	maxCell := 0
	for _, c := range cells {
		if len(c.Points) > maxCell {
			maxCell = len(c.Points)
		}
	}
	for _, s := range []int{2, 3, 4, 8} {
		runs := splitRuns(cells, n, s)
		if len(runs) != s {
			t.Fatalf("s=%d: %d runs", s, len(runs))
		}
		seen := 0
		for ri, run := range runs {
			if len(run) == 0 {
				t.Fatalf("s=%d: run %d empty", s, ri)
			}
			for _, c := range run {
				seen += len(c.Points)
			}
		}
		if seen != n {
			t.Fatalf("s=%d: runs cover %d points, want %d", s, seen, n)
		}
		// Contiguity: concatenating the runs reproduces the sweep order.
		i := 0
		for _, run := range runs {
			for _, c := range run {
				if &cells[i].Points[0] != &c.Points[0] {
					t.Fatalf("s=%d: runs are not a contiguous split of the sweep", s)
				}
				i++
			}
		}
		// Balance: a run never exceeds the ideal share by more than one
		// cell's worth of points (the cut granularity), except the final
		// run, which absorbs the remainder but is still bounded by the
		// forced-cut construction on uniform data.
		ideal := n / s
		for ri, run := range runs[:len(runs)-1] {
			cnt := 0
			for _, c := range run {
				cnt += len(c.Points)
			}
			if cnt > ideal+maxCell {
				t.Errorf("s=%d run %d: %d points, ideal %d + max cell %d", s, ri, cnt, ideal, maxCell)
			}
		}
	}
}

// TestPartitionInvariants: parts own every point exactly once, halo points
// only ever add to a part's sub-instance, IDs are distinct and
// content-derived, and disabling the halo collapses sub-instances to
// exactly the owned points.
func TestPartitionInvariants(t *testing.T) {
	in := genInstance(t, 800, 2, norm.L2{}, 0.5, 11)
	for _, s := range []int{2, 4, 8} {
		parts, err := Partitioner{Shards: s}.Partition(context.Background(), in, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != s {
			t.Fatalf("s=%d: %d parts", s, len(parts))
		}
		own, ids := 0, map[uint64]bool{}
		haloSeen := false
		for i, p := range parts {
			if p.Own <= 0 {
				t.Fatalf("s=%d part %d: own = %d", s, i, p.Own)
			}
			own += p.Own
			if p.In.N() < p.Own {
				t.Fatalf("s=%d part %d: sub-instance %d < own %d", s, i, p.In.N(), p.Own)
			}
			if p.In.N() > p.Own {
				haloSeen = true
			}
			if ids[p.ID] {
				t.Fatalf("s=%d part %d: duplicate ID %d", s, i, p.ID)
			}
			ids[p.ID] = true
			if p.In.Norm != in.Norm || p.In.Radius != in.Radius {
				t.Fatalf("s=%d part %d: norm/radius not inherited", s, i)
			}
		}
		if own != in.N() {
			t.Fatalf("s=%d: parts own %d points, want %d", s, own, in.N())
		}
		if !haloSeen {
			t.Errorf("s=%d: no part absorbed a halo on a dense uniform instance", s)
		}

		bare, err := Partitioner{Shards: s, Halo: -1}.Partition(context.Background(), in, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range bare {
			if p.In.N() != p.Own {
				t.Fatalf("s=%d part %d: halo disabled but sub-instance %d != own %d", s, i, p.In.N(), p.Own)
			}
			if p.ID != parts[i].ID {
				t.Fatalf("s=%d part %d: ID depends on the halo setting", s, i)
			}
		}
	}
}

// TestPartitionDegenerate: one shard, or fewer points than shards, falls
// back to a single full-instance part with ID 0.
func TestPartitionDegenerate(t *testing.T) {
	in := genInstance(t, 6, 2, norm.L2{}, 0.5, 2)
	for _, p := range []Partitioner{{Shards: 1}, {Shards: 0}, {Shards: 8}} {
		parts, err := p.Partition(context.Background(), in, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != 1 || parts[0].In != in || parts[0].Own != in.N() || parts[0].ID != 0 {
			t.Fatalf("Partitioner%+v: degenerate case returned %d parts (%+v)", p, len(parts), parts[0])
		}
	}
	if _, err := (Partitioner{Shards: 2}).Partition(context.Background(), nil, 2); err == nil {
		t.Error("nil instance accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Partitioner{Shards: 2}).Partition(ctx, in, 2); err != context.Canceled {
		t.Errorf("pre-cancelled partition err = %v", err)
	}
}

// TestDeriveSeedProperties: the per-shard seed is a pure function of
// (root, partID) — evaluation order cannot matter — and distinct IDs or
// roots give distinct seeds (no accidental collapse of the mix).
func TestDeriveSeedProperties(t *testing.T) {
	ids := []uint64{0, 1, 2, 17, 1 << 40, ^uint64(0)}
	forward := make(map[uint64]uint64, len(ids))
	for _, id := range ids {
		forward[id] = DeriveSeed(42, id)
	}
	for i := len(ids) - 1; i >= 0; i-- { // reversed evaluation order
		if got := DeriveSeed(42, ids[i]); got != forward[ids[i]] {
			t.Fatalf("DeriveSeed(42, %d) unstable: %d vs %d", ids[i], got, forward[ids[i]])
		}
	}
	seen := map[uint64]uint64{}
	for _, id := range ids {
		s := forward[id]
		if prev, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed collision: ids %d and %d both map to %d", prev, id, s)
		}
		seen[s] = id
	}
	if DeriveSeed(1, 5) == DeriveSeed(2, 5) {
		t.Error("root seed does not reach the derived seed")
	}
}

// TestShardedDeterminismAcrossWorkers: the sharded result is bit-identical
// at any worker count — candidates are gathered in part order and seeds are
// content-derived, so goroutine scheduling cannot reach the output.
func TestShardedDeterminismAcrossWorkers(t *testing.T) {
	in := genInstance(t, 600, 2, norm.L2{}, 0.5, 19)
	newInner := func(seed uint64) core.Algorithm { return core.LazyGreedy{} }
	base, err := NewSolver("greedy2-lazy", newInner, Options{Shards: 4, Seed: 7, Workers: 1}).
		Run(context.Background(), in, 6)
	if err != nil {
		t.Fatal(err)
	}
	if base.Algorithm != "sharded(greedy2-lazy)" {
		t.Fatalf("algorithm = %q", base.Algorithm)
	}
	for _, w := range []int{2, 3, 8} {
		got, err := NewSolver("greedy2-lazy", newInner, Options{Shards: 4, Seed: 7, Workers: w}).
			Run(context.Background(), in, 6)
		if err != nil {
			t.Fatal(err)
		}
		if got.Total != base.Total || len(got.Centers) != len(base.Centers) {
			t.Fatalf("workers=%d: total %v (%d centers) vs %v (%d)", w,
				got.Total, len(got.Centers), base.Total, len(base.Centers))
		}
		for j := range base.Centers {
			if !got.Centers[j].Equal(base.Centers[j]) || got.Gains[j] != base.Gains[j] {
				t.Fatalf("workers=%d round %d: result differs from workers=1", w, j)
			}
		}
	}
}

// TestShardedQualityGate is the tier-1 quality-regression gate of the
// pipeline: across norms × dimensions × shard counts on seeded uniform
// instances, the sharded objective must stay within 5% of single-shot
// greedy (the paper's greedy2). Submodularity plus the boundary halo is
// what makes this hold; a partitioner or merge regression trips it.
func TestShardedQualityGate(t *testing.T) {
	const k, minRatio = 8, 0.95
	norms := []norm.Norm{norm.L1{}, norm.L2{}, norm.LInf{}}
	for _, dim := range []int{2, 3} {
		n, r := 1200, 0.5
		if dim == 3 {
			n, r = 900, 0.8
		}
		for _, nm := range norms {
			in := genInstance(t, n, dim, nm, r, uint64(41+dim))
			single, err := core.LocalGreedy{Workers: 1}.Run(context.Background(), in, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 4, 8} {
				t.Run(fmt.Sprintf("%s/dim%d/s%d", nm.Name(), dim, shards), func(t *testing.T) {
					alg := NewSolver("greedy2-lazy",
						func(uint64) core.Algorithm { return core.LazyGreedy{} },
						Options{Shards: shards, Seed: 1})
					got, err := alg.Run(context.Background(), in, k)
					if err != nil {
						t.Fatal(err)
					}
					if err := got.Validate(); err != nil {
						t.Fatal(err)
					}
					ratio := got.Total / single.Total
					if ratio < minRatio {
						t.Errorf("sharded/single = %.4f < %.2f (sharded %.4f, single %.4f)",
							ratio, minRatio, got.Total, single.Total)
					}
				})
			}
		}
	}
}

// TestShardedHaloImprovesBoundaries: with the halo disabled, boundary
// candidates are scored blind to points across the cut; the default halo
// must never do worse on the same instance (and the run must still be
// valid). This is a property of the candidate pool: a halo only widens
// per-shard visibility, and the merge re-scores both pools against the full
// instance.
func TestShardedHaloImprovesBoundaries(t *testing.T) {
	in := genInstance(t, 1000, 2, norm.L2{}, 0.5, 23)
	run := func(halo int) float64 {
		alg := NewSolver("greedy2-lazy",
			func(uint64) core.Algorithm { return core.LazyGreedy{} },
			Options{Shards: 6, Halo: halo, Seed: 3})
		res, err := alg.Run(context.Background(), in, 6)
		if err != nil {
			t.Fatal(err)
		}
		return res.Total
	}
	withHalo, without := run(0), run(-1)
	if withHalo < 0.99*without {
		t.Errorf("halo total %.4f markedly below halo-free %.4f", withHalo, without)
	}
}

// TestCellHashStability pins the FNV-1a shard identity: coordinate order
// matters, distinct coords hash apart, and the hash of a known coordinate
// never changes (seeds derive from it — silent drift would change results).
func TestCellHashStability(t *testing.T) {
	if cellHash([]int{1, 2}) == cellHash([]int{2, 1}) {
		t.Error("cellHash ignores coordinate order")
	}
	if cellHash([]int{0, 0}) == cellHash([]int{0, 1}) {
		t.Error("cellHash collapses adjacent cells")
	}
	if got := cellHash([]int{3, -4}); got != cellHash([]int{3, -4}) {
		t.Errorf("cellHash unstable: %d", got)
	}
}

// TestEachNeighbor: the Chebyshev ring enumerator visits (2r+1)^d − 1 cells
// exactly once and never the center.
func TestEachNeighbor(t *testing.T) {
	for _, tc := range []struct{ dim, rings, want int }{
		{2, 1, 8}, {2, 2, 24}, {3, 1, 26}, {1, 1, 2},
	} {
		c := make([]int, tc.dim)
		seen := map[string]bool{}
		eachNeighbor(c, tc.rings, func(nc []int) {
			key := string(appendCoordKey(nil, nc))
			if seen[key] {
				t.Fatalf("dim=%d rings=%d: neighbor visited twice", tc.dim, tc.rings)
			}
			seen[key] = true
			center := true
			for _, v := range nc {
				if v != 0 {
					center = false
				}
			}
			if center {
				t.Fatalf("dim=%d rings=%d: center visited", tc.dim, tc.rings)
			}
		})
		if len(seen) != tc.want {
			t.Fatalf("dim=%d rings=%d: %d neighbors, want %d", tc.dim, tc.rings, len(seen), tc.want)
		}
	}
}

// TestHaloRings pins the one halo-normalization point every layer shares:
// zero means the default ring width, any negative means no halo, positives
// pass through.
func TestHaloRings(t *testing.T) {
	cases := []struct{ halo, want int }{
		{0, DefaultHaloRings},
		{-1, 0},
		{-7, 0},
		{1, 1},
		{3, 3},
	}
	for _, tc := range cases {
		if got := HaloRings(tc.halo); got != tc.want {
			t.Errorf("HaloRings(%d) = %d, want %d", tc.halo, got, tc.want)
		}
	}
}
