package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one node of a causal trace tree: a named operation with a start
// and an end on the monotonic clock, an optional parent, and float64
// attributes. Spans are recorded through the ordinary event machinery — a
// span_start event when the span opens and a span_end event (carrying
// "wall_ns" plus the attributes) when it closes — so any Sink or Metrics
// collector that already captures events captures span trees too, and a
// JSONL stream can be reassembled into per-request trees offline by linking
// Span/Parent IDs under a shared Trace ID.
//
// The zero-cost rule extends to spans: StartSpan with an inactive collector
// returns nil, every method is nil-safe, and ContextWithSpan(ctx, nil)
// returns ctx unchanged — instrumented code never branches on span
// presence. Child spans are only materialized under a live ancestor, so
// solver runs outside the serving layer (no root span installed) emit no
// span events at all.
//
// A Span's SetAttr and End are safe for concurrent use, matching the
// Collector contract. End is idempotent; attributes set after End are
// dropped.
type Span struct {
	c      Collector
	trace  string
	name   string
	id     string
	parent string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]float64
	ended bool
}

// spanSeq mints process-unique span IDs; uniqueness within one trace is all
// reconstruction needs, process-wide uniqueness is simply cheap.
var spanSeq atomic.Uint64

func nextSpanID() string {
	return "s" + strconv.FormatUint(spanSeq.Add(1), 16)
}

// StartSpan opens a root span under the given trace ID (the serving layer
// uses the request ID). With an inactive collector it returns nil, and the
// whole span tree below it costs nothing.
func StartSpan(c Collector, trace, name string) *Span {
	if !Active(c) {
		return nil
	}
	s := &Span{c: c, trace: trace, name: name, id: nextSpanID(), start: time.Now()}
	s.emitStart()
	return s
}

// Child opens a sub-span of s. On a nil receiver it returns nil, so call
// sites chain without nil checks.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{c: s.c, trace: s.trace, name: name, id: nextSpanID(),
		parent: s.id, start: time.Now()}
	c.emitStart()
	return c
}

func (s *Span) emitStart() {
	s.c.Emit(Event{Type: EvSpanStart, Trace: s.trace, Span: s.id,
		Parent: s.parent, Name: s.name})
}

// SetAttr attaches (or overwrites) one float64 attribute, carried on the
// span_end event. Nil-safe; dropped after End.
func (s *Span) SetAttr(key string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.attrs == nil {
			s.attrs = make(map[string]float64, 4)
		}
		s.attrs[key] = v
	}
	s.mu.Unlock()
}

// End closes the span, emitting the span_end event with "wall_ns" and the
// accumulated attributes, and returns the elapsed nanoseconds. Only the
// first End emits; later calls return 0. Nil-safe.
func (s *Span) End() int64 {
	if s == nil {
		return 0
	}
	ns := time.Since(s.start).Nanoseconds()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return 0
	}
	s.ended = true
	fields := make(map[string]float64, len(s.attrs)+1)
	for k, v := range s.attrs {
		fields[k] = v
	}
	s.mu.Unlock()
	fields["wall_ns"] = float64(ns)
	s.c.Emit(Event{Type: EvSpanEnd, Trace: s.trace, Span: s.id,
		Parent: s.parent, Name: s.name, Fields: fields})
	return ns
}

// ID returns the span's ID ("" on nil).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// TraceID returns the trace (request) ID the span belongs to ("" on nil) —
// the hook lower layers use to stamp their own events with the request ID
// without a second plumbing path.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// spanKey keys the ambient span in a context.
type spanKey struct{}

// ContextWithSpan returns ctx carrying s as the ambient parent span. A nil
// span returns ctx unchanged, so uninstrumented paths never pay for a
// context wrap.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the ambient span, or nil when none (or ctx is
// nil). Combined with the nil-safety of Child/SetAttr/End, lower layers
// write `sp := obs.SpanFromContext(ctx).Child("round")` unconditionally.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
