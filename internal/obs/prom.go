package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format version 0.0.4, the format WriteProm emits.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// nsPerSecond converts the nanosecond timer ladder to seconds for the
// `_seconds` exposition.
const nsPerSecond = 1e9

// WriteProm writes the collector's aggregate state in the Prometheus text
// exposition format (version 0.0.4): counters, gauges, and the bounded
// log-bucketed histograms, deterministically sorted by metric name so the
// output is diff-stable.
//
// Naming follows the Prometheus conventions mechanically from the dotted
// internal names:
//
//   - every metric is prefixed "cd_" and dots become underscores
//     (core.rounds → cd_core_rounds_total);
//   - counters get the `_total` suffix;
//   - nanosecond timers (names ending "_ns") are exposed as histograms in
//     seconds with the suffix rewritten to `_seconds`
//     (serve.request_ns → cd_serve_request_seconds);
//   - Observe histograms keep their name and unitless bucket bounds;
//   - a "route.<value>" segment pair becomes a route label, keeping "route"
//     in the family name so labeled and unlabeled families never collide
//     (serve.route.solve.requests → cd_serve_route_requests_total{route="solve"}).
//
// Histograms are exposed with cumulative `_bucket{le="..."}` series over the
// power-of-two ladder (trimmed past the last non-empty rung), `_sum`, and
// `_count`, so p50/p90/p99 fall out of histogram_quantile() server-side
// exactly as Snapshot estimates them client-side. Two meta series ride
// along: cd_uptime_seconds and cd_obs_events_dropped_total.
func (m *Metrics) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)

	type series struct {
		labels string // pre-rendered {route="x"} or ""
		value  float64
		hist   *Histogram // non-nil for histogram families
		scale  float64    // value divisor for histogram sums/bounds (1 or nsPerSecond)
	}
	type family struct {
		name   string // exposition family name, suffixes included for scalars
		typ    string // counter | gauge | histogram
		help   string
		series []series
	}
	fams := make(map[string]*family)
	add := func(name, typ, help string, s series) {
		f := fams[name]
		if f == nil {
			f = &family{name: name, typ: typ, help: help}
			fams[name] = f
		}
		f.series = append(f.series, s)
	}

	m.cmu.RLock()
	counterVals := make(map[string]int64, len(m.counters))
	for name, p := range m.counters {
		counterVals[name] = atomic.LoadInt64(p)
	}
	m.cmu.RUnlock()
	for name, v := range counterVals {
		pn, labels := promName(name)
		add(pn+"_total", "counter", name, series{labels: labels, value: float64(v)})
	}

	// Gauges and histograms share m.mu; histograms are rendered under the
	// lock (Histogram has no standalone snapshot of its buckets), so the
	// whole exposition is one consistent cut.
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, v := range m.gauges {
		pn, labels := promName(name)
		add(pn, "gauge", name, series{labels: labels, value: v})
	}
	for name, h := range m.timers {
		pn, labels := promName(name)
		if strings.HasSuffix(pn, "_ns") {
			pn = strings.TrimSuffix(pn, "_ns") + "_seconds"
		}
		add(pn, "histogram", name, series{labels: labels, hist: h, scale: nsPerSecond})
	}
	for name, h := range m.hists {
		pn, labels := promName(name)
		add(pn, "histogram", name, series{labels: labels, hist: h, scale: 1})
	}

	add("cd_uptime_seconds", "gauge", "seconds since the collector was created",
		series{value: time.Since(m.start).Seconds()})
	add("cd_obs_events_dropped_total", "counter", "trace events dropped past the buffer cap",
		series{value: float64(m.dropped)})

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	num := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		bw.WriteString("# HELP " + f.name + " " + f.help + "\n")
		bw.WriteString("# TYPE " + f.name + " " + f.typ + "\n")
		for _, s := range f.series {
			if s.hist == nil {
				bw.WriteString(f.name + s.labels + " " + num(s.value) + "\n")
				continue
			}
			bounds, cum := s.hist.Buckets()
			for i, ub := range bounds {
				bw.WriteString(f.name + "_bucket" + mergeLabels(s.labels, `le="`+num(ub/s.scale)+`"`) +
					" " + strconv.FormatUint(cum[i], 10) + "\n")
			}
			bw.WriteString(f.name + "_bucket" + mergeLabels(s.labels, `le="+Inf"`) +
				" " + strconv.FormatUint(s.hist.N(), 10) + "\n")
			bw.WriteString(f.name + "_sum" + s.labels + " " + num(s.hist.sum/s.scale) + "\n")
			bw.WriteString(f.name + "_count" + s.labels + " " +
				strconv.FormatUint(s.hist.N(), 10) + "\n")
		}
	}
	return bw.Flush()
}

// promName maps a dotted internal name to a Prometheus family name and a
// rendered label set. A segment pair "route.<value>" is lifted into a
// route label; "route" itself stays in the name so labeled families can
// never collide with their unlabeled aggregates.
func promName(dotted string) (name, labels string) {
	segs := strings.Split(dotted, ".")
	out := make([]string, 0, len(segs))
	for i := 0; i < len(segs); i++ {
		out = append(out, sanitizeSeg(segs[i]))
		if segs[i] == "route" && i+1 < len(segs) {
			labels = `{route="` + escapeLabel(segs[i+1]) + `"}`
			i++
		}
	}
	return "cd_" + strings.Join(out, "_"), labels
}

// sanitizeSeg maps one name segment into the [a-zA-Z0-9_] metric alphabet.
func sanitizeSeg(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// mergeLabels combines a rendered label set with one extra label ("le=...").
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}
