// Package obs is the repository's zero-dependency telemetry layer: a
// Collector interface over counters, gauges, nanosecond timers, and bounded
// histograms, plus a structured event stream with monotonic timestamps.
//
// The solver packages (core, parallel, reward, geom) accept an optional
// Collector; a nil or Nop collector makes every instrumentation site either
// a skipped branch or a no-op interface call, so uninstrumented runs pay
// essentially nothing. Live collectors are provided by this package too:
// Metrics aggregates counters/gauges/timers/histograms and exports a JSON
// Snapshot, and Sink streams every event as one JSON line (JSONL). Multi
// fans out to several collectors at once.
//
// Metric names are dotted strings namespaced by the package that emits them
// ("core.", "reward.", "parallel.", "geom.", "bench."); the canonical names
// are the Ctr*/Tim*/Obs* constants below so that producers and dashboards
// cannot drift apart.
package obs

import "time"

// Collector receives telemetry from instrumented code. Implementations must
// be safe for concurrent use: the candidate scans and per-seed walks emit
// from many goroutines.
type Collector interface {
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Gauge sets the named gauge to its most recent value.
	Gauge(name string, v float64)
	// Observe records one sample into the named bounded histogram.
	Observe(name string, v float64)
	// TimeNS records one nanosecond duration sample under the named timer.
	TimeNS(name string, ns int64)
	// Emit records a structured event. Implementations stamp e.TNS with a
	// monotonic nanosecond timestamp when it is zero.
	Emit(e Event)
}

// Event is one entry of the structured trace. TNS is nanoseconds since the
// collector was created, taken from the monotonic clock, so events from one
// run are totally ordered and immune to wall-clock steps.
type Event struct {
	TNS    int64              `json:"t_ns"`
	Type   string             `json:"type"`
	Alg    string             `json:"alg,omitempty"`
	Round  int                `json:"round,omitempty"`
	Fields map[string]float64 `json:"fields,omitempty"`

	// Trace is the request/trace ID the event belongs to; span events,
	// round events, and (when serving) per-period churn events carry it so a
	// server-wide JSONL stream can be partitioned by request. On round
	// events it is taken from the ambient span, so it is empty outside the
	// serving layer.
	Trace string `json:"trace,omitempty"`
	// Span and Parent are span IDs linking span_start/span_end events into a
	// tree (Parent is empty on a root span); Name is the span's operation
	// name ("request.solve", "solve", "round", "period", ...). All three are
	// empty on non-span events.
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name,omitempty"`
}

// Event types emitted by the instrumented solver packages.
const (
	// EvRoundStart / EvRoundEnd bracket one greedy round. EvRoundEnd
	// carries at least "gain" and "wall_ns".
	EvRoundStart = "round_start"
	EvRoundEnd   = "round_end"
	// EvScanStart / EvScanEnd bracket one candidate scan (the argmax over
	// data points inside a round). EvScanEnd carries "candidates".
	EvScanStart = "scan_start"
	EvScanEnd   = "scan_end"
	// EvSEB records one smallest-enclosing-ball construction with
	// "points" and, for the Welzl recursion, "depth".
	EvSEB = "seb"
	// EvInnerSolve records one continuous inner-solver invocation of
	// Algorithm 1 with "wall_ns".
	EvInnerSolve = "inner_solve"
	// EvSwapPass records one full sweep of the swap local search with
	// "pass", "improved" (0/1), and "objective".
	EvSwapPass = "swap_pass"
	// EvExperiment records one cdbench experiment with "wall_ns".
	EvExperiment = "experiment"
	// EvCancelled records a solver run ending early because its context
	// was cancelled or its deadline expired, carrying "rounds" — the number
	// of completed rounds whose centers the partial result retains.
	EvCancelled = "cancelled"
	// EvWarmStart records a warm-started re-solve comparing the carried-over
	// center set against the cold solve, with "cold", "warm", and
	// "improvement" (warm − cold, clamped at 0).
	EvWarmStart = "warm_start"
	// EvChurnPeriod records one period of the churn loop with "arrivals",
	// "departures", "n" (population after churn), and "objective".
	EvChurnPeriod = "churn_period"
	// EvRequestStart / EvRequestEnd bracket one request through the serving
	// layer (internal/serve). Alg carries the request id — kept for
	// backwards compatibility with pre-span traces — and Trace carries the
	// same id. EvRequestEnd carries "status" (HTTP code) and "wall_ns".
	EvRequestStart = "request_start"
	EvRequestEnd   = "request_end"
	// EvSpanStart / EvSpanEnd bracket one tracing span (see Span). Both
	// carry Trace, Span, Parent, and Name; EvSpanEnd additionally carries
	// "wall_ns" plus any attributes set on the span. A span_start without a
	// matching span_end marks work that was still in flight (or cut off by
	// cancellation) when the trace was read.
	EvSpanStart = "span_start"
	EvSpanEnd   = "span_end"
)

// Canonical metric names.
const (
	CtrRounds     = "core.rounds"
	CtrCancelled  = "core.cancelled"
	CtrCandidates = "core.candidates_evaluated"
	CtrLazyRepops = "core.lazy_heap_repops"
	CtrWalkSteps  = "core.walk_steps"
	CtrSwapEvals  = "core.swap_evals"
	CtrSwapPasses = "core.swap_passes"
	TimRound      = "core.round_ns"
	TimInnerSolve = "core.inner_solve_ns"

	CtrGainEvals      = "reward.gain_evals"
	CtrApplyRounds    = "reward.apply_rounds"
	CtrObjectiveEvals = "reward.objective_evals"

	CtrParTasks     = "parallel.tasks"
	CtrParChunks    = "parallel.chunks"
	TimWorkerBusy   = "parallel.worker_busy_ns"
	GaugeParWorkers = "parallel.workers"

	CtrSEBCalls     = "geom.seb_calls"
	ObsSEBPoints    = "geom.seb_points"
	ObsSEBDepth     = "geom.seb_depth"
	ObsCoresetIters = "geom.coreset_iters"

	CtrExperiments = "bench.experiments"
	TimExperiment  = "bench.experiment_ns"

	CtrWarmStarts = "core.warm_starts"
	CtrWarmWins   = "core.warm_wins"

	// Sharded-solve pipeline series (core.Pipeline fed by internal/shard).
	// Parts counts shards produced per partition, solves the per-shard
	// solver runs, halo the boundary points duplicated into neighboring
	// shards, candidates the centers entering the merge, and merge repops
	// the lazy re-evaluations the merge heap performed. WriteProm renders
	// them as cd_shard_parts_total, cd_shard_solves_total, and so on.
	CtrShardParts       = "shard.parts"
	CtrShardSolves      = "shard.solves"
	CtrShardHaloPoints  = "shard.halo_points"
	CtrShardCandidates  = "shard.candidates"
	CtrShardMergeRepops = "shard.merge_repops"
	TimShardSolve       = "shard.solve_ns"
	TimShardPartition   = "shard.partition_ns"
	TimShardMerge       = "shard.merge_ns"

	CtrNLCells         = "nearlinear.cells"
	CtrNLSeeds         = "nearlinear.seeds"
	CtrNLCandidates    = "nearlinear.exact_scored"
	CtrNLRefineSteps   = "nearlinear.refine_steps"
	CtrNLRefineAccepts = "nearlinear.refine_accepts"
	TimNLSnap          = "nearlinear.grid_snap_ns"
	TimNLSeed          = "nearlinear.seed_ns"
	TimNLRefine        = "nearlinear.refine_ns"

	CtrChurnPeriods  = "churn.periods"
	CtrChurnAdded    = "churn.users_added"
	CtrChurnRemoved  = "churn.users_removed"
	CtrChurnDeltas   = "churn.incremental_deltas"
	CtrChurnRebuilds = "churn.full_rebuilds"
	ObsWarmImprove   = "churn.warmstart_improvement"

	// Solve-result cache series (internal/cache wired through the serving
	// layer). Hits/misses/collapsed/bypass are counted by the serving layer
	// per lookup outcome; evictions and the bytes/entries gauges are
	// maintained by the cache itself as entries come and go. WriteProm
	// renders them as cd_cache_hits_total, cd_cache_bytes, and so on.
	CtrCacheHits      = "cache.hits"
	CtrCacheMisses    = "cache.misses"
	CtrCacheEvictions = "cache.evictions"
	CtrCacheCollapsed = "cache.collapsed"
	CtrCacheBypass    = "cache.bypass"
	GaugeCacheBytes   = "cache.bytes"
	GaugeCacheEntries = "cache.entries"

	// Cluster-mode series (internal/clusterd). Forwards counts shard solves
	// shipped to a peer, fallbacks the forwards that failed (dead or
	// saturated peer) and were re-solved locally, gossip rounds the
	// completed probe sweeps over the peer table; peers_live is the live-peer
	// gauge after the latest sweep. WriteProm renders them as
	// cd_cluster_forwards_total, cd_cluster_fallbacks_total,
	// cd_cluster_gossip_rounds_total, and cd_cluster_peers_live.
	CtrClusterForwards     = "cluster.forwards"
	CtrClusterFallbacks    = "cluster.fallbacks"
	CtrClusterGossipRounds = "cluster.gossip_rounds"
	GaugeClusterPeersLive  = "cluster.peers_live"
	TimClusterForward      = "cluster.forward_ns"

	CtrSrvRequests   = "serve.requests"
	CtrSrvAccepted   = "serve.accepted"
	CtrSrvQueueFull  = "serve.rejected_queue_full"
	CtrSrvBadRequest = "serve.rejected_bad_request"
	CtrSrvPartial    = "serve.partial_results"
	CtrSrvDraining   = "serve.rejected_draining"
	TimSrvRequest    = "serve.request_ns"
	GaugeSrvInFlight = "serve.in_flight"
	GaugeSrvQueued   = "serve.queued"
)

// Per-route serving metric names ("serve.route.<route>.<series>"). The
// serving layer emits one set per v1 route ("solve", "churn"); WriteProm
// recognizes the "route.<value>" segment pair and turns it into a Prometheus
// route label (e.g. cd_serve_route_requests_total{route="solve"}).

// SrvRouteRequests names the per-route request counter.
func SrvRouteRequests(route string) string { return "serve.route." + route + ".requests" }

// SrvRouteRejected names the per-route admission-reject counter (429 queue
// saturation plus 503 drain refusals).
func SrvRouteRejected(route string) string { return "serve.route." + route + ".rejected" }

// SrvRouteRequestNS names the per-route request-latency timer.
func SrvRouteRequestNS(route string) string { return "serve.route." + route + ".request_ns" }

// SrvRouteInFlight names the per-route in-flight gauge.
func SrvRouteInFlight(route string) string { return "serve.route." + route + ".in_flight" }

// Nop is the default collector: every method does nothing. Instrumented
// code treats it (and nil) as "telemetry off" via Active.
type Nop struct{}

// Count implements Collector.
func (Nop) Count(string, int64) {}

// Gauge implements Collector.
func (Nop) Gauge(string, float64) {}

// Observe implements Collector.
func (Nop) Observe(string, float64) {}

// TimeNS implements Collector.
func (Nop) TimeNS(string, int64) {}

// Emit implements Collector.
func (Nop) Emit(Event) {}

// OrNop returns c, or Nop when c is nil, so call sites never need a nil
// check before an interface call.
func OrNop(c Collector) Collector {
	if c == nil {
		return Nop{}
	}
	return c
}

// Active reports whether c is a live collector. Hot paths branch on this to
// skip event construction and clock reads entirely when telemetry is off.
func Active(c Collector) bool {
	if c == nil {
		return false
	}
	_, nop := c.(Nop)
	return !nop
}

// Timer measures one span on the monotonic clock and reports it to a
// collector as a TimeNS sample. The zero Timer (from StartTimer with an
// inactive collector) costs nothing and Stops to zero.
type Timer struct {
	c     Collector
	name  string
	start time.Time
}

// StartTimer begins a span. With an inactive collector it returns the zero
// Timer without reading the clock.
func StartTimer(c Collector, name string) Timer {
	if !Active(c) {
		return Timer{}
	}
	return Timer{c: c, name: name, start: time.Now()}
}

// Stop ends the span, records it, and returns the elapsed nanoseconds.
func (t Timer) Stop() int64 {
	if t.c == nil {
		return 0
	}
	ns := time.Since(t.start).Nanoseconds()
	t.c.TimeNS(t.name, ns)
	return ns
}

// multi fans every call out to each member.
type multi []Collector

// Multi combines collectors: every Count/Gauge/Observe/TimeNS/Emit is
// forwarded to each live argument. Nil and Nop members are dropped; if none
// remain, Multi returns Nop{}. A single survivor is returned unwrapped.
func Multi(cs ...Collector) Collector {
	var live multi
	for _, c := range cs {
		if Active(c) {
			live = append(live, c)
		}
	}
	switch len(live) {
	case 0:
		return Nop{}
	case 1:
		return live[0]
	}
	return live
}

// Count implements Collector.
func (m multi) Count(name string, delta int64) {
	for _, c := range m {
		c.Count(name, delta)
	}
}

// Gauge implements Collector.
func (m multi) Gauge(name string, v float64) {
	for _, c := range m {
		c.Gauge(name, v)
	}
}

// Observe implements Collector.
func (m multi) Observe(name string, v float64) {
	for _, c := range m {
		c.Observe(name, v)
	}
}

// TimeNS implements Collector.
func (m multi) TimeNS(name string, ns int64) {
	for _, c := range m {
		c.TimeNS(name, ns)
	}
}

// Emit implements Collector. Each member stamps TNS against its own clock
// base, so the same event may carry slightly different timestamps in
// different outputs; within any one output the ordering is monotonic.
func (m multi) Emit(e Event) {
	for _, c := range m {
		c.Emit(e)
	}
}
