package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxEvents bounds the event buffer a Metrics collector retains for
// its snapshot. Later events past the cap are dropped (and counted) rather
// than growing memory without bound; use Sink for a complete trace.
const DefaultMaxEvents = 8192

// Metrics is a live Collector that aggregates everything in memory and
// exports a Snapshot. All methods are safe for concurrent use: counters are
// atomics behind a read-locked map, gauges/histograms/events take a mutex.
type Metrics struct {
	start time.Time

	cmu      sync.RWMutex
	counters map[string]*int64

	mu        sync.Mutex
	gauges    map[string]float64
	hists     map[string]*Histogram
	timers    map[string]*Histogram
	events    []Event
	dropped   int64
	maxEvents int
}

// NewMetrics returns an empty Metrics collector with the default event cap.
func NewMetrics() *Metrics {
	return &Metrics{
		start:     time.Now(),
		counters:  make(map[string]*int64),
		gauges:    make(map[string]float64),
		hists:     make(map[string]*Histogram),
		timers:    make(map[string]*Histogram),
		maxEvents: DefaultMaxEvents,
	}
}

// SetMaxEvents adjusts the event-buffer cap (0 disables event retention
// entirely; counters and histograms still aggregate).
func (m *Metrics) SetMaxEvents(n int) {
	m.mu.Lock()
	m.maxEvents = n
	m.mu.Unlock()
}

// counter returns the atomic cell for name, creating it on first use.
func (m *Metrics) counter(name string) *int64 {
	m.cmu.RLock()
	p := m.counters[name]
	m.cmu.RUnlock()
	if p != nil {
		return p
	}
	m.cmu.Lock()
	defer m.cmu.Unlock()
	if p = m.counters[name]; p == nil {
		p = new(int64)
		m.counters[name] = p
	}
	return p
}

// Count implements Collector.
func (m *Metrics) Count(name string, delta int64) {
	atomic.AddInt64(m.counter(name), delta)
}

// Gauge implements Collector.
func (m *Metrics) Gauge(name string, v float64) {
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// Observe implements Collector.
func (m *Metrics) Observe(name string, v float64) {
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &Histogram{}
		m.hists[name] = h
	}
	h.Add(v)
	m.mu.Unlock()
}

// TimeNS implements Collector.
func (m *Metrics) TimeNS(name string, ns int64) {
	m.mu.Lock()
	h := m.timers[name]
	if h == nil {
		h = &Histogram{}
		m.timers[name] = h
	}
	h.Add(float64(ns))
	m.mu.Unlock()
}

// detailEvent reports whether an event type is high-frequency detail (one
// per inner operation) rather than a lifecycle summary. Detail events are
// the first to go when the buffer fills: a snapshot must never lose a
// round_end to a flood of seb events. span_start is detail too — a
// span_end alone still reconstructs the tree (its TNS and wall_ns recover
// the start).
func detailEvent(typ string) bool { return typ == EvSEB || typ == EvSpanStart }

// Emit implements Collector: the event is stamped against this collector's
// monotonic base (when TNS is zero) and buffered up to the cap. When the
// buffer is full, an incoming detail event is dropped; an incoming summary
// event instead evicts the oldest buffered detail event, so lifecycle
// events (round_start/round_end, scans, experiments) survive any volume of
// per-operation detail. Either way the dropped counter advances.
func (m *Metrics) Emit(e Event) {
	if e.TNS == 0 {
		e.TNS = time.Since(m.start).Nanoseconds()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.events) < m.maxEvents {
		m.events = append(m.events, e)
		return
	}
	m.dropped++
	if detailEvent(e.Type) {
		return
	}
	for i := range m.events {
		if detailEvent(m.events[i].Type) {
			copy(m.events[i:], m.events[i+1:])
			m.events[len(m.events)-1] = e
			return
		}
	}
}

// Snapshot is the JSON-exportable state of a Metrics collector at one
// moment.
type Snapshot struct {
	DurationNS    int64                   `json:"duration_ns"`
	Counters      map[string]int64        `json:"counters"`
	Gauges        map[string]float64      `json:"gauges,omitempty"`
	TimersNS      map[string]HistSnapshot `json:"timers_ns,omitempty"`
	Histograms    map[string]HistSnapshot `json:"histograms,omitempty"`
	Events        []Event                 `json:"events,omitempty"`
	EventsDropped int64                   `json:"events_dropped,omitempty"`
}

// Snapshot exports the current aggregate state. The returned value shares
// nothing with the collector and is safe to serialize while collection
// continues.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		DurationNS: time.Since(m.start).Nanoseconds(),
		Counters:   make(map[string]int64),
	}
	m.cmu.RLock()
	for name, p := range m.counters {
		s.Counters[name] = atomic.LoadInt64(p)
	}
	m.cmu.RUnlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(m.gauges))
		for k, v := range m.gauges {
			s.Gauges[k] = v
		}
	}
	if len(m.timers) > 0 {
		s.TimersNS = make(map[string]HistSnapshot, len(m.timers))
		for k, h := range m.timers {
			s.TimersNS[k] = h.Snapshot()
		}
	}
	if len(m.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(m.hists))
		for k, h := range m.hists {
			s.Histograms[k] = h.Snapshot()
		}
	}
	s.Events = append([]Event(nil), m.events...)
	s.EventsDropped = m.dropped
	return s
}

// WriteJSON writes the snapshot as indented JSON. The output is
// deterministic for a given collector state: encoding/json emits map keys
// in sorted order and the struct fields in declaration order, so two
// renders of the same state are byte-identical and /metrics output is
// golden-testable and diff-stable (TestWriteJSONDeterministic pins this).
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}

// CounterNames returns the sorted names of all counters touched so far
// (handy for tests and debug printing).
func (m *Metrics) CounterNames() []string {
	m.cmu.RLock()
	names := make([]string, 0, len(m.counters))
	for k := range m.counters {
		names = append(names, k)
	}
	m.cmu.RUnlock()
	sort.Strings(names)
	return names
}
