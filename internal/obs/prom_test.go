package obs

import (
	"bufio"
	"bytes"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/xrand"
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string // family + suffix, labels stripped
	labels string
	value  float64
}

// parseProm lints and parses WriteProm output: every family must have
// exactly one HELP and one TYPE line, in that order, before its samples,
// and no family may repeat.
func parseProm(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = map[string]string{}
	help := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)[2]
			if help[f] {
				t.Errorf("duplicate HELP for %s", f)
			}
			help[f] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			f, typ := fields[2], fields[3]
			if !help[f] {
				t.Errorf("TYPE before HELP for %s", f)
			}
			if _, dup := types[f]; dup {
				t.Errorf("duplicate TYPE for %s", f)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Errorf("family %s has unknown type %q", f, typ)
			}
			types[f] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unexpected comment line %q", line)
			continue
		}
		name, rest, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		labels := ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			labels = name[i:]
			name = name[:i]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		samples = append(samples, promSample{name: name, labels: labels, value: v})
	}
	return types, samples
}

// familyOf strips histogram sample suffixes back to the family name.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// TestWritePromLint populates every metric kind and lints the exposition:
// suffix conventions, no duplicate families, samples only under a declared
// family, cumulative monotone buckets consistent with _count.
func TestWritePromLint(t *testing.T) {
	m := NewMetrics()
	m.Count(CtrRounds, 5)
	m.Count(SrvRouteRequests("solve"), 3)
	m.Count(SrvRouteRequests("churn"), 2)
	m.Gauge(GaugeParWorkers, 8)
	m.Gauge(SrvRouteInFlight("solve"), 1)
	for i := 0; i < 100; i++ {
		m.TimeNS(SrvRouteRequestNS("solve"), int64(1000*(i+1)))
		m.Observe(ObsSEBDepth, float64(i%7))
	}

	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	text := buf.String()
	types, samples := parseProm(t, text)

	for f, typ := range types {
		if !strings.HasPrefix(f, "cd_") {
			t.Errorf("family %s lacks the cd_ prefix", f)
		}
		if typ == "counter" && !strings.HasSuffix(f, "_total") {
			t.Errorf("counter %s lacks _total", f)
		}
		if strings.HasSuffix(f, "_ns") {
			t.Errorf("family %s leaked the _ns suffix; want _seconds", f)
		}
	}
	for _, s := range samples {
		if _, ok := types[familyOf(s.name, types)]; !ok {
			t.Errorf("sample %s%s has no family declaration", s.name, s.labels)
		}
	}

	// The specific families the serving layer relies on.
	for f, typ := range map[string]string{
		"cd_core_rounds_total":           "counter",
		"cd_serve_route_requests_total":  "counter",
		"cd_serve_route_in_flight":       "gauge",
		"cd_serve_route_request_seconds": "histogram",
		"cd_uptime_seconds":              "gauge",
		"cd_obs_events_dropped_total":    "counter",
	} {
		if types[f] != typ {
			t.Errorf("family %s: type %q, want %q", f, types[f], typ)
		}
	}

	// Route labels: both routes under one family name.
	routes := map[string]bool{}
	for _, s := range samples {
		if s.name == "cd_serve_route_requests_total" {
			routes[s.labels] = true
		}
	}
	if !routes[`{route="solve"}`] || !routes[`{route="churn"}`] {
		t.Errorf("route labels wrong: %v", routes)
	}

	// Histogram shape: cumulative monotone, +Inf == _count, bounds in
	// seconds (the 100 samples run 1µs..100µs, so every bound < 1s).
	var buckets []promSample
	var count, sum float64
	for _, s := range samples {
		switch s.name {
		case "cd_serve_route_request_seconds_bucket":
			buckets = append(buckets, s)
		case "cd_serve_route_request_seconds_count":
			count = s.value
		case "cd_serve_route_request_seconds_sum":
			sum = s.value
		}
	}
	if count != 100 {
		t.Fatalf("_count = %v, want 100", count)
	}
	if sum <= 0 || sum > 1 { // 5050 * 1000ns ≈ 5.05e-3 s
		t.Errorf("_sum = %v s, want small positive", sum)
	}
	if len(buckets) < 2 {
		t.Fatalf("only %d bucket samples", len(buckets))
	}
	prev := -1.0
	sawInf := false
	for _, b := range buckets {
		if b.value < prev {
			t.Errorf("bucket counts not cumulative: %v after %v", b.value, prev)
		}
		prev = b.value
		if strings.Contains(b.labels, `le="+Inf"`) {
			sawInf = true
			if b.value != count {
				t.Errorf("+Inf bucket = %v, want %v", b.value, count)
			}
		}
	}
	if !sawInf {
		t.Error("no +Inf bucket")
	}
}

// TestWritePromDeterministic checks two renders of the same state differ
// only in the uptime gauge.
func TestWritePromDeterministic(t *testing.T) {
	m := NewMetrics()
	m.Count(CtrRounds, 1)
	m.Gauge(GaugeParWorkers, 2)
	m.TimeNS(TimRound, 500)
	strip := func(text string) string {
		var keep []string
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, "cd_uptime_seconds ") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	var a, b bytes.Buffer
	if err := m.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if strip(a.String()) != strip(b.String()) {
		t.Errorf("renders differ:\n%s\n---\n%s", a.String(), b.String())
	}
}

// TestWriteJSONDeterministic pins the /metrics JSON contract: map keys come
// out sorted, and two renders of the same state are byte-identical apart
// from the duration stamp.
func TestWriteJSONDeterministic(t *testing.T) {
	m := NewMetrics()
	m.SetMaxEvents(0) // drop events so TNS stamps cannot differ
	for _, name := range []string{"z.last", "a.first", "m.mid"} {
		m.Count(name, 1)
		m.Gauge("g."+name, 2)
	}
	strip := func(text string) string {
		var keep []string
		for _, line := range strings.Split(text, "\n") {
			if strings.Contains(line, `"duration_ns"`) {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	var a, b bytes.Buffer
	if err := m.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if strip(a.String()) != strip(b.String()) {
		t.Errorf("renders differ:\n%s\n---\n%s", a.String(), b.String())
	}
	// Key order: each counter name must appear after the previous in sorted
	// order within the counters block.
	text := a.String()
	iA := strings.Index(text, `"a.first"`)
	iM := strings.Index(text, `"m.mid"`)
	iZ := strings.Index(text, `"z.last"`)
	if iA < 0 || iM < 0 || iZ < 0 || !(iA < iM && iM < iZ) {
		t.Errorf("counter keys not sorted: a=%d m=%d z=%d", iA, iM, iZ)
	}
}

// TestQuantileWithinOneBucket checks the histogram quantile estimate
// against the exact sample quantile: the estimate is the containing
// bucket's upper bound, so exact ≤ estimate ≤ 2·exact always holds on the
// power-of-two ladder (for samples ≥ 1).
func TestQuantileWithinOneBucket(t *testing.T) {
	rng := xrand.New(42)
	for trial := 0; trial < 20; trial++ {
		h := &Histogram{}
		n := 200 + rng.Intn(800)
		samples := make([]float64, n)
		for i := range samples {
			// Log-uniform over ~[1, 1e6]: exercises many rungs.
			samples[i] = math.Pow(10, 6*rng.Float64())
			h.Add(samples[i])
		}
		sort.Float64s(samples)
		snap := h.Snapshot()
		for _, q := range []struct {
			p   float64
			est float64
		}{{0.50, snap.P50}, {0.90, snap.P90}, {0.99, snap.P99}} {
			idx := int(math.Ceil(q.p*float64(n))) - 1
			exact := samples[idx]
			if q.est < exact || q.est > 2*exact {
				t.Errorf("trial %d p%.0f: estimate %v outside [exact, 2*exact] = [%v, %v]",
					trial, 100*q.p, q.est, exact, 2*exact)
			}
		}
	}
}

func TestPromNameMapping(t *testing.T) {
	cases := []struct {
		in, name, labels string
	}{
		{"core.rounds", "cd_core_rounds", ""},
		{"serve.route.solve.requests", "cd_serve_route_requests", `{route="solve"}`},
		{"serve.route.churn.request_ns", "cd_serve_route_request_ns", `{route="churn"}`},
		{"weird name.x", "cd_weird_name_x", ""},
	}
	for _, c := range cases {
		name, labels := promName(c.in)
		if name != c.name || labels != c.labels {
			t.Errorf("promName(%q) = (%q, %q), want (%q, %q)", c.in, name, labels, c.name, c.labels)
		}
	}
}
