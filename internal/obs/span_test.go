package obs

import (
	"context"
	"testing"
)

// TestSpanTreeReconstruction builds a three-level tree and checks the
// emitted events reassemble into it: every span_end links to its parent,
// all under one trace ID.
func TestSpanTreeReconstruction(t *testing.T) {
	m := NewMetrics()
	root := StartSpan(m, "req-1", "request")
	if root == nil {
		t.Fatal("StartSpan returned nil on a live collector")
	}
	if root.TraceID() != "req-1" {
		t.Errorf("TraceID = %q, want req-1", root.TraceID())
	}
	solve := root.Child("solve")
	solve.SetAttr("k", 3)
	for i := 0; i < 3; i++ {
		r := solve.Child("round")
		r.SetAttr("round", float64(i+1))
		r.End()
	}
	solve.End()
	root.SetAttr("status", 200)
	root.End()

	snap := m.Snapshot()
	parents := map[string]string{} // span id → parent id, from span_start
	names := map[string]string{}
	ends := map[string]Event{}
	for _, e := range snap.Events {
		if e.Trace != "req-1" {
			t.Errorf("event %s has trace %q, want req-1", e.Type, e.Trace)
		}
		switch e.Type {
		case EvSpanStart:
			parents[e.Span] = e.Parent
			names[e.Span] = e.Name
		case EvSpanEnd:
			ends[e.Span] = e
		default:
			t.Errorf("unexpected event type %q", e.Type)
		}
	}
	if len(parents) != 5 || len(ends) != 5 {
		t.Fatalf("got %d starts, %d ends, want 5 each", len(parents), len(ends))
	}
	// Walk each round up to the root.
	rounds := 0
	for id, name := range names {
		if name != "round" {
			continue
		}
		rounds++
		p := parents[id]
		if names[p] != "solve" {
			t.Errorf("round %s parented by %q, want solve", id, names[p])
		}
		if gp := parents[p]; names[gp] != "request" || parents[gp] != "" {
			t.Errorf("solve parented by %q (parent %q), want root request", names[gp], parents[gp])
		}
	}
	if rounds != 3 {
		t.Errorf("found %d round spans, want 3", rounds)
	}
	// Ends carry wall_ns and the attributes; start events carry none.
	for id, e := range ends {
		if e.Fields["wall_ns"] < 0 {
			t.Errorf("span %s wall_ns = %v", id, e.Fields["wall_ns"])
		}
		switch names[id] {
		case "solve":
			if e.Fields["k"] != 3 {
				t.Errorf("solve attrs = %v, want k=3", e.Fields)
			}
		case "request":
			if e.Fields["status"] != 200 {
				t.Errorf("request attrs = %v, want status=200", e.Fields)
			}
		}
	}
}

// TestSpanNilSafety checks the zero-cost path: inactive collectors yield
// nil spans and every method, context helper included, is a no-op.
func TestSpanNilSafety(t *testing.T) {
	for _, c := range []Collector{nil, Nop{}} {
		s := StartSpan(c, "t", "op")
		if s != nil {
			t.Fatalf("StartSpan(%T) = %v, want nil", c, s)
		}
	}
	var s *Span
	child := s.Child("x")
	if child != nil {
		t.Fatal("nil.Child materialized a span")
	}
	s.SetAttr("k", 1)
	if ns := s.End(); ns != 0 {
		t.Errorf("nil.End = %d", ns)
	}
	if s.ID() != "" || s.TraceID() != "" {
		t.Error("nil span has identity")
	}
	ctx := context.Background()
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Error("ContextWithSpan(ctx, nil) wrapped the context")
	}
	if SpanFromContext(ctx) != nil {
		t.Error("SpanFromContext on bare context not nil")
	}
	if SpanFromContext(nil) != nil {
		t.Error("SpanFromContext(nil) not nil")
	}
}

// TestSpanContextRoundTrip checks the ambient-span plumbing lower layers
// rely on.
func TestSpanContextRoundTrip(t *testing.T) {
	m := NewMetrics()
	s := StartSpan(m, "req-2", "request")
	ctx := ContextWithSpan(context.Background(), s)
	got := SpanFromContext(ctx)
	if got != s {
		t.Fatalf("SpanFromContext = %v, want %v", got, s)
	}
	child := got.Child("inner")
	if child.TraceID() != "req-2" {
		t.Errorf("child trace = %q", child.TraceID())
	}
}

// TestSpanEndIdempotent checks double-End emits once and late SetAttr is
// dropped.
func TestSpanEndIdempotent(t *testing.T) {
	m := NewMetrics()
	s := StartSpan(m, "t", "op")
	if ns := s.End(); ns < 0 {
		t.Errorf("first End = %d", ns)
	}
	s.SetAttr("late", 1)
	if ns := s.End(); ns != 0 {
		t.Errorf("second End = %d, want 0", ns)
	}
	var ends []Event
	for _, e := range m.Snapshot().Events {
		if e.Type == EvSpanEnd {
			ends = append(ends, e)
		}
	}
	if len(ends) != 1 {
		t.Fatalf("%d span_end events, want 1", len(ends))
	}
	if _, ok := ends[0].Fields["late"]; ok {
		t.Error("attribute set after End leaked into the event")
	}
}
