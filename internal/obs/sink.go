package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Sink is a Collector that streams every event as one JSON object per line
// (JSONL) and ignores the aggregate signals (counters, gauges, histograms,
// timers) — pair it with a Metrics collector via Multi when both views are
// wanted. Writes are buffered; call Flush (or Close) before reading the
// output.
type Sink struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	enc   *json.Encoder
	start time.Time
	err   error
}

// NewSink returns a sink writing JSONL to w. Timestamps are nanoseconds on
// the monotonic clock since this call.
func NewSink(w io.Writer) *Sink {
	bw := bufio.NewWriter(w)
	return &Sink{bw: bw, enc: json.NewEncoder(bw), start: time.Now()}
}

// Count implements Collector (ignored).
func (*Sink) Count(string, int64) {}

// Gauge implements Collector (ignored).
func (*Sink) Gauge(string, float64) {}

// Observe implements Collector (ignored).
func (*Sink) Observe(string, float64) {}

// TimeNS implements Collector (ignored).
func (*Sink) TimeNS(string, int64) {}

// Emit implements Collector: one JSONL line per event, stamped against the
// sink's monotonic base when TNS is zero. The first write error is latched
// and subsequent events are dropped.
func (s *Sink) Emit(e Event) {
	if e.TNS == 0 {
		e.TNS = time.Since(s.start).Nanoseconds()
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = s.enc.Encode(e)
	}
	s.mu.Unlock()
}

// Flush forces buffered lines to the underlying writer and reports the
// first error seen by any write.
func (s *Sink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Err reports the first write error (nil when all writes succeeded).
func (s *Sink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
