package obs

import "math"

// histBuckets is the shared geometric bucket ladder: powers of two from 1
// up to 2^49 (~6.5 days in nanoseconds, ~10^14 for unitless samples). One
// ladder for every histogram keeps the implementation bounded and makes
// snapshots from different runs directly comparable.
const histBuckets = 50

// Histogram is a bounded histogram over non-negative samples: counts per
// power-of-two bucket plus exact count, sum, min, and max. Negative or NaN
// samples are counted but excluded from the buckets. It is not
// goroutine-safe on its own; Metrics serializes access.
type Histogram struct {
	counts  [histBuckets + 1]uint64 // counts[i]: sample in [2^(i-1), 2^i); last = overflow
	n       uint64
	sum     float64
	min     float64
	max     float64
	invalid uint64 // NaN or negative samples
}

// bucketIndex maps a sample to its ladder rung: 0 holds (0, 1], rung i
// holds (2^(i-1), 2^i], and the final rung collects overflow.
func bucketIndex(v float64) int {
	if v <= 1 {
		return 0
	}
	i := int(math.Ceil(math.Log2(v)))
	if i >= histBuckets {
		return histBuckets
	}
	return i
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) || v < 0 {
		h.invalid++
		return
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.counts[bucketIndex(v)]++
}

// N reports the number of valid samples.
func (h *Histogram) N() uint64 { return h.n }

// quantile returns the upper bound of the bucket containing the q-th
// sample (0 < q ≤ 1) — an upper estimate accurate to one bucket.
func (h *Histogram) quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			if i >= histBuckets {
				return h.max
			}
			ub := math.Pow(2, float64(i))
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// Buckets exports the ladder as cumulative counts for text exposition:
// bounds[i] is the inclusive upper bound of rung i (2^i, with bounds[0] = 1)
// and cum[i] counts the valid samples ≤ bounds[i]. Rungs above the last
// non-empty one are trimmed — the implicit +Inf bucket always equals N().
// An empty histogram returns (nil, nil).
func (h *Histogram) Buckets() (bounds []float64, cum []uint64) {
	last := -1
	for i, c := range h.counts {
		if c > 0 {
			last = i
		}
	}
	if last < 0 {
		return nil, nil
	}
	if last >= histBuckets {
		last = histBuckets - 1 // overflow rung is the +Inf bucket
	}
	bounds = make([]float64, last+1)
	cum = make([]uint64, last+1)
	var seen uint64
	for i := 0; i <= last; i++ {
		seen += h.counts[i]
		bounds[i] = math.Pow(2, float64(i))
		cum[i] = seen
	}
	return bounds, cum
}

// HistSnapshot is the exported summary of a Histogram.
type HistSnapshot struct {
	Count   uint64  `json:"count"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
	Invalid uint64  `json:"invalid,omitempty"`
}

// Snapshot summarizes the histogram. Quantiles are bucket upper bounds
// (within a factor of two of the true sample quantile).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.n, Sum: h.sum, Min: h.min, Max: h.max, Invalid: h.invalid}
	if h.n > 0 {
		s.Mean = h.sum / float64(h.n)
		s.P50 = h.quantile(0.50)
		s.P90 = h.quantile(0.90)
		s.P99 = h.quantile(0.99)
	}
	return s
}
