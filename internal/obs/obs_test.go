package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNopAndActive(t *testing.T) {
	if Active(nil) {
		t.Error("nil collector active")
	}
	if Active(Nop{}) {
		t.Error("Nop active")
	}
	if !Active(NewMetrics()) {
		t.Error("Metrics not active")
	}
	if _, ok := OrNop(nil).(Nop); !ok {
		t.Error("OrNop(nil) not Nop")
	}
	m := NewMetrics()
	if OrNop(m) != Collector(m) {
		t.Error("OrNop(live) did not pass through")
	}
	// The zero Timer from an inactive collector must be a no-op.
	tm := StartTimer(nil, TimRound)
	if ns := tm.Stop(); ns != 0 {
		t.Errorf("inactive timer measured %d ns", ns)
	}
}

func TestMetricsCountersGaugesTimers(t *testing.T) {
	m := NewMetrics()
	m.Count(CtrRounds, 2)
	m.Count(CtrRounds, 3)
	m.Count(CtrGainEvals, 7)
	m.Gauge(GaugeParWorkers, 8)
	m.Observe(ObsSEBDepth, 3)
	m.Observe(ObsSEBDepth, 5)
	m.TimeNS(TimRound, 1500)

	s := m.Snapshot()
	if s.Counters[CtrRounds] != 5 || s.Counters[CtrGainEvals] != 7 {
		t.Errorf("counters wrong: %+v", s.Counters)
	}
	if s.Gauges[GaugeParWorkers] != 8 {
		t.Errorf("gauge wrong: %+v", s.Gauges)
	}
	h := s.Histograms[ObsSEBDepth]
	if h.Count != 2 || h.Min != 3 || h.Max != 5 || h.Mean != 4 {
		t.Errorf("histogram wrong: %+v", h)
	}
	tm := s.TimersNS[TimRound]
	if tm.Count != 1 || tm.Sum != 1500 {
		t.Errorf("timer wrong: %+v", tm)
	}
	if s.DurationNS <= 0 {
		t.Error("snapshot duration not positive")
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m.Count(CtrCandidates, 1)
				m.Observe(ObsSEBPoints, float64(i))
				m.TimeNS(TimWorkerBusy, int64(i))
				m.Emit(Event{Type: EvSEB})
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Counters[CtrCandidates] != workers*each {
		t.Errorf("counter = %d, want %d", s.Counters[CtrCandidates], workers*each)
	}
	if s.Histograms[ObsSEBPoints].Count != workers*each {
		t.Errorf("histogram count = %d", s.Histograms[ObsSEBPoints].Count)
	}
	if got := len(s.Events) + int(s.EventsDropped); got != workers*each {
		t.Errorf("events+dropped = %d, want %d", got, workers*each)
	}
}

func TestMetricsEventCapAndDrop(t *testing.T) {
	m := NewMetrics()
	m.SetMaxEvents(3)
	for i := 0; i < 10; i++ {
		m.Emit(Event{Type: EvRoundEnd, Round: i + 1})
	}
	s := m.Snapshot()
	if len(s.Events) != 3 || s.EventsDropped != 7 {
		t.Errorf("kept %d dropped %d, want 3/7", len(s.Events), s.EventsDropped)
	}
}

func TestMetricsSummaryEventsEvictDetail(t *testing.T) {
	m := NewMetrics()
	m.SetMaxEvents(4)
	// Flood the buffer with detail events, then emit lifecycle summaries:
	// every summary must survive by evicting the oldest seb event.
	for i := 0; i < 10; i++ {
		m.Emit(Event{Type: EvSEB})
	}
	for r := 1; r <= 3; r++ {
		m.Emit(Event{Type: EvRoundEnd, Alg: "greedy4", Round: r})
	}
	s := m.Snapshot()
	if len(s.Events) != 4 {
		t.Fatalf("kept %d events, want 4", len(s.Events))
	}
	rounds := 0
	for _, e := range s.Events {
		if e.Type == EvRoundEnd {
			rounds++
		}
	}
	if rounds != 3 {
		t.Errorf("kept %d round_end events, want all 3", rounds)
	}
	// 6 overflow seb drops + 3 evictions.
	if s.EventsDropped != 9 {
		t.Errorf("dropped = %d, want 9", s.EventsDropped)
	}
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].TNS < s.Events[i-1].TNS {
			t.Fatal("eviction broke timestamp ordering")
		}
	}
}

func TestHistogramQuantilesAndInvalid(t *testing.T) {
	var h Histogram
	for v := 1; v <= 1000; v++ {
		h.Add(float64(v))
	}
	h.Add(-1)
	h.Add(float64(uint64(1) << 60)) // overflow bucket
	s := h.Snapshot()
	if s.Invalid != 1 {
		t.Errorf("invalid = %d, want 1", s.Invalid)
	}
	if s.Count != 1001 {
		t.Errorf("count = %d", s.Count)
	}
	// Bucket quantiles are upper bounds within a factor of two.
	if s.P50 < 500 || s.P50 > 1024 {
		t.Errorf("p50 = %v out of [500, 1024]", s.P50)
	}
	if s.P99 < 990 || s.P99 > float64(uint64(1)<<60) {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.Max != float64(uint64(1)<<60) || s.Min != 1 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestMultiFansOutAndCollapses(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	c := Multi(nil, Nop{}, a, b)
	c.Count(CtrRounds, 1)
	c.Emit(Event{Type: EvRoundStart, Alg: "greedy2", Round: 1})
	for _, m := range []*Metrics{a, b} {
		s := m.Snapshot()
		if s.Counters[CtrRounds] != 1 || len(s.Events) != 1 {
			t.Errorf("member missed fan-out: %+v", s)
		}
	}
	if _, ok := Multi(nil, Nop{}).(Nop); !ok {
		t.Error("Multi of dead collectors not Nop")
	}
	if Multi(a) != Collector(a) {
		t.Error("Multi of one live collector not unwrapped")
	}
}

// knownEventTypes is the schema's closed set of event types.
var knownEventTypes = map[string]bool{
	EvRoundStart: true, EvRoundEnd: true,
	EvScanStart: true, EvScanEnd: true,
	EvSEB: true, EvInnerSolve: true, EvSwapPass: true, EvExperiment: true,
}

// TestSinkJSONLSchema validates the JSONL event schema: one JSON object per
// line, required t_ns (monotonically non-decreasing) and type (from the
// known set), round ≥ 1 when present, and no unknown keys.
func TestSinkJSONLSchema(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	s.Emit(Event{Type: EvRoundStart, Alg: "greedy2", Round: 1})
	s.Emit(Event{Type: EvScanStart, Alg: "greedy2", Round: 1})
	s.Emit(Event{Type: EvScanEnd, Alg: "greedy2", Round: 1, Fields: map[string]float64{"candidates": 40}})
	s.Emit(Event{Type: EvSEB, Fields: map[string]float64{"points": 7, "depth": 3}})
	s.Emit(Event{Type: EvRoundEnd, Alg: "greedy2", Round: 1, Fields: map[string]float64{"gain": 12.5, "wall_ns": 1e6}})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	allowedKeys := map[string]bool{"t_ns": true, "type": true, "alg": true, "round": true, "fields": true}
	var lastTNS int64 = -1
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		lines++
		line := sc.Bytes()
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(line, &raw); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", lines, err, line)
		}
		for k := range raw {
			if !allowedKeys[k] {
				t.Errorf("line %d: unknown key %q", lines, k)
			}
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("line %d not an Event: %v", lines, err)
		}
		if !knownEventTypes[e.Type] {
			t.Errorf("line %d: unknown event type %q", lines, e.Type)
		}
		if e.TNS < lastTNS {
			t.Errorf("line %d: t_ns %d went backwards (prev %d)", lines, e.TNS, lastTNS)
		}
		if e.TNS < 0 {
			t.Errorf("line %d: negative t_ns %d", lines, e.TNS)
		}
		if raw["round"] != nil && e.Round < 1 {
			t.Errorf("line %d: round %d < 1", lines, e.Round)
		}
		lastTNS = e.TNS
	}
	if lines != 5 {
		t.Fatalf("wrote %d lines, want 5", lines)
	}
}

func TestSinkIgnoresAggregates(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	s.Count(CtrRounds, 1)
	s.Gauge(GaugeParWorkers, 4)
	s.Observe(ObsSEBDepth, 1)
	s.TimeNS(TimRound, 10)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("aggregate signals leaked into the event stream: %q", buf.String())
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	m := NewMetrics()
	m.Count(CtrRounds, 4)
	m.TimeNS(TimRound, 2500)
	m.Emit(Event{Type: EvRoundEnd, Alg: "greedy3", Round: 1, Fields: map[string]float64{"gain": 3}})
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot JSON invalid: %v\n%s", err, buf.String())
	}
	if s.Counters[CtrRounds] != 4 || len(s.Events) != 1 || s.Events[0].Fields["gain"] != 3 {
		t.Errorf("round-trip lost data: %+v", s)
	}
	if !strings.Contains(buf.String(), `"timers_ns"`) {
		t.Error("timers missing from JSON")
	}
	if names := m.CounterNames(); len(names) != 1 || names[0] != CtrRounds {
		t.Errorf("CounterNames = %v", names)
	}
}
