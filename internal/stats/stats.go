// Package stats provides the summary statistics the experiment harness
// aggregates over trials: mean, sample variance, confidence intervals,
// extrema, Jain's fairness index, and simple fixed-width histograms.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary condenses a sample of float64 observations.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased sample variance (0 when N < 2)
	Min, Max float64
}

// Summarize computes a Summary. It returns an error for an empty sample or
// non-finite observations.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, errors.New("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Summary{}, fmt.Errorf("stats: non-finite observation %v", x)
		}
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N >= 2 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
	}
	return s, nil
}

// Stddev returns the sample standard deviation.
func (s Summary) Stddev() float64 { return math.Sqrt(s.Variance) }

// StdErr returns the standard error of the mean.
func (s Summary) StdErr() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Stddev() / math.Sqrt(float64(s.N))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval on the mean.
func (s Summary) CI95() float64 { return 1.96 * s.StdErr() }

// String renders "mean ± ci95 (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", s.Mean, s.CI95(), s.N)
}

// Mean returns the arithmetic mean. Like Summarize, it returns an explicit
// error for an empty sample or non-finite observations instead of silently
// propagating 0 or NaN into downstream tables.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: empty sample")
	}
	var sum float64
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("stats: non-finite observation %v", x)
		}
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Median returns the sample median, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// LinearFit returns the least-squares slope and intercept of y against x.
// Fitting log(time) against log(n) yields an empirical complexity exponent,
// which the complexity experiment uses to verify Theorems 3–4. It returns an
// error when fewer than two distinct x values are given or inputs are
// non-finite.
func LinearFit(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) {
		return 0, 0, fmt.Errorf("stats: fit length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, 0, errors.New("stats: fit needs at least two points")
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) || math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			return 0, 0, errors.New("stats: non-finite fit input")
		}
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	n := float64(len(x))
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return 0, 0, errors.New("stats: degenerate fit (all x equal)")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²) in (0, 1]; 1 means
// perfectly even allocation. It returns 0 for an empty or all-zero sample.
// The broadcast simulator reports it over per-user satisfaction.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Histogram is a fixed-width histogram over the closed range [Lo, Hi]: a
// sample exactly equal to Hi lands in the top bin rather than overflowing,
// so a histogram over [0, 1] counts a perfect score where readers expect it.
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Under   int // observations below Lo
	Over    int // observations strictly above Hi
	NaN     int // NaN observations (neither binnable nor ordered)
	samples int
}

// NewHistogram builds a histogram with the given bin count. It returns an
// error when bins < 1 or the range is empty/invalid.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: bins = %d must be >= 1", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: invalid histogram range [%v, %v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation. x == Hi is clamped into the top bin (the
// bin-index computation would otherwise land on len(Counts) and the sample
// would vanish into the overflow count); NaN is tallied separately rather
// than fed into the bin arithmetic, where its int conversion is
// implementation-defined and can panic with an out-of-range index.
func (h *Histogram) Add(x float64) {
	h.samples++
	switch {
	case math.IsNaN(x):
		h.NaN++
	case x < h.Lo:
		h.Under++
	case x > h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // x == Hi, or Hi-ulp rounding up
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// N reports the total number of recorded observations.
func (h *Histogram) N() int { return h.samples }

// Render draws the histogram as ASCII rows, one per bin, with bars scaled to
// width characters.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxCount := 1
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/maxCount)
		fmt.Fprintf(&b, "[%8.3f, %8.3f) %6d %s\n", h.Lo+float64(i)*binW, h.Lo+float64(i+1)*binW, c, bar)
	}
	if h.Under > 0 || h.Over > 0 || h.NaN > 0 {
		fmt.Fprintf(&b, "(under: %d, over: %d, nan: %d)\n", h.Under, h.Over, h.NaN)
	}
	return b.String()
}
