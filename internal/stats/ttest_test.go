package stats

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		{1, 1, 0.5, 0.5},     // uniform
		{2, 2, 0.5, 0.5},     // symmetric
		{1, 1, 0.25, 0.25},   // I_x(1,1) = x
		{2, 1, 0.5, 0.25},    // I_x(2,1) = x²
		{1, 2, 0.5, 0.75},    // I_x(1,2) = 1-(1-x)²
		{0.5, 0.5, 0.5, 0.5}, // arcsine distribution, symmetric
		// Via the binomial identity I_x(5,3) = P(Bin(7, x) >= 5):
		// 21·0.7⁵·0.3² + 7·0.7⁶·0.3 + 0.7⁷ = 0.6470695.
		{5, 3, 0.7, 0.6470695},
	}
	for _, c := range cases {
		if got := RegIncBeta(c.a, c.b, c.x); math.Abs(got-c.want) > 1e-8 {
			t.Errorf("I_%g(%g,%g) = %.10f, want %.10f", c.x, c.a, c.b, got, c.want)
		}
	}
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("boundary values wrong")
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	cases := []struct {
		t, df, want float64
	}{
		{0, 5, 0.5},
		{1, 1, 0.75}, // t(1) is Cauchy: CDF(1) = 3/4
		{-1, 1, 0.25},
		{2.0, 10, 0.963306},   // reference
		{1.812, 10, 0.95},     // t_{0.95,10} ≈ 1.812
		{12.706, 1, 0.975},    // t_{0.975,1} ≈ 12.706
		{1.96, 1e6, 0.975002}, // ~normal for huge df
	}
	for _, c := range cases {
		if got := StudentTCDF(c.t, c.df); math.Abs(got-c.want) > 2e-4 {
			t.Errorf("T(%g; df=%g) = %.6f, want %.6f", c.t, c.df, got, c.want)
		}
	}
	if StudentTCDF(math.Inf(1), 5) != 1 || StudentTCDF(math.Inf(-1), 5) != 0 {
		t.Error("infinite t wrong")
	}
	if !math.IsNaN(StudentTCDF(1, -1)) {
		t.Error("invalid df not NaN")
	}
}

func TestWelchTDetectsDifference(t *testing.T) {
	rng := xrand.New(171)
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = 10 + rng.NormFloat64()
		b[i] = 12 + rng.NormFloat64()
	}
	res, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("2-sigma mean gap not detected: p = %v", res.P)
	}
	if res.T >= 0 {
		t.Errorf("t should be negative (meanA < meanB): %v", res.T)
	}
}

func TestWelchTNoDifference(t *testing.T) {
	rng := xrand.New(173)
	rejections := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 15)
		b := make([]float64, 15)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		res, err := WelchT(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejections++
		}
	}
	// Under the null, ~5% false rejections; allow generous slack.
	if rejections > trials/5 {
		t.Errorf("false rejection rate %d/%d far above nominal 5%%", rejections, trials)
	}
}

func TestWelchTEdgeCases(t *testing.T) {
	if _, err := WelchT([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("single observation accepted")
	}
	if _, err := WelchT(nil, []float64{1, 2}); err == nil {
		t.Error("empty sample accepted")
	}
	// Identical constant samples: p = 1.
	res, err := WelchT([]float64{3, 3, 3}, []float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("identical constants p = %v, want 1", res.P)
	}
	// Distinct constant samples: p = 0.
	res, err = WelchT([]float64{3, 3, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Errorf("distinct constants p = %v, want 0", res.P)
	}
}

func TestWelchTSymmetry(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 3, 4, 5, 7}
	ab, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := WelchT(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ab.T+ba.T) > 1e-12 || math.Abs(ab.P-ba.P) > 1e-12 {
		t.Errorf("asymmetric: %+v vs %+v", ab, ba)
	}
}
