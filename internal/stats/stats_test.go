package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarizeKnown(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample variance of 1..4 is 5/3.
	if math.Abs(s.Variance-5.0/3) > 1e-12 {
		t.Fatalf("variance = %v, want 5/3", s.Variance)
	}
	if math.Abs(s.Stddev()-math.Sqrt(5.0/3)) > 1e-12 {
		t.Errorf("stddev = %v", s.Stddev())
	}
	if s.CI95() <= 0 {
		t.Errorf("CI95 = %v", s.CI95())
	}
	if !strings.Contains(s.String(), "n=4") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Variance != 0 || s.Mean != 7 || s.CI95() != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeRejects(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := Summarize([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := Summarize([]float64{math.Inf(1)}); err == nil {
		t.Error("Inf accepted")
	}
}

func TestMeanMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("empty median not 0")
	}
	if m, err := Mean([]float64{1, 3}); err != nil || m != 2 {
		t.Errorf("mean = %v, %v", m, err)
	}
	if Median([]float64{5, 1, 3}) != 3 {
		t.Error("odd median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median wrong")
	}
	// Median must not reorder the caller's slice.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median mutated input")
	}
}

// Mean must reject the inputs Summarize rejects — empty samples and
// non-finite observations — instead of silently returning 0 or NaN that
// poisons downstream experiment tables.
func TestMeanRejects(t *testing.T) {
	for _, tc := range []struct {
		name string
		xs   []float64
	}{
		{"empty", nil},
		{"nan", []float64{1, math.NaN(), 2}},
		{"+inf", []float64{math.Inf(1)}},
		{"-inf", []float64{0, math.Inf(-1)}},
	} {
		if m, err := Mean(tc.xs); err == nil {
			t.Errorf("%s: accepted, mean = %v", tc.name, m)
		}
	}
}

func TestLinearFit(t *testing.T) {
	// Exact line y = 3x + 1.
	slope, icept, err := LinearFit([]float64{0, 1, 2, 3}, []float64{1, 4, 7, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-3) > 1e-12 || math.Abs(icept-1) > 1e-12 {
		t.Fatalf("fit = %v, %v", slope, icept)
	}
	// Log-log of a quadratic has slope 2.
	xs, ys := []float64{}, []float64{}
	for _, n := range []float64{10, 20, 40, 80} {
		xs = append(xs, math.Log(n))
		ys = append(ys, math.Log(5*n*n))
	}
	slope, _, err = LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-9 {
		t.Fatalf("log-log slope = %v, want 2", slope)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("degenerate x accepted")
	}
	if _, _, err := LinearFit([]float64{1, math.NaN()}, []float64{1, 2}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestJainIndex(t *testing.T) {
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Error("degenerate Jain not 0")
	}
	if got := JainIndex([]float64{2, 2, 2}); math.Abs(got-1) > 1e-12 {
		t.Errorf("even Jain = %v", got)
	}
	// One user gets everything: index = 1/n.
	if got := JainIndex([]float64{5, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("skewed Jain = %v, want 0.25", got)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.N() != 7 {
		t.Errorf("N = %d", h.N())
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 2 { // 9.99 and 10 (== Hi clamps into the top bin)
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") || !strings.Contains(out, "under: 1") {
		t.Errorf("render = %q", out)
	}
}

// Boundary handling of Add: x == Hi must land in the top bin (the raw bin
// computation yields index == len(Counts) and used to leak the sample into
// the overflow count), x == Lo in the bottom bin, and non-finite samples
// must neither panic nor corrupt a bin.
func TestHistogramEdges(t *testing.T) {
	const bins = 4
	for _, tc := range []struct {
		name  string
		x     float64
		bin   int // expected Counts index, or -1
		under int
		over  int
		nan   int
	}{
		{name: "at-lo", x: 0, bin: 0},
		{name: "interior", x: 2.5, bin: 1},
		{name: "at-hi", x: 8, bin: bins - 1},
		{name: "just-below-hi", x: math.Nextafter(8, 0), bin: bins - 1},
		{name: "just-above-hi", x: math.Nextafter(8, 9), bin: -1, over: 1},
		{name: "below-lo", x: -0.001, bin: -1, under: 1},
		{name: "+inf", x: math.Inf(1), bin: -1, over: 1},
		{name: "-inf", x: math.Inf(-1), bin: -1, under: 1},
		{name: "nan", x: math.NaN(), bin: -1, nan: 1},
	} {
		h, err := NewHistogram(0, 8, bins)
		if err != nil {
			t.Fatal(err)
		}
		h.Add(tc.x)
		if h.N() != 1 {
			t.Errorf("%s: N = %d", tc.name, h.N())
		}
		if h.Under != tc.under || h.Over != tc.over || h.NaN != tc.nan {
			t.Errorf("%s: under/over/nan = %d/%d/%d, want %d/%d/%d",
				tc.name, h.Under, h.Over, h.NaN, tc.under, tc.over, tc.nan)
		}
		total := 0
		for b, c := range h.Counts {
			total += c
			want := 0
			if b == tc.bin {
				want = 1
			}
			if c != want {
				t.Errorf("%s: Counts[%d] = %d, want %d", tc.name, b, c, want)
			}
		}
		if tc.bin >= 0 && total != 1 {
			t.Errorf("%s: sample dropped (bin total %d)", tc.name, total)
		}
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("bins=0 accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(6, 5, 3); err == nil {
		t.Error("inverted range accepted")
	}
}
