package stats

import (
	"errors"
	"fmt"
	"math"
)

// TTestResult is the outcome of a two-sample Welch t-test.
type TTestResult struct {
	T  float64 // t statistic (meanA − meanB over pooled SE)
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchT compares the means of two independent samples without assuming
// equal variances. The experiment harness uses it to report whether an
// algorithm's advantage over a baseline is statistically meaningful at the
// trial counts used. Requires at least two observations per sample.
func WelchT(a, b []float64) (TTestResult, error) {
	sa, err := Summarize(a)
	if err != nil {
		return TTestResult{}, fmt.Errorf("stats: sample A: %w", err)
	}
	sb, err := Summarize(b)
	if err != nil {
		return TTestResult{}, fmt.Errorf("stats: sample B: %w", err)
	}
	if sa.N < 2 || sb.N < 2 {
		return TTestResult{}, errors.New("stats: Welch t needs >= 2 observations per sample")
	}
	va := sa.Variance / float64(sa.N)
	vb := sb.Variance / float64(sb.N)
	se := math.Sqrt(va + vb)
	if se == 0 {
		// Identical constant samples: no evidence of difference (p = 1)
		// or infinite evidence (p = 0) depending on the means.
		if sa.Mean == sb.Mean {
			return TTestResult{T: 0, DF: float64(sa.N + sb.N - 2), P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(sa.Mean - sb.Mean)), DF: float64(sa.N + sb.N - 2), P: 0}, nil
	}
	t := (sa.Mean - sb.Mean) / se
	df := (va + vb) * (va + vb) /
		(va*va/float64(sa.N-1) + vb*vb/float64(sb.N-1))
	p := 2 * (1 - StudentTCDF(math.Abs(t), df))
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return TTestResult{T: t, DF: df, P: p}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// StudentTCDF returns P(T ≤ t) for Student's t distribution with df degrees
// of freedom, via the regularized incomplete beta function:
// for t ≥ 0, P = 1 − I_{df/(df+t²)}(df/2, 1/2)/2.
func StudentTCDF(t, df float64) float64 {
	if math.IsNaN(t) || df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	ib := RegIncBeta(df/2, 0.5, x)
	if t >= 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the Lentz continued-fraction expansion (Numerical-Recipes style),
// accurate to ~1e-12 over the needed domain.
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// Prefactor x^a (1−x)^b / (a B(a,b)) in log space.
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	// Use the symmetry that converges fastest.
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(b*math.Log(1-x)+a*math.Log(x)-lbeta)*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		tiny    = 1e-300
		eps     = 1e-14
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
