package broadcast

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/reward"
	"repro/internal/solver"
	"repro/internal/spatial"
	"repro/internal/trace"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// ChurnConfig parameterizes the dynamic-instance re-solve loop: a base
// station whose user population churns (Poisson arrivals and departures)
// between broadcast periods, maintained incrementally instead of rebuilt.
type ChurnConfig struct {
	// K is the number of broadcasts per period.
	K int
	// Radius is the content scope r.
	Radius float64
	// Norm measures interest distance (default 2-norm).
	Norm norm.Norm
	// Periods is the number of broadcast periods simulated.
	Periods int
	// ArrivalRate is the mean number of users joining per period
	// (Poisson-distributed). Arrivals take a uniform interest point inside
	// the trace box and inherit the weight of a random existing user.
	ArrivalRate float64
	// DepartRate is the mean number of users leaving per period
	// (Poisson-distributed, capped so the population never empties).
	DepartRate float64
	// Solver names the algorithm in the solver registry (default "greedy2").
	Solver string
	// Workers bounds the solver's parallelism; <= 0 uses all CPUs.
	Workers int
	// Seed drives churn and any solver randomness. Deterministic per seed.
	Seed uint64
	// WarmStart carries each period's centers into the next re-solve via
	// solver.Options.WarmStart: the re-solve keeps whichever of the cold
	// solution and the carried-over centers scores higher.
	WarmStart bool
	// FullEvery, when > 0, rebuilds the evaluator and spatial index from
	// scratch every FullEvery periods (counted in obs.CtrChurnRebuilds).
	// The deltas are bit-identical to rebuilds, so this only bounds
	// hypothetical drift defensively; 0 never rebuilds.
	FullEvery int
	// Index selects the dynamic spatial accelerator maintained across
	// deltas: "grid", "kdtree", or "none" (the default).
	Index string
	// Verify, when set, cross-checks the incrementally maintained objective
	// against a from-scratch evaluator rebuild every period and fails the
	// run on any bitwise mismatch. Intended for tests and smoke runs.
	Verify bool
	// Obs, when set, receives churn counters, warm-start telemetry, and
	// reward-oracle counts.
	Obs obs.Collector
	// OnPeriod, when non-nil, is invoked synchronously after each period's
	// stats are committed — the streaming hook the serving layer uses to
	// push per-period results to a client while the loop is still running.
	// It runs on the loop's goroutine, so a slow callback slows the loop.
	OnPeriod func(ChurnPeriodStat)
}

func (c ChurnConfig) validate() error {
	if c.K <= 0 {
		return fmt.Errorf("broadcast: K = %d", c.K)
	}
	if c.Radius <= 0 || math.IsNaN(c.Radius) || math.IsInf(c.Radius, 0) {
		return fmt.Errorf("broadcast: radius = %v", c.Radius)
	}
	if c.Periods <= 0 {
		return fmt.Errorf("broadcast: periods = %d", c.Periods)
	}
	if c.ArrivalRate < 0 || math.IsNaN(c.ArrivalRate) || math.IsInf(c.ArrivalRate, 0) {
		return fmt.Errorf("broadcast: arrival rate = %v", c.ArrivalRate)
	}
	if c.DepartRate < 0 || math.IsNaN(c.DepartRate) || math.IsInf(c.DepartRate, 0) {
		return fmt.Errorf("broadcast: depart rate = %v", c.DepartRate)
	}
	if c.FullEvery < 0 {
		return fmt.Errorf("broadcast: full-rebuild period = %d", c.FullEvery)
	}
	switch c.Index {
	case "", "none", "grid", "kdtree":
	default:
		return fmt.Errorf("broadcast: unknown index %q (have: none | grid | kdtree)", c.Index)
	}
	return nil
}

// Validate checks the configuration without running the loop, including
// that the solver name resolves in the registry. The serving layer calls it
// before committing to a streamed response, so invalid configs still get a
// proper HTTP error instead of a mid-stream failure.
func (c ChurnConfig) Validate() error {
	if err := c.validate(); err != nil {
		return err
	}
	name := c.Solver
	if name == "" {
		name = "greedy2"
	}
	// solver.Check accepts the composite "sharded(<inner>)" form too, so a
	// churn loop can re-solve each period through the sharded pipeline.
	return solver.Check(name)
}

// ChurnPeriodStat records one period of the churn loop.
type ChurnPeriodStat struct {
	Period int
	// N is the population size the period was scheduled for.
	N int
	// Objective is f(C) of the adopted centers, read from the maintained
	// evaluator.
	Objective float64
	// MaxRwd is Σ w_i, the period's reward upper bound.
	MaxRwd float64
	// CarryObjective is the previous centers' objective on this period's
	// (churned) population — the warm-start candidate's score. Zero for the
	// first period.
	CarryObjective float64
	// Arrivals and Departures are the churn applied after this period.
	Arrivals, Departures int
}

// ChurnMetrics summarizes a churn-loop run.
type ChurnMetrics struct {
	Solver  string
	Periods []ChurnPeriodStat
	// MeanSatisfaction is the mean over periods of f(C)/Σw.
	MeanSatisfaction float64
	// MeanPopulation is the mean scheduled population size.
	MeanPopulation float64
	// TotalArrivals / TotalDepartures count users over the whole run.
	TotalArrivals, TotalDepartures int
	// IncrementalDeltas counts AddUser/RemoveUser operations applied in
	// place of full rebuilds; FullRebuilds counts scheduled rebuilds
	// (cfg.FullEvery) plus the initial construction.
	IncrementalDeltas, FullRebuilds int
}

// RunChurn simulates the base station over a churning population, maintaining
// the reward instance incrementally: arrivals and departures are applied with
// reward.Evaluator.AddUser/RemoveUser (bit-identical to rebuilding the
// instance from scratch), the optional spatial index is a spatial.Dynamic
// kept aligned across the same deltas, and with cfg.WarmStart each period's
// centers seed the next re-solve. The input trace is copied, never mutated.
//
// RunChurn is anytime under cancellation: ctx is checked each period, a
// period whose solve was cut short is discarded, and metrics over the
// completed periods are returned together with ctx.Err().
func RunChurn(ctx context.Context, tr *trace.Trace, cfg ChurnConfig) (*ChurnMetrics, error) {
	if tr == nil {
		return nil, errors.New("broadcast: nil trace")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	nm := cfg.Norm
	if nm == nil {
		nm = norm.L2{}
	}
	solverName := cfg.Solver
	if solverName == "" {
		solverName = "greedy2"
	}

	set, err := tr.ToSet() // a fresh copy; churn deltas stay private
	if err != nil {
		return nil, err
	}
	in, err := reward.NewInstance(set, nm, cfg.Radius)
	if err != nil {
		return nil, err
	}
	in.SetCollector(cfg.Obs)
	installIndex := func() error {
		switch cfg.Index {
		case "grid":
			df, err := spatial.NewDynamicGrid(set.Points(), cfg.Radius)
			if err != nil {
				return err
			}
			in.SetFinder(df)
		case "kdtree":
			df, err := spatial.NewDynamicKDTree(set.Points(), cfg.Radius)
			if err != nil {
				return err
			}
			in.SetFinder(df)
		}
		return nil
	}
	if err := installIndex(); err != nil {
		return nil, err
	}
	eval, err := reward.NewEvaluator(in, nil)
	if err != nil {
		return nil, err
	}

	rng := xrand.New(cfg.Seed)
	box := tr.Box()
	m := &ChurnMetrics{Solver: solverName, FullRebuilds: 1} // initial build
	c := obs.OrNop(cfg.Obs)
	// When the caller installed an ambient span (the serving layer wraps
	// each /v1/churn request in one), every period gets a child span and the
	// per-period events carry the request's trace ID; outside a span tree
	// both are free no-ops.
	parentSpan := obs.SpanFromContext(ctx)
	reqID := parentSpan.TraceID()
	var prev []vec.V
	var carry float64
	var popSum float64
	var cancelErr error

	for p := 0; p < cfg.Periods; p++ {
		if err := ctx.Err(); err != nil {
			cancelErr = err
			break
		}
		psp := parentSpan.Child("period")
		psp.SetAttr("period", float64(p))
		opts := solver.Options{Workers: cfg.Workers, Seed: cfg.Seed, Obs: cfg.Obs}
		if cfg.WarmStart {
			opts.WarmStart = prev
		}
		alg, err := solver.New(solverName, opts)
		if err != nil {
			psp.End()
			return nil, err
		}
		res, err := alg.Run(obs.ContextWithSpan(ctx, psp), in, cfg.K)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				psp.SetAttr("cancelled", 1)
				psp.End()
				cancelErr = cerr
				break
			}
			psp.End()
			return nil, fmt.Errorf("broadcast: churn period %d: %w", p, err)
		}
		if err := eval.SetCenters(res.Centers); err != nil {
			return nil, err
		}
		objective := eval.Objective()
		if cfg.Verify {
			if err := verifyObjective(in, res.Centers, objective, p); err != nil {
				return nil, err
			}
		}
		ps := ChurnPeriodStat{
			Period: p, N: in.N(), Objective: objective,
			MaxRwd: set.TotalWeight(), CarryObjective: carry,
		}
		popSum += float64(in.N())
		prev = res.Centers

		// Churn the population for the next period via incremental deltas.
		if p < cfg.Periods-1 {
			arrivals := rng.Poisson(cfg.ArrivalRate)
			departures := rng.Poisson(cfg.DepartRate)
			if max := in.N() + arrivals - 1; departures > max {
				departures = max // never serve an empty cell
			}
			for a := 0; a < arrivals; a++ {
				w := set.Weight(rng.Intn(set.Len()))
				if _, err := eval.AddUser(vec.V(box.Sample(rng)), w); err != nil {
					return nil, fmt.Errorf("broadcast: churn period %d: %w", p, err)
				}
			}
			for d := 0; d < departures; d++ {
				if _, err := eval.RemoveUser(rng.Intn(set.Len())); err != nil {
					return nil, fmt.Errorf("broadcast: churn period %d: %w", p, err)
				}
			}
			ps.Arrivals, ps.Departures = arrivals, departures
			m.TotalArrivals += arrivals
			m.TotalDepartures += departures
			m.IncrementalDeltas += arrivals + departures
			// The previous centers scored on the churned population: the
			// next period's warm-start candidate.
			carry = eval.Objective()
			if obs.Active(cfg.Obs) {
				c.Count(obs.CtrChurnAdded, int64(arrivals))
				c.Count(obs.CtrChurnRemoved, int64(departures))
				c.Count(obs.CtrChurnDeltas, int64(arrivals+departures))
			}
			if cfg.FullEvery > 0 && (p+1)%cfg.FullEvery == 0 {
				if err := installIndex(); err != nil {
					return nil, err
				}
				if eval, err = reward.NewEvaluator(in, prev); err != nil {
					return nil, err
				}
				m.FullRebuilds++
				c.Count(obs.CtrChurnRebuilds, 1)
			}
		}
		m.Periods = append(m.Periods, ps)
		if cfg.OnPeriod != nil {
			cfg.OnPeriod(ps)
		}
		psp.SetAttr("n", float64(ps.N))
		psp.SetAttr("objective", ps.Objective)
		psp.SetAttr("arrivals", float64(ps.Arrivals))
		psp.SetAttr("departures", float64(ps.Departures))
		psp.End()
		c.Count(obs.CtrChurnPeriods, 1)
		if obs.Active(cfg.Obs) {
			c.Emit(obs.Event{Type: obs.EvChurnPeriod, Alg: solverName, Round: p, Trace: reqID,
				Fields: map[string]float64{
					"arrivals": float64(ps.Arrivals), "departures": float64(ps.Departures),
					"n": float64(ps.N), "objective": objective,
				}})
		}
	}

	if len(m.Periods) > 0 {
		var satSum float64
		for _, ps := range m.Periods {
			if ps.MaxRwd > 0 {
				satSum += ps.Objective / ps.MaxRwd
			}
		}
		m.MeanSatisfaction = satSum / float64(len(m.Periods))
		m.MeanPopulation = popSum / float64(len(m.Periods))
	}
	return m, cancelErr
}

// verifyObjective cross-checks the maintained evaluator against a
// from-scratch rebuild over a clone of the current population. Any deviation
// means the incremental bookkeeping diverged — a bug, reported bitwise.
func verifyObjective(in *reward.Instance, centers []vec.V, got float64, period int) error {
	set := in.Set.Clone()
	fresh, err := reward.NewInstance(set, in.Norm, in.Radius)
	if err != nil {
		return err
	}
	e, err := reward.NewEvaluator(fresh, centers)
	if err != nil {
		return err
	}
	if want := e.Objective(); got != want {
		return fmt.Errorf("broadcast: period %d: incremental objective %v != rebuild %v (diff %g)",
			period, got, want, got-want)
	}
	return nil
}
