package broadcast

import (
	"context"
	"math"
	"testing"

	"repro/internal/trace"
)

func TestRunMultiBasic(t *testing.T) {
	tr := genTrace(t, 60, trace.Clustered)
	cfg := baseCfg()
	for _, mode := range []AssignMode{RandomAssign, NearestAnchor} {
		m, err := RunMulti(context.Background(), tr, greedySched(), cfg, 3, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(m.Stations) != 3 {
			t.Fatalf("%v: stations = %d", mode, len(m.Stations))
		}
		users := 0
		for _, s := range m.Stations {
			users += s.Users
		}
		if users != 60 {
			t.Fatalf("%v: partition lost users: %d", mode, users)
		}
		if m.MeanSatisfaction <= 0 || m.MeanSatisfaction > 1 {
			t.Fatalf("%v: satisfaction = %v", mode, m.MeanSatisfaction)
		}
		if m.TotalBroadcasts != 3*cfg.K {
			t.Fatalf("%v: budget = %d", mode, m.TotalBroadcasts)
		}
	}
}

func TestRunMultiValidation(t *testing.T) {
	tr := genTrace(t, 10, trace.Uniform)
	cfg := baseCfg()
	if _, err := RunMulti(context.Background(), nil, greedySched(), cfg, 2, RandomAssign); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := RunMulti(context.Background(), tr, greedySched(), cfg, 0, RandomAssign); err == nil {
		t.Error("0 stations accepted")
	}
	if _, err := RunMulti(context.Background(), tr, greedySched(), cfg, 2, AssignMode(9)); err == nil {
		t.Error("bad assign mode accepted")
	}
}

func TestRunMultiSingleStationMatchesRun(t *testing.T) {
	// One station with RandomAssign degenerates to the plain simulation
	// (modulo the per-station seed derivation, so compare satisfaction
	// within tolerance on a drift-free config).
	tr := genTrace(t, 30, trace.Uniform)
	cfg := baseCfg()
	cfg.DriftSigma = 0
	cfg.ChurnRate = 0
	single, err := Run(context.Background(), tr, greedySched(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunMulti(context.Background(), tr, greedySched(), cfg, 1, RandomAssign)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single.MeanSatisfaction-multi.MeanSatisfaction) > 1e-9 {
		t.Fatalf("single %v != multi(1) %v", single.MeanSatisfaction, multi.MeanSatisfaction)
	}
}

func TestRunMultiDeterministic(t *testing.T) {
	tr := genTrace(t, 40, trace.Uniform)
	cfg := baseCfg()
	a, err := RunMulti(context.Background(), tr, greedySched(), cfg, 3, NearestAnchor)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMulti(context.Background(), tr, greedySched(), cfg, 3, NearestAnchor)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanSatisfaction != b.MeanSatisfaction {
		t.Fatal("multi-station run not deterministic")
	}
}

func TestRunMultiEmptyStationHandled(t *testing.T) {
	// 5 stations over 3 users: at least two stations are empty and must
	// not error out or skew the aggregate.
	tr := genTrace(t, 3, trace.Uniform)
	cfg := baseCfg()
	m, err := RunMulti(context.Background(), tr, greedySched(), cfg, 5, RandomAssign)
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanSatisfaction <= 0 {
		t.Fatalf("satisfaction = %v", m.MeanSatisfaction)
	}
}

func TestAssignModeString(t *testing.T) {
	if RandomAssign.String() != "random" || NearestAnchor.String() != "nearest-anchor" {
		t.Error("mode strings wrong")
	}
	if AssignMode(7).String() == "" {
		t.Error("unknown mode empty")
	}
}
