package broadcast

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/norm"
	"repro/internal/reward"
	"repro/internal/vec"
)

// CatalogScheduler constrains broadcasting to a finite content library: the
// inner scheduler proposes ideal content vectors, and each proposal is
// snapped to the nearest unused catalog item under the snapping norm. Real
// stations cannot synthesize arbitrary content — they pick from what they
// have — so this models the gap between the paper's idealized continuous
// placement and a deployable system.
type CatalogScheduler struct {
	// Inner proposes ideal content positions.
	Inner Scheduler
	// Catalog is the available content library.
	Catalog []vec.V
	// Norm measures the snap distance (default 2-norm).
	Norm norm.Norm
}

// Name implements Scheduler.
func (s CatalogScheduler) Name() string {
	if s.Inner == nil {
		return "catalog"
	}
	return s.Inner.Name() + "+catalog"
}

// Schedule implements Scheduler. Each proposed center is replaced by the
// nearest catalog item not already chosen this period; an exhausted catalog
// is an error.
func (s CatalogScheduler) Schedule(ctx context.Context, in *reward.Instance, k int) ([]vec.V, error) {
	if s.Inner == nil {
		return nil, errors.New("broadcast: catalog scheduler without inner scheduler")
	}
	if len(s.Catalog) < k {
		return nil, fmt.Errorf("broadcast: catalog has %d items, need %d", len(s.Catalog), k)
	}
	nm := s.Norm
	if nm == nil {
		nm = norm.L2{}
	}
	ideal, err := s.Inner.Schedule(ctx, in, k)
	if err != nil {
		return nil, err
	}
	used := make([]bool, len(s.Catalog))
	out := make([]vec.V, 0, len(ideal))
	for _, c := range ideal {
		best, bestD := -1, 0.0
		for i, item := range s.Catalog {
			if used[i] || item.Dim() != c.Dim() {
				continue
			}
			d := nm.Dist(c, item)
			if best == -1 || d < bestD {
				best, bestD = i, d
			}
		}
		if best == -1 {
			return nil, errors.New("broadcast: no dimension-compatible catalog item available")
		}
		used[best] = true
		out = append(out, s.Catalog[best].Clone())
	}
	return out, nil
}

var _ Scheduler = CatalogScheduler{}
