package broadcast

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/pointset"
	"repro/internal/trace"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func denseCatalog() []vec.V {
	// 9×9 lattice over the 4×4 box: a rich library.
	pts, _ := pointset.GridPoints(pointset.PaperBox2D(), 9)
	return pts
}

func TestCatalogSchedulerSnaps(t *testing.T) {
	tr := genTrace(t, 30, trace.Uniform)
	cfg := baseCfg()
	cat := denseCatalog()
	m, err := Run(context.Background(), tr, CatalogScheduler{
		Inner:   AlgorithmScheduler{Algo: core.ComplexGreedy{}},
		Catalog: cat,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Scheduler != "greedy4+catalog" {
		t.Errorf("name = %q", m.Scheduler)
	}
	// Every broadcast must be a catalog item.
	for _, p := range m.Periods {
		for _, c := range p.Centers {
			found := false
			for _, item := range cat {
				if c.Equal(item) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("center %v not in catalog", c)
			}
		}
	}
}

func TestCatalogNoDuplicatesWithinPeriod(t *testing.T) {
	// A tight population makes the inner scheduler propose nearby ideal
	// centers; the catalog must still hand out distinct items.
	tr, err := trace.Generate(trace.Config{
		N: 20, Box: pointset.PaperBox2D(), Kind: trace.Clustered,
		Scheme: pointset.UnitWeight, Topics: 1, Sigma: 0.05,
	}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg()
	cfg.K = 3
	m, err := Run(context.Background(), tr, CatalogScheduler{
		Inner:   AlgorithmScheduler{Algo: core.SimpleGreedy{}},
		Catalog: denseCatalog(),
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Periods {
		for i := 0; i < len(p.Centers); i++ {
			for j := i + 1; j < len(p.Centers); j++ {
				if p.Centers[i].Equal(p.Centers[j]) {
					t.Fatalf("period %d broadcast the same catalog item twice: %v", p.Period, p.Centers[i])
				}
			}
		}
	}
}

func TestCatalogDegradesGracefully(t *testing.T) {
	// A dense catalog should cost little vs unconstrained placement; a
	// 2-item corner catalog should cost a lot.
	tr := genTrace(t, 40, trace.Clustered)
	cfg := baseCfg()
	free, err := Run(context.Background(), tr, greedySched(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Run(context.Background(), tr, CatalogScheduler{Inner: greedySched(), Catalog: denseCatalog()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	poor, err := Run(context.Background(), tr, CatalogScheduler{
		Inner:   greedySched(),
		Catalog: []vec.V{vec.Of(0, 0), vec.Of(4, 4)},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dense.MeanSatisfaction < 0.7*free.MeanSatisfaction {
		t.Errorf("dense catalog lost too much: %v vs free %v", dense.MeanSatisfaction, free.MeanSatisfaction)
	}
	if poor.MeanSatisfaction >= dense.MeanSatisfaction {
		t.Errorf("2-corner catalog %v not worse than dense %v", poor.MeanSatisfaction, dense.MeanSatisfaction)
	}
}

func TestCatalogValidation(t *testing.T) {
	tr := genTrace(t, 10, trace.Uniform)
	cfg := baseCfg()
	cfg.K = 3
	if _, err := Run(context.Background(), tr, CatalogScheduler{Inner: greedySched(), Catalog: denseCatalog()[:2]}, cfg); err == nil {
		t.Error("undersized catalog accepted")
	}
	if _, err := Run(context.Background(), tr, CatalogScheduler{Catalog: denseCatalog()}, cfg); err == nil {
		t.Error("nil inner scheduler accepted")
	}
	// Dimension-incompatible catalog.
	bad := CatalogScheduler{Inner: greedySched(), Catalog: []vec.V{vec.Of(1, 2, 3), vec.Of(1, 1, 1), vec.Of(0, 0, 0)}}
	if _, err := Run(context.Background(), tr, bad, cfg); err == nil {
		t.Error("dimension-incompatible catalog accepted")
	}
}
