package broadcast

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/norm"
	"repro/internal/trace"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// AssignMode selects how users are partitioned among stations in a
// multi-station deployment.
type AssignMode int

const (
	// RandomAssign spreads users uniformly at random across stations
	// (load balancing without interest awareness).
	RandomAssign AssignMode = iota
	// NearestAnchor places one anchor per station uniformly in the
	// interest region and attaches each user to the nearest anchor —
	// interest-aware cell formation.
	NearestAnchor
)

// String implements fmt.Stringer.
func (m AssignMode) String() string {
	switch m {
	case RandomAssign:
		return "random"
	case NearestAnchor:
		return "nearest-anchor"
	default:
		return fmt.Sprintf("AssignMode(%d)", int(m))
	}
}

// StationMetrics is one station's outcome inside a multi-station run.
type StationMetrics struct {
	Station int
	Users   int
	Metrics Metrics
}

// MultiMetrics aggregates a multi-station deployment.
type MultiMetrics struct {
	Stations []StationMetrics
	// MeanSatisfaction is the per-period satisfaction fraction aggregated
	// over all stations, weighted by each station's achievable reward.
	MeanSatisfaction float64
	// TotalBroadcasts is stations × k per period — the deployment's total
	// broadcast budget, for same-budget comparisons.
	TotalBroadcasts int
}

// RunMulti simulates S independent base stations sharing one user
// population: users are partitioned once (by cfg.Seed), then every station
// runs the standard simulation over its own subpopulation with the same
// per-station config. Stations with no users contribute nothing. Use it to
// study whether S stations × k broadcasts beat one station × S·k broadcasts
// under the same total budget.
//
// Cancellation is anytime at station granularity: stations simulated before
// ctx was done are aggregated and returned with ctx.Err(); the station whose
// own run was cut short is dropped.
func RunMulti(ctx context.Context, tr *trace.Trace, sched Scheduler, cfg Config, stations int, mode AssignMode) (*MultiMetrics, error) {
	if tr == nil {
		return nil, errors.New("broadcast: nil trace")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if stations <= 0 {
		return nil, fmt.Errorf("broadcast: stations = %d", stations)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed ^ 0x571a7)
	assign := make([]int, len(tr.Users))
	switch mode {
	case RandomAssign:
		for i := range assign {
			assign[i] = rng.Intn(stations)
		}
	case NearestAnchor:
		box := tr.Box()
		anchors := make([]vec.V, stations)
		for s := range anchors {
			anchors[s] = box.Sample(rng)
		}
		nm := cfg.Norm
		if nm == nil {
			nm = norm.L2{}
		}
		for i, u := range tr.Users {
			p := vec.Of(u.Interest...)
			best, bestD := 0, nm.Dist(p, anchors[0])
			for s := 1; s < stations; s++ {
				if d := nm.Dist(p, anchors[s]); d < bestD {
					best, bestD = s, d
				}
			}
			assign[i] = best
		}
	default:
		return nil, fmt.Errorf("broadcast: unknown assign mode %v", mode)
	}

	out := &MultiMetrics{TotalBroadcasts: stations * cfg.K}
	var satWeighted, weightTotal float64
	var cancelErr error
	for s := 0; s < stations; s++ {
		if err := ctx.Err(); err != nil {
			cancelErr = err
			break
		}
		sub := &trace.Trace{Dim: tr.Dim, Lo: append([]float64{}, tr.Lo...), Hi: append([]float64{}, tr.Hi...)}
		for i, u := range tr.Users {
			if assign[i] == s {
				sub.Users = append(sub.Users, trace.User{
					ID:       u.ID,
					Interest: append([]float64{}, u.Interest...),
					Weight:   u.Weight,
				})
			}
		}
		if len(sub.Users) == 0 {
			out.Stations = append(out.Stations, StationMetrics{Station: s})
			continue
		}
		scfg := cfg
		scfg.Seed = cfg.Seed ^ (uint64(s)+1)*0x9e3779b97f4a7c15
		m, err := Run(ctx, sub, sched, scfg)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				cancelErr = cerr
				break // drop the cut-short station
			}
			return nil, fmt.Errorf("broadcast: station %d: %w", s, err)
		}
		out.Stations = append(out.Stations, StationMetrics{Station: s, Users: len(sub.Users), Metrics: *m})
		// Weight each station's satisfaction by its achievable reward.
		var w float64
		for _, u := range sub.Users {
			w += u.Weight
		}
		satWeighted += m.MeanSatisfaction * w
		weightTotal += w
	}
	if weightTotal > 0 {
		out.MeanSatisfaction = satWeighted / weightTotal
	}
	return out, cancelErr
}
