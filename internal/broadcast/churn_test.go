package broadcast

import (
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

func churnCfg() ChurnConfig {
	return ChurnConfig{
		K: 2, Radius: 1.5, Periods: 6, Seed: 7,
		ArrivalRate: 3, DepartRate: 2, Verify: true,
	}
}

// TestRunChurnBasic: the loop completes with Verify on (every period's
// incremental objective bit-matches a rebuild), churn actually happens, and
// the summary fields are consistent.
func TestRunChurnBasic(t *testing.T) {
	for _, index := range []string{"none", "grid", "kdtree"} {
		t.Run(index, func(t *testing.T) {
			tr := genTrace(t, 30, trace.Uniform)
			cfg := churnCfg()
			cfg.Index = index
			m, err := RunChurn(context.Background(), tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(m.Periods) != cfg.Periods {
				t.Fatalf("completed %d periods, want %d", len(m.Periods), cfg.Periods)
			}
			if m.TotalArrivals+m.TotalDepartures == 0 {
				t.Error("no churn happened at these rates")
			}
			if m.IncrementalDeltas != m.TotalArrivals+m.TotalDepartures {
				t.Errorf("deltas %d != arrivals %d + departures %d",
					m.IncrementalDeltas, m.TotalArrivals, m.TotalDepartures)
			}
			if m.MeanSatisfaction <= 0 || m.MeanSatisfaction > 1 {
				t.Errorf("mean satisfaction = %v", m.MeanSatisfaction)
			}
			for _, ps := range m.Periods[1:] {
				if ps.CarryObjective <= 0 {
					t.Errorf("period %d: carry objective %v", ps.Period, ps.CarryObjective)
				}
			}
		})
	}
}

// TestRunChurnOnPeriodStreams: the OnPeriod hook fires once per committed
// period, in order, with exactly the stats the final metrics carry — the
// contract the serving layer's chunked per-period stream relies on.
func TestRunChurnOnPeriodStreams(t *testing.T) {
	tr := genTrace(t, 25, trace.Uniform)
	cfg := churnCfg()
	var streamed []ChurnPeriodStat
	cfg.OnPeriod = func(ps ChurnPeriodStat) { streamed = append(streamed, ps) }
	m, err := RunChurn(context.Background(), tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(m.Periods) {
		t.Fatalf("streamed %d periods, metrics have %d", len(streamed), len(m.Periods))
	}
	for i, ps := range m.Periods {
		if streamed[i] != ps {
			t.Errorf("period %d: streamed %+v != committed %+v", i, streamed[i], ps)
		}
	}
}

// TestRunChurnDoesNotMutateInput: the trace's population must be copied.
func TestRunChurnDoesNotMutateInput(t *testing.T) {
	tr := genTrace(t, 20, trace.Uniform)
	before := len(tr.Users)
	w0 := tr.Users[0].Weight
	if _, err := RunChurn(context.Background(), tr, churnCfg()); err != nil {
		t.Fatal(err)
	}
	if len(tr.Users) != before || tr.Users[0].Weight != w0 {
		t.Error("RunChurn mutated the input trace")
	}
}

// TestRunChurnWarmStartNeverWorse: with warm starting, every period's
// adopted objective must be at least the carried-over candidate's score —
// the WarmStarted wrapper keeps the better of the two by construction.
func TestRunChurnWarmStartNeverWorse(t *testing.T) {
	tr := genTrace(t, 40, trace.Uniform)
	cfg := churnCfg()
	cfg.WarmStart = true
	cfg.Index = "grid"
	c := obs.NewMetrics()
	cfg.Obs = c
	m, err := RunChurn(context.Background(), tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range m.Periods {
		if ps.Objective < ps.CarryObjective {
			t.Errorf("period %d: objective %v < carried-over %v",
				ps.Period, ps.Objective, ps.CarryObjective)
		}
	}
	snap := c.Snapshot()
	if got := snap.Counters[obs.CtrWarmStarts]; got != int64(cfg.Periods-1) {
		t.Errorf("warm starts = %d, want %d", got, cfg.Periods-1)
	}
	if snap.Counters[obs.CtrChurnPeriods] != int64(cfg.Periods) {
		t.Errorf("churn periods = %d", snap.Counters[obs.CtrChurnPeriods])
	}
	if snap.Counters[obs.CtrChurnAdded] != int64(m.TotalArrivals) {
		t.Errorf("counter added %d != metric %d",
			snap.Counters[obs.CtrChurnAdded], m.TotalArrivals)
	}
	if snap.Counters[obs.CtrChurnRemoved] != int64(m.TotalDepartures) {
		t.Errorf("counter removed %d != metric %d",
			snap.Counters[obs.CtrChurnRemoved], m.TotalDepartures)
	}
}

// TestRunChurnFullEvery: scheduled full rebuilds land in the counters and —
// because deltas are bit-identical to rebuilds — leave every per-period
// result identical to the never-rebuilding run.
func TestRunChurnFullEvery(t *testing.T) {
	tr := genTrace(t, 30, trace.Uniform)
	cfg := churnCfg()
	base, err := RunChurn(context.Background(), tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FullEvery = 2
	rebuilt, err := RunChurn(context.Background(), tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.FullRebuilds <= base.FullRebuilds {
		t.Errorf("rebuilds = %d, base %d", rebuilt.FullRebuilds, base.FullRebuilds)
	}
	for p := range base.Periods {
		if base.Periods[p].Objective != rebuilt.Periods[p].Objective ||
			base.Periods[p].N != rebuilt.Periods[p].N {
			t.Errorf("period %d diverged with FullEvery: %+v vs %+v",
				p, base.Periods[p], rebuilt.Periods[p])
		}
	}
}

// TestRunChurnDeterminism: same seed, same run, across index choices (the
// index is a conservative accelerator, so it cannot change results).
func TestRunChurnDeterminism(t *testing.T) {
	tr := genTrace(t, 25, trace.Uniform)
	cfg := churnCfg()
	cfg.Index = "grid"
	a, err := RunChurn(context.Background(), tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Index = "none"
	b, err := RunChurn(context.Background(), tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Periods) != len(b.Periods) {
		t.Fatalf("period counts differ: %d vs %d", len(a.Periods), len(b.Periods))
	}
	for p := range a.Periods {
		if a.Periods[p].Objective != b.Periods[p].Objective {
			t.Errorf("period %d: grid %v != none %v",
				p, a.Periods[p].Objective, b.Periods[p].Objective)
		}
	}
}

// TestRunChurnCancellation: a cancelled run returns the completed periods
// with ctx.Err(), per the anytime contract.
func TestRunChurnCancellation(t *testing.T) {
	tr := genTrace(t, 20, trace.Uniform)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := RunChurn(ctx, tr, churnCfg())
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(m.Periods) != 0 {
		t.Errorf("pre-cancelled run completed %d periods", len(m.Periods))
	}
}

func TestRunChurnValidation(t *testing.T) {
	tr := genTrace(t, 10, trace.Uniform)
	run := func(mut func(*ChurnConfig)) error {
		cfg := churnCfg()
		mut(&cfg)
		_, err := RunChurn(context.Background(), tr, cfg)
		return err
	}
	if _, err := RunChurn(context.Background(), nil, churnCfg()); err == nil {
		t.Error("nil trace accepted")
	}
	for name, mut := range map[string]func(*ChurnConfig){
		"k":       func(c *ChurnConfig) { c.K = 0 },
		"radius":  func(c *ChurnConfig) { c.Radius = -1 },
		"periods": func(c *ChurnConfig) { c.Periods = 0 },
		"arrival": func(c *ChurnConfig) { c.ArrivalRate = -1 },
		"depart":  func(c *ChurnConfig) { c.DepartRate = -1 },
		"index":   func(c *ChurnConfig) { c.Index = "quadtree" },
		"solver":  func(c *ChurnConfig) { c.Solver = "no-such-algorithm" },
		"rebuild": func(c *ChurnConfig) { c.FullEvery = -1 },
	} {
		if err := run(mut); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}
