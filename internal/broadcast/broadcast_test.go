package broadcast

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/trace"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func genTrace(t *testing.T, n int, kind trace.Kind) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.Config{
		N: n, Box: pointset.PaperBox2D(), Kind: kind,
		Scheme: pointset.RandomIntWeight,
	}, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func baseCfg() Config {
	return Config{K: 2, Radius: 1.5, Periods: 5, Seed: 7}
}

func greedySched() Scheduler {
	return AlgorithmScheduler{Algo: core.LocalGreedy{}}
}

func TestRunBasic(t *testing.T) {
	tr := genTrace(t, 30, trace.Uniform)
	m, err := Run(context.Background(), tr, greedySched(), baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if m.Scheduler != "greedy2" {
		t.Errorf("scheduler name = %q", m.Scheduler)
	}
	if len(m.Periods) != 5 {
		t.Fatalf("periods = %d", len(m.Periods))
	}
	if m.MeanSatisfaction <= 0 || m.MeanSatisfaction > 1 {
		t.Errorf("mean satisfaction = %v", m.MeanSatisfaction)
	}
	if m.Fairness <= 0 || m.Fairness > 1+1e-9 {
		t.Errorf("fairness = %v", m.Fairness)
	}
	for _, p := range m.Periods {
		if p.Reward < 0 || p.Reward > p.MaxRwd+1e-9 {
			t.Errorf("period %d reward %v out of [0, %v]", p.Period, p.Reward, p.MaxRwd)
		}
		if len(p.Centers) != 2 {
			t.Errorf("period %d has %d centers", p.Period, len(p.Centers))
		}
	}
}

func TestRunValidation(t *testing.T) {
	tr := genTrace(t, 10, trace.Uniform)
	if _, err := Run(context.Background(), nil, greedySched(), baseCfg()); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := Run(context.Background(), tr, nil, baseCfg()); err == nil {
		t.Error("nil scheduler accepted")
	}
	bad := baseCfg()
	bad.K = 0
	if _, err := Run(context.Background(), tr, greedySched(), bad); err == nil {
		t.Error("K=0 accepted")
	}
	bad = baseCfg()
	bad.Radius = -1
	if _, err := Run(context.Background(), tr, greedySched(), bad); err == nil {
		t.Error("negative radius accepted")
	}
	bad = baseCfg()
	bad.Periods = 0
	if _, err := Run(context.Background(), tr, greedySched(), bad); err == nil {
		t.Error("0 periods accepted")
	}
	bad = baseCfg()
	bad.ChurnRate = 1.5
	if _, err := Run(context.Background(), tr, greedySched(), bad); err == nil {
		t.Error("churn > 1 accepted")
	}
	bad = baseCfg()
	bad.DriftSigma = -0.1
	if _, err := Run(context.Background(), tr, greedySched(), bad); err == nil {
		t.Error("negative drift accepted")
	}
}

func TestRunDoesNotMutateInput(t *testing.T) {
	tr := genTrace(t, 20, trace.Uniform)
	snap := append([]float64{}, tr.Users[0].Interest...)
	cfg := baseCfg()
	cfg.DriftSigma = 0.3
	cfg.ChurnRate = 0.2
	if _, err := Run(context.Background(), tr, greedySched(), cfg); err != nil {
		t.Fatal(err)
	}
	if tr.Users[0].Interest[0] != snap[0] || tr.Users[0].Interest[1] != snap[1] {
		t.Fatal("Run mutated the input trace")
	}
}

func TestStaticVsAdaptive(t *testing.T) {
	// On a clustered population, an adaptive greedy schedule must beat a
	// static schedule stuck at arbitrary corners.
	tr := genTrace(t, 60, trace.Clustered)
	cfg := baseCfg()
	adaptive, err := Run(context.Background(), tr, greedySched(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Run(context.Background(), tr, StaticScheduler{
		Contents: []vec.V{vec.Of(0, 0), vec.Of(4, 4)},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.MeanSatisfaction <= static.MeanSatisfaction {
		t.Errorf("adaptive %v not above static %v",
			adaptive.MeanSatisfaction, static.MeanSatisfaction)
	}
	if static.Scheduler != "static" {
		t.Errorf("static name = %q", static.Scheduler)
	}
}

func TestStaticSchedulerShortContents(t *testing.T) {
	tr := genTrace(t, 10, trace.Uniform)
	cfg := baseCfg()
	cfg.K = 3
	if _, err := Run(context.Background(), tr, StaticScheduler{Contents: []vec.V{vec.Of(1, 1)}}, cfg); err == nil {
		t.Error("static scheduler with too few contents accepted")
	}
}

func TestDeterminism(t *testing.T) {
	tr := genTrace(t, 25, trace.Uniform)
	cfg := baseCfg()
	cfg.DriftSigma = 0.2
	cfg.ChurnRate = 0.1
	a, err := Run(context.Background(), tr, greedySched(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), tr, greedySched(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Periods {
		if math.Abs(a.Periods[i].Reward-b.Periods[i].Reward) > 1e-12 {
			t.Fatalf("period %d rewards differ across identical runs", i)
		}
	}
}

func TestChurnReplacesUsers(t *testing.T) {
	tr := genTrace(t, 20, trace.Uniform)
	cfg := baseCfg()
	cfg.Periods = 10
	cfg.ChurnRate = 0.5
	m, err := Run(context.Background(), tr, greedySched(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Churned-in users get fresh IDs, so the fairness accounting must have
	// tracked more than the initial population.
	if m.Fairness <= 0 {
		t.Errorf("fairness = %v", m.Fairness)
	}
}

func TestArrivalsGrowPopulation(t *testing.T) {
	tr := genTrace(t, 10, trace.Uniform)
	cfg := baseCfg()
	cfg.Periods = 10
	cfg.ArrivalRate = 5
	m, err := Run(context.Background(), tr, greedySched(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, last := m.Periods[0].MaxRwd, m.Periods[len(m.Periods)-1].MaxRwd
	if last <= first {
		t.Errorf("population did not grow: Σw %v -> %v", first, last)
	}
}

func TestDeparturesShrinkPopulation(t *testing.T) {
	tr := genTrace(t, 50, trace.Uniform)
	cfg := baseCfg()
	cfg.Periods = 10
	cfg.DepartRate = 0.3
	m, err := Run(context.Background(), tr, greedySched(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, last := m.Periods[0].MaxRwd, m.Periods[len(m.Periods)-1].MaxRwd
	if last >= first {
		t.Errorf("population did not shrink: Σw %v -> %v", first, last)
	}
	// Population never empties even at extreme departure rates.
	cfg.DepartRate = 1
	if _, err := Run(context.Background(), tr, greedySched(), cfg); err != nil {
		t.Fatalf("full departure rate errored: %v", err)
	}
}

func TestArrivalDepartValidation(t *testing.T) {
	tr := genTrace(t, 10, trace.Uniform)
	bad := baseCfg()
	bad.ArrivalRate = -1
	if _, err := Run(context.Background(), tr, greedySched(), bad); err == nil {
		t.Error("negative arrival rate accepted")
	}
	bad = baseCfg()
	bad.DepartRate = 1.5
	if _, err := Run(context.Background(), tr, greedySched(), bad); err == nil {
		t.Error("depart rate > 1 accepted")
	}
}

func TestKSweepTradeoff(t *testing.T) {
	tr := genTrace(t, 40, trace.Uniform)
	cfg := baseCfg()
	cfg.Periods = 3
	ms, err := KSweep(context.Background(), tr, greedySched(), cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("sweep len = %d", len(ms))
	}
	// Satisfaction is non-decreasing in k (greedy adds coverage).
	for i := 1; i < len(ms); i++ {
		if ms[i].MeanSatisfaction < ms[i-1].MeanSatisfaction-1e-9 {
			t.Errorf("satisfaction fell from k=%d to k=%d: %v -> %v",
				i, i+1, ms[i-1].MeanSatisfaction, ms[i].MeanSatisfaction)
		}
	}
	// Service frequency falls as k grows (paper's §III.A tradeoff) with a
	// fixed slot budget.
	cfg.SlotsPerPeriod = 6
	ms, err = KSweep(context.Background(), tr, greedySched(), cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].ServiceFrequency >= ms[i-1].ServiceFrequency {
			t.Errorf("service frequency did not fall: k=%d %v -> k=%d %v",
				i, ms[i-1].ServiceFrequency, i+1, ms[i].ServiceFrequency)
		}
	}
	if _, err := KSweep(context.Background(), tr, greedySched(), cfg, 0); err == nil {
		t.Error("kMax=0 accepted")
	}
}

func TestRunTimelineReplay(t *testing.T) {
	tr := genTrace(t, 25, trace.Uniform)
	tl, err := trace.RecordTimeline(tr, 4, 0.2, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg()
	a, err := RunTimeline(context.Background(), tl, greedySched(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Periods) != 4 {
		t.Fatalf("periods = %d", len(a.Periods))
	}
	// Replays are bit-identical.
	b, err := RunTimeline(context.Background(), tl, greedySched(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Periods {
		if a.Periods[i].Reward != b.Periods[i].Reward {
			t.Fatal("timeline replay not deterministic")
		}
	}
	// A zero-drift timeline matches the drift-free live simulation.
	still, err := trace.RecordTimeline(tr, 3, 0, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Periods = 3
	cfg.DriftSigma = 0
	cfg.ChurnRate = 0
	live, err := Run(context.Background(), tr, greedySched(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := RunTimeline(context.Background(), still, greedySched(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if live.MeanSatisfaction != replay.MeanSatisfaction {
		t.Fatalf("live %v != replay %v on a static population",
			live.MeanSatisfaction, replay.MeanSatisfaction)
	}
}

func TestRunTimelineValidation(t *testing.T) {
	tr := genTrace(t, 10, trace.Uniform)
	tl, err := trace.RecordTimeline(tr, 2, 0.1, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg()
	if _, err := RunTimeline(context.Background(), nil, greedySched(), cfg); err == nil {
		t.Error("nil timeline accepted")
	}
	if _, err := RunTimeline(context.Background(), tl, nil, cfg); err == nil {
		t.Error("nil scheduler accepted")
	}
	bad := cfg
	bad.K = 0
	if _, err := RunTimeline(context.Background(), tl, greedySched(), bad); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestOneNormBroadcast(t *testing.T) {
	tr := genTrace(t, 20, trace.Uniform)
	cfg := baseCfg()
	cfg.Norm = norm.L1{}
	m, err := Run(context.Background(), tr, AlgorithmScheduler{Algo: core.SimpleGreedy{}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Scheduler != "greedy3" || m.MeanSatisfaction <= 0 {
		t.Errorf("L1 run wrong: %+v", m)
	}
}
