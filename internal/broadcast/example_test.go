package broadcast_test

import (
	"context"
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/pointset"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// A base station serving 40 users for 4 periods with the paper's local
// greedy as its scheduler.
func Example() {
	tr, _ := trace.Generate(trace.Config{
		N: 40, Box: pointset.PaperBox2D(), Kind: trace.Uniform,
		Scheme: pointset.UnitWeight,
	}, xrand.New(1))
	m, _ := broadcast.Run(context.Background(), tr, broadcast.AlgorithmScheduler{Algo: core.LocalGreedy{}},
		broadcast.Config{K: 2, Radius: 1.5, Periods: 4, Seed: 1})
	fmt.Println("scheduler:", m.Scheduler)
	fmt.Println("periods:", len(m.Periods))
	fmt.Printf("satisfaction in (0,1]: %v\n", m.MeanSatisfaction > 0 && m.MeanSatisfaction <= 1)
	// Output:
	// scheduler: greedy2
	// periods: 4
	// satisfaction in (0,1]: true
}

// Recording a timeline and replaying it is bit-deterministic: the population
// evolution is fixed up front, so two replays agree exactly.
func ExampleRunTimeline() {
	tr, _ := trace.Generate(trace.Config{
		N: 20, Box: pointset.PaperBox2D(), Kind: trace.Clustered,
		Scheme: pointset.UnitWeight,
	}, xrand.New(2))
	tl, _ := trace.RecordTimeline(tr, 3, 0.2, xrand.New(3))
	cfg := broadcast.Config{K: 2, Radius: 1.2}
	sched := broadcast.AlgorithmScheduler{Algo: core.SimpleGreedy{}}
	a, _ := broadcast.RunTimeline(context.Background(), tl, sched, cfg)
	b, _ := broadcast.RunTimeline(context.Background(), tl, sched, cfg)
	fmt.Println("replays identical:", a.MeanSatisfaction == b.MeanSatisfaction)
	// Output:
	// replays identical: true
}
