// Package broadcast realizes the system the paper motivates (§I, Fig. 1): a
// base station that can broadcast only k contents per period to n users,
// choosing contents so that users whose interests are close to a broadcast
// are satisfied. It wraps the core selection algorithms in a time-slotted
// simulator with interest drift and user churn, and reports satisfaction,
// fairness, and the k-versus-service-frequency tradeoff the paper notes in
// §III.A ("a larger value of k tends to have a higher average of
// satisfiability, but it will also have less frequent service").
package broadcast

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/reward"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// Scheduler picks the k broadcast contents for one period.
type Scheduler interface {
	// Name is a short identifier for reporting.
	Name() string
	// Schedule returns the k content vectors for the period. On
	// cancellation it may return fewer than k contents together with
	// ctx.Err() (the anytime contract of core.Algorithm.Run); the
	// simulator does not commit such partial periods.
	Schedule(ctx context.Context, in *reward.Instance, k int) ([]vec.V, error)
}

// AlgorithmScheduler adapts any core.Algorithm into a Scheduler.
type AlgorithmScheduler struct {
	Algo core.Algorithm
}

// Name implements Scheduler.
func (s AlgorithmScheduler) Name() string { return s.Algo.Name() }

// Schedule implements Scheduler.
func (s AlgorithmScheduler) Schedule(ctx context.Context, in *reward.Instance, k int) ([]vec.V, error) {
	res, err := s.Algo.Run(ctx, in, k)
	if err != nil {
		if res != nil {
			return res.Centers, err
		}
		return nil, err
	}
	return res.Centers, nil
}

// StaticScheduler always broadcasts the same contents — a naive baseline
// (e.g. the region's center) against which adaptive scheduling is compared.
type StaticScheduler struct {
	Label    string
	Contents []vec.V
}

// Name implements Scheduler.
func (s StaticScheduler) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "static"
}

// Schedule implements Scheduler.
func (s StaticScheduler) Schedule(_ context.Context, _ *reward.Instance, k int) ([]vec.V, error) {
	if len(s.Contents) < k {
		return nil, fmt.Errorf("broadcast: static scheduler has %d contents, need %d", len(s.Contents), k)
	}
	return s.Contents[:k], nil
}

// Config parameterizes a simulation run.
type Config struct {
	// K is the number of broadcasts per period.
	K int
	// Radius is the content scope r.
	Radius float64
	// Norm measures interest distance (default 2-norm).
	Norm norm.Norm
	// Periods is the number of broadcast periods simulated.
	Periods int
	// DriftSigma perturbs every interest by a Gaussian step between
	// periods (0 disables drift).
	DriftSigma float64
	// ChurnRate is the per-period probability that a user departs and is
	// replaced by a fresh uniform arrival (0 disables churn; population
	// size is preserved).
	ChurnRate float64
	// ArrivalRate is the mean number of brand-new users joining per
	// period (Poisson-distributed; 0 disables arrivals). Arrivals take a
	// uniform interest point and inherit the weight of a random existing
	// user, preserving the weight distribution.
	ArrivalRate float64
	// DepartRate is the per-period probability that a user leaves without
	// replacement (0 disables departures). The population never drops
	// below one user.
	DepartRate float64
	// SlotsPerPeriod is the broadcast slot budget; each content consumes
	// one slot, so service frequency is SlotsPerPeriod/K (default: K, i.e.
	// the station spends the whole period broadcasting).
	SlotsPerPeriod int
	// Seed drives drift and churn.
	Seed uint64
	// Obs, when set, receives reward-oracle telemetry (gain/apply/objective
	// evaluation counts) from every period's instance. Scheduler-level
	// round events are the scheduler's own concern (core.Instrument).
	Obs obs.Collector
}

func (c Config) validate() error {
	if c.K <= 0 {
		return fmt.Errorf("broadcast: K = %d", c.K)
	}
	if c.Radius <= 0 || math.IsNaN(c.Radius) || math.IsInf(c.Radius, 0) {
		return fmt.Errorf("broadcast: radius = %v", c.Radius)
	}
	if c.Periods <= 0 {
		return fmt.Errorf("broadcast: periods = %d", c.Periods)
	}
	if c.DriftSigma < 0 || c.ChurnRate < 0 || c.ChurnRate > 1 {
		return fmt.Errorf("broadcast: drift = %v churn = %v", c.DriftSigma, c.ChurnRate)
	}
	if c.ArrivalRate < 0 || math.IsNaN(c.ArrivalRate) || math.IsInf(c.ArrivalRate, 0) {
		return fmt.Errorf("broadcast: arrival rate = %v", c.ArrivalRate)
	}
	if c.DepartRate < 0 || c.DepartRate > 1 {
		return fmt.Errorf("broadcast: depart rate = %v", c.DepartRate)
	}
	return nil
}

// PeriodStat records one period's outcome.
type PeriodStat struct {
	Period  int
	Reward  float64 // total capped reward f(C) this period
	MaxRwd  float64 // Σ w_i this period (upper bound)
	Centers []vec.V
}

// Metrics summarizes a simulation.
type Metrics struct {
	Scheduler string
	Periods   []PeriodStat
	// MeanSatisfaction is the mean over periods of f(C)/Σw — the fraction
	// of achievable happiness delivered.
	MeanSatisfaction float64
	// Fairness is Jain's index over per-user cumulative satisfaction.
	Fairness float64
	// ServiceFrequency is how many full broadcast rounds fit in a period's
	// slot budget (SlotsPerPeriod / K); the paper's freshness tradeoff.
	ServiceFrequency float64
	// SatisfactionPerSlot = MeanSatisfaction / K: the efficiency of each
	// broadcast slot, which falls as K grows past interest saturation.
	SatisfactionPerSlot float64
	// UserSatisfaction holds each user's mean per-period satisfaction
	// fraction, ascending — the distribution behind the Jain index.
	UserSatisfaction []float64
}

// Run simulates the base station over the trace's population. The input
// trace is not modified; the population evolves on a private copy.
//
// Run is anytime under cancellation: ctx is checked between scheduling
// rounds (periods), a period whose schedule was cut short is discarded, and
// the metrics aggregated over the completed periods are returned together
// with ctx.Err(). A nil ctx behaves like context.Background().
func Run(ctx context.Context, tr *trace.Trace, sched Scheduler, cfg Config) (*Metrics, error) {
	if tr == nil {
		return nil, errors.New("broadcast: nil trace")
	}
	if sched == nil {
		return nil, errors.New("broadcast: nil scheduler")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	nm := cfg.Norm
	if nm == nil {
		nm = norm.L2{}
	}
	slots := cfg.SlotsPerPeriod
	if slots <= 0 {
		slots = cfg.K
	}

	// Private evolving copy of the population.
	cur := &trace.Trace{Dim: tr.Dim, Lo: append([]float64{}, tr.Lo...), Hi: append([]float64{}, tr.Hi...)}
	cur.Users = make([]trace.User, len(tr.Users))
	for i, u := range tr.Users {
		cur.Users[i] = trace.User{ID: u.ID, Interest: append([]float64{}, u.Interest...), Weight: u.Weight}
	}
	rng := xrand.New(cfg.Seed)
	box := cur.Box()
	nextID := 0
	for _, u := range cur.Users {
		if u.ID >= nextID {
			nextID = u.ID + 1
		}
	}

	m := &Metrics{Scheduler: sched.Name()}
	perUser := map[int]*userAccount{}
	var cancelErr error
	for p := 0; p < cfg.Periods; p++ {
		if err := ctx.Err(); err != nil {
			cancelErr = err
			break
		}
		set, err := cur.ToSet()
		if err != nil {
			return nil, err
		}
		in, err := reward.NewInstance(set, nm, cfg.Radius)
		if err != nil {
			return nil, err
		}
		in.SetCollector(cfg.Obs)
		centers, err := sched.Schedule(ctx, in, cfg.K)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				// The period's schedule was cut short; discard it and keep
				// the completed periods as the anytime answer.
				cancelErr = cerr
				break
			}
			return nil, fmt.Errorf("broadcast: period %d: %w", p, err)
		}
		f := in.Objective(centers)
		m.Periods = append(m.Periods, PeriodStat{
			Period: p, Reward: f, MaxRwd: set.TotalWeight(), Centers: centers,
		})
		// Per-user accounting for fairness.
		for i, u := range cur.Users {
			var frac float64
			for _, c := range centers {
				frac += in.Coverage(c, i)
			}
			if frac > 1 {
				frac = 1
			}
			acct := perUser[u.ID]
			if acct == nil {
				acct = &userAccount{}
				perUser[u.ID] = acct
			}
			acct.satisfaction += frac
			acct.periods++
		}
		// Evolve the population for the next period.
		if p == cfg.Periods-1 {
			break
		}
		if cfg.DriftSigma > 0 {
			if err := trace.Drift(cur, cfg.DriftSigma, rng); err != nil {
				return nil, err
			}
		}
		if cfg.ChurnRate > 0 {
			for i := range cur.Users {
				if rng.Bernoulli(cfg.ChurnRate) {
					cur.Users[i] = trace.User{
						ID:       nextID,
						Interest: append([]float64{}, box.Sample(rng)...),
						Weight:   cur.Users[i].Weight,
					}
					nextID++
				}
			}
		}
		if cfg.DepartRate > 0 {
			kept := cur.Users[:0]
			for _, u := range cur.Users {
				if !rng.Bernoulli(cfg.DepartRate) {
					kept = append(kept, u)
				}
			}
			if len(kept) == 0 {
				kept = cur.Users[:1] // never serve an empty cell
			}
			cur.Users = kept
		}
		if cfg.ArrivalRate > 0 {
			arrivals := rng.Poisson(cfg.ArrivalRate)
			for a := 0; a < arrivals; a++ {
				w := cur.Users[rng.Intn(len(cur.Users))].Weight
				cur.Users = append(cur.Users, trace.User{
					ID:       nextID,
					Interest: append([]float64{}, box.Sample(rng)...),
					Weight:   w,
				})
				nextID++
			}
		}
	}

	m.aggregate(perUser, slots, cfg.K)
	return m, cancelErr
}

type userAccount struct {
	satisfaction float64
	periods      int
}

// aggregate derives the summary metrics from the recorded periods (the
// shared tail of Run and RunTimeline). With zero completed periods — a run
// cancelled before its first schedule — every summary stays zero.
func (m *Metrics) aggregate(perUser map[int]*userAccount, slots, k int) {
	if len(m.Periods) > 0 {
		var satSum float64
		for _, ps := range m.Periods {
			if ps.MaxRwd > 0 {
				satSum += ps.Reward / ps.MaxRwd
			}
		}
		m.MeanSatisfaction = satSum / float64(len(m.Periods))
	}
	userSat := make([]float64, 0, len(perUser))
	for _, acct := range perUser {
		userSat = append(userSat, acct.satisfaction/float64(acct.periods))
	}
	sort.Float64s(userSat)
	m.UserSatisfaction = userSat
	m.Fairness = stats.JainIndex(userSat)
	m.ServiceFrequency = float64(slots) / float64(k)
	m.SatisfactionPerSlot = m.MeanSatisfaction / float64(k)
}

// RunTimeline replays a recorded population timeline: period p's schedule is
// computed against snapshot p exactly, so two replays of the same timeline
// with the same scheduler are bit-identical — the trace-driven analogue of
// Run, with the population evolution fixed up front instead of simulated.
// Cancellation follows Run's anytime contract: completed periods are
// aggregated and returned with ctx.Err().
func RunTimeline(ctx context.Context, tl *trace.Timeline, sched Scheduler, cfg Config) (*Metrics, error) {
	if tl == nil {
		return nil, errors.New("broadcast: nil timeline")
	}
	if sched == nil {
		return nil, errors.New("broadcast: nil scheduler")
	}
	if err := tl.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Period count comes from the timeline; validate the rest of the
	// config against it.
	ccfg := cfg
	ccfg.Periods = tl.Periods()
	if err := ccfg.validate(); err != nil {
		return nil, err
	}
	nm := ccfg.Norm
	if nm == nil {
		nm = norm.L2{}
	}
	slots := ccfg.SlotsPerPeriod
	if slots <= 0 {
		slots = ccfg.K
	}
	m := &Metrics{Scheduler: sched.Name()}
	perUser := map[int]*userAccount{}
	var cancelErr error
	for p, snap := range tl.Snapshots {
		if err := ctx.Err(); err != nil {
			cancelErr = err
			break
		}
		set, err := snap.ToSet()
		if err != nil {
			return nil, err
		}
		in, err := reward.NewInstance(set, nm, ccfg.Radius)
		if err != nil {
			return nil, err
		}
		in.SetCollector(ccfg.Obs)
		centers, err := sched.Schedule(ctx, in, ccfg.K)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				cancelErr = cerr
				break
			}
			return nil, fmt.Errorf("broadcast: timeline period %d: %w", p, err)
		}
		f := in.Objective(centers)
		m.Periods = append(m.Periods, PeriodStat{Period: p, Reward: f, MaxRwd: set.TotalWeight(), Centers: centers})
		for i, u := range snap.Users {
			var frac float64
			for _, c := range centers {
				frac += in.Coverage(c, i)
			}
			if frac > 1 {
				frac = 1
			}
			acct := perUser[u.ID]
			if acct == nil {
				acct = &userAccount{}
				perUser[u.ID] = acct
			}
			acct.satisfaction += frac
			acct.periods++
		}
	}
	m.aggregate(perUser, slots, ccfg.K)
	return m, cancelErr
}

// KSweep runs the same population under k = 1..kMax and reports the
// satisfaction/frequency tradeoff curve, regenerating the §III.A observation
// quantitatively. A cancelled sweep returns the k values completed so far
// together with ctx.Err().
func KSweep(ctx context.Context, tr *trace.Trace, sched Scheduler, base Config, kMax int) ([]Metrics, error) {
	if kMax <= 0 {
		return nil, fmt.Errorf("broadcast: kMax = %d", kMax)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]Metrics, 0, kMax)
	for k := 1; k <= kMax; k++ {
		cfg := base
		cfg.K = k
		m, err := Run(ctx, tr, sched, cfg)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return out, cerr // keep the fully-swept k values
			}
			return nil, err
		}
		out = append(out, *m)
	}
	return out, nil
}
