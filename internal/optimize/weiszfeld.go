package optimize

import (
	"context"
	"errors"

	"repro/internal/reward"
	"repro/internal/vec"
)

// Weiszfeld approximately solves the paper's per-round problem via the
// alternating structure of its QP formulation (Eq. 11): fixing the selection
// indicators s_i and the set of cap-bound points, the remaining objective is
// Σ w_i·(1 − d(c, x_i)/r) over the active set — maximized by minimizing the
// weighted Fermat–Weber cost Σ w_i·d(c, x_i), whose classical solver is
// Weiszfeld's iteration (for the 2-norm). The solver alternates:
//
//  1. Active set: points within radius r of c whose residual y_i does not
//     already cap their gain at distance d(c, x_i).
//  2. Weiszfeld steps toward the weighted geometric median of that set.
//
// until the active set stabilizes, then polishes with a short compass
// search (the active-set boundary makes the true objective piecewise, which
// plain Weiszfeld cannot see). For non-Euclidean norms the geometric-median
// step uses the component median (exact for the 1-norm).
type Weiszfeld struct {
	// MaxOuter bounds the active-set alternations (default 20).
	MaxOuter int
	// MaxInner bounds Weiszfeld iterations per alternation (default 50).
	MaxInner int
}

// Name implements core.InnerSolver.
func (Weiszfeld) Name() string { return "weiszfeld" }

// Solve implements core.InnerSolver. A cancelled call stops the alternation
// at the current outer step and returns the incumbent with ctx.Err().
func (w Weiszfeld) Solve(ctx context.Context, in *reward.Instance, y []float64) (vec.V, error) {
	if in == nil {
		return nil, errors.New("optimize: nil instance")
	}
	maxOuter := w.MaxOuter
	if maxOuter <= 0 {
		maxOuter = 20
	}
	maxInner := w.MaxInner
	if maxInner <= 0 {
		maxInner = 50
	}
	best, bestG := bestPointStart(in, y)
	c := best.Clone()
	euclid := in.Norm.P() == 2

	for outer := 0; outer < maxOuter; outer++ {
		if ctx != nil && ctx.Err() != nil {
			return best, ctx.Err()
		}
		// Step 1: active set — covered points whose cap is not binding
		// (z_i = 1 − d/r < y_i), i.e. moving c closer still helps them.
		var idx []int
		var wts []float64
		for i := 0; i < in.N(); i++ {
			cov := in.Coverage(c, i)
			if cov > 0 && cov < y[i] {
				idx = append(idx, i)
				wts = append(wts, in.Set.Weight(i))
			}
		}
		if len(idx) == 0 {
			break
		}
		// Step 2: weighted geometric median of the active set.
		var next vec.V
		if euclid {
			next = weiszfeldMedian(in, idx, wts, c, maxInner)
		} else {
			next = componentMedian(in, idx, wts)
		}
		if g := in.RoundGain(next, y); g > bestG {
			best, bestG = next.Clone(), g
		}
		if next.ApproxEqual(c, 1e-9) {
			break
		}
		c = next
	}
	// Piecewise boundaries (points entering/leaving coverage) are invisible
	// to the median step; a short compass pass fixes that.
	polished, pg := CompassSearch(in, y, best, in.Radius/4, in.Radius*1e-3)
	if pg > bestG {
		return polished, nil
	}
	return best, nil
}

// weiszfeldMedian iterates x ← Σ(w_i p_i / d_i) / Σ(w_i / d_i) from start,
// the classical fixed point of the weighted Fermat–Weber problem.
func weiszfeldMedian(in *reward.Instance, idx []int, wts []float64, start vec.V, iters int) vec.V {
	c := start.Clone()
	dim := c.Dim()
	for it := 0; it < iters; it++ {
		num := vec.New(dim)
		var den float64
		for j, i := range idx {
			p := in.Set.Point(i)
			d := c.Dist2(p)
			if d < 1e-12 {
				// Iterate sits on a data point: that point is a valid
				// median candidate; stop here.
				return p.Clone()
			}
			f := wts[j] / d
			num.AddInPlace(p.Scale(f))
			den += f
		}
		if den == 0 {
			return c
		}
		next := num.ScaleInPlace(1 / den)
		if next.ApproxEqual(c, 1e-10) {
			return next
		}
		c = next
	}
	return c
}

// componentMedian returns the per-dimension weighted median of the active
// points — the exact Fermat–Weber point under the 1-norm.
func componentMedian(in *reward.Instance, idx []int, wts []float64) vec.V {
	dim := in.Set.Dim()
	c := vec.New(dim)
	type wx struct{ x, w float64 }
	for d := 0; d < dim; d++ {
		vals := make([]wx, len(idx))
		var total float64
		for j, i := range idx {
			vals[j] = wx{x: in.Set.Point(i)[d], w: wts[j]}
			total += wts[j]
		}
		// Insertion sort: active sets are small.
		for a := 1; a < len(vals); a++ {
			for b := a; b > 0 && vals[b].x < vals[b-1].x; b-- {
				vals[b], vals[b-1] = vals[b-1], vals[b]
			}
		}
		var acc float64
		c[d] = vals[len(vals)-1].x
		for _, v := range vals {
			acc += v.w
			if acc >= total/2 {
				c[d] = v.x
				break
			}
		}
	}
	return c
}
