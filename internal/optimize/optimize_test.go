package optimize

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func mustInstance(t *testing.T, pts []vec.V, ws []float64, n norm.Norm, r float64) *reward.Instance {
	t.Helper()
	set, err := pointset.New(pts, ws)
	if err != nil {
		t.Fatal(err)
	}
	in, err := reward.NewInstance(set, n, r)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSolversRejectNil(t *testing.T) {
	if _, err := (Grid{}).Solve(context.Background(), nil, nil); err == nil {
		t.Error("Grid accepted nil instance")
	}
	if _, err := (Multistart{}).Solve(context.Background(), nil, nil); err == nil {
		t.Error("Multistart accepted nil instance")
	}
}

func TestNames(t *testing.T) {
	if (Grid{}).Name() != "grid17" {
		t.Errorf("Grid name = %q", (Grid{}).Name())
	}
	if (Grid{Per: 5}).Name() != "grid5" {
		t.Errorf("Grid{5} name = %q", (Grid{Per: 5}).Name())
	}
	if (Multistart{}).Name() != "multistart" {
		t.Errorf("Multistart name = %q", (Multistart{}).Name())
	}
}

func TestGridFindsSinglePoint(t *testing.T) {
	in := mustInstance(t, []vec.V{vec.Of(1.5, 2.5)}, []float64{4}, norm.L2{}, 1)
	y := in.NewResiduals()
	c, err := Grid{Per: 9}.Solve(context.Background(), in, y)
	if err != nil {
		t.Fatal(err)
	}
	// Data points are always candidates, so the exact point must win.
	if g := in.RoundGain(c, y); math.Abs(g-4) > 1e-9 {
		t.Fatalf("grid gain = %v, want 4 (center %v)", g, c)
	}
}

func TestMultistartBeatsBestDataPointOnSquare(t *testing.T) {
	// Square of side 0.8, r = 1: continuous optimum is the square center
	// (gain ≈ 1.736); the best data point yields only 1.4.
	pts := []vec.V{vec.Of(0, 0), vec.Of(0.8, 0), vec.Of(0, 0.8), vec.Of(0.8, 0.8)}
	in := mustInstance(t, pts, []float64{1, 1, 1, 1}, norm.L2{}, 1)
	y := in.NewResiduals()
	c, err := Multistart{}.Solve(context.Background(), in, y)
	if err != nil {
		t.Fatal(err)
	}
	g := in.RoundGain(c, y)
	if g < 1.7 {
		t.Fatalf("multistart gain = %v at %v, want ≈ 1.736", g, c)
	}
	if !c.ApproxEqual(vec.Of(0.4, 0.4), 0.02) {
		t.Fatalf("multistart center = %v, want ≈ (0.4, 0.4)", c)
	}
}

func TestMultistartNeverBelowGrid(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 15; trial++ {
		n := rng.IntRange(3, 20)
		pts := make([]vec.V, n)
		ws := make([]float64, n)
		for i := range pts {
			pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
			ws[i] = float64(rng.IntRange(1, 5))
		}
		in := mustInstance(t, pts, ws, norm.L2{}, rng.Uniform(0.6, 2))
		y := in.NewResiduals()
		gc, err := Grid{Per: 5}.Solve(context.Background(), in, y)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := Multistart{GridPer: 5}.Solve(context.Background(), in, y)
		if err != nil {
			t.Fatal(err)
		}
		gg, mg := in.RoundGain(gc, y), in.RoundGain(mc, y)
		if mg < gg-1e-9 {
			t.Fatalf("trial %d: multistart %v below grid %v", trial, mg, gg)
		}
	}
}

func TestCompassSearchMonotone(t *testing.T) {
	rng := xrand.New(5)
	pts := make([]vec.V, 10)
	for i := range pts {
		pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
	}
	set, _ := pointset.UnitWeights(pts)
	in, _ := reward.NewInstance(set, norm.L1{}, 1.5)
	y := in.NewResiduals()
	start := vec.Of(2, 2)
	c, g := CompassSearch(in, y, start, 0.75, 1e-3)
	if g < in.RoundGain(start, y)-1e-12 {
		t.Fatalf("compass decreased gain: %v < start %v", g, in.RoundGain(start, y))
	}
	if math.Abs(g-in.RoundGain(c, y)) > 1e-9 {
		t.Fatalf("reported gain %v != recomputed %v", g, in.RoundGain(c, y))
	}
	if start[0] != 2 || start[1] != 2 {
		t.Fatal("CompassSearch mutated its start vector")
	}
}

func TestRoundBasedWithSolvers(t *testing.T) {
	rng := xrand.New(7)
	pts := make([]vec.V, 15)
	ws := make([]float64, 15)
	for i := range pts {
		pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		ws[i] = float64(rng.IntRange(1, 5))
	}
	in := mustInstance(t, pts, ws, norm.L2{}, 1.2)
	for _, s := range []core.InnerSolver{Grid{Per: 9}, Multistart{}} {
		res, err := core.RoundBased{Solver: s}.Run(context.Background(), in, 3)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		// Round-based with a decent solver should never lose to greedy3
		// in the first round (greedy3's center is one of the starts).
		r3, err := core.SimpleGreedy{}.Run(context.Background(), in, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Gains[0] < r3.Gains[0]-1e-9 {
			t.Fatalf("%s round 1 %v < greedy3 %v", s.Name(), res.Gains[0], r3.Gains[0])
		}
	}
}

func TestSearchBoxMismatch(t *testing.T) {
	in := mustInstance(t, []vec.V{vec.Of(0, 0)}, []float64{1}, norm.L2{}, 1)
	bad := Grid{Box: pointset.PaperBox3D()}
	if _, err := bad.Solve(context.Background(), in, in.NewResiduals()); err == nil {
		t.Error("mismatched box dimension accepted")
	}
	good := Multistart{Box: pointset.PaperBox2D()}
	if _, err := good.Solve(context.Background(), in, in.NewResiduals()); err != nil {
		t.Errorf("valid box rejected: %v", err)
	}
}

func TestGridDerivedBoxCoversData(t *testing.T) {
	// Instance away from the origin: the derived search box must still
	// surround the data so the grid can cover it.
	in := mustInstance(t, []vec.V{vec.Of(10, 10), vec.Of(11, 10)}, []float64{1, 1}, norm.L2{}, 1)
	y := in.NewResiduals()
	c, err := Grid{Per: 9}.Solve(context.Background(), in, y)
	if err != nil {
		t.Fatal(err)
	}
	if g := in.RoundGain(c, y); g < 1 {
		t.Fatalf("grid gain = %v with auto box", g)
	}
}
