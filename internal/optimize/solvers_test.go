package optimize

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func squareInstance(t *testing.T) *reward.Instance {
	t.Helper()
	pts := []vec.V{vec.Of(0, 0), vec.Of(0.8, 0), vec.Of(0, 0.8), vec.Of(0.8, 0.8)}
	return mustInstance(t, pts, []float64{1, 1, 1, 1}, norm.L2{}, 1)
}

func TestNelderMeadFindsSquareCenter(t *testing.T) {
	in := squareInstance(t)
	y := in.NewResiduals()
	c, err := NelderMead{}.Solve(context.Background(), in, y)
	if err != nil {
		t.Fatal(err)
	}
	if g := in.RoundGain(c, y); g < 1.7 {
		t.Fatalf("neldermead gain = %v at %v, want ≈ 1.736", g, c)
	}
}

func TestAnnealFindsSquareCenter(t *testing.T) {
	in := squareInstance(t)
	y := in.NewResiduals()
	c, err := Anneal{Seed: 5}.Solve(context.Background(), in, y)
	if err != nil {
		t.Fatal(err)
	}
	if g := in.RoundGain(c, y); g < 1.7 {
		t.Fatalf("anneal gain = %v at %v, want ≈ 1.736", g, c)
	}
}

func TestSolverNamesAndNil(t *testing.T) {
	if (NelderMead{}).Name() != "neldermead" || (Anneal{}).Name() != "anneal" {
		t.Error("names wrong")
	}
	if _, err := (NelderMead{}).Solve(context.Background(), nil, nil); err == nil {
		t.Error("neldermead accepted nil instance")
	}
	if _, err := (Anneal{}).Solve(context.Background(), nil, nil); err == nil {
		t.Error("anneal accepted nil instance")
	}
}

func TestSolversNeverBelowBestDataPoint(t *testing.T) {
	// Every solver starts from (or scores) the best data point, so its
	// result can never be worse than greedy3's single-point rule.
	rng := xrand.New(19)
	solvers := []core.InnerSolver{NelderMead{}, Anneal{Seed: 3}, Multistart{}, Grid{Per: 9}}
	for trial := 0; trial < 10; trial++ {
		n := rng.IntRange(4, 25)
		pts := make([]vec.V, n)
		ws := make([]float64, n)
		for i := range pts {
			pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
			ws[i] = float64(rng.IntRange(1, 5))
		}
		in := mustInstance(t, pts, ws, norm.L2{}, rng.Uniform(0.6, 2))
		y := in.NewResiduals()
		_, baseline := bestPointStart(in, y)
		for _, s := range solvers {
			c, err := s.Solve(context.Background(), in, y)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if g := in.RoundGain(c, y); g < baseline-1e-9 {
				t.Fatalf("trial %d: %s gain %v below best-point %v", trial, s.Name(), g, baseline)
			}
		}
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	rng := xrand.New(23)
	pts := make([]vec.V, 15)
	for i := range pts {
		pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
	}
	set, _ := pointset.UnitWeights(pts)
	in, _ := reward.NewInstance(set, norm.L2{}, 1.2)
	y := in.NewResiduals()
	a, err := Anneal{Seed: 9}.Solve(context.Background(), in, y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal{Seed: 9}.Solve(context.Background(), in, y)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("same seed produced %v and %v", a, b)
	}
}

func TestNelderMeadFromRespectsStart(t *testing.T) {
	in := squareInstance(t)
	y := in.NewResiduals()
	start := vec.Of(0.4, 0.4)
	c, g := NelderMeadFrom(in, y, start, 100, 0.3, 1e-9)
	if g < in.RoundGain(start, y)-1e-12 {
		t.Fatalf("simplex decreased gain from %v to %v", in.RoundGain(start, y), g)
	}
	if math.Abs(g-in.RoundGain(c, y)) > 1e-9 {
		t.Fatal("reported gain inconsistent with center")
	}
	if start[0] != 0.4 || start[1] != 0.4 {
		t.Fatal("NelderMeadFrom mutated start")
	}
}

func TestRoundBasedWithNewSolvers(t *testing.T) {
	rng := xrand.New(29)
	pts := make([]vec.V, 12)
	ws := make([]float64, 12)
	for i := range pts {
		pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		ws[i] = float64(rng.IntRange(1, 5))
	}
	in := mustInstance(t, pts, ws, norm.L1{}, 1.5)
	for _, s := range []core.InnerSolver{NelderMead{}, Anneal{Seed: 1, Steps: 500}} {
		res, err := core.RoundBased{Solver: s}.Run(context.Background(), in, 3)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}
