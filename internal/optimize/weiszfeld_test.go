package optimize

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestWeiszfeldName(t *testing.T) {
	if (Weiszfeld{}).Name() != "weiszfeld" {
		t.Errorf("name = %q", (Weiszfeld{}).Name())
	}
	if _, err := (Weiszfeld{}).Solve(context.Background(), nil, nil); err == nil {
		t.Error("nil instance accepted")
	}
}

func TestWeiszfeldFindsSquareCenter(t *testing.T) {
	in := squareInstance(t)
	y := in.NewResiduals()
	c, err := Weiszfeld{}.Solve(context.Background(), in, y)
	if err != nil {
		t.Fatal(err)
	}
	if g := in.RoundGain(c, y); g < 1.7 {
		t.Fatalf("weiszfeld gain = %v at %v, want ≈ 1.736", g, c)
	}
}

func TestWeiszfeldNeverBelowBestPoint(t *testing.T) {
	rng := xrand.New(111)
	for trial := 0; trial < 20; trial++ {
		n := rng.IntRange(3, 25)
		pts := make([]vec.V, n)
		ws := make([]float64, n)
		for i := range pts {
			pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
			ws[i] = float64(rng.IntRange(1, 5))
		}
		for _, nm := range []norm.Norm{norm.L1{}, norm.L2{}} {
			in := mustInstance(t, pts, ws, nm, rng.Uniform(0.6, 2))
			y := in.NewResiduals()
			_, baseline := bestPointStart(in, y)
			c, err := Weiszfeld{}.Solve(context.Background(), in, y)
			if err != nil {
				t.Fatal(err)
			}
			if g := in.RoundGain(c, y); g < baseline-1e-9 {
				t.Fatalf("trial %d %s: weiszfeld %v below best point %v", trial, nm.Name(), g, baseline)
			}
		}
	}
}

func TestWeiszfeldMedianConvergence(t *testing.T) {
	// Geometric median of three unit-weight points at the vertices of an
	// equilateral triangle is the centroid.
	pts := []vec.V{vec.Of(0, 0), vec.Of(1, 0), vec.Of(0.5, 0.8660254)}
	in := mustInstance(t, pts, []float64{1, 1, 1}, norm.L2{}, 10)
	idx := []int{0, 1, 2}
	wts := []float64{1, 1, 1}
	m := weiszfeldMedian(in, idx, wts, vec.Of(0.2, 0.2), 200)
	if !m.ApproxEqual(vec.Of(0.5, 0.28867513), 1e-4) {
		t.Fatalf("median = %v, want centroid ≈ (0.5, 0.289)", m)
	}
}

func TestWeiszfeldMedianOnDataPoint(t *testing.T) {
	// Dominant weight pulls the median onto the heavy point exactly; the
	// iteration must handle landing on a data point without dividing by 0.
	pts := []vec.V{vec.Of(0, 0), vec.Of(1, 0), vec.Of(2, 0)}
	in := mustInstance(t, pts, []float64{100, 1, 1}, norm.L2{}, 10)
	m := weiszfeldMedian(in, []int{0, 1, 2}, []float64{100, 1, 1}, vec.Of(0, 0), 100)
	if !m.ApproxEqual(vec.Of(0, 0), 1e-9) {
		t.Fatalf("median = %v, want the heavy point", m)
	}
}

func TestComponentMedianExactL1(t *testing.T) {
	pts := []vec.V{vec.Of(0, 5), vec.Of(1, 1), vec.Of(9, 2)}
	in := mustInstance(t, pts, []float64{1, 1, 1}, norm.L1{}, 10)
	m := componentMedian(in, []int{0, 1, 2}, []float64{1, 1, 1})
	if !m.ApproxEqual(vec.Of(1, 2), 1e-12) {
		t.Fatalf("component median = %v, want (1, 2)", m)
	}
}

func TestRoundBasedWithWeiszfeld(t *testing.T) {
	rng := xrand.New(113)
	pts := make([]vec.V, 15)
	ws := make([]float64, 15)
	for i := range pts {
		pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		ws[i] = float64(rng.IntRange(1, 5))
	}
	in := mustInstance(t, pts, ws, norm.L2{}, 1.3)
	res, err := core.RoundBased{Solver: Weiszfeld{}}.Run(context.Background(), in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	// Must not lose to greedy3 (its start point is weiszfeld's too).
	r3, err := core.SimpleGreedy{}.Run(context.Background(), in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < r3.Total-1e-9 {
		t.Fatalf("weiszfeld-driven greedy1 %v below greedy3 %v", res.Total, r3.Total)
	}
}
