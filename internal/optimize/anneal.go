package optimize

import (
	"context"
	"errors"
	"math"

	"repro/internal/reward"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// Anneal maximizes the round gain with simulated annealing: Gaussian moves
// whose scale cools geometrically, with Metropolis acceptance. It escapes
// the local basins the deterministic solvers settle into, at the cost of
// more gain evaluations; it is provided for the inner-solver ablation and
// for adversarial instances with many equal-height ridges.
type Anneal struct {
	// Seed drives the proposal chain (same seed ⇒ same result).
	Seed uint64
	// Steps is the number of proposals (default 2000).
	Steps int
	// T0 is the initial temperature relative to the instance's total
	// weight (default 0.05).
	T0 float64
	// Cooling is the per-step geometric factor (default 0.995).
	Cooling float64
}

// Name implements core.InnerSolver.
func (Anneal) Name() string { return "anneal" }

// Solve implements core.InnerSolver. A cancelled call stops the chain at
// the current step and returns the incumbent with ctx.Err().
func (a Anneal) Solve(ctx context.Context, in *reward.Instance, y []float64) (vec.V, error) {
	if in == nil {
		return nil, errors.New("optimize: nil instance")
	}
	steps := a.Steps
	if steps <= 0 {
		steps = 2000
	}
	t0 := a.T0
	if t0 <= 0 {
		t0 = 0.05
	}
	cooling := a.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.995
	}
	rng := xrand.New(a.Seed ^ 0xa44ea1)

	cur, curG := bestPointStart(in, y)
	best, bestG := cur.Clone(), curG
	temp := t0 * in.Set.TotalWeight()
	scale := in.Radius / 2
	lo, hi := in.Set.Bounds()

	for s := 0; s < steps; s++ {
		if ctx != nil && ctx.Err() != nil {
			return best, ctx.Err()
		}
		prop := cur.Clone()
		for d := range prop {
			prop[d] += scale * rng.NormFloat64()
			// Keep proposals within the data region expanded by r; no
			// useful center lies beyond it.
			if min, max := lo[d]-in.Radius, hi[d]+in.Radius; prop[d] < min {
				prop[d] = min
			} else if prop[d] > max {
				prop[d] = max
			}
		}
		g := in.RoundGain(prop, y)
		if g >= curG || rng.Float64() < math.Exp((g-curG)/math.Max(temp, 1e-12)) {
			cur, curG = prop, g
			if g > bestG {
				best, bestG = prop.Clone(), g
			}
		}
		temp *= cooling
		scale *= math.Sqrt(cooling) // proposals shrink slower than temperature
	}
	// Final deterministic polish so the chain's end is at a local optimum.
	polished, pg := CompassSearch(in, y, best, in.Radius/8, in.Radius*1e-3)
	if pg > bestG {
		return polished, nil
	}
	return best, nil
}
