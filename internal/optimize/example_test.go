package optimize_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/optimize"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/vec"
)

// The round-based heuristic's inner problem: place one content anywhere in
// the plane. Four users at the corners of a small square make the square's
// center optimal (gain ≈ 1.74), which no single data point achieves (1.4).
func ExampleMultistart() {
	users, _ := pointset.UnitWeights([]vec.V{
		vec.Of(0, 0), vec.Of(0.8, 0), vec.Of(0, 0.8), vec.Of(0.8, 0.8),
	})
	in, _ := reward.NewInstance(users, norm.L2{}, 1)
	y := in.NewResiduals()
	c, _ := optimize.Multistart{}.Solve(context.Background(), in, y)
	fmt.Printf("center ≈ %v, gain %.2f\n", c, in.RoundGain(c, y))
	// Output:
	// center ≈ (0.400, 0.400), gain 1.74
}

// Any InnerSolver plugs into Algorithm 1; here Nelder–Mead drives it.
func ExampleNelderMead() {
	users, _ := pointset.UnitWeights([]vec.V{vec.Of(1, 1), vec.Of(1.5, 1)})
	in, _ := reward.NewInstance(users, norm.L2{}, 1)
	res, _ := core.RoundBased{Solver: optimize.NelderMead{}}.Run(context.Background(), in, 1)
	// The gain is constant (1.5) anywhere on the segment between the two
	// users: w·(2 − (d1+d2)/r) with d1+d2 fixed at their 0.5 separation.
	fmt.Printf("one broadcast captures %.2f of 2.00\n", res.Total)
	// Output:
	// one broadcast captures 1.50 of 2.00
}
