package optimize

import (
	"context"
	"testing"

	"repro/internal/norm"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestCriticalValidation(t *testing.T) {
	if (Critical{}).Name() != "critical" {
		t.Errorf("name = %q", (Critical{}).Name())
	}
	if _, err := (Critical{}).Solve(context.Background(), nil, nil); err == nil {
		t.Error("nil instance accepted")
	}
	// 3-D is rejected: the planar critical-point characterization applies.
	in3 := mustInstance(t, []vec.V{vec.Of(0, 0, 0)}, []float64{1}, norm.L2{}, 1)
	if _, err := (Critical{}).Solve(context.Background(), in3, in3.NewResiduals()); err == nil {
		t.Error("3-D accepted")
	}
}

func TestCriticalFindsSquareCenter(t *testing.T) {
	in := squareInstance(t)
	y := in.NewResiduals()
	c, err := Critical{}.Solve(context.Background(), in, y)
	if err != nil {
		t.Fatal(err)
	}
	if g := in.RoundGain(c, y); g < 1.7 {
		t.Fatalf("critical gain = %v at %v, want ≈ 1.736", g, c)
	}
}

// Critical's circle-intersection seeding must never lose to multistart by
// more than a small slack, and frequently at least matches it — both are
// approximations to the same NP-hard subproblem.
func TestCriticalCompetitiveWithMultistart(t *testing.T) {
	rng := xrand.New(179)
	var critWins, msWins int
	for trial := 0; trial < 25; trial++ {
		n := rng.IntRange(5, 25)
		pts := make([]vec.V, n)
		ws := make([]float64, n)
		for i := range pts {
			pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
			ws[i] = float64(rng.IntRange(1, 5))
		}
		in := mustInstance(t, pts, ws, norm.L2{}, rng.Uniform(0.6, 2))
		y := in.NewResiduals()
		cc, err := Critical{}.Solve(context.Background(), in, y)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := Multistart{}.Solve(context.Background(), in, y)
		if err != nil {
			t.Fatal(err)
		}
		cg, mg := in.RoundGain(cc, y), in.RoundGain(mc, y)
		if cg < 0.95*mg {
			t.Fatalf("trial %d: critical %v far below multistart %v", trial, cg, mg)
		}
		if cg > mg+1e-9 {
			critWins++
		}
		if mg > cg+1e-9 {
			msWins++
		}
	}
	t.Logf("critical wins %d, multistart wins %d of 25", critWins, msWins)
}

func TestCriticalSinglePoint(t *testing.T) {
	in := mustInstance(t, []vec.V{vec.Of(2, 2)}, []float64{3}, norm.L2{}, 1)
	y := in.NewResiduals()
	c, err := Critical{}.Solve(context.Background(), in, y)
	if err != nil {
		t.Fatal(err)
	}
	if g := in.RoundGain(c, y); g < 3-1e-9 {
		t.Fatalf("gain = %v, want 3", g)
	}
}
