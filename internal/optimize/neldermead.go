package optimize

import (
	"context"
	"errors"
	"sort"

	"repro/internal/reward"
	"repro/internal/vec"
)

// NelderMead maximizes the round gain with the downhill-simplex method
// (reflection / expansion / contraction / shrink), seeded from the best data
// point plus axis-offset vertices. It is derivative-free like compass search
// but adapts its step geometry, which helps on the reward surface's ridges
// where coverage cones from several points overlap.
type NelderMead struct {
	// MaxIter bounds the simplex iterations (default 200).
	MaxIter int
	// InitScale is the initial simplex edge as a fraction of the coverage
	// radius (default 0.5).
	InitScale float64
	// Tol stops when the simplex's gain spread falls below Tol relative to
	// the best gain (default 1e-9).
	Tol float64
}

// Name implements core.InnerSolver.
func (NelderMead) Name() string { return "neldermead" }

// Solve implements core.InnerSolver. The simplex iteration count is already
// bounded, so cancellation is only checked between the seeding scan and the
// descent: a cancelled call returns the best simplex vertex so far.
func (nm NelderMead) Solve(ctx context.Context, in *reward.Instance, y []float64) (vec.V, error) {
	if in == nil {
		return nil, errors.New("optimize: nil instance")
	}
	// Seed at the best single data point (greedy3's rule applied to the
	// coverage gain), which is always a strong basin.
	start, _ := bestPointStart(in, y)
	if ctx != nil && ctx.Err() != nil {
		return start, ctx.Err()
	}
	c, _ := NelderMeadFrom(in, y, start, nm.MaxIter, nm.InitScale, nm.Tol)
	if ctx != nil {
		return c, ctx.Err()
	}
	return c, nil
}

// bestPointStart returns the data point with the highest round gain.
func bestPointStart(in *reward.Instance, y []float64) (vec.V, float64) {
	best, bestG := 0, in.RoundGain(in.Set.Point(0), y)
	for i := 1; i < in.N(); i++ {
		if g := in.RoundGain(in.Set.Point(i), y); g > bestG {
			best, bestG = i, g
		}
	}
	return in.Set.Point(best).Clone(), bestG
}

// NelderMeadFrom runs the simplex from an explicit start and returns the
// best center with its gain. Exported so Multistart-style compositions and
// the ablation benches can reuse it.
func NelderMeadFrom(in *reward.Instance, y []float64, start vec.V, maxIter int, initScale, tol float64) (vec.V, float64) {
	if maxIter <= 0 {
		maxIter = 200
	}
	if initScale <= 0 {
		initScale = 0.5
	}
	if tol <= 0 {
		tol = 1e-9
	}
	dim := start.Dim()
	edge := initScale * in.Radius

	type vertex struct {
		x vec.V
		g float64
	}
	eval := func(x vec.V) vertex { return vertex{x: x, g: in.RoundGain(x, y)} }

	// Initial simplex: start plus one axis offset per dimension.
	simplex := make([]vertex, dim+1)
	simplex[0] = eval(start.Clone())
	for d := 0; d < dim; d++ {
		x := start.Clone()
		x[d] += edge
		simplex[d+1] = eval(x)
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	for iter := 0; iter < maxIter; iter++ {
		// Order best-first (maximization).
		sort.SliceStable(simplex, func(a, b int) bool { return simplex[a].g > simplex[b].g })
		best, worst := simplex[0], simplex[dim]
		if best.g-worst.g <= tol*(1+best.g) {
			break
		}
		// Centroid of all but the worst.
		cen := vec.New(dim)
		for _, v := range simplex[:dim] {
			cen.AddInPlace(v.x)
		}
		cen.ScaleInPlace(1 / float64(dim))

		reflect := eval(cen.Add(cen.Sub(worst.x).Scale(alpha)))
		switch {
		case reflect.g > best.g:
			// Try to expand further along the same direction.
			expand := eval(cen.Add(cen.Sub(worst.x).Scale(gamma)))
			if expand.g > reflect.g {
				simplex[dim] = expand
			} else {
				simplex[dim] = reflect
			}
		case reflect.g > simplex[dim-1].g:
			simplex[dim] = reflect
		default:
			// Contract toward the centroid.
			contract := eval(cen.Add(worst.x.Sub(cen).Scale(rho)))
			if contract.g > worst.g {
				simplex[dim] = contract
			} else {
				// Shrink everything toward the best vertex.
				for i := 1; i <= dim; i++ {
					simplex[i] = eval(best.x.Add(simplex[i].x.Sub(best.x).Scale(sigma)))
				}
			}
		}
	}
	sort.SliceStable(simplex, func(a, b int) bool { return simplex[a].g > simplex[b].g })
	return simplex[0].x, simplex[0].g
}
