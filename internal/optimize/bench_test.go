package optimize

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/xrand"
)

func benchInstance(b *testing.B, n int) *reward.Instance {
	b.Helper()
	set, err := pointset.GenUniform(n, pointset.PaperBox2D(), pointset.RandomIntWeight, xrand.New(42))
	if err != nil {
		b.Fatal(err)
	}
	in, err := reward.NewInstance(set, norm.L2{}, 1.2)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func benchSolver(b *testing.B, s core.InnerSolver) {
	in := benchInstance(b, 40)
	y := in.NewResiduals()
	b.ReportAllocs()
	b.ResetTimer()
	var g float64
	for i := 0; i < b.N; i++ {
		c, err := s.Solve(context.Background(), in, y)
		if err != nil {
			b.Fatal(err)
		}
		g = in.RoundGain(c, y)
	}
	b.ReportMetric(g, "gain")
}

func BenchmarkSolverGrid17(b *testing.B) { benchSolver(b, Grid{Per: 17, Workers: 1}) }
func BenchmarkSolverMultistart(b *testing.B) {
	benchSolver(b, Multistart{Workers: 1})
}
func BenchmarkSolverNelderMead(b *testing.B) { benchSolver(b, NelderMead{}) }
func BenchmarkSolverWeiszfeld(b *testing.B)  { benchSolver(b, Weiszfeld{}) }
func BenchmarkSolverAnneal(b *testing.B)     { benchSolver(b, Anneal{Seed: 1}) }
func BenchmarkSolverCritical(b *testing.B)   { benchSolver(b, Critical{Workers: 1}) }
