package optimize

import (
	"context"
	"errors"
	"math"

	"repro/internal/parallel"
	"repro/internal/reward"
	"repro/internal/vec"
)

// Critical solves the 2-D Euclidean round problem by enumerating the
// geometry's critical points. The round gain g(c) is piecewise smooth: its
// pieces change exactly where some user enters or leaves the radius-r disk,
// i.e. on the circles of radius r around the users. Local maxima therefore
// lie at data points, at intersections of two such circles (where the
// active set changes along two constraints), or at interior stationary
// points of a fixed active set — which a short compass polish recovers.
// Enumerating all O(n²) circle intersections plus the n data points and
// polishing the best few is exact in practice at paper scales and gives a
// geometric alternative to random multistart.
type Critical struct {
	// Top is how many best seeds are polished (default 8).
	Top int
	// Workers bounds the scoring parallelism; <= 0 uses all CPUs.
	Workers int
}

// Name implements core.InnerSolver.
func (Critical) Name() string { return "critical" }

// Solve implements core.InnerSolver. Only 2-D instances are supported (the
// critical-point characterization used here is planar); other dimensions
// return an error.
func (cr Critical) Solve(ctx context.Context, in *reward.Instance, y []float64) (vec.V, error) {
	if in == nil {
		return nil, errors.New("optimize: nil instance")
	}
	if in.Set.Dim() != 2 {
		return nil, errors.New("optimize: Critical supports 2-D instances only")
	}
	top := cr.Top
	if top <= 0 {
		top = 8
	}
	n := in.N()
	r := in.Radius

	// Candidates: all data points plus all pairwise circle intersections.
	cands := make([]vec.V, 0, n+n*n/4)
	for i := 0; i < n; i++ {
		cands = append(cands, in.Set.Point(i))
	}
	for i := 0; i < n; i++ {
		pi := in.Set.Point(i)
		for j := i + 1; j < n; j++ {
			pj := in.Set.Point(j)
			d := pi.Dist2(pj)
			if d == 0 || d > 2*r {
				continue // circles coincide or do not intersect
			}
			// Midpoint plus/minus the perpendicular offset h.
			mid := pi.Mid(pj)
			h := r*r - (d/2)*(d/2)
			if h < 0 {
				continue
			}
			hh := math.Sqrt(h)
			// Unit perpendicular to pj−pi.
			ux := (pj[1] - pi[1]) / d
			uy := -(pj[0] - pi[0]) / d
			cands = append(cands,
				vec.Of(mid[0]+hh*ux, mid[1]+hh*uy),
				vec.Of(mid[0]-hh*ux, mid[1]-hh*uy))
		}
	}

	scores := make([]float64, len(cands))
	if cerr := parallel.ForCtx(ctx, len(cands), cr.Workers, func(i int) {
		scores[i] = in.RoundGain(cands[i], y)
	}); cerr != nil {
		return nil, cerr
	}
	// Select the top seeds without sorting everything: repeated argmax is
	// fine at these sizes, but a partial selection keeps it tidy.
	type seed struct {
		idx   int
		score float64
	}
	best := make([]seed, 0, top)
	for i, s := range scores {
		if len(best) < top {
			best = append(best, seed{i, s})
			continue
		}
		worst := 0
		for b := 1; b < len(best); b++ {
			if best[b].score < best[worst].score {
				worst = b
			}
		}
		if s > best[worst].score {
			best[worst] = seed{i, s}
		}
	}

	results := make([]struct {
		c vec.V
		g float64
	}, len(best))
	cerr := parallel.ForCtx(ctx, len(best), cr.Workers, func(i int) {
		c, g := CompassSearch(in, y, cands[best[i].idx], in.Radius/8, in.Radius*1e-3)
		results[i].c, results[i].g = c, g
	})
	win := -1
	for i := 0; i < len(results); i++ {
		if results[i].c != nil && (win < 0 || results[i].g > results[win].g) {
			win = i
		}
	}
	if win < 0 {
		// Cancelled before any seed was polished: fall back to the best
		// unpolished candidate so the caller still gets an incumbent.
		top := 0
		for i := 1; i < len(cands); i++ {
			if scores[i] > scores[top] {
				top = i
			}
		}
		return cands[top].Clone(), cerr
	}
	return results[win].c, cerr
}
