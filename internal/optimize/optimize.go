// Package optimize provides approximate solvers for the continuous
// single-center subproblem of the paper's Algorithm 1 (Eq. 10): place one
// center anywhere in R^m to maximize the residual-capped coverage reward.
// The paper proves the subproblem NP-hard, so these are heuristics; the
// default Multistart solver (compass pattern search seeded from every data
// point plus a coarse grid) is strong at the paper's problem scales and is
// the documented substitution for the paper's unspecified inner optimizer
// (DESIGN.md §3.1).
package optimize

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/vec"
)

// Grid exhaustively scores the vertices of a uniform lattice over the search
// box together with every data point, and returns the best. It is simple,
// deterministic, and a useful lower-fidelity ablation against Multistart.
type Grid struct {
	// Box bounds the lattice. A zero Box derives bounds from the data
	// expanded by the coverage radius.
	Box pointset.Box
	// Per is the lattice resolution per dimension (default 17).
	Per int
	// Workers bounds the scan parallelism; <= 0 uses all CPUs.
	Workers int
}

// Name implements core.InnerSolver.
func (g Grid) Name() string { return fmt.Sprintf("grid%d", g.perOrDefault()) }

func (g Grid) perOrDefault() int {
	if g.Per <= 0 {
		return 17
	}
	return g.Per
}

// Solve implements core.InnerSolver.
func (g Grid) Solve(ctx context.Context, in *reward.Instance, y []float64) (vec.V, error) {
	if in == nil {
		return nil, errors.New("optimize: nil instance")
	}
	box, err := searchBox(g.Box, in)
	if err != nil {
		return nil, err
	}
	grid, err := pointset.GridPoints(box, g.perOrDefault())
	if err != nil {
		return nil, err
	}
	cands := append(grid, in.Set.Points()...)
	idx, _, cerr := parallel.ArgmaxFloatCtx(ctx, len(cands), g.Workers, func(i int) float64 {
		return in.RoundGain(cands[i], y)
	})
	if cerr != nil && idx < 0 {
		return nil, cerr
	}
	return cands[idx].Clone(), cerr
}

// Multistart seeds a compass pattern search from the most promising
// candidate starts (all data points plus a coarse lattice), refines each in
// parallel, and returns the best center found. This is the default inner
// solver for the round-based heuristic ("greedy 1").
type Multistart struct {
	// Box bounds the coarse seeding lattice. A zero Box derives bounds
	// from the data expanded by the coverage radius.
	Box pointset.Box
	// GridPer is the seeding-lattice resolution per dimension (default 5).
	GridPer int
	// TopStarts is how many of the best-scoring seeds are refined
	// (default 8).
	TopStarts int
	// InitStepFrac is the initial compass step as a fraction of the
	// coverage radius (default 0.5).
	InitStepFrac float64
	// MinStepFrac is the convergence threshold as a fraction of the
	// coverage radius (default 1e-3).
	MinStepFrac float64
	// Workers bounds the refinement parallelism; <= 0 uses all CPUs.
	Workers int
}

// Name implements core.InnerSolver.
func (Multistart) Name() string { return "multistart" }

// Solve implements core.InnerSolver. Cancellation is cooperative between
// the seeding scan and each refinement start; a cancelled call returns the
// best center refined so far (or nil when none was) with ctx.Err().
func (m Multistart) Solve(ctx context.Context, in *reward.Instance, y []float64) (vec.V, error) {
	if in == nil {
		return nil, errors.New("optimize: nil instance")
	}
	box, err := searchBox(m.Box, in)
	if err != nil {
		return nil, err
	}
	gridPer := m.GridPer
	if gridPer <= 0 {
		gridPer = 5
	}
	top := m.TopStarts
	if top <= 0 {
		top = 8
	}
	initStep := m.InitStepFrac
	if initStep <= 0 {
		initStep = 0.5
	}
	minStep := m.MinStepFrac
	if minStep <= 0 {
		minStep = 1e-3
	}

	grid, err := pointset.GridPoints(box, gridPer)
	if err != nil {
		return nil, err
	}
	starts := append(grid, in.Set.Points()...)
	scores := make([]float64, len(starts))
	if cerr := parallel.ForCtx(ctx, len(starts), m.Workers, func(i int) {
		scores[i] = in.RoundGain(starts[i], y)
	}); cerr != nil {
		// A partially scored seeding scan would bias the start ranking;
		// there is no refined center yet, so report plain cancellation.
		return nil, cerr
	}
	order := make([]int, len(starts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	if top > len(order) {
		top = len(order)
	}

	type refined struct {
		c vec.V
		g float64
	}
	best := make([]refined, top)
	cerr := parallel.ForCtx(ctx, top, m.Workers, func(i int) {
		s := starts[order[i]]
		c, g := CompassSearch(in, y, s, initStep*in.Radius, minStep*in.Radius)
		best[i] = refined{c: c, g: g}
	})
	win := -1
	for i := 0; i < top; i++ {
		if best[i].c != nil && (win < 0 || best[i].g > best[win].g) {
			win = i
		}
	}
	if win < 0 {
		return nil, cerr
	}
	return best[win].c, cerr
}

// CompassSearch hill-climbs the round gain from start using axis-aligned
// moves with geometric step halving, returning the final center and its
// gain. It is exported for the ablation benches.
func CompassSearch(in *reward.Instance, y []float64, start vec.V, initStep, minStep float64) (vec.V, float64) {
	c := start.Clone()
	g := in.RoundGain(c, y)
	dim := c.Dim()
	if minStep <= 0 {
		minStep = 1e-9
	}
	for step := initStep; step >= minStep; {
		improved := false
		for d := 0; d < dim; d++ {
			for _, sgn := range [2]float64{+1, -1} {
				c[d] += sgn * step
				if ng := in.RoundGain(c, y); ng > g+1e-12 {
					g = ng
					improved = true
				} else {
					c[d] -= sgn * step
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return c, g
}

// searchBox resolves the solver's search region: the configured box when
// valid, otherwise the data bounding box expanded by the coverage radius
// (no useful center lies farther than r from every point).
func searchBox(box pointset.Box, in *reward.Instance) (pointset.Box, error) {
	if box.Valid() {
		if box.Dim() != in.Set.Dim() {
			return pointset.Box{}, fmt.Errorf("optimize: box dim %d != instance dim %d", box.Dim(), in.Set.Dim())
		}
		return box, nil
	}
	lo, hi := in.Set.Bounds()
	lo = lo.Clone()
	hi = hi.Clone()
	for d := range lo {
		lo[d] -= in.Radius
		hi[d] += in.Radius
	}
	return pointset.Box{Lo: lo, Hi: hi}, nil
}

var (
	_ core.InnerSolver = Grid{}
	_ core.InnerSolver = Multistart{}
)
