package sim

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestRunTrialsAggregates(t *testing.T) {
	res, err := RunTrials(context.Background(), 10, 4, 1, func(_ context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
		return map[string]float64{
			"trial": float64(trial),
			"const": 3,
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 10 {
		t.Fatalf("Trials = %d", res.Trials)
	}
	if m, ok := res.Mean("trial"); !ok || m != 4.5 {
		t.Errorf("mean trial = %v, %v", m, ok)
	}
	if m, ok := res.Mean("const"); !ok || m != 3 {
		t.Errorf("mean const = %v", m)
	}
	if _, ok := res.Mean("missing"); ok {
		t.Error("missing metric found")
	}
	names := res.MetricNames()
	if len(names) != 2 || names[0] != "const" || names[1] != "trial" {
		t.Errorf("names = %v", names)
	}
	// Samples preserved in trial order.
	if res.Samples["trial"][3] != 3 {
		t.Errorf("samples out of order: %v", res.Samples["trial"])
	}
}

func TestRunTrialsDeterministicAcrossWorkers(t *testing.T) {
	fn := func(_ context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
		return map[string]float64{"x": rng.Float64()}, nil
	}
	a, err := RunTrials(context.Background(), 20, 1, 99, fn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrials(context.Background(), 20, 8, 99, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples["x"] {
		if a.Samples["x"][i] != b.Samples["x"][i] {
			t.Fatalf("trial %d differs across worker counts", i)
		}
	}
}

func TestRunTrialsDistinctSeedsPerTrial(t *testing.T) {
	res, err := RunTrials(context.Background(), 50, 4, 7, func(_ context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
		return map[string]float64{"x": rng.Float64()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for _, v := range res.Samples["x"] {
		if seen[v] {
			t.Fatal("two trials drew identical values: RNGs correlated")
		}
		seen[v] = true
	}
}

func TestRunTrialsErrors(t *testing.T) {
	if _, err := RunTrials(context.Background(), 0, 1, 1, func(context.Context, int, *xrand.Rand) (map[string]float64, error) { return nil, nil }); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := RunTrials(context.Background(), 3, 1, 1, nil); err == nil {
		t.Error("nil fn accepted")
	}
	boom := errors.New("boom")
	if _, err := RunTrials(context.Background(), 5, 2, 1, func(_ context.Context, trial int, _ *xrand.Rand) (map[string]float64, error) {
		if trial == 3 {
			return nil, boom
		}
		return map[string]float64{"x": 1}, nil
	}); err == nil || !errors.Is(err, boom) {
		t.Errorf("trial error not propagated: %v", err)
	}
	if _, err := RunTrials(context.Background(), 2, 1, 1, func(context.Context, int, *xrand.Rand) (map[string]float64, error) {
		return map[string]float64{"bad": math.NaN()}, nil
	}); err == nil {
		t.Error("NaN metric accepted")
	}
}
