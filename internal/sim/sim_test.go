package sim

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/xrand"
)

func TestRunTrialsAggregates(t *testing.T) {
	res, err := RunTrials(context.Background(), 10, 4, 1, func(_ context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
		return map[string]float64{
			"trial": float64(trial),
			"const": 3,
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 10 {
		t.Fatalf("Trials = %d", res.Trials)
	}
	if m, ok := res.Mean("trial"); !ok || m != 4.5 {
		t.Errorf("mean trial = %v, %v", m, ok)
	}
	if m, ok := res.Mean("const"); !ok || m != 3 {
		t.Errorf("mean const = %v", m)
	}
	if _, ok := res.Mean("missing"); ok {
		t.Error("missing metric found")
	}
	names := res.MetricNames()
	if len(names) != 2 || names[0] != "const" || names[1] != "trial" {
		t.Errorf("names = %v", names)
	}
	// Samples preserved in trial order.
	if res.Samples["trial"][3] != 3 {
		t.Errorf("samples out of order: %v", res.Samples["trial"])
	}
}

func TestRunTrialsDeterministicAcrossWorkers(t *testing.T) {
	fn := func(_ context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
		return map[string]float64{"x": rng.Float64()}, nil
	}
	a, err := RunTrials(context.Background(), 20, 1, 99, fn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrials(context.Background(), 20, 8, 99, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples["x"] {
		if a.Samples["x"][i] != b.Samples["x"][i] {
			t.Fatalf("trial %d differs across worker counts", i)
		}
	}
}

func TestRunTrialsDistinctSeedsPerTrial(t *testing.T) {
	res, err := RunTrials(context.Background(), 50, 4, 7, func(_ context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
		return map[string]float64{"x": rng.Float64()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for _, v := range res.Samples["x"] {
		if seen[v] {
			t.Fatal("two trials drew identical values: RNGs correlated")
		}
		seen[v] = true
	}
}

func TestRunTrialsErrors(t *testing.T) {
	if _, err := RunTrials(context.Background(), 0, 1, 1, func(context.Context, int, *xrand.Rand) (map[string]float64, error) { return nil, nil }); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := RunTrials(context.Background(), 3, 1, 1, nil); err == nil {
		t.Error("nil fn accepted")
	}
	boom := errors.New("boom")
	if _, err := RunTrials(context.Background(), 5, 2, 1, func(_ context.Context, trial int, _ *xrand.Rand) (map[string]float64, error) {
		if trial == 3 {
			return nil, boom
		}
		return map[string]float64{"x": 1}, nil
	}); err == nil || !errors.Is(err, boom) {
		t.Errorf("trial error not propagated: %v", err)
	}
	if _, err := RunTrials(context.Background(), 2, 1, 1, func(context.Context, int, *xrand.Rand) (map[string]float64, error) {
		return map[string]float64{"bad": math.NaN()}, nil
	}); err == nil {
		t.Error("NaN metric accepted")
	}
}

// TestRunTrialsMidflightCancellation cancels the run from inside a trial
// body while workers are mid-flight, then checks the partial Result's
// integrity: Samples stay in ascending trial order with no holes from
// dropped trials, Trials matches the aggregated sample count, and the
// summaries agree. Run under -race this also exercises the outs-slice
// hand-off between workers and the aggregator.
func TestRunTrialsMidflightCancellation(t *testing.T) {
	const trials = 60
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed atomic.Int64
	res, err := RunTrials(ctx, trials, 4, 9, func(ctx context.Context, trial int, _ *xrand.Rand) (map[string]float64, error) {
		if completed.Add(1) == 12 {
			cancel()
		}
		if err := ctx.Err(); err != nil {
			return nil, err // cut short: RunTrials must drop, not fail
		}
		return map[string]float64{"trial": float64(trial)}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("nil partial result")
	}
	if res.Trials == 0 || res.Trials >= trials {
		t.Fatalf("Trials = %d, want a genuine partial run", res.Trials)
	}
	got := res.Samples["trial"]
	if len(got) != res.Trials {
		t.Fatalf("%d samples for %d trials", len(got), res.Trials)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("samples out of trial order at %d: %v", i, got)
		}
	}
	for _, v := range got {
		if v != math.Trunc(v) || v < 0 || v >= trials {
			t.Fatalf("sample %v is not a trial index", v)
		}
	}
	if s, ok := res.Summaries["trial"]; !ok || s.N != res.Trials {
		t.Fatalf("summary N = %d, want %d", s.N, res.Trials)
	}
}
