// Package sim runs repeated randomized trials in parallel and aggregates
// named metrics. Each trial receives its own deterministic RNG derived from
// the experiment seed and the trial index, so results are reproducible and
// independent of scheduling, worker count, and trial interleaving.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// TrialFunc runs one trial and returns named scalar observations. It must be
// safe to call concurrently with other trials. The context is the runner's:
// trial bodies that invoke solvers should pass it through so a cancelled
// run stops inside the trial, not just between trials.
type TrialFunc func(ctx context.Context, trial int, rng *xrand.Rand) (map[string]float64, error)

// Result aggregates per-metric summaries over all trials.
type Result struct {
	Trials    int
	Summaries map[string]stats.Summary
	// Samples holds the raw per-trial values in trial order.
	Samples map[string][]float64
}

// Mean returns the mean of a metric, or 0 with ok=false when absent.
func (r *Result) Mean(metric string) (float64, bool) {
	s, ok := r.Summaries[metric]
	if !ok {
		return 0, false
	}
	return s.Mean, true
}

// MetricNames returns the sorted metric names.
func (r *Result) MetricNames() []string {
	names := make([]string, 0, len(r.Summaries))
	for n := range r.Summaries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunTrials executes fn for trial = 0..trials−1, spreading trials over
// workers (<= 0 uses all CPUs). Trial t's RNG is seeded with
// seed ⊕ splitmix(t), so every trial is reproducible in isolation. The first
// trial error aborts the aggregation.
//
// Cancellation is anytime at trial granularity: once ctx is done no new
// trial starts, trials whose own body returned ctx's error are dropped
// rather than treated as failures, and the completed trials are aggregated
// into a partial Result returned together with ctx.Err(). A run cancelled
// before any trial completed returns an empty Result (Trials == 0) with
// ctx.Err(). A nil ctx behaves like context.Background().
func RunTrials(ctx context.Context, trials, workers int, seed uint64, fn TrialFunc) (*Result, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("sim: trials = %d must be positive", trials)
	}
	if fn == nil {
		return nil, errors.New("sim: nil trial function")
	}
	type out struct {
		ran     bool
		metrics map[string]float64
		err     error
	}
	outs := make([]out, trials)
	cancelErr := parallel.ForCtx(ctx, trials, workers, func(t int) {
		rng := xrand.New(seed ^ (0x9e3779b97f4a7c15 * (uint64(t) + 1)))
		m, err := fn(ctx, t, rng)
		outs[t] = out{ran: true, metrics: m, err: err}
	})
	samples := map[string][]float64{}
	completed := 0
	for t, o := range outs {
		if !o.ran {
			continue // never dispatched before cancellation
		}
		if o.err != nil {
			if cancelErr != nil && errors.Is(o.err, cancelErr) {
				continue // the trial itself was cut short; drop its partial data
			}
			return nil, fmt.Errorf("sim: trial %d: %w", t, o.err)
		}
		completed++
		for k, v := range o.metrics {
			samples[k] = append(samples[k], v)
		}
	}
	res := &Result{Trials: completed, Summaries: map[string]stats.Summary{}, Samples: samples}
	for k, vs := range samples {
		s, err := stats.Summarize(vs)
		if err != nil {
			return nil, fmt.Errorf("sim: metric %q: %w", k, err)
		}
		res.Summaries[k] = s
	}
	return res, cancelErr
}
