// Package kmeans implements weighted k-means (Lloyd's algorithm with
// k-means++ seeding) and its 1-norm sibling k-medians over interest points.
// Clustering is the natural non-submodular baseline for content placement:
// put the k contents at cluster centers of the user population and see how
// much the paper's reward-aware greedy algorithms gain over it (the
// "baselines" experiment).
//
// Formerly internal/cluster; renamed so the clustering baseline cannot be
// confused with internal/clusterd, the multi-node serving layer.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// Result is a clustering outcome.
type Result struct {
	Centers []vec.V
	// Assign maps each point index to its cluster.
	Assign []int
	// Cost is the weighted sum of point-to-center distances (the k-median
	// objective) or squared distances (k-means), per the norm used.
	Cost float64
	// Iters is the number of Lloyd iterations performed.
	Iters int
}

// Options tunes the clustering.
type Options struct {
	// MaxIters bounds Lloyd iterations (default 50).
	MaxIters int
	// Norm selects the geometry: L2 gives k-means (mean centers, squared
	// distance cost), L1 gives k-medians (per-dimension weighted medians,
	// absolute distance cost). Others fall back to mean centers with
	// absolute cost. Default L2.
	Norm norm.Norm
}

// KMeans clusters the weighted point set into k groups. It is deterministic
// for a fixed rng state.
func KMeans(set *pointset.Set, k int, opt Options, rng *xrand.Rand) (*Result, error) {
	if set == nil {
		return nil, errors.New("kmeans: nil point set")
	}
	if k <= 0 {
		return nil, fmt.Errorf("kmeans: k = %d must be positive", k)
	}
	if k > set.Len() {
		return nil, fmt.Errorf("kmeans: k = %d exceeds %d points", k, set.Len())
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	nm := opt.Norm
	if nm == nil {
		nm = norm.L2{}
	}
	maxIters := opt.MaxIters
	if maxIters <= 0 {
		maxIters = 50
	}
	l1Mode := nm.P() == 1

	centers := seedPlusPlus(set, k, nm, rng)
	assign := make([]int, set.Len())
	res := &Result{}
	for iter := 0; iter < maxIters; iter++ {
		changed := reassign(set, centers, nm, assign)
		recenter(set, centers, assign, l1Mode, rng)
		res.Iters = iter + 1
		if !changed && iter > 0 {
			break
		}
	}
	reassign(set, centers, nm, assign)
	res.Centers = centers
	res.Assign = assign
	res.Cost = cost(set, centers, assign, nm)
	return res, nil
}

// KCenter runs Gonzalez's greedy farthest-point algorithm: the first center
// is the point of maximum weight (deterministic anchor), and each subsequent
// center is the point farthest from all chosen centers. It 2-approximates
// the k-center objective (minimize the maximum distance to a center) and is
// the natural "spread out" placement baseline.
func KCenter(set *pointset.Set, k int, nm norm.Norm) ([]vec.V, error) {
	if set == nil {
		return nil, errors.New("kmeans: nil point set")
	}
	if k <= 0 || k > set.Len() {
		return nil, fmt.Errorf("kmeans: k = %d out of range [1, %d]", k, set.Len())
	}
	if nm == nil {
		nm = norm.L2{}
	}
	first := 0
	for i := 1; i < set.Len(); i++ {
		if set.Weight(i) > set.Weight(first) {
			first = i
		}
	}
	centers := []vec.V{set.Point(first).Clone()}
	minDist := make([]float64, set.Len())
	for i := range minDist {
		minDist[i] = nm.Dist(centers[0], set.Point(i))
	}
	for len(centers) < k {
		far := 0
		for i := 1; i < set.Len(); i++ {
			if minDist[i] > minDist[far] {
				far = i
			}
		}
		c := set.Point(far).Clone()
		centers = append(centers, c)
		for i := range minDist {
			if d := nm.Dist(c, set.Point(i)); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return centers, nil
}

// seedPlusPlus picks k initial centers with probability proportional to the
// weighted (squared for L2) distance to the nearest already-chosen center.
func seedPlusPlus(set *pointset.Set, k int, nm norm.Norm, rng *xrand.Rand) []vec.V {
	n := set.Len()
	centers := make([]vec.V, 0, k)
	first := rng.Intn(n)
	centers = append(centers, set.Point(first).Clone())
	d2 := make([]float64, n)
	for len(centers) < k {
		var sum float64
		for i := 0; i < n; i++ {
			best := math.Inf(1)
			for _, c := range centers {
				if d := nm.Dist(c, set.Point(i)); d < best {
					best = d
				}
			}
			if nm.P() == 2 {
				best *= best
			}
			d2[i] = set.Weight(i) * best
			sum += d2[i]
		}
		if sum == 0 {
			// All remaining mass sits on existing centers; duplicate one.
			centers = append(centers, centers[len(centers)%len(centers)].Clone())
			continue
		}
		u := rng.Float64() * sum
		pick := n - 1
		var acc float64
		for i := 0; i < n; i++ {
			acc += d2[i]
			if u < acc {
				pick = i
				break
			}
		}
		centers = append(centers, set.Point(pick).Clone())
	}
	return centers
}

// reassign maps each point to its nearest center (ties to the lower cluster
// index) and reports whether any assignment changed.
func reassign(set *pointset.Set, centers []vec.V, nm norm.Norm, assign []int) bool {
	changed := false
	for i := 0; i < set.Len(); i++ {
		best, bestD := 0, nm.Dist(centers[0], set.Point(i))
		for c := 1; c < len(centers); c++ {
			if d := nm.Dist(centers[c], set.Point(i)); d < bestD {
				best, bestD = c, d
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed = true
		}
	}
	return changed
}

// recenter updates each center to the weighted mean (or per-dimension
// weighted median in L1 mode) of its members; empty clusters are reseeded at
// the globally farthest point from any center.
func recenter(set *pointset.Set, centers []vec.V, assign []int, l1Mode bool, rng *xrand.Rand) {
	dim := set.Dim()
	for c := range centers {
		var members []int
		for i, a := range assign {
			if a == c {
				members = append(members, i)
			}
		}
		if len(members) == 0 {
			centers[c] = farthestPoint(set, centers).Clone()
			continue
		}
		nc := vec.New(dim)
		if l1Mode {
			for d := 0; d < dim; d++ {
				nc[d] = weightedMedian(set, members, d)
			}
		} else {
			var wsum float64
			for _, i := range members {
				w := set.Weight(i)
				wsum += w
				nc.AddInPlace(set.Point(i).Scale(w))
			}
			if wsum == 0 {
				// Zero-weight cluster: plain centroid.
				for _, i := range members {
					nc.AddInPlace(set.Point(i))
				}
				nc.ScaleInPlace(1 / float64(len(members)))
			} else {
				nc.ScaleInPlace(1 / wsum)
			}
		}
		centers[c] = nc
	}
}

// weightedMedian returns the weighted median of coordinate d over members.
func weightedMedian(set *pointset.Set, members []int, d int) float64 {
	type wx struct {
		x, w float64
	}
	vals := make([]wx, len(members))
	var total float64
	for j, i := range members {
		vals[j] = wx{x: set.Point(i)[d], w: set.Weight(i)}
		total += set.Weight(i)
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a].x < vals[b].x })
	if total == 0 {
		return vals[len(vals)/2].x
	}
	var acc float64
	for _, v := range vals {
		acc += v.w
		if acc >= total/2 {
			return v.x
		}
	}
	return vals[len(vals)-1].x
}

// farthestPoint returns the point maximizing distance to its nearest center.
func farthestPoint(set *pointset.Set, centers []vec.V) vec.V {
	l2 := norm.L2{}
	best, bestD := 0, -1.0
	for i := 0; i < set.Len(); i++ {
		near := math.Inf(1)
		for _, c := range centers {
			if d := l2.Dist(c, set.Point(i)); d < near {
				near = d
			}
		}
		if near > bestD {
			best, bestD = i, near
		}
	}
	return set.Point(best)
}

// cost evaluates the clustering objective for the given assignment.
func cost(set *pointset.Set, centers []vec.V, assign []int, nm norm.Norm) float64 {
	var total float64
	for i := 0; i < set.Len(); i++ {
		d := nm.Dist(centers[assign[i]], set.Point(i))
		if nm.P() == 2 {
			d *= d
		}
		total += set.Weight(i) * d
	}
	return total
}
