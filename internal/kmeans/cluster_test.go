package kmeans

import (
	"math"
	"testing"

	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func twoBlobs(t *testing.T) *pointset.Set {
	t.Helper()
	var pts []vec.V
	rng := xrand.New(5)
	for i := 0; i < 20; i++ {
		pts = append(pts, vec.Of(0.5+0.1*rng.NormFloat64(), 0.5+0.1*rng.NormFloat64()))
	}
	for i := 0; i < 20; i++ {
		pts = append(pts, vec.Of(3.5+0.1*rng.NormFloat64(), 3.5+0.1*rng.NormFloat64()))
	}
	set, err := pointset.UnitWeights(pts)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestKMeansValidation(t *testing.T) {
	set := twoBlobs(t)
	if _, err := KMeans(nil, 2, Options{}, xrand.New(1)); err == nil {
		t.Error("nil set accepted")
	}
	if _, err := KMeans(set, 0, Options{}, xrand.New(1)); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(set, set.Len()+1, Options{}, xrand.New(1)); err == nil {
		t.Error("k > n accepted")
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	set := twoBlobs(t)
	res, err := KMeans(set, 2, Options{}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 2 || len(res.Assign) != set.Len() {
		t.Fatalf("shape wrong: %d centers, %d assigns", len(res.Centers), len(res.Assign))
	}
	// One center near each blob.
	foundA, foundB := false, false
	for _, c := range res.Centers {
		if c.Dist2(vec.Of(0.5, 0.5)) < 0.3 {
			foundA = true
		}
		if c.Dist2(vec.Of(3.5, 3.5)) < 0.3 {
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Fatalf("centers missed blobs: %v", res.Centers)
	}
	// Cluster members agree with blob membership.
	if res.Assign[0] == res.Assign[20] {
		t.Error("points from different blobs share a cluster")
	}
	if res.Cost <= 0 {
		t.Errorf("cost = %v", res.Cost)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	set := twoBlobs(t)
	a, err := KMeans(set, 3, Options{}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(set, 3, Options{}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("same seed different cost: %v vs %v", a.Cost, b.Cost)
	}
	for i := range a.Centers {
		if !a.Centers[i].Equal(b.Centers[i]) {
			t.Fatal("same seed different centers")
		}
	}
}

func TestKMeansMoreClustersNeverWorse(t *testing.T) {
	set := twoBlobs(t)
	prev := math.Inf(1)
	for k := 1; k <= 5; k++ {
		// Best of a few seeds to smooth out k-means++ randomness.
		best := math.Inf(1)
		for s := uint64(0); s < 5; s++ {
			res, err := KMeans(set, k, Options{}, xrand.New(100+s))
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost < best {
				best = res.Cost
			}
		}
		if best > prev*1.05+1e-9 {
			t.Fatalf("k=%d cost %v worse than k-1 cost %v", k, best, prev)
		}
		prev = best
	}
}

func TestKMediansUsesMedian(t *testing.T) {
	// Outlier-heavy 1-D-like data: the L1 center must sit at the weighted
	// median, not be dragged to the mean by the outlier.
	pts := []vec.V{vec.Of(0, 0), vec.Of(0.1, 0), vec.Of(0.2, 0), vec.Of(10, 0)}
	set, err := pointset.UnitWeights(pts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMeans(set, 1, Options{Norm: norm.L1{}}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Centers[0][0] > 1 {
		t.Fatalf("L1 center dragged to %v; median expected near 0.1", res.Centers[0])
	}
	// The L2 mean sits at 2.575 — verify the contrast.
	resMean, err := KMeans(set, 1, Options{}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if resMean.Centers[0][0] < 1 {
		t.Fatalf("L2 center = %v; mean expected near 2.575", resMean.Centers[0])
	}
}

func TestKMeansWeightsMatter(t *testing.T) {
	// Two points, one heavy: the single k-means center must sit closer to
	// the heavy point.
	pts := []vec.V{vec.Of(0, 0), vec.Of(1, 0)}
	set, err := pointset.New(pts, []float64{9, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMeans(set, 1, Options{}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centers[0][0]-0.1) > 1e-9 {
		t.Fatalf("weighted mean = %v, want 0.1", res.Centers[0][0])
	}
}

func TestKCenter(t *testing.T) {
	set := twoBlobs(t)
	centers, err := KCenter(set, 2, norm.L2{})
	if err != nil {
		t.Fatal(err)
	}
	// The two centers must land in different blobs (farthest-point spread).
	d := centers[0].Dist2(centers[1])
	if d < 2 {
		t.Fatalf("k-center centers too close: %v apart", d)
	}
	if _, err := KCenter(nil, 2, norm.L2{}); err == nil {
		t.Error("nil set accepted")
	}
	if _, err := KCenter(set, 0, norm.L2{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KCenter(set, set.Len()+1, norm.L2{}); err == nil {
		t.Error("k>n accepted")
	}
	// k = n covers every point exactly.
	all, err := KCenter(set, set.Len(), norm.L2{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != set.Len() {
		t.Fatalf("k=n returned %d centers", len(all))
	}
}

func TestKCenterStartsAtHeaviest(t *testing.T) {
	pts := []vec.V{vec.Of(0, 0), vec.Of(1, 1), vec.Of(2, 2)}
	set, err := pointset.New(pts, []float64{1, 5, 1})
	if err != nil {
		t.Fatal(err)
	}
	centers, err := KCenter(set, 1, norm.L2{})
	if err != nil {
		t.Fatal(err)
	}
	if !centers[0].Equal(vec.Of(1, 1)) {
		t.Fatalf("first center = %v, want the heaviest point", centers[0])
	}
}

func TestKMeansEmptyClusterReseeds(t *testing.T) {
	// k = 3 over 2 coincident groups: at least one cluster starts or goes
	// empty during Lloyd iterations and must be reseeded at the farthest
	// point rather than crash or stay empty.
	pts := []vec.V{
		vec.Of(0, 0), vec.Of(0, 0), vec.Of(0, 0),
		vec.Of(4, 4), vec.Of(4, 4),
	}
	set, err := pointset.UnitWeights(pts)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 10; seed++ {
		res, err := KMeans(set, 3, Options{}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Centers) != 3 {
			t.Fatalf("seed %d: %d centers", seed, len(res.Centers))
		}
		// Cost must be essentially zero: centers can sit on both groups.
		if res.Cost > 1e-9 {
			t.Fatalf("seed %d: cost %v", seed, res.Cost)
		}
	}
}

func TestKMediansZeroWeightMembers(t *testing.T) {
	// Zero-weight points must not break the weighted median or mean.
	pts := []vec.V{vec.Of(0, 0), vec.Of(1, 0), vec.Of(2, 0)}
	set, err := pointset.New(pts, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Options{{}, {Norm: norm.L1{}}} {
		res, err := KMeans(set, 1, opt, xrand.New(1))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Centers) != 1 || !res.Centers[0].IsFinite() {
			t.Fatalf("degenerate weights broke clustering: %+v", res)
		}
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	set := twoBlobs(t)
	res, err := KMeans(set, set.Len(), Options{}, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 1e-6 {
		t.Fatalf("k=n cost = %v, want ~0", res.Cost)
	}
}
