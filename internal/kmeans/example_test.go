package kmeans_test

import (
	"fmt"

	"repro/internal/kmeans"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// Weighted k-means over two obvious groups: the centers land on the groups
// and the weighted mean respects user importance.
func ExampleKMeans() {
	users, _ := pointset.New(
		[]vec.V{vec.Of(0, 0), vec.Of(0.2, 0), vec.Of(3, 3), vec.Of(3.2, 3)},
		[]float64{3, 1, 1, 1})
	res, _ := kmeans.KMeans(users, 2, kmeans.Options{}, xrand.New(1))
	fmt.Println("clusters:", len(res.Centers))
	// The heavy user (weight 3 at the origin) pulls its cluster's center:
	// weighted mean of (0,0)×3 and (0.2,0)×1 is (0.05, 0).
	for _, c := range res.Centers {
		if c[0] < 1 {
			fmt.Printf("left center: %v\n", c)
		}
	}
	// Output:
	// clusters: 2
	// left center: (0.050, 0.000)
}

// Gonzalez's k-center spreads centers as far apart as possible, starting
// from the heaviest user.
func ExampleKCenter() {
	users, _ := pointset.UnitWeights([]vec.V{
		vec.Of(0, 0), vec.Of(1, 0), vec.Of(4, 4),
	})
	centers, _ := kmeans.KCenter(users, 2, norm.L2{})
	fmt.Println(centers[0], centers[1])
	// Output:
	// (0.000, 0.000) (4.000, 4.000)
}
