package load

import (
	"testing"
	"time"
)

// seq returns [1ms, 2ms, ..., n ms] — distinct values whose sorted rank
// equals their millisecond count, so expected quantiles read directly.
func seq(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i+1) * time.Millisecond
	}
	return out
}

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// TestQuantileNearestRank pins the nearest-rank definition: the p-quantile of
// n samples is the ceil(p·n)-th smallest. The rows marked with a comment are
// the ones the old truncating index int(p·(n−1)) got wrong.
func TestQuantileNearestRank(t *testing.T) {
	cases := []struct {
		name string
		n    int
		p    float64
		want time.Duration
	}{
		{"p50 odd", 5, 0.50, ms(3)},
		{"p50 even", 10, 0.50, ms(5)},
		{"p50 single", 1, 0.50, ms(1)},
		{"p90 of 10", 10, 0.90, ms(9)},
		{"p99 of 10", 10, 0.99, ms(10)}, // old formula: ms(9)
		{"p99 of 100", 100, 0.99, ms(99)},
		{"p99 of 150", 150, 0.99, ms(149)}, // old formula: ms(148)
		{"p99 of 200", 200, 0.99, ms(198)},
		{"p90 of 15", 15, 0.90, ms(14)}, // old formula: ms(13)
		{"p100 max", 10, 1.00, ms(10)},
		{"p0 min", 10, 0.0, ms(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := quantile(seq(tc.n), tc.p); got != tc.want {
				t.Fatalf("quantile(n=%d, p=%v) = %v, want %v", tc.n, tc.p, got, tc.want)
			}
		})
	}
}

// TestSummarizeQuantiles pins the full summary over an unsorted sample so a
// regression in either the sort or the index math is caught by exact values.
func TestSummarizeQuantiles(t *testing.T) {
	// 10 samples in scrambled order: 1..10 ms.
	lats := []time.Duration{ms(7), ms(1), ms(10), ms(4), ms(2), ms(9), ms(5), ms(3), ms(8), ms(6)}
	s := summarize(lats)
	if s.Count != 10 || s.Min != ms(1) || s.Max != ms(10) {
		t.Fatalf("count/min/max = %d/%v/%v, want 10/1ms/10ms", s.Count, s.Min, s.Max)
	}
	if want := ms(55) / 10; s.Mean != want {
		t.Fatalf("mean = %v, want %v", s.Mean, want)
	}
	if s.P50 != ms(5) {
		t.Fatalf("p50 = %v, want %v", s.P50, ms(5))
	}
	if s.P90 != ms(9) {
		t.Fatalf("p90 = %v, want %v", s.P90, ms(9))
	}
	// The tail sample: p99 over 10 samples must be the max, not the 9th.
	if s.P99 != ms(10) {
		t.Fatalf("p99 = %v, want %v (nearest rank must reach the max)", s.P99, ms(10))
	}
	if (summarize(nil) != LatSummary{}) {
		t.Fatalf("summarize(nil) = %+v, want zero", summarize(nil))
	}
}
