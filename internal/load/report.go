package load

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Report is the outcome of one load run: counts by outcome class, exact
// client-side latency quantiles per request kind, and the derived SLO
// numbers. Unlike the server's bounded histograms, the client keeps every
// success latency — a load run is finite, so exact quantiles are cheap and
// give the bound the serving histograms are tested against.
type Report struct {
	// Config echoes the run's effective (defaulted) configuration.
	Config Config `json:"config"`
	// Elapsed is the wall time from first arrival scheduled to last
	// response drained.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Sent counts requests actually fired (arrivals minus drops).
	Sent int64 `json:"sent"`
	// Counts maps kind → class → count.
	Counts map[string]map[string]int `json:"counts"`
	// Latency maps kind → summary over successful (ok or partial)
	// responses; the "all" key merges both kinds.
	Latency map[string]LatSummary `json:"latency"`
}

// LatSummary is an exact latency distribution over completed requests.
type LatSummary struct {
	Count int           `json:"count"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
}

func summarize(lats []time.Duration) LatSummary {
	if len(lats) == 0 {
		return LatSummary{}
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, l := range sorted {
		sum += l
	}
	return LatSummary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  sum / time.Duration(len(sorted)),
		P50:   quantile(sorted, 0.50),
		P90:   quantile(sorted, 0.90),
		P99:   quantile(sorted, 0.99),
	}
}

// quantile returns the nearest-rank p-quantile of a sorted slice: the
// smallest element such that at least p·n of the samples are <= it, i.e.
// sorted[ceil(p·n)−1]. The obvious index int(p·(n−1)) truncates toward zero
// and systematically understates upper tails — with n=10 it reports the 9th
// sample as p99 when the nearest-rank answer is the 10th (the max), which is
// exactly the sample an SLO check cares about.
func quantile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}

func buildReport(cfg Config, elapsed time.Duration, sent int64, rec *recorder) *Report {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	r := &Report{
		Config:  cfg,
		Elapsed: elapsed,
		Sent:    sent,
		Counts:  map[string]map[string]int{},
		Latency: map[string]LatSummary{},
	}
	var all []time.Duration
	for kind, byClass := range rec.counts {
		if len(byClass) == 0 {
			continue
		}
		cp := make(map[string]int, len(byClass))
		for class, n := range byClass {
			cp[class] = n
		}
		r.Counts[kind] = cp
	}
	for kind, lats := range rec.lats {
		if len(lats) == 0 {
			continue
		}
		r.Latency[kind] = summarize(lats)
		// The hit/miss sub-kinds re-file solve samples by serving path;
		// merging them too would double-count every solve in "all".
		if kind != KindSolveHit && kind != KindSolveMiss {
			all = append(all, lats...)
		}
	}
	if len(all) > 0 {
		r.Latency["all"] = summarize(all)
	}
	return r
}

// classTotal sums one outcome class across kinds.
func (r *Report) classTotal(class string) int {
	n := 0
	for _, byClass := range r.Counts {
		n += byClass[class]
	}
	return n
}

// Completed counts successful responses (ok + partial) across kinds.
func (r *Report) Completed() int {
	return r.classTotal(ClassOK) + r.classTotal(ClassPartial)
}

// Throughput is completed requests per second of elapsed wall time.
func (r *Report) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed()) / r.Elapsed.Seconds()
}

// Rate helpers, each a fraction of sent+dropped arrivals (0 when none).
func (r *Report) rate(class string) float64 {
	total := int(r.Sent) + r.classTotal(ClassDropped)
	if total == 0 {
		return 0
	}
	return float64(r.classTotal(class)) / float64(total)
}

func (r *Report) ErrorRate() float64   { return r.rate(ClassError) + r.rate(Class5xx) }
func (r *Report) RejectRate() float64  { return r.rate(Class429) + r.rate(Class503) }
func (r *Report) PartialRate() float64 { return r.rate(ClassPartial) }

// CacheHits and CacheMisses count completed solve responses by serving path
// (a response is a hit when the server answered it from its solve cache).
func (r *Report) CacheHits() int   { return r.Latency[KindSolveHit].Count }
func (r *Report) CacheMisses() int { return r.Latency[KindSolveMiss].Count }

// HitRate is the fraction of completed solves served from the cache.
func (r *Report) HitRate() float64 {
	total := r.CacheHits() + r.CacheMisses()
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits()) / float64(total)
}

// Print writes the human-readable SLO report.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "load: %.1f req/s offered for %v (%s)\n",
		r.Config.Rate, r.Config.Duration, strings.Join(r.Config.targets(), ", "))
	fmt.Fprintf(w, "  sent %d  completed %d  throughput %.1f req/s\n",
		r.Sent, r.Completed(), r.Throughput())
	kinds := make([]string, 0, len(r.Counts))
	for k := range r.Counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		byClass := r.Counts[kind]
		classes := make([]string, 0, len(byClass))
		for c := range byClass {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		fmt.Fprintf(w, "  %s:", kind)
		for _, c := range classes {
			fmt.Fprintf(w, " %s=%d", c, byClass[c])
		}
		fmt.Fprintln(w)
	}
	lkinds := make([]string, 0, len(r.Latency))
	for k := range r.Latency {
		lkinds = append(lkinds, k)
	}
	sort.Strings(lkinds)
	for _, kind := range lkinds {
		s := r.Latency[kind]
		fmt.Fprintf(w, "  latency %-6s p50=%v  p90=%v  p99=%v  max=%v  (n=%d)\n",
			kind, s.P50.Round(time.Microsecond), s.P90.Round(time.Microsecond),
			s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond), s.Count)
	}
	if hits, misses := r.CacheHits(), r.CacheMisses(); hits > 0 || misses > 0 {
		fmt.Fprintf(w, "  cache: hits=%d  misses=%d  hit rate=%.1f%%\n",
			hits, misses, 100*r.HitRate())
	}
	fmt.Fprintf(w, "  rates: error=%.2f%%  reject=%.2f%%  partial=%.2f%%\n",
		100*r.ErrorRate(), 100*r.RejectRate(), 100*r.PartialRate())
}

// CheckSLO verifies the run against simple objectives: maxP99 bounds the
// merged p99 latency (0 = unchecked), max5xx caps server errors (pass a
// negative value to skip, 0 to require none), and at least one request must
// have completed. Returns nil when all hold.
func (r *Report) CheckSLO(maxP99 time.Duration, max5xx int) error {
	if r.Completed() == 0 {
		return fmt.Errorf("slo: no requests completed (sent %d)", r.Sent)
	}
	if n := r.classTotal(Class5xx); max5xx >= 0 && n > max5xx {
		return fmt.Errorf("slo: %d server errors (5xx), want <= %d", n, max5xx)
	}
	if p99 := r.Latency["all"].P99; maxP99 > 0 && p99 > maxP99 {
		return fmt.Errorf("slo: p99 latency %v, want <= %v", p99, maxP99)
	}
	return nil
}

// Bench record names. They keep the "Benchmark" prefix because that is
// what cmd/benchjson stores for `go test -bench` lines (Parse strips only
// the -procs suffix), so cdload baselines and piped bench text key
// identically in `benchjson -diff`.
const (
	BenchSolve     = "BenchmarkLoadServeSolve"
	BenchChurn     = "BenchmarkLoadServeChurn"
	BenchSolveHit  = "BenchmarkLoadServeSolveHit"
	BenchSolveMiss = "BenchmarkLoadServeSolveMiss"
	BenchAll       = "BenchmarkLoadServeAll"
)

// benchRecord mirrors cmd/benchjson's Result shape.
type benchRecord struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchDoc mirrors cmd/benchjson's Baseline shape, so a cdload -bench-out
// file is directly usable as a `benchjson -diff` baseline.
type benchDoc struct {
	Env        map[string]string `json:"env"`
	Benchmarks []benchRecord     `json:"benchmarks"`
}

func benchName(kind string) string {
	switch kind {
	case KindSolve:
		return BenchSolve
	case KindChurn:
		return BenchChurn
	case KindSolveHit:
		return BenchSolveHit
	case KindSolveMiss:
		return BenchSolveMiss
	default:
		return BenchAll
	}
}

func (r *Report) benchRecords() []benchRecord {
	kinds := make([]string, 0, len(r.Latency))
	for k := range r.Latency {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	recs := make([]benchRecord, 0, len(kinds))
	for _, kind := range kinds {
		s := r.Latency[kind]
		if s.Count == 0 {
			continue
		}
		// Pkg stays empty so diff keys match go-bench text lines, which
		// carry no package either.
		recs = append(recs, benchRecord{
			Name:       benchName(kind),
			Procs:      runtime.GOMAXPROCS(0),
			Iterations: s.Count,
			Metrics: map[string]float64{
				"ns/op":  float64(s.Mean),
				"p50-ns": float64(s.P50),
				"p90-ns": float64(s.P90),
				"p99-ns": float64(s.P99),
				"rps":    r.Throughput(),
			},
		})
	}
	return recs
}

// WriteBenchJSON writes benchjson-baseline-shaped records: per-kind mean
// latency as ns/op plus p50/p90/p99 and throughput metrics.
func (r *Report) WriteBenchJSON(w io.Writer) error {
	env := map[string]string{
		"go":     runtime.Version(),
		"goos":   runtime.GOOS,
		"goarch": runtime.GOARCH,
		"source": "cdload",
	}
	if host, err := os.Hostname(); err == nil {
		env["host"] = host
	}
	doc := benchDoc{Env: env, Benchmarks: r.benchRecords()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteBenchText writes go-bench-format lines (parseable by `go tool` style
// consumers and by cmd/benchjson's Parse), one per request kind.
func (r *Report) WriteBenchText(w io.Writer) {
	for _, rec := range r.benchRecords() {
		fmt.Fprintf(w, "%s-%d\t%d\t%.0f ns/op\t%.0f p50-ns\t%.0f p90-ns\t%.0f p99-ns\t%.2f rps\n",
			rec.Name, rec.Procs, rec.Iterations,
			rec.Metrics["ns/op"], rec.Metrics["p50-ns"], rec.Metrics["p90-ns"],
			rec.Metrics["p99-ns"], rec.Metrics["rps"])
	}
}
