package load_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/load"
	"repro/internal/serve"
)

func newTarget(t testing.TB) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func runShort(t *testing.T, cfg load.Config) *load.Report {
	t.Helper()
	rep, err := load.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

// TestRunAgainstServer drives a real in-process server with a mixed
// solve/churn load and checks the SLO invariants the harness reports on.
func TestRunAgainstServer(t *testing.T) {
	ts := newTarget(t)
	rep := runShort(t, load.Config{
		BaseURL:       ts.URL,
		Rate:          200,
		Duration:      300 * time.Millisecond,
		ChurnFraction: 0.3,
		N:             40,
		Periods:       2,
		Seed:          7,
	})
	if rep.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if rep.Completed() == 0 {
		t.Fatalf("no requests completed: counts %v", rep.Counts)
	}
	for kind, byClass := range rep.Counts {
		for _, bad := range []string{load.Class5xx, load.ClassError, load.Class4xx} {
			if n := byClass[bad]; n > 0 {
				t.Errorf("kind %s: %d %s outcomes", kind, n, bad)
			}
		}
	}
	all, ok := rep.Latency["all"]
	if !ok || all.Count != rep.Completed() {
		t.Fatalf("merged latency count = %d, want %d", all.Count, rep.Completed())
	}
	if !(all.Min <= all.P50 && all.P50 <= all.P90 && all.P90 <= all.P99 && all.P99 <= all.Max) {
		t.Errorf("quantiles out of order: %+v", all)
	}
	if err := rep.CheckSLO(0, 0); err != nil {
		t.Errorf("CheckSLO: %v", err)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	out := buf.String()
	for _, want := range []string{"throughput", "latency all", "rates:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}

// TestRunDupMode drives a caching server with -dup-style duplicate replays
// and checks the report splits solve latencies into hit and miss paths with
// a meaningful hit rate.
func TestRunDupMode(t *testing.T) {
	ts := newTarget(t)
	rep := runShort(t, load.Config{
		BaseURL:     ts.URL,
		Rate:        150,
		Duration:    400 * time.Millisecond,
		DupFraction: 0.5,
		N:           40,
		Seed:        9,
	})
	hits, misses := rep.CacheHits(), rep.CacheMisses()
	if misses == 0 {
		t.Fatal("dup run recorded no cache misses (fresh instances must miss)")
	}
	if hits == 0 {
		t.Fatalf("dup run recorded no cache hits (counts %v, latency %v)", rep.Counts, rep.Latency)
	}
	if hits+misses != rep.Latency[load.KindSolve].Count {
		t.Fatalf("hit %d + miss %d != solve %d: sub-kinds must partition solves",
			hits, misses, rep.Latency[load.KindSolve].Count)
	}
	if hr := rep.HitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("hit rate = %v, want strictly between 0 and 1", hr)
	}
	// Solve-only samples enter "all" exactly once, not re-counted per
	// sub-kind.
	if all := rep.Latency["all"].Count; all != rep.Completed() {
		t.Fatalf("merged latency count = %d, want %d", all, rep.Completed())
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "hit rate") {
		t.Errorf("Print output missing the cache line:\n%s", buf.String())
	}
}

// TestDupModeValidation rejects out-of-range dup fractions.
func TestDupModeValidation(t *testing.T) {
	for _, frac := range []float64{-0.1, 1.5} {
		cfg := load.Config{BaseURL: "http://x", Rate: 10, Duration: time.Second, DupFraction: frac}
		if _, err := load.Run(context.Background(), cfg); err == nil {
			t.Errorf("dup fraction %v: expected a validation error", frac)
		}
	}
}

// TestRunValidation checks each rejected configuration shape.
func TestRunValidation(t *testing.T) {
	bad := []load.Config{
		{Rate: 10, Duration: time.Second},            // no URL
		{BaseURL: "http://x", Duration: time.Second}, // no rate
		{BaseURL: "http://x", Rate: 10},              // no duration
		{BaseURL: "http://x", Rate: 10, Duration: 1, ChurnFraction: 1.5},
	}
	for i, cfg := range bad {
		if _, err := load.Run(context.Background(), cfg); err == nil {
			t.Errorf("config %d: expected a validation error", i)
		}
	}
}

// TestRunContextCancel checks cancellation stops scheduling promptly and
// still returns a report for what ran.
func TestRunContextCancel(t *testing.T) {
	ts := newTarget(t)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := load.Run(ctx, load.Config{
		BaseURL:  ts.URL,
		Rate:     50,
		Duration: 30 * time.Second, // cancelled long before this
		N:        20,
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if rep == nil {
		t.Fatal("nil report after cancel")
	}
}

// TestBenchOutputs checks the benchjson document parses into the baseline
// shape cmd/benchjson -diff consumes, and the text lines look like go-bench
// output (Benchmark prefix, >= 4 tab-separated fields, value/unit pairs).
func TestBenchOutputs(t *testing.T) {
	ts := newTarget(t)
	rep := runShort(t, load.Config{
		BaseURL:  ts.URL,
		Rate:     150,
		Duration: 200 * time.Millisecond,
		N:        30,
		Seed:     3,
	})

	var buf bytes.Buffer
	if err := rep.WriteBenchJSON(&buf); err != nil {
		t.Fatalf("WriteBenchJSON: %v", err)
	}
	var doc struct {
		Env        map[string]string `json:"env"`
		Benchmarks []struct {
			Name       string             `json:"name"`
			Iterations int                `json:"iterations"`
			Metrics    map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("bench JSON does not parse: %v", err)
	}
	if doc.Env["source"] != "cdload" {
		t.Errorf("env.source = %q, want cdload", doc.Env["source"])
	}
	if len(doc.Benchmarks) == 0 {
		t.Fatal("no benchmark records")
	}
	seen := map[string]bool{}
	for _, b := range doc.Benchmarks {
		seen[b.Name] = true
		if b.Iterations <= 0 {
			t.Errorf("%s: iterations = %d", b.Name, b.Iterations)
		}
		if b.Metrics["ns/op"] <= 0 {
			t.Errorf("%s: ns/op = %v", b.Name, b.Metrics["ns/op"])
		}
		if b.Metrics["p99-ns"] < b.Metrics["p50-ns"] {
			t.Errorf("%s: p99 %v < p50 %v", b.Name, b.Metrics["p99-ns"], b.Metrics["p50-ns"])
		}
	}
	if !seen[load.BenchSolve] || !seen[load.BenchAll] {
		t.Errorf("missing solve/all records: %v", seen)
	}

	buf.Reset()
	rep.WriteBenchText(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no bench text lines")
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "Benchmark") {
			t.Errorf("bench line lacks prefix: %q", line)
		}
		if fields := strings.Fields(line); len(fields) < 4 || len(fields)%2 != 0 {
			t.Errorf("bench line not value/unit pairs: %q", line)
		}
	}
}

// TestCheckSLOFailures exercises each SLO violation branch.
func TestCheckSLOFailures(t *testing.T) {
	ts := newTarget(t)
	rep := runShort(t, load.Config{
		BaseURL:  ts.URL,
		Rate:     100,
		Duration: 200 * time.Millisecond,
		N:        30,
		Seed:     5,
	})
	if err := rep.CheckSLO(time.Nanosecond, -1); err == nil {
		t.Error("expected a p99 SLO failure at 1ns")
	}
	if err := rep.CheckSLO(time.Hour, -1); err != nil {
		t.Errorf("p99 within an hour should pass: %v", err)
	}
	empty := &load.Report{}
	if err := empty.CheckSLO(0, -1); err == nil {
		t.Error("empty report should fail the completed-requests check")
	}
}

// Serving-side benchmarks: in-process client → httptest server → real
// solver, one request per iteration. These feed BENCH_baseline.json so the
// serving path has a tracked latency trajectory alongside the kernels.
// Solve and churn run with the cache disabled so they keep measuring the
// full solve path; the Hit variant runs the default caching config, where
// every iteration after the first is a cache hit.
func benchServe(b *testing.B, cfg serve.Config, path string, body []byte) {
	b.Helper()
	ts := httptest.NewServer(serve.New(cfg).Handler())
	defer ts.Close()
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

func requestBody(b *testing.B, kind string) (string, []byte) {
	b.Helper()
	path, body, err := load.Body(load.Config{
		BaseURL: "http://bench", Rate: 1, Duration: time.Second,
		N: 100, Periods: 2, Seed: 11,
	}, kind)
	if err != nil {
		b.Fatalf("Body: %v", err)
	}
	return path, body
}

func BenchmarkServeSolve(b *testing.B) {
	path, body := requestBody(b, load.KindSolve)
	benchServe(b, serve.Config{CacheBytes: -1}, path, body)
}

func BenchmarkServeSolveHit(b *testing.B) {
	path, body := requestBody(b, load.KindSolve)
	benchServe(b, serve.Config{}, path, body)
}

func BenchmarkServeChurn(b *testing.B) {
	path, body := requestBody(b, load.KindChurn)
	benchServe(b, serve.Config{CacheBytes: -1}, path, body)
}
