// Package load is the serving stack's SLO harness: an open-loop load
// generator that drives a cdserved instance over HTTP with Poisson arrivals
// and reports client-side latency distributions.
//
// Open-loop means arrivals are scheduled by the clock, not by responses: a
// slow server does not slow the generator down, so saturation shows up as
// rising latency, 429s, and drops — the failure modes a closed-loop client
// hides (coordinated omission). The arrival process is Poisson at the
// configured rate, each arrival is independently a solve or a churn request
// per the configured mix, and every request body is drawn from a small pool
// of deterministically generated instances (the Seed fixes both the pool
// and the arrival randomness).
//
// The result is a Report: counts by outcome class, exact client-side
// latency quantiles per request kind, and benchjson-compatible records so
// serving-side numbers enter the same bench trajectory the solver kernels
// use (cmd/benchjson -diff consumes them directly).
package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	v1 "repro/api/v1"
	"repro/internal/pointset"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// Defaults for Config's zero values.
const (
	DefaultTimeout     = 30 * time.Second
	DefaultMaxInFlight = 1024
	DefaultBodies      = 4
)

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the target server's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// BaseURLs, when non-empty, spreads arrivals uniformly (by the run's
	// deterministic randomness) across several nodes — the cluster-aware
	// target list, e.g. every node of a cdserved cluster. BaseURL is
	// folded in as one more target when it is set too.
	BaseURLs []string
	// Rate is the offered load in requests per second (Poisson arrivals).
	Rate float64
	// Duration is how long arrivals are generated; in-flight requests are
	// then drained (bounded by Timeout), not abandoned.
	Duration time.Duration
	// ChurnFraction is the probability an arrival is a /v1/churn request
	// (the rest are /v1/solve). 0 is all-solve, 1 all-churn.
	ChurnFraction float64
	// N and Dim size the generated instances (defaults 200 points in 2-D).
	N, Dim int
	// K is the broadcast count per request (default 4).
	K int
	// Radius is the coverage radius (default 1.0 on the paper's 4×4 box).
	Radius float64
	// Periods is the churn-loop length for churn requests (default 3).
	Periods int
	// ArrivalRate / DepartRate drive churn-request population dynamics
	// (defaults 4 and 2 users per period).
	ArrivalRate, DepartRate float64
	// Solver names the registry algorithm ("" = server default).
	Solver string
	// DeadlineMS is the per-request deadline forwarded to the server; 0
	// sends none.
	DeadlineMS int64
	// DupFraction is the probability a solve arrival replays a previously
	// sent solve body — a guaranteed byte-identical duplicate, so a caching
	// server answers it from the solve cache (or collapses it onto an
	// in-flight identical solve). When positive, non-duplicate solve
	// arrivals each get a freshly generated unique instance (a guaranteed
	// cache miss) instead of drawing from the small shared pool, so the
	// hit/miss split in the report is controlled by this knob alone.
	// 0 (the default) keeps the pooled-body behavior.
	DupFraction float64
	// Seed fixes the instance pool and all arrival randomness.
	Seed uint64
	// Timeout bounds each HTTP request client-side; 0 = DefaultTimeout.
	Timeout time.Duration
	// MaxInFlight caps concurrently outstanding requests; arrivals past it
	// are recorded as dropped instead of growing goroutines without bound.
	// 0 = DefaultMaxInFlight.
	MaxInFlight int
	// Bodies is the size of the pre-generated request-body pool; 0 =
	// DefaultBodies.
	Bodies int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.N <= 0 {
		out.N = 200
	}
	if out.Dim <= 0 {
		out.Dim = 2
	}
	if out.K <= 0 {
		out.K = 4
	}
	if out.Radius <= 0 {
		out.Radius = 1.0
	}
	if out.Periods <= 0 {
		out.Periods = 3
	}
	if out.ArrivalRate <= 0 {
		out.ArrivalRate = 4
	}
	if out.DepartRate <= 0 {
		out.DepartRate = 2
	}
	if out.Timeout <= 0 {
		out.Timeout = DefaultTimeout
	}
	if out.MaxInFlight <= 0 {
		out.MaxInFlight = DefaultMaxInFlight
	}
	if out.Bodies <= 0 {
		out.Bodies = DefaultBodies
	}
	return out
}

// targets is the effective target list: BaseURL plus BaseURLs, blanks
// dropped, order preserved.
func (c Config) targets() []string {
	var out []string
	for _, u := range append([]string{c.BaseURL}, c.BaseURLs...) {
		if u != "" {
			out = append(out, u)
		}
	}
	return out
}

func (c Config) validate() error {
	if len(c.targets()) == 0 {
		return errors.New("load: no target URL")
	}
	if !(c.Rate > 0) || math.IsInf(c.Rate, 0) {
		return fmt.Errorf("load: rate = %v, want positive and finite", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("load: duration = %v, want positive", c.Duration)
	}
	if c.ChurnFraction < 0 || c.ChurnFraction > 1 || math.IsNaN(c.ChurnFraction) {
		return fmt.Errorf("load: churn fraction = %v, want in [0, 1]", c.ChurnFraction)
	}
	if c.DupFraction < 0 || c.DupFraction > 1 || math.IsNaN(c.DupFraction) {
		return fmt.Errorf("load: dup fraction = %v, want in [0, 1]", c.DupFraction)
	}
	return nil
}

// Request kinds. KindSolveHit and KindSolveMiss are latency sub-kinds of
// solve: every 200 solve response files under KindSolve and additionally
// under hit or miss per its "cached" field, so a -dup run reports the two
// serving paths' quantiles separately.
const (
	KindSolve     = "solve"
	KindChurn     = "churn"
	KindSolveHit  = "hit"
	KindSolveMiss = "miss"
)

// Outcome classes a completed request is filed under.
const (
	ClassOK      = "ok"      // 200, complete result
	ClassPartial = "partial" // 200, deadline/drain-bounded prefix
	Class429     = "429"     // admission queue full
	Class503     = "503"     // draining or deadline-while-queued
	Class4xx     = "4xx"     // any other client error
	Class5xx     = "5xx"     // server error — an SLO violation
	ClassError   = "error"   // transport error or unparseable response
	ClassDropped = "dropped" // never sent: MaxInFlight exceeded
)

// bodyPool holds the pre-marshalled request bodies for one kind.
type bodyPool struct {
	kind   string
	path   string
	bodies [][]byte
}

func (p *bodyPool) pick(rng *xrand.Rand) []byte {
	return p.bodies[rng.Intn(len(p.bodies))]
}

// instanceBox is the generation domain: the paper's [0,4]^dim box.
func instanceBox(dim int) pointset.Box {
	lo, hi := make(vec.V, dim), make(vec.V, dim)
	for d := range hi {
		hi[d] = 4
	}
	return pointset.Box{Lo: lo, Hi: hi}
}

// solveBody generates one freshly sampled solve request body.
func solveBody(cfg Config, box pointset.Box, rng *xrand.Rand) ([]byte, error) {
	set, err := pointset.GenUniform(cfg.N, box, pointset.UnitWeight, rng)
	if err != nil {
		return nil, err
	}
	return json.Marshal(v1.SolveRequest{
		Instance: set, Radius: cfg.Radius, K: cfg.K, Solver: cfg.Solver,
		DeadlineMS: cfg.DeadlineMS,
	})
}

// dupHistoryCap bounds the replayable-body history in dup mode; a full
// history replaces a random slot, so replays stay spread over recent work.
const dupHistoryCap = 512

// solveSource picks the next solve request body. In pooled mode (DupFraction
// 0) it draws from the small pre-generated pool. In dup mode a duplicate
// arrival replays a random previously sent body byte-for-byte, and every
// other arrival generates a fresh unique instance — a guaranteed cache miss
// — and records it for future replay.
type solveSource struct {
	cfg     Config
	box     pointset.Box
	pool    *bodyPool
	history [][]byte
}

func (s *solveSource) next(rng *xrand.Rand) ([]byte, error) {
	if s.cfg.DupFraction <= 0 {
		return s.pool.pick(rng), nil
	}
	if len(s.history) > 0 && rng.Float64() < s.cfg.DupFraction {
		return s.history[rng.Intn(len(s.history))], nil
	}
	body, err := solveBody(s.cfg, s.box, rng)
	if err != nil {
		return nil, err
	}
	if len(s.history) < dupHistoryCap {
		s.history = append(s.history, body)
	} else {
		s.history[rng.Intn(len(s.history))] = body
	}
	return body, nil
}

// genBodies builds the deterministic request-body pool. Solve and churn
// requests reuse the serving wire schema types, so the harness can never
// drift from the API it measures.
func genBodies(cfg Config, rng *xrand.Rand) (solve, churn *bodyPool, err error) {
	box := instanceBox(cfg.Dim)
	solve = &bodyPool{kind: KindSolve, path: "/v1/solve"}
	churn = &bodyPool{kind: KindChurn, path: "/v1/churn"}
	for i := 0; i < cfg.Bodies; i++ {
		set, err := pointset.GenUniform(cfg.N, box, pointset.UnitWeight, rng)
		if err != nil {
			return nil, nil, err
		}
		sb, err := json.Marshal(v1.SolveRequest{
			Instance: set, Radius: cfg.Radius, K: cfg.K, Solver: cfg.Solver,
			DeadlineMS: cfg.DeadlineMS,
		})
		if err != nil {
			return nil, nil, err
		}
		solve.bodies = append(solve.bodies, sb)
		cb, err := json.Marshal(v1.ChurnRequest{
			Instance: set, Radius: cfg.Radius, K: cfg.K, Solver: cfg.Solver,
			Periods: cfg.Periods, ArrivalRate: cfg.ArrivalRate,
			DepartRate: cfg.DepartRate, Seed: cfg.Seed + uint64(i),
			WarmStart: true, DeadlineMS: cfg.DeadlineMS,
		})
		if err != nil {
			return nil, nil, err
		}
		churn.bodies = append(churn.bodies, cb)
	}
	return solve, churn, nil
}

// Body returns the route path and one deterministic request body for the
// given kind (KindSolve or KindChurn) under cfg's instance parameters —
// for benchmarks and smoke checks that want a single representative
// request without running the generator loop.
func Body(cfg Config, kind string) (path string, body []byte, err error) {
	cfg = cfg.withDefaults()
	cfg.Bodies = 1
	solve, churn, err := genBodies(cfg, xrand.New(cfg.Seed))
	if err != nil {
		return "", nil, err
	}
	switch kind {
	case KindSolve:
		return solve.path, solve.bodies[0], nil
	case KindChurn:
		return churn.path, churn.bodies[0], nil
	default:
		return "", nil, fmt.Errorf("load: unknown request kind %q", kind)
	}
}

// recorder accumulates outcomes; one mutex is plenty at harness rates.
type recorder struct {
	mu     sync.Mutex
	counts map[string]map[string]int // kind → class → count
	lats   map[string][]time.Duration
}

func newRecorder() *recorder {
	return &recorder{
		counts: map[string]map[string]int{KindSolve: {}, KindChurn: {}},
		lats:   map[string][]time.Duration{},
	}
}

func (r *recorder) add(kind, class string, lat time.Duration, cached bool) {
	r.mu.Lock()
	r.counts[kind][class]++
	if class == ClassOK || class == ClassPartial {
		r.lats[kind] = append(r.lats[kind], lat)
		if kind == KindSolve {
			// The hit/miss sub-kinds split the same samples by serving
			// path; buildReport keeps them out of the "all" merge.
			sub := KindSolveMiss
			if cached {
				sub = KindSolveHit
			}
			r.lats[sub] = append(r.lats[sub], lat)
		}
	}
	r.mu.Unlock()
}

// Run drives the target for cfg.Duration and returns the report. ctx
// cancellation stops scheduling new arrivals early; what is already in
// flight still completes and is counted.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rng := xrand.New(cfg.Seed)
	targets := cfg.targets()
	solvePool, churnPool, err := genBodies(cfg, rng)
	if err != nil {
		return nil, err
	}
	solveSrc := &solveSource{cfg: cfg, box: instanceBox(cfg.Dim), pool: solvePool}

	client := &http.Client{Timeout: cfg.Timeout}
	rec := newRecorder()
	var wg sync.WaitGroup
	var inFlight int64
	var mu sync.Mutex // guards inFlight
	var sent, seq int64

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	timer := time.NewTimer(0)
	<-timer.C
	defer timer.Stop()

	for {
		gap := time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		next := time.Now().Add(gap)
		if next.After(deadline) {
			break
		}
		timer.Reset(time.Until(next))
		select {
		case <-ctx.Done():
			timer.Stop()
			goto done
		case <-timer.C:
		}

		pool := solvePool
		if rng.Float64() < cfg.ChurnFraction {
			pool = churnPool
		}
		mu.Lock()
		over := inFlight >= int64(cfg.MaxInFlight)
		if !over {
			inFlight++
		}
		mu.Unlock()
		if over {
			rec.add(pool.kind, ClassDropped, 0, false)
			continue
		}
		sent++
		seq++
		id := "load-" + strconv.FormatInt(seq, 10)
		var body []byte
		if pool.kind == KindSolve {
			if body, err = solveSrc.next(rng); err != nil {
				return nil, err
			}
		} else {
			body = pool.pick(rng)
		}
		base := targets[0]
		if len(targets) > 1 {
			base = targets[rng.Intn(len(targets))]
		}
		wg.Add(1)
		go func(base string, pool *bodyPool, body []byte, id string) {
			defer wg.Done()
			class, cached, lat := fire(client, base, pool, body, id)
			rec.add(pool.kind, class, lat, cached)
			mu.Lock()
			inFlight--
			mu.Unlock()
		}(base, pool, body, id)
	}
done:
	wg.Wait()
	elapsed := time.Since(start)
	return buildReport(cfg, elapsed, sent, rec), nil
}

// fire sends one request and classifies the outcome. Latency is measured
// from just before the request is written to the full response body having
// been read — for churn streams that includes every period line, which is
// what a real client pays. cached reports whether a 200 solve response was
// served from the target's solve cache.
func fire(client *http.Client, base string, pool *bodyPool, body []byte, id string) (string, bool, time.Duration) {
	req, err := http.NewRequest(http.MethodPost, base+pool.path, bytes.NewReader(body))
	if err != nil {
		return ClassError, false, 0
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", id)
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return ClassError, false, time.Since(t0)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		partial, cached, err := readResult(pool.kind, resp.Body)
		lat := time.Since(t0)
		if err != nil {
			return ClassError, false, lat
		}
		if partial {
			return ClassPartial, cached, lat
		}
		return ClassOK, cached, lat
	case resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return Class429, false, time.Since(t0)
	case resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return Class503, false, time.Since(t0)
	case resp.StatusCode >= 500:
		io.Copy(io.Discard, resp.Body)
		return Class5xx, false, time.Since(t0)
	default:
		io.Copy(io.Discard, resp.Body)
		return Class4xx, false, time.Since(t0)
	}
}

// readResult consumes a 200 response body and reports whether the result
// was partial (deadline- or drain-bounded) and, for solves, whether it was
// served from the solve cache.
func readResult(kind string, body io.Reader) (partial, cached bool, err error) {
	if kind == KindSolve {
		var res v1.SolveResponse
		if err := json.NewDecoder(body).Decode(&res); err != nil {
			return false, false, err
		}
		io.Copy(io.Discard, body)
		return res.Partial, res.Cached, nil
	}
	// Churn: an ndjson stream; the summary (or error) line decides.
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	sawSummary := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var l v1.ChurnLine
		if err := json.Unmarshal(line, &l); err != nil {
			return false, false, err
		}
		if l.Error != nil {
			return false, false, fmt.Errorf("load: in-band churn error %q", l.Error.Code)
		}
		if l.Summary != nil {
			sawSummary = true
			partial = l.Summary.Partial
		}
	}
	if err := sc.Err(); err != nil {
		return false, false, err
	}
	if !sawSummary {
		return false, false, errors.New("load: churn stream ended without a summary line")
	}
	return partial, false, nil
}
