package parallel

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
)

// TestDegenerateArgs: every primitive must treat n <= 0 as a no-op and
// workers <= 0 as "pick a sane default" — no goroutine leaks, no panics, no
// spurious visits.
func TestDegenerateArgs(t *testing.T) {
	cases := []struct {
		name       string
		n, workers int
		wantVisits int64
	}{
		{"zero n", 0, 4, 0},
		{"negative n", -3, 4, 0},
		{"zero workers", 5, 0, 5},
		{"negative workers", 5, -2, 5},
		{"both degenerate", -1, -1, 0},
		{"workers exceed n", 3, 64, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var visits int64
			For(tc.n, tc.workers, func(i int) { atomic.AddInt64(&visits, 1) })
			if visits != tc.wantVisits {
				t.Errorf("For visited %d indices, want %d", visits, tc.wantVisits)
			}

			visits = 0
			if err := ForCtx(context.Background(), tc.n, tc.workers, func(i int) { atomic.AddInt64(&visits, 1) }); err != nil {
				t.Errorf("ForCtx = %v", err)
			}
			if visits != tc.wantVisits {
				t.Errorf("ForCtx visited %d indices, want %d", visits, tc.wantVisits)
			}

			visits = 0
			ForRanges(tc.n, tc.workers, func(lo, hi int) { atomic.AddInt64(&visits, int64(hi-lo)) })
			if visits != tc.wantVisits {
				t.Errorf("ForRanges covered %d indices, want %d", visits, tc.wantVisits)
			}

			visits = 0
			if err := ForRangesCtx(nil, tc.n, tc.workers, func(lo, hi int) { atomic.AddInt64(&visits, int64(hi-lo)) }); err != nil {
				t.Errorf("ForRangesCtx = %v", err)
			}
			if visits != tc.wantVisits {
				t.Errorf("ForRangesCtx covered %d indices, want %d", visits, tc.wantVisits)
			}

			idx, val := MapReduce(tc.n, tc.workers, func(i int) float64 { return float64(i) },
				func(a, b float64) bool { return a > b })
			if tc.n <= 0 {
				if idx != -1 || !math.IsNaN(val) {
					t.Errorf("MapReduce on empty input = (%d, %v), want (-1, NaN)", idx, val)
				}
			} else if idx != tc.n-1 || val != float64(tc.n-1) {
				t.Errorf("MapReduce = (%d, %v), want (%d, %v)", idx, val, tc.n-1, float64(tc.n-1))
			}
		})
	}
}

func TestClampWorkers(t *testing.T) {
	cases := []struct {
		n, workers, want int
	}{
		{10, 4, 4},
		{10, 0, DefaultWorkers()},
		{10, -7, DefaultWorkers()},
		{2, 16, 2},
		{1, 1, 1},
	}
	for _, tc := range cases {
		if got := clampWorkers(tc.n, tc.workers); got != tc.want {
			t.Errorf("clampWorkers(%d, %d) = %d, want %d", tc.n, tc.workers, got, tc.want)
		}
		if got := clampWorkers(tc.n, tc.workers); got < 1 {
			t.Errorf("clampWorkers(%d, %d) = %d < 1", tc.n, tc.workers, got)
		}
	}
}

// TestForRangesCtxCancelMidFlight cancels the context from inside a worker
// while other workers are mid-dispatch: the call must return ctx.Err(), stop
// dispatching new ranges, and never double-visit an index. Run under -race
// this also checks the dispatch path is data-race free.
func TestForRangesCtxCancelMidFlight(t *testing.T) {
	const n = 100_000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	visited := make([]int32, n)
	var covered int64
	err := ForRangesCtx(ctx, n, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if atomic.AddInt32(&visited[i], 1) != 1 {
				t.Errorf("index %d visited twice", i)
			}
		}
		atomic.AddInt64(&covered, int64(hi-lo))
		if atomic.LoadInt64(&covered) >= n/10 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if covered == 0 || covered >= n {
		t.Fatalf("covered %d of %d indices; want a strict partial sweep", covered, n)
	}
}

// TestForCtxCancelMidFlight is the same contract for the index-granular
// primitive, plus MapReduceCtx's partial-reduction guarantee: unvisited
// indices are NaN-filled and never win the reduction.
func TestForCtxCancelMidFlight(t *testing.T) {
	const n = 100_000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var covered int64
	err := ForCtx(ctx, n, 8, func(i int) {
		if atomic.AddInt64(&covered, 1) >= n/10 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("ForCtx err = %v, want context.Canceled", err)
	}
	if covered == 0 || covered >= n {
		t.Fatalf("covered %d of %d; want a strict partial sweep", covered, n)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var scored int64
	idx, val, err := MapReduceCtx(ctx2, n, 8, func(i int) float64 {
		if atomic.AddInt64(&scored, 1) >= n/10 {
			cancel2()
		}
		return float64(i % 997)
	}, func(a, b float64) bool { return a > b })
	if err != context.Canceled {
		t.Fatalf("MapReduceCtx err = %v, want context.Canceled", err)
	}
	if idx < 0 || math.IsNaN(val) {
		t.Fatalf("MapReduceCtx = (%d, %v); a partial scan that scored indices must still reduce", idx, val)
	}
}

// TestMapReduceCtxPreCancelled: a dead context means nothing is scored and
// the reduction reports (-1, NaN, ctx.Err()).
func TestMapReduceCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	idx, val, err := MapReduceCtx(ctx, 50, 4, func(i int) float64 {
		t.Error("score called after cancellation")
		return 0
	}, func(a, b float64) bool { return a > b })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if idx != -1 || !math.IsNaN(val) {
		t.Fatalf("got (%d, %v), want (-1, NaN)", idx, val)
	}
}
