package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 1000
		counts := make([]int64, n)
		For(n, workers, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEmptyAndSmall(t *testing.T) {
	For(0, 4, func(int) { t.Fatal("fn called for n=0") })
	For(-3, 4, func(int) { t.Fatal("fn called for n<0") })
	hit := false
	For(1, 8, func(i int) { hit = true })
	if !hit {
		t.Fatal("n=1 not visited")
	}
}

func TestForParallelism(t *testing.T) {
	// With many workers, at least two goroutines should run concurrently.
	var cur, peak int64
	For(200, 8, func(i int) {
		c := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
				break
			}
		}
		for j := 0; j < 1000; j++ { // small spin to overlap
			_ = j
		}
		atomic.AddInt64(&cur, -1)
	})
	if DefaultWorkers() > 1 && atomic.LoadInt64(&peak) < 2 {
		t.Skip("no observed overlap; scheduler dependent")
	}
}

func TestArgmaxDeterministicTieBreak(t *testing.T) {
	scores := []float64{1, 5, 5, 3, 5}
	for _, workers := range []int{1, 4, 16} {
		idx, best := ArgmaxFloat(len(scores), workers, func(i int) float64 { return scores[i] })
		if idx != 1 || best != 5 {
			t.Fatalf("workers=%d: argmax = (%d, %v), want (1, 5)", workers, idx, best)
		}
	}
}

func TestArgmaxEmpty(t *testing.T) {
	idx, _ := ArgmaxFloat(0, 4, func(int) float64 { return 0 })
	if idx != -1 {
		t.Fatalf("empty argmax = %d, want -1", idx)
	}
}

func TestMapReduceMin(t *testing.T) {
	scores := []float64{4, 2, 9, 2}
	idx, best := MapReduce(len(scores), 4,
		func(i int) float64 { return scores[i] },
		func(a, b float64) bool { return a < b })
	if idx != 1 || best != 2 {
		t.Fatalf("min = (%d, %v), want (1, 2)", idx, best)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers = %d", DefaultWorkers())
	}
}
