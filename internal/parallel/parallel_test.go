package parallel

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 1000
		counts := make([]int64, n)
		For(n, workers, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEmptyAndSmall(t *testing.T) {
	For(0, 4, func(int) { t.Fatal("fn called for n=0") })
	For(-3, 4, func(int) { t.Fatal("fn called for n<0") })
	hit := false
	For(1, 8, func(i int) { hit = true })
	if !hit {
		t.Fatal("n=1 not visited")
	}
}

func TestForRangesCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 1000
		counts := make([]int64, n)
		ForRanges(n, workers, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("workers=%d: bad range [%d, %d)", workers, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt64(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}

func TestForRangesEmptyAndSingle(t *testing.T) {
	ForRanges(0, 4, func(int, int) { t.Fatal("fn called for n=0") })
	ForRanges(-1, 4, func(int, int) { t.Fatal("fn called for n<0") })
	calls := 0
	ForRanges(5, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 5 {
			t.Fatalf("single worker range [%d, %d), want [0, 5)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("single worker made %d calls", calls)
	}
}

func TestForParallelism(t *testing.T) {
	// With many workers, at least two goroutines should run concurrently.
	var cur, peak int64
	For(200, 8, func(i int) {
		c := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
				break
			}
		}
		for j := 0; j < 1000; j++ { // small spin to overlap
			_ = j
		}
		atomic.AddInt64(&cur, -1)
	})
	if DefaultWorkers() > 1 && atomic.LoadInt64(&peak) < 2 {
		t.Skip("no observed overlap; scheduler dependent")
	}
}

func TestArgmaxDeterministicTieBreak(t *testing.T) {
	scores := []float64{1, 5, 5, 3, 5}
	for _, workers := range []int{1, 4, 16} {
		idx, best := ArgmaxFloat(len(scores), workers, func(i int) float64 { return scores[i] })
		if idx != 1 || best != 5 {
			t.Fatalf("workers=%d: argmax = (%d, %v), want (1, 5)", workers, idx, best)
		}
	}
}

func TestArgmaxEmpty(t *testing.T) {
	idx, _ := ArgmaxFloat(0, 4, func(int) float64 { return 0 })
	if idx != -1 {
		t.Fatalf("empty argmax = %d, want -1", idx)
	}
}

func TestArgmaxSkipsNaN(t *testing.T) {
	nan := math.NaN()
	// Regression: a NaN at index 0 used to win every comparison because it
	// was the initial "best" and nothing compares greater than NaN.
	scores := []float64{nan, 2, 7, nan, 7}
	for _, workers := range []int{1, 4} {
		idx, best := ArgmaxFloat(len(scores), workers, func(i int) float64 { return scores[i] })
		if idx != 2 || best != 7 {
			t.Fatalf("workers=%d: argmax = (%d, %v), want (2, 7)", workers, idx, best)
		}
	}
	// NaN in the middle must not disturb the min reduction either.
	idx, best := MapReduce(len(scores), 2,
		func(i int) float64 { return scores[i] },
		func(a, b float64) bool { return a < b })
	if idx != 1 || best != 2 {
		t.Fatalf("min with NaNs = (%d, %v), want (1, 2)", idx, best)
	}
	// All-NaN input selects nothing.
	idx, best = ArgmaxFloat(3, 2, func(int) float64 { return nan })
	if idx != -1 || !math.IsNaN(best) {
		t.Fatalf("all-NaN argmax = (%d, %v), want (-1, NaN)", idx, best)
	}
}

func TestForObsTelemetry(t *testing.T) {
	m := obs.NewMetrics()
	var sum int64
	ForObs(100, 4, m, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum = %d", sum)
	}
	s := m.Snapshot()
	if s.Counters[obs.CtrParTasks] != 100 {
		t.Errorf("tasks = %d, want 100", s.Counters[obs.CtrParTasks])
	}
	if s.Counters[obs.CtrParChunks] < 1 {
		t.Errorf("chunks = %d, want >= 1", s.Counters[obs.CtrParChunks])
	}
	if s.Gauges[obs.GaugeParWorkers] != 4 {
		t.Errorf("workers gauge = %v, want 4", s.Gauges[obs.GaugeParWorkers])
	}
	busy := s.TimersNS[obs.TimWorkerBusy]
	if busy.Count != 4 {
		t.Errorf("worker busy samples = %d, want 4", busy.Count)
	}
	// Serial path records a single chunk and one busy span.
	m2 := obs.NewMetrics()
	ForObs(10, 1, m2, func(int) {})
	s2 := m2.Snapshot()
	if s2.Counters[obs.CtrParChunks] != 1 || s2.TimersNS[obs.TimWorkerBusy].Count != 1 {
		t.Errorf("serial telemetry wrong: %+v", s2.Counters)
	}
}

func TestArgmaxObsCountsScan(t *testing.T) {
	m := obs.NewMetrics()
	idx, best := ArgmaxFloatObs(50, 2, m, func(i int) float64 { return float64(i % 10) })
	if idx != 9 || best != 9 {
		t.Fatalf("argmax = (%d, %v), want (9, 9)", idx, best)
	}
	if got := m.Snapshot().Counters[obs.CtrParTasks]; got != 50 {
		t.Errorf("tasks = %d, want 50", got)
	}
}

func TestMapReduceMin(t *testing.T) {
	scores := []float64{4, 2, 9, 2}
	idx, best := MapReduce(len(scores), 4,
		func(i int) float64 { return scores[i] },
		func(a, b float64) bool { return a < b })
	if idx != 1 || best != 2 {
		t.Fatalf("min = (%d, %v), want (1, 2)", idx, best)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers = %d", DefaultWorkers())
	}
}
