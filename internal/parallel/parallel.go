// Package parallel provides the small work-distribution primitives the
// library uses to spread candidate scans, trials, and exhaustive enumeration
// across cores. Results are always written to pre-indexed slots so that
// parallel execution is deterministic: the reduction order never depends on
// goroutine scheduling.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers reports the worker count used when a caller passes
// workers <= 0: the number of usable CPUs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// For runs fn(i) for every i in [0, n) using the given number of workers
// (workers <= 0 selects DefaultWorkers). Indices are handed out dynamically
// in chunks so that uneven per-index cost still balances. fn must be safe to
// call concurrently; it must only write to state owned by index i.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Chunked dynamic scheduling: amortizes the atomic op over chunk items.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// MapReduce evaluates score(i) for every i in [0, n) in parallel and returns
// the index with the best score under better(a, b) ("a strictly better than
// b"). Ties are broken toward the lowest index regardless of scheduling, so
// the result is deterministic. It returns -1 when n <= 0.
func MapReduce(n, workers int, score func(i int) float64, better func(a, b float64) bool) (int, float64) {
	if n <= 0 {
		return -1, 0
	}
	scores := make([]float64, n)
	For(n, workers, func(i int) { scores[i] = score(i) })
	best := 0
	for i := 1; i < n; i++ {
		if better(scores[i], scores[best]) {
			best = i
		}
	}
	return best, scores[best]
}

// ArgmaxFloat returns the index of the strictly greatest score with ties
// broken toward the lowest index — the paper's tie-break rule ("selection
// will be based on the index of the points").
func ArgmaxFloat(n, workers int, score func(i int) float64) (int, float64) {
	return MapReduce(n, workers, score, func(a, b float64) bool { return a > b })
}
