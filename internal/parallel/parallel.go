// Package parallel provides the small work-distribution primitives the
// library uses to spread candidate scans, trials, and exhaustive enumeration
// across cores. Results are always written to pre-indexed slots so that
// parallel execution is deterministic: the reduction order never depends on
// goroutine scheduling.
package parallel

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// DefaultWorkers reports the worker count used when a caller passes
// workers <= 0: the number of usable CPUs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// For runs fn(i) for every i in [0, n) using the given number of workers
// (workers <= 0 selects DefaultWorkers). Indices are handed out dynamically
// in chunks so that uneven per-index cost still balances. fn must be safe to
// call concurrently; it must only write to state owned by index i.
func For(n, workers int, fn func(i int)) {
	ForObs(n, workers, nil, fn)
}

// ForObs is For with telemetry: a live collector records the tasks
// dispatched (obs.CtrParTasks), the number of dynamically scheduled chunks
// (obs.CtrParChunks), the worker count (obs.GaugeParWorkers), and each
// worker's busy time (obs.TimWorkerBusy). A nil or Nop collector makes it
// identical to For.
func ForObs(n, workers int, c obs.Collector, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	active := obs.Active(c)
	if active {
		c.Count(obs.CtrParTasks, int64(n))
		c.Gauge(obs.GaugeParWorkers, float64(workers))
	}
	if workers == 1 {
		t := obs.StartTimer(c, obs.TimWorkerBusy)
		for i := 0; i < n; i++ {
			fn(i)
		}
		t.Stop()
		if active {
			c.Count(obs.CtrParChunks, 1)
		}
		return
	}
	// Chunked dynamic scheduling: amortizes the atomic op over chunk items.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next, chunks int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			t := obs.StartTimer(c, obs.TimWorkerBusy)
			for {
				start := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if start >= n {
					break
				}
				if active {
					atomic.AddInt64(&chunks, 1)
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
			t.Stop()
		}()
	}
	wg.Wait()
	if active {
		c.Count(obs.CtrParChunks, atomic.LoadInt64(&chunks))
	}
}

// ForRanges partitions [0, n) into contiguous half-open ranges and runs
// fn(lo, hi) for each, spreading ranges over the given number of workers
// (workers <= 0 selects DefaultWorkers). Ranges are handed out dynamically
// so uneven per-range cost still balances. The range — not the index — being
// the unit of dispatch lets callers run one kernel over a contiguous span of
// a flat array (the batched distance kernels chunk the row-major coordinate
// array this way) without per-index closure overhead. fn must be safe for
// concurrent calls and must only touch state owned by its range.
func ForRanges(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if start >= n {
					break
				}
				end := start + chunk
				if end > n {
					end = n
				}
				fn(start, end)
			}
		}()
	}
	wg.Wait()
}

// MapReduce evaluates score(i) for every i in [0, n) in parallel and returns
// the index with the best score under better(a, b) ("a strictly better than
// b"). Ties are broken toward the lowest index regardless of scheduling, so
// the result is deterministic. NaN scores are never selected: they compare
// as worse than any real score no matter where they appear. It returns
// (-1, NaN) when n <= 0 or every score is NaN.
func MapReduce(n, workers int, score func(i int) float64, better func(a, b float64) bool) (int, float64) {
	return MapReduceObs(n, workers, nil, score, better)
}

// MapReduceObs is MapReduce with the scan telemetry of ForObs.
func MapReduceObs(n, workers int, c obs.Collector, score func(i int) float64, better func(a, b float64) bool) (int, float64) {
	if n <= 0 {
		return -1, math.NaN()
	}
	scores := make([]float64, n)
	ForObs(n, workers, c, func(i int) { scores[i] = score(i) })
	best := -1
	for i, s := range scores {
		if math.IsNaN(s) {
			continue
		}
		if best < 0 || better(s, scores[best]) {
			best = i
		}
	}
	if best < 0 {
		return -1, math.NaN()
	}
	return best, scores[best]
}

// ArgmaxFloat returns the index of the strictly greatest score with ties
// broken toward the lowest index — the paper's tie-break rule ("selection
// will be based on the index of the points").
func ArgmaxFloat(n, workers int, score func(i int) float64) (int, float64) {
	return MapReduce(n, workers, score, func(a, b float64) bool { return a > b })
}

// ArgmaxFloatObs is ArgmaxFloat with the scan telemetry of ForObs.
func ArgmaxFloatObs(n, workers int, c obs.Collector, score func(i int) float64) (int, float64) {
	return MapReduceObs(n, workers, c, score, func(a, b float64) bool { return a > b })
}
