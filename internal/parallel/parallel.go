// Package parallel provides the small work-distribution primitives the
// library uses to spread candidate scans, trials, and exhaustive enumeration
// across cores. Results are always written to pre-indexed slots so that
// parallel execution is deterministic: the reduction order never depends on
// goroutine scheduling.
//
// Every primitive has a context-aware variant (ForCtx, ForRangesCtx,
// MapReduceCtx, ...). Cancellation is cooperative at chunk granularity: once
// the context is done no new chunk is dispatched, in-flight chunks run to
// completion, and the variant returns ctx.Err(). Indices that were never
// dispatched are simply not visited — callers that aggregate results must
// treat their slots as absent (MapReduceCtx does so by pre-filling scores
// with NaN).
package parallel

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// DefaultWorkers reports the worker count used when a caller passes
// workers <= 0: the number of usable CPUs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// clampWorkers normalizes a caller-supplied worker count: non-positive
// selects DefaultWorkers, and the count never exceeds the number of work
// items (never spawn zero-work goroutines).
func clampWorkers(n, workers int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers < 1 {
		workers = 1 // defensive: GOMAXPROCS is >= 1, but never return 0
	}
	if workers > n {
		workers = n
	}
	return workers
}

// doneChan extracts the cancellation channel of a context; a nil context
// (or context.Background()) yields nil, on which a non-blocking receive is
// never ready — the uncancellable fast path.
func doneChan(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// ctxErr reports the context's error, tolerating nil.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// For runs fn(i) for every i in [0, n) using the given number of workers
// (workers <= 0 selects DefaultWorkers; n <= 0 is a no-op). Indices are
// handed out dynamically in chunks so that uneven per-index cost still
// balances. fn must be safe to call concurrently; it must only write to
// state owned by index i.
func For(n, workers int, fn func(i int)) {
	forObs(nil, n, workers, nil, fn)
}

// ForCtx is For with cooperative cancellation: once ctx is done no new chunk
// is dispatched and ForCtx returns ctx.Err(); indices never dispatched are
// not visited. A nil ctx behaves like For.
func ForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	return ForObsCtx(ctx, n, workers, nil, fn)
}

// ForObs is For with telemetry: a live collector records the tasks
// dispatched (obs.CtrParTasks), the number of dynamically scheduled chunks
// (obs.CtrParChunks), the worker count (obs.GaugeParWorkers), and each
// worker's busy time (obs.TimWorkerBusy). A nil or Nop collector makes it
// identical to For.
func ForObs(n, workers int, c obs.Collector, fn func(i int)) {
	forObs(nil, n, workers, c, fn)
}

// ForObsCtx combines ForObs and ForCtx.
func ForObsCtx(ctx context.Context, n, workers int, c obs.Collector, fn func(i int)) error {
	forObs(doneChan(ctx), n, workers, c, fn)
	return ctxErr(ctx)
}

// forObs is the shared implementation: done == nil disables cancellation.
func forObs(done <-chan struct{}, n, workers int, c obs.Collector, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(n, workers)
	active := obs.Active(c)
	if active {
		c.Count(obs.CtrParTasks, int64(n))
		c.Gauge(obs.GaugeParWorkers, float64(workers))
	}
	if workers == 1 {
		t := obs.StartTimer(c, obs.TimWorkerBusy)
		var chunks int64
		for i := 0; i < n; i++ {
			if cancelled(done) {
				break
			}
			fn(i)
			chunks = 1
		}
		t.Stop()
		if active {
			c.Count(obs.CtrParChunks, chunks)
		}
		return
	}
	// Chunked dynamic scheduling: amortizes the atomic op over chunk items.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next, chunks int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			t := obs.StartTimer(c, obs.TimWorkerBusy)
			for {
				if cancelled(done) {
					break
				}
				start := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if start >= n {
					break
				}
				if active {
					atomic.AddInt64(&chunks, 1)
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
			t.Stop()
		}()
	}
	wg.Wait()
	if active {
		c.Count(obs.CtrParChunks, atomic.LoadInt64(&chunks))
	}
}

// cancelled is a non-blocking poll of a done channel (nil: never cancelled).
func cancelled(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// ForRanges partitions [0, n) into contiguous half-open ranges and runs
// fn(lo, hi) for each, spreading ranges over the given number of workers
// (workers <= 0 selects DefaultWorkers; n <= 0 is a no-op). Ranges are
// handed out dynamically so uneven per-range cost still balances. The range
// — not the index — being the unit of dispatch lets callers run one kernel
// over a contiguous span of a flat array (the batched distance kernels chunk
// the row-major coordinate array this way) without per-index closure
// overhead. fn must be safe for concurrent calls and must only touch state
// owned by its range.
func ForRanges(n, workers int, fn func(lo, hi int)) {
	forRanges(nil, n, workers, fn)
}

// ForRangesCtx is ForRanges with cooperative cancellation: once ctx is done
// no new range is dispatched and ForRangesCtx returns ctx.Err(); ranges
// never dispatched are not visited. A nil ctx behaves like ForRanges.
func ForRangesCtx(ctx context.Context, n, workers int, fn func(lo, hi int)) error {
	forRanges(doneChan(ctx), n, workers, fn)
	return ctxErr(ctx)
}

// forRanges is the shared implementation: done == nil disables cancellation.
func forRanges(done <-chan struct{}, n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(n, workers)
	if workers == 1 {
		if cancelled(done) {
			return
		}
		fn(0, n)
		return
	}
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if cancelled(done) {
					break
				}
				start := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if start >= n {
					break
				}
				end := start + chunk
				if end > n {
					end = n
				}
				fn(start, end)
			}
		}()
	}
	wg.Wait()
}

// MapReduce evaluates score(i) for every i in [0, n) in parallel and returns
// the index with the best score under better(a, b) ("a strictly better than
// b"). Ties are broken toward the lowest index regardless of scheduling, so
// the result is deterministic. NaN scores are never selected: they compare
// as worse than any real score no matter where they appear. It returns
// (-1, NaN) when n <= 0 or every score is NaN.
func MapReduce(n, workers int, score func(i int) float64, better func(a, b float64) bool) (int, float64) {
	idx, val, _ := mapReduce(nil, nil, n, workers, nil, score, better)
	return idx, val
}

// MapReduceObs is MapReduce with the scan telemetry of ForObs.
func MapReduceObs(n, workers int, c obs.Collector, score func(i int) float64, better func(a, b float64) bool) (int, float64) {
	idx, val, _ := mapReduce(nil, nil, n, workers, c, score, better)
	return idx, val
}

// MapReduceCtx is MapReduce with cooperative cancellation. On cancellation
// the reduction runs over the scores actually computed (unvisited indices
// count as NaN and are never selected) and the error is ctx.Err(); the
// returned index is therefore the best of a partial scan, or -1 when
// nothing was scored.
func MapReduceCtx(ctx context.Context, n, workers int, score func(i int) float64, better func(a, b float64) bool) (int, float64, error) {
	return mapReduce(ctx, doneChan(ctx), n, workers, nil, score, better)
}

// MapReduceObsCtx combines MapReduceObs and MapReduceCtx.
func MapReduceObsCtx(ctx context.Context, n, workers int, c obs.Collector, score func(i int) float64, better func(a, b float64) bool) (int, float64, error) {
	return mapReduce(ctx, doneChan(ctx), n, workers, c, score, better)
}

// mapReduce is the shared implementation: done == nil disables cancellation.
func mapReduce(ctx context.Context, done <-chan struct{}, n, workers int, c obs.Collector, score func(i int) float64, better func(a, b float64) bool) (int, float64, error) {
	if n <= 0 {
		return -1, math.NaN(), ctxErr(ctx)
	}
	scores := make([]float64, n)
	if done != nil {
		// Pre-fill with NaN so indices skipped by cancellation are never
		// selected; the uncancellable path visits every index and skips this.
		for i := range scores {
			scores[i] = math.NaN()
		}
	}
	forObs(done, n, workers, c, func(i int) { scores[i] = score(i) })
	best := -1
	for i, s := range scores {
		if math.IsNaN(s) {
			continue
		}
		if best < 0 || better(s, scores[best]) {
			best = i
		}
	}
	if best < 0 {
		return -1, math.NaN(), ctxErr(ctx)
	}
	return best, scores[best], ctxErr(ctx)
}

// ArgmaxFloat returns the index of the strictly greatest score with ties
// broken toward the lowest index — the paper's tie-break rule ("selection
// will be based on the index of the points").
func ArgmaxFloat(n, workers int, score func(i int) float64) (int, float64) {
	return MapReduce(n, workers, score, func(a, b float64) bool { return a > b })
}

// ArgmaxFloatObs is ArgmaxFloat with the scan telemetry of ForObs.
func ArgmaxFloatObs(n, workers int, c obs.Collector, score func(i int) float64) (int, float64) {
	return MapReduceObs(n, workers, c, score, func(a, b float64) bool { return a > b })
}

// ArgmaxFloatCtx is ArgmaxFloat with cooperative cancellation (see
// MapReduceCtx for the partial-scan contract).
func ArgmaxFloatCtx(ctx context.Context, n, workers int, score func(i int) float64) (int, float64, error) {
	return MapReduceCtx(ctx, n, workers, score, func(a, b float64) bool { return a > b })
}

// ArgmaxFloatObsCtx combines ArgmaxFloatObs and ArgmaxFloatCtx.
func ArgmaxFloatObsCtx(ctx context.Context, n, workers int, c obs.Collector, score func(i int) float64) (int, float64, error) {
	return MapReduceObsCtx(ctx, n, workers, c, score, func(a, b float64) bool { return a > b })
}
