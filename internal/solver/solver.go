// Package solver is the single source of truth for the stack's algorithm
// catalog: every runnable content-distribution algorithm is registered here
// under its canonical name with a constructor taking uniform Options. The
// CLI tools, the experiment drivers, and the broadcast simulator all resolve
// algorithms through this registry instead of hand-rolling their own
// name→constructor lists, so names, default worker counts, and telemetry
// wiring (core.Instrument) cannot drift between layers.
package solver

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/pointset"
	"repro/internal/shard"
	"repro/internal/vec"
)

// Options is the single options surface every solver entry point shares —
// the registry constructors here, the exhaustive baseline (whose old
// exhaustive.Options is now an alias of this type), and the serving layer's
// wire schema all marshal exactly these knobs. The zero value is always
// usable: all CPUs, seed 0, telemetry off, no enrichment.
type Options struct {
	// Workers bounds a parallel algorithm's worker count; <= 0 uses all
	// CPUs (parallel.DefaultWorkers).
	Workers int
	// Seed drives any randomness the algorithm carries (the random
	// baseline's placement, greedy4's Welzl shuffle). Deterministic per
	// seed.
	Seed uint64
	// Obs, when live, is attached to the constructed algorithm via
	// core.Instrument so per-round telemetry flows without every caller
	// re-implementing the wrapping.
	Obs obs.Collector
	// WarmStart, when non-empty, wraps the algorithm in core.WarmStarted:
	// the carried-over centers are scored against the cold solve on the
	// current instance and the better of the two is returned. Re-solve
	// loops pass the previous period's centers here.
	WarmStart []vec.V
	// Shards > 1 routes the solve through the spatial
	// partition → shard-solve → merge pipeline (internal/shard): the
	// instance is split into Shards balanced grid-cell shards, each solved
	// by the named algorithm with a seed derived from the root Seed and the
	// shard's content-derived identity, and the candidate union is
	// lazy-greedy merged against the full instance. 0 or 1 solves
	// single-shot. The composite name "sharded(<inner>)" does the same with
	// DefaultShards when Shards is unset.
	Shards int
	// Halo is the sharded pipeline's boundary-halo width in grid-cell
	// rings: 0 uses the default of one ring (one coverage radius), -1
	// disables the halo (other negatives are rejected by ValidateSharding).
	// Ignored for single-shot solves.
	Halo int
	// Refine is the near-linear solver's per-center local-refinement round
	// budget: 0 uses core.DefaultRefineRounds, negative disables
	// refinement. The other solvers ignore it.
	Refine int
	// Remote, when non-nil and the solve is sharded, is tried first for
	// every shard solve — cluster mode installs its peer-forwarding seam
	// here. A failure falls back to the local inner solver with identical
	// results per the core.PartSolver contract. Ignored for single-shot
	// solves.
	Remote core.PartSolver

	// The remaining knobs configure the exhaustive baseline ("exhaustive"
	// in the catalog); the greedy constructors ignore them.

	// GridPer adds a uniform lattice with GridPer points per dimension to
	// the exhaustive candidate set (0 disables enrichment).
	GridPer int
	// Box bounds the enrichment lattice; a zero Box uses the data bounds.
	Box pointset.Box
	// Polish refines each center of the exhaustive winner by block
	// coordinate ascent, letting the baseline leave the candidate lattice.
	Polish bool
	// DisablePrune turns off the exhaustive branch-and-bound pruning.
	// Pruning never changes the result; the flag exists for the
	// equivalence tests and benches.
	DisablePrune bool
}

// Entry is one registered algorithm.
type Entry struct {
	// Name is the canonical identifier (e.g. "greedy2-lazy").
	Name string
	// Summary is a one-line description for listings.
	Summary string
	// New constructs the algorithm for the given options, without the
	// Instrument wrapping (the registry applies it).
	New func(Options) core.Algorithm
}

// registry maps canonical names to entries; names holds registration order.
var (
	registry = map[string]Entry{}
	names    []string
)

// Register adds an entry. Registering an empty or duplicate name is an
// error so two layers cannot silently claim the same identifier.
func Register(e Entry) error {
	if e.Name == "" || e.New == nil {
		return fmt.Errorf("solver: entry needs a name and a constructor")
	}
	if _, dup := registry[e.Name]; dup {
		return fmt.Errorf("solver: duplicate algorithm %q", e.Name)
	}
	registry[e.Name] = e
	names = append(names, e.Name)
	return nil
}

// mustRegister is Register for the built-in catalog, where a failure is a
// programming error.
func mustRegister(e Entry) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

func init() {
	mustRegister(Entry{
		Name:    "greedy1",
		Summary: "Algorithm 1: round-based with the multistart continuous inner solver",
		New: func(o Options) core.Algorithm {
			return core.RoundBased{Solver: optimize.Multistart{Workers: o.Workers}}
		},
	})
	mustRegister(Entry{
		Name:    "greedy2",
		Summary: "Algorithm 2: best data point per round by coverage reward",
		New: func(o Options) core.Algorithm {
			return core.LocalGreedy{Workers: o.Workers}
		},
	})
	mustRegister(Entry{
		Name:    "greedy2-lazy",
		Summary: "Algorithm 2 accelerated by lazy (CELF) evaluation; bit-identical output",
		New: func(o Options) core.Algorithm {
			return core.LazyGreedy{}
		},
	})
	mustRegister(Entry{
		Name:    "greedy2+swap",
		Summary: "Algorithm 2 refined by 1-swap local search",
		New: func(o Options) core.Algorithm {
			return core.SwapLocalSearch{Seed: core.LocalGreedy{Workers: o.Workers}}
		},
	})
	mustRegister(Entry{
		Name:    "greedy3",
		Summary: "Algorithm 3: heaviest remaining single-point reward per round",
		New: func(o Options) core.Algorithm {
			return core.SimpleGreedy{}
		},
	})
	mustRegister(Entry{
		Name:    "greedy4",
		Summary: "Algorithm 4: disk-growing walk from every seed point",
		New: func(o Options) core.Algorithm {
			return core.ComplexGreedy{Workers: o.Workers, Seed: o.Seed}
		},
	})
	mustRegister(Entry{
		Name:    "nearlinear",
		Summary: "grid-snapped approximate greedy: O(occupied cells) per round, k-means++ seeded, locally refined",
		New: func(o Options) core.Algorithm {
			return core.NearLinear{Seed: o.Seed, Refine: o.Refine}
		},
	})
	mustRegister(Entry{
		Name:    "random",
		Summary: "baseline: k centers uniform over the data bounding box",
		New: func(o Options) core.Algorithm {
			return core.RandomPlacement(o.Seed)
		},
	})
}

// CatalogError formats the canonical unknown-name error every name-resolving
// surface shares — the solver registry, the experiment registry, and the
// serving layer all answer an unknown name with
//
//	<domain>: unknown <kind> "<name>" (have: a | b | c)
//
// where the catalog is sorted. Keeping the text in one place means `cdgreedy
// -alg`, `cdbench -run`, and `POST /v1/solve` cannot drift apart.
func CatalogError(domain, kind, name string, have []string) error {
	sorted := append([]string{}, have...)
	sort.Strings(sorted)
	return fmt.Errorf("%s: unknown %s %q (have: %s)", domain, kind, name, strings.Join(sorted, " | "))
}

// Lookup returns the entry registered under name, if any.
func Lookup(name string) (Entry, bool) {
	e, ok := registry[name]
	return e, ok
}

// DefaultShards is the shard count a composite "sharded(<inner>)" name uses
// when Options.Shards is unset. A fixed constant — never the CPU count —
// because the shard count changes the partition and therefore the result;
// results must not depend on the machine that computed them.
const DefaultShards = 8

// ValidateSharding validates the wire-facing sharding knobs. Every surface
// that accepts them — solver.New, POST /v1/solve, and the cdgreedy flags —
// answers an out-of-range value with exactly this error text, so the
// surfaces cannot drift. Shards must be >= 0 (0 solves single-shot); Halo
// must be >= -1 (-1 disables the halo, 0 uses the default ring).
func ValidateSharding(shards, halo int) error {
	if shards < 0 {
		return fmt.Errorf("shards = %d, want >= 0", shards)
	}
	if halo < -1 {
		return fmt.Errorf("halo = %d, want >= -1", halo)
	}
	return nil
}

// ShardedInner parses the composable registry form "sharded(<inner>)",
// returning the inner name and true on match. The serving layer's cluster
// coordinator uses it to learn which algorithm a forwarded shard should run.
func ShardedInner(name string) (string, bool) { return shardedInner(name) }

// EffectiveShards resolves the shard count a solve of the given name and
// Options.Shards value actually runs with: the composite "sharded(<inner>)"
// form defaults to DefaultShards when Shards is unset, a plain name shards
// only when Shards > 1. Exactly New's dispatch logic, exposed so the serving
// layer can decide whether a request is a sharded (cluster-forwardable)
// solve without re-encoding the rules.
func EffectiveShards(name string, shards int) int {
	if _, ok := shardedInner(name); ok && shards == 0 {
		return DefaultShards
	}
	return shards
}

// shardedInner parses the composable registry form "sharded(<inner>)",
// returning the inner name and true on match.
func shardedInner(name string) (string, bool) {
	const prefix, suffix = "sharded(", ")"
	if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) && len(name) > len(prefix)+len(suffix) {
		return name[len(prefix) : len(name)-len(suffix)], true
	}
	return "", false
}

// Check reports whether name resolves to a constructible algorithm: a
// registry entry, or the composite "sharded(<inner>)" around one. The
// serving layer validates wire names through this so its catalog errors
// cannot drift from New's.
func Check(name string) error {
	if inner, ok := shardedInner(name); ok {
		name = inner
	}
	if _, ok := registry[name]; !ok {
		return CatalogError("solver", "algorithm", name, Names())
	}
	return nil
}

// New resolves a registered name and constructs the algorithm, attaching
// opts.Obs via core.Instrument when live. Unknown names report the sorted
// catalog so callers' error messages are self-describing.
//
// Two composable sharding surfaces resolve here: the name form
// "sharded(<inner>)" (shard count from opts.Shards, DefaultShards when
// unset) and opts.Shards > 1 on a plain registry name. Both construct the
// partition → shard-solve → merge pipeline of internal/shard around the
// inner entry.
func New(name string, opts Options) (core.Algorithm, error) {
	if err := ValidateSharding(opts.Shards, opts.Halo); err != nil {
		return nil, fmt.Errorf("solver: %w", err)
	}
	if inner, ok := shardedInner(name); ok {
		e, okInner := registry[inner]
		if !okInner {
			return nil, CatalogError("solver", "algorithm", inner, Names())
		}
		shards := opts.Shards
		if shards == 0 {
			shards = DefaultShards
		}
		return newSharded(e, inner, shards, opts), nil
	}
	e, ok := registry[name]
	if !ok {
		return nil, CatalogError("solver", "algorithm", name, Names())
	}
	if opts.Shards > 1 {
		return newSharded(e, name, opts.Shards, opts), nil
	}
	alg := e.New(opts)
	if len(opts.WarmStart) > 0 {
		alg = core.WarmStarted{Base: alg, Prev: opts.WarmStart}
	}
	return core.Instrument(alg, opts.Obs), nil
}

// newSharded assembles the sharded pipeline around a registry entry. The
// inner per-shard constructor strips the telemetry collector (per-shard
// round events would collide with the merge's rounds, which are the
// pipeline's reported rounds), the warm start (applied once, around the
// whole pipeline), and the sharding knobs themselves (no recursive
// sharding); everything else — Workers, the exhaustive knobs — passes
// through. The derived per-shard seed replaces the root seed.
func newSharded(e Entry, inner string, shards int, opts Options) core.Algorithm {
	newInner := func(seed uint64) core.Algorithm {
		o := opts
		o.Seed = seed
		o.Obs = nil
		o.Shards = 0
		o.Halo = 0
		o.WarmStart = nil
		o.Remote = nil
		return e.New(o)
	}
	alg := shard.NewSolver(inner, newInner, shard.Options{
		Shards:  shards,
		Halo:    opts.Halo,
		Workers: opts.Workers,
		Seed:    opts.Seed,
		Obs:     opts.Obs,
		Remote:  opts.Remote,
	})
	if len(opts.WarmStart) > 0 {
		alg = core.WarmStarted{Base: alg, Prev: opts.WarmStart}
	}
	return core.Instrument(alg, opts.Obs)
}

// Names returns every registered name, sorted.
func Names() []string {
	out := append([]string{}, names...)
	sort.Strings(out)
	return out
}

// Entries returns every registered entry in registration order (the
// built-in catalog first, extensions after).
func Entries() []Entry {
	out := make([]Entry, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// PaperNames lists the four algorithms of the source paper in its order —
// the canonical comparison set for -all runs and the experiment drivers.
func PaperNames() []string {
	return []string{"greedy1", "greedy2", "greedy3", "greedy4"}
}
