package solver_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/solver"
	"repro/internal/spatial"
	"repro/internal/xrand"
)

// genNLInstance builds a uniform random instance over the paper's box (2-D
// or 3-D) with a grid finder attached, matching how production callers
// accelerate Near queries — the same setup as the sharded quality gate.
func genNLInstance(t testing.TB, n, dim int, nm norm.Norm, r float64, seed uint64) *reward.Instance {
	t.Helper()
	box := pointset.PaperBox2D()
	if dim == 3 {
		box = pointset.PaperBox3D()
	}
	set, err := pointset.GenUniform(n, box, pointset.RandomIntWeight, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	in, err := reward.NewInstance(set, nm, r)
	if err != nil {
		t.Fatal(err)
	}
	g, err := spatial.NewGrid(set.Points(), r)
	if err != nil {
		t.Fatal(err)
	}
	in.SetFinder(g)
	return in
}

// TestNearLinearQualityGate is the tier-1 quality-regression gate of the
// near-linear solver: across norms × dimensions on seeded uniform
// instances, the grid-snapped objective must stay within 10% of single-shot
// greedy (the paper's greedy2). The bounded candidate pool plus exact
// scoring and refinement is what makes this hold; a snap, seeding, or
// refinement regression trips it.
func TestNearLinearQualityGate(t *testing.T) {
	const k, minRatio = 8, 0.9
	norms := []norm.Norm{norm.L1{}, norm.L2{}, norm.LInf{}}
	for _, dim := range []int{2, 3} {
		n, r := 1200, 0.5
		if dim == 3 {
			n, r = 900, 0.8
		}
		for _, nm := range norms {
			t.Run(fmt.Sprintf("%s/dim%d", nm.Name(), dim), func(t *testing.T) {
				in := genNLInstance(t, n, dim, nm, r, uint64(41+dim))
				single, err := mustAlg(t, "greedy2", nil).Run(context.Background(), in, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := mustAlg(t, "nearlinear", nil).Run(context.Background(), in, k)
				if err != nil {
					t.Fatal(err)
				}
				if err := got.Validate(); err != nil {
					t.Fatal(err)
				}
				ratio := got.Total / single.Total
				if ratio < minRatio {
					t.Errorf("nearlinear/single = %.4f < %.2f (nearlinear %.4f, single %.4f)",
						ratio, minRatio, got.Total, single.Total)
				}
			})
		}
	}
}

// TestNearLinearDeterminismAcrossWorkers pins the same contract as
// TestShardedDeterminismAcrossWorkers: the result is bit-identical at any
// Workers count, for both the plain solver (serial by construction) and the
// sharded(nearlinear) composition (part-ordered candidates, content-derived
// per-shard seeds).
func TestNearLinearDeterminismAcrossWorkers(t *testing.T) {
	in := genNLInstance(t, 600, 2, norm.L2{}, 0.5, 19)
	const k = 6
	for _, name := range []string{"nearlinear", "sharded(nearlinear)"} {
		t.Run(name, func(t *testing.T) {
			run := func(w int) *core.Result {
				a, err := solver.New(name, solver.Options{Workers: w, Seed: 7, Shards: 4})
				if err != nil {
					t.Fatal(err)
				}
				res, err := a.Run(context.Background(), in, k)
				if err != nil {
					t.Fatal(err)
				}
				if err := res.Validate(); err != nil {
					t.Fatal(err)
				}
				return res
			}
			base := run(1)
			if len(base.Centers) != k {
				t.Fatalf("selected %d centers, want %d", len(base.Centers), k)
			}
			for _, w := range []int{2, 3, 8} {
				got := run(w)
				if got.Total != base.Total || len(got.Centers) != len(base.Centers) {
					t.Fatalf("workers=%d: total %v (%d centers) vs %v (%d)", w,
						got.Total, len(got.Centers), base.Total, len(base.Centers))
				}
				for j := range base.Centers {
					if !got.Centers[j].Equal(base.Centers[j]) || got.Gains[j] != base.Gains[j] {
						t.Fatalf("workers=%d round %d: result differs from workers=1", w, j)
					}
				}
			}
		})
	}
}

// TestNearLinearAnytimePrefix: the near-linear solver honors the same
// anytime contract as greedy 1–4 — cancelling after round j returns exactly
// the first j centers of the uncancelled run, bit for bit, and a
// pre-cancelled context yields an empty valid prefix.
func TestNearLinearAnytimePrefix(t *testing.T) {
	in := genNLInstance(t, 400, 2, norm.L2{}, 0.5, 5)
	const k = 4
	full, err := mustAlg(t, "nearlinear", nil).Run(context.Background(), in, k)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < k; j++ {
		ctx, cancel := context.WithCancel(context.Background())
		part, err := mustAlg(t, "nearlinear", cancelAfterRound{round: j, cancel: cancel}).Run(ctx, in, k)
		cancel()
		if err != context.Canceled {
			t.Fatalf("j=%d: err = %v, want context.Canceled", j, err)
		}
		if verr := part.Validate(); verr != nil {
			t.Fatalf("j=%d: partial result invalid: %v", j, verr)
		}
		if len(part.Centers) != j {
			t.Fatalf("j=%d: got %d centers, want exactly %d", j, len(part.Centers), j)
		}
		for r := 0; r < j; r++ {
			if part.Gains[r] != full.Gains[r] || !part.Centers[r].Equal(full.Centers[r]) {
				t.Fatalf("j=%d round %d: prefix differs from uncancelled run", j, r)
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := mustAlg(t, "nearlinear", nil).Run(ctx, in, 3)
	if err != context.Canceled {
		t.Errorf("pre-cancelled: err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Centers) != 0 {
		t.Errorf("pre-cancelled: res = %+v, want empty prefix", res)
	}
}

// TestNearLinearStageTelemetry: an instrumented run records the grid-snap /
// seed / refine stage counters and spans plus one round per center, so
// dashboards can attribute time to stages.
func TestNearLinearStageTelemetry(t *testing.T) {
	in := genNLInstance(t, 300, 2, norm.L2{}, 0.5, 3)
	m := obs.NewMetrics()
	root := obs.StartSpan(m, "t1", "solve")
	ctx := obs.ContextWithSpan(context.Background(), root)
	const k = 3
	res, err := mustAlg(t, "nearlinear", m).Run(ctx, in, k)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.Counters[obs.CtrNLCells] <= 0 {
		t.Errorf("no occupied cells counted")
	}
	if snap.Counters[obs.CtrNLSeeds] <= 0 || snap.Counters[obs.CtrNLSeeds] > k {
		t.Errorf("seeds counter = %d, want in (0, %d]", snap.Counters[obs.CtrNLSeeds], k)
	}
	if snap.Counters[obs.CtrNLCandidates] <= 0 {
		t.Errorf("no exact-scored candidates counted")
	}
	if got := snap.Counters[obs.CtrRounds]; got != k {
		t.Errorf("rounds = %d, want %d", got, k)
	}
	for _, tm := range []string{obs.TimNLSnap, obs.TimNLSeed, obs.TimNLRefine} {
		if snap.TimersNS[tm].Count == 0 {
			t.Errorf("timer %s never recorded", tm)
		}
	}
	stages := map[string]bool{}
	for _, e := range snap.Events {
		if e.Type == obs.EvSpanStart {
			stages[e.Name] = true
		}
	}
	for _, name := range []string{"grid_snap", "seed", "refine", "round"} {
		if !stages[name] {
			t.Errorf("no %q span recorded", name)
		}
	}
}

// TestNearLinearRefineOption: Options.Refine threads through the registry —
// negative disables refinement entirely (no refine steps counted) and the
// result is still valid.
func TestNearLinearRefineOption(t *testing.T) {
	in := genNLInstance(t, 300, 2, norm.L2{}, 0.5, 9)
	m := obs.NewMetrics()
	a, err := solver.New("nearlinear", solver.Options{Refine: -1, Obs: m})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(context.Background(), in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Counters[obs.CtrNLRefineSteps]; got != 0 {
		t.Errorf("Refine=-1 still took %d refine steps", got)
	}
	md := obs.NewMetrics()
	if _, err := mustAlgOpts(t, solver.Options{Obs: md}).Run(context.Background(), in, 4); err != nil {
		t.Fatal(err)
	}
	if got := md.Snapshot().Counters[obs.CtrNLRefineSteps]; got <= 0 {
		t.Errorf("default Refine took no refine steps")
	}
}

func mustAlgOpts(t *testing.T, opts solver.Options) core.Algorithm {
	t.Helper()
	a, err := solver.New("nearlinear", opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
