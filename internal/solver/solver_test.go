package solver_test

import (
	"context"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/solver"
	"repro/internal/xrand"
)

func testInstance(t *testing.T, n int) *reward.Instance {
	t.Helper()
	set, err := pointset.GenUniform(n, pointset.PaperBox2D(), pointset.RandomIntWeight, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	in, err := reward.NewInstance(set, norm.L2{}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNamesSortedAndComplete(t *testing.T) {
	ns := solver.Names()
	if !sort.StringsAreSorted(ns) {
		t.Fatalf("Names() not sorted: %v", ns)
	}
	for _, want := range []string{"greedy1", "greedy2", "greedy2-lazy", "greedy2+swap", "greedy3", "greedy4", "random"} {
		i := sort.SearchStrings(ns, want)
		if i >= len(ns) || ns[i] != want {
			t.Fatalf("Names() = %v, missing %q", ns, want)
		}
	}
}

func TestEntriesMatchRegistry(t *testing.T) {
	es := solver.Entries()
	if len(es) != len(solver.Names()) {
		t.Fatalf("Entries() has %d entries, Names() %d", len(es), len(solver.Names()))
	}
	for _, e := range es {
		if e.Summary == "" {
			t.Errorf("entry %q has no summary", e.Name)
		}
		if _, err := solver.New(e.Name, solver.Options{}); err != nil {
			t.Errorf("New(%q) = %v", e.Name, err)
		}
	}
}

func TestUnknownNameListsSortedCatalog(t *testing.T) {
	_, err := solver.New("bogus", solver.Options{})
	if err == nil {
		t.Fatal("New(bogus) succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"bogus"`) {
		t.Errorf("error %q does not name the unknown algorithm", msg)
	}
	want := strings.Join(solver.Names(), " | ")
	if !strings.Contains(msg, want) {
		t.Errorf("error %q does not list the sorted catalog %q", msg, want)
	}
}

func TestRegisterRejectsEmptyAndDuplicate(t *testing.T) {
	if err := solver.Register(solver.Entry{}); err == nil {
		t.Error("Register of empty entry succeeded")
	}
	dup := solver.Entry{
		Name: "greedy2",
		New:  func(solver.Options) core.Algorithm { return core.LocalGreedy{} },
	}
	if err := solver.Register(dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("Register of duplicate name = %v, want duplicate error", err)
	}
}

func TestPaperNamesResolve(t *testing.T) {
	want := []string{"greedy1", "greedy2", "greedy3", "greedy4"}
	got := solver.PaperNames()
	if len(got) != len(want) {
		t.Fatalf("PaperNames() = %v", got)
	}
	for i, n := range want {
		if got[i] != n {
			t.Fatalf("PaperNames() = %v, want %v", got, want)
		}
		a, err := solver.New(n, solver.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() == "" {
			t.Errorf("%s constructs an unnamed algorithm", n)
		}
	}
}

func TestNewAttachesCollector(t *testing.T) {
	in := testInstance(t, 40)
	m := obs.NewMetrics()
	a, err := solver.New("greedy2", solver.Options{Workers: 1, Obs: m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(context.Background(), in, 2); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Counters[obs.CtrRounds]; got != 2 {
		t.Errorf("instrumented run recorded %d rounds, want 2", got)
	}
}

// cancelAfterRound is an obs.Collector that cancels a context once the given
// round's round_end event fires — the deterministic deadline used by the
// anytime-prefix tests below.
type cancelAfterRound struct {
	round  int
	cancel context.CancelFunc
}

func (cancelAfterRound) Count(string, int64)     {}
func (cancelAfterRound) TimeNS(string, int64)    {}
func (cancelAfterRound) Gauge(string, float64)   {}
func (cancelAfterRound) Observe(string, float64) {}
func (c cancelAfterRound) Emit(e obs.Event) {
	if e.Type == obs.EvRoundEnd && e.Round >= c.round {
		c.cancel()
	}
}

// TestCancellationPrefixEquivalence is the anytime contract of DESIGN.md §8:
// cancelling greedy 1–4 after round j yields exactly the first j centers of
// the uncancelled run, bit for bit, with ctx.Err() reported alongside and the
// cancellation recorded as telemetry.
func TestCancellationPrefixEquivalence(t *testing.T) {
	in := testInstance(t, 50)
	const k = 4
	for _, name := range solver.PaperNames() {
		t.Run(name, func(t *testing.T) {
			full, err := mustAlg(t, name, nil).Run(context.Background(), in, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(full.Centers) != k {
				t.Fatalf("uncancelled run selected %d centers, want %d", len(full.Centers), k)
			}
			for j := 1; j < k; j++ {
				m := obs.NewMetrics()
				ctx, cancel := context.WithCancel(context.Background())
				col := obs.Multi(m, cancelAfterRound{round: j, cancel: cancel})
				part, err := mustAlg(t, name, col).Run(ctx, in, k)
				cancel()
				if err != context.Canceled {
					t.Fatalf("j=%d: err = %v, want context.Canceled", j, err)
				}
				if part == nil {
					t.Fatalf("j=%d: cancelled run returned nil result", j)
				}
				if verr := part.Validate(); verr != nil {
					t.Fatalf("j=%d: partial result invalid: %v", j, verr)
				}
				if len(part.Centers) != j {
					t.Fatalf("j=%d: got %d centers, want exactly %d", j, len(part.Centers), j)
				}
				for r := 0; r < j; r++ {
					if part.Gains[r] != full.Gains[r] {
						t.Fatalf("j=%d round %d: gain %v != uncancelled %v", j, r, part.Gains[r], full.Gains[r])
					}
					for d, x := range part.Centers[r] {
						if x != full.Centers[r][d] {
							t.Fatalf("j=%d round %d dim %d: center %v != uncancelled %v",
								j, r, d, part.Centers[r], full.Centers[r])
						}
					}
				}
				snap := m.Snapshot()
				if snap.Counters[obs.CtrCancelled] != 1 {
					t.Errorf("j=%d: cancelled counter = %d, want 1", j, snap.Counters[obs.CtrCancelled])
				}
				found := false
				for _, e := range snap.Events {
					if e.Type == obs.EvCancelled {
						found = true
						if got := e.Fields["rounds"]; got != float64(j) {
							t.Errorf("j=%d: cancelled event reports %v rounds", j, got)
						}
					}
				}
				if !found {
					t.Errorf("j=%d: no %s event recorded", j, obs.EvCancelled)
				}
			}
		})
	}
}

// TestPreCancelledContext: a context that is already dead yields an empty
// (but valid) prefix and the context's error — never a nil-result panic.
func TestPreCancelledContext(t *testing.T) {
	in := testInstance(t, 30)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range solver.PaperNames() {
		res, err := mustAlg(t, name, nil).Run(ctx, in, 3)
		if err != context.Canceled {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if res == nil {
			t.Errorf("%s: nil result on pre-cancelled context", name)
			continue
		}
		if len(res.Centers) != 0 {
			t.Errorf("%s: pre-cancelled run committed %d centers", name, len(res.Centers))
		}
		if verr := res.Validate(); verr != nil {
			t.Errorf("%s: empty prefix invalid: %v", name, verr)
		}
	}
}

func mustAlg(t *testing.T, name string, col obs.Collector) core.Algorithm {
	t.Helper()
	a, err := solver.New(name, solver.Options{Workers: 1, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestWarmStartOption: Options.WarmStart wraps the cold solver in
// core.WarmStarted via the registry, so a strictly better carried-over
// center set wins while a worthless one leaves the cold result untouched.
func TestWarmStartOption(t *testing.T) {
	in := testInstance(t, 40)
	cold, err := solver.New("greedy3", solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := cold.Run(context.Background(), in, 1)
	if err != nil {
		t.Fatal(err)
	}
	warmC := obs.NewMetrics()
	warm, err := solver.New("greedy3", solver.Options{WarmStart: coldRes.Centers, Obs: warmC})
	if err != nil {
		t.Fatal(err)
	}
	res, err := warm.Run(context.Background(), in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < coldRes.Total {
		t.Fatalf("warm-started total %v < cold %v", res.Total, coldRes.Total)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if warmC.Snapshot().Counters[obs.CtrWarmStarts] != 1 {
		t.Error("warm start not counted — Options.WarmStart did not wrap")
	}
}

// TestShardedCompositeName: the registry's composable "sharded(<inner>)"
// form constructs the partition → shard-solve → merge pipeline, reports the
// composite name, and produces a valid result.
func TestShardedCompositeName(t *testing.T) {
	in := testInstance(t, 200)
	a, err := solver.New("sharded(greedy2-lazy)", solver.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Name(); got != "sharded(greedy2-lazy)" {
		t.Fatalf("Name() = %q", got)
	}
	res, err := a.Run(context.Background(), in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "sharded(greedy2-lazy)" {
		t.Errorf("result algorithm = %q", res.Algorithm)
	}
}

// TestShardsOptionWraps: Options.Shards > 1 on a plain name routes through
// the same pipeline; 0 and 1 stay single-shot.
func TestShardsOptionWraps(t *testing.T) {
	for shards, want := range map[int]string{
		0: "greedy2",
		1: "greedy2",
		4: "sharded(greedy2)",
	} {
		a, err := solver.New("greedy2", solver.Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != want {
			t.Errorf("Shards=%d: Name() = %q, want %q", shards, a.Name(), want)
		}
	}
	if _, err := solver.New("greedy2", solver.Options{Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
}

// TestShardedUnknownInner: a bad inner name inside the composite reports the
// standard sorted-catalog error, same as a bad plain name.
func TestShardedUnknownInner(t *testing.T) {
	_, err := solver.New("sharded(bogus)", solver.Options{})
	if err == nil {
		t.Fatal("sharded(bogus) accepted")
	}
	if !strings.Contains(err.Error(), `"bogus"`) || !strings.Contains(err.Error(), "greedy2") {
		t.Errorf("error %q does not report the catalog", err)
	}
	// Malformed composites fall through to plain lookup and fail there.
	for _, name := range []string{"sharded()", "sharded(", "sharded"} {
		if _, err := solver.New(name, solver.Options{}); err == nil {
			t.Errorf("New(%q) accepted", name)
		}
	}
}

// TestCheckMatchesNew: Check accepts exactly what New can construct, for
// plain and composite names — the serving layer relies on this agreement.
func TestCheckMatchesNew(t *testing.T) {
	for _, name := range append(solver.Names(), "sharded(greedy2)", "sharded(random)") {
		if err := solver.Check(name); err != nil {
			t.Errorf("Check(%q) = %v", name, err)
		}
		if _, err := solver.New(name, solver.Options{}); err != nil {
			t.Errorf("New(%q) = %v", name, err)
		}
	}
	for _, name := range []string{"bogus", "sharded(bogus)", "sharded()"} {
		if err := solver.Check(name); err == nil {
			t.Errorf("Check(%q) accepted", name)
		}
	}
}

// TestShardedObsCountsMergeRoundsOnly: with a collector attached, a sharded
// solve reports exactly k rounds (the merge's) — the inner per-shard solvers
// run uninstrumented so their rounds cannot pollute request accounting —
// while the shard.* counters expose the pipeline stages.
func TestShardedObsCountsMergeRoundsOnly(t *testing.T) {
	in := testInstance(t, 300)
	m := obs.NewMetrics()
	a, err := solver.New("greedy2-lazy", solver.Options{Shards: 4, Obs: m})
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	if _, err := a.Run(context.Background(), in, k); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if got := snap.Counters[obs.CtrRounds]; got != k {
		t.Errorf("rounds = %d, want %d", got, k)
	}
	if got := snap.Counters[obs.CtrShardParts]; got < 2 {
		t.Errorf("shard parts = %d, want >= 2", got)
	}
	if got := snap.Counters[obs.CtrShardSolves]; got != snap.Counters[obs.CtrShardParts] {
		t.Errorf("shard solves = %d, parts = %d", got, snap.Counters[obs.CtrShardParts])
	}
	if snap.Counters[obs.CtrShardCandidates] == 0 {
		t.Error("no shard candidates counted")
	}
}

// TestShardedCancellation: the composite honors the anytime contract — a
// dead context yields an empty valid prefix and the context error.
func TestShardedCancellation(t *testing.T) {
	in := testInstance(t, 100)
	a, err := solver.New("sharded(greedy2)", solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := a.Run(ctx, in, 3)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Centers) != 0 {
		t.Fatalf("res = %+v, want empty prefix", res)
	}
}

// TestShardedWarmStart: WarmStart wraps around the whole pipeline (once),
// so a carried-over center set can only improve the sharded result.
func TestShardedWarmStart(t *testing.T) {
	in := testInstance(t, 150)
	cold, err := solver.New("sharded(greedy2-lazy)", solver.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := cold.Run(context.Background(), in, 2)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := solver.New("sharded(greedy2-lazy)", solver.Options{Seed: 5, WarmStart: coldRes.Centers})
	if err != nil {
		t.Fatal(err)
	}
	res, err := warm.Run(context.Background(), in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < coldRes.Total {
		t.Fatalf("warm-started sharded total %v < cold %v", res.Total, coldRes.Total)
	}
}
