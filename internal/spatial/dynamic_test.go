package spatial

import (
	"math"
	"sort"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// dynBuilders enumerates the two inner-index backends under test.
var dynBuilders = []struct {
	name string
	mk   func(pts []vec.V, r float64) (*Dynamic, error)
}{
	{"grid", NewDynamicGrid},
	{"kdtree", NewDynamicKDTree},
}

// chebWithin returns the indices of pts within Chebyshev distance r of c, in
// ascending order — the set every conservative Near must contain.
func chebWithin(pts []vec.V, c vec.V, r float64) []int {
	var out []int
	for i, p := range pts {
		within := true
		for d := range p {
			if math.Abs(p[d]-c[d]) > r {
				within = false
				break
			}
		}
		if within {
			out = append(out, i)
		}
	}
	return out
}

// TestDynamicChurnConservative drives a random insert/remove sequence against
// a mirrored plain slice and checks after every mutation that Near (a) is
// sorted with no duplicates, (b) never returns a dead index, and (c) contains
// every live point within Chebyshev distance r — the conservativeness
// contract the reward evaluator's accelerated sums depend on.
func TestDynamicChurnConservative(t *testing.T) {
	for _, tb := range dynBuilders {
		t.Run(tb.name, func(t *testing.T) {
			rng := xrand.New(1234)
			const dim = 2
			r := 1.5
			mirror := randPoints(rng, 20, dim, 0, 10)
			d, err := tb.mk(mirror, r)
			if err != nil {
				t.Fatal(err)
			}
			for op := 0; op < 200; op++ {
				if rng.Bernoulli(0.55) || len(mirror) < 2 {
					p := randPoints(rng, 1, dim, 0, 10)[0]
					if err := d.Insert(p); err != nil {
						t.Fatalf("op %d: Insert: %v", op, err)
					}
					mirror = append(mirror, p)
				} else {
					i := rng.Intn(len(mirror))
					if err := d.RemoveSwap(i); err != nil {
						t.Fatalf("op %d: RemoveSwap(%d): %v", op, i, err)
					}
					last := len(mirror) - 1
					mirror[i] = mirror[last]
					mirror = mirror[:last]
				}
				if d.N() != len(mirror) {
					t.Fatalf("op %d: N = %d, mirror %d", op, d.N(), len(mirror))
				}
				for q := 0; q < 3; q++ {
					c := randPoints(rng, 1, dim, -1, 11)[0]
					got := d.Near(c)
					if !sort.IntsAreSorted(got) {
						t.Fatalf("op %d: Near not sorted: %v", op, got)
					}
					seen := map[int]bool{}
					for _, i := range got {
						if i < 0 || i >= len(mirror) {
							t.Fatalf("op %d: Near returned dead index %d (n=%d)", op, i, len(mirror))
						}
						if seen[i] {
							t.Fatalf("op %d: duplicate index %d in %v", op, i, got)
						}
						seen[i] = true
					}
					for _, i := range chebWithin(mirror, c, r) {
						if !seen[i] {
							t.Fatalf("op %d: Near missed in-window index %d (query %v)", op, i, c)
						}
					}
				}
			}
			if d.Rebuilds() < 2 {
				t.Errorf("200 mutations triggered only %d rebuilds", d.Rebuilds())
			}
		})
	}
}

// TestDynamicSwapRelabel pins the relabeling contract: after RemoveSwap(i)
// the old last index answers queries as index i, whether it was inner-backed
// or loose at the time.
func TestDynamicSwapRelabel(t *testing.T) {
	for _, tb := range dynBuilders {
		t.Run(tb.name, func(t *testing.T) {
			pts := []vec.V{vec.Of(0, 0), vec.Of(5, 5), vec.Of(10, 10)}
			d, err := tb.mk(pts, 1)
			if err != nil {
				t.Fatal(err)
			}
			// Inner-backed case: index 2 (10,10) moves into slot 0.
			if err := d.RemoveSwap(0); err != nil {
				t.Fatal(err)
			}
			if got := d.Near(vec.Of(10, 10)); len(got) != 1 || got[0] != 0 {
				t.Fatalf("after inner swap Near(10,10) = %v, want [0]", got)
			}
			if got := d.Near(vec.Of(0, 0)); len(got) != 0 {
				t.Fatalf("removed point still found: %v", got)
			}
			// Loose case: insert (20,20) as index 2, then swap it into slot 1.
			if err := d.Insert(vec.Of(20, 20)); err != nil {
				t.Fatal(err)
			}
			if err := d.RemoveSwap(1); err != nil {
				t.Fatal(err)
			}
			if got := d.Near(vec.Of(20, 20)); len(got) != 1 || got[0] != 1 {
				t.Fatalf("after loose swap Near(20,20) = %v, want [1]", got)
			}
			if got := d.Near(vec.Of(5, 5)); len(got) != 0 {
				t.Fatalf("removed point still found: %v", got)
			}
		})
	}
}

// TestDynamicRebuildPolicy checks the amortization contract: debt accumulates
// up to max(32, live/4) without a rebuild, then one mutation past the
// threshold rebuilds and resets the pending counts.
func TestDynamicRebuildPolicy(t *testing.T) {
	rng := xrand.New(9)
	pts := randPoints(rng, 4, 2, 0, 10)
	d, err := NewDynamicGrid(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rebuilds() != 1 {
		t.Fatalf("construction rebuilds = %d, want 1", d.Rebuilds())
	}
	for i := 0; i < dynamicRebuildMin; i++ {
		if err := d.Insert(randPoints(rng, 1, 2, 0, 10)[0]); err != nil {
			t.Fatal(err)
		}
	}
	if d.Rebuilds() != 1 {
		t.Fatalf("rebuild fired below threshold (rebuilds = %d)", d.Rebuilds())
	}
	if tomb, loose := d.Pending(); tomb != 0 || loose != dynamicRebuildMin {
		t.Fatalf("pending = %d/%d, want 0/%d", tomb, loose, dynamicRebuildMin)
	}
	// 4+32 = 36 live, slack still 32: one more mutation crosses the line.
	if err := d.Insert(randPoints(rng, 1, 2, 0, 10)[0]); err != nil {
		t.Fatal(err)
	}
	if d.Rebuilds() != 2 {
		t.Fatalf("rebuild did not fire past threshold (rebuilds = %d)", d.Rebuilds())
	}
	if tomb, loose := d.Pending(); tomb != 0 || loose != 0 {
		t.Fatalf("pending after rebuild = %d/%d, want 0/0", tomb, loose)
	}
}

func TestDynamicValidation(t *testing.T) {
	if _, err := NewDynamicGrid(nil, 1); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewDynamicKDTree([]vec.V{vec.Of(0, 0)}, -1); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := NewDynamicGrid([]vec.V{vec.Of(0, 0), vec.Of(1)}, 1); err == nil {
		t.Error("dim mismatch accepted")
	}
	d, err := NewDynamicGrid([]vec.V{vec.Of(0, 0), vec.Of(1, 1)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(vec.Of(1)); err == nil {
		t.Error("dim-mismatched insert accepted")
	}
	if err := d.Insert(vec.Of(math.NaN(), 0)); err == nil {
		t.Error("NaN insert accepted")
	}
	for _, i := range []int{-1, 2} {
		if err := d.RemoveSwap(i); err == nil {
			t.Errorf("RemoveSwap(%d) accepted", i)
		}
	}
	if err := d.RemoveSwap(0); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveSwap(0); err == nil {
		t.Error("removing the only point accepted")
	}
}

// TestDynamicNonFiniteQuery mirrors the static indexes: non-finite query
// coordinates return nil instead of leaking through the window tests.
func TestDynamicNonFiniteQuery(t *testing.T) {
	for _, tb := range dynBuilders {
		t.Run(tb.name, func(t *testing.T) {
			d, err := tb.mk([]vec.V{vec.Of(0, 0), vec.Of(1, 1)}, 1)
			if err != nil {
				t.Fatal(err)
			}
			// Push one point into the loose set so both lookup paths run.
			if err := d.Insert(vec.Of(2, 2)); err != nil {
				t.Fatal(err)
			}
			for _, c := range []vec.V{
				vec.Of(math.NaN(), 0),
				vec.Of(0, math.NaN()),
				vec.Of(math.Inf(1), 0),
				vec.Of(0, math.Inf(-1)),
				vec.Of(1, 2, 3),
			} {
				if got := d.Near(c); got != nil {
					t.Errorf("Near(%v) = %v, want nil", c, got)
				}
			}
		})
	}
}
