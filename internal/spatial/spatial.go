// Package spatial provides a uniform-grid neighbor index over a point set.
// Coverage queries in the reward model only involve points within distance r
// of a center; bucketing points into cells of side r lets the evaluator
// visit the O(3^m) neighboring cells instead of all n points, which is the
// difference between O(n) and O(points-in-range) per gain evaluation at
// large n.
//
// The index is conservative for every p-norm with p ≥ 1: it returns all
// points within Chebyshev (∞-norm) distance r of the query, and
// ‖x‖_∞ ≤ ‖x‖_p for all p ≥ 1, so any point within p-norm distance r is
// always returned (plus some extras the evaluator filters naturally, since
// their coverage is zero).
package spatial

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/vec"
)

// Grid is an immutable uniform-cell index over a fixed point set.
type Grid struct {
	cell    float64
	dim     int
	origin  vec.V
	extents []int         // cells per dimension
	buckets map[int][]int // flattened cell id -> point indices
	n       int
}

// NewGrid indexes the points with cells of side equal to radius. It returns
// an error for an empty set, inconsistent dimensions, or a non-positive
// radius.
func NewGrid(points []vec.V, radius float64) (*Grid, error) {
	if len(points) == 0 {
		return nil, errors.New("spatial: empty point set")
	}
	if radius <= 0 || math.IsNaN(radius) || math.IsInf(radius, 0) {
		return nil, fmt.Errorf("spatial: invalid radius %v", radius)
	}
	dim := points[0].Dim()
	lo, hi, err := vec.Bounds(points)
	if err != nil {
		return nil, err
	}
	g := &Grid{cell: radius, dim: dim, origin: lo, n: len(points)}
	g.extents = make([]int, dim)
	for d := 0; d < dim; d++ {
		g.extents[d] = int((hi[d]-lo[d])/radius) + 1
	}
	g.buckets = make(map[int][]int)
	for i, p := range points {
		if p.Dim() != dim {
			return nil, vec.ErrDimMismatch
		}
		id := g.cellID(g.coords(p))
		g.buckets[id] = append(g.buckets[id], i)
	}
	return g, nil
}

// N reports the number of indexed points.
func (g *Grid) N() int { return g.n }

// coords maps a point to integer cell coordinates (clamped to the grid).
func (g *Grid) coords(p vec.V) []int {
	c := make([]int, g.dim)
	for d := 0; d < g.dim; d++ {
		v := int(math.Floor((p[d] - g.origin[d]) / g.cell))
		if v < 0 {
			v = 0
		}
		if v >= g.extents[d] {
			v = g.extents[d] - 1
		}
		c[d] = v
	}
	return c
}

// cellID flattens cell coordinates to a single bucket key.
func (g *Grid) cellID(c []int) int {
	id := 0
	for d := 0; d < g.dim; d++ {
		id = id*g.extents[d] + c[d]
	}
	return id
}

// Near returns the indices of every point within Chebyshev distance
// g.cell (= the indexing radius) of c, possibly with extras from the
// bordering cells. Buckets are visited in cell order, so the result is not
// globally sorted; the reward evaluator sorts it before summing so that the
// accelerated sum is bit-identical to the full scan (IEEE addition of the
// skipped zero terms is exact).
func (g *Grid) Near(c vec.V) []int {
	if c.Dim() != g.dim {
		return nil
	}
	// The query point may lie outside the indexed bounding box; compute
	// unclamped coordinates to pick the right neighbor window, and bail
	// out when the window misses the grid entirely on some axis.
	lo := make([]int, g.dim)
	hi := make([]int, g.dim)
	for d := 0; d < g.dim; d++ {
		raw := int(math.Floor((c[d] - g.origin[d]) / g.cell))
		lo[d] = raw - 1
		hi[d] = raw + 1
		if lo[d] < 0 {
			lo[d] = 0
		}
		if hi[d] >= g.extents[d] {
			hi[d] = g.extents[d] - 1
		}
		if lo[d] > hi[d] { // fully outside the grid on this axis
			return nil
		}
	}
	var out []int
	cur := make([]int, g.dim)
	copy(cur, lo)
	for {
		if bucket, ok := g.buckets[g.cellID(cur)]; ok {
			out = append(out, bucket...)
		}
		// Odometer over [lo, hi].
		d := g.dim - 1
		for ; d >= 0; d-- {
			cur[d]++
			if cur[d] <= hi[d] {
				break
			}
			cur[d] = lo[d]
		}
		if d < 0 {
			return out
		}
	}
}
