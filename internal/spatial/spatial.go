// Package spatial provides a uniform-grid neighbor index over a point set.
// Coverage queries in the reward model only involve points within distance r
// of a center; bucketing points into cells of side r lets the evaluator
// visit the O(3^m) neighboring cells instead of all n points, which is the
// difference between O(n) and O(points-in-range) per gain evaluation at
// large n.
//
// The index is conservative for every p-norm with p ≥ 1: it returns all
// points within Chebyshev (∞-norm) distance r of the query, and
// ‖x‖_∞ ≤ ‖x‖_p for all p ≥ 1, so any point within p-norm distance r is
// always returned (plus some extras the evaluator filters naturally, since
// their coverage is zero).
package spatial

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/vec"
)

// maxExtent caps the per-dimension cell count. Go's float→int conversion is
// implementation-defined for out-of-range values (spec §Conversions), so
// every cell-coordinate computation clamps in float space first; the cap
// (a power of two, hence exact as a float64) keeps clamped coordinates
// safely inside int64 range. A dimension whose true cell count exceeds the
// cap is marked clamped: far cells collapse onto the boundary cell, which
// stays conservative (extras only) as long as Near treats beyond-the-cap
// queries as hitting that boundary cell.
const maxExtent = 1 << 62

// Grid is an immutable uniform-cell index over a fixed point set.
type Grid struct {
	cell    float64
	dim     int
	origin  vec.V
	extents []int  // cells per dimension (capped at maxExtent)
	clamped []bool // true: this dimension's true cell count exceeded maxExtent
	n       int

	// Exactly one bucket map is used. Flattened int ids require
	// Π extents[d] to fit in an int; when it cannot, ids would alias
	// silently and bloat buckets, so the grid falls back to string keys.
	buckets  map[int][]int    // flattened cell id -> point indices
	hbuckets map[string][]int // joined cell coords -> point indices
}

// NewGrid indexes the points with cells of side equal to radius. It returns
// an error for an empty set, inconsistent dimensions, or a non-positive
// radius.
func NewGrid(points []vec.V, radius float64) (*Grid, error) {
	if len(points) == 0 {
		return nil, errors.New("spatial: empty point set")
	}
	if radius <= 0 || math.IsNaN(radius) || math.IsInf(radius, 0) {
		return nil, fmt.Errorf("spatial: invalid radius %v", radius)
	}
	dim := points[0].Dim()
	lo, hi, err := vec.Bounds(points)
	if err != nil {
		return nil, err
	}
	g := &Grid{cell: radius, dim: dim, origin: lo, n: len(points)}
	g.extents = make([]int, dim)
	g.clamped = make([]bool, dim)
	hashed := false
	idSpace := 1
	for d := 0; d < dim; d++ {
		ext := math.Floor((hi[d]-lo[d])/radius) + 1
		if !(ext >= 1) { // degenerate span; NaN cannot occur (finite bounds)
			ext = 1
		}
		if ext > maxExtent {
			// A bounding box this huge relative to r cannot enumerate
			// its cells in an int; collapse the far cells onto the
			// boundary cell and switch to hashed bucket keys.
			ext = maxExtent
			g.clamped[d] = true
			hashed = true
		}
		g.extents[d] = int(ext)
		if !hashed {
			if idSpace > math.MaxInt/g.extents[d] {
				// Π extents[d] overflows: flattened ids would alias.
				hashed = true
			} else {
				idSpace *= g.extents[d]
			}
		}
	}
	if hashed {
		g.hbuckets = make(map[string][]int)
	} else {
		g.buckets = make(map[int][]int)
	}
	var key []byte
	for i, p := range points {
		if p.Dim() != dim {
			return nil, vec.ErrDimMismatch
		}
		c := g.coords(p)
		if hashed {
			key = appendCellKey(key[:0], c)
			g.hbuckets[string(key)] = append(g.hbuckets[string(key)], i)
		} else {
			id := g.cellID(c)
			g.buckets[id] = append(g.buckets[id], i)
		}
	}
	return g, nil
}

// N reports the number of indexed points.
func (g *Grid) N() int { return g.n }

// coords maps a point to integer cell coordinates (clamped to the grid).
// The clamp happens on the float value, before the int conversion, so even
// extreme coordinates (possible when a dimension is clamped) convert
// in-range.
func (g *Grid) coords(p vec.V) []int {
	c := make([]int, g.dim)
	for d := 0; d < g.dim; d++ {
		f := math.Floor((p[d] - g.origin[d]) / g.cell)
		if !(f > 0) { // also catches NaN from a malformed point
			f = 0
		}
		// Two-stage clamp: the float-space clamp makes the int conversion
		// defined, but float64(extents-1) can round up to extents at large
		// magnitudes, so the exact bound is re-applied in int space.
		if max := float64(g.extents[d]); f > max {
			f = max
		}
		v := int(f)
		if v >= g.extents[d] {
			v = g.extents[d] - 1
		}
		c[d] = v
	}
	return c
}

// cellID flattens cell coordinates to a single bucket key (int-keyed grids
// only; NewGrid guarantees the product of extents fits).
func (g *Grid) cellID(c []int) int {
	id := 0
	for d := 0; d < g.dim; d++ {
		id = id*g.extents[d] + c[d]
	}
	return id
}

// appendCellKey renders cell coordinates as a compact string key for the
// hashed-bucket fallback.
func appendCellKey(b []byte, c []int) []byte {
	for d, v := range c {
		if d > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return b
}

// bucket returns the point indices stored for the given cell coordinates.
func (g *Grid) bucket(key []byte, c []int) ([]int, []byte) {
	if g.hbuckets != nil {
		key = appendCellKey(key[:0], c)
		return g.hbuckets[string(key)], key
	}
	return g.buckets[g.cellID(c)], key
}

// Cell is one occupied cell of the grid: its integer cell coordinates
// (relative to the grid origin, cell side = the indexing radius) and the
// indices of the points bucketed there.
type Cell struct {
	Coord  []int
	Points []int
}

// Cells returns every occupied cell sorted lexicographically by coordinates,
// so the enumeration order is a deterministic row-major spatial sweep
// regardless of map iteration order. The Points slices alias the grid's
// internal buckets and must be treated as read-only. The spatial partitioner
// consumes this to split a point set into contiguous balanced shards.
func (g *Grid) Cells() []Cell {
	var out []Cell
	if g.hbuckets != nil {
		for k, pts := range g.hbuckets {
			out = append(out, Cell{Coord: parseCellKey(k, g.dim), Points: pts})
		}
	} else {
		for id, pts := range g.buckets {
			out = append(out, Cell{Coord: g.cellCoords(id), Points: pts})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		ca, cb := out[a].Coord, out[b].Coord
		for d := range ca {
			if ca[d] != cb[d] {
				return ca[d] < cb[d]
			}
		}
		return false
	})
	return out
}

// CellPoints returns the indices bucketed at the given cell coordinates (nil
// for an empty or out-of-range cell). The returned slice aliases the grid's
// internal bucket and must be treated as read-only.
func (g *Grid) CellPoints(coord []int) []int {
	if len(coord) != g.dim {
		return nil
	}
	for d, c := range coord {
		if c < 0 || c >= g.extents[d] {
			return nil
		}
	}
	b, _ := g.bucket(nil, coord)
	return b
}

// cellCoords inverts cellID: the flattened bucket key back to per-dimension
// cell coordinates (int-keyed grids only).
func (g *Grid) cellCoords(id int) []int {
	c := make([]int, g.dim)
	for d := g.dim - 1; d >= 0; d-- {
		c[d] = id % g.extents[d]
		id /= g.extents[d]
	}
	return c
}

// parseCellKey inverts appendCellKey for the hashed-bucket fallback.
func parseCellKey(k string, dim int) []int {
	c := make([]int, 0, dim)
	for _, part := range strings.Split(k, ",") {
		v, _ := strconv.ParseInt(part, 10, 64)
		c = append(c, int(v))
	}
	return c
}

// Near returns the indices of every point within Chebyshev distance
// g.cell (= the indexing radius) of c, possibly with extras from the
// bordering cells. Buckets are visited in cell order, so the result is not
// globally sorted; the reward evaluator sorts it before summing so that the
// accelerated sum is bit-identical to the full scan (IEEE addition of the
// skipped zero terms is exact).
//
// Queries far outside the indexed bounding box, and queries with NaN or ±Inf
// coordinates, safely return nil: the window test runs on the raw float cell
// coordinate, clamped into int range before any float→int conversion (which
// is implementation-defined for out-of-range values, Go spec §Conversions).
func (g *Grid) Near(c vec.V) []int {
	if c.Dim() != g.dim {
		return nil
	}
	// The query point may lie outside the indexed bounding box; compute
	// unclamped coordinates to pick the right neighbor window, and bail
	// out when the window misses the grid entirely on some axis.
	lo := make([]int, g.dim)
	hi := make([]int, g.dim)
	for d := 0; d < g.dim; d++ {
		f := math.Floor((c[d] - g.origin[d]) / g.cell)
		if math.IsNaN(f) || f < -1 {
			// NaN coordinate, or at least one whole empty cell below
			// the grid: no indexed point can be within range.
			return nil
		}
		ext := float64(g.extents[d])
		if f > ext {
			if !g.clamped[d] {
				// At least one whole empty cell beyond the grid.
				return nil
			}
			// Clamped dimension: cells beyond the cap collapsed onto
			// the boundary cell at indexing time, so a far query must
			// still visit it (conservative; extras are filtered by
			// the evaluator).
			f = ext
		}
		raw := int(f) // f ∈ [-1, extents[d]]: conversion is exact and in range
		lo[d] = raw - 1
		hi[d] = raw + 1
		if lo[d] < 0 {
			lo[d] = 0
		}
		if hi[d] >= g.extents[d] {
			hi[d] = g.extents[d] - 1
		}
		if lo[d] > hi[d] { // fully outside the grid on this axis
			return nil
		}
	}
	var out []int
	var key []byte
	cur := make([]int, g.dim)
	copy(cur, lo)
	for {
		var b []int
		b, key = g.bucket(key, cur)
		out = append(out, b...)
		// Odometer over [lo, hi].
		d := g.dim - 1
		for ; d >= 0; d-- {
			cur[d]++
			if cur[d] <= hi[d] {
				break
			}
			cur[d] = lo[d]
		}
		if d < 0 {
			return out
		}
	}
}
