package spatial

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/vec"
)

// Index is the query surface shared by Grid and KDTree: a conservative
// radius-r candidate lookup over a fixed point set.
type Index interface {
	Near(c vec.V) []int
	N() int
}

// Dynamic maintains an Index under population churn. The inner index (a
// Grid or KDTree, chosen at construction) is rebuilt only occasionally;
// between rebuilds, removals tombstone their inner position and insertions
// go to a small "loose" set scanned linearly per query. Near stays
// conservative throughout: every live point within Chebyshev distance r of
// the query is returned (tombstoned positions are filtered, loose points are
// window-tested directly).
//
// Mutations use the same swap-with-last relabeling as pointset.Set, so a
// Dynamic installed on a reward.Instance stays index-aligned with the Set
// across reward.Evaluator.AddUser/RemoveUser deltas.
//
// Rebuild policy: once tombstones + loose points exceed
// max(dynamicRebuildMin, live/4), the next mutation rebuilds the inner index
// over the live population. A rebuild costs one full index construction and
// is triggered at most once per Ω(live) mutations, so maintenance is
// amortized O(cost(build)/live) per delta — and queries never degrade past a
// bounded loose scan.
type Dynamic struct {
	radius float64
	dim    int
	build  func(points []vec.V, radius float64) (Index, error)

	slots    []dynSlot        // slot i ↔ point index i (aligned with the Set)
	inner    Index            // over the population as of the last rebuild
	idxOfPos []int            // inner position → current index; −1 = tombstone
	loose    map[int]struct{} // indices not represented in inner
	dead     int              // tombstoned inner positions
	rebuilds int
}

// dynSlot records where index i's point lives: its coordinates and its
// position in the inner index (−1 when loose).
type dynSlot struct {
	p   vec.V
	pos int
}

// dynamicRebuildMin is the slack floor: small populations tolerate this many
// pending mutations before a rebuild regardless of the live/4 rule.
const dynamicRebuildMin = 32

// NewDynamicGrid builds a Dynamic backed by the uniform grid. The same
// validation rules as NewGrid apply.
func NewDynamicGrid(points []vec.V, radius float64) (*Dynamic, error) {
	return newDynamic(points, radius, func(pts []vec.V, r float64) (Index, error) {
		return NewGrid(pts, r)
	})
}

// NewDynamicKDTree builds a Dynamic backed by the k-d tree. The same
// validation rules as NewKDTree apply.
func NewDynamicKDTree(points []vec.V, radius float64) (*Dynamic, error) {
	return newDynamic(points, radius, func(pts []vec.V, r float64) (Index, error) {
		return NewKDTree(pts, r)
	})
}

func newDynamic(points []vec.V, radius float64, build func([]vec.V, float64) (Index, error)) (*Dynamic, error) {
	if len(points) == 0 {
		return nil, errors.New("spatial: empty point set")
	}
	dim := points[0].Dim()
	for _, p := range points {
		if p.Dim() != dim {
			return nil, vec.ErrDimMismatch
		}
	}
	d := &Dynamic{radius: radius, dim: dim, build: build, loose: map[int]struct{}{}}
	d.slots = make([]dynSlot, len(points))
	for i, p := range points {
		d.slots[i] = dynSlot{p: p.Clone(), pos: -1}
	}
	if err := d.rebuild(); err != nil {
		return nil, err
	}
	return d, nil
}

// N reports the number of live indexed points.
func (d *Dynamic) N() int { return len(d.slots) }

// Rebuilds reports how many inner-index rebuilds have run (including the
// one at construction); the churn loop surfaces it as a maintenance stat.
func (d *Dynamic) Rebuilds() int { return d.rebuilds }

// Pending reports the maintenance debt: tombstoned inner positions and
// loose (linearly scanned) points.
func (d *Dynamic) Pending() (tombstones, loose int) { return d.dead, len(d.loose) }

// Insert indexes one new point at index N (matching pointset.Set.Append).
// The point lands in the loose set; an over-threshold debt triggers a
// rebuild.
func (d *Dynamic) Insert(p vec.V) error {
	if p.Dim() != d.dim {
		return fmt.Errorf("spatial: point dim %d != index dim %d", p.Dim(), d.dim)
	}
	if !p.IsFinite() {
		return errors.New("spatial: point has non-finite coordinates")
	}
	i := len(d.slots)
	d.slots = append(d.slots, dynSlot{p: p.Clone(), pos: -1})
	d.loose[i] = struct{}{}
	return d.maybeRebuild()
}

// RemoveSwap deletes index i with swap-with-last relabeling (matching
// pointset.Set.RemoveSwap): the last index moves into slot i. Removing the
// only point is an error — the index, like the Set, is never empty.
func (d *Dynamic) RemoveSwap(i int) error {
	n := len(d.slots)
	if i < 0 || i >= n {
		return fmt.Errorf("spatial: index %d out of range [0,%d)", i, n)
	}
	if n == 1 {
		return errors.New("spatial: cannot remove the only point")
	}
	d.drop(i)
	last := n - 1
	if i != last {
		d.slots[i] = d.slots[last]
		if pos := d.slots[i].pos; pos >= 0 {
			d.idxOfPos[pos] = i
		} else {
			delete(d.loose, last)
			d.loose[i] = struct{}{}
		}
	}
	d.slots[last] = dynSlot{}
	d.slots = d.slots[:last]
	return d.maybeRebuild()
}

// drop detaches slot i's point from the query structures.
func (d *Dynamic) drop(i int) {
	if pos := d.slots[i].pos; pos >= 0 {
		d.idxOfPos[pos] = -1
		d.dead++
	} else {
		delete(d.loose, i)
	}
}

// maybeRebuild rebuilds the inner index when the maintenance debt crosses
// the amortization threshold.
func (d *Dynamic) maybeRebuild() error {
	slack := len(d.slots) / 4
	if slack < dynamicRebuildMin {
		slack = dynamicRebuildMin
	}
	if d.dead+len(d.loose) <= slack {
		return nil
	}
	return d.rebuild()
}

// rebuild reconstructs the inner index over the live population; every slot
// becomes inner-backed at position == index and the debt resets.
func (d *Dynamic) rebuild() error {
	pts := make([]vec.V, len(d.slots))
	for i := range d.slots {
		pts[i] = d.slots[i].p
	}
	inner, err := d.build(pts, d.radius)
	if err != nil {
		return err
	}
	d.inner = inner
	d.idxOfPos = make([]int, len(d.slots))
	for i := range d.slots {
		d.slots[i].pos = i
		d.idxOfPos[i] = i
	}
	d.loose = map[int]struct{}{}
	d.dead = 0
	d.rebuilds++
	return nil
}

// Near returns the indices of every live point within Chebyshev distance r
// of c (a conservative superset for every p-norm with p ≥ 1, exactly like
// Grid.Near and KDTree.Near), in ascending index order. Tombstoned inner
// hits are filtered; loose points are window-tested directly. Non-finite
// query coordinates safely return nil, mirroring the static indexes.
func (d *Dynamic) Near(c vec.V) []int {
	if c.Dim() != d.dim {
		return nil
	}
	for _, x := range c {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil
		}
	}
	var out []int
	for _, pos := range d.inner.Near(c) {
		if idx := d.idxOfPos[pos]; idx >= 0 {
			out = append(out, idx)
		}
	}
	for i := range d.loose {
		p := d.slots[i].p
		within := true
		for dd := 0; dd < d.dim; dd++ {
			if diff := math.Abs(p[dd] - c[dd]); diff > d.radius {
				within = false
				break
			}
		}
		if within {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
