package spatial

import (
	"math"
	"sort"
	"testing"

	"repro/internal/norm"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestNewKDTreeValidation(t *testing.T) {
	if _, err := NewKDTree(nil, 1); err == nil {
		t.Error("empty set accepted")
	}
	pts := []vec.V{vec.Of(0, 0)}
	for _, r := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewKDTree(pts, r); err == nil {
			t.Errorf("radius %v accepted", r)
		}
	}
	if _, err := NewKDTree([]vec.V{vec.Of(0, 0), vec.Of(1)}, 1); err == nil {
		t.Error("dim mismatch accepted")
	}
	tree, err := NewKDTree(pts, 1)
	if err != nil || tree.N() != 1 {
		t.Fatalf("valid tree rejected: %v", err)
	}
}

// KDTree.Near must return exactly the Chebyshev-ball membership set — the
// same semantics Grid.Near is conservative toward — so compare against a
// brute-force Chebyshev scan, and check conservativeness for all p-norms.
func TestKDTreeNearExactChebyshev(t *testing.T) {
	rng := xrand.New(71)
	linf := norm.LInf{}
	for trial := 0; trial < 100; trial++ {
		dim := rng.IntRange(1, 4)
		n := rng.IntRange(1, 80)
		r := rng.Uniform(0.2, 2)
		pts := randPoints(rng, n, dim, 0, 4)
		tree, err := NewKDTree(pts, r)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 10; q++ {
			c := vec.New(dim)
			for d := range c {
				c[d] = rng.Uniform(-1, 5)
			}
			got := tree.Near(c)
			sort.Ints(got)
			var want []int
			for i, p := range pts {
				if linf.Dist(c, p) <= r {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: |Near| = %d, want %d", trial, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: Near = %v, want %v", trial, got, want)
				}
			}
		}
	}
}

// Grid and KDTree must agree on the points they are both required to return
// (the within-radius set under any p-norm).
func TestKDTreeAgreesWithGridConservatively(t *testing.T) {
	rng := xrand.New(73)
	l2 := norm.L2{}
	for trial := 0; trial < 50; trial++ {
		n := rng.IntRange(2, 60)
		r := rng.Uniform(0.3, 1.5)
		pts := randPoints(rng, n, 2, 0, 4)
		tree, err := NewKDTree(pts, r)
		if err != nil {
			t.Fatal(err)
		}
		grid, err := NewGrid(pts, r)
		if err != nil {
			t.Fatal(err)
		}
		c := vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		inTree := map[int]bool{}
		for _, i := range tree.Near(c) {
			inTree[i] = true
		}
		inGrid := map[int]bool{}
		for _, i := range grid.Near(c) {
			inGrid[i] = true
		}
		for i, p := range pts {
			if l2.Dist(c, p) <= r {
				if !inTree[i] || !inGrid[i] {
					t.Fatalf("trial %d: point %d within r missing (tree %v grid %v)", trial, i, inTree[i], inGrid[i])
				}
			}
		}
	}
}

func TestKDTreeFarQuery(t *testing.T) {
	tree, err := NewKDTree([]vec.V{vec.Of(0, 0), vec.Of(1, 1)}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Near(vec.Of(50, 50)); len(got) != 0 {
		t.Errorf("far query returned %v", got)
	}
	if got := tree.Near(vec.Of(1, 2, 3)); got != nil {
		t.Errorf("dim mismatch returned %v", got)
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	pts := []vec.V{vec.Of(1, 1), vec.Of(1, 1), vec.Of(1, 1), vec.Of(3, 3)}
	tree, err := NewKDTree(pts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got := tree.Near(vec.Of(1, 1))
	if len(got) != 3 {
		t.Fatalf("Near = %v, want the three duplicates", got)
	}
}

func BenchmarkKDTreeNear_N10000_R1(b *testing.B) {
	rng := xrand.New(4)
	pts := randPoints(rng, 10000, 2, 0, 100)
	tree, err := NewKDTree(pts, 1)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]vec.V, 256)
	for i := range queries {
		queries[i] = vec.Of(rng.Uniform(0, 100), rng.Uniform(0, 100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tree.Near(queries[i%len(queries)])
	}
}

// Regression: a NaN-coordinate query used to return the root as a bogus
// candidate — NaN comparisons are all false, so the recursive descent pruned
// both subtrees everywhere while the root's |Δ| > r box test also failed to
// exclude it. Non-finite queries must return nil, exactly like Grid.Near.
func TestKDTreeNonFiniteQuery(t *testing.T) {
	tree, err := NewKDTree([]vec.V{vec.Of(0, 0), vec.Of(1, 1), vec.Of(2, 2)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []vec.V{
		vec.Of(math.NaN(), 0),
		vec.Of(0, math.NaN()),
		vec.Of(math.NaN(), math.NaN()),
		vec.Of(math.Inf(1), 0),
		vec.Of(0, math.Inf(-1)),
	} {
		if got := tree.Near(c); got != nil {
			t.Errorf("Near(%v) = %v, want nil", c, got)
		}
	}
}
