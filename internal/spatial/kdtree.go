package spatial

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/vec"
)

// KDTree is a static k-d tree over a fixed point set, offering the same
// conservative Near queries as Grid (all points within Chebyshev distance r
// of the query). It trades Grid's O(1) bucket math for robustness to highly
// non-uniform point densities, where a uniform grid degenerates into a few
// overfull cells.
type KDTree struct {
	radius float64
	dim    int
	nodes  []kdNode
	root   int
	n      int
}

type kdNode struct {
	point       vec.V
	index       int
	axis        int
	left, right int // node indices; -1 = leaf edge
}

// NewKDTree builds a balanced k-d tree (median splits) indexing the points
// for radius-r queries. The same validation rules as NewGrid apply.
func NewKDTree(points []vec.V, radius float64) (*KDTree, error) {
	if len(points) == 0 {
		return nil, errors.New("spatial: empty point set")
	}
	if radius <= 0 || math.IsNaN(radius) || math.IsInf(radius, 0) {
		return nil, fmt.Errorf("spatial: invalid radius %v", radius)
	}
	dim := points[0].Dim()
	for _, p := range points {
		if p.Dim() != dim {
			return nil, vec.ErrDimMismatch
		}
	}
	t := &KDTree{radius: radius, dim: dim, n: len(points)}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	t.nodes = make([]kdNode, 0, len(points))
	t.root = t.build(points, idx, 0)
	return t, nil
}

// build recursively constructs the subtree over idx, returning the node
// index (or −1 for an empty span).
func (t *KDTree) build(points []vec.V, idx []int, depth int) int {
	if len(idx) == 0 {
		return -1
	}
	axis := depth % t.dim
	sort.SliceStable(idx, func(a, b int) bool {
		return points[idx[a]][axis] < points[idx[b]][axis]
	})
	mid := len(idx) / 2
	node := kdNode{point: points[idx[mid]], index: idx[mid], axis: axis}
	pos := len(t.nodes)
	t.nodes = append(t.nodes, node)
	left := t.build(points, idx[:mid], depth+1)
	right := t.build(points, idx[mid+1:], depth+1)
	t.nodes[pos].left = left
	t.nodes[pos].right = right
	return pos
}

// N reports the number of indexed points.
func (t *KDTree) N() int { return t.n }

// Near returns the indices of every point within Chebyshev distance
// t.radius of c (a conservative superset for every p-norm with p ≥ 1,
// exactly like Grid.Near).
//
// Queries with NaN or ±Inf coordinates safely return nil, mirroring
// Grid.Near: no finite indexed point lies within a finite radius of a
// non-finite coordinate. Without the guard the recursive descent compares
// raw coordinates, and NaN comparisons (all false) both prune every subtree
// and pass the box test at the root, returning a bogus candidate.
func (t *KDTree) Near(c vec.V) []int {
	if c.Dim() != t.dim {
		return nil
	}
	for _, x := range c {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil
		}
	}
	var out []int
	t.query(t.root, c, &out)
	return out
}

func (t *KDTree) query(ni int, c vec.V, out *[]int) {
	if ni < 0 {
		return
	}
	node := &t.nodes[ni]
	// Chebyshev box test: inside iff every |Δd| <= radius.
	inside := true
	for d := 0; d < t.dim; d++ {
		if math.Abs(node.point[d]-c[d]) > t.radius {
			inside = false
			break
		}
	}
	if inside {
		*out = append(*out, node.index)
	}
	delta := c[node.axis] - node.point[node.axis]
	if delta <= t.radius {
		t.query(node.left, c, out)
	}
	if delta >= -t.radius {
		t.query(node.right, c, out)
	}
}
