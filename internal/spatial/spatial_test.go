package spatial

import (
	"math"
	"sort"
	"testing"

	"repro/internal/norm"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func randPoints(rng *xrand.Rand, n, dim int, lo, hi float64) []vec.V {
	pts := make([]vec.V, n)
	for i := range pts {
		p := vec.New(dim)
		for d := range p {
			p[d] = rng.Uniform(lo, hi)
		}
		pts[i] = p
	}
	return pts
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(nil, 1); err == nil {
		t.Error("empty set accepted")
	}
	pts := []vec.V{vec.Of(0, 0)}
	for _, r := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewGrid(pts, r); err == nil {
			t.Errorf("radius %v accepted", r)
		}
	}
	if _, err := NewGrid([]vec.V{vec.Of(0, 0), vec.Of(1)}, 1); err == nil {
		t.Error("dim mismatch accepted")
	}
	g, err := NewGrid(pts, 1)
	if err != nil || g.N() != 1 {
		t.Fatalf("valid grid rejected: %v", err)
	}
}

// Property: Near is a superset of the exact within-radius set for every
// p-norm, at interior, boundary, and exterior query points.
func TestNearIsConservative(t *testing.T) {
	rng := xrand.New(7)
	norms := []norm.Norm{norm.L1{}, norm.L2{}, norm.LInf{}, norm.LP{Exp: 3}}
	for trial := 0; trial < 100; trial++ {
		dim := rng.IntRange(1, 4)
		n := rng.IntRange(1, 60)
		r := rng.Uniform(0.2, 2)
		pts := randPoints(rng, n, dim, 0, 4)
		g, err := NewGrid(pts, r)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 10; q++ {
			c := vec.New(dim)
			for d := range c {
				c[d] = rng.Uniform(-2, 6) // include exterior queries
			}
			got := g.Near(c)
			in := map[int]bool{}
			for _, i := range got {
				in[i] = true
			}
			for _, nm := range norms {
				for i, p := range pts {
					if nm.Dist(c, p) <= r && !in[i] {
						t.Fatalf("trial %d: %s: point %d at dist %v <= r=%v missing from Near",
							trial, nm.Name(), i, nm.Dist(c, p), r)
					}
				}
			}
		}
	}
}

func TestNearNoDuplicates(t *testing.T) {
	rng := xrand.New(11)
	pts := randPoints(rng, 200, 2, 0, 4)
	g, err := NewGrid(pts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 50; q++ {
		c := vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		got := g.Near(c)
		sort.Ints(got)
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				t.Fatalf("duplicate index %d in Near result", got[i])
			}
		}
	}
}

func TestNearPrunes(t *testing.T) {
	// Points spread widely with a small radius: a query must return far
	// fewer candidates than n.
	rng := xrand.New(13)
	pts := randPoints(rng, 1000, 2, 0, 100)
	g, err := NewGrid(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for q := 0; q < 20; q++ {
		c := vec.Of(rng.Uniform(0, 100), rng.Uniform(0, 100))
		total += len(g.Near(c))
	}
	if avg := float64(total) / 20; avg > 50 {
		t.Errorf("average Near size %v — index not pruning", avg)
	}
}

func TestNearFarOutsideReturnsNil(t *testing.T) {
	pts := []vec.V{vec.Of(0, 0), vec.Of(1, 1)}
	g, err := NewGrid(pts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Near(vec.Of(50, 50)); got != nil {
		t.Errorf("far query returned %v", got)
	}
	if got := g.Near(vec.Of(1, 2, 3)); got != nil {
		t.Errorf("dim-mismatched query returned %v", got)
	}
}

// Regression: converting an out-of-int-range float cell coordinate with
// int(...) is implementation-defined in Go (spec §Conversions); before the
// float-space clamp, queries at ±1e300, NaN, or ±Inf produced a garbage
// neighbor window instead of a clean miss.
func TestNearNonFiniteAndHugeQueries(t *testing.T) {
	rng := xrand.New(17)
	pts := randPoints(rng, 50, 2, 0, 4)
	g, err := NewGrid(pts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bad := []float64{1e300, -1e300, math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, x := range bad {
		for _, q := range []vec.V{vec.Of(x, 2), vec.Of(2, x), vec.Of(x, x)} {
			if got := g.Near(q); got != nil {
				t.Errorf("Near(%v) = %v, want nil", q, got)
			}
		}
	}
	// Sanity: a legitimate interior query still works after the clamp.
	if got := g.Near(pts[0]); len(got) == 0 {
		t.Error("interior query returned nothing")
	}
}

// Regression: a bounding box huge relative to r used to overflow the
// flattened cell id (id = id*extents[d] + c[d] in int), silently aliasing
// cells. The grid must detect that regime, fall back to hashed bucket keys,
// and stay conservative.
func TestNewGridExtremeExtents(t *testing.T) {
	// ~1e18 cells per dimension: the per-dimension count fits an int but
	// the 2-D product overflows.
	pts := []vec.V{
		vec.Of(0, 0), vec.Of(0.3, 0.4), vec.Of(1e12, 1e12), vec.Of(1e12+0.5, 1e12),
	}
	g, err := NewGrid(pts, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if g.hbuckets == nil {
		t.Fatal("extreme-extents grid did not fall back to hashed buckets")
	}
	for i, p := range pts {
		found := false
		for _, j := range g.Near(p) {
			if j == i {
				found = true
			}
		}
		if !found {
			t.Errorf("Near(point %d) missed the point itself", i)
		}
	}
	// A query between the clusters has no neighbors within Chebyshev r.
	if got := g.Near(vec.Of(5e11, 5e11)); len(got) != 0 {
		t.Errorf("mid-gap query returned %v", got)
	}

	// Per-dimension extent beyond the clamp cap: far cells collapse onto
	// the boundary cell, which must remain reachable (conservatively) so
	// indexed far points are never lost.
	pts = []vec.V{vec.Of(0), vec.Of(1e300)}
	g, err = NewGrid(pts, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !g.clamped[0] {
		t.Fatal("1e303-cell dimension not clamped")
	}
	for i, p := range pts {
		found := false
		for _, j := range g.Near(p) {
			if j == i {
				found = true
			}
		}
		if !found {
			t.Errorf("clamped grid: Near(point %d) missed the point itself", i)
		}
	}
}

// The hashed fallback must behave exactly like the int-keyed grid. Build a
// normal instance, force the hashed representation, and compare Near results.
func TestHashedBucketsMatchIntBuckets(t *testing.T) {
	rng := xrand.New(19)
	pts := randPoints(rng, 300, 3, 0, 10)
	g, err := NewGrid(pts, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	h := &Grid{cell: g.cell, dim: g.dim, origin: g.origin, extents: g.extents,
		clamped: g.clamped, n: g.n, hbuckets: map[string][]int{}}
	var key []byte
	for id, idxs := range g.buckets {
		// Reconstruct the cell coordinates from the flattened id.
		c := make([]int, g.dim)
		for d := g.dim - 1; d >= 0; d-- {
			c[d] = id % g.extents[d]
			id /= g.extents[d]
		}
		key = appendCellKey(key[:0], c)
		h.hbuckets[string(key)] = idxs
	}
	for q := 0; q < 200; q++ {
		c := vec.New(3)
		for d := range c {
			c[d] = rng.Uniform(-2, 12)
		}
		a, b := g.Near(c), h.Near(c)
		sort.Ints(a)
		sort.Ints(b)
		if len(a) != len(b) {
			t.Fatalf("query %v: int-keyed %d results, hashed %d", c, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %v: results differ: %v vs %v", c, a, b)
			}
		}
	}
}

func TestSinglePointGrid(t *testing.T) {
	g, err := NewGrid([]vec.V{vec.Of(2, 2)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Near(vec.Of(2.5, 2.5))
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("Near = %v", got)
	}
}

// TestCellsCoverAndSort: Cells enumerates every point exactly once, in a
// strictly increasing lexicographic coordinate sweep, and CellPoints round-
// trips every returned coordinate. The shard partitioner depends on both
// properties for deterministic balanced splits.
func TestCellsCoverAndSort(t *testing.T) {
	rng := xrand.New(23)
	for trial := 0; trial < 20; trial++ {
		dim := rng.IntRange(1, 4)
		n := rng.IntRange(1, 200)
		pts := randPoints(rng, n, dim, 0, 4)
		g, err := NewGrid(pts, rng.Uniform(0.3, 1.5))
		if err != nil {
			t.Fatal(err)
		}
		cells := g.Cells()
		seen := map[int]bool{}
		for i, c := range cells {
			if len(c.Coord) != dim {
				t.Fatalf("trial %d: cell coord dim %d, want %d", trial, len(c.Coord), dim)
			}
			if len(c.Points) == 0 {
				t.Fatalf("trial %d: empty cell returned", trial)
			}
			for _, p := range c.Points {
				if seen[p] {
					t.Fatalf("trial %d: point %d in two cells", trial, p)
				}
				seen[p] = true
			}
			if i > 0 {
				prev := cells[i-1].Coord
				less := false
				for d := range prev {
					if prev[d] != c.Coord[d] {
						less = prev[d] < c.Coord[d]
						break
					}
				}
				if !less {
					t.Fatalf("trial %d: cells not strictly sorted: %v then %v", trial, prev, c.Coord)
				}
			}
			got := g.CellPoints(c.Coord)
			if len(got) != len(c.Points) {
				t.Fatalf("trial %d: CellPoints(%v) = %d points, Cells says %d", trial, c.Coord, len(got), len(c.Points))
			}
		}
		if len(seen) != n {
			t.Fatalf("trial %d: cells cover %d points, want %d", trial, len(seen), n)
		}
	}
}

// TestCellsHashedMatchesInt: the hashed-bucket fallback enumerates the same
// cells (coords and membership) as the int-keyed fast path.
func TestCellsHashedMatchesInt(t *testing.T) {
	rng := xrand.New(29)
	pts := randPoints(rng, 250, 2, 0, 8)
	g, err := NewGrid(pts, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	h := &Grid{cell: g.cell, dim: g.dim, origin: g.origin, extents: g.extents,
		clamped: g.clamped, n: g.n, hbuckets: map[string][]int{}}
	var key []byte
	for id, idxs := range g.buckets {
		key = appendCellKey(key[:0], g.cellCoords(id))
		h.hbuckets[string(key)] = idxs
	}
	a, b := g.Cells(), h.Cells()
	if len(a) != len(b) {
		t.Fatalf("int grid has %d cells, hashed %d", len(a), len(b))
	}
	for i := range a {
		for d := range a[i].Coord {
			if a[i].Coord[d] != b[i].Coord[d] {
				t.Fatalf("cell %d: coords differ: %v vs %v", i, a[i].Coord, b[i].Coord)
			}
		}
		as, bs := append([]int{}, a[i].Points...), append([]int{}, b[i].Points...)
		sort.Ints(as)
		sort.Ints(bs)
		for j := range as {
			if as[j] != bs[j] {
				t.Fatalf("cell %d: membership differs", i)
			}
		}
	}
}

// TestCellPointsOutOfRange: unknown, empty, or mis-dimensioned coordinates
// answer nil rather than panicking.
func TestCellPointsOutOfRange(t *testing.T) {
	g, err := NewGrid([]vec.V{vec.Of(0, 0), vec.Of(3, 3)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, coord := range [][]int{{-1, 0}, {99, 0}, {0}, {0, 0, 0}, nil} {
		if got := g.CellPoints(coord); got != nil {
			t.Errorf("CellPoints(%v) = %v, want nil", coord, got)
		}
	}
}
