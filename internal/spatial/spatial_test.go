package spatial

import (
	"math"
	"sort"
	"testing"

	"repro/internal/norm"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func randPoints(rng *xrand.Rand, n, dim int, lo, hi float64) []vec.V {
	pts := make([]vec.V, n)
	for i := range pts {
		p := vec.New(dim)
		for d := range p {
			p[d] = rng.Uniform(lo, hi)
		}
		pts[i] = p
	}
	return pts
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(nil, 1); err == nil {
		t.Error("empty set accepted")
	}
	pts := []vec.V{vec.Of(0, 0)}
	for _, r := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewGrid(pts, r); err == nil {
			t.Errorf("radius %v accepted", r)
		}
	}
	if _, err := NewGrid([]vec.V{vec.Of(0, 0), vec.Of(1)}, 1); err == nil {
		t.Error("dim mismatch accepted")
	}
	g, err := NewGrid(pts, 1)
	if err != nil || g.N() != 1 {
		t.Fatalf("valid grid rejected: %v", err)
	}
}

// Property: Near is a superset of the exact within-radius set for every
// p-norm, at interior, boundary, and exterior query points.
func TestNearIsConservative(t *testing.T) {
	rng := xrand.New(7)
	norms := []norm.Norm{norm.L1{}, norm.L2{}, norm.LInf{}, norm.LP{Exp: 3}}
	for trial := 0; trial < 100; trial++ {
		dim := rng.IntRange(1, 4)
		n := rng.IntRange(1, 60)
		r := rng.Uniform(0.2, 2)
		pts := randPoints(rng, n, dim, 0, 4)
		g, err := NewGrid(pts, r)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 10; q++ {
			c := vec.New(dim)
			for d := range c {
				c[d] = rng.Uniform(-2, 6) // include exterior queries
			}
			got := g.Near(c)
			in := map[int]bool{}
			for _, i := range got {
				in[i] = true
			}
			for _, nm := range norms {
				for i, p := range pts {
					if nm.Dist(c, p) <= r && !in[i] {
						t.Fatalf("trial %d: %s: point %d at dist %v <= r=%v missing from Near",
							trial, nm.Name(), i, nm.Dist(c, p), r)
					}
				}
			}
		}
	}
}

func TestNearNoDuplicates(t *testing.T) {
	rng := xrand.New(11)
	pts := randPoints(rng, 200, 2, 0, 4)
	g, err := NewGrid(pts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 50; q++ {
		c := vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		got := g.Near(c)
		sort.Ints(got)
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				t.Fatalf("duplicate index %d in Near result", got[i])
			}
		}
	}
}

func TestNearPrunes(t *testing.T) {
	// Points spread widely with a small radius: a query must return far
	// fewer candidates than n.
	rng := xrand.New(13)
	pts := randPoints(rng, 1000, 2, 0, 100)
	g, err := NewGrid(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for q := 0; q < 20; q++ {
		c := vec.Of(rng.Uniform(0, 100), rng.Uniform(0, 100))
		total += len(g.Near(c))
	}
	if avg := float64(total) / 20; avg > 50 {
		t.Errorf("average Near size %v — index not pruning", avg)
	}
}

func TestNearFarOutsideReturnsNil(t *testing.T) {
	pts := []vec.V{vec.Of(0, 0), vec.Of(1, 1)}
	g, err := NewGrid(pts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Near(vec.Of(50, 50)); got != nil {
		t.Errorf("far query returned %v", got)
	}
	if got := g.Near(vec.Of(1, 2, 3)); got != nil {
		t.Errorf("dim-mismatched query returned %v", got)
	}
}

func TestSinglePointGrid(t *testing.T) {
	g, err := NewGrid([]vec.V{vec.Of(2, 2)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Near(vec.Of(2.5, 2.5))
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("Near = %v", got)
	}
}
