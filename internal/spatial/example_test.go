package spatial_test

import (
	"fmt"
	"sort"

	"repro/internal/spatial"
	"repro/internal/vec"
)

// A radius-1 grid over three points: querying near the first two returns
// exactly them; the far point never appears.
func ExampleGrid_Near() {
	pts := []vec.V{vec.Of(0, 0), vec.Of(0.5, 0.5), vec.Of(9, 9)}
	g, _ := spatial.NewGrid(pts, 1)
	near := g.Near(vec.Of(0.2, 0.2))
	sort.Ints(near)
	fmt.Println(near)
	// Output:
	// [0 1]
}

// The k-d tree answers the same conservative queries; it returns exactly
// the Chebyshev-ball membership.
func ExampleKDTree_Near() {
	pts := []vec.V{vec.Of(0, 0), vec.Of(0.5, 0.5), vec.Of(9, 9)}
	t, _ := spatial.NewKDTree(pts, 1)
	near := t.Near(vec.Of(0.2, 0.2))
	sort.Ints(near)
	fmt.Println(near)
	// Output:
	// [0 1]
}
