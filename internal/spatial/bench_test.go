package spatial

import (
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func BenchmarkNewGrid_N10000(b *testing.B) {
	rng := xrand.New(1)
	pts := randPoints(rng, 10000, 2, 0, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewGrid(pts, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func benchNear(b *testing.B, n int, radius float64) {
	rng := xrand.New(2)
	pts := randPoints(rng, n, 2, 0, 100)
	g, err := NewGrid(pts, radius)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]vec.V, 256)
	for i := range queries {
		queries[i] = vec.Of(rng.Uniform(0, 100), rng.Uniform(0, 100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Near(queries[i%len(queries)])
	}
}

func BenchmarkNear_N10000_R1(b *testing.B)  { benchNear(b, 10000, 1) }
func BenchmarkNear_N10000_R10(b *testing.B) { benchNear(b, 10000, 10) }

// Baseline for comparison: the full linear scan the index replaces.
func BenchmarkLinearScan_N10000(b *testing.B) {
	rng := xrand.New(3)
	pts := randPoints(rng, 10000, 2, 0, 100)
	q := vec.Of(50, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		for _, p := range pts {
			dx, dy := p[0]-q[0], p[1]-q[1]
			if dx*dx+dy*dy <= 1 {
				count++
			}
		}
		_ = count
	}
}
