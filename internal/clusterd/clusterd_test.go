package clusterd_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	v1 "repro/api/v1"
	"repro/internal/clusterd"
	"repro/internal/obs"
	"repro/internal/pointset"
	"repro/internal/serve"
	"repro/internal/xrand"
)

// node is one test cluster member: a full serving stack on an httptest
// listener.
type node struct {
	srv *serve.Server
	ts  *httptest.Server
}

func startNode(t *testing.T, cfg serve.Config) *node {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &node{srv: s, ts: ts}
}

// testInstance builds a deterministic population large enough to partition
// into several non-trivial shards.
func testInstance(t *testing.T, n int) *pointset.Set {
	t.Helper()
	set, err := pointset.GenUniform(n, box2d(), pointset.RandomIntWeight, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func box2d() pointset.Box {
	return pointset.Box{Lo: []float64{0, 0}, Hi: []float64{4, 4}}
}

func solveReq(set *pointset.Set, shards int) *v1.SolveRequest {
	return &v1.SolveRequest{
		Instance: set,
		Radius:   0.5,
		Solver:   "greedy2-lazy",
		K:        6,
		Options:  v1.SolveOptions{Seed: 3, Shards: shards},
		// Bypass so repeated comparison solves in one test process never
		// short-circuit through a node's cache.
		CacheControl: v1.CacheControlBypass,
	}
}

func mustSolve(t *testing.T, url string, req *v1.SolveRequest) *v1.SolveResponse {
	t.Helper()
	resp, err := v1.NewClient(url, nil).Solve(context.Background(), req, "")
	if err != nil {
		t.Fatalf("solve against %s: %v", url, err)
	}
	if resp.Partial {
		t.Fatalf("solve against %s returned a partial result", url)
	}
	return resp
}

// TestClusterSolveBitIdentical pins the tentpole determinism claim: a sharded
// solve coordinated across a 3-node cluster returns bit-for-bit the centers,
// gains, and total a standalone node computes — routing must never leak into
// results.
func TestClusterSolveBitIdentical(t *testing.T) {
	set := testInstance(t, 2000)
	req := solveReq(set, 4)

	single := startNode(t, serve.Config{})
	want := mustSolve(t, single.ts.URL, req)

	// Three nodes; node 0 coordinates, 1 and 2 take forwarded shards.
	met := obs.NewMetrics()
	peer1 := startNode(t, serve.Config{})
	peer2 := startNode(t, serve.Config{})
	cl := clusterd.New(clusterd.Config{
		Advertise: "http://coordinator.test",
		Peers:     []string{peer1.ts.URL, peer2.ts.URL},
		Obs:       met,
	})
	cl.GossipOnce(context.Background())
	coord := startNode(t, serve.Config{Cluster: cl})

	got := mustSolve(t, coord.ts.URL, req)
	if !reflect.DeepEqual(got.Centers, want.Centers) {
		t.Errorf("cluster centers differ from single-node:\n got %v\nwant %v", got.Centers, want.Centers)
	}
	if !reflect.DeepEqual(got.Gains, want.Gains) || got.Total != want.Total {
		t.Errorf("cluster gains/total differ: got %v / %v, want %v / %v",
			got.Gains, got.Total, want.Gains, want.Total)
	}
	snap := met.Snapshot()
	if snap.Counters[obs.CtrClusterForwards] == 0 {
		t.Error("no shard solves were forwarded to peers")
	}
	if snap.Counters[obs.CtrClusterFallbacks] != 0 {
		t.Errorf("unexpected fallbacks: %d", snap.Counters[obs.CtrClusterFallbacks])
	}
}

// TestClusterFallback pins the failure path: when every peer fails mid-fan-out
// (one answers 503 to solves, one is dead), the coordinator falls back to
// local shard solves, still returns the bit-identical final centers, and
// counts the failures in cluster.fallbacks.
func TestClusterFallback(t *testing.T) {
	set := testInstance(t, 2000)
	req := solveReq(set, 4)

	single := startNode(t, serve.Config{})
	want := mustSolve(t, single.ts.URL, req)

	// A peer that gossips healthy but refuses every solve with 503 — a node
	// that saturated between the last gossip round and the forward.
	saturated := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/cluster/health" {
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"draining":false,"workers":8,"in_flight":0,"queued":0,"queue_depth":64}`))
			return
		}
		http.Error(w, `{"error":{"code":"queue_full","message":"full"}}`, http.StatusServiceUnavailable)
	}))
	t.Cleanup(saturated.Close)

	// A peer that dies after gossip marked it live.
	dead := startNode(t, serve.Config{})

	met := obs.NewMetrics()
	cl := clusterd.New(clusterd.Config{
		Peers: []string{saturated.URL, dead.ts.URL},
		Obs:   met,
	})
	cl.GossipOnce(context.Background())
	dead.ts.Close() // dies between gossip and forward

	coord := startNode(t, serve.Config{Cluster: cl})
	got := mustSolve(t, coord.ts.URL, req)
	if !reflect.DeepEqual(got.Centers, want.Centers) || got.Total != want.Total {
		t.Errorf("fallback result differs from single-node:\n got %v (%v)\nwant %v (%v)",
			got.Centers, got.Total, want.Centers, want.Total)
	}
	snap := met.Snapshot()
	if snap.Counters[obs.CtrClusterFallbacks] == 0 {
		t.Error("expected cluster.fallbacks to count the failed forwards")
	}
	if snap.Counters[obs.CtrClusterForwards] != 0 {
		t.Errorf("no forward can succeed here, yet cluster.forwards = %d",
			snap.Counters[obs.CtrClusterForwards])
	}
}

// TestGossipLiveness pins the peer table's view transitions: never-probed →
// live → dead, with fails counting consecutive misses and AgeMS tracking the
// last success.
func TestGossipLiveness(t *testing.T) {
	peer := startNode(t, serve.Config{})
	cl := clusterd.New(clusterd.Config{Peers: []string{peer.ts.URL}})

	rows := cl.Snapshot()
	if len(rows) != 1 || rows[0].Live || rows[0].AgeMS != -1 {
		t.Fatalf("pre-gossip snapshot should be one never-probed row, got %+v", rows)
	}

	cl.GossipOnce(context.Background())
	rows = cl.Snapshot()
	if !rows[0].Live || rows[0].AgeMS < 0 || rows[0].Fails != 0 {
		t.Fatalf("after a successful probe, want live with age >= 0, got %+v", rows[0])
	}
	if rows[0].Workers <= 0 {
		t.Errorf("gossip did not carry the peer's worker count: %+v", rows[0])
	}

	peer.ts.Close()
	cl.GossipOnce(context.Background())
	cl.GossipOnce(context.Background())
	rows = cl.Snapshot()
	if rows[0].Live || rows[0].Fails != 2 {
		t.Fatalf("after two failed probes, want dead with fails=2, got %+v", rows[0])
	}
}

// TestGossipDrainingPeer: a draining peer answers health probes but must not
// be ranked live (it refuses forwarded work).
func TestGossipDrainingPeer(t *testing.T) {
	peer := startNode(t, serve.Config{})
	// Put the peer into drain; its mux still answers /v1/cluster/health.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := peer.srv.Drain(ctx, 0); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cl := clusterd.New(clusterd.Config{Peers: []string{peer.ts.URL}})
	cl.GossipOnce(context.Background())
	rows := cl.Snapshot()
	if rows[0].Live || !rows[0].Draining {
		t.Fatalf("draining peer must be not-live and marked draining, got %+v", rows[0])
	}
}

// TestNewFiltersSelfAndDuplicates: the peer table never contains the node
// itself, duplicates, or blanks, and is sorted by URL.
func TestNewFiltersSelfAndDuplicates(t *testing.T) {
	cl := clusterd.New(clusterd.Config{
		Advertise: "http://self:1/",
		Peers:     []string{"http://b:2", "http://self:1", "", "http://a:3/", "http://b:2/"},
	})
	rows := cl.Snapshot()
	if len(rows) != 2 || rows[0].URL != "http://a:3" || rows[1].URL != "http://b:2" {
		t.Fatalf("peer table should be [http://a:3 http://b:2], got %+v", rows)
	}
	if cl.NumPeers() != 2 || cl.Advertise() != "http://self:1" {
		t.Fatalf("NumPeers/Advertise wrong: %d, %q", cl.NumPeers(), cl.Advertise())
	}
}

// TestClusterHealthEndpoint: a cluster node's /v1/cluster/health carries its
// advertise URL and peer table; a standalone node answers with neither.
func TestClusterHealthEndpoint(t *testing.T) {
	peer := startNode(t, serve.Config{})
	cl := clusterd.New(clusterd.Config{
		Advertise: "http://me.test",
		Peers:     []string{peer.ts.URL},
	})
	cl.GossipOnce(context.Background())
	nodeA := startNode(t, serve.Config{Cluster: cl, Workers: 3})

	h, err := v1.NewClient(nodeA.ts.URL, nil).ClusterHealth(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Advertise != "http://me.test" || h.Workers != 3 || len(h.Peers) != 1 {
		t.Fatalf("cluster health wrong: %+v", h)
	}
	if !h.Peers[0].Live {
		t.Fatalf("peer should be live: %+v", h.Peers[0])
	}

	standalone := startNode(t, serve.Config{})
	h, err = v1.NewClient(standalone.ts.URL, nil).ClusterHealth(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Advertise != "" || len(h.Peers) != 0 {
		t.Fatalf("standalone cluster health should be bare: %+v", h)
	}
}

// TestStartStop: the gossip loop probes on its own and shuts down cleanly.
func TestStartStop(t *testing.T) {
	peer := startNode(t, serve.Config{})
	cl := clusterd.New(clusterd.Config{
		Peers:       []string{peer.ts.URL},
		GossipEvery: 5 * time.Millisecond,
	})
	cl.Start()
	defer cl.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if rows := cl.Snapshot(); rows[0].Live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gossip loop never marked the peer live")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cl.Stop() // idempotent
}
