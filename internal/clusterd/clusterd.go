// Package clusterd is cdserved's peer layer: it turns a set of independent
// single-box servers into a solve cluster with no new wire surface beyond
// GET /v1/cluster/health. Every node runs the same HTTP service; cluster mode
// adds two loops on top:
//
//   - Gossip: each node periodically probes every configured peer's
//     /v1/cluster/health and keeps a local table of liveness and capacity
//     (worker slots, in-flight, queued). A peer is live when its last probe
//     succeeded and it was not draining.
//
//   - Forwarding: when a node coordinates a sharded solve (POST /v1/solve
//     with shards > 1), it installs a core.PartSolver built here that ships
//     each shard's sub-instance to the least-loaded live peer as a plain
//     single-shot /v1/solve — so the peer's own admission control, solve
//     cache, and single-flight collapsing apply to forwarded work with no
//     special casing — and returns the peer's centers to the local merge.
//
// Determinism: a forwarded shard solve runs the same inner algorithm under
// the same derived seed as the local solve would, and float64 coordinates
// survive the JSON round trip exactly (Go encodes the shortest
// representation that parses back to the same bits), so the merge input —
// and therefore the final result — is bit-identical regardless of which node
// solved which shard. A forward that fails (dead peer, saturation, drain, a
// partial answer under the peer's deadline cap) is not an error: the
// pipeline falls back to solving that shard locally, counted by
// cd_cluster_fallbacks_total.
package clusterd

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	v1 "repro/api/v1"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/vec"
)

// Defaults for Config's zero values.
const (
	// DefaultGossipEvery is the gossip period.
	DefaultGossipEvery = 2 * time.Second
	// DefaultProbeTimeout bounds one health probe.
	DefaultProbeTimeout = 2 * time.Second
	// DefaultForwardTimeout bounds one forwarded shard solve. Generous: a
	// timeout only delays the local fallback, it never loses the answer.
	DefaultForwardTimeout = 60 * time.Second
)

// Config parameterizes a Cluster.
type Config struct {
	// Advertise is this node's own base URL as peers would reach it; it is
	// filtered out of Peers so a node never forwards to itself.
	Advertise string
	// Peers are the other nodes' base URLs (static bootstrap, e.g. from the
	// -peers flag). Empties and duplicates are dropped.
	Peers []string
	// GossipEvery is the probe period; 0 means DefaultGossipEvery.
	GossipEvery time.Duration
	// ProbeTimeout bounds one health probe; 0 means the smaller of
	// GossipEvery and DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// ForwardTimeout bounds one forwarded shard solve (on top of the
	// coordinator request's own context); 0 means DefaultForwardTimeout,
	// negative disables the extra bound.
	ForwardTimeout time.Duration
	// Obs receives the cluster.* series and forward spans.
	Obs obs.Collector
	// HTTP performs probes and forwards; nil uses a plain http.Client.
	// Tests inject httptest clients here.
	HTTP *http.Client
}

func (c Config) gossipEvery() time.Duration {
	if c.GossipEvery > 0 {
		return c.GossipEvery
	}
	return DefaultGossipEvery
}

func (c Config) probeTimeout() time.Duration {
	if c.ProbeTimeout > 0 {
		return c.ProbeTimeout
	}
	if ge := c.gossipEvery(); ge < DefaultProbeTimeout {
		return ge
	}
	return DefaultProbeTimeout
}

func (c Config) forwardTimeout() time.Duration {
	switch {
	case c.ForwardTimeout > 0:
		return c.ForwardTimeout
	case c.ForwardTimeout < 0:
		return 0
	}
	return DefaultForwardTimeout
}

// peer is one row of the node's peer table. The mutex guards the
// gossip-updated view; pending counts this node's own in-flight forwards to
// the peer, folded into the load score so a burst of shards spreads out
// instead of piling onto whichever peer looked idlest at the last gossip.
type peer struct {
	url    string
	client *v1.Client

	mu       sync.Mutex
	live     bool
	draining bool
	workers  int
	inFlight int
	queued   int
	lastOK   time.Time
	fails    int

	pending atomic.Int64
}

// Cluster is one node's peer layer. Construct with New, call Start to begin
// gossiping, install PartSolver's result into sharded solves, and Stop on
// shutdown. All methods are safe for concurrent use.
type Cluster struct {
	cfg  Config
	col  obs.Collector
	http *http.Client

	peers []*peer // sorted by URL; immutable after New

	// pickMu serializes pick's select-and-reserve so concurrent shard
	// forwards see each other's reservations and spread across peers.
	pickMu sync.Mutex

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New builds the peer table: Peers minus empties, duplicates, and the node's
// own Advertise URL, sorted by URL so every node ranks ties identically. The
// gossip loop is not started; call Start.
func New(cfg Config) *Cluster {
	httpc := cfg.HTTP
	if httpc == nil {
		httpc = &http.Client{}
	}
	self := strings.TrimRight(cfg.Advertise, "/")
	seen := map[string]bool{}
	var peers []*peer
	for _, raw := range cfg.Peers {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" || u == self || seen[u] {
			continue
		}
		seen[u] = true
		peers = append(peers, &peer{url: u, client: v1.NewClient(u, httpc)})
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].url < peers[j].url })
	return &Cluster{
		cfg:   cfg,
		col:   obs.OrNop(cfg.Obs),
		http:  httpc,
		peers: peers,
		stop:  make(chan struct{}),
	}
}

// AddObs fans another collector into the cluster's telemetry, so the serving
// layer can route cluster.* counts into the registry its /metrics endpoint
// snapshots. Must be called before Start; nil is a no-op.
func (c *Cluster) AddObs(col obs.Collector) {
	if col == nil {
		return
	}
	c.col = obs.Multi(c.col, col)
}

// Advertise returns the node's own advertised base URL.
func (c *Cluster) Advertise() string { return strings.TrimRight(c.cfg.Advertise, "/") }

// NumPeers returns the number of configured peers (live or not).
func (c *Cluster) NumPeers() int { return len(c.peers) }

// Start launches the gossip loop: an immediate first sweep, then one every
// GossipEvery until Stop. Start itself does not block on the first sweep.
func (c *Cluster) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.GossipOnce(context.Background())
		t := time.NewTicker(c.cfg.gossipEvery())
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.GossipOnce(context.Background())
			}
		}
	}()
}

// Stop ends the gossip loop and waits for the in-flight sweep. Idempotent.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// GossipOnce probes every peer's /v1/cluster/health once, in parallel, and
// updates the table. Exported so tests (and Start) can drive sweeps
// deterministically without waiting out the ticker.
func (c *Cluster) GossipOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range c.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, c.cfg.probeTimeout())
			defer cancel()
			h, err := p.client.ClusterHealth(pctx)
			p.mu.Lock()
			defer p.mu.Unlock()
			if err != nil {
				p.live = false
				p.fails++
				return
			}
			p.live = !h.Draining
			p.draining = h.Draining
			p.workers = h.Workers
			p.inFlight = h.InFlight
			p.queued = h.Queued
			p.lastOK = time.Now()
			p.fails = 0
		}(p)
	}
	wg.Wait()
	c.col.Count(obs.CtrClusterGossipRounds, 1)
	c.col.Gauge(obs.GaugeClusterPeersLive, float64(c.countLive()))
}

func (c *Cluster) countLive() int {
	n := 0
	for _, p := range c.peers {
		p.mu.Lock()
		if p.live {
			n++
		}
		p.mu.Unlock()
	}
	return n
}

// Snapshot renders the peer table as wire rows (sorted by URL), for the
// node's own /v1/cluster/health answer.
func (c *Cluster) Snapshot() []v1.ClusterPeer {
	out := make([]v1.ClusterPeer, 0, len(c.peers))
	for _, p := range c.peers {
		p.mu.Lock()
		row := v1.ClusterPeer{
			URL:      p.url,
			Live:     p.live,
			Draining: p.draining,
			Workers:  p.workers,
			InFlight: p.inFlight,
			Queued:   p.queued,
			AgeMS:    -1,
			Fails:    p.fails,
		}
		if !p.lastOK.IsZero() {
			row.AgeMS = time.Since(p.lastOK).Milliseconds()
		}
		p.mu.Unlock()
		out = append(out, row)
	}
	return out
}

// pick returns the least-loaded live peer with one forward slot reserved on
// it (the caller must release with p.pending.Add(-1)), or nil when none is
// live. Load is (peer-reported in-flight + queued + this node's own pending
// forwards) per worker slot; ties break by URL order, which is identical on
// every node. Select-and-reserve is one critical section so a burst of
// concurrent shard forwards alternates across peers instead of all reading
// the same stale scores and piling onto one.
func (c *Cluster) pick() *peer {
	c.pickMu.Lock()
	defer c.pickMu.Unlock()
	var best *peer
	bestScore := 0.0
	for _, p := range c.peers {
		p.mu.Lock()
		live, workers, load := p.live, p.workers, p.inFlight+p.queued
		p.mu.Unlock()
		if !live {
			continue
		}
		if workers < 1 {
			workers = 1
		}
		score := float64(load+int(p.pending.Load())) / float64(workers)
		if best == nil || score < bestScore {
			best, bestScore = p, score
		}
	}
	if best != nil {
		best.pending.Add(1)
	}
	return best
}

// ErrNoLivePeer is returned by the forwarding PartSolver when no configured
// peer is live; the pipeline answers it with a local solve.
var ErrNoLivePeer = errors.New("clusterd: no live peer")

// ForwardSpec is the request template a coordinator builds once per sharded
// solve: everything a forwarded shard request shares across shards.
type ForwardSpec struct {
	// Solver is the inner registry algorithm (the sharded composite's inner
	// name), run single-shot on the peer.
	Solver string
	// Norm is the resolved norm name.
	Norm string
	// Options is the coordinator request's options with the per-shard and
	// coordinator-only fields (Seed, Shards, Halo, WarmStart) cleared;
	// PartSolver stamps the derived per-shard seed into each forward.
	Options v1.SolveOptions
	// RequestID, when non-empty, prefixes each forward's X-Request-ID
	// ("<id>/shard-<seed>") so peer-side traces join the coordinator's.
	RequestID string
}

// PartSolver builds the forwarding core.PartSolver for one sharded solve.
// Each call ships the part to the least-loaded live peer as a plain
// single-shot /v1/solve under the derived seed and returns the peer's
// centers. Any failure — no live peer, transport error, a non-2xx answer
// from the peer's admission control, or a partial result — counts one
// cd_cluster_fallbacks_total and returns an error, which makes the pipeline
// solve the shard locally with an identical result.
func (c *Cluster) PartSolver(spec ForwardSpec) core.PartSolver {
	return func(ctx context.Context, part core.Part, seed uint64, k int) ([]vec.V, error) {
		p := c.pick()
		if p == nil {
			c.col.Count(obs.CtrClusterFallbacks, 1)
			return nil, ErrNoLivePeer
		}
		opts := spec.Options
		opts.Seed = seed
		opts.Shards, opts.Halo, opts.WarmStart = 0, 0, nil
		req := &v1.SolveRequest{
			Instance: part.In.Set,
			Radius:   part.In.Radius,
			Norm:     spec.Norm,
			Solver:   spec.Solver,
			K:        k,
			Options:  opts,
		}
		id := fmt.Sprintf("shard-%016x", seed)
		if spec.RequestID != "" {
			id = spec.RequestID + "/" + id
		}

		span := obs.SpanFromContext(ctx).Child("forward " + p.url)
		span.SetAttr("n", float64(part.In.N()))
		fctx := ctx
		if d := c.cfg.forwardTimeout(); d > 0 {
			var cancel context.CancelFunc
			fctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		timer := obs.StartTimer(c.col, obs.TimClusterForward)
		resp, err := p.client.Solve(fctx, req, id)
		timer.Stop()
		p.pending.Add(-1) // release the slot pick reserved
		if err == nil && resp.Partial {
			// A partial prefix is a valid answer to the peer's request but
			// not the full shard solve the merge needs.
			err = fmt.Errorf("clusterd: peer %s answered a partial result (%d/%d centers)",
				p.url, len(resp.Centers), k)
		}
		if err != nil {
			span.SetAttr("failed", 1)
			span.End()
			if ctx.Err() == nil {
				c.col.Count(obs.CtrClusterFallbacks, 1)
			}
			return nil, err
		}
		centers := make([]vec.V, len(resp.Centers))
		for i, row := range resp.Centers {
			centers[i] = vec.V(append([]float64{}, row...))
		}
		c.col.Count(obs.CtrClusterForwards, 1)
		span.SetAttr("centers", float64(len(centers)))
		if resp.Cached {
			span.SetAttr("cached", 1)
		}
		span.End()
		return centers, nil
	}
}
