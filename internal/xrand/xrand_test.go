package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 collisions between distinct seeds", same)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	r := New(7)
	c := r.Split()
	if r.Uint64() == c.Uint64() {
		t.Fatal("split stream equals parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		x := r.Uniform(-2, 3)
		if x < -2 || x >= 3 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestIntnRangeAndCoverage(t *testing.T) {
	r := New(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn covered %d/7 values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(13)
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		v := r.IntRange(1, 5)
		if v < 1 || v > 5 {
			t.Fatalf("IntRange out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("IntRange covered %d/5 values", len(seen))
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(29)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(31)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(53)
	for _, lambda := range []float64{0.5, 3, 12} {
		const n = 100000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			k := r.Poisson(lambda)
			if k < 0 {
				t.Fatalf("negative Poisson variate %d", k)
			}
			sum += float64(k)
			sumSq += float64(k) * float64(k)
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.02 {
			t.Errorf("lambda=%v: mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+0.05 {
			t.Errorf("lambda=%v: variance = %v", lambda, variance)
		}
	}
	// Large-lambda normal approximation path.
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(r.Poisson(100))
	}
	if mean := sum / n; math.Abs(mean-100) > 1 {
		t.Errorf("lambda=100: mean = %v", mean)
	}
	if r.Poisson(0) != 0 {
		t.Error("Poisson(0) != 0")
	}
}

func TestPoissonPanics(t *testing.T) {
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Poisson(%v) did not panic", bad)
				}
			}()
			New(1).Poisson(bad)
		}()
	}
}

func TestZipfRanksAndSkew(t *testing.T) {
	r := New(37)
	z := NewZipf(100, 1.0)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	counts := make([]int, 101)
	const n = 100000
	for i := 0; i < n; i++ {
		rank := z.Rank(r)
		if rank < 1 || rank > 100 {
			t.Fatalf("rank out of range: %d", rank)
		}
		counts[rank]++
	}
	// Rank 1 must dominate rank 10 roughly 10:1 under s=1.
	ratio := float64(counts[1]) / float64(counts[10])
	if ratio < 5 || ratio > 20 {
		t.Errorf("rank1/rank10 = %v, want ~10", ratio)
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, 0) },
		func() { NewZipf(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("NewZipf accepted invalid arguments")
				}
			}()
			fn()
		}()
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rand
	_ = r.Uint64() // must not panic
}
