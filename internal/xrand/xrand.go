// Package xrand provides a small, fast, deterministic random number
// generator (SplitMix64) plus the sampling helpers the simulation harness
// needs. Every experiment in the repository threads an explicit *Rand so
// that reported numbers are reproducible from a seed alone; nothing in this
// package reads global state or the clock.
package xrand

import "math"

// Rand is a SplitMix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; prefer New to make seeding explicit.
type Rand struct {
	state uint64
}

// New returns a generator with the given seed. Distinct seeds give
// independent-looking streams; the same seed always yields the same stream.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Split returns a new generator whose stream is decorrelated from r's,
// advancing r once. Use it to give each parallel worker its own source.
func (r *Rand) Split() *Rand {
	// The golden-gamma constant keeps child streams well separated.
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire-style bounded generation without modulo bias for the sizes
	// used here (n far below 2^63).
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes xs in place (Fisher–Yates).
func (r *Rand) ShuffleInts(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// NormFloat64 returns a standard normal variate via the Box–Muller
// transform. Used by the clustered point generator and interest drift.
func (r *Rand) NormFloat64() float64 {
	// Reject u1 == 0 so the log is finite.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Poisson returns a Poisson variate with mean lambda ≥ 0, using Knuth's
// product method for small means and a normal approximation (rounded,
// clamped at zero) for large ones. It panics on negative or non-finite
// lambda.
func (r *Rand) Poisson(lambda float64) int {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		panic("xrand: Poisson with invalid lambda")
	}
	if lambda == 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Zipf samples ranks in [1, n] with probability proportional to 1/rank^s.
// It precomputes the CDF; sampling is O(log n) by binary search.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
// It panics if n <= 0 or s <= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 || s <= 0 || math.IsNaN(s) {
		panic("xrand: NewZipf requires n > 0 and s > 0")
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding at the tail
	return &Zipf{cdf: cdf}
}

// N reports the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Rank draws a rank in [1, N].
func (z *Zipf) Rank(r *Rand) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
