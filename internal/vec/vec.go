// Package vec provides small dense vectors in R^m used throughout the
// content-distribution library: user interests, broadcast contents, and
// geometric centers are all vec.V values.
//
// Vectors are plain []float64 slices with value semantics supplied by
// explicit Clone calls; the arithmetic helpers never mutate their operands
// unless the name says so (AddInPlace, ScaleInPlace).
package vec

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// V is a point or direction in m-dimensional interest space.
type V []float64

// ErrDimMismatch is returned by checked operations whose operands have
// different dimensionality.
var ErrDimMismatch = errors.New("vec: dimension mismatch")

// New returns a zero vector of dimension m. It panics if m < 0.
func New(m int) V {
	if m < 0 {
		panic(fmt.Sprintf("vec: negative dimension %d", m))
	}
	return make(V, m)
}

// Of builds a vector from its components. The arguments are copied, so the
// caller may reuse the backing array.
func Of(xs ...float64) V {
	v := make(V, len(xs))
	copy(v, xs)
	return v
}

// Dim reports the dimensionality of v.
func (v V) Dim() int { return len(v) }

// Clone returns an independent copy of v.
func (v V) Clone() V {
	w := make(V, len(v))
	copy(w, v)
	return w
}

// Equal reports whether v and w have identical dimension and components.
func (v V) Equal(w V) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether v and w agree component-wise within tol.
func (v V) ApproxEqual(w V, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// Add returns v + w. It panics on dimension mismatch.
func (v V) Add(w V) V {
	mustMatch(v, w)
	out := make(V, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v − w. It panics on dimension mismatch.
func (v V) Sub(w V) V {
	mustMatch(v, w)
	out := make(V, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns s·v.
func (v V) Scale(s float64) V {
	out := make(V, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// AddInPlace sets v = v + w and returns v. It panics on dimension mismatch.
func (v V) AddInPlace(w V) V {
	mustMatch(v, w)
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// ScaleInPlace sets v = s·v and returns v.
func (v V) ScaleInPlace(s float64) V {
	for i := range v {
		v[i] *= s
	}
	return v
}

// Dot returns the inner product ⟨v, w⟩. It panics on dimension mismatch.
func (v V) Dot(w V) float64 {
	mustMatch(v, w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean length of v.
func (v V) Norm2() float64 {
	// Hypot-style scaling guards against overflow for extreme components.
	var maxAbs float64
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		r := x / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// Dist2 returns the Euclidean distance between v and w.
func (v V) Dist2(w V) float64 {
	mustMatch(v, w)
	var maxAbs float64
	for i := range v {
		if a := math.Abs(v[i] - w[i]); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	var s float64
	for i := range v {
		r := (v[i] - w[i]) / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// Lerp returns (1−t)·v + t·w, the point a fraction t of the way from v to w.
func (v V) Lerp(w V, t float64) V {
	mustMatch(v, w)
	out := make(V, len(v))
	for i := range v {
		out[i] = v[i] + t*(w[i]-v[i])
	}
	return out
}

// Mid returns the midpoint of v and w.
func (v V) Mid(w V) V { return v.Lerp(w, 0.5) }

// IsFinite reports whether every component is finite (no NaN or ±Inf).
func (v V) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// String renders v as "(x1, x2, …)" with three decimals, the format used by
// the example programs and ASCII reports.
func (v V) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.3f", x)
	}
	b.WriteByte(')')
	return b.String()
}

// Centroid returns the arithmetic mean of the given vectors. It returns an
// error if the slice is empty or the dimensions disagree.
func Centroid(vs []V) (V, error) {
	if len(vs) == 0 {
		return nil, errors.New("vec: centroid of empty set")
	}
	m := len(vs[0])
	c := New(m)
	for _, v := range vs {
		if len(v) != m {
			return nil, ErrDimMismatch
		}
		c.AddInPlace(v)
	}
	return c.ScaleInPlace(1 / float64(len(vs))), nil
}

// Bounds returns component-wise minima and maxima over the given vectors.
// It returns an error if the slice is empty or the dimensions disagree.
func Bounds(vs []V) (lo, hi V, err error) {
	if len(vs) == 0 {
		return nil, nil, errors.New("vec: bounds of empty set")
	}
	m := len(vs[0])
	lo, hi = vs[0].Clone(), vs[0].Clone()
	for _, v := range vs[1:] {
		if len(v) != m {
			return nil, nil, ErrDimMismatch
		}
		for i, x := range v {
			if x < lo[i] {
				lo[i] = x
			}
			if x > hi[i] {
				hi[i] = x
			}
		}
	}
	return lo, hi, nil
}

func mustMatch(v, w V) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(v), len(w)))
	}
}
