package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZero(t *testing.T) {
	v := New(4)
	if v.Dim() != 4 {
		t.Fatalf("Dim = %d, want 4", v.Dim())
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("component %d = %v, want 0", i, x)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestOfCopies(t *testing.T) {
	xs := []float64{1, 2, 3}
	v := Of(xs...)
	xs[0] = 99
	if v[0] != 1 {
		t.Fatalf("Of aliased its arguments: v[0] = %v", v[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Of(1, 2)
	w := v.Clone()
	w[0] = 7
	if v[0] != 1 {
		t.Fatalf("Clone aliased storage: v = %v", v)
	}
}

func TestAddSubScale(t *testing.T) {
	v, w := Of(1, 2, 3), Of(4, 5, 6)
	if got := v.Add(w); !got.Equal(Of(5, 7, 9)) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(Of(3, 3, 3)) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.Equal(Of(2, 4, 6)) {
		t.Errorf("Scale = %v", got)
	}
	// Operands untouched.
	if !v.Equal(Of(1, 2, 3)) || !w.Equal(Of(4, 5, 6)) {
		t.Errorf("operands mutated: v=%v w=%v", v, w)
	}
}

func TestInPlaceOps(t *testing.T) {
	v := Of(1, 2)
	v.AddInPlace(Of(3, 4))
	if !v.Equal(Of(4, 6)) {
		t.Errorf("AddInPlace = %v", v)
	}
	v.ScaleInPlace(0.5)
	if !v.Equal(Of(2, 3)) {
		t.Errorf("ScaleInPlace = %v", v)
	}
}

func TestDot(t *testing.T) {
	if got := Of(1, 2, 3).Dot(Of(4, 5, 6)); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched dims did not panic")
		}
	}()
	Of(1).Add(Of(1, 2))
}

func TestNorm2KnownValues(t *testing.T) {
	cases := []struct {
		v    V
		want float64
	}{
		{Of(3, 4), 5},
		{Of(0, 0, 0), 0},
		{Of(1, 1, 1, 1), 2},
		{Of(-3, -4), 5},
	}
	for _, c := range cases {
		if got := c.v.Norm2(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Norm2(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestNorm2OverflowSafe(t *testing.T) {
	v := Of(1e300, 1e300)
	got := v.Norm2()
	want := 1e300 * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Norm2 overflowed: got %v, want %v", got, want)
	}
}

func TestDist2(t *testing.T) {
	if got := Of(1, 1).Dist2(Of(4, 5)); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist2 = %v, want 5", got)
	}
	if got := Of(2, 2).Dist2(Of(2, 2)); got != 0 {
		t.Errorf("Dist2 of equal points = %v, want 0", got)
	}
}

func TestLerpMid(t *testing.T) {
	v, w := Of(0, 0), Of(10, 20)
	if got := v.Lerp(w, 0.25); !got.ApproxEqual(Of(2.5, 5), 1e-12) {
		t.Errorf("Lerp = %v", got)
	}
	if got := v.Mid(w); !got.ApproxEqual(Of(5, 10), 1e-12) {
		t.Errorf("Mid = %v", got)
	}
	if got := v.Lerp(w, 0); !got.Equal(v) {
		t.Errorf("Lerp t=0 = %v", got)
	}
	if got := v.Lerp(w, 1); !got.Equal(w) {
		t.Errorf("Lerp t=1 = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !Of(1, 2).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if Of(1, math.NaN()).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if Of(math.Inf(1)).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestString(t *testing.T) {
	if got := Of(1, 2.5).String(); got != "(1.000, 2.500)" {
		t.Errorf("String = %q", got)
	}
}

func TestCentroid(t *testing.T) {
	c, err := Centroid([]V{Of(0, 0), Of(2, 4), Of(4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if !c.ApproxEqual(Of(2, 2), 1e-12) {
		t.Errorf("Centroid = %v", c)
	}
	if _, err := Centroid(nil); err == nil {
		t.Error("Centroid(nil) returned no error")
	}
	if _, err := Centroid([]V{Of(1), Of(1, 2)}); err == nil {
		t.Error("Centroid with mismatched dims returned no error")
	}
}

func TestBounds(t *testing.T) {
	lo, hi, err := Bounds([]V{Of(1, 5), Of(3, 2), Of(-1, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !lo.Equal(Of(-1, 2)) || !hi.Equal(Of(3, 5)) {
		t.Errorf("Bounds = %v, %v", lo, hi)
	}
	if _, _, err := Bounds(nil); err == nil {
		t.Error("Bounds(nil) returned no error")
	}
}

func TestEqualAndApprox(t *testing.T) {
	if !Of(1, 2).Equal(Of(1, 2)) {
		t.Error("Equal false for identical vectors")
	}
	if Of(1, 2).Equal(Of(1, 2, 3)) {
		t.Error("Equal true across dimensions")
	}
	if !Of(1, 2).ApproxEqual(Of(1.0000001, 2), 1e-3) {
		t.Error("ApproxEqual false within tolerance")
	}
	if Of(1, 2).ApproxEqual(Of(1.1, 2), 1e-3) {
		t.Error("ApproxEqual true outside tolerance")
	}
}

// clampV maps arbitrary quick-generated components into a well-conditioned
// range so float-error tolerances stay simple.
func clampV(xs []float64) V {
	v := make(V, len(xs))
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		v[i] = math.Mod(x, 1e6)
	}
	return v
}

// Property: triangle inequality and symmetry for the Euclidean distance.
func TestDist2Properties(t *testing.T) {
	f := func(a, b, c [3]float64) bool {
		u, v, w := clampV(a[:]), clampV(b[:]), clampV(c[:])
		duv, dvu := u.Dist2(v), v.Dist2(u)
		if math.Abs(duv-dvu) > 1e-9*(1+duv) {
			return false
		}
		return duv <= u.Dist2(w)+w.Dist2(v)+1e-9*(1+duv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add is commutative and Sub is its inverse.
func TestAddSubProperties(t *testing.T) {
	f := func(a, b [4]float64) bool {
		u, v := clampV(a[:]), clampV(b[:])
		if !u.Add(v).Equal(v.Add(u)) {
			return false
		}
		back := u.Add(v).Sub(v)
		return back.ApproxEqual(u, 1e-6*(1+u.Norm2()+v.Norm2()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
