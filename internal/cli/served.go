package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"time"

	"repro/internal/clusterd"
	"repro/internal/serve"
	"repro/internal/solver"
)

// Served implements cdserved: the network solver service. It binds the
// listener synchronously (so a bad -addr fails before any output), prints
// the resolved address for scripts to scrape, serves until ctx is cancelled
// (SIGINT/SIGTERM in main), then drains gracefully: admission stops at
// once, in-flight solves get -drain-grace to finish, stragglers are
// cancelled and answer their clients with anytime partial results. A clean
// drain exits 0 and flushes -metrics/-events telemetry.
func Served(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("cdserved", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers     = fs.Int("workers", 0, "max concurrently running solves (0 = one per CPU)")
		queue       = fs.Int("queue", serve.DefaultQueueDepth, "admitted requests that may wait for a worker before 429 (0 = none)")
		maxBody     = fs.Int64("max-body", serve.DefaultMaxBody, "request body cap in bytes (413 past it)")
		retryAfter  = fs.Duration("retry-after", serve.DefaultRetryAfter, "Retry-After hint on 429/503 responses")
		maxDeadline = fs.Duration("max-deadline", 0, "cap every request's deadline_ms; requests asking for more (or none) run under this cap (0 = uncapped)")
		drainGrace  = fs.Duration("drain-grace", 10*time.Second, "time in-flight solves get to finish on SIGTERM before cancellation")
		cacheBytes  = fs.Int64("cache-bytes", serve.DefaultCacheBytes, "solve-result cache budget in bytes (0 disables caching and request collapsing)")
		metrics     = fs.String("metrics", "", "write the final telemetry snapshot as JSON to this file at drain ('-' = stdout)")
		events      = fs.String("events", "", "stream telemetry events (request lifecycle + solver rounds) as JSONL to this file")
		peers       = fs.String("peers", "", "comma-separated peer base URLs (e.g. http://10.0.0.2:8080,...); non-empty enables cluster mode")
		advertise   = fs.String("advertise", "", "this node's own base URL as peers reach it (default http://<resolved listen address>)")
		gossipEvery = fs.Duration("gossip-every", clusterd.DefaultGossipEvery, "period between peer health probes in cluster mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tel, err := newTelemetry(*metrics, *events)
	if err != nil {
		return err
	}
	qd := *queue
	if qd == 0 {
		qd = -1 // Config's "no waiting"; its 0 means the default depth
	}
	cb := *cacheBytes
	if cb == 0 {
		cb = -1 // Config's "caching off"; its 0 means the default budget
	}
	// Listen before building the cluster: the default advertise URL is the
	// resolved address (which a ":0" port only has after binding).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("cdserved: listen: %w", err)
	}
	var cluster *clusterd.Cluster
	if *peers != "" {
		adv := *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		cluster = clusterd.New(clusterd.Config{
			Advertise:   adv,
			Peers:       strings.Split(*peers, ","),
			GossipEvery: *gossipEvery,
			Obs:         tel.Collector(),
		})
	}
	srv := serve.New(serve.Config{
		Workers:     *workers,
		QueueDepth:  qd,
		MaxBody:     *maxBody,
		RetryAfter:  *retryAfter,
		MaxDeadline: *maxDeadline,
		CacheBytes:  cb,
		Obs:         tel.Collector(),
		Cluster:     cluster,
	})
	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(stdout, "cdserved: listening on http://%s (%d solvers, %d workers)\n",
		ln.Addr(), len(solver.Names()), nw)
	if cluster != nil {
		fmt.Fprintf(stdout, "cdserved: cluster mode, advertising %s to %d peer(s), gossip every %s\n",
			cluster.Advertise(), cluster.NumPeers(), *gossipEvery)
		cluster.Start()
		defer cluster.Stop()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		// The listener died on its own; nothing to drain.
		return fmt.Errorf("cdserved: %w", err)
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "cdserved: draining (grace %s)\n", *drainGrace)
	// The drain context bounds total shutdown even if a handler wedges;
	// the grace period governs when in-flight solves are cancelled.
	dctx, cancel := context.WithTimeout(context.Background(), *drainGrace+30*time.Second)
	defer cancel()
	if err := srv.Drain(dctx, *drainGrace); err != nil {
		return fmt.Errorf("cdserved: drain: %w", err)
	}
	if err := <-serveErr; err != nil {
		return fmt.Errorf("cdserved: %w", err)
	}
	fmt.Fprintln(stdout, "cdserved: drain complete")
	return tel.Close(stdout)
}
