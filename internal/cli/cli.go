// Package cli implements the logic behind the cmd/ executables as testable
// functions: each tool parses its own flag set, reads/writes through
// injected streams, and returns an error instead of exiting. The cmd/
// wrappers only wire os.Stdin/Stdout/Stderr and os.Exit.
package cli

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/optimize"
	"repro/internal/trace"
)

// AlgorithmByName resolves the paper's algorithm names (greedy1..greedy4,
// plus the greedy2-lazy accelerated variant) to runnable algorithms.
func AlgorithmByName(name string) (core.Algorithm, error) {
	switch name {
	case "greedy1":
		return core.RoundBased{Solver: optimize.Multistart{}}, nil
	case "greedy2":
		return core.LocalGreedy{}, nil
	case "greedy2-lazy":
		return core.LazyGreedy{}, nil
	case "greedy3":
		return core.SimpleGreedy{}, nil
	case "greedy4":
		return core.ComplexGreedy{}, nil
	case "greedy2+swap":
		return core.SwapLocalSearch{}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (greedy1 | greedy2 | greedy2-lazy | greedy2+swap | greedy3 | greedy4)", name)
	}
}

// describeCenter renders a broadcast content vector, labelling each
// coordinate with the trace's keyword for that dimension when available
// (the paper's "m keywords in m-D space" reading of interest vectors).
func describeCenter(c []float64, keywords []string) string {
	if len(keywords) != len(c) {
		v := make([]string, len(c))
		for i, x := range c {
			v[i] = fmt.Sprintf("%.3f", x)
		}
		return "(" + strings.Join(v, ", ") + ")"
	}
	parts := make([]string, len(c))
	for i, x := range c {
		parts[i] = fmt.Sprintf("%s=%.3f", keywords[i], x)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// ReadTrace loads a trace from a path: "-" reads JSON from stdin; a ".csv"
// suffix selects the CSV parser, anything else JSON.
func ReadTrace(path string, stdin io.Reader) (*trace.Trace, error) {
	if path == "-" {
		return trace.ReadJSON(stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return trace.ReadCSV(f)
	}
	return trace.ReadJSON(f)
}
