// Package cli implements the logic behind the cmd/ executables as testable
// functions: each tool parses its own flag set, reads/writes through
// injected streams, and returns an error instead of exiting. The cmd/
// wrappers only wire os.Stdin/Stdout/Stderr and os.Exit.
package cli

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/solver"
	"repro/internal/trace"
)

// withTimeout applies the tools' shared -timeout semantics: 0 keeps the
// caller's context (normalizing nil to Background), a positive duration adds
// a deadline. The returned cancel must always be called.
func withTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return context.WithCancel(ctx)
}

// cancelNote reports a run cut short by -timeout or an interrupt. The tools
// treat cancellation as a clean exit: partial results are printed, this note
// explains why they are partial, and the process exits zero.
func cancelNote(stdout io.Writer, err error) {
	fmt.Fprintf(stdout, "note: run stopped early (%v); output reflects only the work completed before cancellation\n", err)
}

// AlgorithmByName resolves an algorithm name through the solver registry —
// the CLI holds no name→constructor table of its own, so its vocabulary is
// exactly the registry's (greedy1..greedy4 plus the accelerated and baseline
// variants), and unknown names report the full sorted catalog.
func AlgorithmByName(name string) (core.Algorithm, error) {
	return solver.New(name, solver.Options{})
}

// describeCenter renders a broadcast content vector, labelling each
// coordinate with the trace's keyword for that dimension when available
// (the paper's "m keywords in m-D space" reading of interest vectors).
func describeCenter(c []float64, keywords []string) string {
	if len(keywords) != len(c) {
		v := make([]string, len(c))
		for i, x := range c {
			v[i] = fmt.Sprintf("%.3f", x)
		}
		return "(" + strings.Join(v, ", ") + ")"
	}
	parts := make([]string, len(c))
	for i, x := range c {
		parts[i] = fmt.Sprintf("%s=%.3f", keywords[i], x)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// ReadTrace loads a trace from a path: "-" reads JSON from stdin; a ".csv"
// suffix selects the CSV parser, anything else JSON.
func ReadTrace(path string, stdin io.Reader) (*trace.Trace, error) {
	if path == "-" {
		return trace.ReadJSON(stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return trace.ReadCSV(f)
	}
	return trace.ReadJSON(f)
}
