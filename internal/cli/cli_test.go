package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/pointset"
	"repro/internal/solver"
)

func TestAlgorithmByName(t *testing.T) {
	cases := map[string]string{
		"greedy1":      "greedy1",
		"greedy2":      "greedy2",
		"greedy2-lazy": "greedy2-lazy",
		"greedy3":      "greedy3",
		"greedy4":      "greedy4",
	}
	for name, want := range cases {
		a, err := AlgorithmByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() != want {
			t.Errorf("%s resolved to %s", name, a.Name())
		}
	}
	if _, err := AlgorithmByName("bogus"); err == nil {
		t.Error("bogus algorithm accepted")
	}
	// greedy1 must come wired with a solver.
	a, _ := AlgorithmByName("greedy1")
	if rb, ok := a.(core.RoundBased); !ok || rb.Solver == nil {
		t.Error("greedy1 not wired with an inner solver")
	}
}

func TestWeightSchemeByName(t *testing.T) {
	if s, err := WeightSchemeByName("same"); err != nil || s != pointset.UnitWeight {
		t.Error("same scheme wrong")
	}
	if s, err := WeightSchemeByName("random"); err != nil || s != pointset.RandomIntWeight {
		t.Error("random scheme wrong")
	}
	if _, err := WeightSchemeByName("x"); err == nil {
		t.Error("bad scheme accepted")
	}
}

func genJSON(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	full := append([]string{"-n", "20", "-seed", "3"}, args...)
	if err := TraceGen(context.Background(), full, &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestTraceGenJSONAndCSV(t *testing.T) {
	js := genJSON(t)
	if !strings.Contains(js, `"users"`) || !strings.Contains(js, `"interest"`) {
		t.Errorf("json output wrong: %.80s", js)
	}
	var csvOut bytes.Buffer
	if err := TraceGen(context.Background(), []string{"-n", "5", "-format", "csv"}, &csvOut); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvOut.String(), "id,weight,x0,x1") {
		t.Errorf("csv output wrong: %.40s", csvOut.String())
	}
}

// TestTraceGenSetFormat: -format set emits the pointset wire schema — the
// exact JSON the serving layer decodes as a /v1/solve "instance".
func TestTraceGenSetFormat(t *testing.T) {
	var out bytes.Buffer
	if err := TraceGen(context.Background(), []string{"-n", "7", "-seed", "3", "-format", "set"}, &out); err != nil {
		t.Fatal(err)
	}
	var set pointset.Set
	if err := json.Unmarshal(out.Bytes(), &set); err != nil {
		t.Fatalf("set output does not round-trip the pointset codec: %v\n%s", err, out.String())
	}
	if set.Len() != 7 || set.Dim() != 2 {
		t.Errorf("set is %dx%d, want 7x2", set.Len(), set.Dim())
	}
	if !strings.Contains(out.String(), `"dim"`) || !strings.Contains(out.String(), `"points"`) {
		t.Errorf("set output missing schema fields: %.80s", out.String())
	}
}

func TestTraceGenRejects(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-kind", "bogus"},
		{"-weights", "bogus"},
		{"-format", "bogus"},
		{"-dim", "0"},
		{"-side", "-1"},
		{"-n", "0"},
	} {
		if err := TraceGen(context.Background(), args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestTraceGenDeterministic(t *testing.T) {
	if genJSON(t) != genJSON(t) {
		t.Error("same seed produced different traces")
	}
}

func TestGreedyPipeline(t *testing.T) {
	js := genJSON(t)
	var out bytes.Buffer
	err := Greedy(context.Background(), []string{"-alg", "greedy2", "-k", "2", "-r", "1.5", "-exhaustive"},
		strings.NewReader(js), &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"greedy2 on 20 users", "round", "total reward", "exhaustive baseline", "approximation ratio"} {
		if !strings.Contains(text, want) {
			t.Errorf("cdgreedy output missing %q:\n%s", want, text)
		}
	}
}

func TestKeywordsFlowThrough(t *testing.T) {
	var trOut bytes.Buffer
	if err := TraceGen(context.Background(), []string{"-n", "10", "-keywords", "genre,tempo"}, &trOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trOut.String(), `"keywords"`) || !strings.Contains(trOut.String(), "genre") {
		t.Fatalf("keywords not serialized: %.120s", trOut.String())
	}
	var out bytes.Buffer
	if err := Greedy(context.Background(), []string{"-k", "1", "-r", "1.5"}, strings.NewReader(trOut.String()), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "genre=") || !strings.Contains(out.String(), "tempo=") {
		t.Errorf("centers not keyword-labelled:\n%s", out.String())
	}
	// Keyword count must match the dimension.
	if err := TraceGen(context.Background(), []string{"-n", "5", "-keywords", "only-one"}, &trOut); err == nil {
		t.Error("mismatched keyword count accepted")
	}
	// Empty keyword rejected.
	if err := TraceGen(context.Background(), []string{"-n", "5", "-keywords", "a,"}, &trOut); err == nil {
		t.Error("empty keyword accepted")
	}
}

func TestGreedyJSONOutput(t *testing.T) {
	js := genJSON(t)
	var out bytes.Buffer
	if err := Greedy(context.Background(), []string{"-json", "-alg", "greedy3", "-k", "2", "-r", "1.5"},
		strings.NewReader(js), &out); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Algorithm string      `json:"algorithm"`
		Centers   [][]float64 `json:"centers"`
		Gains     []float64   `json:"gains"`
		Total     float64     `json:"total"`
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid json: %v\n%s", err, out.String())
	}
	if parsed.Algorithm != "greedy3" || len(parsed.Centers) != 2 || len(parsed.Gains) != 2 {
		t.Fatalf("json shape wrong: %+v", parsed)
	}
	var sum float64
	for _, g := range parsed.Gains {
		sum += g
	}
	if sum != parsed.Total {
		t.Fatalf("gains %v do not sum to total %v", parsed.Gains, parsed.Total)
	}
}

func TestGreedyAllFlag(t *testing.T) {
	js := genJSON(t)
	var out bytes.Buffer
	if err := Greedy(context.Background(), []string{"-all", "-k", "2", "-r", "1.5", "-exhaustive"},
		strings.NewReader(js), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"all algorithms", "greedy1", "greedy2", "greedy3", "greedy4", "exhaustive baseline"} {
		if !strings.Contains(text, want) {
			t.Errorf("-all output missing %q:\n%s", want, text)
		}
	}
}

func TestGreedyFromFiles(t *testing.T) {
	dir := t.TempDir()
	js := genJSON(t)
	jsonPath := filepath.Join(dir, "t.json")
	if err := os.WriteFile(jsonPath, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := TraceGen(context.Background(), []string{"-n", "10", "-format", "csv"}, &csvBuf); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(csvPath, csvBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{jsonPath, csvPath} {
		var out bytes.Buffer
		if err := Greedy(context.Background(), []string{"-trace", path, "-alg", "greedy3", "-k", "1"}, nil, &out); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !strings.Contains(out.String(), "greedy3") {
			t.Errorf("%s: output missing algorithm name", path)
		}
	}
	var out bytes.Buffer
	if err := Greedy(context.Background(), []string{"-trace", filepath.Join(dir, "missing.json")}, nil, &out); err == nil {
		t.Error("missing file accepted")
	}
}

func TestGreedyRejects(t *testing.T) {
	js := genJSON(t)
	var out bytes.Buffer
	if err := Greedy(context.Background(), []string{"-alg", "bogus"}, strings.NewReader(js), &out); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := Greedy(context.Background(), []string{"-norm", "bogus"}, strings.NewReader(js), &out); err == nil {
		t.Error("bad norm accepted")
	}
	if err := Greedy(context.Background(), []string{"-r", "-2"}, strings.NewReader(js), &out); err == nil {
		t.Error("bad radius accepted")
	}
	// Gigantic exhaustive request must be refused, not attempted.
	var big bytes.Buffer
	if err := TraceGen(context.Background(), []string{"-n", "200", "-seed", "1"}, &big); err != nil {
		t.Fatal(err)
	}
	if err := Greedy(context.Background(), []string{"-k", "8", "-exhaustive", "-grid", "9"},
		strings.NewReader(big.String()), &out); err == nil || !strings.Contains(err.Error(), "enumerate") {
		t.Errorf("oversized exhaustive not refused: %v", err)
	}
}

func TestStationPipeline(t *testing.T) {
	js := genJSON(t, "-kind", "clustered")
	var out bytes.Buffer
	err := Station(context.Background(), []string{"-alg", "greedy2", "-k", "2", "-periods", "3"},
		strings.NewReader(js), &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"base station", "mean satisfaction", "fairness", "service frequency"} {
		if !strings.Contains(text, want) {
			t.Errorf("cdstation output missing %q:\n%s", want, text)
		}
	}
	if strings.Count(text, "\n") < 6 {
		t.Error("cdstation output too short")
	}
}

func TestStationChurnMode(t *testing.T) {
	js := genJSON(t, "-n", "30")
	var out bytes.Buffer
	err := Station(context.Background(), []string{
		"-churn", "-arrivals", "3", "-departs", "2", "-periods", "4",
		"-warm", "-index", "grid", "-verify", "-alg", "greedy3",
	}, strings.NewReader(js), &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"churn loop", "carry-over", "mean population", "incremental deltas"} {
		if !strings.Contains(text, want) {
			t.Errorf("churn output missing %q:\n%s", want, text)
		}
	}
}

func TestStationMultiStation(t *testing.T) {
	js := genJSON(t, "-kind", "clustered", "-n", "40")
	var out bytes.Buffer
	err := Station(context.Background(), []string{"-stations", "3", "-k", "1", "-periods", "2"},
		strings.NewReader(js), &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"3 stations", "aggregate satisfaction", "total budget 3"} {
		if !strings.Contains(text, want) {
			t.Errorf("multi-station output missing %q:\n%s", want, text)
		}
	}
	if err := Station(context.Background(), []string{"-stations", "2", "-assign", "bogus"},
		strings.NewReader(genJSON(t)), &out); err == nil {
		t.Error("bad assignment accepted")
	}
}

func TestTimelinePipeline(t *testing.T) {
	var tlOut bytes.Buffer
	if err := TraceGen(context.Background(), []string{"-n", "15", "-seed", "4", "-timeline", "3"}, &tlOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tlOut.String(), `"snapshots"`) {
		t.Fatalf("timeline json wrong: %.80s", tlOut.String())
	}
	var out bytes.Buffer
	if err := Station(context.Background(), []string{"-timeline", "-k", "2", "-r", "1.5"},
		strings.NewReader(tlOut.String()), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"timeline replay", "3 periods", "mean satisfaction"} {
		if !strings.Contains(text, want) {
			t.Errorf("timeline replay output missing %q:\n%s", want, text)
		}
	}
	// Timeline with CSV format is refused.
	var junk bytes.Buffer
	if err := TraceGen(context.Background(), []string{"-timeline", "2", "-format", "csv"}, &junk); err == nil {
		t.Error("timeline csv accepted")
	}
	// Timeline replay from a file, plus its error paths.
	dir := t.TempDir()
	path := filepath.Join(dir, "tl.json")
	if err := os.WriteFile(path, tlOut.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := Station(context.Background(), []string{"-timeline", "-trace", path, "-k", "1"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "timeline replay") {
		t.Error("file-based timeline replay failed")
	}
	if err := Station(context.Background(), []string{"-timeline", "-trace", filepath.Join(dir, "missing.json")}, nil, &out); err == nil {
		t.Error("missing timeline file accepted")
	}
	if err := Station(context.Background(), []string{"-timeline", "-alg", "bogus"}, strings.NewReader(tlOut.String()), &out); err == nil {
		t.Error("bad algorithm accepted in timeline mode")
	}
	if err := Station(context.Background(), []string{"-timeline", "-norm", "bogus"}, strings.NewReader(tlOut.String()), &out); err == nil {
		t.Error("bad norm accepted in timeline mode")
	}
	if err := Station(context.Background(), []string{"-timeline"}, strings.NewReader("{"), &out); err == nil {
		t.Error("bad timeline json accepted")
	}
}

func TestStationRejects(t *testing.T) {
	js := genJSON(t)
	var out bytes.Buffer
	if err := Station(context.Background(), []string{"-alg", "bogus"}, strings.NewReader(js), &out); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := Station(context.Background(), []string{"-periods", "0"}, strings.NewReader(js), &out); err == nil {
		t.Error("bad periods accepted")
	}
	if err := Station(context.Background(), []string{"-replace", "2"}, strings.NewReader(js), &out); err == nil {
		t.Error("bad replacement probability accepted")
	}
	if err := Station(context.Background(), []string{"-churn", "-index", "quadtree"}, strings.NewReader(js), &out); err == nil {
		t.Error("bad churn index accepted")
	}
}

func TestBenchListAndQuick(t *testing.T) {
	var out bytes.Buffer
	if err := Bench(context.Background(), []string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig2", "table1", "summary", "ablation-scale"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
	out.Reset()
	if err := Bench(context.Background(), []string{"-run", "fig2", "-plot"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "fig2-n10") || !strings.Contains(text, "approx1") {
		t.Errorf("fig2 output wrong:\n%.200s", text)
	}
	if !strings.Contains(text, "x: number of centers k") {
		t.Error("plot not rendered")
	}
	if err := Bench(context.Background(), []string{"-run", "bogus"}, &out); err == nil {
		t.Error("bad experiment id accepted")
	}
}

func TestBenchCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := Bench(context.Background(), []string{"-run", "fig2", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2-n10.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "x,") {
		t.Errorf("csv header wrong: %.40s", data)
	}
}

func TestBenchMarkdownOutput(t *testing.T) {
	dir := t.TempDir()
	mdPath := filepath.Join(dir, "report.md")
	var out bytes.Buffer
	if err := Bench(context.Background(), []string{"-run", "fig2", "-md", mdPath}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	for _, want := range []string{"## fig2", "| k | approx1 | approx2 |", "**fig2-n10"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%.300s", want, md)
		}
	}
}

func TestBenchQuickTable1(t *testing.T) {
	var out bytes.Buffer
	if err := Bench(context.Background(), []string{"-run", "table1", "-quick", "-seed", "42"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Greedy 4") {
		t.Errorf("table1 output wrong:\n%s", out.String())
	}
}

func TestBenchUnknownExperimentListsSortedCatalog(t *testing.T) {
	var out bytes.Buffer
	err := Bench(context.Background(), []string{"-run", "nope"}, &out)
	if err == nil {
		t.Fatal("unknown experiment id accepted")
	}
	ids := make([]string, 0)
	for _, e := range experiments.Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	// Same " | " catalog format as the solver registry's unknown-name error:
	// cdbench -run and cdgreedy -alg answer typos identically.
	if want := strings.Join(ids, " | "); !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not list the sorted experiment catalog %q", err, want)
	}
}

func TestGreedyUnknownAlgorithmListsSortedCatalog(t *testing.T) {
	var trOut, out bytes.Buffer
	if err := TraceGen(context.Background(), []string{"-n", "5"}, &trOut); err != nil {
		t.Fatal(err)
	}
	err := Greedy(context.Background(), []string{"-alg", "nope"}, strings.NewReader(trOut.String()), &out)
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if want := strings.Join(solver.Names(), " | "); !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not list the solver catalog %q", err, want)
	}
}

// TestGreedyTimeoutCleanExit: an expired -timeout is a clean exit, not an
// error — partial output plus the early-stop note, per the anytime contract.
func TestGreedyTimeoutCleanExit(t *testing.T) {
	var trOut, out bytes.Buffer
	if err := TraceGen(context.Background(), []string{"-n", "300", "-seed", "3"}, &trOut); err != nil {
		t.Fatal(err)
	}
	err := Greedy(context.Background(), []string{"-k", "8", "-timeout", "1ns"},
		strings.NewReader(trOut.String()), &out)
	if err != nil {
		t.Fatalf("timed-out run must exit cleanly, got %v", err)
	}
	if !strings.Contains(out.String(), "note: run stopped early") {
		t.Errorf("missing early-stop note in output:\n%s", out.String())
	}
}

func TestBenchTimeoutCleanExit(t *testing.T) {
	var out bytes.Buffer
	err := Bench(context.Background(), []string{"-run", "fig2", "-timeout", "1ns"}, &out)
	if err != nil {
		t.Fatalf("timed-out bench must exit cleanly, got %v", err)
	}
	if !strings.Contains(out.String(), "note: run stopped early") {
		t.Errorf("missing early-stop note in output:\n%s", out.String())
	}
}

func TestStationTimeoutCleanExit(t *testing.T) {
	var trOut, out bytes.Buffer
	if err := TraceGen(context.Background(), []string{"-n", "200", "-seed", "5"}, &trOut); err != nil {
		t.Fatal(err)
	}
	err := Station(context.Background(), []string{"-k", "4", "-periods", "50", "-timeout", "1ns"},
		strings.NewReader(trOut.String()), &out)
	if err != nil {
		t.Fatalf("timed-out station run must exit cleanly, got %v", err)
	}
	if !strings.Contains(out.String(), "note: run stopped early") {
		t.Errorf("missing early-stop note in output:\n%s", out.String())
	}
}

// TestGreedySharded: -shards routes the solve through the sharded pipeline
// (the reported algorithm is the composite name), -alg accepts the
// composite form directly, and a negative count is rejected.
func TestGreedySharded(t *testing.T) {
	js := genJSON(t, "-n", "60")
	var out bytes.Buffer
	if err := Greedy(context.Background(), []string{"-json", "-shards", "3", "-k", "2", "-r", "0.8"},
		strings.NewReader(js), &out); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Algorithm string    `json:"algorithm"`
		Gains     []float64 `json:"gains"`
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid json: %v\n%s", err, out.String())
	}
	if parsed.Algorithm != "sharded(greedy2)" || len(parsed.Gains) != 2 {
		t.Fatalf("sharded run reported %+v", parsed)
	}

	out.Reset()
	if err := Greedy(context.Background(), []string{"-alg", "sharded(greedy2-lazy)", "-k", "2", "-r", "0.8"},
		strings.NewReader(genJSON(t, "-n", "60")), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sharded(greedy2-lazy)") {
		t.Errorf("table output missing the composite name:\n%s", out.String())
	}

	err := Greedy(context.Background(), []string{"-shards", "-2", "-k", "1"},
		strings.NewReader(genJSON(t)), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("negative -shards: err = %v", err)
	}
}

// TestGreedyShardingValidation: cdgreedy rejects out-of-range -shards/-halo
// up front with the exact error text /v1/solve answers with — both surfaces
// share solver.ValidateSharding, so they cannot drift.
func TestGreedyShardingValidation(t *testing.T) {
	cases := []struct {
		name         string
		args         []string
		shards, halo int
	}{
		{"negative shards", []string{"-shards", "-1", "-k", "1"}, -1, 0},
		{"below-range halo", []string{"-shards", "2", "-halo", "-2", "-k", "1"}, 2, -2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Greedy(context.Background(), tc.args, strings.NewReader(genJSON(t)), io.Discard)
			if err == nil {
				t.Fatal("out-of-range sharding flags accepted")
			}
			want := "cdgreedy: " + solver.ValidateSharding(tc.shards, tc.halo).Error()
			if err.Error() != want {
				t.Errorf("error %q, want %q", err, want)
			}
		})
	}
	// halo = -1 stays valid: it means "no halo", matching /v1/solve.
	if err := Greedy(context.Background(), []string{"-shards", "2", "-halo", "-1", "-k", "1"},
		strings.NewReader(genJSON(t)), io.Discard); err != nil {
		t.Fatalf("-halo -1 must stay accepted: %v", err)
	}
}

// TestGreedyNearLinear: -alg nearlinear runs end to end and -refine threads
// through to the solver options.
func TestGreedyNearLinear(t *testing.T) {
	js := genJSON(t, "-n", "80")
	var out bytes.Buffer
	if err := Greedy(context.Background(), []string{"-json", "-alg", "nearlinear", "-refine", "3", "-k", "2", "-r", "0.8"},
		strings.NewReader(js), &out); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Algorithm string    `json:"algorithm"`
		Gains     []float64 `json:"gains"`
		Total     float64   `json:"total"`
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid json: %v\n%s", err, out.String())
	}
	if parsed.Algorithm != "nearlinear" || len(parsed.Gains) != 2 || parsed.Total <= 0 {
		t.Fatalf("nearlinear run reported %+v", parsed)
	}
}
