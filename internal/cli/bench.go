package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
)

// Bench implements cdbench: regenerate paper tables and figures.
// Cancellation (ctx or -timeout) is a clean exit: experiments that finished
// are already printed, the partially-run one is dropped with a note.
func Bench(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cdbench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		runID   = fs.String("run", "all", "experiment id to run, or 'all'")
		seed    = fs.Uint64("seed", 42, "experiment seed (results are reproducible per seed)")
		trials  = fs.Int("trials", 0, "trials per configuration cell (0 = default 5)")
		workers = fs.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		quick   = fs.Bool("quick", false, "shrunken smoke-test run")
		csvDir  = fs.String("csv", "", "directory to also write per-figure CSV files into")
		mdPath  = fs.String("md", "", "file to write a consolidated markdown report into")
		plot    = fs.Bool("plot", false, "render each figure as an ASCII chart too")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		metrics = fs.String("metrics", "", "write a telemetry snapshot (per-experiment wall time plus solver counters) as JSON to this file ('-' = stdout)")
		timeout = fs.Duration("timeout", 0, "overall deadline; on expiry completed experiments stand and the tool exits cleanly (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := withTimeout(ctx, *timeout)
	defer cancel()
	if *list {
		for _, e := range experiments.Registry() {
			fmt.Fprintf(stdout, "%-22s %s\n", e.ID, e.Title)
		}
		return nil
	}
	tel, err := newTelemetry(*metrics, "")
	if err != nil {
		return err
	}
	col := tel.Collector()

	cfg := experiments.RunConfig{Seed: *seed, Trials: *trials, Workers: *workers, Quick: *quick, Obs: col}
	var todo []experiments.Experiment
	if *runID == "all" {
		todo = experiments.Registry()
	} else {
		e, err := experiments.ByID(*runID)
		if err != nil {
			return err
		}
		todo = []experiments.Experiment{e}
	}

	var md strings.Builder
	for _, e := range todo {
		if cerr := ctx.Err(); cerr != nil {
			cancelNote(stdout, cerr)
			break
		}
		start := time.Now()
		out, err := e.Run(ctx, cfg)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				fmt.Fprintf(stdout, "### %s — %s: stopped early, results dropped\n\n", e.ID, e.Title)
				cancelNote(stdout, cerr)
				break
			}
			return fmt.Errorf("cdbench: %s: %w", e.ID, err)
		}
		if obs.Active(col) {
			col.Count(obs.CtrExperiments, 1)
			ns := time.Since(start).Nanoseconds()
			col.TimeNS(obs.TimExperiment, ns)
			col.Emit(obs.Event{Type: obs.EvExperiment, Alg: e.ID,
				Fields: map[string]float64{"wall_ns": float64(ns)}})
		}
		if *mdPath != "" {
			md.WriteString(report.RenderMarkdown(
				fmt.Sprintf("%s — %s", e.ID, e.Title), out.Tables, out.Figures, out.Notes))
		}
		fmt.Fprintf(stdout, "### %s — %s (%.2fs)\n\n", e.ID, e.Title, time.Since(start).Seconds())
		fmt.Fprint(stdout, out.Render())
		if *plot {
			for _, f := range out.Figures {
				fmt.Fprint(stdout, report.LinePlot(f, 72, 20))
				fmt.Fprintln(stdout)
			}
		}
		fmt.Fprintln(stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			for _, f := range out.Figures {
				path := filepath.Join(*csvDir, f.ID+".csv")
				if err := os.WriteFile(path, []byte(f.RenderCSV()), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(stdout, "wrote %s\n", path)
			}
		}
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *mdPath)
	}
	return tel.Close(stdout)
}
