package cli

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// readSnapshot parses a -metrics output file.
func readSnapshot(t *testing.T, path string) obs.Snapshot {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s obs.Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("metrics file not a Snapshot: %v\n%.200s", err, data)
	}
	return s
}

// TestGreedyMetricsAllAlgorithms is the acceptance path: -all -metrics must
// emit per-round gains, reward-evaluation counts, and wall time per round
// for every algorithm in one snapshot.
func TestGreedyMetricsAllAlgorithms(t *testing.T) {
	js := genJSON(t, "-n", "40")
	dir := t.TempDir()
	mPath := filepath.Join(dir, "m.json")
	ePath := filepath.Join(dir, "e.jsonl")
	var out bytes.Buffer
	err := Greedy(context.Background(), []string{"-all", "-k", "2", "-r", "1.5", "-metrics", mPath, "-events", ePath},
		strings.NewReader(js), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := readSnapshot(t, mPath)
	if s.Counters[obs.CtrGainEvals] == 0 {
		t.Error("no reward evaluations counted")
	}
	if s.Counters[obs.CtrRounds] != 4*2 {
		t.Errorf("rounds counter = %d, want 8 (4 algorithms × k=2)", s.Counters[obs.CtrRounds])
	}
	for _, alg := range []string{"greedy1", "greedy2", "greedy3", "greedy4"} {
		rounds := 0
		for _, e := range s.Events {
			if e.Type == obs.EvRoundEnd && e.Alg == alg {
				rounds++
				if _, ok := e.Fields["gain"]; !ok {
					t.Errorf("%s round event missing gain", alg)
				}
				if e.Fields["wall_ns"] <= 0 {
					t.Errorf("%s round event missing wall time", alg)
				}
			}
		}
		if rounds != 2 {
			t.Errorf("%s: %d round_end events, want 2", alg, rounds)
		}
	}
	// The event stream must be valid JSONL with monotonic timestamps.
	f, err := os.Open(ePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var last int64 = -1
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("events line %d invalid: %v", lines, err)
		}
		if e.TNS < last {
			t.Fatalf("events line %d: t_ns went backwards", lines)
		}
		last = e.TNS
	}
	if lines == 0 {
		t.Fatal("no events streamed")
	}
}

func TestGreedyMetricsToStdout(t *testing.T) {
	js := genJSON(t)
	var out bytes.Buffer
	err := Greedy(context.Background(), []string{"-json", "-alg", "greedy3", "-k", "1", "-r", "1.5", "-metrics", "-"},
		strings.NewReader(js), &out)
	if err != nil {
		t.Fatal(err)
	}
	// Two JSON documents on stdout: the result, then the snapshot.
	dec := json.NewDecoder(strings.NewReader(out.String()))
	var result map[string]any
	if err := dec.Decode(&result); err != nil {
		t.Fatalf("result doc: %v", err)
	}
	var snap obs.Snapshot
	if err := dec.Decode(&snap); err != nil {
		t.Fatalf("snapshot doc: %v", err)
	}
	if snap.Counters[obs.CtrRounds] != 1 {
		t.Errorf("rounds = %d, want 1", snap.Counters[obs.CtrRounds])
	}
}

func TestGreedyEventsBadPathRejected(t *testing.T) {
	js := genJSON(t)
	var out bytes.Buffer
	err := Greedy(context.Background(), []string{"-k", "1", "-events", filepath.Join(t.TempDir(), "no", "such", "dir", "e.jsonl")},
		strings.NewReader(js), &out)
	if err == nil {
		t.Error("unwritable events path accepted")
	}
}

// Bad -metrics paths must fail before any solver work runs, not after.
func TestGreedyMetricsBadPathRejectedEagerly(t *testing.T) {
	js := genJSON(t)
	var out bytes.Buffer
	err := Greedy(context.Background(), []string{"-k", "1", "-metrics", filepath.Join(t.TempDir(), "no", "such", "dir", "m.json")},
		strings.NewReader(js), &out)
	if err == nil {
		t.Fatal("unwritable metrics path accepted")
	}
	if out.Len() > 0 {
		t.Errorf("solver ran before the metrics path was checked:\n%s", out.String())
	}
}

func TestStationMetricsAndPprof(t *testing.T) {
	js := genJSON(t)
	dir := t.TempDir()
	mPath := filepath.Join(dir, "m.json")
	var out bytes.Buffer
	err := Station(context.Background(), []string{"-alg", "greedy2-lazy", "-k", "2", "-periods", "2",
		"-metrics", mPath, "-pprof", "127.0.0.1:0"},
		strings.NewReader(js), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pprof: http://") {
		t.Error("pprof address not announced")
	}
	s := readSnapshot(t, mPath)
	// 2 periods × k=2 rounds, scheduled by the lazy algorithm.
	if s.Counters[obs.CtrRounds] < 4 {
		t.Errorf("rounds = %d, want >= 4", s.Counters[obs.CtrRounds])
	}
	// The simulator's per-period reward instances carry the collector too.
	if s.Counters[obs.CtrGainEvals] == 0 {
		t.Error("broadcast instances did not count reward evaluations")
	}
	if err := Station(context.Background(), []string{"-pprof", "256.256.256.256:99999"}, strings.NewReader(js), &out); err == nil {
		t.Error("bad pprof address accepted")
	}
}

func TestBenchMetrics(t *testing.T) {
	dir := t.TempDir()
	mPath := filepath.Join(dir, "m.json")
	var out bytes.Buffer
	if err := Bench(context.Background(), []string{"-run", "table1", "-quick", "-metrics", mPath}, &out); err != nil {
		t.Fatal(err)
	}
	s := readSnapshot(t, mPath)
	if s.Counters[obs.CtrExperiments] != 1 {
		t.Errorf("experiments counter = %d, want 1", s.Counters[obs.CtrExperiments])
	}
	if s.TimersNS[obs.TimExperiment].Count != 1 {
		t.Error("experiment wall time not recorded")
	}
	// The table1 driver runs greedy 2/3/4 with cfg.Obs attached.
	if s.Counters[obs.CtrRounds] == 0 {
		t.Error("experiment rounds not traced through RunConfig.Obs")
	}
	found := false
	for _, e := range s.Events {
		if e.Type == obs.EvExperiment && e.Alg == "table1" {
			found = true
		}
	}
	if !found && s.EventsDropped == 0 {
		t.Error("no experiment event emitted")
	}
}
