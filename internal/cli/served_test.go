package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuf is a goroutine-safe writer: the server goroutine writes while the
// test polls for the listening line.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenLine = regexp.MustCompile(`listening on (http://[^ ]+)`)

// TestServedLifecycle drives the full cdserved lifecycle in-process: start
// on a free port, serve a solve, then cancel the context (what SIGTERM does
// in main) and require a clean "drain complete" exit.
func TestServedLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuf
	done := make(chan error, 1)
	go func() {
		done <- Served(ctx, []string{"-addr", "127.0.0.1:0", "-drain-grace", "2s"},
			strings.NewReader(""), &out)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("server never printed its address; output: %q", out.String())
		} else {
			select {
			case err := <-done:
				t.Fatalf("server exited early: %v (output %q)", err, out.String())
			case <-time.After(5 * time.Millisecond):
			}
		}
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body := `{"instance":{"points":[[0,0],[1,0],[0,1],[3,3]]},"radius":1.5,"k":2}`
	resp, err = http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var solved struct {
		Total   float64 `json:"total"`
		Partial bool    `json:"partial"`
	}
	err = json.NewDecoder(resp.Body).Decode(&solved)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d err %v", resp.StatusCode, err)
	}
	if solved.Total <= 0 || solved.Partial {
		t.Errorf("solve result total=%v partial=%v", solved.Total, solved.Partial)
	}

	cancel() // SIGTERM path
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v (output %q)", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain within 10s")
	}
	for _, want := range []string{"draining (grace", "drain complete"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestServedBadAddr: an unbindable address fails before serving anything.
func TestServedBadAddr(t *testing.T) {
	var out syncBuf
	err := Served(context.Background(), []string{"-addr", "127.0.0.1:-1"},
		strings.NewReader(""), &out)
	if err == nil {
		t.Fatal("bad address accepted")
	}
	if !strings.Contains(err.Error(), "listen") {
		t.Errorf("error %v does not mention listen", err)
	}
}

// TestServedMetricsFlushedOnDrain: the -metrics snapshot lands in stdout
// after a drain, with the serve counters populated.
func TestServedMetricsFlushedOnDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuf
	done := make(chan error, 1)
	go func() {
		done <- Served(ctx, []string{"-addr", "127.0.0.1:0", "-metrics", "-", "-drain-grace", "1s"},
			strings.NewReader(""), &out)
	}()
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" && time.Now().Before(deadline) {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if base == "" {
		t.Fatalf("no listen line: %q", out.String())
	}
	if _, err := http.Get(base + "/healthz"); err != nil {
		t.Fatal(err)
	}
	body := `{"instance":{"points":[[0,0],[1,1]]},"radius":1,"k":1}`
	resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	text := out.String()
	idx := strings.Index(text, "drain complete")
	if idx < 0 {
		t.Fatalf("no drain complete line: %q", text)
	}
	snapshot := text[idx+len("drain complete"):]
	if !strings.Contains(snapshot, `"serve.requests"`) {
		t.Errorf("metrics snapshot missing serve counters: %s", snapshot)
	}
	var parsed struct {
		Counters map[string]int64 `json:"counters"`
	}
	start := strings.Index(snapshot, "{")
	if start < 0 {
		t.Fatalf("no JSON in snapshot region: %q", snapshot)
	}
	if err := json.Unmarshal([]byte(snapshot[start:]), &parsed); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if parsed.Counters["serve.accepted"] < 1 {
		t.Errorf("accepted counter = %d, want >= 1 (%v)", parsed.Counters["serve.accepted"], parsed.Counters)
	}
}
