package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadTraceMissingFile(t *testing.T) {
	_, err := ReadTrace(filepath.Join(t.TempDir(), "nope.json"), nil)
	if err == nil {
		t.Fatal("missing file accepted")
	}
	if !os.IsNotExist(err) {
		t.Errorf("want not-exist error, got %v", err)
	}
}

func TestReadTraceMalformedCSV(t *testing.T) {
	cases := map[string]string{
		"not csv at all":   "this is { not csv\nanything\n",
		"bad weight":       "x,y,w\n0.1,0.2,oops\n",
		"ragged row":       "x,y,w\n0.1,0.2,1\n0.3,0.4\n",
		"no rows":          "x,y,w\n",
		"non-finite coord": "x,y,w\nNaN,0.2,1\n",
	}
	dir := t.TempDir()
	for name, body := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(name, " ", "_")+".csv")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadTrace(path, nil); err == nil {
			t.Errorf("%s: malformed CSV accepted", name)
		}
	}
}

func TestReadTraceMalformedJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"users": [`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(path, nil); err == nil {
		t.Error("truncated JSON accepted")
	}
}

// TestReadTraceStdinRoundTrip pipes cdtrace JSON output back in via "-" and
// checks the parsed trace matches what the generator reported.
func TestReadTraceStdinRoundTrip(t *testing.T) {
	js := genJSON(t, "-n", "17", "-dim", "3")
	tr, err := ReadTrace("-", strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Users) != 17 {
		t.Errorf("users = %d, want 17", len(tr.Users))
	}
	if tr.Dim != 3 {
		t.Errorf("dim = %d, want 3", tr.Dim)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("round-tripped trace invalid: %v", err)
	}
	// Files without a .csv suffix go through the JSON parser too.
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadTrace(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Users) != len(tr.Users) {
		t.Errorf("file vs stdin mismatch: %d vs %d users", len(tr2.Users), len(tr.Users))
	}
}

func TestReadTraceStdinMalformed(t *testing.T) {
	if _, err := ReadTrace("-", strings.NewReader("not json")); err == nil {
		t.Error("malformed stdin JSON accepted")
	}
}
