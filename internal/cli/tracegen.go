package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"

	v1 "repro/api/v1"
	"repro/internal/pointset"
	"repro/internal/trace"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// TraceGen implements cdtrace: generate synthetic interest traces.
// Generation is fast; ctx is honored between the parse and the generate so
// an already-expired deadline still exits cleanly without output.
func TraceGen(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cdtrace", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		n        = fs.Int("n", 40, "number of users")
		dim      = fs.Int("dim", 2, "interest-space dimensionality")
		side     = fs.Float64("side", 4, "side length of the interest region (paper uses 4)")
		kind     = fs.String("kind", "uniform", "population model: uniform | clustered | zipf")
		weights  = fs.String("weights", "random", "weight scheme: same | random (integers 1..5)")
		topics   = fs.Int("topics", 5, "topic/community count for clustered and zipf")
		sigma    = fs.Float64("sigma", 0.3, "within-community spread")
		zipfS    = fs.Float64("zipf-s", 1, "zipf popularity exponent")
		seed     = fs.Uint64("seed", 1, "generator seed")
		format   = fs.String("format", "json", "output format: json | csv | set (the pointset schema POST /v1/solve takes as \"instance\")")
		timeline = fs.Int("timeline", 0, "emit a drifting timeline with this many period snapshots (JSON only)")
		tlDrift  = fs.Float64("timeline-drift", 0.15, "per-period drift sigma for -timeline")
		keywords = fs.String("keywords", "", "comma-separated names for the interest dimensions (e.g. \"genre,tempo\")")
		timeout  = fs.Duration("timeout", 0, "deadline for the generation (0 = none)")
		solveURL = fs.String("solve", "", "POST the generated population to this cdserved base URL's /v1/solve and print the typed response instead of the trace")
		solveK   = fs.Int("k", 4, "broadcast contents to request with -solve")
		solveR   = fs.Float64("r", 1.0, "coverage radius to request with -solve")
		solveAlg = fs.String("alg", "", "solver name to request with -solve (empty = server default)")
		shards   = fs.Int("shards", 0, "options.shards to request with -solve (>1 fans out on a cluster node)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := withTimeout(ctx, *timeout)
	defer cancel()
	if cerr := ctx.Err(); cerr != nil {
		cancelNote(stdout, cerr)
		return nil
	}
	k, err := trace.KindByName(*kind)
	if err != nil {
		return err
	}
	scheme, err := WeightSchemeByName(*weights)
	if err != nil {
		return err
	}
	if *dim <= 0 || *side <= 0 {
		return fmt.Errorf("cdtrace: dim and side must be positive")
	}
	lo, hi := vec.New(*dim), vec.New(*dim)
	for d := range hi {
		hi[d] = *side
	}
	tr, err := trace.Generate(trace.Config{
		N:      *n,
		Box:    pointset.Box{Lo: lo, Hi: hi},
		Kind:   k,
		Scheme: scheme,
		Topics: *topics,
		Sigma:  *sigma,
		ZipfS:  *zipfS,
	}, xrand.New(*seed))
	if err != nil {
		return err
	}
	if *keywords != "" {
		tr.Keywords = strings.Split(*keywords, ",")
		if err := tr.Validate(); err != nil {
			return err
		}
	}
	if *solveURL != "" {
		// One-shot smoke client: the same typed api/v1 Client the cluster
		// forwarding path and cdload use, so a generated population can be
		// thrown at a running server without hand-writing JSON.
		set, err := tr.ToSet()
		if err != nil {
			return err
		}
		req := &v1.SolveRequest{
			Instance: set,
			Radius:   *solveR,
			K:        *solveK,
			Solver:   *solveAlg,
			Options:  v1.SolveOptions{Shards: *shards},
		}
		if err := req.Options.Validate(); err != nil {
			return fmt.Errorf("cdtrace: %v", err)
		}
		resp, err := v1.NewClient(*solveURL, nil).Solve(ctx, req, "")
		if err != nil {
			return fmt.Errorf("cdtrace: solve: %w", err)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(resp)
	}
	if *timeline > 0 {
		if *format != "json" {
			return fmt.Errorf("cdtrace: -timeline supports only -format json")
		}
		tl, err := trace.RecordTimeline(tr, *timeline, *tlDrift, xrand.New(*seed^0x71e))
		if err != nil {
			return err
		}
		return tl.WriteJSON(stdout)
	}
	switch *format {
	case "json":
		return tr.WriteJSON(stdout)
	case "csv":
		return tr.WriteCSV(stdout)
	case "set":
		// The pointset wire schema — the same codec the serving layer
		// decodes, so `cdtrace -format set` output drops straight into a
		// /v1/solve request's "instance" field.
		set, err := tr.ToSet()
		if err != nil {
			return err
		}
		enc := json.NewEncoder(stdout)
		return enc.Encode(set)
	default:
		return fmt.Errorf("cdtrace: unknown format %q (json | csv | set)", *format)
	}
}

// WeightSchemeByName parses the CLI weight-scheme names.
func WeightSchemeByName(s string) (pointset.WeightScheme, error) {
	switch s {
	case "same":
		return pointset.UnitWeight, nil
	case "random":
		return pointset.RandomIntWeight, nil
	default:
		return 0, fmt.Errorf("unknown weight scheme %q (same | random)", s)
	}
}
