package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof
	"os"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
)

// servePprof starts the net/http/pprof endpoint on addr and returns a stop
// function. The listener binds synchronously so a bad address fails fast;
// serving happens in the background for the lifetime of the run.
func servePprof(addr string, stdout io.Writer) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listen: %w", err)
	}
	srv := &http.Server{} // nil handler: the DefaultServeMux pprof routes
	go srv.Serve(ln)
	fmt.Fprintf(stdout, "pprof: http://%s/debug/pprof/\n", ln.Addr())
	return func() { srv.Close() }, nil
}

// Station implements cdstation: the time-slotted base-station simulation.
// Cancellation (ctx or -timeout) is a clean exit: metrics over the periods
// completed so far are printed with a note.
func Station(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("cdstation", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		tracePath = fs.String("trace", "-", "trace file (JSON or CSV by extension; '-' reads JSON from stdin)")
		algName   = fs.String("alg", "greedy2", "scheduler: greedy1 | greedy2 | greedy2-lazy | greedy3 | greedy4")
		k         = fs.Int("k", 2, "broadcasts per period")
		r         = fs.Float64("r", 1.5, "content scope radius")
		normName  = fs.String("norm", "l2", "interest-distance norm: l1 | l2 | linf")
		periods   = fs.Int("periods", 10, "broadcast periods to simulate")
		drift     = fs.Float64("drift", 0.1, "per-period interest drift sigma")
		replace   = fs.Float64("replace", 0.05, "per-period user replacement probability")
		arrivals  = fs.Float64("arrivals", 0, "mean new users per period (Poisson)")
		departs   = fs.Float64("departs", 0, "per-period probability a user leaves for good (-churn mode: mean departures per period, Poisson)")
		churnMode = fs.Bool("churn", false, "dynamic-instance mode: Poisson arrivals/departures maintained incrementally (AddUser/RemoveUser deltas) with a re-solve per period")
		warm      = fs.Bool("warm", false, "with -churn: warm-start each re-solve from the previous period's centers")
		index     = fs.String("index", "none", "with -churn: dynamic spatial index maintained across deltas: none | grid | kdtree")
		verify    = fs.Bool("verify", false, "with -churn: cross-check the incremental objective against a from-scratch rebuild every period")
		slots     = fs.Int("slots", 0, "broadcast slots per period (0 = k)")
		stations  = fs.Int("stations", 1, "number of base stations (users partitioned among them)")
		assign    = fs.String("assign", "nearest-anchor", "multi-station user assignment: random | nearest-anchor")
		timeline  = fs.Bool("timeline", false, "treat the input as a recorded timeline (cdtrace -timeline) and replay it")
		seed      = fs.Uint64("seed", 1, "simulation seed")
		metrics   = fs.String("metrics", "", "write a telemetry snapshot (counters, timers, per-round events) as JSON to this file ('-' = stdout)")
		events    = fs.String("events", "", "stream telemetry events as JSONL to this file")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the run")
		timeout   = fs.Duration("timeout", 0, "overall deadline; on expiry metrics over the completed periods are printed and the tool exits cleanly (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := withTimeout(ctx, *timeout)
	defer cancel()
	if *pprofAddr != "" {
		stop, err := servePprof(*pprofAddr, stdout)
		if err != nil {
			return err
		}
		defer stop()
	}
	tel, err := newTelemetry(*metrics, *events)
	if err != nil {
		return err
	}
	if *timeline {
		if err := stationTimeline(ctx, *tracePath, stdin, stdout, *algName, *k, *r, *normName, *slots, tel); err != nil {
			return err
		}
		return tel.Close(stdout)
	}
	tr, err := ReadTrace(*tracePath, stdin)
	if err != nil {
		return err
	}
	nm, err := norm.ByName(*normName)
	if err != nil {
		return err
	}
	if *churnMode {
		if err := stationChurn(ctx, tr, stdout, broadcast.ChurnConfig{
			K: *k, Radius: *r, Norm: nm, Periods: *periods,
			ArrivalRate: *arrivals, DepartRate: *departs,
			Solver: *algName, Seed: *seed, WarmStart: *warm,
			Index: *index, Verify: *verify, Obs: tel.Collector(),
		}); err != nil {
			return err
		}
		return tel.Close(stdout)
	}
	alg, err := AlgorithmByName(*algName)
	if err != nil {
		return err
	}
	alg = core.Instrument(alg, tel.Collector())
	cfg := broadcast.Config{
		K: *k, Radius: *r, Norm: nm, Periods: *periods,
		DriftSigma: *drift, ChurnRate: *replace,
		ArrivalRate: *arrivals, DepartRate: *departs,
		SlotsPerPeriod: *slots, Seed: *seed, Obs: tel.Collector(),
	}
	sched := broadcast.AlgorithmScheduler{Algo: alg}
	if *stations > 1 {
		var mode broadcast.AssignMode
		switch *assign {
		case "random":
			mode = broadcast.RandomAssign
		case "nearest-anchor":
			mode = broadcast.NearestAnchor
		default:
			return fmt.Errorf("cdstation: unknown assignment %q (random | nearest-anchor)", *assign)
		}
		mm, cerr := broadcast.RunMulti(ctx, tr, sched, cfg, *stations, mode)
		if cerr != nil && (mm == nil || ctx.Err() == nil) {
			return cerr
		}
		tb := report.NewTable(fmt.Sprintf("%d stations (%s assignment), %s, k=%d each, r=%g",
			*stations, *assign, sched.Name(), *k, *r),
			"station", "users", "mean satisfaction", "fairness")
		for _, s := range mm.Stations {
			if s.Users == 0 {
				tb.AddRow(s.Station, 0, "-", "-")
				continue
			}
			tb.AddRow(s.Station, s.Users, s.Metrics.MeanSatisfaction, s.Metrics.Fairness)
		}
		fmt.Fprint(stdout, tb.Render())
		fmt.Fprintf(stdout, "aggregate satisfaction: %.4f (total budget %d broadcasts/period)\n",
			mm.MeanSatisfaction, mm.TotalBroadcasts)
		if cerr != nil {
			cancelNote(stdout, cerr)
		}
		return tel.Close(stdout)
	}
	m, cerr := broadcast.Run(ctx, tr, sched, cfg)
	if cerr != nil && (m == nil || ctx.Err() == nil) {
		return cerr
	}
	tb := report.NewTable(fmt.Sprintf("base station: %s, k=%d, r=%g, %s", m.Scheduler, *k, *r, nm.Name()),
		"period", "reward", "max (Σw)", "satisfaction")
	for _, p := range m.Periods {
		tb.AddRow(p.Period, p.Reward, p.MaxRwd, p.Reward/p.MaxRwd)
	}
	fmt.Fprint(stdout, tb.Render())
	fmt.Fprintf(stdout, "mean satisfaction:    %.4f\n", m.MeanSatisfaction)
	fmt.Fprintf(stdout, "fairness (Jain):      %.4f\n", m.Fairness)
	fmt.Fprintf(stdout, "service frequency:    %.2f rounds/period\n", m.ServiceFrequency)
	fmt.Fprintf(stdout, "satisfaction/slot:    %.4f\n", m.SatisfactionPerSlot)
	if len(m.UserSatisfaction) > 0 {
		// [0, 1] is closed: a perfect score lands in the top bin.
		h, err := stats.NewHistogram(0, 1, 10)
		if err == nil {
			for _, s := range m.UserSatisfaction {
				h.Add(s)
			}
			fmt.Fprintf(stdout, "per-user satisfaction distribution (%d users):\n%s", h.N(), h.Render(32))
		}
	}
	if cerr != nil {
		cancelNote(stdout, cerr)
	}
	return tel.Close(stdout)
}

// stationChurn runs the dynamic-instance churn loop (-churn): the population
// evolves by Poisson arrivals/departures applied as incremental evaluator
// deltas, with one (optionally warm-started) re-solve per period.
func stationChurn(ctx context.Context, tr *trace.Trace, stdout io.Writer, cfg broadcast.ChurnConfig) error {
	m, cerr := broadcast.RunChurn(ctx, tr, cfg)
	if cerr != nil && (m == nil || ctx.Err() == nil) {
		return cerr
	}
	tb := report.NewTable(fmt.Sprintf("churn loop: %s, k=%d, r=%g, arrivals=%g departs=%g, index=%s warm=%v",
		m.Solver, cfg.K, cfg.Radius, cfg.ArrivalRate, cfg.DepartRate, cfg.Index, cfg.WarmStart),
		"period", "users", "+in", "-out", "objective", "carry-over", "satisfaction")
	for _, p := range m.Periods {
		carry := "-"
		if p.Period > 0 {
			carry = fmt.Sprintf("%.4f", p.CarryObjective)
		}
		tb.AddRow(p.Period, p.N, p.Arrivals, p.Departures, p.Objective, carry, p.Objective/p.MaxRwd)
	}
	fmt.Fprint(stdout, tb.Render())
	fmt.Fprintf(stdout, "mean satisfaction:    %.4f\n", m.MeanSatisfaction)
	fmt.Fprintf(stdout, "mean population:      %.1f\n", m.MeanPopulation)
	fmt.Fprintf(stdout, "churn applied:        +%d / -%d users (%d incremental deltas, %d full rebuilds)\n",
		m.TotalArrivals, m.TotalDepartures, m.IncrementalDeltas, m.FullRebuilds)
	if cerr != nil {
		cancelNote(stdout, cerr)
	}
	return nil
}

// stationTimeline replays a recorded timeline through the scheduler. The
// caller owns the telemetry's lifecycle; only the collector is used here.
func stationTimeline(ctx context.Context, path string, stdin io.Reader, stdout io.Writer, algName string, k int, r float64, normName string, slots int, tel *telemetry) error {
	var rdr io.Reader = stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rdr = f
	}
	tl, err := trace.ReadTimelineJSON(rdr)
	if err != nil {
		return err
	}
	nm, err := norm.ByName(normName)
	if err != nil {
		return err
	}
	alg, err := AlgorithmByName(algName)
	if err != nil {
		return err
	}
	alg = core.Instrument(alg, tel.Collector())
	m, cerr := broadcast.RunTimeline(ctx, tl, broadcast.AlgorithmScheduler{Algo: alg}, broadcast.Config{
		K: k, Radius: r, Norm: nm, SlotsPerPeriod: slots, Obs: tel.Collector(),
	})
	if cerr != nil && (m == nil || ctx.Err() == nil) {
		return cerr
	}
	tb := report.NewTable(fmt.Sprintf("timeline replay: %s, %d periods, k=%d, r=%g, %s",
		m.Scheduler, len(m.Periods), k, r, nm.Name()),
		"period", "reward", "max (Σw)", "satisfaction")
	for _, p := range m.Periods {
		tb.AddRow(p.Period, p.Reward, p.MaxRwd, p.Reward/p.MaxRwd)
	}
	fmt.Fprint(stdout, tb.Render())
	fmt.Fprintf(stdout, "mean satisfaction:    %.4f\n", m.MeanSatisfaction)
	fmt.Fprintf(stdout, "fairness (Jain):      %.4f\n", m.Fairness)
	if cerr != nil {
		cancelNote(stdout, cerr)
	}
	return nil
}
