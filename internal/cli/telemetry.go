package cli

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// telemetry bundles the optional observability outputs every tool shares:
// a -metrics JSON snapshot and an -events JSONL stream. The zero cost rule
// holds end to end — with both paths empty, Collector() returns nil and the
// instrumented packages skip their telemetry branches.
type telemetry struct {
	metrics     *obs.Metrics
	metricsFile *os.File // nil when the snapshot goes to stdout
	sink        *obs.Sink
	eventsFile  *os.File
	col         obs.Collector
}

// newTelemetry opens the requested outputs. metricsPath "-" writes the
// snapshot to stdout at Close; eventsPath is always a file (JSONL is a
// stream, not a report). Both files open eagerly so a bad path fails
// before any solver work is spent.
func newTelemetry(metricsPath, eventsPath string) (*telemetry, error) {
	t := &telemetry{}
	var parts []obs.Collector
	if metricsPath != "" {
		t.metrics = obs.NewMetrics()
		if metricsPath != "-" {
			f, err := os.Create(metricsPath)
			if err != nil {
				return nil, fmt.Errorf("metrics output: %w", err)
			}
			t.metricsFile = f
		}
		parts = append(parts, t.metrics)
	}
	if eventsPath != "" {
		f, err := os.Create(eventsPath)
		if err != nil {
			return nil, fmt.Errorf("events output: %w", err)
		}
		t.eventsFile = f
		t.sink = obs.NewSink(f)
		parts = append(parts, t.sink)
	}
	if len(parts) > 0 {
		t.col = obs.Multi(parts...)
	}
	return t, nil
}

// Collector returns the combined collector, or nil when telemetry is off.
func (t *telemetry) Collector() obs.Collector { return t.col }

// Close flushes the event stream and writes the metrics snapshot. It must
// run on the success path only after all instrumented work finished; stdout
// is used when the metrics path is "-".
func (t *telemetry) Close(stdout io.Writer) error {
	if t.sink != nil {
		err := t.sink.Flush()
		if cerr := t.eventsFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("events output: %w", err)
		}
	}
	if t.metrics != nil {
		if t.metricsFile == nil {
			return t.metrics.WriteJSON(stdout)
		}
		werr := t.metrics.WriteJSON(t.metricsFile)
		if cerr := t.metricsFile.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("metrics output: %w", werr)
		}
	}
	return nil
}
