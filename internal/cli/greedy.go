package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"

	v1 "repro/api/v1"
	"repro/internal/core"
	"repro/internal/exhaustive"
	"repro/internal/norm"
	"repro/internal/report"
	"repro/internal/reward"
	"repro/internal/solver"
	"repro/internal/vec"
)

// centersToFloats flattens center vectors for JSON output.
func centersToFloats(cs []vec.V) [][]float64 {
	out := make([][]float64, len(cs))
	for i, c := range cs {
		out[i] = append([]float64{}, c...)
	}
	return out
}

// Greedy implements cdgreedy: run one algorithm on a trace, optionally with
// the exhaustive baseline and ratio. Cancellation (ctx or -timeout) is a
// clean exit: the partial result computed so far is printed with a note.
func Greedy(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("cdgreedy", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		tracePath = fs.String("trace", "-", "trace file (JSON or CSV by extension; '-' reads JSON from stdin)")
		algName   = fs.String("alg", "greedy2", "algorithm: greedy1 | greedy2 | greedy2-lazy | greedy3 | greedy4 | nearlinear, or sharded(<name>)")
		all       = fs.Bool("all", false, "run all four paper algorithms and compare")
		shards    = fs.Int("shards", 0, "split the solve into this many spatial shards solved in parallel and merged (0 = single-shot)")
		halo      = fs.Int("halo", 0, "sharded boundary-halo width in grid-cell rings (0 = default of 1, -1 = none)")
		refine    = fs.Int("refine", 0, "nearlinear per-center local-refinement rounds (0 = default, negative = none)")
		k         = fs.Int("k", 2, "number of broadcasts")
		r         = fs.Float64("r", 1, "coverage radius")
		normName  = fs.String("norm", "l2", "interest-distance norm: l1 | l2 | linf")
		exh       = fs.Bool("exhaustive", false, "also compute the exhaustive baseline and ratio")
		gridPer   = fs.Int("grid", 5, "exhaustive candidate-lattice resolution per dimension (0 = points only)")
		asJSON    = fs.Bool("json", false, "emit the result as JSON instead of a table")
		metrics   = fs.String("metrics", "", "write a telemetry snapshot (counters, timers, per-round events) as JSON to this file ('-' = stdout)")
		events    = fs.String("events", "", "stream telemetry events (round/scan spans, SEB calls) as JSONL to this file")
		timeout   = fs.Duration("timeout", 0, "overall deadline; on expiry the partial result is printed and the tool exits cleanly (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The CLI funnels its solver knobs through the same versioned wire
	// options POST /v1/solve decodes, validated by the same Validate() — one
	// options surface, so the two entry points cannot drift.
	wireOpts := v1.SolveOptions{Shards: *shards, Halo: *halo, Refine: *refine}
	if err := wireOpts.Validate(); err != nil {
		return fmt.Errorf("cdgreedy: %w", err)
	}
	ctx, cancel := withTimeout(ctx, *timeout)
	defer cancel()
	tr, err := ReadTrace(*tracePath, stdin)
	if err != nil {
		return err
	}
	set, err := tr.ToSet()
	if err != nil {
		return err
	}
	nm, err := norm.ByName(*normName)
	if err != nil {
		return err
	}
	in, err := reward.NewInstance(set, nm, *r)
	if err != nil {
		return err
	}
	tel, err := newTelemetry(*metrics, *events)
	if err != nil {
		return err
	}
	in.SetCollector(tel.Collector())
	cancelled := false
	if *asJSON {
		alg, err := solver.New(*algName, wireOpts.SolverOptions())
		if err != nil {
			return err
		}
		alg = core.Instrument(alg, tel.Collector())
		res, err := alg.Run(ctx, in, *k)
		if err != nil {
			if res == nil || ctx.Err() == nil {
				return err
			}
			cancelled = true
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		err = enc.Encode(struct {
			Algorithm string      `json:"algorithm"`
			K         int         `json:"k"`
			Radius    float64     `json:"radius"`
			Norm      string      `json:"norm"`
			Centers   [][]float64 `json:"centers"`
			Gains     []float64   `json:"gains"`
			Total     float64     `json:"total"`
			MaxReward float64     `json:"max_reward"`
			Cancelled bool        `json:"cancelled,omitempty"`
		}{
			Algorithm: res.Algorithm,
			K:         *k,
			Radius:    *r,
			Norm:      nm.Name(),
			Centers:   centersToFloats(res.Centers),
			Gains:     res.Gains,
			Total:     res.Total,
			MaxReward: set.TotalWeight(),
			Cancelled: cancelled,
		})
		if err != nil {
			return err
		}
		return tel.Close(stdout)
	}

	var res *core.Result
	if *all {
		tb := report.NewTable(fmt.Sprintf("all algorithms on %d users (%s, k=%d, r=%g)", set.Len(), nm.Name(), *k, *r),
			"algorithm", "total", "% of Σw")
		for _, name := range []string{"greedy1", "greedy2", "greedy3", "greedy4"} {
			a, err := AlgorithmByName(name)
			if err != nil {
				return err
			}
			a = core.Instrument(a, tel.Collector())
			rr, err := a.Run(ctx, in, *k)
			if err != nil {
				if rr == nil || ctx.Err() == nil {
					return err
				}
				cancelled = true
			}
			tb.AddRow(rr.Algorithm, rr.Total, 100*rr.Total/set.TotalWeight())
			if res == nil || rr.Total > res.Total {
				res = rr
			}
			if cancelled {
				break
			}
		}
		fmt.Fprint(stdout, tb.Render())
	} else {
		alg, err := solver.New(*algName, wireOpts.SolverOptions())
		if err != nil {
			return err
		}
		alg = core.Instrument(alg, tel.Collector())
		res, err = alg.Run(ctx, in, *k)
		if err != nil {
			if res == nil || ctx.Err() == nil {
				return err
			}
			cancelled = true
		}
		tb := report.NewTable(fmt.Sprintf("%s on %d users (%s, k=%d, r=%g)", res.Algorithm, set.Len(), nm.Name(), *k, *r),
			"round", "center", "gain")
		for j, c := range res.Centers {
			tb.AddRow(j+1, describeCenter(c, tr.Keywords), res.Gains[j])
		}
		fmt.Fprint(stdout, tb.Render())
		fmt.Fprintf(stdout, "total reward: %.4f of at most %.4f (%.2f%% of Σw)\n",
			res.Total, set.TotalWeight(), 100*res.Total/set.TotalWeight())
	}

	if *exh && ctx.Err() == nil {
		gridN := 0
		if *gridPer > 0 {
			gridN = 1
			for i := 0; i < set.Dim(); i++ {
				gridN *= *gridPer
			}
		}
		combos := exhaustive.Combinations(set.Len()+gridN, *k)
		if combos > 5e8 {
			return fmt.Errorf("cdgreedy: exhaustive search would enumerate %.3g subsets; reduce -k or -grid", combos)
		}
		ex, err := exhaustive.Solve(ctx, in, *k, exhaustive.Options{
			GridPer: *gridPer, Box: tr.Box(), Polish: true,
		})
		if err != nil {
			if ex == nil || ctx.Err() == nil {
				return err
			}
			cancelled = true
		}
		if ex.Total > 0 && res != nil {
			fmt.Fprintf(stdout, "exhaustive baseline: %.4f — approximation ratio %.4f\n", ex.Total, res.Total/ex.Total)
		}
	}
	if cancelled {
		cancelNote(stdout, ctx.Err())
	}
	return tel.Close(stdout)
}
