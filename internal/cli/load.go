package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/load"
)

// Load implements cdload: the open-loop SLO harness. It offers Poisson
// arrivals at -rate for -duration against -url, prints the SLO report, and
// exits non-zero when the -slo-p99 / -max-5xx objectives are violated — so
// a CI script can gate on `cdload ... || exit 1` directly.
func Load(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("cdload", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		url      = fs.String("url", "http://127.0.0.1:8080", "target base URL, or a comma-separated list to spread load across cluster nodes")
		rate     = fs.Float64("rate", 50, "offered load in requests per second (Poisson arrivals)")
		duration = fs.Duration("duration", 10*time.Second, "how long to generate arrivals")
		churn    = fs.Float64("churn", 0, "fraction of arrivals that are /v1/churn requests, in [0,1]")
		dup      = fs.Float64("dup", 0, "fraction of solve arrivals replaying a previous body (cache hits), in [0,1]; the rest get fresh unique instances")
		n        = fs.Int("n", 200, "users per generated instance")
		dim      = fs.Int("dim", 2, "instance dimensionality")
		k        = fs.Int("k", 4, "broadcast contents per request")
		radius   = fs.Float64("r", 1.0, "coverage radius")
		periods  = fs.Int("periods", 3, "periods per churn request")
		solverN  = fs.String("alg", "", "solver algorithm name (empty = server default)")
		deadline = fs.Int64("deadline-ms", 0, "per-request deadline_ms forwarded to the server (0 = none)")
		seed     = fs.Uint64("seed", 1, "seed for instances and arrival randomness")
		timeout  = fs.Duration("timeout", load.DefaultTimeout, "client-side per-request timeout")
		maxIn    = fs.Int("max-in-flight", load.DefaultMaxInFlight, "cap on outstanding requests; arrivals past it are dropped")
		sloP99   = fs.Duration("slo-p99", 0, "fail unless merged p99 latency is within this bound (0 = unchecked)")
		max5xx   = fs.Int("max-5xx", -1, "fail if more than this many 5xx responses (-1 = unchecked)")
		benchOut = fs.String("bench-out", "", "write benchjson-format records to this file ('-' = stdout)")
		benchTxt = fs.Bool("bench-text", false, "also print go-bench-format lines (pipeable into benchjson)")
		jsonOut  = fs.Bool("json", false, "print the full report as JSON instead of the human summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var targets []string
	for _, u := range strings.Split(*url, ",") {
		if u = strings.TrimSpace(u); u != "" {
			targets = append(targets, u)
		}
	}
	rep, err := load.Run(ctx, load.Config{
		BaseURLs:      targets,
		Rate:          *rate,
		Duration:      *duration,
		ChurnFraction: *churn,
		DupFraction:   *dup,
		N:             *n,
		Dim:           *dim,
		K:             *k,
		Radius:        *radius,
		Periods:       *periods,
		Solver:        *solverN,
		DeadlineMS:    *deadline,
		Seed:          *seed,
		Timeout:       *timeout,
		MaxInFlight:   *maxIn,
	})
	if err != nil {
		return fmt.Errorf("cdload: %w", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return fmt.Errorf("cdload: %w", err)
		}
	} else {
		rep.Print(stdout)
	}
	if *benchTxt {
		rep.WriteBenchText(stdout)
	}
	if *benchOut != "" {
		w := stdout
		if *benchOut != "-" {
			f, err := os.Create(*benchOut)
			if err != nil {
				return fmt.Errorf("cdload: %w", err)
			}
			defer f.Close()
			w = f
		}
		if err := rep.WriteBenchJSON(w); err != nil {
			return fmt.Errorf("cdload: %w", err)
		}
	}
	if err := rep.CheckSLO(*sloP99, *max5xx); err != nil {
		return fmt.Errorf("cdload: %w", err)
	}
	return nil
}
