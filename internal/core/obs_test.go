// Package core_test (external) because the instrumentation tests need
// package optimize for greedy1's inner solver, and optimize imports core.
package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func obsInstance(t *testing.T, n int) *reward.Instance {
	t.Helper()
	set, err := pointset.GenUniform(n, pointset.PaperBox2D(), pointset.RandomIntWeight, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	in, err := reward.NewInstance(set, norm.L2{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// roundEvents extracts the round_end events for alg in order.
func roundEvents(s obs.Snapshot, alg string) []obs.Event {
	var out []obs.Event
	for _, e := range s.Events {
		if e.Type == obs.EvRoundEnd && e.Alg == alg {
			out = append(out, e)
		}
	}
	return out
}

// TestInstrumentedAlgorithmsEmitRounds runs every algorithm with a live
// collector and checks the shared contract: k round_end events whose gains
// match Result.Gains, a positive rounds counter, and unchanged results
// relative to the uninstrumented run.
func TestInstrumentedAlgorithmsEmitRounds(t *testing.T) {
	in := obsInstance(t, 30)
	const k = 3
	algs := []core.Algorithm{
		core.RoundBased{Solver: optimize.Multistart{Workers: 1}},
		core.LocalGreedy{Workers: 1},
		core.LazyGreedy{},
		core.SimpleGreedy{},
		core.ComplexGreedy{Workers: 1},
		core.SwapLocalSearch{},
	}
	for _, bare := range algs {
		bare := bare
		t.Run(bare.Name(), func(t *testing.T) {
			plain, err := bare.Run(context.Background(), in, k)
			if err != nil {
				t.Fatal(err)
			}
			m := obs.NewMetrics()
			inst := core.Instrument(bare, m)
			res, err := inst.Run(context.Background(), in, k)
			if err != nil {
				t.Fatal(err)
			}
			if res.Total != plain.Total {
				t.Errorf("instrumentation changed the result: %v != %v", res.Total, plain.Total)
			}
			s := m.Snapshot()
			rounds := roundEvents(s, bare.Name())
			if len(rounds) != k {
				t.Fatalf("%d round_end events, want %d", len(rounds), k)
			}
			for j, e := range rounds {
				if e.Round != j+1 {
					t.Errorf("round %d event numbered %d", j+1, e.Round)
				}
				if e.Fields["gain"] != res.Gains[j] {
					t.Errorf("round %d event gain %v != result gain %v", j+1, e.Fields["gain"], res.Gains[j])
				}
				if e.Fields["wall_ns"] < 0 {
					t.Errorf("round %d negative wall time", j+1)
				}
			}
			if s.Counters[obs.CtrRounds] != k {
				t.Errorf("rounds counter = %d, want %d", s.Counters[obs.CtrRounds], k)
			}
		})
	}
}

// TestLazyRepopsBelowFullScan checks the claim the telemetry exists to
// verify: LazyGreedy's evaluations after round 1 are fewer than
// LocalGreedy's full n-per-round rescans on a non-trivial instance.
func TestLazyRepopsBelowFullScan(t *testing.T) {
	in := obsInstance(t, 120)
	const k = 6
	m := obs.NewMetrics()
	if _, err := core.Instrument(core.LazyGreedy{}, m).Run(context.Background(), in, k); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	repops := s.Counters[obs.CtrLazyRepops]
	full := int64(120 * (k - 1)) // what LocalGreedy would re-evaluate after round 1
	if repops >= full {
		t.Errorf("lazy repops %d not below full rescan %d", repops, full)
	}
	// Total candidate evaluations = n (initial) + repops.
	if got := s.Counters[obs.CtrCandidates]; got != 120+repops {
		t.Errorf("candidates counter %d != n + repops %d", got, 120+repops)
	}
}

// TestInstrumentedInstanceCountsRewardEvals wires the collector into the
// instance and checks gain-evaluation accounting for greedy2: exactly n
// RoundGain calls per round plus one ApplyRound per round.
func TestInstrumentedInstanceCountsRewardEvals(t *testing.T) {
	in := obsInstance(t, 25)
	const k = 2
	m := obs.NewMetrics()
	in.SetCollector(m)
	defer in.SetCollector(nil)
	if _, err := core.Instrument(core.LocalGreedy{Workers: 1}, m).Run(context.Background(), in, k); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if got := s.Counters[obs.CtrGainEvals]; got != 25*k {
		t.Errorf("gain evals = %d, want %d", got, 25*k)
	}
	if got := s.Counters[obs.CtrApplyRounds]; got != k {
		t.Errorf("apply rounds = %d, want %d", got, k)
	}
}

// TestComplexGreedySEBTelemetry checks that greedy4 reports its
// enclosing-ball constructions and walk steps.
func TestComplexGreedySEBTelemetry(t *testing.T) {
	in := obsInstance(t, 25)
	m := obs.NewMetrics()
	if _, err := core.Instrument(core.ComplexGreedy{Workers: 1}, m).Run(context.Background(), in, 2); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.Counters[obs.CtrSEBCalls] < 1 {
		t.Error("no SEB calls recorded")
	}
	if s.Histograms[obs.ObsSEBPoints].Count < 1 {
		t.Error("no SEB point-count samples recorded")
	}
	sawSEB := false
	for _, e := range s.Events {
		if e.Type == obs.EvSEB {
			sawSEB = true
			if e.Fields["points"] < 1 {
				t.Errorf("seb event without points field: %+v", e)
			}
			break
		}
	}
	if !sawSEB && s.EventsDropped == 0 {
		t.Error("no seb events recorded")
	}
}

// TestInstrumentPreservesBehavior checks Instrument is a no-op for inactive
// collectors and recursively instruments swap seeds.
func TestInstrumentPreservesBehavior(t *testing.T) {
	if a := core.Instrument(core.SimpleGreedy{}, nil); a.(core.SimpleGreedy).Obs != nil {
		t.Error("core.Instrument(nil) attached a collector")
	}
	m := obs.NewMetrics()
	sw := core.Instrument(core.SwapLocalSearch{Seed: core.LazyGreedy{}}, m).(core.SwapLocalSearch)
	if sw.Obs == nil {
		t.Error("swap not instrumented")
	}
	if sw.Seed.(core.LazyGreedy).Obs == nil {
		t.Error("swap seed not instrumented")
	}
	in := obsInstance(t, 20)
	res, err := sw.Run(context.Background(), in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(roundEvents(m.Snapshot(), "greedy2-lazy")) == 0 {
		t.Error("seed rounds not traced")
	}
	if err := res.Validate(); err != nil {
		t.Error(err)
	}
}

// TestValidateToleranceBoundary pins the shared core.SumTolerance constant: a
// discrepancy just inside it passes, just outside fails.
func TestValidateToleranceBoundary(t *testing.T) {
	mk := func(totalDelta float64) *core.Result {
		return &core.Result{
			Algorithm: "x",
			Centers:   []vec.V{vec.Of(0, 0), vec.Of(1, 1)},
			Gains:     []float64{1, 2},
			Total:     3 + totalDelta,
		}
	}
	if err := mk(core.SumTolerance / 2).Validate(); err != nil {
		t.Errorf("delta inside tolerance rejected: %v", err)
	}
	if err := mk(-core.SumTolerance / 2).Validate(); err != nil {
		t.Errorf("negative delta inside tolerance rejected: %v", err)
	}
	if err := mk(core.SumTolerance * 2).Validate(); err == nil {
		t.Error("delta outside tolerance accepted")
	}
	if err := mk(-core.SumTolerance * 2).Validate(); err == nil {
		t.Error("negative delta outside tolerance accepted")
	}
}
