package core_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/optimize"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/vec"
)

// Four users at the corners of a small square: one broadcast placed at the
// square's center satisfies everyone partially, which beats centering on any
// single user. Algorithm 4 finds the interior center; Algorithm 2 is
// restricted to user positions.
func Example() {
	users, _ := pointset.UnitWeights([]vec.V{
		vec.Of(0, 0), vec.Of(0.8, 0), vec.Of(0, 0.8), vec.Of(0.8, 0.8),
	})
	in, _ := reward.NewInstance(users, norm.L2{}, 1)

	local, _ := core.LocalGreedy{}.Run(context.Background(), in, 1)
	complexG, _ := core.ComplexGreedy{}.Run(context.Background(), in, 1)
	fmt.Printf("greedy2 (on a user): %.3f\n", local.Total)
	fmt.Printf("greedy4 (anywhere):  %.3f at %v\n", complexG.Total, complexG.Centers[0])
	// Output:
	// greedy2 (on a user): 1.400
	// greedy4 (anywhere):  1.737 at (0.400, 0.400)
}

// The round-based heuristic (Algorithm 1) accepts any continuous inner
// solver; the multistart compass search is the default choice.
func ExampleRoundBased() {
	users, _ := pointset.UnitWeights([]vec.V{
		vec.Of(1, 1), vec.Of(1.2, 1), vec.Of(3, 3),
	})
	in, _ := reward.NewInstance(users, norm.L2{}, 1)
	res, _ := core.RoundBased{Solver: optimize.Multistart{}}.Run(context.Background(), in, 2)
	fmt.Printf("rounds: %d, total: %.2f\n", len(res.Gains), res.Total)
	// Output:
	// rounds: 2, total: 2.80
}

// LazyGreedy returns exactly Algorithm 2's selections while evaluating far
// fewer candidate gains.
func ExampleLazyGreedy() {
	users, _ := pointset.UnitWeights([]vec.V{
		vec.Of(0, 0), vec.Of(0.1, 0), vec.Of(3, 3), vec.Of(3.1, 3),
	})
	in, _ := reward.NewInstance(users, norm.L2{}, 1)
	a, _ := core.LocalGreedy{}.Run(context.Background(), in, 2)
	b, _ := core.LazyGreedy{}.Run(context.Background(), in, 2)
	fmt.Println(a.Total == b.Total, a.Centers[0].Equal(b.Centers[0]))
	// Output:
	// true true
}
