package core

import (
	"context"
	"errors"

	"repro/internal/obs"
	"repro/internal/reward"
	"repro/internal/vec"
)

// SwapLocalSearch refines another algorithm's solution by 1-swaps: while any
// replacement of one selected center with one candidate data point strictly
// improves the objective, apply the best such swap. For monotone submodular
// objectives under a cardinality constraint, swap-stable solutions carry the
// classical 1/2-approximation guarantee, and seeding from a greedy solution
// means the result is never worse than the seed. The paper stops at pure
// greedy; this is the natural "future work" refinement.
type SwapLocalSearch struct {
	// Seed provides the initial solution (default LocalGreedy).
	Seed Algorithm
	// MaxPasses bounds full sweeps over (center, candidate) pairs
	// (default 10; each pass is O(k·n) objective evaluations of O(kn)).
	MaxPasses int
	// Obs receives telemetry: one obs.EvSwapPass event per sweep, swap
	// evaluations (obs.CtrSwapEvals), and round events for the final
	// gain re-derivation. Use core.Instrument to attach it to the seed
	// algorithm as well.
	Obs obs.Collector
}

// Name implements Algorithm.
func (s SwapLocalSearch) Name() string { return "greedy2+swap" }

// Run implements Algorithm. Cancellation is anytime at two granularities:
// during the seed run the seed's own partial prefix is re-labelled and
// returned, and during swap refinement the current (already valid, never
// worse than the seed) center set is committed and returned.
func (s SwapLocalSearch) Run(ctx context.Context, in *reward.Instance, k int) (*Result, error) {
	if err := checkArgs(in, k); err != nil {
		return nil, err
	}
	ctx = orBG(ctx)
	seed := s.Seed
	if seed == nil {
		seed = LocalGreedy{Workers: 1}
	}
	maxPasses := s.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 10
	}
	init, err := seed.Run(ctx, in, k)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil && init != nil {
			// Seed cancelled mid-run: its partial prefix is the best-so-far
			// solution. Re-commit it under this algorithm's name.
			return cancelRun(s.Obs, s.commit(ctx, in, init.Centers), cerr)
		}
		return nil, err
	}
	// The incremental evaluator re-scores a hypothetical swap in O(n)
	// instead of O(n·k), making each pass O(k·n²) total.
	eval, err := reward.NewEvaluator(in, init.Centers)
	if err != nil {
		return nil, err
	}
	best := eval.Objective()

	active := obs.Active(s.Obs)
	n := in.N()
	// Replace updates the fraction sums incrementally; every O(n) replaces
	// the accumulated IEEE drift is flushed with a full Resync so that swap
	// accept/reject decisions keep comparing against a trustworthy
	// objective (amortized O(k) extra work per replace).
	sinceResync := 0
	cancelled := false
sweep:
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		evals := 0
		for j := 0; j < eval.K(); j++ {
			// Check between slots: the evaluator's center set is a valid
			// (never worse than the seed) solution at every slot boundary.
			if ctx.Err() != nil {
				cancelled = true
				break sweep
			}
			// Best replacement for slot j among all data points.
			bestSwap := vec.V(nil)
			bestVal := best
			for i := 0; i < n; i++ {
				v, err := eval.ObjectiveIfReplaced(j, in.Set.Point(i))
				if err != nil {
					return nil, err
				}
				if v > bestVal+1e-12 {
					bestVal = v
					bestSwap = in.Set.Point(i)
				}
			}
			evals += n
			if bestSwap != nil {
				if err := eval.Replace(j, bestSwap); err != nil {
					return nil, err
				}
				best = bestVal
				improved = true
				if sinceResync++; sinceResync >= n {
					eval.Resync()
					best = eval.Objective()
					sinceResync = 0
				}
			}
		}
		if active {
			s.Obs.Count(obs.CtrSwapPasses, 1)
			s.Obs.Count(obs.CtrSwapEvals, int64(evals))
			improvedF := 0.0
			if improved {
				improvedF = 1
			}
			s.Obs.Emit(obs.Event{Type: obs.EvSwapPass, Alg: s.Name(), Fields: map[string]float64{
				"pass":      float64(pass + 1),
				"improved":  improvedF,
				"objective": best,
			}})
		}
		if !improved {
			break
		}
	}
	res := s.commit(ctx, in, eval.Centers())
	if cancelled {
		return cancelRun(s.Obs, res, ctx.Err())
	}
	if res.Total < init.Total-1e-9 {
		return nil, errors.New("core: swap search regressed below its seed (internal error)")
	}
	return res, nil
}

// commit re-derives per-round gains by applying the centers in order under
// this algorithm's name (the shared tail of the normal and anytime exits).
func (s SwapLocalSearch) commit(ctx context.Context, in *reward.Instance, centers []vec.V) *Result {
	y := in.NewResiduals()
	res := &Result{Algorithm: s.Name()}
	for j, c := range centers {
		rs := startRound(ctx, s.Obs, s.Name(), j+1)
		gain, _ := in.ApplyRound(c, y)
		res.Centers = append(res.Centers, c.Clone())
		res.Gains = append(res.Gains, gain)
		res.Total += gain
		rs.end(gain, nil)
	}
	return res
}

var _ Algorithm = SwapLocalSearch{}
