package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/reward"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// sameResult asserts bit-for-bit equality of two results' centers and gains.
func sameResult(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if got.Total != want.Total {
		t.Fatalf("%s: totals differ: %v vs %v", label, got.Total, want.Total)
	}
	if len(got.Centers) != len(want.Centers) {
		t.Fatalf("%s: %d centers vs %d", label, len(got.Centers), len(want.Centers))
	}
	for j := range got.Centers {
		if !got.Centers[j].Equal(want.Centers[j]) {
			t.Fatalf("%s round %d: centers differ: %v vs %v", label, j, got.Centers[j], want.Centers[j])
		}
		if got.Gains[j] != want.Gains[j] {
			t.Fatalf("%s round %d: gains differ: %v vs %v", label, j, got.Gains[j], want.Gains[j])
		}
	}
}

// TestSinglePipelineBitIdentity: the trivial one-part pipeline around a
// greedy solver reproduces that solver bit for bit. At round j the inner
// algorithm chose the gain-argmax over all points given residuals y_j;
// restricted to its own candidate set the argmax is unchanged, so the merge
// re-selects exactly the inner centers in order.
func TestSinglePipelineBitIdentity(t *testing.T) {
	rng := xrand.New(93)
	algs := []Algorithm{LocalGreedy{Workers: 1}, LazyGreedy{}}
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(t, rng, rng.IntRange(5, 60), norm.L2{}, rng.Uniform(0.4, 2))
		k := rng.IntRange(1, 5)
		for _, a := range algs {
			want, err := a.Run(context.Background(), in, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Single(a).Run(context.Background(), in, k)
			if err != nil {
				t.Fatal(err)
			}
			if got.Algorithm != a.Name() {
				t.Fatalf("Single reports %q, want %q", got.Algorithm, a.Name())
			}
			if err := got.Validate(); err != nil {
				t.Fatal(err)
			}
			sameResult(t, got, want, a.Name())
		}
	}
}

// dupPartitioner hands the pipeline the same full instance as several parts
// with distinct IDs — every shard nominates identical candidates, so the
// merge's dedup and re-scoring must still produce the single-shot result.
type dupPartitioner struct{ copies int }

func (d dupPartitioner) Partition(_ context.Context, in *reward.Instance, _ int) ([]Part, error) {
	parts := make([]Part, d.copies)
	for i := range parts {
		parts[i] = Part{ID: uint64(i + 1), In: in, Own: in.N()}
	}
	return parts, nil
}

func TestPipelineDedupsDuplicateCandidates(t *testing.T) {
	rng := xrand.New(7)
	in := randomInstance(t, rng, 40, norm.L2{}, 1.2)
	const k = 3
	want, err := (LazyGreedy{}).Run(context.Background(), in, k)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	p := Pipeline{
		Alg:       "dup",
		Partition: dupPartitioner{copies: 3},
		NewSolver: func(uint64) Algorithm { return LazyGreedy{} },
		Workers:   2,
		Obs:       m,
	}
	got, err := p.Run(context.Background(), in, k)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, want, "dedup")
	snap := m.Snapshot()
	if c := snap.Counters[obs.CtrShardCandidates]; c != k {
		t.Errorf("candidate counter = %d, want %d (duplicates not dropped)", c, k)
	}
	if c := snap.Counters[obs.CtrShardSolves]; c != 3 {
		t.Errorf("shard solves = %d, want 3", c)
	}
}

func TestPipelineConfigErrors(t *testing.T) {
	in := mustInstance(t, []vec.V{vec.Of(0, 0)}, []float64{1}, norm.L2{}, 1)
	p := Single(LazyGreedy{})
	if _, err := p.Run(context.Background(), nil, 1); err == nil {
		t.Error("pipeline accepted nil instance")
	}
	if _, err := p.Run(context.Background(), in, 0); err == nil {
		t.Error("pipeline accepted k=0")
	}
	if _, err := (Pipeline{}).Run(context.Background(), in, 1); err == nil {
		t.Error("pipeline without NewSolver accepted")
	}
	bad := Pipeline{
		Partition: emptyPartitioner{},
		NewSolver: func(uint64) Algorithm { return LazyGreedy{} },
	}
	if _, err := bad.Run(context.Background(), in, 1); err == nil {
		t.Error("pipeline accepted a partitioner that returned no parts")
	}
}

type emptyPartitioner struct{}

func (emptyPartitioner) Partition(context.Context, *reward.Instance, int) ([]Part, error) {
	return nil, nil
}

// failingAlg surfaces inner-solver errors through the pipeline.
type failingAlg struct{}

func (failingAlg) Name() string { return "failing" }
func (failingAlg) Run(context.Context, *reward.Instance, int) (*Result, error) {
	return nil, errors.New("inner boom")
}

func TestPipelinePropagatesShardError(t *testing.T) {
	rng := xrand.New(5)
	in := randomInstance(t, rng, 10, norm.L2{}, 1)
	p := Pipeline{NewSolver: func(uint64) Algorithm { return failingAlg{} }}
	_, err := p.Run(context.Background(), in, 2)
	if err == nil || err.Error() != "core: pipeline shard 0: inner boom" {
		t.Fatalf("err = %v, want wrapped inner error", err)
	}
}

// TestPipelinePreCancelled: the pipeline honors the anytime contract's
// degenerate case — a dead context yields the empty (valid) prefix plus the
// context's error, with the cancellation recorded as telemetry.
func TestPipelinePreCancelled(t *testing.T) {
	rng := xrand.New(17)
	in := randomInstance(t, rng, 20, norm.L2{}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := obs.NewMetrics()
	p := Pipeline{NewSolver: func(uint64) Algorithm { return LazyGreedy{} }, Obs: m}
	res, err := p.Run(ctx, in, 3)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Centers) != 0 {
		t.Fatalf("pre-cancelled pipeline returned %+v, want empty result", res)
	}
	if verr := res.Validate(); verr != nil {
		t.Fatal(verr)
	}
	if m.Snapshot().Counters[obs.CtrCancelled] != 1 {
		t.Error("cancellation not counted")
	}
}

// cancelBeforeRun cancels the shared context the moment a shard solve
// starts, so the pipeline observes cancellation after the solve stage and
// before the merge commits anything.
type cancelBeforeRun struct {
	inner  Algorithm
	cancel context.CancelFunc
}

func (c cancelBeforeRun) Name() string { return c.inner.Name() }
func (c cancelBeforeRun) Run(ctx context.Context, in *reward.Instance, k int) (*Result, error) {
	c.cancel()
	return c.inner.Run(ctx, in, k)
}

func TestPipelineCancelDuringShardSolve(t *testing.T) {
	rng := xrand.New(29)
	in := randomInstance(t, rng, 30, norm.L2{}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := Pipeline{
		NewSolver: func(uint64) Algorithm { return cancelBeforeRun{inner: LazyGreedy{}, cancel: cancel} },
	}
	res, err := p.Run(ctx, in, 3)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Centers) != 0 {
		t.Fatalf("cancel before merge returned %+v, want empty valid prefix", res)
	}
	if verr := res.Validate(); verr != nil {
		t.Fatal(verr)
	}
}

// mergeCanceller cancels a context once the pipeline's merge commits its
// j-th round (round events only fire from the merge: inner solvers run
// uninstrumented in the sharded construction, and here the pipeline's own
// collector is the only one attached).
type mergeCanceller struct {
	round  int
	cancel context.CancelFunc
}

func (mergeCanceller) Count(string, int64)     {}
func (mergeCanceller) TimeNS(string, int64)    {}
func (mergeCanceller) Gauge(string, float64)   {}
func (mergeCanceller) Observe(string, float64) {}
func (m mergeCanceller) Emit(e obs.Event) {
	if e.Type == obs.EvRoundEnd && e.Round >= m.round {
		m.cancel()
	}
}

// TestPipelineCancelMidMerge: cancelling after merge round j returns exactly
// the first j merge rounds — bit for bit the prefix of the uncancelled run.
func TestPipelineCancelMidMerge(t *testing.T) {
	rng := xrand.New(31)
	in := randomInstance(t, rng, 50, norm.L2{}, 0.8)
	const k = 4
	mk := func(c obs.Collector) Pipeline {
		return Pipeline{
			Alg:       "dup",
			Partition: dupPartitioner{copies: 2},
			NewSolver: func(uint64) Algorithm { return LazyGreedy{} },
			Obs:       c,
		}
	}
	full, err := mk(nil).Run(context.Background(), in, k)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < k; j++ {
		ctx, cancel := context.WithCancel(context.Background())
		part, err := mk(mergeCanceller{round: j, cancel: cancel}).Run(ctx, in, k)
		cancel()
		if err != context.Canceled {
			t.Fatalf("j=%d: err = %v, want context.Canceled", j, err)
		}
		if len(part.Centers) != j {
			t.Fatalf("j=%d: got %d centers, want exactly %d", j, len(part.Centers), j)
		}
		if verr := part.Validate(); verr != nil {
			t.Fatal(verr)
		}
		sameResult(t, part, &Result{
			Algorithm: full.Algorithm,
			Centers:   full.Centers[:j],
			Gains:     full.Gains[:j],
			Total:     reward.SumRounds(full.Gains[:j]),
		}, "prefix")
	}
}

// TestPipelineMergeRoundsReported: the merge emits the standard round
// events under the pipeline's name, so serving-layer round accounting works
// unchanged for sharded solves.
func TestPipelineMergeRoundsReported(t *testing.T) {
	rng := xrand.New(37)
	in := randomInstance(t, rng, 40, norm.L2{}, 1)
	const k = 3
	m := obs.NewMetrics()
	p := Pipeline{
		Alg:       "dup",
		Partition: dupPartitioner{copies: 2},
		NewSolver: func(uint64) Algorithm { return LazyGreedy{} },
		Obs:       m,
	}
	if _, err := p.Run(context.Background(), in, k); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if got := snap.Counters[obs.CtrRounds]; got != k {
		t.Errorf("rounds counter = %d, want %d (inner rounds must not leak)", got, k)
	}
	ends := 0
	for _, e := range snap.Events {
		if e.Type == obs.EvRoundEnd {
			ends++
			if e.Alg != "dup" {
				t.Errorf("round event attributed to %q, want the pipeline name", e.Alg)
			}
		}
	}
	if ends != k {
		t.Errorf("%d round_end events, want %d", ends, k)
	}
}
