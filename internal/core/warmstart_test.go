package core

import (
	"context"
	"testing"

	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/reward"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// TestWarmStartedNeverWorse: across random instances and carried-over center
// sets (good, bad, and empty), the wrapper's total must be >= the cold
// solver's, the result must validate, and the carry-over must only win when
// it genuinely scores higher.
func TestWarmStartedNeverWorse(t *testing.T) {
	rng := xrand.New(31)
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(t, rng, rng.IntRange(10, 60), norm.L2{}, rng.Uniform(0.5, 1.5))
		k := rng.IntRange(1, 4)
		cold, err := (SimpleGreedy{}).Run(context.Background(), in, k)
		if err != nil {
			t.Fatal(err)
		}
		prev := make([]vec.V, k)
		for j := range prev {
			if rng.Bernoulli(0.5) {
				prev[j] = in.Set.Point(rng.Intn(in.N())).Clone()
			} else {
				prev[j] = vec.Of(rng.Uniform(-2, 6), rng.Uniform(-2, 6))
			}
		}
		w := WarmStarted{Base: SimpleGreedy{}, Prev: prev}
		res, err := w.Run(context.Background(), in, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Total < cold.Total {
			t.Fatalf("trial %d: warm-started total %v < cold %v", trial, res.Total, cold.Total)
		}
		if len(res.Centers) != k {
			t.Fatalf("trial %d: %d centers, want %d", trial, len(res.Centers), k)
		}
	}
}

// TestWarmStartedKeepsWinner pins both branches with hand-built carry-overs:
// the data points themselves (beats SimpleGreedy's k=1 pick only when they
// tie, so cold stands on equality) and a deliberately bad far-away center.
func TestWarmStartedKeepsWinner(t *testing.T) {
	// An equilateral-ish triangle: its centroid beats any vertex (SimpleGreedy
	// always centers on a data point), so the carry-over can genuinely win.
	in := mustInstance(t,
		[]vec.V{vec.Of(0, 0), vec.Of(0.2, 0), vec.Of(0.1, 0.2)},
		[]float64{1, 1, 1}, norm.L2{}, 1)
	cold, err := (SimpleGreedy{}).Run(context.Background(), in, 1)
	if err != nil {
		t.Fatal(err)
	}

	good := []vec.V{vec.Of(0.1, 0.0667)}
	res, err := WarmStarted{Base: SimpleGreedy{}, Prev: good}.Run(context.Background(), in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= cold.Total {
		t.Fatalf("good carry-over did not win: %v vs cold %v", res.Total, cold.Total)
	}
	if res.Centers[0][1] != 0.0667 {
		t.Fatalf("winner centers = %v, want the carry-over", res.Centers)
	}
	// The carry-over's total is the evaluator objective, bit for bit.
	e, err := reward.NewEvaluator(in, res.Centers)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Objective(); got != res.Total {
		t.Fatalf("carry-over total %v != evaluator objective %v", res.Total, got)
	}

	// A worthless carry-over must leave the cold result bit-identical.
	bad := []vec.V{vec.Of(100, 100)}
	res, err = WarmStarted{Base: SimpleGreedy{}, Prev: bad}.Run(context.Background(), in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != cold.Total || res.Centers[0][0] != cold.Centers[0][0] {
		t.Fatalf("bad carry-over changed the cold result: %+v vs %+v", res, cold)
	}
}

// TestWarmStartedSkips: a size- or dimension-mismatched carry-over is
// ignored rather than failing the run, and a cancelled base run passes
// through untouched (the anytime contract is the base's, not the wrapper's).
func TestWarmStartedSkips(t *testing.T) {
	rng := xrand.New(5)
	in := randomInstance(t, rng, 20, norm.L2{}, 1)
	cold, err := (SimpleGreedy{}).Run(context.Background(), in, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, prev := range map[string][]vec.V{
		"wrong-k":   {vec.Of(1, 1)},
		"wrong-dim": {vec.Of(1, 1, 1), vec.Of(2, 2, 2)},
	} {
		res, err := WarmStarted{Base: SimpleGreedy{}, Prev: prev}.Run(context.Background(), in, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Total != cold.Total {
			t.Errorf("%s: total %v != cold %v", name, res.Total, cold.Total)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := WarmStarted{Base: SimpleGreedy{}, Prev: cold.Centers}.Run(ctx, in, 2)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if len(res.Centers) != 0 {
		t.Errorf("pre-cancelled run selected centers: %v", res.Centers)
	}
}

// TestWarmStartedObs checks the telemetry contract: every comparison counts
// a warm start, wins count separately, and the improvement lands in the
// churn.warmstart_improvement histogram.
func TestWarmStartedObs(t *testing.T) {
	in := mustInstance(t,
		[]vec.V{vec.Of(0, 0), vec.Of(0.2, 0), vec.Of(0.1, 0.2)},
		[]float64{1, 1, 1}, norm.L2{}, 1)
	c := obs.NewMetrics()
	w := WarmStarted{Base: SimpleGreedy{}, Prev: []vec.V{vec.Of(0.1, 0.0667)}, Obs: c}
	if _, err := w.Run(context.Background(), in, 1); err != nil {
		t.Fatal(err)
	}
	w.Prev = []vec.V{vec.Of(100, 100)}
	if _, err := w.Run(context.Background(), in, 1); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.Counters[obs.CtrWarmStarts] != 2 {
		t.Errorf("warm starts = %d, want 2", snap.Counters[obs.CtrWarmStarts])
	}
	if snap.Counters[obs.CtrWarmWins] != 1 {
		t.Errorf("warm wins = %d, want 1", snap.Counters[obs.CtrWarmWins])
	}
}
