// NearLinear is the grid-based approximate greedy of "Submodular Clustering
// in Low Dimensions" (Backurs & Har-Peled) adapted to the paper's coverage
// objective: instead of rescanning every user each round (O(n) per round for
// greedy 3, O(n²) for greedy 2), it snaps candidate centers to the occupied
// cells of a radius-r grid and pays O(occupied cells · 3^m) per round, which
// is near-linear in n overall because the grid is built once in O(n).
//
// Three stages, each instrumented with its own span and timer:
//
//  1. grid_snap — bucket the points with internal/spatial's radius-r grid,
//     aggregate each occupied cell into a weighted-centroid representative,
//     its total weight, and its residual mass, and precompute the
//     cell-adjacency coverage factors used by the per-round scan.
//  2. seed — a k-means++-style D²-weighted draw over cell representatives
//     (probability ∝ residual mass × squared distance to the nearest chosen
//     seed) injects one diversity candidate per round, deterministically from
//     Seed via xrand.
//  3. refine — k greedy rounds. Each round ranks every occupied cell by an
//     approximate gain ĝ (cell residual masses attenuated by the
//     precomputed representative-distance coverage factors), exactly scores
//     a bounded candidate pool (top cells by ĝ + the round's seed; per cell
//     both the representative and the heaviest-residual point), then locally
//     refines the winner by residual-weighted mean shift and an enclosing
//     -ball re-centering (Badoiu–Clarkson for large Euclidean supports),
//     accepting a move only on exact-gain improvement. The commit is an
//     exact reward.ApplyRound, so gains telescope identically to the other
//     greedies and Result.Validate always passes.
package core

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"repro/internal/geom"
	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/reward"
	"repro/internal/spatial"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// DefaultRefineRounds is the per-center local-refinement budget NearLinear
// uses when Refine is 0. Two rounds (one mean shift, one re-center attempt
// after it) recover most of the gap to exact greedy in the benchmarked
// instances; more rounds trade time for marginal quality.
const DefaultRefineRounds = 2

// nlTopCells bounds the candidate pool exactly scored per round: the top
// cells by approximate gain, plus the round's k-means++ seed. Exact scoring
// costs one neighborhood scan per candidate, so the pool size trades quality
// for per-round time independent of n.
const nlTopCells = 6

// nlWelzlCutoff is the support size above which the Euclidean enclosing-ball
// refinement switches from exact Welzl to the Badoiu–Clarkson approximate
// center (bounded iterations, no recursion depth to worry about).
const nlWelzlCutoff = 64

// NearLinear implements the near-linear grid-snapped greedy. The zero value
// is usable: seed 0, default refinement budget, telemetry off. It runs
// serially — per-round work is O(occupied cells), so there is nothing worth
// parallelizing — which makes its output trivially independent of any
// Workers setting.
type NearLinear struct {
	// Seed drives the k-means++ seeding draw and any enclosing-ball
	// shuffles. Deterministic per seed.
	Seed uint64
	// Refine is the per-center local-refinement round budget: 0 uses
	// DefaultRefineRounds, negative disables refinement.
	Refine int
	// Obs receives stage timers, counters, spans, and per-round events.
	Obs obs.Collector
}

// Name implements Algorithm.
func (NearLinear) Name() string { return "nearlinear" }

// nlState is the per-run working state shared by the stages.
type nlState struct {
	grid  *spatial.Grid
	cells []spatial.Cell
	rep   []vec.V   // weighted centroid representative per occupied cell
	cellW []float64 // total weight per cell (static)
	resW  []float64 // residual mass Σ w_i·y_i per cell (updated per commit)
	ptCl  []int     // point index -> occupied-cell index
	nbIdx [][]int32 // occupied neighbor cells per cell
	nbCov [][]float64
}

// Run implements Algorithm. The anytime contract matches the other greedies:
// cancellation between rounds returns the bit-identical committed prefix
// with ctx.Err().
func (a NearLinear) Run(ctx context.Context, in *reward.Instance, k int) (*Result, error) {
	ctx = orBG(ctx)
	if err := checkArgs(in, k); err != nil {
		return nil, err
	}
	res := &Result{Algorithm: a.Name()}
	if ctx.Err() != nil {
		return cancelRun(a.Obs, res, ctx.Err())
	}
	parent := obs.SpanFromContext(ctx)

	snapSp := parent.Child("grid_snap")
	snapT := obs.StartTimer(a.Obs, obs.TimNLSnap)
	st, err := a.snap(in)
	if err != nil {
		return nil, err
	}
	// ex is a shadow evaluator over the same point set with the snap grid
	// installed as its neighbor finder: exact RoundGain/ApplyRound touch
	// only the O(3^m) neighboring cells. The caller's instance is never
	// mutated.
	ex, err := reward.NewInstance(in.Set, in.Norm, in.Radius)
	if err != nil {
		return nil, err
	}
	ex.SetFinder(st.grid)
	if obs.Active(a.Obs) {
		ex.SetCollector(a.Obs)
		a.Obs.Count(obs.CtrNLCells, int64(len(st.cells)))
	}
	snapT.Stop()
	snapSp.SetAttr("cells", float64(len(st.cells)))
	snapSp.End()

	seedSp := parent.Child("seed")
	seedT := obs.StartTimer(a.Obs, obs.TimNLSeed)
	rng := xrand.New(a.Seed ^ 0x9e3779b97f4a7c15)
	seeds := a.seedCells(in, st, k, rng)
	if obs.Active(a.Obs) {
		a.Obs.Count(obs.CtrNLSeeds, int64(len(seeds)))
	}
	seedT.Stop()
	seedSp.SetAttr("seeds", float64(len(seeds)))
	seedSp.End()

	refineSp := parent.Child("refine")
	ctx = obs.ContextWithSpan(ctx, refineSp)
	refineT := obs.StartTimer(a.Obs, obs.TimNLRefine)
	y := ex.NewResiduals()
	for j := 1; j <= k; j++ {
		if ctx.Err() != nil {
			refineT.Stop()
			refineSp.End()
			return cancelRun(a.Obs, res, ctx.Err())
		}
		rs := startRound(ctx, a.Obs, a.Name(), j)
		var seed = -1
		if j-1 < len(seeds) {
			seed = seeds[j-1]
		}
		ctr, pool := a.selectRound(in, ex, st, y, seed)
		ctr, steps := a.refineCenter(in, ex, st, y, ctr, rng)
		gain, z := ex.ApplyRound(ctr.c, y)
		// Settle the spent coverage against the per-cell residual masses;
		// every nonzero z_i lies within the commit's grid neighborhood.
		for _, i := range st.grid.Near(ctr.c) {
			if zi := z[i]; zi != 0 {
				ci := st.ptCl[i]
				st.resW[ci] -= in.Set.Weight(i) * zi
				if st.resW[ci] < 0 {
					st.resW[ci] = 0
				}
			}
		}
		res.Centers = append(res.Centers, ctr.c.Clone())
		res.Gains = append(res.Gains, gain)
		res.Total += gain
		if rs.active() {
			rs.end(gain, map[string]float64{
				"pool": float64(pool), "refine_steps": float64(steps)})
		}
	}
	refineT.Stop()
	refineSp.End()
	return res, nil
}

// snap builds the grid and the per-cell aggregates (stage 1).
func (a NearLinear) snap(in *reward.Instance) (*nlState, error) {
	grid, err := spatial.NewGrid(in.Set.Points(), in.Radius)
	if err != nil {
		return nil, fmt.Errorf("core: nearlinear: %w", err)
	}
	st := &nlState{grid: grid, cells: grid.Cells()}
	m := len(st.cells)
	st.rep = make([]vec.V, m)
	st.cellW = make([]float64, m)
	st.resW = make([]float64, m)
	st.ptCl = make([]int, in.N())
	dim := in.Set.Dim()
	byCoord := make(map[string]int, m)
	var key []byte
	for ci, cell := range st.cells {
		rep := vec.New(dim)
		var w float64
		for _, i := range cell.Points {
			st.ptCl[i] = ci
			wi := in.Set.Weight(i)
			w += wi
			p := in.Set.Point(i)
			for d := 0; d < dim; d++ {
				rep[d] += wi * p[d]
			}
		}
		if w > 0 {
			rep.ScaleInPlace(1 / w)
		} else {
			// Zero-weight cell: fall back to the unweighted centroid so the
			// representative still lies inside the cell.
			for _, i := range cell.Points {
				rep.AddInPlace(in.Set.Point(i))
			}
			rep.ScaleInPlace(1 / float64(len(cell.Points)))
		}
		st.rep[ci] = rep
		st.cellW[ci] = w
		st.resW[ci] = w // y_i = 1 initially, so residual mass = weight
		key = appendCoordKey(key[:0], cell.Coord)
		byCoord[string(key)] = ci
	}
	// Precompute, per cell, its occupied 3^m-window neighbors and the
	// coverage factor between representatives. Representatives never move,
	// so the per-round approximate-gain scan reduces to multiply-adds over
	// these fixed factors and the current residual masses.
	st.nbIdx = make([][]int32, m)
	st.nbCov = make([][]float64, m)
	nb := make([]int, dim)
	for ci, cell := range st.cells {
		eachNeighborCoord(cell.Coord, nb, func(c []int) {
			key = appendCoordKey(key[:0], c)
			cj, ok := byCoord[string(key)]
			if !ok {
				return
			}
			d := in.Norm.Dist(st.rep[ci], st.rep[cj])
			if d >= in.Radius {
				return
			}
			st.nbIdx[ci] = append(st.nbIdx[ci], int32(cj))
			st.nbCov[ci] = append(st.nbCov[ci], 1-d/in.Radius)
		})
	}
	return st, nil
}

// seedCells draws up to k distinct cells k-means++ style: the first
// proportionally to cell weight, each next proportionally to
// weight × (distance to nearest chosen representative)². Chosen cells get
// zero mass, so the draw never repeats; it stops early when no mass remains
// (fewer occupied cells than k, or all representatives coincide).
func (a NearLinear) seedCells(in *reward.Instance, st *nlState, k int, rng *xrand.Rand) []int {
	m := len(st.cells)
	first := sampleWeighted(rng, st.cellW)
	if first < 0 {
		return nil
	}
	seeds := make([]int, 0, k)
	seeds = append(seeds, first)
	minD := make([]float64, m)
	for i := range minD {
		minD[i] = math.Inf(1)
	}
	mass := make([]float64, m)
	for len(seeds) < k && len(seeds) < m {
		last := st.rep[seeds[len(seeds)-1]]
		for c := 0; c < m; c++ {
			if d := in.Norm.Dist(st.rep[c], last); d < minD[c] {
				minD[c] = d
			}
			mass[c] = st.cellW[c] * minD[c] * minD[c]
		}
		next := sampleWeighted(rng, mass)
		if next < 0 {
			break
		}
		seeds = append(seeds, next)
	}
	return seeds
}

// nlCenter is a scored candidate center.
type nlCenter struct {
	c    vec.V
	gain float64
}

// selectRound picks the round's center from a bounded exactly-scored pool:
// the nlTopCells occupied cells by approximate gain ĝ plus the round's seed
// cell; for each, both the cell representative and the heaviest-residual
// point. Ties break toward the earlier candidate, so selection is
// deterministic. Returns the winner and the number of exact scores spent.
func (a NearLinear) selectRound(in *reward.Instance, ex *reward.Instance, st *nlState, y []float64, seed int) (nlCenter, int) {
	type ranked struct {
		cell int
		ghat float64
	}
	top := make([]ranked, 0, nlTopCells)
	for c := range st.cells {
		g := st.resW[c]
		for x, cj := range st.nbIdx[c] {
			g += st.nbCov[c][x] * st.resW[cj]
		}
		// Insertion keeps top sorted by (ĝ desc, cell asc); the strict >
		// preserves the earlier (lower-index) cell on ties.
		if len(top) == cap(top) && g <= top[len(top)-1].ghat {
			continue
		}
		pos := len(top)
		for pos > 0 && g > top[pos-1].ghat {
			pos--
		}
		if len(top) < cap(top) {
			top = append(top, ranked{})
		}
		copy(top[pos+1:], top[pos:])
		top[pos] = ranked{cell: c, ghat: g}
	}
	pool := make([]int, 0, len(top)+1)
	for _, r := range top {
		pool = append(pool, r.cell)
	}
	if seed >= 0 {
		dup := false
		for _, c := range pool {
			if c == seed {
				dup = true
				break
			}
		}
		if !dup {
			pool = append(pool, seed)
		}
	}
	best := nlCenter{gain: math.Inf(-1)}
	scored := 0
	for _, c := range pool {
		for _, cand := range []vec.V{st.rep[c], heaviestResidual(in, st, y, c)} {
			if cand == nil {
				continue
			}
			g := ex.RoundGain(cand, y)
			scored++
			if g > best.gain {
				best = nlCenter{c: cand, gain: g}
			}
		}
	}
	if obs.Active(a.Obs) {
		a.Obs.Count(obs.CtrNLCandidates, int64(scored))
	}
	return best, scored
}

// heaviestResidual returns the cell's point with the largest remaining
// single-point reward w_i·y_i (greedy 3's per-round pick restricted to the
// cell), or nil when the cell has no residual mass. Lower index wins ties.
func heaviestResidual(in *reward.Instance, st *nlState, y []float64, c int) vec.V {
	bestI, bestW := -1, 0.0
	for _, i := range st.cells[c].Points {
		if w := in.Set.Weight(i) * y[i]; w > bestW {
			bestI, bestW = i, w
		}
	}
	if bestI < 0 {
		return nil
	}
	return in.Set.Point(bestI)
}

// refineCenter runs the bounded local refinement: from the selected center,
// repeatedly propose the residual-weighted mean shift and the enclosing-ball
// re-centering of the residual support, keeping a proposal only when its
// exact gain strictly improves. Every accepted move is re-scored exactly, so
// refinement can only raise the committed gain. Returns the final center and
// the number of refinement steps taken.
func (a NearLinear) refineCenter(in *reward.Instance, ex *reward.Instance, st *nlState, y []float64, cur nlCenter, rng *xrand.Rand) (nlCenter, int) {
	rounds := a.Refine
	if rounds == 0 {
		rounds = DefaultRefineRounds
	}
	if rounds < 0 || cur.c == nil {
		return cur, 0
	}
	dim := in.Set.Dim()
	steps := 0
	for t := 0; t < rounds; t++ {
		// Residual support: points near the current center that still have
		// residual demand and receive positive coverage.
		var pts []vec.V
		shift := vec.New(dim)
		var mass float64
		for _, i := range st.grid.Near(cur.c) {
			wy := in.Set.Weight(i) * y[i]
			if wy <= 0 || ex.Coverage(cur.c, i) <= 0 {
				continue
			}
			p := in.Set.Point(i)
			pts = append(pts, p)
			mass += wy
			for d := 0; d < dim; d++ {
				shift[d] += wy * p[d]
			}
		}
		if len(pts) == 0 || mass <= 0 {
			break
		}
		steps++
		if obs.Active(a.Obs) {
			a.Obs.Count(obs.CtrNLRefineSteps, 1)
		}
		cands := make([]vec.V, 0, 2)
		cands = append(cands, shift.ScaleInPlace(1/mass))
		if ball, err := enclosingCenter(in.Norm, pts, rng, a.Obs); err == nil {
			cands = append(cands, ball)
		}
		improved := false
		for _, cand := range cands {
			if g := ex.RoundGain(cand, y); g > cur.gain {
				cur = nlCenter{c: cand, gain: g}
				improved = true
			}
		}
		if !improved {
			break
		}
		if obs.Active(a.Obs) {
			a.Obs.Count(obs.CtrNLRefineAccepts, 1)
		}
	}
	return cur, steps
}

// enclosingCenter returns the center of an enclosing ball of the support:
// Badoiu–Clarkson (bounded-iteration coreset, internal/geom) for large
// Euclidean supports, the exact norm-dispatched ball otherwise.
func enclosingCenter(n norm.Norm, pts []vec.V, rng *xrand.Rand, c obs.Collector) (vec.V, error) {
	if _, euclid := n.(norm.L2); euclid && len(pts) > nlWelzlCutoff {
		ball, err := geom.ApproxMinBall2Obs(pts, 0.1, c)
		if err != nil {
			return nil, err
		}
		return ball.Center, nil
	}
	ball, err := geom.EnclosingBallObs(n, pts, rng, c)
	if err != nil {
		return nil, err
	}
	return ball.Center, nil
}

// sampleWeighted draws an index proportionally to the non-negative weights,
// returning -1 when no mass is available. The cumulative scan is in index
// order, so the draw is deterministic per rng state.
func sampleWeighted(rng *xrand.Rand, ws []float64) int {
	var total float64
	for _, w := range ws {
		if w > 0 && !math.IsInf(w, 1) && !math.IsNaN(w) {
			total += w
		}
	}
	if total <= 0 || math.IsInf(total, 1) || math.IsNaN(total) {
		return -1
	}
	r := rng.Float64() * total
	var acc float64
	last := -1
	for i, w := range ws {
		if w <= 0 || math.IsInf(w, 1) || math.IsNaN(w) {
			continue
		}
		acc += w
		last = i
		if r < acc {
			return i
		}
	}
	return last
}

// appendCoordKey renders integer cell coordinates as a compact map key.
func appendCoordKey(b []byte, c []int) []byte {
	for d, v := range c {
		if d > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return b
}

// eachNeighborCoord invokes fn with every coordinate in the 3^m window
// around coord except coord itself. scratch must have len(coord); fn must
// not retain its argument.
func eachNeighborCoord(coord, scratch []int, fn func([]int)) {
	dim := len(coord)
	for d := 0; d < dim; d++ {
		scratch[d] = coord[d] - 1
	}
	for {
		same := true
		for d := 0; d < dim; d++ {
			if scratch[d] != coord[d] {
				same = false
				break
			}
		}
		if !same {
			fn(scratch)
		}
		d := dim - 1
		for ; d >= 0; d-- {
			scratch[d]++
			if scratch[d] <= coord[d]+1 {
				break
			}
			scratch[d] = coord[d] - 1
		}
		if d < 0 {
			return
		}
	}
}
