package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/theory"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func mustInstance(t *testing.T, pts []vec.V, ws []float64, n norm.Norm, r float64) *reward.Instance {
	t.Helper()
	set, err := pointset.New(pts, ws)
	if err != nil {
		t.Fatal(err)
	}
	in, err := reward.NewInstance(set, n, r)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func randomInstance(t *testing.T, rng *xrand.Rand, n int, nm norm.Norm, r float64) *reward.Instance {
	t.Helper()
	pts := make([]vec.V, n)
	ws := make([]float64, n)
	for i := range pts {
		pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		ws[i] = float64(rng.IntRange(1, 5))
	}
	return mustInstance(t, pts, ws, nm, r)
}

func allAlgorithms() []Algorithm {
	return []Algorithm{
		LocalGreedy{},
		SimpleGreedy{},
		ComplexGreedy{},
		ComplexGreedy{Mode: BallProjection},
	}
}

func TestArgValidation(t *testing.T) {
	in := mustInstance(t, []vec.V{vec.Of(0, 0)}, []float64{1}, norm.L2{}, 1)
	for _, a := range allAlgorithms() {
		if _, err := a.Run(context.Background(), nil, 1); err == nil {
			t.Errorf("%s accepted nil instance", a.Name())
		}
		if _, err := a.Run(context.Background(), in, 0); err == nil {
			t.Errorf("%s accepted k=0", a.Name())
		}
		if _, err := a.Run(context.Background(), in, -2); err == nil {
			t.Errorf("%s accepted negative k", a.Name())
		}
	}
	if _, err := (RoundBased{}).Run(context.Background(), in, 1); err == nil {
		t.Error("RoundBased without solver accepted")
	}
}

func TestNames(t *testing.T) {
	cases := map[string]Algorithm{
		"greedy2": LocalGreedy{},
		"greedy3": SimpleGreedy{},
		"greedy4": ComplexGreedy{},
		"greedy1": RoundBased{},
	}
	for want, a := range cases {
		if a.Name() != want {
			t.Errorf("%T.Name() = %q, want %q", a, a.Name(), want)
		}
	}
}

func TestSinglePointAllAlgorithms(t *testing.T) {
	in := mustInstance(t, []vec.V{vec.Of(2, 2)}, []float64{3}, norm.L2{}, 1)
	for _, a := range allAlgorithms() {
		res, err := a.Run(context.Background(), in, 1)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		// Optimal: center on the point, reward = w = 3.
		if math.Abs(res.Total-3) > 1e-9 {
			t.Errorf("%s: total = %v, want 3", a.Name(), res.Total)
		}
		if !res.Centers[0].ApproxEqual(vec.Of(2, 2), 1e-9) {
			t.Errorf("%s: center = %v", a.Name(), res.Centers[0])
		}
	}
}

func TestResultTotalsMatchObjective(t *testing.T) {
	rng := xrand.New(5)
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(t, rng, rng.IntRange(3, 25), norm.L2{}, rng.Uniform(0.6, 2))
		k := rng.IntRange(1, 4)
		for _, a := range allAlgorithms() {
			res, err := a.Run(context.Background(), in, k)
			if err != nil {
				t.Fatalf("%s: %v", a.Name(), err)
			}
			if err := res.Validate(); err != nil {
				t.Fatalf("%s: %v", a.Name(), err)
			}
			if len(res.Centers) != k {
				t.Fatalf("%s: %d centers, want %d", a.Name(), len(res.Centers), k)
			}
			obj := in.Objective(res.Centers)
			if math.Abs(obj-res.Total) > 1e-9*(1+obj) {
				t.Fatalf("%s: objective %v != reported total %v", a.Name(), obj, res.Total)
			}
			if res.Total > in.Set.TotalWeight()+1e-9 {
				t.Fatalf("%s: total %v exceeds Σw", a.Name(), res.Total)
			}
		}
	}
}

// The round gain sequence of greedy2 is non-increasing: it maximizes the
// same candidate objective against monotonically shrinking residuals.
func TestLocalGreedyGainsNonIncreasing(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(t, rng, 20, norm.L2{}, 1.2)
		res, err := LocalGreedy{}.Run(context.Background(), in, 5)
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j < len(res.Gains); j++ {
			if res.Gains[j] > res.Gains[j-1]+1e-9 {
				t.Fatalf("trial %d: gain increased %v -> %v", trial, res.Gains[j-1], res.Gains[j])
			}
		}
	}
}

// Per-round dominance: greedy2's first-round gain is >= greedy3's, because
// Algorithm 2 maximizes the coverage reward over all points while
// Algorithm 3 fixes the center by the single-point rule.
func TestLocalDominatesSimpleFirstRound(t *testing.T) {
	rng := xrand.New(9)
	for trial := 0; trial < 50; trial++ {
		in := randomInstance(t, rng, rng.IntRange(2, 30), norm.L2{}, rng.Uniform(0.5, 2.5))
		r2, err := LocalGreedy{}.Run(context.Background(), in, 1)
		if err != nil {
			t.Fatal(err)
		}
		r3, err := SimpleGreedy{}.Run(context.Background(), in, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r2.Gains[0] < r3.Gains[0]-1e-9 {
			t.Fatalf("trial %d: greedy2 round-1 %v < greedy3 %v", trial, r2.Gains[0], r3.Gains[0])
		}
	}
}

// greedy4's per-round gain is >= greedy2's in the first round: the walk
// starts at every data point, so its candidate set includes all of greedy2's.
func TestComplexDominatesLocalFirstRound(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(t, rng, rng.IntRange(2, 25), norm.L2{}, rng.Uniform(0.5, 2.5))
		r2, err := LocalGreedy{}.Run(context.Background(), in, 1)
		if err != nil {
			t.Fatal(err)
		}
		r4, err := ComplexGreedy{}.Run(context.Background(), in, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r4.Gains[0] < r2.Gains[0]-1e-9 {
			t.Fatalf("trial %d: greedy4 round-1 %v < greedy2 %v", trial, r4.Gains[0], r2.Gains[0])
		}
	}
}

// Theorem 2: greedy2 achieves at least (1 − (1 − 1/n)^k)·f_opt. We verify
// against the weaker but computable bound using the best single point times
// k as an f_opt upper bound... instead, verify against a brute-force optimum
// on tiny instances where the candidate space is the points themselves.
func TestLocalGreedyTheorem2BoundTiny(t *testing.T) {
	rng := xrand.New(13)
	for trial := 0; trial < 30; trial++ {
		n := rng.IntRange(3, 8)
		in := randomInstance(t, rng, n, norm.L2{}, rng.Uniform(0.8, 2))
		k := rng.IntRange(1, 2)
		res, err := LocalGreedy{}.Run(context.Background(), in, k)
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force point-restricted optimum.
		best := bruteForcePoints(in, k)
		// Theorem 2 is stated against the continuous optimum, which is
		// >= the point-restricted one; but the bound must certainly
		// hold against the point optimum scaled by the ratio.
		bound := theory.Approx2(n, k) * best
		if res.Total < bound-1e-9 {
			t.Fatalf("trial %d: greedy2 %v below Theorem-2 bound %v (opt %v)", trial, res.Total, bound, best)
		}
	}
}

// bruteForcePoints exhaustively maximizes f over k-subsets of data points.
func bruteForcePoints(in *reward.Instance, k int) float64 {
	n := in.N()
	best := math.Inf(-1)
	combo := make([]int, k)
	var rec func(depth, start int)
	rec = func(depth, start int) {
		if depth == k {
			cs := make([]vec.V, k)
			for j, i := range combo {
				cs[j] = in.Set.Point(i)
			}
			if v := in.Objective(cs); v > best {
				best = v
			}
			return
		}
		for i := start; i < n; i++ {
			combo[depth] = i
			rec(depth+1, i+1)
		}
	}
	rec(0, 0)
	return best
}

// Stronger than the paper's Theorem 2: restricted to point-valued centers,
// f is a monotone submodular set function over the ground set of points, and
// Algorithm 2 is exactly the Nemhauser–Wolsey–Fisher greedy for it (its
// round gain equals the marginal gain f(S∪{c})−f(S)). The classical bound
// therefore applies: greedy2 ≥ (1−(1−1/k)^k)·OPT_points ≥ (1−1/e)·OPT_points
// — far stronger than 1−(1−1/n)^k. Verified here against brute force.
func TestLocalGreedyClassicSubmodularBound(t *testing.T) {
	rng := xrand.New(181)
	for trial := 0; trial < 40; trial++ {
		n := rng.IntRange(3, 9)
		nm := []norm.Norm{norm.L1{}, norm.L2{}}[trial%2]
		in := randomInstance(t, rng, n, nm, rng.Uniform(0.5, 2.5))
		k := rng.IntRange(1, 3)
		res, err := LocalGreedy{Workers: 1}.Run(context.Background(), in, k)
		if err != nil {
			t.Fatal(err)
		}
		opt := bruteForcePoints(in, k)
		bound := theory.Approx1(k) * opt
		if res.Total < bound-1e-9 {
			t.Fatalf("trial %d: greedy2 %v below Nemhauser bound %v (opt %v, k=%d)",
				trial, res.Total, bound, opt, k)
		}
	}
}

func TestTieBreakByIndex(t *testing.T) {
	// Two isolated, identical-weight points far apart: both yield the same
	// round gain, so index 0 must win for greedy2 and greedy3.
	in := mustInstance(t,
		[]vec.V{vec.Of(0, 0), vec.Of(10, 10)},
		[]float64{2, 2}, norm.L2{}, 1)
	for _, a := range []Algorithm{LocalGreedy{}, SimpleGreedy{}} {
		res, err := a.Run(context.Background(), in, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Centers[0].ApproxEqual(vec.Of(0, 0), 1e-12) {
			t.Errorf("%s picked %v, want index-0 point", a.Name(), res.Centers[0])
		}
	}
}

func TestComplexGreedyMovesOffPoints(t *testing.T) {
	// Four unit-weight points on a small square with r = 1: the square's
	// center covers all four at fraction ≈ 0.434 (total ≈ 1.74), while any
	// corner yields 1 + 2·0.2 = 1.4, so greedy4 must leave the data.
	pts := []vec.V{vec.Of(0, 0), vec.Of(0.8, 0), vec.Of(0, 0.8), vec.Of(0.8, 0.8)}
	in := mustInstance(t, pts, []float64{1, 1, 1, 1}, norm.L2{}, 1.0)
	r4, err := ComplexGreedy{}.Run(context.Background(), in, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := LocalGreedy{}.Run(context.Background(), in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Total <= r2.Total {
		t.Fatalf("greedy4 %v did not beat greedy2 %v on triangle", r4.Total, r2.Total)
	}
	for _, p := range pts {
		if r4.Centers[0].ApproxEqual(p, 1e-9) {
			t.Fatalf("greedy4 stayed on data point %v", p)
		}
	}
}

func TestComplexGreedyOneNorm(t *testing.T) {
	rng := xrand.New(17)
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(t, rng, 15, norm.L1{}, 1.5)
		res, err := ComplexGreedy{}.Run(context.Background(), in, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatal(err)
		}
		// Projection- and exact-LP-mode variants also run and are valid.
		for _, mode := range []BallMode{BallProjection, BallExactLP} {
			resM, err := ComplexGreedy{Mode: mode}.Run(context.Background(), in, 3)
			if err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
			if err := resM.Validate(); err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
		}
	}
}

func TestAlgorithmsWithScaledNorm(t *testing.T) {
	// Per-attribute importance scaling (DESIGN: extensions) must flow
	// through every algorithm unchanged.
	sn, err := norm.NewScaled(norm.L2{}, vec.Of(2, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(163)
	in := randomInstance(t, rng, 15, sn, 1.5)
	for _, a := range []Algorithm{LocalGreedy{}, LazyGreedy{}, SimpleGreedy{}, ComplexGreedy{}} {
		res, err := a.Run(context.Background(), in, 3)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
	}
	// Anisotropy is observable: stretching dimension 0 changes the result
	// relative to the unscaled instance on the same points.
	plain := mustInstance(t, in.Set.Points(), in.Set.Weights(), norm.L2{}, 1.5)
	rs, err := LocalGreedy{}.Run(context.Background(), in, 2)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := LocalGreedy{}.Run(context.Background(), plain, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Total == rp.Total {
		t.Log("scaled and plain totals coincide on this seed (allowed, but unusual)")
	}
}

func TestComplexGreedy3D(t *testing.T) {
	rng := xrand.New(19)
	pts := make([]vec.V, 20)
	ws := make([]float64, 20)
	for i := range pts {
		pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4), rng.Uniform(0, 4))
		ws[i] = float64(rng.IntRange(1, 5))
	}
	in := mustInstance(t, pts, ws, norm.L1{}, 1.5)
	res, err := ComplexGreedy{}.Run(context.Background(), in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Centers[0].Dim() != 3 {
		t.Fatalf("center dim = %d", res.Centers[0].Dim())
	}
}

func TestDeterminismAcrossWorkers(t *testing.T) {
	rng := xrand.New(23)
	in := randomInstance(t, rng, 30, norm.L2{}, 1.2)
	for _, a := range []struct {
		serial, parallel Algorithm
	}{
		{LocalGreedy{Workers: 1}, LocalGreedy{Workers: 8}},
		{ComplexGreedy{Workers: 1}, ComplexGreedy{Workers: 8}},
	} {
		rs, err := a.serial.Run(context.Background(), in, 4)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := a.parallel.Run(context.Background(), in, 4)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rs.Total-rp.Total) > 1e-12 {
			t.Fatalf("%s: serial %v != parallel %v", a.serial.Name(), rs.Total, rp.Total)
		}
		for j := range rs.Centers {
			if !rs.Centers[j].ApproxEqual(rp.Centers[j], 1e-12) {
				t.Fatalf("%s: center %d differs across worker counts", a.serial.Name(), j)
			}
		}
	}
}

func TestKLargerThanN(t *testing.T) {
	// k > n is legal: extra rounds may contribute zero gain.
	in := mustInstance(t, []vec.V{vec.Of(0, 0), vec.Of(3, 3)}, []float64{1, 1}, norm.L2{}, 0.5)
	for _, a := range allAlgorithms() {
		res, err := a.Run(context.Background(), in, 5)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if math.Abs(res.Total-2) > 1e-9 {
			t.Errorf("%s: total = %v, want 2 (both points saturated)", a.Name(), res.Total)
		}
	}
}

func TestResultValidate(t *testing.T) {
	good := &Result{Centers: []vec.V{vec.Of(0, 0)}, Gains: []float64{2}, Total: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid result rejected: %v", err)
	}
	bad := &Result{Centers: []vec.V{vec.Of(0, 0)}, Gains: []float64{2, 1}, Total: 3}
	if err := bad.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	bad2 := &Result{Centers: []vec.V{vec.Of(0, 0)}, Gains: []float64{2}, Total: 5}
	if err := bad2.Validate(); err == nil {
		t.Error("total mismatch accepted")
	}
	bad3 := &Result{Centers: []vec.V{vec.Of(0, 0)}, Gains: []float64{-1}, Total: -1}
	if err := bad3.Validate(); err == nil {
		t.Error("negative gain accepted")
	}
}

func TestBestPointCenter(t *testing.T) {
	in := mustInstance(t,
		[]vec.V{vec.Of(0, 0), vec.Of(0.1, 0), vec.Of(3, 3)},
		[]float64{1, 1, 1}, norm.L2{}, 1)
	y := in.NewResiduals()
	idx, gain := BestPointCenter(in, y, 0)
	if idx != 0 && idx != 1 {
		t.Fatalf("best center index = %d", idx)
	}
	if gain <= 1 {
		t.Fatalf("gain = %v, want > 1 (covers both close points)", gain)
	}
}

func TestPrefixTotals(t *testing.T) {
	r := &Result{Gains: []float64{3, 2, 1}, Total: 6}
	got := r.PrefixTotals()
	want := []float64{3, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PrefixTotals = %v, want %v", got, want)
		}
	}
	if len((&Result{}).PrefixTotals()) != 0 {
		t.Error("empty result prefix not empty")
	}
}

// Incrementality: running an algorithm at k yields exactly the prefix of
// running it at k+1 — the property the k-sweep experiments rely on.
func TestPrefixMatchesSmallerK(t *testing.T) {
	rng := xrand.New(47)
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(t, rng, 20, norm.L2{}, 1.2)
		for _, a := range []Algorithm{LocalGreedy{Workers: 1}, SimpleGreedy{}, ComplexGreedy{Workers: 1}} {
			full, err := a.Run(context.Background(), in, 5)
			if err != nil {
				t.Fatal(err)
			}
			part, err := a.Run(context.Background(), in, 3)
			if err != nil {
				t.Fatal(err)
			}
			fp := full.PrefixTotals()
			if part.Total != fp[2] {
				t.Fatalf("%s: k=3 total %v != prefix %v", a.Name(), part.Total, fp[2])
			}
			for j := 0; j < 3; j++ {
				if !part.Centers[j].Equal(full.Centers[j]) {
					t.Fatalf("%s: center %d differs between k=3 and k=5 runs", a.Name(), j)
				}
			}
		}
	}
}

func TestPlacementAdapter(t *testing.T) {
	in := mustInstance(t, []vec.V{vec.Of(1, 1), vec.Of(3, 3)}, []float64{2, 3}, norm.L2{}, 1)
	p := Placement{Label: "fixed", Place: func(in *reward.Instance, k int) ([]vec.V, error) {
		return []vec.V{vec.Of(1, 1), vec.Of(3, 3)}[:k], nil
	}}
	if p.Name() != "fixed" {
		t.Errorf("name = %q", p.Name())
	}
	if (Placement{}).Name() != "placement" {
		t.Error("default name wrong")
	}
	res, err := p.Run(context.Background(), in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Total-5) > 1e-9 {
		t.Fatalf("total = %v, want 5 (both points saturated)", res.Total)
	}
	if _, err := p.Run(context.Background(), nil, 1); err == nil {
		t.Error("nil instance accepted")
	}
	if _, err := p.Run(context.Background(), in, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestRandomPlacement(t *testing.T) {
	rng := xrand.New(119)
	in := randomInstance(t, rng, 20, norm.L2{}, 1.5)
	a, err := RandomPlacement(7).Run(context.Background(), in, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomPlacement(7).Run(context.Background(), in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Fatal("same seed gave different totals")
	}
	c, err := RandomPlacement(8).Run(context.Background(), in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total == c.Total && a.Centers[0].Equal(c.Centers[0]) {
		t.Fatal("different seeds gave identical placements")
	}
	// Centers stay inside the data bounding box.
	lo, hi := in.Set.Bounds()
	for _, ctr := range a.Centers {
		for d := range ctr {
			if ctr[d] < lo[d]-1e-9 || ctr[d] > hi[d]+1e-9 {
				t.Fatalf("random center %v escaped bounds", ctr)
			}
		}
	}
	// Greedy must never lose to random placement.
	g, err := LocalGreedy{}.Run(context.Background(), in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Total < a.Total-1e-9 {
		t.Fatalf("greedy2 %v below random %v", g.Total, a.Total)
	}
}

func TestCentersClone(t *testing.T) {
	orig := []vec.V{vec.Of(1, 2)}
	cp := centersClone(orig)
	cp[0][0] = 9
	if orig[0][0] != 1 {
		t.Fatal("centersClone aliased storage")
	}
}
