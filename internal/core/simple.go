package core

import (
	"context"

	"repro/internal/obs"
	"repro/internal/reward"
)

// SimpleGreedy is the paper's Algorithm 3 ("greedy 3"): each round centers
// the disk on the point with the largest remaining single-point reward
// w_i·y_i (ties toward the lowest index) and then collects the coverage
// reward that center yields. Complexity O(kn) (Theorem 3).
type SimpleGreedy struct {
	// Obs receives per-round telemetry; nil runs uninstrumented.
	Obs obs.Collector
}

// Name implements Algorithm.
func (SimpleGreedy) Name() string { return "greedy3" }

// Run implements Algorithm.
func (a SimpleGreedy) Run(ctx context.Context, in *reward.Instance, k int) (*Result, error) {
	if err := checkArgs(in, k); err != nil {
		return nil, err
	}
	ctx = orBG(ctx)
	n := in.N()
	y := in.NewResiduals()
	res := &Result{Algorithm: a.Name()}
	for j := 0; j < k; j++ {
		if err := ctx.Err(); err != nil {
			return cancelRun(a.Obs, res, err)
		}
		rs := startRound(ctx, a.Obs, a.Name(), j+1)
		// argmax_i w_i·y_i^j with index tie-break (line 3 of Algorithm 3).
		best, bestVal := 0, in.Set.Weight(0)*y[0]
		for i := 1; i < n; i++ {
			if v := in.Set.Weight(i) * y[i]; v > bestVal {
				best, bestVal = i, v
			}
		}
		c := in.Set.Point(best).Clone()
		gain, _ := in.ApplyRound(c, y)
		res.Centers = append(res.Centers, c)
		res.Gains = append(res.Gains, gain)
		res.Total += gain
		if rs.active() {
			rs.c.Count(obs.CtrCandidates, int64(n))
			rs.end(gain, map[string]float64{"candidates": float64(n)})
		}
	}
	return res, nil
}

var _ Algorithm = SimpleGreedy{}
